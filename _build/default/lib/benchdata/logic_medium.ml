(** Medium-size logic benchmarks: disj (disjunctive scheduling), cs
    (cutting stock), kalah (game tree search).  Reconstructions; see
    DESIGN.md. *)

let disj =
  {|
% disj -- disjunctive job-shop scheduling: tasks with durations and
% precedences, machines handled by disjunctive ordering choices.
schedule_top(Schedule, End) :-
    tasks(Ts),
    assign(Ts, [], Schedule),
    makespan(Schedule, 0, End),
    End =< 30.

tasks([task(a1, 4), task(a2, 3), task(a3, 5),
       task(b1, 3), task(b2, 6), task(b3, 2),
       task(c1, 5), task(c2, 2)]).

precedences([before(a1, a2), before(a2, a3),
             before(b1, b2), before(b2, b3),
             before(c1, c2)]).

disjunctives([excl(a1, b1), excl(a2, b2), excl(a3, c1),
              excl(b3, c2), excl(a1, c1)]).

starts([0, 2, 4, 6, 8, 10, 12, 14, 16]).

% place tasks one at a time, checking the constraints that involve
% already-placed tasks immediately (the pruning that makes the
% disjunctive search feasible)
assign([], Acc, Acc).
assign([task(Name, Dur)|Ts], Acc, Out) :-
    starts(Ss),
    member(S, Ss),
    E is S + Dur,
    compatible(Name, S, E, Acc),
    assign(Ts, [slot(Name, S, E)|Acc], Out).

member(X, [X|_]).
member(X, [_|Ys]) :- member(X, Ys).

compatible(_, _, _, []).
compatible(Name, S, E, [slot(Other, So, Eo)|Rest]) :-
    prec_ok(Name, S, E, Other, So, Eo),
    disj_ok(Name, S, E, Other, So, Eo),
    compatible(Name, S, E, Rest).

prec_ok(Name, S, E, Other, So, Eo) :-
    precedences(Ps),
    ( member(before(Other, Name), Ps) -> Eo =< S ; true ),
    ( member(before(Name, Other), Ps) -> E =< So ; true ).

% a disjunctive pair runs on the same machine: one must finish before
% the other starts -- the characteristic choice point of the benchmark
disj_ok(Name, S, E, Other, So, Eo) :-
    disjunctives(Ds),
    ( exclusive(Name, Other, Ds) ->
        ( E =< So ; Eo =< S )
    ; true
    ).

exclusive(X, Y, Ds) :- member(excl(X, Y), Ds).
exclusive(X, Y, Ds) :- member(excl(Y, X), Ds).

lookup(Name, [slot(Name, S, E)|_], S, E).
lookup(Name, [slot(Other, _, _)|Rest], S, E) :-
    Name \= Other,
    lookup(Name, Rest, S, E).

check_precedences([], _).
check_precedences([before(X, Y)|Ps], Schedule) :-
    lookup(X, Schedule, _, Ex),
    lookup(Y, Schedule, Sy, _),
    Ex =< Sy,
    check_precedences(Ps, Schedule).

check_disjunctives([], _).
check_disjunctives([excl(X, Y)|Ds], Schedule) :-
    lookup(X, Schedule, Sx, Ex),
    lookup(Y, Schedule, Sy, Ey),
    ( Ex =< Sy
    ; Ey =< Sx
    ),
    check_disjunctives(Ds, Schedule).

makespan([], E, E).
makespan([slot(_, _, E)|Ss], Acc, End) :-
    ( E > Acc -> makespan(Ss, E, End) ; makespan(Ss, Acc, End) ).

% a relaxation pass used to prune: earliest completion of a chain
chain_length([], 0).
chain_length([task(_, D)|Ts], L) :-
    chain_length(Ts, L1),
    L is L1 + D.

lower_bound(B) :-
    tasks(Ts),
    chain_length(Ts, Total),
    B is Total // 3.

feasible(End) :-
    lower_bound(B),
    End >= B.
|}

let cs =
  {|
% cs -- cutting stock: choose cutting patterns for stock boards to meet
% demands while bounding waste (Van Hentenryck's benchmark family).
cs_top(Patterns, Waste) :-
    demands(Ds),
    stock_length(L),
    cut(Ds, L, [], Patterns, 0, Waste),
    Waste =< 12.

stock_length(10).

demands([demand(7, 2), demand(5, 2), demand(3, 3), demand(2, 4)]).

pieces([7, 5, 3, 2]).

% generate a pattern: multiset of pieces fitting in one board
pattern(Pieces, Left, [P|Ps]) :-
    member(P, Pieces),
    P =< Left,
    Left1 is Left - P,
    pattern(Pieces, Left1, Ps).
pattern(_, _, []).

member(X, [X|_]).
member(X, [_|Ys]) :- member(X, Ys).

pattern_waste(Pattern, L, W) :-
    sum(Pattern, S),
    W is L - S.

sum([], 0).
sum([X|Xs], S) :- sum(Xs, S1), S is S1 + X.

% subtract pattern pieces from outstanding demands
consume([], Ds, Ds).
consume([P|Ps], Ds, Out) :-
    take_piece(P, Ds, Mid),
    consume(Ps, Mid, Out).

take_piece(P, [demand(P, N)|Ds], [demand(P, N1)|Ds]) :-
    N > 0,
    N1 is N - 1.
take_piece(P, [demand(Q, N)|Ds], [demand(Q, N)|Out]) :-
    P \= Q,
    take_piece(P, Ds, Out).

satisfied([]).
satisfied([demand(_, 0)|Ds]) :- satisfied(Ds).

cut(Ds, _, Acc, Acc, W, W) :- satisfied(Ds).
cut(Ds, L, Acc, Patterns, WAcc, Waste) :-
    \+ satisfied(Ds),
    pieces(Pieces),
    pattern(Pieces, L, Pat),
    Pat \= [],
    useful(Pat, Ds),
    consume(Pat, Ds, Ds1),
    pattern_waste(Pat, L, W),
    WAcc1 is WAcc + W,
    WAcc1 =< 12,
    cut(Ds1, L, [Pat|Acc], Patterns, WAcc1, Waste).

% a pattern is useful if every piece in it is still demanded
useful([], _).
useful([P|Ps], Ds) :-
    demanded(P, Ds),
    useful(Ps, Ds).

demanded(P, [demand(P, N)|_]) :- N > 0.
demanded(P, [_|Ds]) :- demanded(P, Ds).

% cost accounting used by the reporting queries
count_boards([], 0).
count_boards([_|Ps], N) :- count_boards(Ps, N1), N is N1 + 1.

total_cut([], 0).
total_cut([Pat|Ps], T) :-
    sum(Pat, S),
    total_cut(Ps, T1),
    T is T1 + S.

report(Patterns, boards(B), cut(C), waste(W)) :-
    count_boards(Patterns, B),
    total_cut(Patterns, C),
    stock_length(L),
    Total is B * L,
    W is Total - C.
|}

let kalah =
  {|
% kalah -- alpha-beta game-tree search for the sowing game kalah, after
% the Art of Prolog formulation.
kalah_top(Move, Value) :-
    initial_board(Board),
    alpha_beta(2, Board, -1000, 1000, Move, Value).

initial_board(board([6,6,6,6,6,6], 0, [6,6,6,6,6,6], 0)).

alpha_beta(0, Board, _, _, none, Value) :-
    evaluate(Board, Value).
alpha_beta(D, Board, Alpha, Beta, Move, Value) :-
    D > 0,
    moves(Board, Moves),
    Moves \= [],
    D1 is D - 1,
    best_move(Moves, Board, D1, Alpha, Beta, none, Move, Value).
alpha_beta(D, Board, _, _, none, Value) :-
    D > 0,
    moves(Board, []),
    evaluate(Board, Value).

best_move([], _, _, Alpha, _, BestM, BestM, Alpha).
best_move([M|Ms], Board, D, Alpha, Beta, CurM, BestM, BestV) :-
    move(Board, M, Board1),
    swap(Board1, Board2),
    alpha_beta(D, Board2, -Beta, -Alpha, _, NegV),
    V is -NegV,
    ( V >= Beta ->
        BestM = M, BestV = V
    ; V > Alpha ->
        best_move(Ms, Board, D, V, Beta, M, BestM, BestV)
    ; best_move(Ms, Board, D, Alpha, Beta, CurM, BestM, BestV)
    ).

moves(board(Pits, _, _, _), Moves) :-
    legal_moves(Pits, 1, Moves).

legal_moves([], _, []).
legal_moves([P|Ps], I, Moves) :-
    I1 is I + 1,
    legal_moves(Ps, I1, Rest),
    ( P > 0 -> Moves = [I|Rest] ; Moves = Rest ).

move(board(MyPits, MyStore, YourPits, YourStore), I,
     board(MyPits2, MyStore2, YourPits2, YourStore)) :-
    nth(I, MyPits, Stones),
    Stones > 0,
    zero_at(I, MyPits, MyPits1),
    sow(I, Stones, MyPits1, MyStore, YourPits, MyPits2, MyStore2, YourPits2).

% distribute stones counterclockwise: own pits, own store, opponent pits
sow(_, 0, MyPits, MyStore, YourPits, MyPits, MyStore, YourPits).
sow(Pos, N, MyPits, MyStore, YourPits, MyPitsOut, MyStoreOut, YourPitsOut) :-
    N > 0,
    Pos1 is Pos + 1,
    ( Pos1 =< 6 ->
        add_at(Pos1, MyPits, MyPits1),
        N1 is N - 1,
        sow(Pos1, N1, MyPits1, MyStore, YourPits, MyPitsOut, MyStoreOut, YourPitsOut)
    ; Pos1 =:= 7 ->
        MyStore1 is MyStore + 1,
        N1 is N - 1,
        sow_opponent(N1, MyPits, MyStore1, YourPits, MyPitsOut, MyStoreOut, YourPitsOut)
    ; fail
    ).

sow_opponent(0, MyPits, MyStore, YourPits, MyPits, MyStore, YourPits).
sow_opponent(N, MyPits, MyStore, YourPits, MyPitsOut, MyStoreOut, YourPitsOut) :-
    N > 0,
    distribute(N, 1, YourPits, YourPits1, Left),
    ( Left =:= 0 ->
        MyPitsOut = MyPits, MyStoreOut = MyStore, YourPitsOut = YourPits1
    ; sow(0, Left, MyPits, MyStore, YourPits1, MyPitsOut, MyStoreOut, YourPitsOut)
    ).

distribute(0, _, Pits, Pits, 0).
distribute(N, I, Pits, PitsOut, Left) :-
    N > 0,
    ( I =< 6 ->
        add_at(I, Pits, Pits1),
        N1 is N - 1,
        I1 is I + 1,
        distribute(N1, I1, Pits1, PitsOut, Left)
    ; PitsOut = Pits, Left = N
    ).

nth(1, [X|_], X).
nth(I, [_|Xs], X) :- I > 1, I1 is I - 1, nth(I1, Xs, X).

zero_at(1, [_|Xs], [0|Xs]).
zero_at(I, [X|Xs], [X|Ys]) :- I > 1, I1 is I - 1, zero_at(I1, Xs, Ys).

add_at(1, [X|Xs], [X1|Xs]) :- X1 is X + 1.
add_at(I, [X|Xs], [X|Ys]) :- I > 1, I1 is I - 1, add_at(I1, Xs, Ys).

swap(board(A, B, C, D), board(C, D, A, B)).

evaluate(board(MyPits, MyStore, YourPits, YourStore), Value) :-
    sum(MyPits, MP),
    sum(YourPits, YP),
    Value is MyStore * 2 + MP - YourStore * 2 - YP.

sum([], 0).
sum([X|Xs], S) :- sum(Xs, S1), S is S1 + X.
|}
