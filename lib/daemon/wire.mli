(** The daemon's request/response protocol: [prax.wire] v1.

    Newline-delimited JSON over a Unix-domain stream socket — one JSON
    object per line in each direction, no binary framing, so any
    language (or a human with [nc -U]) can speak it.  Every object
    carries the schema header [{"wire":"prax.wire","version":1}]; a
    request names an [op] and a response names a [status].

    Requests:

    {v {"wire":"prax.wire","version":1,"id":7,"op":"ping"}
{"wire":"prax.wire","version":1,"id":8,"op":"stats"}
{"wire":"prax.wire","version":1,"id":9,"op":"drain"}
{"wire":"prax.wire","version":1,"id":10,"op":"analyze",
 "analysis":"groundness","input":"qsort.pl","source":"<program text>",
 "config":{"mode":"compiled"},"client":"ci-3"} v}

    [id] is echoed verbatim in the response (any JSON value; absent →
    [null]).  [client] names the caller for per-client rate limiting
    (absent → the connection's identity).  The [source] is the program
    {e text}, not a path — the daemon never reads client files, so it
    can serve clients in other working directories or sandboxes, and
    the warm cache keys on the bytes themselves.

    Response statuses (docs/ROBUSTNESS.md "serving under load"):

    - ["ok"] — ping/stats/drain acknowledgement;
    - ["complete"] / ["partial"] / ["cached"] — an analyze result; the
      [report] field holds the [prax.report] document, [partial] adds a
      [reason];
    - ["crashed"] — the worker fleet exhausted its retries; [error]
      describes the last attempt;
    - ["overloaded"] — load shed {e before} any work: [reason] is
      ["queue_full"] or ["rate_limited"], and [retry_after_ms] hints
      how long to back off before retrying;

    Additive fields (still wire version 1 — absent means old server,
    readers must tolerate both): a result computed under pressure
    carries [degraded:true], [tier] (1 = reduced, 2 = minimal) and
    [tier_label]; sheds carry [retry_after_ms].
    - ["rejected"] — this request was malformed or oversized; [reason]
      says why (only the request is poisoned, not the connection —
      except oversize, which loses framing and closes it);
    - ["error"] — a well-formed request the registry refuses (unknown
      analysis, bad config key);
    - ["draining"] — the daemon is shutting down and accepts no new
      work. *)

module Metrics = Prax_metrics.Metrics

val schema_name : string
(** ["prax.wire"] *)

val schema_version : int
(** [1] *)

type op =
  | Ping
  | Stats
  | Drain
  | Analyze of {
      analysis : string;
      input : string;  (** display name / path, for reports and logs *)
      source : string;  (** the program text *)
      config : (string * string) list;
    }

type request = {
  id : Metrics.json;  (** echoed in the response; [Null] when absent *)
  client : string option;  (** rate-limit identity *)
  op : op;
}

val parse_request : string -> (request, string) result
(** Parse one request line (sans newline).  [Error] is the rejection
    reason for a ["rejected"] response: not JSON, wrong schema name,
    unsupported version, unknown op, missing field. *)

val request_to_string : request -> string
(** Serialize a request as one line (no trailing newline) — the client
    side. *)

val response : id:Metrics.json -> status:string ->
  (string * Metrics.json) list -> string
(** Serialize a response as one line (no trailing newline): the schema
    header, the echoed [id], the [status], then the extra fields. *)

val response_status : Metrics.json -> (string, string) result
(** Validate a parsed response's schema header and extract its
    [status] — the client side. *)

val retry_after_ms : Metrics.json -> int option
(** The [retry_after_ms] hint on an ["overloaded"] shed, when present
    and non-negative — drives the client's backoff floor. *)
