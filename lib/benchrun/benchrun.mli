(** The bench-run store: persistent, comparable benchmark runs.

    A single [BENCH_engine.json] snapshot cannot defend a performance
    claim: there is no run history to diff against and no way to tell a
    regression from scheduler noise.  This library gives the bench
    harness the production shape (docs/BENCHMARKING.md):

    - {b run store}: [bench run] executes the (analysis x corpus)
      matrix [repeats] times and writes [bench_data/runs/<id>/] — a
      manifest (git rev, host, schema versions, harness config), the
      prax.bench v2 rows extended with per-repeat samples, per-benchmark
      logs, and summary stats.  All files are written atomically
      (temp + fsync + rename, the [prax.store] conventions), so a
      killed run never leaves a torn directory that parses.
    - {b A/B comparison}: {!compare_runs} loads two runs and emits one
      {!delta} per (analysis x benchmark x metric) — phase times, total,
      table bytes, counters — with {b noise-aware} verdicts: a change is
      a regression only when it exceeds a relative tolerance {e and} an
      absolute floor {e and} the pooled IQR of the two runs' samples.
    - {b gates}: {!ab.regressions} counts the gated regressions
      (time and table-byte metrics, plus status downgrades and rows
      that disappeared); [bench gate] maps it to a nonzero exit so CI
      can enforce "no perf regressions beyond tolerance".

    The store degrades, never lies: a missing or corrupt manifest
    loads as {!run.manifest}[ = None] (the rows still compare); a
    missing or corrupt rows file is a load {e error}, because there is
    nothing sound to compare. *)

module Metrics = Prax_metrics.Metrics

val schema_name : string
(** Manifest schema identifier: ["prax.benchrun"]. *)

val schema_version : int
(** Version of the run-directory layout (manifest + rows extensions).
    Bump (and document in docs/BENCHMARKING.md) on any rename, removal,
    or change of meaning. *)

(** {1 Repeat-sample statistics}

    All comparisons run on order statistics — medians and interquartile
    ranges — never means: a single descheduled repeat inflates a mean
    arbitrarily but moves a median of 5 samples by at most one rank. *)

type stats = {
  n : int;  (** sample count *)
  median : float;
  q1 : float;  (** first quartile (linear interpolation) *)
  q3 : float;  (** third quartile *)
  values : float list;  (** the raw samples, in run order *)
}

val stats_of : float list -> stats
(** Order statistics of a non-empty sample list.
    @raise Invalid_argument on an empty list. *)

val iqr : stats -> float
(** [q3 -. q1], the sample spread the noise gate uses. *)

(** {1 Rows}

    One row per (analysis x benchmark), carrying the prax.bench v2
    columns as repeat-sample {!stats} (times, table bytes) or
    representative values (status, counters — taken from the
    median-total repeat). *)

type row = {
  r_analysis : string;  (** registered analysis name *)
  r_name : string;  (** corpus benchmark name *)
  r_config : (string * string) list;  (** effective configuration *)
  r_status : string;  (** ["complete"] or ["partial:<reason>"] *)
  r_source_lines : int option;
  r_clause_count : int;
  r_phases : (string * stats) list;
      (** [preprocess] / [evaluate] / [collect], seconds *)
  r_total : stats;  (** sum of phases, seconds *)
  r_table_bytes : stats;
  r_counters : (string * float) list;
      (** tracked process-wide counters of the median-total repeat *)
}

val row_key : row -> string * string
(** [(analysis, benchmark)] — the identity rows are matched on. *)

val pool_rows : row list list -> row list
(** Merge shard sweeps (one [row list] per process) into one row set:
    rows matching on {!row_key} get their raw time/byte samples
    concatenated (so per-process layout variance lands inside the
    pooled IQR), scalar fields come from the last shard, and a
    non-[complete] status in any shard survives pooling.  Rows
    appearing in only some shards are kept as-is. *)

(** {1 Manifests} *)

type manifest = {
  m_run_id : string;
  m_created_unix : float;  (** wall-clock, seconds since the epoch *)
  m_git_rev : string;  (** ["unknown"] outside a git checkout *)
  m_host : string;  (** [uname -sm], or ["unknown"] *)
  m_ocaml_version : string;
  m_word_size : int;
  m_repeats : int;  (** samples per row *)
  m_argv : string list;  (** the harness invocation, verbatim *)
  m_bench_schema_version : int;
  m_stats_schema_version : int;
  m_report_schema_version : int;
}

val make_manifest : run_id:string -> repeats:int -> argv:string list -> manifest
(** Capture the environment: git revision (via [git rev-parse HEAD],
    degrading to ["unknown"]), host, OCaml version, word size, the
    current schema versions, and the wall clock. *)

val fresh_id : unit -> string
(** A new run id, [run-YYYYMMDD-HHMMSS-<pid>[-<n>]] (UTC); unique
    within a process even at one-second resolution. *)

(** {1 The run store} *)

type run = {
  dir : string;  (** the run directory *)
  id : string;
  manifest : manifest option;
      (** [None] when manifest.json is missing or corrupt — the run
          still loads and compares (degraded, docs/BENCHMARKING.md) *)
  rows : row list;
}

val write_run :
  dir:string ->
  manifest:manifest ->
  rows:row list ->
  logs:(string * string) list ->
  unit
(** Create [dir] and write [manifest.json], [rows.json],
    [summary.json], and [logs/<file>.log] for each [(file, text)] in
    [logs].  Every file is written atomically.
    @raise Sys_error when [dir] exists and is not a directory. *)

val load_run : string -> (run, string) result
(** Load a run directory.  [Error] when the directory or [rows.json]
    is missing or unparseable; a bad manifest degrades to
    [manifest = None]. *)

val find_run : runs_dir:string -> string -> (run, string) result
(** Resolve a run id or a directory path: a [spec] that is an existing
    directory is loaded as-is, otherwise [runs_dir/spec] is tried. *)

val list_runs : runs_dir:string -> string list
(** Run ids present under [runs_dir] (subdirectories containing a
    [rows.json]), sorted. *)

(** {1 Comparison: deltas, thresholds, verdicts} *)

type thresholds = {
  rel_time : float;  (** relative tolerance on time medians (0.30) *)
  abs_time : float;  (** absolute floor on time deltas, seconds (0.005) *)
  rel_bytes : float;  (** relative tolerance on table bytes (0.05) *)
  abs_bytes : float;  (** absolute floor on table-byte deltas (256) *)
  gate_time : bool;  (** gate on time metrics (default true) *)
  gate_bytes : bool;  (** gate on table bytes (default true) *)
}

val default_thresholds : thresholds

type verdict = Regression | Improvement | Unchanged

type delta = {
  d_analysis : string;
  d_name : string;
  d_metric : string;
      (** ["total_seconds"], a phase name, ["table_bytes"], ["status"],
          or a counter name *)
  d_base : float;  (** baseline median (or value) *)
  d_cand : float;  (** candidate median (or value) *)
  d_pct : float;  (** relative median change, [(cand-base)/base] *)
  d_pooled_iqr : float;  (** max of the two runs' IQRs for this metric *)
  d_verdict : verdict;
  d_gated : bool;  (** counts toward {!ab.regressions} when flagged *)
}

type ab = {
  base_id : string;
  cand_id : string;
  deltas : delta list;  (** regressions first, then improvements *)
  missing : (string * string) list;
      (** rows present in base, absent in candidate — gated *)
  added : (string * string) list;  (** rows new in the candidate *)
  regressions : int;  (** gated regressions incl. missing rows *)
  improvements : int;
}

val compare_runs : ?thresholds:thresholds -> run -> run -> ab
(** Match rows by {!row_key} and apply the noise gate per metric.  A
    change is flagged only when it exceeds the relative tolerance
    {e and} the absolute floor {e and} the pooled IQR; counter deltas
    are always informational ([d_gated = false]); a status downgrade
    (complete -> partial) is a gated regression. *)

val render_ab : ab -> string
(** Human report: the flagged deltas (with medians, change, and the
    noise bound), row coverage changes, and a verdict line. *)

val ab_to_json : ab -> Metrics.json
(** The machine-readable A/B document (docs/BENCHMARKING.md). *)
