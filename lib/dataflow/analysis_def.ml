(** Registry entry for demand-driven dataflow: adapts {!Analyze} to the
    generic {!Prax_analysis.Analysis} interface (see docs/ANALYSES.md).
    The source is the textual [.cfg] control-flow-graph format of
    {!Cfg.parse}.  Registered by [Prax_analyses.Analyses]. *)

module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics

let counts (st : Prax_tabling.Engine.stats) : Analysis.engine_counts =
  {
    Analysis.calls = st.Prax_tabling.Engine.calls;
    table_entries = st.Prax_tabling.Engine.table_entries;
    answers = st.Prax_tabling.Engine.answers;
    duplicates = st.Prax_tabling.Engine.duplicates;
    resumptions = st.Prax_tabling.Engine.resumptions;
    forced = st.Prax_tabling.Engine.forced;
  }

let row_json (n, defs) : Metrics.json =
  Metrics.Obj
    [
      ("node", Metrics.Int n);
      ( "reaching",
        Metrics.Arr
          (List.map
             (fun (v, d) ->
               Metrics.Obj
                 [ ("var", Metrics.Str v); ("def", Metrics.Int d) ])
             defs) );
    ]

let run ~config ~guard src : Analysis.report =
  let rep = Analyze.analyze_source ~guard src in
  {
    Analysis.analysis = "dataflow";
    config;
    phases = rep.Analyze.phases;
    status = rep.Analyze.status;
    table_bytes = rep.Analyze.table_bytes;
    clause_count = rep.Analyze.node_count;
    source_lines = None;
    engine = Some (counts rep.Analyze.engine_stats);
    payload_text = Analyze.report_to_string rep;
    payload_json = Metrics.Arr (List.map row_json rep.Analyze.rows);
  }

let def : Analysis.t =
  {
    Analysis.name = "dataflow";
    doc = "Demand-driven reaching-definitions over textual CFGs (Section 7)";
    kind = Analysis.Cfg_program;
    extensions = [ ".cfg" ];
    defaults = [];
    run;
    incremental = None;
  }
