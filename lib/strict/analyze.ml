(** Strictness analysis driver.  Phases mirror Table 3's methodology:
    preprocess (parse + check + derive the sp/pm logic rules + load),
    analyze (tabled evaluation of [sp_f(e,…)] and [sp_f(d,…)] for every
    function), collect (per-argument glb over answers). *)

open Prax_logic
open Prax_tabling
open Prax_fp
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis

(* Phase timers mirroring the Table 3 columns (docs/METRICS.md). *)
let t_preprocess =
  Metrics.timer ~doc:"strictness: parse, check, derive sp/pm rules, load"
    "strict.preprocess"

let t_evaluate =
  Metrics.timer ~doc:"strictness: tabled evaluation of sp_f goals"
    "strict.evaluate"

let t_collect =
  Metrics.timer ~doc:"strictness: per-argument glb over answers"
    "strict.collect"

type func_result = {
  fname : string;
  arity : int;
  e_demands : Demand.t array option;
      (** per-argument guaranteed demand when the result is demanded to
          normal form; [None] if the function cannot be used under
          e-demand at all *)
  d_demands : Demand.t array option;
      (** same under head-normal-form demand — the standard notion of
          strictness *)
}

(* The shared Table-style phase record, re-exported so existing callers
   keep their [Analyze.phases] spelling (the definition now lives in
   prax.analysis, one copy for all drivers). *)
type phases = Analysis.phases = {
  preproc : float;
  analysis : float;
  collection : float;
}

let total = Analysis.total

type report = {
  results : func_result list;
  phases : phases;
  table_bytes : int;
  engine_stats : Engine.stats;
  rule_count : int;
  source_lines : int;
  status : Guard.status;
      (** [Partial] when a resource budget stopped evaluation; widened
          entries then report the weakest demand (sound: strictness
          claims only shrink) *)
}

(* monotonic, same clock as the Metrics timers (docs/ANALYSES.md) *)
let now = Analysis.now

(* glb across answers, per argument; an unbound position means no demand
   is guaranteed on that path *)
let demands_of_answers arity (answers : Term.t list) : Demand.t array option =
  match answers with
  | [] -> None
  | _ ->
      let out = Array.make arity Demand.E in
      List.iter
        (fun ans ->
          let args = Term.args_of ans in
          for i = 1 to arity do
            match Demand.of_term args.(i) with
            | Some d -> out.(i - 1) <- Demand.glb out.(i - 1) d
            | None -> out.(i - 1) <- Demand.N
          done)
        answers;
      Some out

(* Preprocessing shared by the scratch and incremental paths: derive
   the sp/pm rules (with supplementary folding) and load them. *)
let prepare ~mode ~supplementary ~guard p =
  let rules = Transform.program p in
  let rules =
    (* supplementary tabling (Section 4.2): indispensable for the
       long bodies deep expression nesting produces — see the
       ablation bench *)
    if supplementary then Supplement.fold_program ~threshold:2 rules
    else rules
  in
  let db = Database.create ~mode () in
  Database.load_clauses db rules;
  (rules, Engine.create ~guard db)

(* The evaluation-phase demand: [sp_f(e,…)] and [sp_f(d,…)] for every
   function, in function order. *)
let demand_goals funcs =
  List.concat_map
    (fun (f, arity) ->
      List.map
        (fun dem ->
          Term.mkl (Transform.sp_name f)
            (Demand.to_atom dem
            :: List.init arity (fun _ -> Term.fresh_var ())))
        [ Demand.E; Demand.D ])
    funcs

(* Collection shared by both paths: per-argument glb over answers. *)
let collect_results e status funcs =
  List.map
    (fun (f, arity) ->
      let answers_under dem =
        (* answers across all call variants, filtered by demand *)
        Engine.answers_for e (Transform.sp_name f, arity + 1)
        |> List.filter (fun ans ->
               match (Term.args_of ans).(0) with
               | Term.Atom a ->
                   String.equal a (String.make 1 (Demand.to_char dem))
               | _ -> false)
      in
      if
        Guard.is_partial status
        && Engine.calls_for e (Transform.sp_name f, arity + 1) = []
      then
        (* the budget tripped before this function's sp goals even
           created table entries: claim nothing (no demand guaranteed
           on any argument), not "unusable under demand" *)
        let no_claim = Some (Array.make arity Demand.N) in
        { fname = f; arity; e_demands = no_claim; d_demands = no_claim }
      else
        {
          fname = f;
          arity;
          e_demands = demands_of_answers arity (answers_under Demand.E);
          d_demands = demands_of_answers arity (answers_under Demand.D);
        })
    funcs

let analyze_program ?(mode = Database.Dynamic) ?(supplementary = true)
    ?(guard = Guard.unlimited) ~source_lines (p : Ast.program) : report =
  let t0 = now () in
  let rules, e =
    Metrics.time t_preprocess (fun () ->
        prepare ~mode ~supplementary ~guard p)
  in
  let t1 = now () in
  let funcs = Ast.functions p in
  let status =
    Metrics.time t_evaluate (fun () ->
        List.fold_left
          (fun acc goal ->
            Guard.combine acc (Engine.run_status e goal (fun _ -> ())))
          Guard.Complete (demand_goals funcs))
  in
  let t2 = now () in
  let results =
    Metrics.time t_collect @@ fun () -> collect_results e status funcs
  in
  let t3 = now () in
  {
    results;
    phases = { preproc = t1 -. t0; analysis = t2 -. t1; collection = t3 -. t2 };
    table_bytes = Engine.table_space_bytes e;
    engine_stats = Engine.stats e;
    rule_count = List.length rules;
    source_lines;
    status;
  }

(** Edit-aware variant: same phases, but the evaluation consults a
    per-SCC fragment cache over the derived sp/pm rules — unchanged
    cones splice their tables back instead of recomputing
    (docs/INCREMENTAL.md).  The report is byte-identical to
    {!analyze_program} on the same source. *)
let analyze_program_incr ~cache ?(mode = Database.Dynamic)
    ?(supplementary = true) ?(guard = Guard.unlimited) ~source_lines
    (p : Ast.program) : report =
  let t0 = now () in
  let rules, e =
    Metrics.time t_preprocess (fun () ->
        prepare ~mode ~supplementary ~guard p)
  in
  let t1 = now () in
  let funcs = Ast.functions p in
  let status, _ =
    Metrics.time t_evaluate (fun () ->
        (* the class must track supplementary folding: it changes the
           derived rule set, hence the table shape *)
        let table_class = if supplementary then "slg" else "slg-nosupp" in
        Prax_incr.Incr.run_tabled ~cache ~table_class ~engine:e
          ~clauses:rules ~goals:(demand_goals funcs) ())
  in
  let t2 = now () in
  let results =
    Metrics.time t_collect @@ fun () -> collect_results e status funcs
  in
  let t3 = now () in
  {
    results;
    phases = { preproc = t1 -. t0; analysis = t2 -. t1; collection = t3 -. t2 };
    table_bytes = Engine.table_space_bytes e;
    engine_stats = Engine.stats e;
    rule_count = List.length rules;
    source_lines;
    status;
  }

(** Full pipeline from source text. *)
let analyze ?(mode = Database.Dynamic) ?supplementary ?guard (src : string) :
    report =
  let t0 = now () in
  let prog = Metrics.time t_preprocess (fun () -> Check.parse_and_check src) in
  let t_parse = now () -. t0 in
  let r =
    analyze_program ~mode ?supplementary ?guard
      ~source_lines:(Check.line_count src) prog
  in
  { r with phases = Analysis.add_preproc r.phases t_parse }

(** Edit-aware full pipeline; see {!analyze_program_incr}. *)
let analyze_incr ~cache ?(mode = Database.Dynamic) ?supplementary ?guard
    (src : string) : report =
  let t0 = now () in
  let prog = Metrics.time t_preprocess (fun () -> Check.parse_and_check src) in
  let t_parse = now () -. t0 in
  let r =
    analyze_program_incr ~cache ~mode ?supplementary ?guard
      ~source_lines:(Check.line_count src) prog
  in
  { r with phases = Analysis.add_preproc r.phases t_parse }

(** Plain "compilation" of a functional program: parse, check, and build
    the interpreter's equation index — the baseline against which the
    paper reports strictness-analysis overhead. *)
let compile_time (src : string) : float =
  let t0 = now () in
  let prog = Check.parse_and_check src in
  ignore (Eval.make prog);
  now () -. t0

(* --- queries on results --------------------------------------------------- *)

let result_for (rep : report) f =
  List.find_opt (fun r -> String.equal r.fname f) rep.results

(** Argument positions (0-based) that are strict in the standard sense:
    demanded whenever the result is demanded to head-normal form. *)
let strict_args (r : func_result) : int list =
  match r.d_demands with
  | None -> []
  | Some ds ->
      Array.to_list ds
      |> List.mapi (fun i d -> (i, d))
      |> List.filter_map (fun (i, d) ->
             if Demand.is_strict d then Some i else None)

let demand_string = function
  | None -> "-"
  | Some ds ->
      String.init (Array.length ds) (fun i -> Demand.to_char ds.(i))

let result_to_string (r : func_result) : string =
  Printf.sprintf "%s/%d: e-demand=%s d-demand=%s strict-args={%s}" r.fname
    r.arity
    (demand_string r.e_demands)
    (demand_string r.d_demands)
    (String.concat ","
       (List.map (fun i -> string_of_int (i + 1)) (strict_args r)))

let report_to_string (rep : report) : string =
  String.concat "\n" (List.map result_to_string rep.results)
