(** Minimal blocking client for the [prax.wire] protocol — the other
    end of {!Daemon}: connect to the socket, send one request line,
    read one response line.  Used by [praxd ping/stats/drain] and
    [xanalyze client]. *)

module Metrics = Prax_metrics.Metrics

type error =
  | Connect_failed of string  (** no daemon: ENOENT/ECONNREFUSED/... *)
  | Protocol_error of string  (** EOF, bad JSON, bad schema header *)

val error_to_string : error -> string

val request :
  ?timeout:float -> ?max_response_bytes:int -> socket:string ->
  Wire.request -> (string * Metrics.json, error) result
(** [request ~socket req] performs one round trip and returns the
    response's validated [status] plus the whole response document.
    [timeout] bounds the wait for the response line (default: none —
    analyses can be slow; pass one for control verbs).
    [max_response_bytes] bounds the reply: a longer line, a truncated
    line (EOF mid-frame), or a non-JSON line is a [Protocol_error],
    never a result. *)

val backoff_delay :
  key:string -> attempt:int -> base:float -> cap:float ->
  retry_after_ms:int option -> float
(** Seconds to wait before retry [attempt] (1-based): capped
    exponential ([base·2{^attempt-1}], capped at [cap]) with ±25%
    {e deterministic} jitter derived from [key] — the same key and
    attempt always wait the same time (replayable tests), while
    distinct keys spread out instead of herding.  A server
    [retry_after_ms] hint floors the result. *)

val request_with_retries :
  ?timeout:float -> ?max_response_bytes:int -> ?sleep:(float -> unit) ->
  ?base:float -> ?cap:float -> socket:string -> retries:int ->
  Wire.request -> (string * Metrics.json * int, error) result
(** {!request}, retried with {!backoff_delay} on ["overloaded"] sheds
    (honoring the server's [retry_after_ms]) and on connection
    failures, up to [retries] extra attempts.  Returns the final
    status, document, and the number of attempts spent.  [sleep] is
    injectable for tests ([base]=0.2s, [cap]=10s). *)

(** {2 Batch: a corpus through one connection} *)

type batch_job = {
  job_input : string;  (** display name, echoed in the outcome *)
  job_req : Wire.request;  (** its [id] is rewritten to the job index *)
}

type batch_outcome = {
  b_input : string;
  b_status : string;
      (** final wire status; ["protocol_error"] when the stream died
          and retries ran out; ["overloaded"] when every attempt was
          shed *)
  b_json : Metrics.json;  (** [Null] when no valid response arrived *)
  b_attempts : int;
}

val batch :
  ?timeout:float -> ?max_response_bytes:int -> ?sleep:(float -> unit) ->
  ?base:float -> ?cap:float -> socket:string -> retries:int ->
  batch_job array -> (batch_outcome array, error) result
(** Stream every job down one connection (ids = job indexes), collect
    the responses, then retry the shed or stream-orphaned jobs in
    backoff-separated rounds (fresh connection per round, at most
    [retries] extra rounds; the largest [retry_after_ms] hint floors
    each round's backoff).  Every job ends with exactly one outcome.
    [Error] only when the daemon is unreachable outright. *)
