(** Tokenizer for the functional language.  [--] starts a line comment,
    [{- -}] a (nestable) block comment. *)

type token =
  | LIdent of string  (** lowercase: variables and function names *)
  | UIdent of string  (** uppercase: constructors *)
  | Num of int
  | Kw of string  (** if then else let in and or not div mod *)
  | Sym of string  (** punctuation and operators *)
  | Eof

exception Error of string * int

let keywords = [ "if"; "then"; "else"; "let"; "in"; "and"; "or"; "not"; "div"; "mod" ]

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_lower c || is_upper c || is_digit c || c = '_' || c = '\''

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let rec skip st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip st
  | Some '-' when peek2 st = Some '-' ->
      while peek st <> None && peek st <> Some '\n' do
        st.pos <- st.pos + 1
      done;
      skip st
  | Some '{' when peek2 st = Some '-' ->
      st.pos <- st.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        match (peek st, peek2 st) with
        | None, _ -> raise (Error ("unterminated {- comment", st.pos))
        | Some '{', Some '-' ->
            incr depth;
            st.pos <- st.pos + 2
        | Some '-', Some '}' ->
            decr depth;
            st.pos <- st.pos + 2
        | Some _, _ -> st.pos <- st.pos + 1
      done;
      skip st
  | _ -> ()

let take_while st pred =
  let start = st.pos in
  while (match peek st with Some c when pred c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let two_char_syms = [ "=="; "/="; "<="; ">="; "++" ]

let next st : token =
  skip st;
  match peek st with
  | None -> Eof
  | Some c when is_digit c -> Num (int_of_string (take_while st is_digit))
  | Some c when is_lower c || c = '_' ->
      let id = take_while st is_ident in
      if List.mem id keywords then Kw id else LIdent id
  | Some c when is_upper c -> UIdent (take_while st is_ident)
  | Some c -> (
      let two =
        if st.pos + 1 < String.length st.src then
          String.sub st.src st.pos 2
        else ""
      in
      if List.mem two two_char_syms then begin
        st.pos <- st.pos + 2;
        Sym two
      end
      else
        match c with
        | '(' | ')' | '[' | ']' | ',' | ';' | ':' | '=' | '+' | '-' | '*'
        | '/' | '<' | '>' ->
            st.pos <- st.pos + 1;
            Sym (String.make 1 c)
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, st.pos)))

let tokenize (src : string) : token list =
  let st = { src; pos = 0 } in
  let rec go acc =
    match next st with Eof -> List.rev (Eof :: acc) | t -> go (t :: acc)
  in
  go []

let to_string = function
  | LIdent s -> "ident " ^ s
  | UIdent s -> "constructor " ^ s
  | Num n -> "number " ^ string_of_int n
  | Kw s -> "keyword " ^ s
  | Sym s -> "'" ^ s ^ "'"
  | Eof -> "<eof>"
