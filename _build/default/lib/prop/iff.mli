(** The [iff] relation of the Prop formulation (Figure 1):
    [iff(A, B1, …, Bk)] holds for the boolean assignments satisfying
    [A ↔ B1 ∧ … ∧ Bk], provided enumeratively. *)

open Prax_logic

val as_bool : Term.t -> bool option

val solve :
  (Subst.t -> Term.t -> Term.t -> Subst.t option) ->
  Subst.t ->
  Term.t array ->
  (Subst.t -> unit) ->
  unit
(** Enumerate the consistent completions of the current partial
    binding. *)

val register : Prax_tabling.Engine.t -> max_arity:int -> unit
(** Register [iff/k] builtins for arities [1..max_arity+1]. *)

val extension : int -> bool list list
(** The full ground extension of [iff/(k+1)], for the bottom-up
    engine. *)
