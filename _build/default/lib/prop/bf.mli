(** Boolean functions over a fixed number of positions, represented
    enumeratively as truth tables (bitsets over assignment rows) — the
    Prop-domain representation the paper adopts and defends.

    Row indexing: row [r] assigns position [i] the value of bit [i]. *)

type t

val create : int -> bool -> t
(** [create arity fill]: constant function over [arity] positions.
    @raise Invalid_argument beyond arity 20. *)

val bottom : int -> t
val top : int -> t
val arity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
(** Mutates; used only while building. *)

val of_rows : int -> int list -> t
val rows : t -> int list
val count : t -> int
val is_empty : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val copy : t -> t

val conj : t -> t -> t
val disj : t -> t -> t
val neg : t -> t
val implies : t -> t -> bool

val iff : int -> int -> int list -> t
(** [iff arity pos set]: the function [pos ↔ ∧ set]; with an empty set,
    just [pos]. *)

val var : int -> int -> t

val restrict : t -> int -> bool -> t
(** Conjoin [pos = value]. *)

val exists : t -> int -> t
(** Existential quantification; keeps the arity. *)

val project : t -> int list -> t
(** Project onto the listed positions (in order, duplicates allowed);
    the result's arity is the list length. *)

val extend : t -> int list -> int -> t
(** Embed into a wider universe: position [i] of the argument maps to
    [mapping_i]; unlisted positions are unconstrained. *)

val definite : t -> bool array
(** Positions true in every satisfying row (vacuously all-true on the
    empty function — check {!is_empty} separately). *)

val of_tuples : int -> bool option list list -> t
(** Rows from answer tuples; [None] positions take both values
    (positions expand independently — for variable-sharing answers use
    the analyzers' own expansion). *)

val to_tuples : t -> bool list list
