lib/logic/sld.mli: Database Subst Term
