examples/quickstart.mli:
