test/test_extensions.ml: Alcotest Analyze Cfg Infer List Option Prax_benchdata Prax_dataflow Prax_hm Prax_infinite Prax_logic Prax_tabling Printf QCheck2 QCheck_alcotest Widen
