(** The standard Prolog operator table, as used by the reader and the
    pretty-printer.  Only the operators needed by the benchmark corpus and
    the analysis transformations are included; [add] lets a program extend
    the table (e.g. via [:- op(...)] directives). *)

type assoc = XFX | XFY | YFX | FY | FX

type entry = { prec : int; assoc : assoc }

type table = {
  infix : (string, entry) Hashtbl.t;
  prefix : (string, entry) Hashtbl.t;
}

let default_ops =
  [
    (1200, XFX, [ ":-"; "-->" ]);
    (1200, FX, [ ":-"; "?-" ]);
    (1100, XFY, [ ";" ]);
    (1050, XFY, [ "->" ]);
    (1000, XFY, [ "," ]);
    (990, XFX, [ ":=" ]);
    (900, FY, [ "\\+" ]);
    (700, XFX,
     [
       "="; "\\="; "=="; "\\=="; "is"; "=:="; "=\\="; "<"; ">"; "=<"; ">=";
       "=.."; "@<"; "@>"; "@=<"; "@>=";
     ]);
    (500, YFX, [ "+"; "-"; "/\\"; "\\/"; "xor" ]);
    (400, YFX, [ "*"; "/"; "//"; "mod"; "rem"; "<<"; ">>" ]);
    (200, XFX, [ "**" ]);
    (200, XFY, [ "^" ]);
    (200, FY, [ "-"; "+"; "\\" ]);
    (100, YFX, [ "." ]);
    (1, FX, [ "$" ]);
  ]

let create () : table =
  let t = { infix = Hashtbl.create 64; prefix = Hashtbl.create 16 } in
  List.iter
    (fun (prec, assoc, names) ->
      let dst =
        match assoc with FY | FX -> t.prefix | XFX | XFY | YFX -> t.infix
      in
      List.iter (fun n -> Hashtbl.replace dst n { prec; assoc }) names)
    default_ops;
  t

let add (t : table) prec assoc name =
  let dst = match assoc with FY | FX -> t.prefix | _ -> t.infix in
  Hashtbl.replace dst name { prec; assoc }

let infix (t : table) name = Hashtbl.find_opt t.infix name
let prefix (t : table) name = Hashtbl.find_opt t.prefix name

let assoc_of_string = function
  | "xfx" -> Some XFX
  | "xfy" -> Some XFY
  | "yfx" -> Some YFX
  | "fy" -> Some FY
  | "fx" -> Some FX
  | _ -> None
