lib/bottomup/from_prop.ml: Array Datalog Int List Parser Prax_logic Prax_prop Pretty Printf String Subst Term Unify
