test/test_tabling.mli:
