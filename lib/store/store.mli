(** Crash-safe persistent store of analysis outcomes.

    A batch run over the corpus must be resumable: when a run is killed
    (machine reboot, supervisor crash, operator Ctrl-C) the next
    invocation should warm-start from the results already computed
    instead of re-analyzing everything.  The store is a directory of
    {e snapshot} files, one per (source, analysis, configuration)
    triple, with the write and read protocols chosen so that no failure
    mode can surface a wrong result — only a recomputation:

    - {b atomic writes}: a snapshot is written to a unique temp file in
      the store directory, fsynced, then [rename]d into place.  POSIX
      rename atomicity means readers (including concurrent writers of
      the same key) see either the old complete file or the new
      complete file, never a torn one.
    - {b integrity trailer}: every snapshot carries a CRC-32 over its
      header and payload.  A flipped bit, truncated write, or swapped
      block fails the check and the load degrades to a miss
      ([store.corrupt_detected]).
    - {b versioned format and keys}: the file format version, the
      prax.stats schema version, and the full key (source digest,
      analysis, engine configuration) are stored inside the snapshot
      and verified on load; any skew degrades to a miss
      ([store.version_skew]) so stale caches can never leak across an
      upgrade.

    The store never raises on a bad snapshot: corruption is a cache
    miss, and a miss is always safe because the caller recomputes.
    See docs/ROBUSTNESS.md for the on-disk format. *)

val format_version : int
(** Version of the snapshot container format (magic [PRAXSNAP]).  Bump
    on any layout change; old files then degrade to recomputation. *)

type key = {
  analysis : string;  (** e.g. ["groundness"], ["strictness"] *)
  source_digest : string;  (** {!digest_source} of the program text *)
  config : string;
      (** engine configuration discriminator (flags that change the
          result, e.g. ["k=2"] — must not contain newlines) *)
  schema_version : int;  (** prax.stats schema version of the payload *)
}

val digest_source : string -> string
(** Hex digest (MD5) of a program source text, for {!key.source_digest}. *)

type t

val open_dir : string -> t
(** [open_dir dir] opens (creating if needed) the store rooted at
    [dir], then sweeps orphaned write-temp files
    ([*.snap.tmp.<pid>.<n>]) left by crashed writers — recursively,
    so per-SCC fragment subdirectories ({!sub}) are collected too;
    each removal bumps [store.tmp_swept].  Temp files whose writer pid
    is still alive are left alone (a concurrent saver mid-write).
    @raise Sys_error when [dir] exists and is not a directory. *)

val sub : t -> string -> t
(** [sub t name] — the store rooted at the subdirectory [name] of [t]
    (created if needed).  The incremental layer keeps its per-SCC
    fragment snapshots under [incr/<analysis>/] so they never collide
    with whole-run snapshots in the parent.  No sweep — the parent's
    {!open_dir} sweep already recursed here.
    @raise Invalid_argument when [name] is empty, ["."], [".."], or
    contains a path separator. *)

val dir : t -> string

val path_of : t -> key -> string
(** The snapshot file a [key] maps to (exists or not).  Exposed for
    tests and operational tooling (corruption drills, cache GC). *)

(** Why a load produced no payload. *)
type load_error =
  | Absent  (** no snapshot file for this key *)
  | Corrupt of string  (** bad magic, header, length, or CRC *)
  | Version_skew of string  (** format or schema version mismatch *)
  | Key_mismatch  (** digest collision on filename: stored key differs *)

val load_result : t -> key -> (string, load_error) result
(** Load and fully verify the snapshot for [key].  Counters:
    [store.hits] on [Ok], [store.misses] on any error, plus
    [store.corrupt_detected] / [store.version_skew] on those errors. *)

val load : t -> key -> string option
(** [load_result] with all failures collapsed to [None] (= recompute). *)

val save : t -> key -> string -> unit
(** [save t key payload] atomically persists the snapshot
    (temp + fsync + rename + parent-directory fsync); bumps
    [store.writes].  Concurrent savers of the same key are safe: last
    rename wins, both files are whole.  A write failure (ENOSPC, IO
    error) is {e contained}: the temp file is removed, nothing is
    published, [store.write_errors] is bumped, and the call returns —
    the store is a cache, never an authority, so a failed persist must
    not take the caller down. *)

val save_result : t -> key -> string -> (unit, string) result
(** {!save} with the containment made visible: [Error reason] when the
    write failed (and was cleaned up). *)

(** {2 Chaos-harness fault injection} *)

(** A one-shot injected disk fault for the next {!save}:
    [Fault_enospc] fails before any payload byte is written,
    [Fault_short_write] after roughly half of them.  Either way the
    save is contained exactly like a real disk error.  Armed by the
    daemon's chaos plan (docs/ROBUSTNESS.md). *)
type write_fault = Fault_enospc | Fault_short_write

val arm_write_fault : write_fault -> unit
(** Arm [f] for the next {!save} in this process (one-shot). *)

val load_error_to_string : load_error -> string
