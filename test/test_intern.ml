(* Interned-term representation tests: the hash-consed [Term] must be
   observationally identical to the seed's plain structural
   representation.  Reference implementations of equality, comparison,
   groundness, size, and variant checking are re-stated here exactly as
   the seed defined them (structurally, no meta word, no physical
   equality) and property-tested against the interned versions on
   random terms; variant semantics additionally gets a ≥10k-pair run
   against an independent bijection-based oracle. *)

open Prax_logic

(* --- reference (seed) definitions -------------------------------------- *)

let rec ref_equal t1 t2 =
  match (t1, t2) with
  | Term.Var i, Term.Var j -> i = j
  | Term.Int i, Term.Int j -> i = j
  | Term.Atom a, Term.Atom b -> String.equal a b
  | Term.Struct (f, a1, _), Term.Struct (g, a2, _) ->
      String.equal f g
      && Array.length a1 = Array.length a2
      && ref_equal_args a1 a2 0
  | _ -> false

and ref_equal_args a1 a2 i =
  i >= Array.length a1 || (ref_equal a1.(i) a2.(i) && ref_equal_args a1 a2 (i + 1))

let rec ref_compare t1 t2 =
  match (t1, t2) with
  | Term.Var i, Term.Var j -> Int.compare i j
  | Term.Var _, _ -> -1
  | _, Term.Var _ -> 1
  | Term.Int i, Term.Int j -> Int.compare i j
  | Term.Int _, _ -> -1
  | _, Term.Int _ -> 1
  | Term.Atom a, Term.Atom b -> String.compare a b
  | Term.Atom _, _ -> -1
  | _, Term.Atom _ -> 1
  | Term.Struct (f, a1, _), Term.Struct (g, a2, _) ->
      let c = String.compare f g in
      if c <> 0 then c
      else
        let c = Int.compare (Array.length a1) (Array.length a2) in
        if c <> 0 then c else ref_compare_args a1 a2 0

and ref_compare_args a1 a2 i =
  if i >= Array.length a1 then 0
  else
    let c = ref_compare a1.(i) a2.(i) in
    if c <> 0 then c else ref_compare_args a1 a2 (i + 1)

let rec ref_is_ground = function
  | Term.Var _ -> false
  | Term.Int _ | Term.Atom _ -> true
  | Term.Struct (_, args, _) -> Array.for_all ref_is_ground args

let rec ref_size = function
  | Term.Var _ | Term.Int _ | Term.Atom _ -> 1
  | Term.Struct (_, args, _) ->
      Array.fold_left (fun acc t -> acc + ref_size t) 1 args

let rec ref_occurs id = function
  | Term.Var i -> i = id
  | Term.Int _ | Term.Atom _ -> false
  | Term.Struct (_, args, _) -> Array.exists (ref_occurs id) args

(* Variant oracle, independent of canonicalization: a bijection between
   the variable occurrences must exist. *)
let ref_variant t1 t2 =
  let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
  let rec go t1 t2 =
    match (t1, t2) with
    | Term.Var i, Term.Var j -> (
        match (Hashtbl.find_opt fwd i, Hashtbl.find_opt bwd j) with
        | None, None ->
            Hashtbl.add fwd i j;
            Hashtbl.add bwd j i;
            true
        | Some j', Some i' -> j' = j && i' = i
        | _ -> false)
    | Term.Int a, Term.Int b -> a = b
    | Term.Atom a, Term.Atom b -> String.equal a b
    | Term.Struct (f, a1, _), Term.Struct (g, a2, _) ->
        String.equal f g
        && Array.length a1 = Array.length a2
        &&
        let n = Array.length a1 in
        let rec args i = i >= n || (go a1.(i) a2.(i) && args (i + 1)) in
        args 0
    | _ -> false
  in
  go t1 t2

(* Rebuild through the public constructors with fresh argument arrays:
   structurally identical, but constructed independently. *)
let rec deep_copy = function
  | Term.Var i -> Term.var i
  | Term.Int i -> Term.int i
  | Term.Atom a -> Term.atom a
  | Term.Struct (f, args, _) -> Term.mk f (Array.map deep_copy args)

(* Consistent variable renaming with an offset: a variant by construction. *)
let rename_by n t = Term.map_vars (fun i -> Term.var (i + n)) t

(* --- generators --------------------------------------------------------- *)

let gen_term =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Term.var (i mod 6)) small_nat;
               map (fun i -> Term.int i) small_int;
               oneofl [ Term.atom "a"; Term.atom "b"; Term.atom "c" ];
             ]
         else
           frequency
             [
               (2, map (fun i -> Term.var (i mod 6)) small_nat);
               (1, oneofl [ Term.atom "a"; Term.atom "b" ]);
               ( 3,
                 map2
                   (fun f args -> Term.mkl f args)
                   (oneofl [ "f"; "g"; "h"; "." ])
                   (list_size (int_range 1 3) (self (n / 2))) );
             ])

let gen_pair = QCheck2.Gen.pair gen_term gen_term

(* --- properties --------------------------------------------------------- *)

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let equal_agrees =
  prop "equal agrees with seed structural equality" 2000 gen_pair
    (fun (t1, t2) ->
      Term.equal t1 t2 = ref_equal t1 t2
      && Term.equal t1 (deep_copy t1)
      && ref_equal t1 (deep_copy t1))

let compare_agrees =
  prop "compare agrees with seed structural order" 2000 gen_pair
    (fun (t1, t2) ->
      Stdlib.compare (Int.compare (Term.compare t1 t2) 0)
        (Int.compare (ref_compare t1 t2) 0)
      = 0
      && Term.compare t1 (deep_copy t1) = 0)

let hash_consistent =
  prop "hash is consistent with equality" 2000 gen_pair (fun (t1, t2) ->
      Term.hash t1 = Term.hash (deep_copy t1)
      && ((not (ref_equal t1 t2)) || Term.hash t1 = Term.hash t2))

let meta_agrees =
  prop "O(1) size/ground/occurs agree with traversal" 2000 gen_term (fun t ->
      Term.size t = ref_size t
      && Term.is_ground t = ref_is_ground t
      && List.for_all
           (fun id -> Term.occurs id t = ref_occurs id t)
           [ 0; 1; 2; 3; 4; 5; 99 ])

let hashcons_sharing =
  prop "structurally equal ground callables are physically equal" 1000
    gen_term (fun t ->
      let c = deep_copy t in
      match t with
      | Term.Atom _ -> t == c
      | Term.Struct _ when Term.is_ground t -> t == c
      | _ -> Term.equal t c)

(* The headline property: variant checking via interned canonical forms
   agrees with the bijection oracle.  ≥10k pairs: 6000 independent
   random pairs (mostly negative) + 6000 positive-by-construction
   renamings (flipping one into a near-miss half the time). *)
let variant_random =
  prop "variant agrees with oracle (random pairs)" 6000 gen_pair
    (fun (t1, t2) -> Canon.variant t1 t2 = ref_variant t1 t2)

let variant_renamed =
  prop "variant agrees with oracle (renamed pairs)" 6000
    QCheck2.Gen.(pair gen_term small_nat)
    (fun (t, salt) ->
      let r = rename_by (100 + (salt mod 7)) t in
      let r =
        (* half the time, graft a leaf change to exercise near-misses *)
        if salt mod 2 = 0 then r
        else Term.mk "f" [| r; Term.atom "zz" |]
      in
      Canon.variant t r = ref_variant t r)

let canonical_stable =
  prop "canonical forms stable under renaming" 2000 gen_term (fun t ->
      let c = Canon.of_term t in
      Term.equal c (Canon.of_term c)
      && Term.equal c (Canon.of_term (rename_by 1000 t))
      && Term.equal c (Canon.of_term (Term.rename t)))

let table_keys_collapse =
  prop "Canon.Tbl collapses a variant class to one key" 500 gen_term (fun t ->
      let tbl = Canon.Tbl.create 4 in
      List.iter
        (fun v -> Canon.Tbl.replace tbl (Canon.of_term v) ())
        [ t; rename_by 17 t; rename_by 4242 t; Term.rename t ];
      Canon.Tbl.length tbl = 1)

(* --- unit tests --------------------------------------------------------- *)

let test_symbol_roundtrip () =
  List.iter
    (fun s ->
      let id = Symbol.intern s in
      Alcotest.(check string) ("name of " ^ s) s (Symbol.name id);
      Alcotest.(check bool) "re-intern is identical" true
        (Symbol.equal id (Symbol.intern s));
      Alcotest.(check int) "hash matches the canonical string's" (Hashtbl.hash s)
        (Symbol.hash id))
    [ "foo"; ""; "with space"; "[]"; "."; ","; "gp_append"; "foo" ];
  Alcotest.(check bool) "interned names are known" true (Symbol.mem "foo");
  Alcotest.(check bool) "unknown names are not" false
    (Symbol.mem "never_interned_xyzzy")

let test_atom_uniqueness () =
  Alcotest.(check bool) "atoms unique per name" true
    (Term.atom "unique_atom_t" == Term.atom "unique_atom_t");
  Alcotest.(check bool) "parser output shares atom nodes" true
    (Parser.parse_term "hello" == Term.atom "hello")

let test_struct_sharing () =
  let a = Term.mk "pt" [| Term.int 1; Term.int 2 |] in
  let b = Term.mk "pt" [| Term.int 1; Term.int 2 |] in
  Alcotest.(check bool) "hash-consed structs shared" true (a == b);
  let c = Parser.parse_term "pt(1, 2)" in
  Alcotest.(check bool) "parsed structs shared too" true (a == c)

let test_meta_word () =
  let t = Parser.parse_term "f(g(a, X), h(1, 2, 3))" in
  Alcotest.(check int) "size" 8 (Term.size t);
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  let g = Parser.parse_term "f(g(a, b), h(1, 2, 3))" in
  Alcotest.(check bool) "ground" true (Term.is_ground g)

let () =
  Alcotest.run "intern"
    [
      ( "unit",
        [
          Alcotest.test_case "symbol round-trip" `Quick test_symbol_roundtrip;
          Alcotest.test_case "atom uniqueness" `Quick test_atom_uniqueness;
          Alcotest.test_case "struct hash-consing" `Quick test_struct_sharing;
          Alcotest.test_case "meta word" `Quick test_meta_word;
        ] );
      ( "agreement-with-seed",
        [
          equal_agrees;
          compare_agrees;
          hash_consistent;
          meta_agrees;
          hashcons_sharing;
        ] );
      ("variants", [ variant_random; variant_renamed; canonical_stable;
                     table_keys_collapse ]);
    ]
