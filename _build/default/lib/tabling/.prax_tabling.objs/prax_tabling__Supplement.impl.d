lib/tabling/supplement.ml: Array Int List Parser Prax_logic Printf Term
