lib/logic/ops.ml: Hashtbl List
