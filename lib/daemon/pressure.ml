(** Pressure-tiered admission — see pressure.mli. *)

type tier = { level : int; label : string; scale : float }

type decision = Admit of tier | Shed of { retry_after_ms : int }

(* The ladder is deliberately short: two degraded rungs are enough to
   flatten the cliff, and each rung must still leave a budget a typical
   job can do useful work under (scale_spec floors at 1ms/1step). *)
let tiers =
  [
    { level = 0; label = "full"; scale = 1.0 };
    { level = 1; label = "reduced"; scale = 0.5 };
    { level = 2; label = "minimal"; scale = 0.25 };
  ]

let occupancy ~max_queue ~jobs ~pending ~inflight =
  let capacity = float_of_int (max 1 max_queue + max 1 jobs) in
  let load = float_of_int (max 0 pending + max 0 inflight) /. capacity in
  Float.min 1.0 (Float.max 0.0 load)

let tier_of_occupancy o =
  if o < 0.5 then List.nth tiers 0
  else if o < 0.75 then List.nth tiers 1
  else List.nth tiers 2

let retry_after_ms ~jobs ~pending ~inflight =
  let backlog = max 0 pending + max 0 inflight in
  let per_slot = (backlog + max 1 jobs - 1) / max 1 jobs in
  min 5000 (max 50 (100 * per_slot))

let decide ~max_queue ~jobs ~pending ~inflight =
  if pending >= max 1 max_queue then
    Shed { retry_after_ms = retry_after_ms ~jobs ~pending ~inflight }
  else Admit (tier_of_occupancy (occupancy ~max_queue ~jobs ~pending ~inflight))
