(** First-order terms, the common currency of every engine and analysis in
    this repository.

    Variables are identified by integers drawn from a global supply; the
    supply can be reset for deterministic tests.  Atoms are 0-ary functors
    and are kept distinct from [Struct] so that the common cases allocate
    less and pattern-match faster. *)

type t =
  | Var of int
  | Int of int
  | Atom of string
  | Struct of string * t array

let counter = ref 0

let fresh_var () =
  incr counter;
  Var !counter

let fresh_id () =
  incr counter;
  !counter

(** Reset the global variable supply.  Only for tests that need
    reproducible variable numbering. *)
let reset_gensym () = counter := 0

let atom s = Atom s

let mk name args = if Array.length args = 0 then Atom name else Struct (name, args)

let mkl name args =
  match args with [] -> Atom name | _ -> Struct (name, Array.of_list args)

let true_ = Atom "true"
let fail_ = Atom "fail"
let nil = Atom "[]"
let cons h t = Struct (".", [| h; t |])

let rec of_list = function [] -> nil | x :: xs -> cons x (of_list xs)

(** Functor name and arity of a callable term; variables and integers have
    none. *)
let functor_of = function
  | Atom a -> Some (a, 0)
  | Struct (f, args) -> Some (f, Array.length args)
  | Var _ | Int _ -> None

let args_of = function Struct (_, args) -> args | _ -> [||]

let is_callable = function Atom _ | Struct _ -> true | Var _ | Int _ -> false

let rec equal t1 t2 =
  match (t1, t2) with
  | Var i, Var j -> i = j
  | Int i, Int j -> i = j
  | Atom a, Atom b -> String.equal a b
  | Struct (f, a1), Struct (g, a2) ->
      String.equal f g
      && Array.length a1 = Array.length a2
      && equal_args a1 a2 0
  | _ -> false

and equal_args a1 a2 i =
  i >= Array.length a1 || (equal a1.(i) a2.(i) && equal_args a1 a2 (i + 1))

let rec compare t1 t2 =
  match (t1, t2) with
  | Var i, Var j -> Int.compare i j
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Int i, Int j -> Int.compare i j
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Atom a, Atom b -> String.compare a b
  | Atom _, _ -> -1
  | _, Atom _ -> 1
  | Struct (f, a1), Struct (g, a2) ->
      let c = String.compare f g in
      if c <> 0 then c
      else
        let c = Int.compare (Array.length a1) (Array.length a2) in
        if c <> 0 then c else compare_args a1 a2 0

and compare_args a1 a2 i =
  if i >= Array.length a1 then 0
  else
    let c = compare a1.(i) a2.(i) in
    if c <> 0 then c else compare_args a1 a2 (i + 1)

let hash (t : t) = Hashtbl.hash t

(** Fold over all variable ids occurring in [t]. *)
let rec fold_vars f acc = function
  | Var i -> f acc i
  | Int _ | Atom _ -> acc
  | Struct (_, args) -> Array.fold_left (fold_vars f) acc args

(** Variable ids in order of first occurrence, without duplicates. *)
let vars t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      out := i :: !out
    end
  in
  let rec go = function
    | Var i -> add i
    | Int _ | Atom _ -> ()
    | Struct (_, args) -> Array.iter go args
  in
  go t;
  List.rev !out

let rec is_ground = function
  | Var _ -> false
  | Int _ | Atom _ -> true
  | Struct (_, args) ->
      let n = Array.length args in
      let rec go i = i >= n || (is_ground args.(i) && go (i + 1)) in
      go 0

let occurs id t = fold_vars (fun acc i -> acc || i = id) false t

(** Number of nodes; used for table-space accounting. *)
let rec size = function
  | Var _ | Int _ | Atom _ -> 1
  | Struct (_, args) -> Array.fold_left (fun n t -> n + size t) 1 args

let rec depth = function
  | Var _ | Int _ | Atom _ -> 1
  | Struct (_, args) -> 1 + Array.fold_left (fun d t -> max d (depth t)) 0 args

(** Apply [f] to every variable, rebuilding the term. *)
let rec map_vars f = function
  | Var i -> f i
  | (Int _ | Atom _) as t -> t
  | Struct (g, args) -> Struct (g, Array.map (map_vars f) args)

(** Rename all variables in [t] to fresh ones, consistently. *)
let rename t =
  let tbl = Hashtbl.create 8 in
  map_vars
    (fun i ->
      match Hashtbl.find_opt tbl i with
      | Some v -> v
      | None ->
          let v = fresh_var () in
          Hashtbl.add tbl i v;
          v)
    t

(** Flatten a [','/2] tree into the list of conjuncts. *)
let rec conjuncts = function
  | Struct (",", [| a; b |]) -> conjuncts a @ conjuncts b
  | Atom "true" -> []
  | t -> [ t ]

let rec conj = function
  | [] -> true_
  | [ g ] -> g
  | g :: gs -> Struct (",", [| g; conj gs |])

(** Decompose a list term into [Some elements] if proper, [None] otherwise. *)
let rec list_elements = function
  | Atom "[]" -> Some []
  | Struct (".", [| h; t |]) -> (
      match list_elements t with Some es -> Some (h :: es) | None -> None)
  | _ -> None
