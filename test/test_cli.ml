(* End-to-end tests through the built binaries: the documented exit
   codes (docs/ROBUSTNESS.md) are locked here — 0 complete, 1 input
   error, 3 partial, 4 worker crashed after retries — plus the batch
   warm start against a persistent store and praxtop's EOF / SIGINT
   session behavior. *)

module Metrics = Prax_metrics.Metrics

(* the dune stanza declares both executables as deps; they live next to
   this test in the build tree (_build/default/{test,bin}), so resolve
   them relative to our own binary and the tests run the same under
   `dune runtest` and `dune exec` *)
let bin name =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bin")
    name

let xanalyze = bin "xanalyze.exe"
let praxtop = bin "praxtop.exe"

(* --- process plumbing ---------------------------------------------------- *)

type result = { code : int; out : string; err : string }

let env_with extra =
  Array.append (Unix.environment ())
    (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) extra))

(* Spawn [argv], feed [stdin_data], drain stdout/stderr concurrently
   (select: neither pipe may fill and deadlock the child), reap. *)
let run ?(env = []) ?(stdin_data = "") argv =
  let prog = List.hd argv in
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process_env prog (Array.of_list argv) (env_with env) in_r
      out_w err_w
  in
  Unix.close in_r;
  Unix.close out_w;
  Unix.close err_w;
  (* the inputs here are small (well under the pipe capacity), so the
     child cannot block on its output while we finish writing *)
  let n = String.length stdin_data in
  let written = ref 0 in
  (try
     while !written < n do
       written :=
         !written + Unix.write_substring in_w stdin_data !written (n - !written)
     done
   with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  Unix.close in_w;
  let out_buf = Buffer.create 1024 and err_buf = Buffer.create 1024 in
  let open_fds = ref [ (out_r, out_buf); (err_r, err_buf) ] in
  let chunk = Bytes.create 8192 in
  while !open_fds <> [] do
    let ready, _, _ = Unix.select (List.map fst !open_fds) [] [] (-1.) in
    List.iter
      (fun fd ->
        let buf = List.assoc fd !open_fds in
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            Unix.close fd;
            open_fds := List.remove_assoc fd !open_fds
        | k -> Buffer.add_subbytes buf chunk 0 k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      ready
  done;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED sg -> 128 + abs sg
    | Unix.WSTOPPED _ -> 255
  in
  { code; out = Buffer.contents out_buf; err = Buffer.contents err_buf }

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1))
  in
  go 0

let check_code what expected r =
  Alcotest.(check int)
    (Printf.sprintf "%s exits %d (stdout=%S stderr=%S)" what expected
       (String.sub r.out 0 (min 200 (String.length r.out)))
       (String.sub r.err 0 (min 200 (String.length r.err))))
    expected r.code

let with_temp_dir prefix f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- the documented exit codes ------------------------------------------- *)

let test_exit_complete () =
  let r =
    run ~stdin_data:"p(a). q(X) :- p(X)." [ xanalyze; "groundness"; "-" ]
  in
  check_code "complete analysis" 0 r;
  Alcotest.(check bool) "report printed" true (String.length r.out > 0)

let test_exit_input_error () =
  let r = run ~stdin_data:"p(a" [ xanalyze; "groundness"; "-" ] in
  check_code "malformed input" 1 r;
  Alcotest.(check bool) "structured diagnostic on stderr" true
    (String.length r.err > 0);
  let r = run [ xanalyze; "batch" ] in
  check_code "batch with nothing to do" 1 r;
  let r = run [ xanalyze; "batch"; "--corpus"; "no_such_benchmark" ] in
  check_code "batch with unknown benchmark" 1 r

let test_exit_partial () =
  let r =
    run [ xanalyze; "groundness"; "cs"; "--bench"; "--max-steps"; "10" ]
  in
  check_code "budget-bounded analysis" 3 r;
  Alcotest.(check bool) "partial notice on stderr" true
    (contains r.err "budget exhausted");
  (* a batch containing a partial job also exits 3 *)
  let r =
    run
      [
        xanalyze; "batch"; "--corpus"; "cs"; "--max-steps"; "10"; "--retries";
        "0";
      ]
  in
  check_code "batch with a partial job" 3 r

let test_exit_crashed () =
  (* every attempt of the one job is made to exit(70) through the
     fault-injection env surface: the batch must finish, account for
     the job, and exit 4 *)
  let r =
    run
      ~env:[ ("PRAX_INJECT_WORKER", "exit:*") ]
      [ xanalyze; "batch"; "--corpus"; "qsort"; "--retries"; "1" ]
  in
  check_code "batch with a crashed-out job" 4 r;
  Alcotest.(check bool) "crash reported in the batch summary" true
    (contains r.out "crashed");
  (* a crash on the first attempt only: absorbed by the retry, exit 0 *)
  let r =
    run
      ~env:[ ("PRAX_INJECT_WORKER", "crash:groundness:qsort:1") ]
      [ xanalyze; "batch"; "--corpus"; "qsort"; "--retries"; "2" ]
  in
  check_code "batch absorbing a first-attempt crash" 0 r;
  Alcotest.(check bool) "retry visible in the report" true
    (contains r.out "2 attempts")

(* --- the analysis registry (docs/ANALYSES.md) ----------------------------- *)

let analyses = [ "groundness"; "strictness"; "depthk"; "gaia"; "dataflow" ]

let test_list_analyses () =
  let r = run [ xanalyze; "--list-analyses" ] in
  check_code "--list-analyses" 0 r;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (contains r.out name))
    analyses

let test_analyze_dispatch () =
  (* the generic front door runs any registered analysis... *)
  let r =
    run ~stdin_data:"p(a). q(X) :- p(X)."
      [ xanalyze; "analyze"; "gaia"; "-" ]
  in
  check_code "analyze gaia" 0 r;
  (* ... accepts --set assignments declared by the analysis ... *)
  let r =
    run ~stdin_data:"p(a)."
      [ xanalyze; "analyze"; "depthk"; "-"; "--set"; "k=1" ]
  in
  check_code "analyze depthk --set k=1" 0 r;
  (* ... and maps config mistakes to the input-error exit code *)
  let r =
    run ~stdin_data:"p(a)."
      [ xanalyze; "analyze"; "depthk"; "-"; "--set"; "k=many" ]
  in
  check_code "malformed value" 1 r;
  let r =
    run ~stdin_data:"p(a)."
      [ xanalyze; "analyze"; "gaia"; "-"; "--set"; "bogus=1" ]
  in
  check_code "unknown key" 1 r;
  let r = run ~stdin_data:"p(a)." [ xanalyze; "analyze"; "nosuch"; "-" ] in
  check_code "unknown analysis" 1 r;
  Alcotest.(check bool) "registered names suggested" true
    (contains r.err "groundness");
  (* groundness mode is an enum: unknown values are rejected with a
     diagnostic naming every valid mode, and def is one of them *)
  let r =
    run ~stdin_data:"p(a)."
      [ xanalyze; "analyze"; "groundness"; "-"; "--set"; "mode=bogus" ]
  in
  check_code "unknown groundness mode" 1 r;
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " named in diagnostic") true
        (contains r.err m))
    [ "dynamic"; "compiled"; "def" ];
  let r =
    run ~stdin_data:"p(a)."
      [ xanalyze; "analyze"; "groundness"; "-"; "--set"; "mode=def" ]
  in
  check_code "analyze groundness --set mode=def" 0 r

let test_batch_per_analysis () =
  (* every registered analysis sweeps its slice of the corpus through
     the same batch door; cfg corpus is small enough for a test *)
  let r =
    run [ xanalyze; "batch"; "--corpus"; "all"; "--analysis"; "dataflow" ]
  in
  check_code "batch --analysis dataflow" 0 r;
  Alcotest.(check bool) "cfg benchmarks swept" true (contains r.out "interp");
  let r =
    run
      [
        xanalyze; "batch"; "--corpus"; "qsort"; "--analysis"; "nosuch";
      ]
  in
  check_code "batch with unknown analysis" 1 r

(* --- multicore batch (docs/PERFORMANCE.md) -------------------------------- *)

let test_batch_domains_deterministic () =
  (* the domains runner's contract: reports stream in input order with
     identical classification whatever the domain count, so stdout is
     byte-for-byte identical between --jobs 1 and --jobs 4 *)
  let batch jobs =
    run
      [
        xanalyze; "batch"; "--corpus"; "cs,qsort,disj,queens"; "--runner";
        "domains"; "--jobs"; string_of_int jobs;
      ]
  in
  let serial = batch 1 in
  check_code "domains --jobs 1" 0 serial;
  let wide = batch 4 in
  check_code "domains --jobs 4" 0 wide;
  Alcotest.(check string)
    "stdout byte-for-byte identical across domain counts" serial.out wide.out;
  (* a budget-tripped job still degrades to a sound partial in-process *)
  let r =
    run
      [
        xanalyze; "batch"; "--corpus"; "cs"; "--runner"; "domains";
        "--max-steps"; "10";
      ]
  in
  check_code "domains batch with a partial job" 3 r

let test_praxtop_analyses () =
  let r =
    run
      ~stdin_data:
        ":- analyses.\n:- analyze(gaia, bench(qsort)).\n:- analyze(nosuch, \
         bench(qsort)).\n:- halt.\n"
      [ praxtop ]
  in
  check_code "praxtop registry session" 0 r;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (contains r.out name))
    analyses;
  Alcotest.(check bool) "analysis ran" true (contains r.out "phases:");
  Alcotest.(check bool) "unknown analysis survives the session" true
    (contains r.out "unknown analysis nosuch")

(* --- batch warm start ----------------------------------------------------- *)

let corpus = "cs,disj,gabriel,qsort,mergesort"
let corpus_size = 5

let stats_int doc key =
  match Metrics.member key doc with
  | Some (Metrics.Int n) -> n
  | _ -> Alcotest.failf "stats document lacks %s" key

let counter_int doc name =
  match Metrics.member "counters" doc with
  | Some c -> (
      match Metrics.member name c with
      | Some (Metrics.Int n) -> n
      | _ -> Alcotest.failf "stats document lacks counter %s" name)
  | None -> Alcotest.fail "stats document lacks counters"

let test_batch_warm_start () =
  with_temp_dir "prax-cli-store" (fun store ->
      let batch () =
        run
          [
            xanalyze; "batch"; "--corpus"; corpus; "--jobs"; "2"; "--store";
            store; "--stats=json";
          ]
      in
      let cold = batch () in
      check_code "cold batch" 0 cold;
      let cold_doc = Metrics.json_of_string (String.trim cold.out) in
      Alcotest.(check int) "cold: all jobs complete" corpus_size
        (stats_int cold_doc "complete");
      Alcotest.(check int) "cold: nothing from the store" 0
        (stats_int cold_doc "from_cache");
      Alcotest.(check int) "cold: every result persisted" corpus_size
        (counter_int cold_doc "store.writes");
      let warm = batch () in
      check_code "warm batch" 0 warm;
      let warm_doc = Metrics.json_of_string (String.trim warm.out) in
      (* the acceptance bar is >= 90% store hits; with a quiescent store
         directory every job must hit *)
      Alcotest.(check int) "warm: every job from the store" corpus_size
        (stats_int warm_doc "from_cache");
      Alcotest.(check int) "warm: store.hits counts them" corpus_size
        (counter_int warm_doc "store.hits");
      Alcotest.(check int) "warm: no workers forked" 0
        (counter_int warm_doc "serve.workers_spawned");
      (* corrupting one snapshot byte degrades that job to recompute *)
      let snaps =
        Sys.readdir store |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
        |> List.sort String.compare
      in
      Alcotest.(check int) "one snapshot per job" corpus_size
        (List.length snaps);
      let victim = Filename.concat store (List.hd snaps) in
      let raw = In_channel.with_open_bin victim In_channel.input_all in
      let flipped = Bytes.of_string raw in
      let off = String.length raw / 2 in
      Bytes.set flipped off (Char.chr (Char.code raw.[off] lxor 0x01));
      Out_channel.with_open_bin victim (fun oc ->
          Out_channel.output_bytes oc flipped);
      let healed = batch () in
      check_code "batch over a corrupt snapshot" 0 healed;
      let healed_doc = Metrics.json_of_string (String.trim healed.out) in
      Alcotest.(check int) "corruption detected exactly once" 1
        (counter_int healed_doc "store.corrupt_detected");
      Alcotest.(check int) "the corrupt job recomputed, the rest hit"
        (corpus_size - 1)
        (stats_int healed_doc "from_cache");
      Alcotest.(check int) "recomputed result re-persisted" 1
        (counter_int healed_doc "store.writes"))

(* --- batch interrupt ------------------------------------------------------ *)

(* live PIDs (other than our own) whose environment carries [marker] —
   the orphan probe: workers inherit the batch's environment, so any
   process still wearing the marker after the batch died is a leak *)
let procs_with_env marker =
  Sys.readdir "/proc" |> Array.to_list
  |> List.filter_map int_of_string_opt
  |> List.filter (fun p ->
         p <> Unix.getpid ()
         &&
         match
           In_channel.with_open_bin
             (Printf.sprintf "/proc/%d/environ" p)
             In_channel.input_all
         with
         | s -> contains s marker
         | exception _ -> false)

let test_batch_sigterm_interrupt () =
  (* SIGTERM mid-batch: every in-flight worker is killed and reaped,
     the batch exits 143 with a notice — never a silent signal death
     (which the harness would surface as 128+N) and never an orphan *)
  let marker = Printf.sprintf "prax-orphan-probe-%d" (Unix.getpid ()) in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process_env xanalyze
      [|
        xanalyze; "batch"; "--corpus"; "all"; "--jobs"; "2"; "--retries"; "0";
      |]
      (env_with
         [
           (* wedge every worker so the batch is reliably mid-flight *)
           ("PRAX_INJECT_WORKER", "hang:*");
           ("PRAX_ORPHAN_MARKER", marker);
         ])
      null out_w err_w
  in
  Unix.close null;
  Unix.close out_w;
  Unix.close err_w;
  (* let the supervisor fork its workers before interrupting *)
  Unix.sleepf 1.0;
  Unix.kill pid Sys.sigterm;
  let out_buf = Buffer.create 1024 and err_buf = Buffer.create 1024 in
  let open_fds = ref [ (out_r, out_buf); (err_r, err_buf) ] in
  let chunk = Bytes.create 8192 in
  while !open_fds <> [] do
    let ready, _, _ = Unix.select (List.map fst !open_fds) [] [] (-1.) in
    List.iter
      (fun fd ->
        let buf = List.assoc fd !open_fds in
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            Unix.close fd;
            open_fds := List.remove_assoc fd !open_fds
        | k -> Buffer.add_subbytes buf chunk 0 k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      ready
  done;
  let _, status = Unix.waitpid [] pid in
  let err = Buffer.contents err_buf in
  (match status with
  | Unix.WEXITED 143 -> ()
  | Unix.WEXITED c ->
      Alcotest.failf "batch exited %d, wanted 143 (stderr %S)" c err
  | Unix.WSIGNALED _ ->
      Alcotest.failf "batch died of the raw signal (stderr %S)" err
  | Unix.WSTOPPED _ -> Alcotest.fail "batch stopped");
  Alcotest.(check bool) "interrupt notice on stderr" true
    (contains err "interrupted");
  (* the workers were SIGKILLed and reaped before the batch exited *)
  match procs_with_env marker with
  | [] -> ()
  | orphans ->
      Alcotest.failf "orphaned workers left behind: %s"
        (String.concat ", " (List.map string_of_int orphans))

(* --- praxtop session behavior -------------------------------------------- *)

let test_praxtop_eof_halts () =
  (* Ctrl-D at the prompt: clean halt, exit 0, same farewell as :- halt. *)
  let r = run ~stdin_data:"p(a).\n" [ praxtop ] in
  check_code "praxtop on EOF" 0 r;
  Alcotest.(check bool) "clean farewell" true (contains r.out "bye.");
  Alcotest.(check bool) "farewell on its own line" true
    (contains r.out "\nbye.")

let test_praxtop_sigint_aborts_query () =
  (* a diverging SLD query, interrupted: the query dies, the session
     survives to answer another query and halt cleanly *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid = Unix.create_process praxtop [| praxtop |] in_r out_w Unix.stderr in
  Unix.close in_r;
  Unix.close out_w;
  let send s = ignore (Unix.write_substring in_w s 0 (String.length s)) in
  send "loop :- loop.\n";
  send ":- sld(loop).\n";
  (* let it reach the divergence before interrupting *)
  Unix.sleepf 1.0;
  Unix.kill pid Sys.sigint;
  Unix.sleepf 0.2;
  send "p(a).\n";
  send ":- halt.\n";
  Unix.close in_w;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read out_r chunk 0 (Bytes.length chunk) with
    | 0 -> Unix.close out_r
    | k ->
        Buffer.add_subbytes buf chunk 0 k;
        drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let _, status = Unix.waitpid [] pid in
  let out = Buffer.contents buf in
  Alcotest.(check bool)
    (Printf.sprintf "exited cleanly (output %S)" out)
    true
    (status = Unix.WEXITED 0);
  Alcotest.(check bool) "query aborted back to the prompt" true
    (contains out "interrupted.");
  Alcotest.(check bool) "session answered a later query" true
    (contains out "no.");
  Alcotest.(check bool) "halt still farewells" true (contains out "bye.")

let () =
  (* a child closing its end early must not kill the harness *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0 = complete" `Quick test_exit_complete;
          Alcotest.test_case "1 = input error" `Quick test_exit_input_error;
          Alcotest.test_case "3 = partial" `Quick test_exit_partial;
          Alcotest.test_case "4 = crashed after retries" `Quick
            test_exit_crashed;
        ] );
      ( "registry",
        [
          Alcotest.test_case "--list-analyses" `Quick test_list_analyses;
          Alcotest.test_case "analyze dispatches any analysis" `Quick
            test_analyze_dispatch;
          Alcotest.test_case "batch --analysis" `Quick test_batch_per_analysis;
          Alcotest.test_case "praxtop :- analyses. and :- analyze(...)" `Quick
            test_praxtop_analyses;
        ] );
      ( "batch",
        [
          Alcotest.test_case "warm start, corruption heals" `Quick
            test_batch_warm_start;
          Alcotest.test_case "SIGTERM interrupts: exit 143, no orphans" `Quick
            test_batch_sigterm_interrupt;
          Alcotest.test_case "domains runner is deterministic" `Quick
            test_batch_domains_deterministic;
        ] );
      ( "praxtop",
        [
          Alcotest.test_case "EOF halts cleanly" `Quick test_praxtop_eof_halts;
          Alcotest.test_case "SIGINT aborts query, not session" `Quick
            test_praxtop_sigint_aborts_query;
        ] );
    ]
