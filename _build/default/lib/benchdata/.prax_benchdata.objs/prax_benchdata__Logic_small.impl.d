lib/benchdata/logic_small.ml:
