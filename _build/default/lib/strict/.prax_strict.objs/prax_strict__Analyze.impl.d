lib/strict/analyze.ml: Array Ast Check Database Demand Engine Eval List Prax_fp Prax_logic Prax_tabling Printf String Supplement Term Transform Unix
