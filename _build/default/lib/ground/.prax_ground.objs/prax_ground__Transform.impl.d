lib/ground/transform.ml: Array Hashtbl Int List Option Parser Prax_logic Subst Term Unify
