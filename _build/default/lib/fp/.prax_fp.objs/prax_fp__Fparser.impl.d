lib/fp/fparser.ml: Ast Flexer List Printf
