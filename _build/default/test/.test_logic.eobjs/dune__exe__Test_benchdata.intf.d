test/test_benchdata.mli:
