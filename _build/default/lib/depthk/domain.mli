(** The depth-k abstract domain of Section 5: terms of bounded depth
    over the program's symbols, a symbol γ denoting all ground terms,
    and variables. *)

open Prax_logic

val gamma : Term.t
val is_gamma : Term.t -> bool

val a_ground : Term.t -> bool
(** Abstractly ground: no variables (γ counts as ground). *)

val ground_term : Subst.t -> Term.t -> Subst.t
(** Constrain a term to denote only ground terms (variables ↦ γ). *)

val unify : Subst.t -> Term.t -> Term.t -> Subst.t option
(** Abstract unification with occur-check: γ meets a term by grounding
    it. *)

val truncate : k:int -> Term.t -> Term.t
(** Depth-k widening: subterms deeper than [k] become γ (if ground) or a
    fresh variable. *)

val hooks : k:int -> Prax_tabling.Engine.hooks
(** Engine hooks: abstract unification plus call/answer truncation. *)
