(* Tests for resource-governed evaluation (docs/ROBUSTNESS.md): budget
   exhaustion degrades to sound partial results, the fault-injection
   sweep proves no engine event can wreck the tables, and non-budget
   exceptions restore exact-answer invariants. *)

open Prax_logic
open Prax_tabling
open Prax_guard

let parse = Parser.parse_term
let show t = Pretty.term_to_string t

let engine_of ?guard src =
  let db = Database.create () in
  ignore (Database.load_string db src);
  Engine.create ?guard db

(* nat/1 diverges under concrete tabling: every derivation step yields a
   fresh deeper answer, so evaluation only stops when a budget trips. *)
let nat_src = "nat(0). nat(s(X)) :- nat(X).\nbase(1). base(2)."

(* All-ground transitive closure: full evaluation terminates, answers
   are ground, so "instance of" below is plain unifiability. *)
let path_src =
  "edge(a,b). edge(b,c). edge(c,a). edge(b,d).\n\
   path(X,Y) :- edge(X,Y).\n\
   path(X,Y) :- edge(X,Z), path(Z,Y).\n\
   base(1). base(2)."

let reason_label = function
  | Guard.Complete -> "complete"
  | Guard.Partial { reason; _ } -> Guard.reason_to_string reason

(* --- deterministic budget exhaustion ---------------------------------- *)

let test_steps_exhaustion () =
  let e = engine_of ~guard:(Guard.create ~max_steps:500 ()) nat_src in
  let n = ref 0 in
  let status = Engine.run_status e (parse "nat(X)") (fun _ -> incr n) in
  (match status with
  | Guard.Partial { reason = Guard.Steps; exhausted_entries } ->
      Alcotest.(check bool) "some entry widened" true (exhausted_entries >= 1)
  | s -> Alcotest.failf "expected partial(steps), got %s" (reason_label s));
  Alcotest.(check bool) "answers were delivered before the trip" true (!n > 0);
  Alcotest.(check bool) "tables consistent after abort" true
    (Engine.tables_consistent ~after_abort:true e);
  (* the widened entry answers its own most-general call *)
  let widened = Engine.answers_for e ("nat", 1) in
  Alcotest.(check bool) "most-general answer present" true
    (List.exists (fun a -> Unify.unifiable a (parse "nat(anything)")) widened);
  Alcotest.(check bool) "forced completions counted" true
    ((Engine.stats e).Engine.forced >= 1);
  (* same engine instance, fresh predicate: still fully usable *)
  Engine.set_guard e Guard.unlimited;
  Alcotest.(check int) "fresh query completes exactly" 2
    (List.length (Engine.query e (parse "base(X)")))

let test_deadline_exhaustion () =
  let t0 = Unix.gettimeofday () in
  let e = engine_of ~guard:(Guard.create ~timeout:0.05 ()) nat_src in
  let status = Engine.run_status e (parse "nat(X)") (fun _ -> ()) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match status with
  | Guard.Partial { reason = Guard.Deadline; _ } -> ()
  | s -> Alcotest.failf "expected partial(deadline), got %s" (reason_label s));
  Alcotest.(check bool) "deadline not tripped early" true (elapsed >= 0.04);
  Alcotest.(check bool)
    (Printf.sprintf "50ms budget honored within tolerance (took %.3fs)"
       elapsed)
    true (elapsed < 0.5)

let test_table_space_exhaustion () =
  let e = engine_of ~guard:(Guard.create ~max_table_bytes:2048 ()) nat_src in
  let status = Engine.run_status e (parse "nat(X)") (fun _ -> ()) in
  (match status with
  | Guard.Partial { reason = Guard.Table_space; _ } -> ()
  | s -> Alcotest.failf "expected partial(table-space), got %s"
           (reason_label s));
  Alcotest.(check bool) "tables consistent after abort" true
    (Engine.tables_consistent ~after_abort:true e)

let test_sticky_retrip () =
  (* a driver sharing one guard across queries: after the first trip the
     rest degrade immediately instead of burning a fresh budget each *)
  let g = Guard.create ~max_steps:100 () in
  let e1 = engine_of ~guard:g nat_src in
  ignore (Engine.run_status e1 (parse "nat(X)") (fun _ -> ()));
  let steps_after_first = Guard.steps g in
  let e2 = engine_of ~guard:g nat_src in
  let status = Engine.run_status e2 (parse "nat(X)") (fun _ -> ()) in
  Alcotest.(check bool) "second run partial" true (Guard.is_partial status);
  Alcotest.(check bool) "second run tripped on its first check" true
    (Guard.steps g <= steps_after_first + 1)

let test_reset_after_abort () =
  let e = engine_of ~guard:(Guard.create ~max_steps:300 ()) path_src in
  ignore (Engine.run_status e (parse "nat(X)") (fun _ -> ()));
  Engine.set_guard e Guard.unlimited;
  Engine.reset_tables e;
  Alcotest.(check int) "stats cleared" 0 (Engine.stats e).Engine.forced;
  Alcotest.(check int) "space accounting cleared" 0
    (Engine.table_space_bytes e);
  let sols, status = Engine.query_status e (parse "path(a,Y)") in
  Alcotest.(check string) "complete after reset" "complete"
    (reason_label status);
  Alcotest.(check int) "exact answers after reset" 4 (List.length sols)

(* --- fault-injection sweep -------------------------------------------- *)

let full_path_answers () =
  let e = engine_of path_src in
  Engine.query e (parse "path(X,Y)")

let path_events () =
  Inject.events_of (fun g ->
      let e = engine_of ~guard:g path_src in
      Engine.run e (parse "path(X,Y)") (fun _ -> ()))

(* Abort at every event of the reference run: the partial tables must
   over-approximate the full answer set wherever the queried predicate
   was explored at all, and the engine must stay usable. *)
let test_inject_abort_sweep () =
  let full = full_path_answers () in
  Alcotest.(check bool) "reference run nonempty" true (full <> []);
  let events = path_events () in
  Alcotest.(check bool) "reference run has events" true (events > 0);
  for n = 1 to events do
    let e = engine_of ~guard:(Inject.abort_at n) path_src in
    let status = Engine.run_status e (parse "path(X,Y)") (fun _ -> ()) in
    (match status with
    | Guard.Partial { reason = Guard.Fault _; _ } -> ()
    | s ->
        Alcotest.failf "event %d: expected partial(fault), got %s" n
          (reason_label s));
    if not (Engine.tables_consistent ~after_abort:true e) then
      Alcotest.failf "event %d: tables inconsistent after abort" n;
    (* soundness: once the predicate has a table entry, every true
       answer must be an instance of some tabled answer *)
    if Engine.calls_for e ("path", 2) <> [] then begin
      let partial = Engine.answers_for e ("path", 2) in
      List.iter
        (fun ans ->
          if not (List.exists (fun p -> Unify.unifiable p ans) partial) then
            Alcotest.failf "event %d: true answer %s not covered" n (show ans))
        full
    end;
    (* the same engine instance completes a fresh query afterwards *)
    Engine.set_guard e Guard.unlimited;
    if List.length (Engine.query e (parse "base(X)")) <> 2 then
      Alcotest.failf "event %d: engine unusable after abort" n
  done

(* A non-budget exception (a crashing builtin, say) recovers to *exact*
   answers: interrupted entries are discarded, not widened, so re-running
   unlimited re-derives precisely the reference answer set. *)
let test_inject_raise_sweep () =
  let full = List.sort compare (List.map show (full_path_answers ())) in
  let events = path_events () in
  for n = 1 to events do
    let e = engine_of ~guard:(Inject.raise_at n Exit) path_src in
    (match Engine.run_status e (parse "path(X,Y)") (fun _ -> ()) with
    | _ -> Alcotest.failf "event %d: expected the injected raise" n
    | exception Exit -> ());
    if not (Engine.tables_consistent ~after_abort:true e) then
      Alcotest.failf "event %d: tables inconsistent after recovery" n;
    Engine.set_guard e Guard.unlimited;
    let again =
      List.sort compare (List.map show (Engine.query e (parse "path(X,Y)")))
    in
    if again <> full then
      Alcotest.failf "event %d: inexact answers after recovery" n
  done

(* --- partial results are sound at the analysis level ------------------- *)

let test_depthk_partial_sound () =
  let module A = Prax_depthk.Analyze in
  let src = path_src in
  let fullrep = A.analyze ~k:1 src in
  Alcotest.(check string) "reference complete" "complete"
    (reason_label fullrep.A.status);
  let partrep = A.analyze ~guard:(Guard.create ~max_steps:10 ()) ~k:1 src in
  Alcotest.(check bool) "budgeted run partial" true
    (Guard.is_partial partrep.A.status);
  (* claims may only weaken: anything the partial report asserts must
     also hold in the reference report *)
  List.iter
    (fun (pr : A.pred_result) ->
      match A.result_for fullrep pr.A.pred with
      | None -> Alcotest.fail "predicate sets differ"
      | Some fr ->
          if pr.A.never_succeeds && not fr.A.never_succeeds then
            Alcotest.failf "unsound never_succeeds claim for %s"
              (fst pr.A.pred);
          Array.iteri
            (fun i d ->
              if d && not fr.A.definite.(i) then
                Alcotest.failf "unsound definiteness claim for %s arg %d"
                  (fst pr.A.pred) (i + 1))
            pr.A.definite)
    partrep.A.results

let test_sld_partial () =
  let db = Database.create () in
  ignore (Database.load_string db nat_src);
  let sols, status =
    Sld.solutions_status ~guard:(Guard.create ~max_steps:200 ()) db
      (parse "nat(X)")
  in
  (match status with
  | Guard.Partial { reason = Guard.Steps; _ } -> ()
  | s -> Alcotest.failf "expected partial(steps), got %s" (reason_label s));
  Alcotest.(check bool) "prefix of solutions returned" true (sols <> []);
  let sols2, status2 =
    Sld.solutions_status ~guard:(Guard.create ~max_steps:200 ()) db
      (parse "base(X)")
  in
  Alcotest.(check string) "terminating goal complete" "complete"
    (reason_label status2);
  Alcotest.(check int) "all solutions" 2 (List.length sols2)

let test_datalog_partial () =
  let module D = Prax_bottomup.Datalog in
  let x = Term.fresh_var ()
  and y = Term.fresh_var ()
  and z = Term.fresh_var () in
  let a pred args = { D.pred; args = Array.of_list args } in
  let fact p args = { D.head = a p args; body = [] } in
  let rules =
    [
      { D.head = a ("tc", 2) [ x; y ]; body = [ a ("edge", 2) [ x; y ] ] };
      {
        D.head = a ("tc", 2) [ x; z ];
        body = [ a ("edge", 2) [ x; y ]; a ("tc", 2) [ y; z ] ];
      };
      fact ("edge", 2) [ Term.atom "a"; Term.atom "b" ];
      fact ("edge", 2) [ Term.atom "b"; Term.atom "c" ];
      fact ("edge", 2) [ Term.atom "c"; Term.atom "d" ];
      fact ("edge", 2) [ Term.atom "d"; Term.atom "a" ];
    ]
  in
  let intensional, db = D.load rules in
  let st = D.seminaive intensional db in
  Alcotest.(check string) "unlimited run complete" "complete"
    (reason_label st.D.status);
  let full_tc = D.tuples_of db ("tc", 2) in
  let intensional2, db2 = D.load rules in
  let st2 =
    D.seminaive ~guard:(Guard.create ~max_steps:5 ()) intensional2 db2
  in
  Alcotest.(check bool) "budgeted run partial" true
    (Guard.is_partial st2.D.status);
  Alcotest.(check bool) "no facts invented" true
    (D.fact_count db2 <= D.fact_count db);
  (* bottom-up partial results under-approximate: every derived fact is
     a true fact *)
  List.iter
    (fun tup ->
      if not (List.mem tup full_tc) then
        Alcotest.fail "partial run derived an untrue fact")
    (D.tuples_of db2 ("tc", 2))

(* --- guard unit behavior ----------------------------------------------- *)

let test_duration_of_string () =
  let check_dur s expect =
    match Guard.duration_of_string s with
    | Some v -> Alcotest.(check (float 1e-9)) s expect v
    | None -> Alcotest.failf "failed to parse %S" s
  in
  check_dur "100ms" 0.1;
  check_dur "2s" 2.0;
  check_dur "1.5s" 1.5;
  check_dur "90us" 9e-5;
  check_dur "2m" 120.0;
  check_dur "250" 250.0;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Guard.duration_of_string s = None))
    [ "bogus"; "-5ms"; "5h"; "" ]

let test_combine () =
  let p n =
    Guard.Partial { reason = Guard.Steps; exhausted_entries = n }
  in
  Alcotest.(check string) "complete unit" "complete"
    (Guard.status_to_string (Guard.combine Guard.Complete Guard.Complete));
  (match Guard.combine Guard.Complete (p 3) with
  | Guard.Partial { exhausted_entries = 3; _ } -> ()
  | _ -> Alcotest.fail "complete is the unit");
  match
    Guard.combine (p 2)
      (Guard.Partial { reason = Guard.Deadline; exhausted_entries = 5 })
  with
  | Guard.Partial { reason = Guard.Steps; exhausted_entries = 7 } -> ()
  | _ -> Alcotest.fail "partials keep the first reason and sum counts"

let test_schema_versioning () =
  let module M = Prax_metrics.Metrics in
  Alcotest.(check int) "schema bumped for the incr counter family" 6
    M.schema_version;
  Alcotest.(check bool) "v1 documents still accepted" true
    (M.schema_version_supported 1);
  Alcotest.(check bool) "current version accepted" true
    (M.schema_version_supported M.schema_version);
  Alcotest.(check bool) "future versions rejected" false
    (M.schema_version_supported (M.schema_version + 1));
  Alcotest.(check bool) "v0 rejected" false (M.schema_version_supported 0)

let () =
  Alcotest.run "guard"
    [
      ( "budgets",
        [
          Alcotest.test_case "steps exhaustion degrades soundly" `Quick
            test_steps_exhaustion;
          Alcotest.test_case "deadline honored within tolerance" `Quick
            test_deadline_exhaustion;
          Alcotest.test_case "table-space budget trips" `Quick
            test_table_space_exhaustion;
          Alcotest.test_case "sticky budgets re-trip" `Quick
            test_sticky_retrip;
          Alcotest.test_case "reset_tables clears abort state" `Quick
            test_reset_after_abort;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "abort sweep: sound over-approximation" `Quick
            test_inject_abort_sweep;
          Alcotest.test_case "raise sweep: exact recovery" `Quick
            test_inject_raise_sweep;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "depth-k partial claims only weaken" `Quick
            test_depthk_partial_sound;
          Alcotest.test_case "sld partial under-approximates" `Quick
            test_sld_partial;
          Alcotest.test_case "datalog partial under-approximates" `Quick
            test_datalog_partial;
        ] );
      ( "unit",
        [
          Alcotest.test_case "duration_of_string" `Quick
            test_duration_of_string;
          Alcotest.test_case "status combine" `Quick test_combine;
          Alcotest.test_case "stats schema versioning" `Quick
            test_schema_versioning;
        ] );
    ]
