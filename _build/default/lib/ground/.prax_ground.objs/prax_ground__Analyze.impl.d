lib/ground/analyze.ml: Array Bf Database Engine Iff List Parser Prax_logic Prax_prop Prax_tabling Printf Qm Seq String Term Transform Unix
