lib/logic/database.mli: Parser Subst Term
