(** Global symbol interning: every functor and atom name is mapped to a
    small integer id with an inverse table, so that the canonical
    (physically unique) spelling of a name can be recovered in O(1) and
    name equality on interned strings degenerates to pointer equality.

    The table is process-wide and append-only; ids are dense from 0.
    Interning is idempotent: [intern s] returns the same id for every
    string structurally equal to [s], and [name (intern s)] returns one
    canonical [string] instance shared by every term built from it. *)

type t = private int
(** A symbol id.  Dense, starting at 0, stable for the process
    lifetime. *)

val intern : string -> t
(** Intern a name, registering it on first sight (counted by the
    [intern.symbols] metric). *)

val name : t -> string
(** The canonical spelling.  O(1); total on ids produced by {!intern}. *)

val hash : t -> int
(** Precomputed hash of the symbol's name.  O(1), consistent with
    [Hashtbl.hash (name t)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val count : unit -> int
(** Number of distinct symbols interned so far. *)

val mem : string -> bool
(** Has this name been interned already?  (Does not intern.) *)
