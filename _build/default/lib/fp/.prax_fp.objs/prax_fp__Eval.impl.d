lib/fp/eval.ml: Array Ast Hashtbl List String
