lib/benchdata/logic_read.ml:
