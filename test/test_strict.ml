(* Tests for strictness analysis: the paper's Figure 4 example, the
   demand lattice, base relations, collection, supplementary tabling
   equivalence, and the soundness property against the lazy interpreter:
   forcing an argument the analysis marks strict never turns a
   terminating program into a diverging one. *)

open Prax_fp
open Prax_strict

let analyze = Analyze.analyze

let demands rep f =
  match Analyze.result_for rep f with
  | Some r -> (r.Analyze.e_demands, r.Analyze.d_demands)
  | None -> Alcotest.failf "no result for %s" f

let dstr = Analyze.demand_string

(* --- the paper's example ----------------------------------------------- *)

let ap_src = "ap([], ys) = ys;\nap(x:xs, ys) = x : ap(xs, ys);"

let test_ap_paper_result () =
  let rep = analyze ap_src in
  let e, d = demands rep "ap" in
  Alcotest.(check string) "ee-strict" "ee" (dstr e);
  Alcotest.(check string) "d-strict in 1st only" "dn" (dstr d)

(* --- demand lattice ------------------------------------------------------ *)

let test_demand_lattice () =
  let open Demand in
  Alcotest.(check bool) "glb e d" true (glb E D = D);
  Alcotest.(check bool) "glb d n" true (glb D N = N);
  Alcotest.(check bool) "lub d n" true (lub D N = D);
  Alcotest.(check bool) "lub e anything" true (lub E N = E);
  Alcotest.(check bool) "strict e" true (is_strict E);
  Alcotest.(check bool) "strict d" true (is_strict D);
  Alcotest.(check bool) "not strict n" false (is_strict N);
  (* unbound variables collect as N *)
  Alcotest.(check bool) "var is N" true
    (of_term (Prax_logic.Term.var 3) = Some N)

(* --- basic propagations -------------------------------------------------- *)

let test_identity () =
  let rep = analyze "id(x) = x;" in
  let e, d = demands rep "id" in
  Alcotest.(check string) "e passes through" "e" (dstr e);
  Alcotest.(check string) "d passes through" "d" (dstr d)

let test_primitive_strict () =
  let rep = analyze "add(x, y) = x + y;" in
  let e, d = demands rep "add" in
  Alcotest.(check string) "flat e" "ee" (dstr e);
  Alcotest.(check string) "flat d" "ee" (dstr d)

let test_const_ignores () =
  let rep = analyze "konst(x, y) = x;" in
  let _, d = demands rep "konst" in
  Alcotest.(check string) "second arg never demanded" "dn" (dstr d)

let test_if_joins_branches () =
  (* x demanded in both branches: strict; y and z in one each: not *)
  let rep = analyze "f(c, x, y, z) = if c == 0 then x + y else x + z;" in
  let _, d = demands rep "f" in
  Alcotest.(check string) "condition + both-branch var" "eenn" (dstr d)

let test_constructor_lazy () =
  (* building a cons demands nothing of its components under d *)
  let rep = analyze "wrap(x) = x : [];" in
  let e, d = demands rep "wrap" in
  Alcotest.(check string) "e forces components" "e" (dstr e);
  Alcotest.(check string) "d forces nothing" "n" (dstr d)

let test_pattern_match_demands () =
  (* matching forces the scrutinized argument *)
  let rep = analyze "null([]) = True;\nnull(x:xs) = False;" in
  let _, d = demands rep "null" in
  Alcotest.(check string) "whnf demand from matching" "d" (dstr d)

let test_deep_pattern () =
  let rep = analyze "second(x:y:rest) = y;" in
  let _, d = demands rep "second" in
  (* matching two cons cells and returning y: at least d *)
  Alcotest.(check string) "nested pattern" "d" (dstr d)

let test_multiple_occurrences_join () =
  let rep = analyze "both(x) = x + x;" in
  let _, d = demands rep "both" in
  Alcotest.(check string) "join of occurrences" "e" (dstr d)

let test_let_laziness () =
  (* the let binding is only demanded when used *)
  let rep = analyze "f(x, y) = let u = y + 1 in x;" in
  let _, d = demands rep "f" in
  Alcotest.(check string) "unused let leaves y alone" "dn" (dstr d);
  let rep2 = analyze "g(x, y) = let u = y + 1 in x + u;" in
  let _, d2 = demands rep2 "g" in
  Alcotest.(check string) "used let forces y" "ee" (dstr d2)

let test_nonterminating_function () =
  let rep = analyze "bot = bot;" in
  (match Analyze.result_for rep "bot" with
  | Some r ->
      Alcotest.(check bool) "no answers under e" true
        (r.Analyze.e_demands = None)
  | None -> Alcotest.fail "missing bot")

let test_mutual_recursion () =
  let rep =
    analyze
      "even(n) = if n == 0 then True else odd(n - 1);\n\
       odd(n) = if n == 0 then False else even(n - 1);"
  in
  let _, d = demands rep "even" in
  Alcotest.(check string) "mutually recursive strictness" "e" (dstr d)

let test_short_circuit_and () =
  (* a and b: b only demanded when a is True -> not strict in b *)
  let rep = analyze "conj(a, b) = a and b;" in
  let _, d = demands rep "conj" in
  Alcotest.(check string) "short-circuit" "en" (dstr d)

(* --- supplementary tabling equivalence ----------------------------------- *)

let test_supplementary_same_results () =
  List.iter
    (fun src ->
      let r1 = Analyze.analyze ~supplementary:true src in
      let r2 = Analyze.analyze ~supplementary:false src in
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            (a.Analyze.fname ^ " e-demands agree")
            (dstr a.Analyze.e_demands) (dstr b.Analyze.e_demands);
          Alcotest.(check string)
            (a.Analyze.fname ^ " d-demands agree")
            (dstr a.Analyze.d_demands) (dstr b.Analyze.d_demands))
        r1.Analyze.results r2.Analyze.results)
    [
      ap_src;
      "f(c, x, y, z) = if c == 0 then x + y else x + z;";
      "sum([]) = 0;\nsum(x:xs) = x + sum(xs);\n\
       sq([]) = [];\nsq(x:xs) = (x*x) : sq(xs);\nmain(l) = sum(sq(l));";
    ]

(* --- corpus sanity --------------------------------------------------------- *)

let test_corpus_known_results () =
  (* spot-check well-understood functions from the benchmark corpus *)
  let src b =
    (Option.get (Prax_benchdata.Registry.find_fp b))
      .Prax_benchdata.Registry.source
  in
  let rep = analyze (src "mergesort") in
  let _, d = demands rep "merge" in
  Alcotest.(check string) "merge d-strict in both" "dd" (dstr d);
  let _, dm = demands rep "msort" in
  Alcotest.(check string) "msort d-strict" "d" (dstr dm);
  let rep2 = analyze (src "quicksort") in
  let _, dq = demands rep2 "qsort" in
  Alcotest.(check string) "qsort d-strict" "d" (dstr dq);
  let eq, _ = demands rep2 "smaller" in
  (* the base equation smaller(p, []) ignores the pivot, so no demand on
     it is guaranteed across equations; the list is always forced *)
  Alcotest.(check string) "smaller under e" "ne" (dstr eq)

(* --- soundness against the interpreter ------------------------------------ *)

(* For strict arguments, forcing before the call must preserve results on
   terminating inputs. *)
let test_soundness_forcing () =
  let cases =
    [
      (ap_src, "ap",
       [ Ast.Con (":", [ Ast.Int 1; Ast.Con ("[]", []) ]); Ast.Con ("[]", []) ]);
      ( "sum([]) = 0;\nsum(x:xs) = x + sum(xs);",
        "sum",
        [
          Ast.Con (":", [ Ast.Int 2; Ast.Con (":", [ Ast.Int 3; Ast.Con ("[]", []) ]) ]);
        ] );
      ( "f(c, x, y, z) = if c == 0 then x + y else x + z;",
        "f",
        [ Ast.Int 0; Ast.Int 1; Ast.Int 2; Ast.Int 3 ] );
    ]
  in
  List.iter
    (fun (src, fname, args) ->
      let rep = analyze src in
      let r = Option.get (Analyze.result_for rep fname) in
      let strict = Analyze.strict_args r in
      let prog = Check.parse_and_check src in
      let plain = Eval.run prog fname args in
      let forced = Eval.run_forcing prog fname args ~force_args:strict in
      Alcotest.(check string) (fname ^ " forced = plain") plain forced)
    cases

(* soundness property on random list inputs for corpus sorts *)
let gen_int_list = QCheck2.Gen.(list_size (int_range 0 8) (int_range (-20) 20))

let list_expr xs =
  List.fold_right
    (fun x acc -> Ast.Con (":", [ Ast.Int x; acc ]))
    xs (Ast.Con ("[]", []))

let prop_force_strict_sound =
  QCheck2.Test.make ~name:"forcing strict args preserves msort results"
    ~count:60 gen_int_list (fun xs ->
      let src =
        (Option.get (Prax_benchdata.Registry.find_fp "mergesort"))
          .Prax_benchdata.Registry.source
      in
      let rep = analyze src in
      let r = Option.get (Analyze.result_for rep "msort") in
      let strict = Analyze.strict_args r in
      let prog = Check.parse_and_check src in
      let args = [ list_expr xs ] in
      let plain = Eval.run prog "msort" args in
      let forced = Eval.run_forcing prog "msort" args ~force_args:strict in
      String.equal plain forced)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_force_strict_sound ]

let () =
  Alcotest.run "prax_strict"
    [
      ( "paper example",
        [ Alcotest.test_case "ap strictness" `Quick test_ap_paper_result ] );
      ("lattice", [ Alcotest.test_case "demand order" `Quick test_demand_lattice ]);
      ( "propagation",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "primitives" `Quick test_primitive_strict;
          Alcotest.test_case "constant function" `Quick test_const_ignores;
          Alcotest.test_case "if joins branches" `Quick test_if_joins_branches;
          Alcotest.test_case "lazy constructors" `Quick test_constructor_lazy;
          Alcotest.test_case "pattern demand" `Quick test_pattern_match_demands;
          Alcotest.test_case "deep pattern" `Quick test_deep_pattern;
          Alcotest.test_case "occurrence join" `Quick test_multiple_occurrences_join;
          Alcotest.test_case "let laziness" `Quick test_let_laziness;
          Alcotest.test_case "nontermination" `Quick test_nonterminating_function;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "short-circuit and" `Quick test_short_circuit_and;
        ] );
      ( "supplementary tabling",
        [
          Alcotest.test_case "same results" `Quick
            test_supplementary_same_results;
        ] );
      ( "corpus",
        [ Alcotest.test_case "known results" `Quick test_corpus_known_results ] );
      ( "soundness",
        Alcotest.test_case "forcing strict args" `Quick test_soundness_forcing
        :: qsuite );
    ]
