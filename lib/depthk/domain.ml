(** The non-enumerative abstract domain of Section 5: terms of depth ≤ k
    over the program's function symbols, a distinguished 0-ary symbol γ
    denoting the set of all ground terms, and variables.

    Concretization: γ ↦ all ground terms; a variable ↦ all terms; a
    constructed abstract term ↦ the concrete terms with the same root
    whose subterms concretize the abstract subterms.

    Abstract unification differs from the engine's syntactic unification
    (γ unifies with any term it can ground) and performs the occur-check,
    so — as in the paper — it is implemented "at a higher level" and
    plugged into the tabled engine through its hooks. *)

open Prax_logic

let gamma = Term.atom "$gamma"

let is_gamma = function Term.Atom "$gamma" -> true | _ -> false

(** Ground in the abstract sense: no variables (γ counts as ground).
    γ is a 0-ary symbol, hence ground in the syntactic sense too, so this
    coincides with {!Term.is_ground} — an O(1) flag read. *)
let a_ground = Term.is_ground

(* Constrain [t] to denote only ground terms: variables are bound to γ;
   structures recurse.  Fails never (grounding is always satisfiable). *)
let rec ground_term (s : Subst.t) (t : Term.t) : Subst.t =
  match Subst.walk s t with
  | Term.Var v -> Subst.bind s v gamma
  | Term.Int _ | Term.Atom _ -> s
  | Term.Struct (_, args, _) -> Array.fold_left ground_term s args

(** Abstract unification with occur-check. *)
let rec unify (s : Subst.t) (t1 : Term.t) (t2 : Term.t) : Subst.t option =
  let t1 = Subst.walk s t1 and t2 = Subst.walk s t2 in
  match (t1, t2) with
  | Term.Var i, Term.Var j when i = j -> Some s
  | Term.Var i, t | t, Term.Var i ->
      if Subst.occurs_check s i t then None else Some (Subst.bind s i t)
  | Term.Atom "$gamma", Term.Atom "$gamma" -> Some s
  | Term.Atom "$gamma", t | t, Term.Atom "$gamma" ->
      (* γ meets t: t is constrained to its ground instances *)
      Some (ground_term s t)
  | Term.Int a, Term.Int b -> if a = b then Some s else None
  | Term.Atom a, Term.Atom b -> if String.equal a b then Some s else None
  | Term.Struct (f, a1, _), Term.Struct (g, a2, _)
    when String.equal f g && Array.length a1 = Array.length a2 ->
      let n = Array.length a1 in
      let rec go s i =
        if i >= n then Some s
        else
          match unify s a1.(i) a2.(i) with
          | Some s' -> go s' (i + 1)
          | None -> None
      in
      go s 0
  | _ -> None

(** Depth-k truncation: subterms that would sit deeper than [k] are
    widened to γ if abstractly ground, otherwise to a fresh variable.
    Applied to canonical calls and answers, it keeps the table domain
    finite, which is what guarantees termination. *)
let truncate ~k (t : Term.t) : Term.t =
  let rec go depth t =
    match t with
    | Term.Var _ | Term.Int _ | Term.Atom _ -> t
    | Term.Struct (_, args, _) ->
        if depth >= k then if a_ground t then gamma else Term.fresh_var ()
        else Term.rebuild t (Array.map (go (depth + 1)) args)
  in
  go 0 t

(** Engine hooks for depth-k evaluation: abstract unification plus
    call/answer truncation (re-canonicalized, as the table requires
    canonical keys). *)
let hooks ~k : Prax_tabling.Engine.hooks =
  {
    Prax_tabling.Engine.unify;
    abstract_call = (fun t -> Canon.of_term (truncate ~k t));
    abstract_answer = (fun t -> Canon.of_term (truncate ~k t));
    widen = None;
  }
