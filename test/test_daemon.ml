(* The resident analysis daemon (docs/ROBUSTNESS.md "serving under
   load").  In-process: token-bucket refill timing and the prax.wire
   grammar.  End-to-end against a live praxd: analyze round trips, the
   warm cache, queue-full and rate-limit shedding, malformed/oversized
   frame rejection, drain with in-flight jobs, stale-socket recovery
   after SIGKILL, and refusal to double-serve a live socket. *)

module Metrics = Prax_metrics.Metrics
module Wire = Prax_daemon.Wire
module Admission = Prax_daemon.Admission
module Client = Prax_daemon.Client

let bin name =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bin")
    name

let praxd = bin "praxd.exe"
let xanalyze = bin "xanalyze.exe"

(* --- admission: token buckets (deterministic, clock injected) ----------- *)

let test_token_bucket_refill () =
  let a = Admission.create ~rate:2.0 ~burst:2.0 in
  (* a fresh client starts with a full burst *)
  Alcotest.(check bool) "burst 1" true (Admission.admit a ~client:"c" ~now:0.);
  Alcotest.(check bool) "burst 2" true (Admission.admit a ~client:"c" ~now:0.);
  Alcotest.(check bool) "empty" false (Admission.admit a ~client:"c" ~now:0.);
  (* refill at 2 tokens/s: 0.4s -> 0.8 tokens, still short *)
  Alcotest.(check bool) "0.4s: not yet" false
    (Admission.admit a ~client:"c" ~now:0.4);
  (* 0.55s from empty: >= 1 token (0.4s refill left the 0.8 in place) *)
  Alcotest.(check bool) "0.55s: one token back" true
    (Admission.admit a ~client:"c" ~now:0.55);
  Alcotest.(check bool) "and spent again" false
    (Admission.admit a ~client:"c" ~now:0.55);
  (* a long idle caps at burst, not unbounded accumulation *)
  Alcotest.(check bool) "cap 1" true (Admission.admit a ~client:"c" ~now:60.);
  Alcotest.(check bool) "cap 2" true (Admission.admit a ~client:"c" ~now:60.);
  Alcotest.(check bool) "capped at burst" false
    (Admission.admit a ~client:"c" ~now:60.);
  (* time running backwards refills nothing and does not raise *)
  Alcotest.(check bool) "clock skew safe" false
    (Admission.admit a ~client:"c" ~now:59.);
  (* clients are independent *)
  Alcotest.(check bool) "other client unaffected" true
    (Admission.admit a ~client:"d" ~now:60.);
  Alcotest.(check int) "two clients tracked" 2 (Admission.clients a)

let test_token_bucket_disabled () =
  let a = Admission.create ~rate:0. ~burst:1.0 in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "rate 0 admits (%d)" i)
      true
      (Admission.admit a ~client:"c" ~now:0.)
  done

(* --- the wire grammar ---------------------------------------------------- *)

let test_wire_grammar () =
  let reject line what =
    match Wire.parse_request line with
    | Ok _ -> Alcotest.failf "%s: accepted %S" what line
    | Error _ -> ()
  in
  reject "not JSON" "]junk[";
  reject "wrong schema" {|{"wire":"other.wire","version":1,"op":"ping"}|};
  reject "future version" {|{"wire":"prax.wire","version":99,"op":"ping"}|};
  reject "unknown op" {|{"wire":"prax.wire","version":1,"op":"reboot"}|};
  reject "missing op" {|{"wire":"prax.wire","version":1}|};
  reject "analyze missing source"
    {|{"wire":"prax.wire","version":1,"op":"analyze","analysis":"g","input":"f"}|};
  reject "non-string config value"
    {|{"wire":"prax.wire","version":1,"op":"analyze","analysis":"g","input":"f","source":"s","config":{"k":2}}|};
  (* a well-formed analyze round-trips through the serializer *)
  let req =
    {
      Wire.id = Metrics.Int 7;
      client = Some "t";
      op =
        Wire.Analyze
          {
            analysis = "groundness";
            input = "x.pl";
            source = "p(a).";
            config = [ ("mode", "dynamic") ];
          };
    }
  in
  (match Wire.parse_request (Wire.request_to_string req) with
  | Error e -> Alcotest.failf "round trip: %s" e
  | Ok r -> (
      Alcotest.(check bool) "id survives" true (r.Wire.id = Metrics.Int 7);
      match r.Wire.op with
      | Wire.Analyze { analysis; config; _ } ->
          Alcotest.(check string) "analysis survives" "groundness" analysis;
          Alcotest.(check (list (pair string string)))
            "config survives"
            [ ("mode", "dynamic") ]
            config
      | _ -> Alcotest.fail "op changed"));
  (* response documents validate and carry their status *)
  let line = Wire.response ~id:(Metrics.Int 7) ~status:"overloaded" [] in
  match Wire.response_status (Metrics.json_of_string line) with
  | Ok s -> Alcotest.(check string) "status extracted" "overloaded" s
  | Error e -> Alcotest.failf "response rejected: %s" e

(* --- e2e plumbing --------------------------------------------------------- *)

let env_with extra =
  Array.append (Unix.environment ())
    (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) extra))

let fresh_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "praxd-t-%d-%d.sock" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xfffff))

let devnull () = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0o600

(* spawn praxd serve with [args]; stdout/stderr to /dev/null *)
let spawn_praxd ?(env = []) ~socket args =
  let null = devnull () in
  let pid =
    Unix.create_process_env praxd
      (Array.of_list
         ([ praxd; "serve"; "--socket"; socket; "-q" ] @ args))
      (env_with env) null null null
  in
  Unix.close null;
  pid

let ping ?(timeout = 5.) socket =
  Client.request ~timeout ~socket
    { Wire.id = Metrics.Int 0; client = Some "test"; op = Wire.Ping }

let wait_ready socket =
  let rec loop n =
    if n = 0 then Alcotest.fail "praxd did not become ready"
    else
      match ping socket with
      | Ok ("ok", _) -> ()
      | _ ->
          Unix.sleepf 0.05;
          loop (n - 1)
  in
  loop 200

let reap ?(kill = true) pid =
  if kill then (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, st -> st
  | exception Unix.Unix_error _ -> Unix.WEXITED 255

let with_daemon ?env ?(args = []) f =
  let socket = fresh_socket () in
  let pid = spawn_praxd ?env ~socket args in
  Fun.protect
    ~finally:(fun () ->
      ignore (reap pid);
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (socket ^ ".pid") with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready socket;
      f ~socket ~pid)

let analyze_req ?(client = "test") ~input ~source () =
  {
    Wire.id = Metrics.Int 1;
    client = Some client;
    op =
      Wire.Analyze
        { analysis = "groundness"; input; source; config = [] };
  }

let request_status ?(timeout = 30.) socket req =
  match Client.request ~timeout ~socket req with
  | Ok (status, doc) -> (status, doc)
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

(* raw-socket side of the protocol, for async sends and bad frames *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd s =
  let n = String.length s in
  let w = ref 0 in
  while !w < n do
    w := !w + Unix.write_substring fd s !w (n - !w)
  done

let raw_recv_line ?(timeout = 10.) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1 in
  let rec loop () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then Alcotest.fail "timed out awaiting response line";
    match Unix.select [ fd ] [] [] left with
    | [], _, _ -> loop ()
    | _ -> (
        match Unix.read fd chunk 0 1 with
        | 0 -> `Eof
        | _ ->
            if Bytes.get chunk 0 = '\n' then `Line (Buffer.contents buf)
            else begin
              Buffer.add_bytes buf chunk;
              loop ()
            end)
  in
  loop ()

let status_of_line line =
  match Wire.response_status (Metrics.json_of_string line) with
  | Ok s -> s
  | Error e -> Alcotest.failf "bad response %S: %s" line e

(* --- e2e: round trips, warm cache, lifecycle ------------------------------ *)

let test_analyze_and_warm_cache () =
  with_daemon (fun ~socket ~pid ->
      let req = analyze_req ~input:"t.pl" ~source:"p(a). q(X) :- p(X)." () in
      let status, doc = request_status socket req in
      Alcotest.(check string) "cold is complete" "complete" status;
      (match Metrics.member "report" doc with
      | Some _ -> ()
      | None -> Alcotest.fail "no report in response");
      (* the identical request is answered from the resident cache *)
      let status2, _ = request_status socket req in
      Alcotest.(check string) "repeat is cached" "cached" status2;
      (* a config change is a different key: cold again *)
      let status3, _ =
        request_status socket
          {
            (analyze_req ~input:"t.pl" ~source:"p(a). q(X) :- p(X)." ()) with
            Wire.op =
              Wire.Analyze
                {
                  analysis = "groundness";
                  input = "t.pl";
                  source = "p(a). q(X) :- p(X).";
                  config = [ ("mode", "compiled") ];
                };
          }
      in
      Alcotest.(check string) "distinct config misses" "complete" status3;
      (* unknown analysis: a structured error, daemon stays up *)
      let status4, _ =
        request_status socket
          {
            Wire.id = Metrics.Int 9;
            client = Some "test";
            op =
              Wire.Analyze
                { analysis = "no_such"; input = "x"; source = "p(a)."; config = [] };
          }
      in
      Alcotest.(check string) "unknown analysis errors" "error" status4;
      (* the stats verb reports the daemon.* family under schema v5 *)
      let status5, doc5 =
        request_status socket
          { Wire.id = Metrics.Int 2; client = Some "test"; op = Wire.Stats }
      in
      Alcotest.(check string) "stats ok" "ok" status5;
      (match Metrics.member "stats" doc5 with
      | Some stats -> (
          (match Metrics.member "schema_version" stats with
          | Some (Metrics.Int v) ->
              Alcotest.(check int) "stats schema v5" 5 v
          | _ -> Alcotest.fail "stats lacks schema_version");
          match Metrics.member "counters" stats with
          | Some (Metrics.Obj counters) ->
              (match List.assoc_opt "daemon.warm_hits" counters with
              | Some (Metrics.Int n) ->
                  Alcotest.(check bool) "warm hit counted" true (n >= 1)
              | _ -> Alcotest.fail "daemon.warm_hits missing");
              (match List.assoc_opt "daemon.cold_ms" counters with
              | Some (Metrics.Int n) ->
                  (* warm answers never touch cold_ms; two cold runs did *)
                  Alcotest.(check bool) "cold time accumulated" true (n >= 0)
              | _ -> Alcotest.fail "daemon.cold_ms missing")
          | _ -> Alcotest.fail "stats lacks counters")
      | None -> Alcotest.fail "no stats in response");
      (* graceful drain by request: daemon exits 0, socket + pidfile gone *)
      let status6, _ =
        request_status socket
          { Wire.id = Metrics.Int 3; client = Some "test"; op = Wire.Drain }
      in
      Alcotest.(check string) "drain acknowledged" "ok" status6;
      (match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | st ->
          Alcotest.failf "daemon did not exit 0 after drain (%s)"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
      Alcotest.(check bool) "pidfile removed" false
        (Sys.file_exists (socket ^ ".pid")))

let test_worker_crash_absorbed () =
  (* a first-attempt SIGKILL in the worker is retried to completion:
     the client sees a complete result, never the crash *)
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "crash:*:1") ]
    ~args:[ "--retries"; "2" ]
    (fun ~socket ~pid:_ ->
      let status, doc =
        request_status socket
          (analyze_req ~input:"c.pl" ~source:"p(a). r(X) :- p(X)." ())
      in
      Alcotest.(check string) "retried to complete" "complete" status;
      match Metrics.member "attempts" doc with
      | Some (Metrics.Int n) ->
          Alcotest.(check bool) "took more than one attempt" true (n >= 2)
      | _ -> Alcotest.fail "no attempts field")

(* --- e2e: admission control ----------------------------------------------- *)

let test_queue_full_shed_and_drain_kill () =
  (* one worker slot, queue of one, every worker hangs: the third
     concurrent request must be shed with queue_full, and SIGTERM must
     drain by killing the stragglers — structured crashes, exit 0 *)
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "hang:*") ]
    ~args:[ "--jobs"; "1"; "--max-queue"; "1"; "--retries"; "0";
            "--drain-deadline"; "1s" ]
    (fun ~socket ~pid ->
      let send_analyze i =
        let fd = raw_connect socket in
        raw_send fd
          (Wire.request_to_string
             (analyze_req
                ~input:(Printf.sprintf "h%d.pl" i)
                ~source:(Printf.sprintf "p(a%d)." i)
                ())
          ^ "\n");
        fd
      in
      (* staggered sends: #1 occupies the slot, #2 the queue, #3 is shed *)
      let c1 = send_analyze 1 in
      Unix.sleepf 0.3;
      let c2 = send_analyze 2 in
      Unix.sleepf 0.3;
      let c3 = send_analyze 3 in
      (match raw_recv_line c3 with
      | `Line l ->
          Alcotest.(check string) "third is shed" "overloaded"
            (status_of_line l);
          Alcotest.(check bool) "names queue_full" true
            (let j = Metrics.json_of_string l in
             match Metrics.member "reason" j with
             | Some (Metrics.Str r) -> String.equal r "queue_full"
             | _ -> false)
      | `Eof -> Alcotest.fail "shed connection closed without response");
      (* now drain: the hung worker and its queued sibling are killed at
         the deadline and answered with structured crashes *)
      Unix.kill pid Sys.sigterm;
      (match raw_recv_line ~timeout:15. c1 with
      | `Line l ->
          Alcotest.(check string) "in-flight job crash-reported" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "in-flight connection closed silently");
      (match raw_recv_line ~timeout:15. c2 with
      | `Line l ->
          Alcotest.(check string) "queued job crash-reported" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "queued connection closed silently");
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c1; c2; c3 ];
      (match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit 0 after deadline drain");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket))

let test_rate_limit_shed () =
  (* burst 1, slow refill: the second request from the same client is
     shed before any work — even a cache-warm one *)
  with_daemon ~args:[ "--rate"; "0.05"; "--burst"; "1" ]
    (fun ~socket ~pid:_ ->
      let req = analyze_req ~client:"hammer" ~input:"r.pl" ~source:"p(a)." () in
      let status, _ = request_status socket req in
      Alcotest.(check string) "first admitted" "complete" status;
      let status2, doc2 = request_status socket req in
      Alcotest.(check string) "second shed" "overloaded" status2;
      (match Metrics.member "reason" doc2 with
      | Some (Metrics.Str r) ->
          Alcotest.(check string) "rate limited" "rate_limited" r
      | _ -> Alcotest.fail "no reason");
      (* a different client is admitted *)
      let status3, _ =
        request_status socket
          (analyze_req ~client:"other" ~input:"r.pl" ~source:"p(a)." ())
      in
      Alcotest.(check string) "other client cached" "cached" status3)

(* --- e2e: frame hygiene --------------------------------------------------- *)

let test_malformed_and_oversized_frames () =
  with_daemon ~args:[ "--max-request-bytes"; "256" ] (fun ~socket ~pid:_ ->
      (* malformed line: rejected, connection still usable *)
      let fd = raw_connect socket in
      raw_send fd "this is not json\n";
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "malformed rejected" "rejected"
            (status_of_line l)
      | `Eof -> Alcotest.fail "connection closed on malformed frame");
      raw_send fd
        ({|{"wire":"prax.wire","version":1,"id":1,"op":"ping"}|} ^ "\n");
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "connection not poisoned" "ok"
            (status_of_line l)
      | `Eof -> Alcotest.fail "connection dead after rejection");
      Unix.close fd;
      (* oversized frame: rejected and the connection is closed *)
      let fd = raw_connect socket in
      raw_send fd (String.make 1000 'x');
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "oversize rejected" "rejected"
            (status_of_line l)
      | `Eof -> Alcotest.fail "no rejection for oversized frame");
      (match raw_recv_line fd with
      | `Eof -> ()
      | `Line l -> Alcotest.failf "expected close after oversize, got %S" l);
      Unix.close fd;
      (* the accept loop survived both *)
      match ping socket with
      | Ok ("ok", _) -> ()
      | _ -> Alcotest.fail "daemon unhealthy after bad frames")

(* --- e2e: lifecycle ------------------------------------------------------- *)

let test_stale_socket_recovery () =
  let socket = fresh_socket () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (socket ^ ".pid") with Unix.Unix_error _ -> ())
    (fun () ->
      (* first daemon dies by SIGKILL: no cleanup, stale socket+pidfile *)
      let pid1 = spawn_praxd ~socket [] in
      wait_ready socket;
      Unix.kill pid1 Sys.sigkill;
      ignore (Unix.waitpid [] pid1);
      Alcotest.(check bool) "stale socket left behind" true
        (Sys.file_exists socket);
      (* a successor must sweep the stale socket and serve *)
      let pid2 = spawn_praxd ~socket [] in
      Fun.protect
        ~finally:(fun () -> ignore (reap pid2))
        (fun () ->
          wait_ready socket;
          (* but a live daemon must never be double-served *)
          let null = devnull () in
          let pid3 =
            Unix.create_process praxd
              [| praxd; "serve"; "--socket"; socket; "-q" |]
              null null null
          in
          Unix.close null;
          (match Unix.waitpid [] pid3 with
          | _, Unix.WEXITED 1 -> ()
          | _, Unix.WEXITED c ->
              Alcotest.failf "double-serve exited %d (expected 1)" c
          | _ -> Alcotest.fail "double-serve died abnormally");
          match ping socket with
          | Ok ("ok", _) -> ()
          | _ -> Alcotest.fail "original daemon disturbed by refused start"))

(* --- e2e: the xanalyze client exit codes ---------------------------------- *)

let test_client_exit_codes () =
  with_daemon (fun ~socket ~pid:_ ->
      let run_client args =
        let null = devnull () in
        let pid =
          Unix.create_process xanalyze
            (Array.of_list (xanalyze :: args))
            null null null
        in
        Unix.close null;
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED c -> c
        | _ -> 255
      in
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "complete exits 0" 0 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "cached repeat exits 0" 0 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ^ ".nope" ]
      in
      Alcotest.(check int) "unreachable daemon exits 6" 6 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "no-such-file.pl";
            "--socket"; socket ]
      in
      Alcotest.(check int) "missing input file exits 1" 1 code)

let () =
  Prax_analyses.Analyses.ensure ();
  Alcotest.run "daemon"
    [
      ( "admission",
        [
          Alcotest.test_case "token bucket refill timing" `Quick
            test_token_bucket_refill;
          Alcotest.test_case "rate 0 disables limiting" `Quick
            test_token_bucket_disabled;
        ] );
      ("wire", [ Alcotest.test_case "grammar" `Quick test_wire_grammar ]);
      ( "serving",
        [
          Alcotest.test_case "analyze, warm cache, stats, drain" `Quick
            test_analyze_and_warm_cache;
          Alcotest.test_case "worker crash absorbed by retries" `Quick
            test_worker_crash_absorbed;
          Alcotest.test_case "queue-full shed + drain kills stragglers" `Quick
            test_queue_full_shed_and_drain_kill;
          Alcotest.test_case "per-client rate-limit shed" `Quick
            test_rate_limit_shed;
          Alcotest.test_case "malformed/oversized frames rejected" `Quick
            test_malformed_and_oversized_frames;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stale socket swept, live socket refused" `Quick
            test_stale_socket_recovery;
          Alcotest.test_case "client exit codes" `Quick test_client_exit_codes;
        ] );
    ]
