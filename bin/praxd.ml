(* praxd — the resident analysis daemon (docs/CLI.md, docs/ROBUSTNESS.md).

     praxd serve --socket /tmp/prax.sock [--jobs N] [--max-queue N] ...
     praxd ping  --socket /tmp/prax.sock
     praxd stats --socket /tmp/prax.sock
     praxd drain --socket /tmp/prax.sock

   `serve` runs in the foreground until drained (SIGTERM/SIGINT or a
   drain request) and exits 0 after a clean drain; foreman-style
   supervisors (systemd, CI scripts) own daemonization.  The control
   verbs are one-shot prax.wire clients.

   Exit codes: 0 success / clean drain; 1 usage or startup error
   (socket already served by a live daemon, bad path); 6 control verb
   could not reach the daemon or got a protocol error. *)

open Cmdliner
open Prax

let exit_startup = 1
let exit_unreachable = 6

let duration_conv =
  let parse s =
    match Guard.duration_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid duration %S (expected e.g. 500ms, 2s, 1.5s, 1m)" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%gs" v)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon serves (or is served) on.")

(* --- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let run socket jobs max_queue rate burst max_request_bytes drain_deadline
      store_dir incremental cache_entries cache_bytes chaos_file retries
      job_timeout timeout max_steps max_bytes quiet =
    let serve =
      {
        Serve.default_config with
        Serve.jobs = max 1 jobs;
        retries = max 0 retries;
        job_timeout;
        budget = Guard.spec ?timeout ?max_steps ?max_table_bytes:max_bytes ();
      }
    in
    (* a chaos plan is test machinery: a bad plan must fail startup
       loudly, never be silently ignored *)
    let chaos =
      let from_file =
        match chaos_file with
        | None -> []
        | Some path -> (
            let text =
              try In_channel.with_open_text path In_channel.input_all
              with Sys_error msg ->
                Printf.eprintf "praxd: %s\n" msg;
                exit exit_startup
            in
            match Inject.daemon_plan_of_json text with
            | Ok plan -> plan
            | Error msg ->
                Printf.eprintf "praxd: --chaos %s: %s\n" path msg;
                exit exit_startup)
      in
      let from_env =
        match Inject.daemon_plan_of_env () with
        | Ok plan -> plan
        | Error msg ->
            Printf.eprintf "praxd: %s: %s\n" Inject.inject_daemon_var msg;
            exit exit_startup
      in
      from_file @ from_env
    in
    let config =
      {
        (Daemon.Daemon.default_config ~socket_path:socket) with
        Daemon.Daemon.max_queue = max 1 max_queue;
        rate;
        burst;
        max_request_bytes;
        drain_deadline;
        store_dir;
        incremental;
        cache_entries = max 1 cache_entries;
        cache_bytes = max 1 cache_bytes;
        chaos;
        serve;
      }
    in
    match Daemon.Daemon.listen config with
    | exception Daemon.Daemon.Already_running path ->
        Printf.eprintf "praxd: a live daemon already serves %s\n" path;
        exit exit_startup
    | exception Sys_error msg ->
        Printf.eprintf "praxd: %s\n" msg;
        exit exit_startup
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "praxd: %s: %s\n" arg (Unix.error_message e);
        exit exit_startup
    | d ->
        let on_ready () =
          if not quiet then begin
            Printf.printf "praxd: listening on %s (pid %d)\n" socket
              (Unix.getpid ());
            flush stdout
          end
        in
        Daemon.Daemon.run ~on_ready d;
        if not quiet then Printf.printf "praxd: drained, socket removed\n"
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Concurrent worker processes — the in-flight job cap.")
  in
  let max_queue =
    Arg.(
      value & opt int 32
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Bounded job queue: an analyze request arriving with N jobs \
             already queued is shed with a structured $(b,overloaded) \
             response instead of growing the backlog.")
  in
  let rate =
    Arg.(
      value & opt float 0.
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Per-client token-bucket refill rate in requests/second; 0 \
             disables rate limiting.")
  in
  let burst =
    Arg.(
      value & opt float 8.
      & info [ "burst" ] ~docv:"B"
          ~doc:"Per-client token-bucket capacity (burst allowance).")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:
            "Cap on one request line; larger frames are rejected and the \
             connection closed (framing is lost).")
  in
  let drain_deadline =
    Arg.(
      value
      & opt duration_conv 5.
      & info [ "drain-deadline" ] ~docv:"DUR"
          ~doc:
            "Grace period for in-flight jobs on SIGTERM/drain; stragglers \
             are SIGKILLed after DUR and their clients get a structured \
             $(b,crashed) response.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent snapshot store backing the resident result cache: \
             complete results are saved under DIR and survive daemon \
             restarts.")
  in
  let incremental =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Edit-aware workers (docs/INCREMENTAL.md): each analysis \
             consults the per-SCC fragment cache and splices unchanged \
             cones' tables back instead of recomputing them.  Reports are \
             byte-identical to full runs.  Pair with $(b,--store) so \
             fragments survive the per-job worker fork and accumulate \
             across requests.")
  in
  let cache_entries =
    Arg.(
      value & opt int 512
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:
            "Resident result-cache entry cap: the least recently used \
             entry is evicted past N ($(b,daemon.cache_evictions)).")
  in
  let cache_bytes =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "cache-bytes" ] ~docv:"N"
          ~doc:"Resident result-cache byte cap (keys + payloads).")
  in
  let chaos_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN.json"
          ~doc:
            "Deterministic fault plan for the chaos harness: \
             $(b,{\"faults\":[{\"at\":N,\"fault\":\"worker-crash\"}, ...]}) \
             fires each fault at the Nth analyze request.  Faults: \
             $(b,worker-crash), $(b,worker-exit), $(b,worker-hang), \
             $(b,conn-reset), $(b,store-enospc), $(b,store-short-write), \
             $(b,drain).  The $(b,PRAX_INJECT_DAEMON) environment variable \
             ($(b,kind\\@N,kind\\@N,...)) adds to the plan.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:"Worker re-executions after a crashed attempt.")
  in
  let job_timeout =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "job-timeout" ] ~docv:"DUR"
          ~doc:"Per-attempt wall-clock watchdog (SIGKILL past DUR).")
  in
  let timeout =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "timeout" ] ~docv:"DUR"
          ~doc:
            "Per-job evaluation budget; a budget-tripped job degrades to a \
             sound $(b,partial) result instead of being shed.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-job derivation-step budget.")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-table-bytes" ] ~docv:"N"
          ~doc:"Per-job table-space budget in bytes.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup/drain chatter.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve analyses on a Unix socket until drained (SIGTERM, SIGINT, \
          or $(b,praxd drain))")
    Term.(
      const run $ socket_arg $ jobs $ max_queue $ rate $ burst
      $ max_request_bytes $ drain_deadline $ store_dir $ incremental
      $ cache_entries $ cache_bytes $ chaos_file $ retries $ job_timeout
      $ timeout $ max_steps $ max_bytes $ quiet)

(* --- control verbs -------------------------------------------------------- *)

let control ~op ~render socket =
  match
    Daemon.Client.request ~timeout:30. ~socket
      { Daemon.Wire.id = Metrics.Int 0; client = Some "praxd-ctl"; op }
  with
  | Error e ->
      Printf.eprintf "praxd: %s\n" (Daemon.Client.error_to_string e);
      exit exit_unreachable
  | Ok ("ok", doc) -> render doc
  | Ok (status, _) ->
      Printf.eprintf "praxd: unexpected response status %s\n" status;
      exit exit_unreachable

let ping_cmd =
  let run socket =
    control ~op:Daemon.Wire.Ping socket ~render:(fun doc ->
        match Metrics.member "pid" doc with
        | Some (Metrics.Int pid) -> Printf.printf "pong (pid %d)\n" pid
        | _ -> print_endline "pong")
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Check the daemon is alive (exit 6 when not)")
    Term.(const run $ socket_arg)

let stats_cmd =
  let run socket =
    control ~op:Daemon.Wire.Stats socket ~render:(fun doc ->
        match Metrics.member "stats" doc with
        | Some stats -> print_endline (Metrics.json_to_string stats)
        | None -> print_endline (Metrics.json_to_string doc))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the daemon's prax.stats document (schema v5: the daemon.* \
          counter family)")
    Term.(const run $ socket_arg)

let drain_cmd =
  let run socket =
    control ~op:Daemon.Wire.Drain socket ~render:(fun _ ->
        print_endline "draining")
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:
         "Ask the daemon to drain gracefully: stop accepting, finish \
          in-flight jobs, remove the socket, exit")
    Term.(const run $ socket_arg)

let () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Analyses.ensure ();
  let doc = "resident analysis daemon over the prax worker fleet" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "praxd" ~doc)
          [ serve_cmd; ping_cmd; stats_cmd; drain_cmd ]))
