test/test_fp.ml: Alcotest Ast Check Eval List Prax_benchdata Prax_fp Printf String
