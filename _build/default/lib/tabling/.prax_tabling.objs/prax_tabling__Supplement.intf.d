lib/tabling/supplement.mli: Parser Prax_logic
