(** Blocking prax.wire client — see client.mli. *)

module Metrics = Prax_metrics.Metrics

type error = Connect_failed of string | Protocol_error of string

let error_to_string = function
  | Connect_failed msg -> "cannot reach daemon: " ^ msg
  | Protocol_error msg -> "protocol error: " ^ msg

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

(* read up to (and including) the first newline; [deadline] is an
   absolute gettimeofday time, or none *)
let read_line_fd ?deadline fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = '\n'
    then Ok (String.trim (Buffer.contents buf))
    else begin
      (match deadline with
      | None -> ()
      | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0. then raise Exit;
          ignore (Unix.select [ fd ] [] [] left));
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          if Buffer.length buf = 0 then
            Error (Protocol_error "connection closed before response")
          else Ok (String.trim (Buffer.contents buf))
      | n ->
          (* stop at the first newline; a response is one line *)
          let stop = ref n in
          (try
             for i = 0 to n - 1 do
               if Bytes.get chunk i = '\n' then begin
                 stop := i + 1;
                 raise Exit
               end
             done
           with Exit -> ());
          Buffer.add_subbytes buf chunk 0 !stop;
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (e, _, _) ->
          Error (Protocol_error (Unix.error_message e))
    end
  in
  try loop () with Exit -> Error (Protocol_error "timed out awaiting response")

let request ?timeout ~socket (req : Wire.request) :
    (string * Metrics.json, error) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Connect_failed (socket ^ ": " ^ Unix.error_message e))
      | () -> (
          let line = Wire.request_to_string req ^ "\n" in
          match write_all fd line 0 (String.length line) with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Connect_failed (Unix.error_message e))
          | () -> (
              let deadline =
                Option.map (fun t -> Unix.gettimeofday () +. t) timeout
              in
              match read_line_fd ?deadline fd with
              | Error _ as e -> e
              | Ok line -> (
                  match Metrics.json_of_string line with
                  | exception _ ->
                      Error (Protocol_error "response is not JSON")
                  | j -> (
                      match Wire.response_status j with
                      | Ok status -> Ok (status, j)
                      | Error msg -> Error (Protocol_error msg))))))
