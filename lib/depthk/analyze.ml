(** Driver for groundness analysis with depth-k term abstraction
    (Section 5, Table 4).

    Unlike the Prop route there is no program transformation: the
    *original* clauses are evaluated by the tabled engine under abstract
    unification, with calls and answers truncated to depth k.  Builtins
    are interpreted abstractly (arithmetic grounds its operands and
    result; type tests ground or pass; control binds nothing). *)

open Prax_logic
open Prax_tabling
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis

(* Phase timers mirroring the Table 4 columns (docs/METRICS.md). *)
let t_preprocess =
  Metrics.timer ~doc:"depth-k: parse and load the original clauses"
    "depthk.preprocess"

let t_evaluate =
  Metrics.timer ~doc:"depth-k: tabled evaluation under abstract unification"
    "depthk.evaluate"

let t_collect =
  Metrics.timer ~doc:"depth-k: fold answer tables into per-predicate results"
    "depthk.collect"

type pred_result = {
  pred : string * int;
  answers : Term.t list;  (** abstract success patterns *)
  definite : bool array;  (** argument abstractly ground in every answer *)
  never_succeeds : bool;
}

(* The shared Table-style phase record, re-exported so existing callers
   keep their [Analyze.phases] spelling (the definition now lives in
   prax.analysis, one copy for all drivers). *)
type phases = Analysis.phases = {
  preproc : float;
  analysis : float;
  collection : float;
}

let total = Analysis.total

type report = {
  results : pred_result list;
  phases : phases;
  table_bytes : int;
  engine_stats : Engine.stats;
  k : int;
  clause_count : int;  (** size of the evaluated program *)
  status : Guard.status;
      (** [Partial] when a resource budget stopped evaluation: widened
          entries answer their most general call, so [definite] degrades
          to all-[?] for the affected predicates — a sound
          over-approximation *)
}

(* monotonic, same clock as the Metrics timers (docs/ANALYSES.md) *)
let now = Analysis.now

(* --- abstract builtins ----------------------------------------------------- *)

let ground_args_builtin idxs : Engine.builtin =
 fun _e s args sc ->
  let s' =
    List.fold_left (fun s i -> Domain.ground_term s args.(i)) s idxs
  in
  sc s'

let succeed_builtin : Engine.builtin = fun _e s _args sc -> sc s

(* is(X, E): success grounds E and the result.  The result is always
   widened to γ: computing concrete integers would make the abstract
   domain infinite (counters like [D1 is D + 1] in recursive predicates
   would generate unboundedly many call variants). *)
let is_builtin : Engine.builtin =
 fun _e s args sc ->
  let s = Domain.ground_term s args.(1) in
  match Domain.unify s args.(0) Domain.gamma with
  | Some s' -> sc s'
  | None -> ()

let register_builtins (e : Engine.t) =
  Engine.register_builtin e "is" 2 is_builtin;
  List.iter
    (fun name -> Engine.register_builtin e name 2 (ground_args_builtin [ 0; 1 ]))
    [ "=:="; "=\\="; "<"; ">"; "=<"; ">=" ];
  List.iter
    (fun name -> Engine.register_builtin e name 1 (ground_args_builtin [ 0 ]))
    [ "atom"; "atomic"; "number"; "integer"; "ground" ];
  List.iter
    (fun (name, arity) -> Engine.register_builtin e name arity succeed_builtin)
    [
      ("var", 1); ("nonvar", 1); ("compound", 1); ("write", 1); ("print", 1);
      ("tab", 1); ("nl", 0); ("\\=", 2); ("==", 2); ("\\==", 2); ("@<", 2);
      ("@>", 2); ("@=<", 2); ("@>=", 2);
    ];
  (* functor/arg/univ: ground nothing, succeed (coarse but sound) *)
  List.iter
    (fun (name, arity) -> Engine.register_builtin e name arity succeed_builtin)
    [ ("functor", 3); ("arg", 3); ("=..", 2); ("name", 2); ("length", 2);
      ("findall", 3); ("compare", 3) ]

(* --- driver ----------------------------------------------------------------- *)

let a_ground_arg (t : Term.t) = Domain.a_ground t

let analyze_clauses ?(mode = Database.Dynamic) ?(guard = Guard.unlimited) ~k
    (clauses : Parser.clause list) : report =
  let t0 = now () in
  let e, preds =
    Metrics.time t_preprocess (fun () ->
        let db = Database.create ~mode () in
        Database.load_clauses db clauses;
        let e = Engine.create ~hooks:(Domain.hooks ~k) ~guard db in
        register_builtins e;
        let preds =
          List.filter_map (fun c -> Term.functor_of c.Parser.head) clauses
          |> List.sort_uniq compare
        in
        (e, preds))
  in
  let t1 = now () in
  let status =
    Metrics.time t_evaluate (fun () ->
        List.fold_left
          (fun acc (name, arity) ->
            let goal =
              Term.mk name (Array.init arity (fun _ -> Term.fresh_var ()))
            in
            Guard.combine acc (Engine.run_status e goal (fun _ -> ())))
          Guard.Complete preds)
  in
  let t2 = now () in
  let results =
    Metrics.time t_collect @@ fun () ->
    List.map
      (fun (name, arity) ->
        let answers = Engine.answers_for e (name, arity) in
        if Guard.is_partial status && Engine.calls_for e (name, arity) = []
        then
          (* the budget tripped before this predicate's open call even
             created a table entry: its empty answer table means
             "unexplored", not "fails" — degrade to the no-claim result *)
          {
            pred = (name, arity);
            answers = [];
            definite = Array.make arity false;
            never_succeeds = false;
          }
        else begin
          let definite = Array.make arity true in
          List.iter
            (fun ans ->
              Array.iteri
                (fun i a -> if not (a_ground_arg a) then definite.(i) <- false)
                (Term.args_of ans))
            answers;
          {
            pred = (name, arity);
            answers;
            definite;
            never_succeeds = answers = [];
          }
        end)
      preds
  in
  let t3 = now () in
  {
    results;
    phases = { preproc = t1 -. t0; analysis = t2 -. t1; collection = t3 -. t2 };
    table_bytes = Engine.table_space_bytes e;
    engine_stats = Engine.stats e;
    k;
    clause_count = List.length clauses;
    status;
  }

let analyze ?(mode = Database.Dynamic) ?guard ?(k = 2) (src : string) : report
    =
  let t0 = now () in
  let clauses = Metrics.time t_preprocess (fun () -> Parser.parse_clauses src) in
  let t_parse = now () -. t0 in
  let r = analyze_clauses ~mode ?guard ~k clauses in
  { r with phases = Analysis.add_preproc r.phases t_parse }

let result_for (rep : report) p =
  List.find_opt (fun r -> r.pred = p) rep.results

let result_to_string (r : pred_result) : string =
  let name, arity = r.pred in
  let definite =
    if r.never_succeeds then "-"
    else
      String.concat ""
        (List.init arity (fun i -> if r.definite.(i) then "g" else "?"))
  in
  Printf.sprintf "%s/%d: definite=%s patterns=%d" name arity definite
    (List.length r.answers)

let report_to_string (rep : report) : string =
  String.concat "\n" (List.map result_to_string rep.results)
