(** ROBDD back-end for the GAIA-style interpreter.  Functions carry
    their universe size; [project]/[extend] rename positions by
    Shannon-expansion rebuild, which keeps the result reduced under the
    global hash-consing. *)

type t = { n : int; f : Prax_bdd.Bdd.t }

let name = "bdd"

open Prax_bdd

let top n = { n; f = Bdd.one }
let bottom n = { n; f = Bdd.zero }

let iff_c n pos set = { n; f = Bdd.iff pos (List.sort_uniq compare set) }

let lit n pos b = { n; f = (if b then Bdd.var pos else Bdd.nvar pos) }

let conj a b = { n = max a.n b.n; f = Bdd.conj a.f b.f }
let disj a b = { n = max a.n b.n; f = Bdd.disj a.f b.f }

let ite c t e = Bdd.disj (Bdd.conj c t) (Bdd.conj (Bdd.neg c) e)

(* rebuild with variable substitution; correct for arbitrary mappings *)
let rec rename (m : int -> int) (f : Bdd.t) : Bdd.t =
  match f with
  | Bdd.Leaf _ -> f
  | Bdd.Node { var = v; lo; hi; _ } ->
      ite (Bdd.var (m v)) (rename m hi) (rename m lo)

let project a kept =
  let k = List.length kept in
  (* tie fresh positions above the universe to the kept ones, quantify
     out the originals, then shift down *)
  let tied =
    List.fold_left
      (fun (j, f) p -> (j + 1, Bdd.conj f (Bdd.iff2 (Bdd.var (a.n + j)) (Bdd.var p))))
      (0, a.f) kept
    |> snd
  in
  let quantified =
    List.fold_left Bdd.exists tied (List.init a.n Fun.id)
  in
  { n = k; f = rename (fun v -> v - a.n) quantified }

let extend a mapping n =
  let arr = Array.of_list mapping in
  { n; f = rename (fun v -> arr.(v)) a.f }

let equal a b = Bdd.equal a.f b.f
let hash a = Bdd.id a.f
let is_empty a = Bdd.is_false a.f

let definite a = Array.init a.n (fun v -> Bdd.definite_at a.f v)
