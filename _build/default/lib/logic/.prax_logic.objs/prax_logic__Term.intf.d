lib/logic/term.mli:
