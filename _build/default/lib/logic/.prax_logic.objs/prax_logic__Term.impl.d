lib/logic/term.ml: Array Hashtbl Int List String
