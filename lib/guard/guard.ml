(** Composable resource budgets: wall-clock deadline (monotonic clock),
    derivation-step count, table-space bytes — checked at the engines'
    event sites.  See guard.mli and docs/ROBUSTNESS.md. *)

module Metrics = Prax_metrics.Metrics

let m_deadline_checks =
  Metrics.counter ~units:"reads"
    ~doc:"monotonic-clock reads performed by guard deadline checks"
    "guard.deadline_checks"

let m_trips =
  Metrics.counter ~units:"trips" ~doc:"budget exhaustions signalled by guards"
    "guard.trips"

type reason = Deadline | Steps | Table_space | Fault of string

let reason_to_string = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Table_space -> "table-space"
  | Fault what -> Printf.sprintf "fault:%s" what

type status = Complete | Partial of { reason : reason; exhausted_entries : int }

let status_to_string = function
  | Complete -> "complete"
  | Partial { reason; exhausted_entries } ->
      Printf.sprintf "partial(%s, widened=%d)" (reason_to_string reason)
        exhausted_entries

let is_partial = function Partial _ -> true | Complete -> false

let combine a b =
  match (a, b) with
  | Complete, s | s, Complete -> s
  | Partial p, Partial q ->
      Partial
        {
          reason = p.reason;
          exhausted_entries = p.exhausted_entries + q.exhausted_entries;
        }

exception Exhausted of reason

type t = {
  deadline : int64 option;  (** absolute monotonic-clock nanoseconds *)
  limit_steps : int;  (** [max_int] when unbounded *)
  limit_bytes : int;  (** [max_int] when unbounded *)
  timeout_s : float option;
  max_steps_opt : int option;
  max_bytes_opt : int option;
  on_event : (int -> unit) option;
  mutable steps : int;
  mutable tripped : reason option;
  active : bool;
}

let unlimited =
  {
    deadline = None;
    limit_steps = max_int;
    limit_bytes = max_int;
    timeout_s = None;
    max_steps_opt = None;
    max_bytes_opt = None;
    on_event = None;
    steps = 0;
    tripped = None;
    active = false;
  }

let now_ns () = Monotonic_clock.now ()

let create ?timeout ?max_steps ?max_table_bytes ?on_event () =
  let deadline =
    Option.map
      (fun s -> Int64.add (now_ns ()) (Int64.of_float (s *. 1e9)))
      timeout
  in
  {
    deadline;
    limit_steps = Option.value max_steps ~default:max_int;
    limit_bytes = Option.value max_table_bytes ~default:max_int;
    timeout_s = timeout;
    max_steps_opt = max_steps;
    max_bytes_opt = max_table_bytes;
    on_event;
    steps = 0;
    tripped = None;
    active = true;
  }

let counting () = create ()

let active g = g.active

let trip g r =
  g.tripped <- Some r;
  Metrics.incr m_trips;
  raise (Exhausted r)

(* The deadline reads the clock only on every 256th event so the check
   stays cheap enough for the innermost engine loops.  256 steps take
   well under a millisecond, so a timeout is honored within a tight
   tolerance of the configured budget. *)
let deadline_mask = 255

let check g =
  if g.active then begin
    (* sticky budgets re-trip immediately: a driver running several
       governed queries after exhaustion degrades each one instead of
       burning another full budget.  Injected faults are one-shot. *)
    (match g.tripped with
    | Some ((Deadline | Steps | Table_space) as r) -> trip g r
    | Some (Fault _) | None -> ());
    let n = g.steps + 1 in
    g.steps <- n;
    (match g.on_event with Some f -> f n | None -> ());
    if n > g.limit_steps then trip g Steps;
    match g.deadline with
    | Some d when n land deadline_mask = 0 ->
        Metrics.incr m_deadline_checks;
        if Int64.compare (now_ns ()) d > 0 then trip g Deadline
    | _ -> ()
  end

let note_space g bytes =
  if g.active && bytes > g.limit_bytes then trip g Table_space

let steps g = g.steps
let tripped g = g.tripped
let timeout_seconds g = g.timeout_s
let max_steps g = g.max_steps_opt
let max_table_bytes g = g.max_bytes_opt

let duration_of_string s =
  let s = String.trim s in
  let num_and_unit =
    let n = String.length s in
    let rec split i =
      if i >= n then (s, "")
      else
        match s.[i] with
        | '0' .. '9' | '.' | '-' | '+' -> split (i + 1)
        | _ -> (String.sub s 0 i, String.sub s i (n - i))
    in
    split 0
  in
  let num, unit_ = num_and_unit in
  match float_of_string_opt num with
  | None -> None
  | Some v when v < 0. -> None
  | Some v -> (
      match String.lowercase_ascii unit_ with
      | "" | "s" -> Some v
      | "ms" -> Some (v /. 1e3)
      | "us" -> Some (v /. 1e6)
      | "ns" -> Some (v /. 1e9)
      | "m" | "min" -> Some (v *. 60.)
      | _ -> None)

(* --- budget specifications ---------------------------------------------- *)

type spec = {
  timeout : float option;
  max_steps : int option;
  max_table_bytes : int option;
}

let no_limits = { timeout = None; max_steps = None; max_table_bytes = None }

let spec ?timeout ?max_steps ?max_table_bytes () =
  { timeout; max_steps; max_table_bytes }

let spec_is_unlimited = function
  | { timeout = None; max_steps = None; max_table_bytes = None } -> true
  | _ -> false

let scale_spec s f =
  {
    (* floors keep a deeply-scaled budget trippable: a 0 step budget
       would read as max_int and a 0s timeout as "instant", both wrong *)
    timeout = Option.map (fun t -> Float.max 1e-3 (t *. f)) s.timeout;
    max_steps = Option.map (fun n -> max 1 (int_of_float (float_of_int n *. f))) s.max_steps;
    max_table_bytes =
      Option.map (fun n -> max 1 (int_of_float (float_of_int n *. f))) s.max_table_bytes;
  }

let of_spec s =
  if spec_is_unlimited s then unlimited
  else
    create ?timeout:s.timeout ?max_steps:s.max_steps
      ?max_table_bytes:s.max_table_bytes ()

let spec_to_string s =
  let b f = function None -> "off" | Some v -> f v in
  Printf.sprintf "timeout=%s steps=%s bytes=%s"
    (b (Printf.sprintf "%gs") s.timeout)
    (b string_of_int s.max_steps)
    (b string_of_int s.max_table_bytes)

let budget_json_fields g =
  let open Metrics in
  if not g.active then []
  else
    [
      ( "budget",
        Obj
          [
            ( "timeout_seconds",
              match g.timeout_s with None -> Null | Some s -> Float s );
            ( "max_steps",
              match g.max_steps_opt with None -> Null | Some n -> Int n );
            ( "max_table_bytes",
              match g.max_bytes_opt with None -> Null | Some n -> Int n );
          ] );
    ]

let status_json_fields st =
  let open Metrics in
  match st with
  | Complete -> [ ("status", Str "complete") ]
  | Partial { reason; exhausted_entries } ->
      [
        ("status", Str "partial");
        ("partial_reason", Str (reason_to_string reason));
        ("widened_entries", Int exhausted_entries);
      ]
