test/test_fp.mli:
