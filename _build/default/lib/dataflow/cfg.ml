(** Control-flow graphs of a small imperative language, the substrate for
    the dataflow-analysis extension the paper sketches in Section 7
    (Reps's demand interprocedural analysis in a logic database).

    A program is a set of procedures; each procedure is a graph of
    numbered nodes with statements.  Variables are global (as in the
    classic demand-analysis examples), so interprocedural effects flow
    through call/return edges without parameter plumbing. *)

type stmt =
  | Assign of string * string list
      (** [Assign (x, uses)]: x := e where e reads [uses] *)
  | Test of string list  (** branch condition reading the listed variables *)
  | Call of string  (** call of a procedure by name *)
  | Entry
  | Exit
  | Skip

type node = { id : int; stmt : stmt }

type proc = {
  pname : string;
  nodes : node list;
  edges : (int * int) list;  (** intraprocedural edges *)
  entry : int;
  exit : int;
}

type program = proc list

let defs = function Assign (x, _) -> [ x ] | _ -> []

let uses = function
  | Assign (_, us) -> us
  | Test us -> us
  | Call _ | Entry | Exit | Skip -> []

let find_proc (p : program) name =
  List.find_opt (fun pr -> String.equal pr.pname name) p

let node_of (pr : proc) id = List.find (fun n -> n.id = id) pr.nodes

(* --- builders ------------------------------------------------------------ *)

(** Linear builder: statements become consecutive nodes [base..]; edges
    chain them; [entry]/[exit] nodes added around them. *)
let proc_of_stmts ~name ~base (stmts : stmt list) : proc =
  let entry = base in
  let body =
    List.mapi (fun i s -> { id = base + 1 + i; stmt = s }) stmts
  in
  let exit = base + 1 + List.length stmts in
  let nodes =
    ({ id = entry; stmt = Entry } :: body) @ [ { id = exit; stmt = Exit } ]
  in
  let ids = List.map (fun n -> n.id) nodes in
  let edges =
    List.map2
      (fun a b -> (a, b))
      (List.filteri (fun i _ -> i < List.length ids - 1) ids)
      (List.tl ids)
  in
  { pname = name; nodes; edges; entry; exit }

let add_edge pr e = { pr with edges = e :: pr.edges }

(** A synthetic workload for the benches: a procedure that is a ladder of
    [n] rungs — each rung defines a variable, tests it, and branches over
    the next rung — followed by a back edge making a loop.  Definitions
    made early must be chased through many nodes to answer a demand
    query at the bottom. *)
let ladder ~name ~base ~rungs : proc =
  let entry = base in
  let node id stmt = { id; stmt } in
  let nodes = ref [ node entry Entry ] in
  let edges = ref [] in
  let id = ref (entry + 1) in
  let prev = ref entry in
  for r = 0 to rungs - 1 do
    let var = Printf.sprintf "v%d" (r mod 8) in
    let def = !id in
    let test = !id + 1 in
    let skip = !id + 2 in
    id := !id + 3;
    nodes :=
      node skip Skip :: node test (Test [ var ])
      :: node def (Assign (var, [ Printf.sprintf "v%d" ((r + 1) mod 8) ]))
      :: !nodes;
    edges :=
      (!prev, def) :: (def, test) :: (test, skip) :: (def, skip) :: !edges;
    prev := skip
  done;
  let exit = !id in
  nodes := node exit Exit :: !nodes;
  edges := (!prev, exit) :: (exit - 1, entry + 1) :: !edges;
  {
    pname = name;
    nodes = List.rev !nodes;
    edges = List.rev !edges;
    entry;
    exit;
  }

(** The running example: main initializes, loops calling helper, then
    reads the results. *)
let example : program =
  let main =
    {
      pname = "main";
      nodes =
        [
          { id = 0; stmt = Entry };
          { id = 1; stmt = Assign ("x", []) };
          { id = 2; stmt = Assign ("y", []) };
          { id = 3; stmt = Test [ "x" ] };
          { id = 4; stmt = Call "helper" };
          { id = 5; stmt = Assign ("y", [ "x" ]) };
          { id = 6; stmt = Test [ "y" ] };
          { id = 7; stmt = Assign ("z", [ "y" ]) };
          { id = 8; stmt = Exit };
        ];
      edges =
        [ (0, 1); (1, 2); (2, 3); (3, 4); (3, 7); (4, 5); (5, 6); (6, 3);
          (6, 7); (7, 8) ];
      entry = 0;
      exit = 8;
    }
  in
  let helper =
    {
      pname = "helper";
      nodes =
        [
          { id = 10; stmt = Entry };
          { id = 11; stmt = Test [ "y" ] };
          { id = 12; stmt = Assign ("x", [ "y" ]) };
          { id = 13; stmt = Skip };
          { id = 14; stmt = Exit };
        ];
      edges = [ (10, 11); (11, 12); (11, 13); (12, 13); (13, 14) ];
      entry = 10;
      exit = 14;
    }
  in
  [ main; helper ]
