(** Plain SLD resolution: a non-tabled Prolog engine with cut, control
    constructs, arithmetic, and the usual term-inspection builtins.  Used
    to execute benchmark programs concretely and to validate analysis
    results. *)

exception Cut_signal of int
exception Found
exception Instantiation_error of string
exception Type_error of string * Term.t
exception Existence_error of string * int
exception Solution_limit
(** Raised when the [max_inferences] budget is exhausted. *)

module Guard = Prax_guard.Guard

val eval_arith : Subst.t -> Term.t -> int
(** Evaluate an arithmetic expression ([+ - * / // mod rem abs min max
    ^ ** << >> /\ \/ xor sign], unary [- +]).
    @raise Instantiation_error on unbound variables
    @raise Type_error on non-evaluable terms *)

val solutions_status :
  ?limit:int ->
  ?max_inferences:int ->
  ?guard:Guard.t ->
  Database.t ->
  Term.t ->
  Subst.t list * Guard.status
(** All solutions with the evaluation status.  On budget exhaustion the
    solutions found so far are returned flagged [Partial]; for a
    top-down enumeration this is an {e under}-approximation of the full
    solution set (the dual of the tabled engine's widening), so check
    the flag before treating the list as exhaustive. *)

val solutions :
  ?limit:int ->
  ?max_inferences:int ->
  ?guard:Guard.t ->
  Database.t ->
  Term.t ->
  Subst.t list
(** All solutions of a goal, in Prolog order, up to [limit]. *)

val all_answers :
  ?limit:int ->
  ?max_inferences:int ->
  ?guard:Guard.t ->
  Database.t ->
  Term.t ->
  Term.t ->
  Term.t list
(** [all_answers db goal tmpl]: resolved instances of [tmpl] per
    solution.  [goal] and [tmpl] must share their variable scope. *)

val has_solution :
  ?max_inferences:int -> ?guard:Guard.t -> Database.t -> Term.t -> bool
