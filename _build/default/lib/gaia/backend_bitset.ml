(** Truth-table back-end for the GAIA-style interpreter: a thin wrapper
    over {!Prax_prop.Bf}. *)

open Prax_prop

type t = Bf.t

let name = "bitset"
let top = Bf.top
let bottom = Bf.bottom
let iff_c n pos set = Bf.iff n pos (List.sort_uniq compare set)

let lit n pos b =
  let f = Bf.var n pos in
  if b then f else Bf.neg f

let conj = Bf.conj
let disj = Bf.disj
let project = Bf.project
let extend = Bf.extend
let equal = Bf.equal
let hash = Bf.hash
let is_empty = Bf.is_empty
let definite = Bf.definite
