(** Bounded LRU cache — see lru.mli. *)

(* Classic hash-table-plus-doubly-linked-list: O(1) find/put/evict.
   Nodes are mutable records; [t.head] is most recent, [t.tail] least. *)

type node = {
  n_key : string;
  mutable n_value : string;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type t = {
  max_entries : int;
  max_bytes : int;
  on_evict : (key:string -> unit) option;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
}

let create ?on_evict ~max_entries ~max_bytes () =
  {
    max_entries = max 1 max_entries;
    max_bytes = max 1 max_bytes;
    on_evict;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
  }

let entry_bytes n = String.length n.n_key + String.length n.n_value

let unlink t n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.head <- n.n_next);
  (match n.n_next with
  | Some nx -> nx.n_prev <- n.n_prev
  | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.head;
  n.n_prev <- None;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      touch t n;
      Some n.n_value

let drop t n ~evicted =
  unlink t n;
  Hashtbl.remove t.table n.n_key;
  t.bytes <- t.bytes - entry_bytes n;
  if evicted then
    match t.on_evict with Some f -> f ~key:n.n_key | None -> ()

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n -> drop t n ~evicted:false

let rec evict_until_fits t =
  if Hashtbl.length t.table > t.max_entries || t.bytes > t.max_bytes then
    match t.tail with
    | None -> ()
    | Some lru ->
        drop t lru ~evicted:true;
        evict_until_fits t

let put t key value =
  let incoming = String.length key + String.length value in
  if incoming > t.max_bytes then
    (* would evict everything and still not fit: refuse quietly *)
    remove t key
  else begin
    (match Hashtbl.find_opt t.table key with
    | Some n ->
        t.bytes <- t.bytes - entry_bytes n + incoming;
        n.n_value <- value;
        touch t n
    | None ->
        let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
        Hashtbl.replace t.table key n;
        t.bytes <- t.bytes + incoming;
        push_front t n);
    evict_until_fits t
  end

let length t = Hashtbl.length t.table
let bytes t = t.bytes
