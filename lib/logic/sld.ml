(** Plain SLD resolution: a non-tabled Prolog engine in
    continuation-passing style, with cut, control constructs, arithmetic
    and the usual term-inspection builtins.

    This is the "ordinary Prolog" half of the XSB substitute: it executes
    the benchmark programs concretely (used by the examples and by the
    property tests that validate analysis soundness) and serves as the
    compilation-time baseline for the "compile-time increase" column of
    Tables 1 and 4. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

let m_steps =
  Metrics.counter ~units:"steps"
    ~doc:"SLD resolution steps: goal reductions and clause activations"
    "sld.resolution_steps"

exception Cut_signal of int
exception Found
exception Instantiation_error of string
exception Type_error of string * Term.t
exception Existence_error of string * int
exception Solution_limit

type engine = {
  db : Database.t;
  mutable next_cut : int;
  mutable inferences : int;
  max_inferences : int;
  guard : Guard.t;
}

let create ?(max_inferences = max_int) ?(guard = Guard.unlimited) db =
  { db; next_cut = 0; inferences = 0; max_inferences; guard }

let new_cut_id e =
  e.next_cut <- e.next_cut + 1;
  e.next_cut

let tick e =
  e.inferences <- e.inferences + 1;
  Metrics.incr m_steps;
  Guard.check e.guard;
  if e.inferences > e.max_inferences then raise Solution_limit

(* --- arithmetic -------------------------------------------------------- *)

let rec eval_arith (s : Subst.t) (t : Term.t) : int =
  match Subst.walk s t with
  | Term.Int i -> i
  | Term.Var _ -> raise (Instantiation_error "is/2")
  | Term.Struct ("+", [| a; b |], _) -> eval_arith s a + eval_arith s b
  | Term.Struct ("-", [| a; b |], _) -> eval_arith s a - eval_arith s b
  | Term.Struct ("*", [| a; b |], _) -> eval_arith s a * eval_arith s b
  | Term.Struct (("/" | "//"), [| a; b |], _) ->
      let d = eval_arith s b in
      if d = 0 then raise (Type_error ("zero divisor", t)) else eval_arith s a / d
  | Term.Struct ("mod", [| a; b |], _) ->
      let d = eval_arith s b in
      if d = 0 then raise (Type_error ("zero divisor", t))
      else
        let m = eval_arith s a mod d in
        if (m < 0 && d > 0) || (m > 0 && d < 0) then m + d else m
  | Term.Struct ("rem", [| a; b |], _) -> eval_arith s a mod eval_arith s b
  | Term.Struct ("-", [| a |], _) -> -eval_arith s a
  | Term.Struct ("+", [| a |], _) -> eval_arith s a
  | Term.Struct ("abs", [| a |], _) -> abs (eval_arith s a)
  | Term.Struct ("min", [| a; b |], _) -> min (eval_arith s a) (eval_arith s b)
  | Term.Struct ("max", [| a; b |], _) -> max (eval_arith s a) (eval_arith s b)
  | Term.Struct (">>", [| a; b |], _) -> eval_arith s a asr eval_arith s b
  | Term.Struct ("<<", [| a; b |], _) -> eval_arith s a lsl eval_arith s b
  | Term.Struct ("/\\", [| a; b |], _) -> eval_arith s a land eval_arith s b
  | Term.Struct ("\\/", [| a; b |], _) -> eval_arith s a lor eval_arith s b
  | Term.Struct ("xor", [| a; b |], _) -> eval_arith s a lxor eval_arith s b
  | Term.Struct ("sign", [| a |], _) -> Int.compare (eval_arith s a) 0
  | Term.Struct (("^" | "**"), [| a; b |], _) ->
      let base = eval_arith s a and e = eval_arith s b in
      if e < 0 then raise (Type_error ("nonnegative exponent", t))
      else
        let rec pow acc n = if n = 0 then acc else pow (acc * base) (n - 1) in
        pow 1 e
  | t' -> raise (Type_error ("evaluable", t'))

(* Standard order of terms for ==, @<, etc.: compare resolved forms. *)
let std_compare s t1 t2 =
  Term.compare (Subst.resolve s t1) (Subst.resolve s t2)

(* --- the solver -------------------------------------------------------- *)

(* [solve e s goal sc cutid]: enumerate solutions of [goal] under [s],
   calling [sc] on each extended substitution.  [cutid] is the barrier a
   [!] in this goal cuts to. *)
let rec solve e (s : Subst.t) (goal : Term.t) (sc : Subst.t -> unit)
    (cutid : int) : unit =
  tick e;
  match Subst.walk s goal with
  | Term.Var _ -> raise (Instantiation_error "call/1")
  | Term.Int _ -> raise (Type_error ("callable", goal))
  | Term.Atom "true" -> sc s
  | Term.Atom ("fail" | "false") -> ()
  | Term.Atom "!" ->
      sc s;
      raise (Cut_signal cutid)
  | Term.Atom "nl" ->
      print_newline ();
      sc s
  | Term.Atom "halt" -> raise Found
  | Term.Struct (",", [| a; b |], _) ->
      solve e s a (fun s' -> solve e s' b sc cutid) cutid
  | Term.Struct (";", [| Term.Struct ("->", [| c; t |], _); el |], _) -> (
      match solve_once e s c with
      | Some s' -> solve e s' t sc cutid
      | None -> solve e s el sc cutid)
  | Term.Struct (";", [| a; b |], _) ->
      solve e s a sc cutid;
      solve e s b sc cutid
  | Term.Struct ("->", [| c; t |], _) -> (
      match solve_once e s c with
      | Some s' -> solve e s' t sc cutid
      | None -> ())
  | Term.Struct ("\\+", [| g |], _) -> (
      match solve_once e s g with Some _ -> () | None -> sc s)
  | Term.Struct ("not", [| g |], _) -> (
      match solve_once e s g with Some _ -> () | None -> sc s)
  | Term.Struct ("call", args, _) when Array.length args >= 1 ->
      let g = Subst.walk s args.(0) in
      let extra = Array.sub args 1 (Array.length args - 1) in
      let g' =
        if Array.length extra = 0 then g
        else
          match g with
          | Term.Atom f -> Term.mk f extra
          | Term.Struct (f, a0, _) -> Term.mk f (Array.append a0 extra)
          | _ -> raise (Type_error ("callable", g))
      in
      (* call/N is transparent to solutions but opaque to cut *)
      let id = new_cut_id e in
      (try solve e s g' sc id with Cut_signal i when i = id -> ())
  | Term.Struct ("findall", [| tmpl; g; out |], _) ->
      let acc = ref [] in
      let id = new_cut_id e in
      (try
         solve e s g (fun s' -> acc := Subst.resolve s' tmpl :: !acc) id
       with Cut_signal i when i = id -> ());
      let lst = Term.of_list (List.rev !acc) in
      unify_k e s lst out sc
  | Term.Struct ("=", [| a; b |], _) -> unify_k e s a b sc
  | Term.Struct ("\\=", [| a; b |], _) -> (
      match Unify.unify s a b with Some _ -> () | None -> sc s)
  | Term.Struct ("==", [| a; b |], _) -> if std_compare s a b = 0 then sc s
  | Term.Struct ("\\==", [| a; b |], _) -> if std_compare s a b <> 0 then sc s
  | Term.Struct ("@<", [| a; b |], _) -> if std_compare s a b < 0 then sc s
  | Term.Struct ("@>", [| a; b |], _) -> if std_compare s a b > 0 then sc s
  | Term.Struct ("@=<", [| a; b |], _) -> if std_compare s a b <= 0 then sc s
  | Term.Struct ("@>=", [| a; b |], _) -> if std_compare s a b >= 0 then sc s
  | Term.Struct ("compare", [| ord; a; b |], _) ->
      let c = std_compare s a b in
      let sym = if c < 0 then "<" else if c > 0 then ">" else "=" in
      unify_k e s ord (Term.atom sym) sc
  | Term.Struct ("is", [| x; expr |], _) ->
      unify_k e s x (Term.int (eval_arith s expr)) sc
  | Term.Struct ("=:=", [| a; b |], _) ->
      if eval_arith s a = eval_arith s b then sc s
  | Term.Struct ("=\\=", [| a; b |], _) ->
      if eval_arith s a <> eval_arith s b then sc s
  | Term.Struct ("<", [| a; b |], _) -> if eval_arith s a < eval_arith s b then sc s
  | Term.Struct (">", [| a; b |], _) -> if eval_arith s a > eval_arith s b then sc s
  | Term.Struct ("=<", [| a; b |], _) ->
      if eval_arith s a <= eval_arith s b then sc s
  | Term.Struct (">=", [| a; b |], _) ->
      if eval_arith s a >= eval_arith s b then sc s
  | Term.Struct ("var", [| x |], _) -> (
      match Subst.walk s x with Term.Var _ -> sc s | _ -> ())
  | Term.Struct ("nonvar", [| x |], _) -> (
      match Subst.walk s x with Term.Var _ -> () | _ -> sc s)
  | Term.Struct ("atom", [| x |], _) -> (
      match Subst.walk s x with Term.Atom _ -> sc s | _ -> ())
  | Term.Struct (("integer" | "number"), [| x |], _) -> (
      match Subst.walk s x with Term.Int _ -> sc s | _ -> ())
  | Term.Struct ("atomic", [| x |], _) -> (
      match Subst.walk s x with Term.Atom _ | Term.Int _ -> sc s | _ -> ())
  | Term.Struct ("compound", [| x |], _) -> (
      match Subst.walk s x with Term.Struct _ -> sc s | _ -> ())
  | Term.Struct ("ground", [| x |], _) ->
      if Subst.is_ground_under s x then sc s
  | Term.Struct ("functor", [| t; f; a |], _) -> (
      match Subst.walk s t with
      | Term.Var _ -> (
          match (Subst.walk s f, Subst.walk s a) with
          | Term.Atom name, Term.Int n when n >= 0 ->
              let t' =
                if n = 0 then Term.atom name
                else
                  Term.mk name (Array.init n (fun _ -> Term.fresh_var ()))
              in
              unify_k e s t t' sc
          | Term.Int i, Term.Int 0 -> unify_k e s t (Term.int i) sc
          | _ -> raise (Instantiation_error "functor/3"))
      | Term.Int i ->
          unify2_k e s f (Term.int i) a (Term.int 0) sc
      | Term.Atom name ->
          unify2_k e s f (Term.atom name) a (Term.int 0) sc
      | Term.Struct (name, args, _) ->
          unify2_k e s f (Term.atom name) a (Term.int (Array.length args)) sc)
  | Term.Struct ("arg", [| n; t; a |], _) -> (
      match (Subst.walk s n, Subst.walk s t) with
      | Term.Int i, Term.Struct (_, args, _) when i >= 1 && i <= Array.length args
        ->
          unify_k e s a args.(i - 1) sc
      | Term.Int _, Term.Struct _ -> ()
      | _ -> raise (Instantiation_error "arg/3"))
  | Term.Struct ("=..", [| t; l |], _) -> (
      match Subst.walk s t with
      | Term.Var _ -> (
          match Term.list_elements (Subst.resolve s l) with
          | Some (Term.Atom f :: args) ->
              unify_k e s t (Term.mkl f args) sc
          | Some [ (Term.Int _ as i) ] -> unify_k e s t i sc
          | _ -> raise (Instantiation_error "=../2"))
      | Term.Int i -> unify_k e s l (Term.of_list [ Term.int i ]) sc
      | Term.Atom a -> unify_k e s l (Term.of_list [ Term.atom a ]) sc
      | Term.Struct (f, args, _) ->
          unify_k e s l
            (Term.of_list (Term.atom f :: Array.to_list args))
            sc)
  | Term.Struct ("name", [| a; l |], _) -> (
      match Subst.walk s a with
      | Term.Atom at ->
          let codes =
            Term.of_list
              (List.map
                 (fun c -> Term.int (Char.code c))
                 (List.of_seq (String.to_seq at)))
          in
          unify_k e s l codes sc
      | Term.Int i ->
          let codes =
            Term.of_list
              (List.map
                 (fun c -> Term.int (Char.code c))
                 (List.of_seq (String.to_seq (string_of_int i))))
          in
          unify_k e s l codes sc
      | _ -> (
          match Term.list_elements (Subst.resolve s l) with
          | Some codes ->
              let str =
                String.init (List.length codes) (fun i ->
                    match List.nth codes i with
                    | Term.Int c -> Char.chr c
                    | _ -> raise (Type_error ("character code", l)))
              in
              unify_k e s a (Term.atom str) sc
          | None -> raise (Instantiation_error "name/2")))
  | Term.Struct ("write", [| t |], _) ->
      print_string (Pretty.term_to_string (Subst.resolve s t));
      sc s
  | Term.Struct ("tab", [| n |], _) ->
      print_string (String.make (max 0 (eval_arith s n)) ' ');
      sc s
  | Term.Struct ("length", [| l; n |], _) -> (
      match Term.list_elements (Subst.resolve s l) with
      | Some es -> unify_k e s n (Term.int (List.length es)) sc
      | None -> (
          match Subst.walk s n with
          | Term.Int k when k >= 0 ->
              let fresh = List.init k (fun _ -> Term.fresh_var ()) in
              unify_k e s l (Term.of_list fresh) sc
          | _ -> raise (Instantiation_error "length/2")))
  | (Term.Atom _ | Term.Struct _) as g -> solve_user e s g sc

and unify_k e s a b sc =
  ignore e;
  match Unify.unify s a b with Some s' -> sc s' | None -> ()

and unify2_k e s a1 b1 a2 b2 sc =
  ignore e;
  match Unify.unify s a1 b1 with
  | Some s' -> ( match Unify.unify s' a2 b2 with Some s'' -> sc s'' | None -> ())
  | None -> ()

and solve_user e s g sc =
  let p =
    match Term.functor_of g with Some p -> p | None -> assert false
  in
  if not (Database.defined e.db p) then
    raise (Existence_error (fst p, snd p));
  let id = new_cut_id e in
  let cs = Database.matching e.db s g in
  try
    List.iter
      (fun c ->
        tick e;
        match Database.activate c s g with
        | Some (s', body) ->
            solve_goals e s' body (fun s'' -> sc s'') id
        | None -> ())
      cs
  with Cut_signal i when i = id -> ()

and solve_goals e s goals sc cutid =
  match goals with
  | [] -> sc s
  | g :: rest ->
      solve e s g (fun s' -> solve_goals e s' rest sc cutid) cutid

and solve_once e s g =
  let result = ref None in
  let id = new_cut_id e in
  (try
     solve e s g
       (fun s' ->
         result := Some s';
         raise Found)
       id
   with
  | Found -> ()
  | Cut_signal i when i = id -> ());
  !result

(* --- public API -------------------------------------------------------- *)

(** All solutions of [goal] with the evaluation status: budget
    exhaustion yields the solutions found so far flagged [Partial] (for
    a top-down enumeration this is an under-approximation of the full
    solution set — the dual of the tabled engine's widening — so the
    flag must be checked before treating the list as exhaustive). *)
let solutions_status ?(limit = max_int) ?max_inferences ?guard db
    (goal : Term.t) : Subst.t list * Guard.status =
  let e = create ?max_inferences ?guard db in
  let acc = ref [] in
  let count = ref 0 in
  let id = new_cut_id e in
  let status = ref Guard.Complete in
  (try
     solve e Subst.empty goal
       (fun s ->
         acc := s :: !acc;
         incr count;
         if !count >= limit then raise Found)
       id
   with
  | Found -> ()
  | Cut_signal i when i = id -> ()
  | Guard.Exhausted reason ->
      status := Guard.Partial { reason; exhausted_entries = 0 });
  (List.rev !acc, !status)

(** All solutions of [goal], as substitutions, up to [limit]. *)
let solutions ?limit ?max_inferences ?guard db (goal : Term.t) : Subst.t list =
  fst (solutions_status ?limit ?max_inferences ?guard db goal)

(** Resolved instances of [tmpl] for each solution of [goal]. *)
let all_answers ?limit ?max_inferences ?guard db goal tmpl : Term.t list =
  solutions ?limit ?max_inferences ?guard db goal
  |> List.map (fun s -> Subst.resolve s tmpl)

let has_solution ?max_inferences ?guard db goal =
  match solutions ~limit:1 ?max_inferences ?guard db goal with
  | [] -> false
  | _ -> true
