lib/gaia/backend_bitset.ml: Bf List Prax_prop
