(** Minimal blocking client for the [prax.wire] protocol — the other
    end of {!Daemon}: connect to the socket, send one request line,
    read one response line.  Used by [praxd ping/stats/drain] and
    [xanalyze client]. *)

module Metrics = Prax_metrics.Metrics

type error =
  | Connect_failed of string  (** no daemon: ENOENT/ECONNREFUSED/... *)
  | Protocol_error of string  (** EOF, bad JSON, bad schema header *)

val error_to_string : error -> string

val request :
  ?timeout:float -> socket:string -> Wire.request ->
  (string * Metrics.json, error) result
(** [request ~socket req] performs one round trip and returns the
    response's validated [status] plus the whole response document.
    [timeout] bounds the wait for the response line (default: none —
    analyses can be slow; pass one for control verbs). *)
