(** The functional benchmark corpus for strictness analysis (Table 3) —
    reconstructions of the EQUALS / Hartel-Langendoen benchmark programs
    in this repository's first-order lazy equational language.  See
    DESIGN.md for the substitution note. *)

let eu =
  {|
-- eu: Euler totient sums (arithmetic-heavy small benchmark)
gcd(a, b) = if b == 0 then a else gcd(b, a mod b);

relprime(a, b) = gcd(a, b) == 1;

euler(n) = length(relprimes(n, n));

relprimes(n, 0) = [];
relprimes(n, k) = if relprime(n, k) then k : relprimes(n, k - 1)
                  else relprimes(n, k - 1);

length([]) = 0;
length(x:xs) = 1 + length(xs);

sumto(0) = 0;
sumto(n) = euler(n) + sumto(n - 1);

main() = sumto(30);
|}

let mergesort =
  {|
-- mergesort over integer lists
split([], evens, odds) = (evens, odds);
split(x:xs, evens, odds) = split(xs, odds, x:evens);

merge([], ys) = ys;
merge(x:xs, []) = x:xs;
merge(x:xs, y:ys) = if x <= y then x : merge(xs, y:ys)
                    else y : merge(x:xs, ys);

msort([]) = [];
msort(x:[]) = x:[];
msort(x:y:rest) = mergepair(split(x:y:rest, [], []));

mergepair((as, bs)) = merge(msort(as), msort(bs));

fromto(lo, hi) = if lo > hi then [] else lo : fromto(lo + 1, hi);

rev([], acc) = acc;
rev(x:xs, acc) = rev(xs, x:acc);

main() = msort(rev(fromto(1, 50), []));
|}

let quicksort =
  {|
-- quicksort with explicit partitioning
append([], ys) = ys;
append(x:xs, ys) = x : append(xs, ys);

smaller(p, []) = [];
smaller(p, x:xs) = if x < p then x : smaller(p, xs) else smaller(p, xs);

larger(p, []) = [];
larger(p, x:xs) = if x >= p then x : larger(p, xs) else larger(p, xs);

qsort([]) = [];
qsort(p:rest) = append(qsort(smaller(p, rest)), p : qsort(larger(p, rest)));

shuffle(0, seed) = [];
shuffle(n, seed) = let s = (seed * 1103 + 12345) mod 2048 in
                   s : shuffle(n - 1, s);

main() = qsort(shuffle(60, 42));
|}

let nq =
  {|
-- nq: n-queens counting solutions
safe(q, [], d) = True;
safe(q, p:ps, d) = if q == p then False
                   else if q == p + d then False
                   else if q == p - d then False
                   else safe(q, ps, d + 1);

fromto(lo, hi) = if lo > hi then [] else lo : fromto(lo + 1, hi);

-- try each column for the next row
tryall(board, [], n) = 0;
tryall(board, c:cs, n) = tryone(c, board, n) + tryall(board, cs, n);

tryone(c, board, n) = if safe(c, board, 1) then descend(c:board, n) else 0;

descend(board, n) = if length(board) == n then 1
                    else tryall(board, fromto(1, n), n);

length([]) = 0;
length(x:xs) = 1 + length(xs);

-- first solution as a board, for inspection
solve(board, [], n) = [];
solve(board, c:cs, n) =
    if safe(c, board, 1) then keep(c, extend(c:board, n), board, cs, n)
    else solve(board, cs, n);

keep(c, sub, board, cs, n) =
    if null(sub) and (length(board) + 1 < n) then solve(board, cs, n)
    else c : sub;

extend(board, n) = if length(board) == n then []
                   else solve(board, fromto(1, n), n);

null([]) = True;
null(x:xs) = False;

queens(n) = descend([], n);

main() = queens(6);
|}

let listcompr =
  {|
-- listcompr: list-comprehension style pipelines, hand-desugared to
-- first-order specialized producers/filters/consumers
fromto(lo, hi) = if lo > hi then [] else lo : fromto(lo + 1, hi);

squares([]) = [];
squares(x:xs) = (x * x) : squares(xs);

doubles([]) = [];
doubles(x:xs) = (2 * x) : doubles(xs);

evens([]) = [];
evens(x:xs) = if x mod 2 == 0 then x : evens(xs) else evens(xs);

multiples3([]) = [];
multiples3(x:xs) = if x mod 3 == 0 then x : multiples3(xs) else multiples3(xs);

pairsums([], ys) = [];
pairsums(x:xs, ys) = append(addto(x, ys), pairsums(xs, ys));

addto(x, []) = [];
addto(x, y:ys) = (x + y) : addto(x, ys);

append([], ys) = ys;
append(x:xs, ys) = x : append(xs, ys);

sum([]) = 0;
sum(x:xs) = x + sum(xs);

pyth(n) = triples(fromto(1, n), n);

triples([], n) = 0;
triples(a:as, n) = triplesb(a, fromto(a, n), n) + triples(as, n);

triplesb(a, [], n) = 0;
triplesb(a, b:bs, n) = triplesc(a, b, fromto(b, n)) + triplesb(a, bs, n);

triplesc(a, b, []) = 0;
triplesc(a, b, c:cs) = (if a * a + b * b == c * c then 1 else 0)
                       + triplesc(a, b, cs);

take(0, xs) = [];
take(n, []) = [];
take(n, x:xs) = x : take(n - 1, xs);

nats(k) = k : nats(k + 1);

main() = sum(squares(evens(fromto(1, 40))))
         + sum(take(10, multiples3(nats(1))))
         + sum(doubles(fromto(1, 20)))
         + sum(pairsums(fromto(1, 8), fromto(1, 8)))
         + pyth(15);
|}

let fft =
  {|
-- fft: radix-2 decimation over scaled-integer complex pairs
-- complex numbers are (re, im) pairs, scaled by 1024
cadd((a, b), (c, d)) = (a + c, b + d);
csub((a, b), (c, d)) = (a - c, b - d);
cmul((a, b), (c, d)) = ((a * c - b * d) div 1024, (a * d + b * c) div 1024);

-- eighth-of-turn twiddle factors, scaled
twiddle(0) = (1024, 0);
twiddle(1) = (724, 0 - 724);
twiddle(2) = (0, 0 - 1024);
twiddle(3) = (0 - 724, 0 - 724);
twiddle(k) = twiddle(k mod 4);

evens([]) = [];
evens(x:[]) = x:[];
evens(x:y:rest) = x : evens(rest);

odds([]) = [];
odds(x:[]) = [];
odds(x:y:rest) = y : odds(rest);

length([]) = 0;
length(x:xs) = 1 + length(xs);

fft([]) = [];
fft(x:[]) = x:[];
fft(xs) = combine(fft(evens(xs)), fft(odds(xs)), 0, length(xs));

combine([], [], k, n) = [];
combine(e:es, o:os, k, n) =
    let t = cmul(twiddle((4 * k) div n), o) in
    cadd(e, t) : appendlast(combine(es, os, k + 1, n), csub(e, t));

-- keep the butterfly's second half at the tail
appendlast([], z) = z : [];
appendlast(x:xs, z) = x : appendlast(xs, z);

signal(0) = [];
signal(n) = (n * 100, 0) : signal(n - 1);

magsum([]) = 0;
magsum((a, b):rest) = a * a + b * b + magsum(rest);

main() = magsum(fft(signal(8)));
|}

let event =
  {|
-- event: discrete-event simulation of a queueing network with a
-- priority event queue represented as a sorted list
-- events are Ev(time, station, kind): kind 0 = arrival, 1 = departure
insert(Ev(t, s, k), []) = Ev(t, s, k) : [];
insert(Ev(t, s, k), Ev(t2, s2, k2):rest) =
    if t <= t2 then Ev(t, s, k) : Ev(t2, s2, k2) : rest
    else Ev(t2, s2, k2) : insert(Ev(t, s, k), rest);

-- stations: St(id, queue_len, busy, served)
update([], id, dq, db, ds) = [];
update(St(i, q, b, s):rest, id, dq, db, ds) =
    if i == id then St(i, q + dq, b + db, s + ds) : rest
    else St(i, q, b, s) : update(rest, id, dq, db, ds);

getq([], id) = 0;
getq(St(i, q, b, s):rest, id) = if i == id then q else getq(rest, id);

getbusy([], id) = 0;
getbusy(St(i, q, b, s):rest, id) = if i == id then b else getbusy(rest, id);

service(id) = 3 + (id * 7) mod 5;

interarrival(t) = 2 + (t * 13) mod 7;

nextstation(id, t) = (id + 1 + t mod 2) mod 3;

-- the simulation loop: process events until the horizon
simulate([], stations, t, horizon) = stations;
simulate(Ev(t, s, k):rest, stations, tprev, horizon) =
    if t > horizon then stations
    else step(Ev(t, s, k), rest, stations, horizon);

step(Ev(t, s, 0), rest, stations, horizon) =
    -- arrival at s: enqueue; if idle, start service (departure event)
    arrival(t, s, rest, stations, getbusy(stations, s), horizon);

arrival(t, s, rest, stations, busy, horizon) =
    simulate(arrival_events(t, s, rest, busy),
             arrival_stations(stations, s, busy), t, horizon);

arrival_events(t, s, rest, busy) =
    if busy == 0
    then insert(Ev(t + service(s), s, 1), with_arrival(t, rest))
    else with_arrival(t, rest);

with_arrival(t, rest) = insert(Ev(t + interarrival(t), 0, 0), rest);

arrival_stations(stations, s, busy) =
    if busy == 0 then update(update(stations, s, 1, 0, 0), s, 0, 1, 0)
    else update(stations, s, 1, 0, 0);

step(Ev(t, s, 1), rest, stations, horizon) =
    -- departure from s: dequeue, forward to next station, maybe restart
    departure(t, s, rest, stations, getq(stations, s), horizon);

departure(t, s, rest, stations, q, horizon) =
    simulate(departure_events(t, s, rest, q),
             departure_stations(stations, s, q), t, horizon);

departure_events(t, s, rest, q) =
    if q > 1
    then insert(Ev(t + service(s), s, 1), with_next(t, s, rest))
    else with_next(t, s, rest);

with_next(t, s, rest) = insert(Ev(t + 1, nextstation(s, t), 0), rest);

departure_stations(stations, s, q) =
    if q > 1 then update(stations, s, 0 - 1, 0, 1)
    else update(update(stations, s, 0 - 1, 0, 1), s, 0, 0 - 1, 0);

served([]) = 0;
served(St(i, q, b, s):rest) = s + served(rest);

initial() = St(0, 0, 0, 0) : St(1, 0, 0, 0) : St(2, 0, 0, 0) : [];

main() = served(simulate(Ev(0, 0, 0) : [], initial(), 0, 200));
|}

let odprove =
  {|
-- odprove: ordered resolution prover for propositional clauses
-- literals: positive k = atom k, negative encoded as Neg(k)
-- clauses are sorted lists of literals; Neg sorts after positives
litkey(Neg(k)) = 2 * k + 1;
litkey(Pos(k)) = 2 * k;

complement(Neg(k)) = Pos(k);
complement(Pos(k)) = Neg(k);

insertlit(l, []) = l : [];
insertlit(l, m:ms) = if litkey(l) <= litkey(m) then l : m : ms
                     else m : insertlit(l, ms);

memberlit(l, []) = False;
memberlit(l, m:ms) = if litkey(l) == litkey(m) then True else memberlit(l, ms);

removelit(l, []) = [];
removelit(l, m:ms) = if litkey(l) == litkey(m) then ms
                     else m : removelit(l, ms);

-- resolve on the smallest literal of c1 (ordered resolution)
resolve([], c2) = [];
resolve(l:ls, c2) = if memberlit(complement(l), c2)
                    then mergecl(ls, removelit(complement(l), c2)) : []
                    else [];

mergecl([], c) = c;
mergecl(l:ls, c) = if memberlit(l, c) then mergecl(ls, c)
                   else mergecl(ls, insertlit(l, c));

isempty([]) = True;
isempty(l:ls) = False;

anyempty([]) = False;
anyempty(c:cs) = if isempty(c) then True else anyempty(cs);

resolveall(c, []) = [];
resolveall(c, d:ds) = append(resolve(c, d), resolveall(c, ds));

append([], ys) = ys;
append(x:xs, ys) = x : append(xs, ys);

samecl([], []) = True;
samecl([], m:ms) = False;
samecl(l:ls, []) = False;
samecl(l:ls, m:ms) = if litkey(l) == litkey(m) then samecl(ls, ms) else False;

membercl(c, []) = False;
membercl(c, d:ds) = if samecl(c, d) then True else membercl(c, ds);

addnew([], old) = old;
addnew(c:cs, old) = if membercl(c, old) then addnew(cs, old)
                    else addnew(cs, c : old);

saturate(clauses, 0) = clauses;
saturate(clauses, fuel) =
    let new = round(clauses, clauses) in
    if anyempty(new) then new
    else saturate(addnew(new, clauses), fuel - 1);

round([], all) = [];
round(c:cs, all) = append(resolveall(c, all), round(cs, all));

refutable(clauses, fuel) = anyempty(saturate(clauses, fuel));

-- prove p from (p | q), (~q | p), (~p): add negation, refute
problem() = (Pos(1) : Pos(2) : [])
          : (Neg(2) : Pos(1) : [])
          : (Neg(1) : [])
          : [];

main() = if refutable(problem(), 5) then 1 else 0;
|}

let pcprove =
  {|
-- pcprove: a propositional-calculus tableau prover (Wang style) over
-- formula trees; the deepest-recursion benchmark of the suite
-- formulas: Atom(k), Not(f), And(f,g), Or(f,g), Imp(f,g)
memberf(k, []) = False;
memberf(k, j:js) = if k == j then True else memberf(k, js);

-- prove(left-formulas, right-formulas, left-atoms, right-atoms)
prove([], [], latoms, ratoms) = shared(latoms, ratoms);
prove([], Atom(k):rs, latoms, ratoms) =
    if memberf(k, latoms) then True
    else prove([], rs, latoms, k : ratoms);
prove([], Not(f):rs, latoms, ratoms) = prove(f : [], rs, latoms, ratoms);
prove([], And(f, g):rs, latoms, ratoms) =
    if prove([], f : rs, latoms, ratoms)
    then prove([], g : rs, latoms, ratoms)
    else False;
prove([], Or(f, g):rs, latoms, ratoms) = prove([], f : g : rs, latoms, ratoms);
prove([], Imp(f, g):rs, latoms, ratoms) = prove(f : [], g : rs, latoms, ratoms);
prove(Atom(k):ls, rs, latoms, ratoms) =
    if memberf(k, ratoms) then True
    else prove(ls, rs, k : latoms, ratoms);
prove(Not(f):ls, rs, latoms, ratoms) = prove(ls, f : rs, latoms, ratoms);
prove(And(f, g):ls, rs, latoms, ratoms) = prove(f : g : ls, rs, latoms, ratoms);
prove(Or(f, g):ls, rs, latoms, ratoms) =
    if prove(f : ls, rs, latoms, ratoms)
    then prove(g : ls, rs, latoms, ratoms)
    else False;
prove(Imp(f, g):ls, rs, latoms, ratoms) =
    if prove(g : ls, rs, latoms, ratoms)
    then prove(ls, f : rs, latoms, ratoms)
    else False;

shared([], ratoms) = False;
shared(k:ks, ratoms) = if memberf(k, ratoms) then True else shared(ks, ratoms);

valid(f) = prove([], f : [], [], []);

-- formula generators for the benchmark load
conjchain(0) = Atom(0);
conjchain(n) = And(Atom(n), conjchain(n - 1));

disjchain(0) = Atom(0);
disjchain(n) = Or(Atom(n), disjchain(n - 1));

-- k-th excluded-middle pyramid: valid formulas of growing depth
pyramid(0) = Or(Atom(0), Not(Atom(0)));
pyramid(n) = And(Or(Atom(n), Not(Atom(n))), pyramid(n - 1));

-- implication ladder: ((a1 -> a2) -> a2) style, valid
ladder(0) = Imp(Atom(0), Atom(0));
ladder(n) = Imp(Imp(Atom(n), Atom(n - 1)), Imp(Atom(n), ladder(n - 1)));

-- peirce-ish stress: not valid, forces full search
peirce(n) = Imp(Imp(Imp(Atom(n), Atom(n + 1)), Atom(n)), Atom(n));

count([]) = 0;
count(f:fs) = (if valid(f) then 1 else 0) + count(fs);

suite() = pyramid(6)
        : ladder(5)
        : peirce(1)
        : Imp(conjchain(8), disjchain(8))
        : Imp(And(Atom(1), Atom(2)), Atom(1))
        : Imp(Atom(1), Or(Atom(1), Atom(2)))
        : Or(disjchain(4), Not(disjchain(4)))
        : [];

main() = count(suite());
|}

let strassen =
  {|
-- strassen: 2x2-block recursive matrix multiplication; matrices are
-- 2x2 block trees M(top-row, bottom-row) with rows R(left, right),
-- bottoming out in Leaf(v)
madd(Leaf(x), Leaf(y)) = Leaf(x + y);
madd(M(r1, r2), M(s1, s2)) = M(radd(r1, s1), radd(r2, s2));

radd(R(a, b), R(c, d)) = R(madd(a, c), madd(b, d));

msub(Leaf(x), Leaf(y)) = Leaf(x - y);
msub(M(r1, r2), M(s1, s2)) = M(rsub(r1, s1), rsub(r2, s2));

rsub(R(a, b), R(c, d)) = R(msub(a, c), msub(b, d));

-- quadrant accessors
qa(M(R(a, b), R(c, d))) = a;
qb(M(R(a, b), R(c, d))) = b;
qc(M(R(a, b), R(c, d))) = c;
qd(M(R(a, b), R(c, d))) = d;

mmul(Leaf(x), Leaf(y)) = Leaf(x * y);
mmul(M(r1, r2), M(s1, s2)) = assemble(products(M(r1, r2), M(s1, s2)));

-- the seven Strassen products, as a lazy list
products(x, y) = p1(x, y) : p2(x, y) : p3(x, y) : p4(x, y)
               : p5(x, y) : p6(x, y) : p7(x, y) : [];

p1(x, y) = mmul(madd(qa(x), qd(x)), madd(qa(y), qd(y)));
p2(x, y) = mmul(madd(qc(x), qd(x)), qa(y));
p3(x, y) = mmul(qa(x), msub(qb(y), qd(y)));
p4(x, y) = mmul(qd(x), msub(qc(y), qa(y)));
p5(x, y) = mmul(madd(qa(x), qb(x)), qd(y));
p6(x, y) = mmul(msub(qc(x), qa(x)), madd(qa(y), qb(y)));
p7(x, y) = mmul(msub(qb(x), qd(x)), madd(qc(y), qd(y)));

assemble(ms) = M(R(quad1(ms), quad2(ms)), R(quad3(ms), quad4(ms)));

nth(1, m:ms) = m;
nth(k, m:ms) = nth(k - 1, ms);

quad1(ms) = madd(msub(madd(nth(1, ms), nth(4, ms)), nth(5, ms)), nth(7, ms));
quad2(ms) = madd(nth(3, ms), nth(5, ms));
quad3(ms) = madd(nth(2, ms), nth(4, ms));
quad4(ms) = madd(msub(madd(nth(1, ms), nth(3, ms)), nth(2, ms)), nth(6, ms));

build(0, seed) = Leaf(seed mod 10);
build(n, seed) = M(R(build(n - 1, seed * 3 + 1), build(n - 1, seed * 5 + 2)),
                   R(build(n - 1, seed * 7 + 3), build(n - 1, seed * 11 + 4)));

msum(Leaf(x)) = x;
msum(M(r1, r2)) = rsum(r1) + rsum(r2);

rsum(R(a, b)) = msum(a) + msum(b);

main() = msum(mmul(build(3, 1), build(3, 2)));
|}
