lib/logic/pretty.ml: Array Char Format Lexer List Ops Parser Printf String Term
