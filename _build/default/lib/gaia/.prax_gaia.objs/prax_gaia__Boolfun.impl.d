lib/gaia/boolfun.ml:
