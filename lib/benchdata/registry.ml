(** Registry of the benchmark corpus, with the paper's reported
    measurements for side-by-side reporting in EXPERIMENTS.md.

    Paper numbers are from Tables 1–4 (Sun SPARCstation 10/30 resp.
    SPARC LX, XSB 1.4.2, 1996); we reproduce shapes, not absolute
    times. *)

type paper_row = {
  preproc : float;
  analysis : float;
  collection : float;
  total : float;
  compile_increase_pct : float;  (** negative when the paper has no value *)
  table_bytes : int;
}

type logic_bench = {
  name : string;
  source : string;
  paper_lines : int;
  table1 : paper_row option;  (** Prop groundness, Table 1 *)
  gaia_total : float option;  (** GAIA total, Table 2 *)
  table4 : paper_row option;  (** depth-k groundness, Table 4 *)
}

let row p a c t inc bytes =
  Some
    {
      preproc = p;
      analysis = a;
      collection = c;
      total = t;
      compile_increase_pct = inc;
      table_bytes = bytes;
    }

let logic_benchmarks : logic_bench list =
  [
    {
      name = "cs";
      source = Logic_medium.cs;
      paper_lines = 182;
      table1 = row 0.31 0.11 0.15 0.57 22.1 8056;
      gaia_total = Some 1.34;
      table4 = row 0.16 0.03 0.07 0.26 16. 12988;
    };
    {
      name = "disj";
      source = Logic_medium.disj;
      paper_lines = 172;
      table1 = row 0.27 0.03 0.10 0.40 26.9 5768;
      gaia_total = Some 1.01;
      table4 = row 0.14 0.03 0.06 0.23 23. 9552;
    };
    {
      name = "gabriel";
      source = Logic_small.gabriel;
      paper_lines = 122;
      table1 = row 0.20 0.05 0.11 0.36 43.6 6912;
      gaia_total = Some 0.47;
      table4 = None;
    };
    {
      name = "kalah";
      source = Logic_medium.kalah;
      paper_lines = 278;
      table1 = row 0.48 0.06 0.23 0.77 37.4 10580;
      gaia_total = Some 0.93;
      table4 = row 0.24 0.05 0.11 0.40 29. 17068;
    };
    {
      name = "peep";
      source = Logic_peep.peep;
      paper_lines = 369;
      table1 = row 0.84 0.16 0.09 1.09 23.4 5800;
      gaia_total = Some 1.16;
      table4 = row 0.44 0.08 0.05 0.57 18. 12784;
    };
    {
      name = "pg";
      source = Logic_small.pg;
      paper_lines = 53;
      table1 = row 0.10 0.01 0.02 0.13 31.0 2332;
      gaia_total = Some 0.16;
      table4 = row 0.05 0.01 0.02 0.08 29. 4136;
    };
    {
      name = "plan";
      source = Logic_small.plan;
      paper_lines = 84;
      table1 = row 0.14 0.01 0.03 0.18 30.8 2888;
      gaia_total = Some 0.12;
      table4 = row 0.08 0.01 0.02 0.11 29. 5324;
    };
    {
      name = "press1";
      source = Logic_press.press1;
      paper_lines = 349;
      table1 = row 0.62 0.38 0.82 1.82 59.5 29400;
      gaia_total = Some 5.96;
      table4 = None;
    };
    {
      name = "press2";
      source = Logic_press.press2;
      paper_lines = 351;
      table1 = row 0.60 0.41 0.83 1.84 60.7 29400;
      gaia_total = Some 6.03;
      table4 = None;
    };
    {
      name = "qsort";
      source = Logic_small.qsort;
      paper_lines = 21;
      table1 = row 0.04 0.00 0.01 0.05 33.3 916;
      gaia_total = Some 0.05;
      table4 = row 0.02 0.01 0.02 0.05 56. 1684;
    };
    {
      name = "queens";
      source = Logic_small.queens;
      paper_lines = 33;
      table1 = row 0.04 0.00 0.01 0.05 27.8 976;
      gaia_total = Some 0.04;
      table4 = row 0.03 0.00 0.01 0.04 33. 1740;
    };
    {
      name = "read";
      source = Logic_read.read;
      paper_lines = 443;
      table1 = row 0.72 0.60 0.70 2.02 64.4 26528;
      gaia_total = Some 1.66;
      table4 = row 0.36 0.25 0.43 1.04 50. 52508;
    };
  ]

type fp_bench = {
  name : string;
  source : string;
  paper_lines : int;
  table3 : paper_row option;
}

let fp_benchmarks : fp_bench list =
  [
    { name = "eu"; source = Fp_programs.eu; paper_lines = 67;
      table3 = row 0.03 0.01 0.12 0.16 0. 2852 };
    { name = "event"; source = Fp_programs.event; paper_lines = 384;
      table3 = row 0.67 0.63 0.08 1.38 0. 22056 };
    { name = "fft"; source = Fp_programs.fft; paper_lines = 343;
      table3 = row 0.63 0.19 0.06 0.88 0. 15780 };
    { name = "listcompr"; source = Fp_programs.listcompr; paper_lines = 241;
      table3 = row 0.75 0.07 0.02 0.84 0. 4688 };
    { name = "mergesort"; source = Fp_programs.mergesort; paper_lines = 65;
      table3 = row 0.11 0.02 0.01 0.14 0. 2332 };
    { name = "nq"; source = Fp_programs.nq; paper_lines = 90;
      table3 = row 0.20 0.12 0.02 0.34 0. 8912 };
    { name = "odprove"; source = Fp_programs.odprove; paper_lines = 160;
      table3 = row 0.39 0.17 0.02 0.58 0. 3776 };
    { name = "pcprove"; source = Fp_programs.pcprove; paper_lines = 595;
      table3 = row 1.01 1.60 0.10 2.71 0. 25972 };
    { name = "quicksort"; source = Fp_programs.quicksort; paper_lines = 70;
      table3 = row 0.10 0.03 0.01 0.14 0. 2660 };
    { name = "strassen"; source = Fp_programs.strassen; paper_lines = 93;
      table3 = row 0.09 0.08 0.01 0.18 0. 2760 };
  ]

type cfg_bench = {
  name : string;
  source : string;  (** [.cfg] textual control-flow-graph format *)
}

(** The Section 7 dataflow corpus (no paper table to compare against). *)
let cfg_benchmarks : cfg_bench list =
  [
    { name = "interp"; source = Cfg_programs.interp };
    { name = "ladder8"; source = Cfg_programs.ladder8 };
    { name = "ladder24"; source = Cfg_programs.ladder24 };
  ]

type stress_bench = {
  name : string;
  source : string;
  max_steps : int;
      (** the step budget the harness applies to mode=dynamic runs: big
          enough for the smallest sizes to complete, so both exit codes
          (0 complete / 3 partial) stay exercised *)
}

(** Worst-case groundness corpus (examples/stress/, after
    Genaim–Howe–Codish): mode=dynamic must degrade to a sound partial
    result within the budget on the larger sizes, mode=def must
    complete on all of them. *)
let stress_benchmarks : stress_bench list =
  [
    { name = "ghc8"; source = Stress_programs.product 8; max_steps = 20_000 };
    { name = "ghc12"; source = Stress_programs.product 12; max_steps = 20_000 };
    { name = "ghc16"; source = Stress_programs.product 16; max_steps = 20_000 };
    { name = "ghcchain12"; source = Stress_programs.chain 12; max_steps = 20_000 };
    { name = "ghcchain16"; source = Stress_programs.chain 16; max_steps = 20_000 };
  ]

let find_stress name =
  List.find_opt
    (fun (b : stress_bench) -> String.equal b.name name)
    stress_benchmarks

let find_cfg name =
  List.find_opt
    (fun (b : cfg_bench) -> String.equal b.name name)
    cfg_benchmarks

let find_logic name =
  List.find_opt
    (fun (b : logic_bench) -> String.equal b.name name)
    logic_benchmarks

let find_fp name =
  List.find_opt (fun (b : fp_bench) -> String.equal b.name name) fp_benchmarks

(** Benchmarks with a Table 4 row in the paper (the depth-k experiment
    drops gabriel/press1/press2). *)
let table4_benchmarks =
  List.filter (fun b -> b.table4 <> None) logic_benchmarks
