(** peep — a peephole optimizer for a PDP-11-flavoured three-address
    code, after the SB-Prolog benchmark: a rule base of instruction-window
    rewrites applied to straight-line code until a fixed point.
    Reconstruction; see DESIGN.md. *)

let peep =
  {|
% peep -- peephole optimization over assembly instruction lists.
peep_top(Optimized) :-
    program(P),
    optimize(P, Optimized).

optimize(Code, Out) :-
    pass(Code, Code1, Changed),
    ( Changed = yes -> optimize(Code1, Out) ; Out = Code1 ).

pass([], [], no).
pass(Code, Out, yes) :-
    rewrite(Code, Code1),
    pass(Code1, Out, _).
pass([I|Is], [I|Os], Changed) :-
    \+ rewrite([I|Is], _),
    pass(Is, Os, Changed).

% --- two- and three-instruction window rules ------------------------------
rewrite([move(R, R)|Rest], Rest).
rewrite([move(A, B), move(B, A)|Rest], [move(A, B)|Rest]).
rewrite([move(A, B), move(A, B)|Rest], [move(A, B)|Rest]).
rewrite([add(0, _)|Rest], Rest).
rewrite([sub(0, _)|Rest], Rest).
rewrite([mul(1, _)|Rest], Rest).
rewrite([add(K1, R), add(K2, R)|Rest], [add(K, R)|Rest]) :-
    number(K1), number(K2), K is K1 + K2.
rewrite([sub(K1, R), sub(K2, R)|Rest], [sub(K, R)|Rest]) :-
    number(K1), number(K2), K is K1 + K2.
rewrite([add(K1, R), sub(K2, R)|Rest], Out) :-
    number(K1), number(K2), K is K1 - K2,
    ( K =:= 0 -> Out = Rest
    ; K > 0 -> Out = [add(K, R)|Rest]
    ; K2m is -K, Out = [sub(K2m, R)|Rest]
    ).
rewrite([mul(K1, R), mul(K2, R)|Rest], [mul(K, R)|Rest]) :-
    number(K1), number(K2), K is K1 * K2.
rewrite([mul(2, R)|Rest], [asl(1, R)|Rest]).
rewrite([mul(4, R)|Rest], [asl(2, R)|Rest]).
rewrite([mul(8, R)|Rest], [asl(3, R)|Rest]).
rewrite([clr(R), move(S, R)|Rest], [move(S, R)|Rest]).
rewrite([move(0, R)|Rest], [clr(R)|Rest]).
rewrite([cmp(A, A), beq(L)|Rest], [jmp(L)|Rest]).
rewrite([cmp(A, A), bne(_)|Rest], Rest).
rewrite([neg(R), neg(R)|Rest], Rest).
rewrite([com(R), com(R)|Rest], Rest).
rewrite([inc(R), dec(R)|Rest], Rest).
rewrite([dec(R), inc(R)|Rest], Rest).
rewrite([asl(K1, R), asl(K2, R)|Rest], [asl(K, R)|Rest]) :-
    number(K1), number(K2), K is K1 + K2.
rewrite([jmp(L), label(L)|Rest], [label(L)|Rest]).
rewrite([beq(L), label(L)|Rest], [label(L)|Rest]).
rewrite([bne(L), label(L)|Rest], [label(L)|Rest]).
rewrite([jmp(_), I|Rest], [jmp2|Out]) :-
    \+ is_label(I),
    strip_dead(Rest, Out).
rewrite([tst(R), cmp(0, R)|Rest], [tst(R)|Rest]).
rewrite([move(A, r0), tst(r0)|Rest], [move(A, r0)|Rest]).
rewrite([push(R), pop(R)|Rest], Rest).
rewrite([pop(R), push(R)|Rest], [move(stack, R)|Rest]).

is_label(label(_)).

strip_dead([], []).
strip_dead([I|Is], [I|Is]) :- is_label(I).
strip_dead([I|Is], Out) :- \+ is_label(I), strip_dead(Is, Out).

% --- register-liveness cleanup pass -----------------------------------------
live_pass(Code, Out) :-
    reverse_code(Code, Rev),
    sweep(Rev, [], RevOut),
    reverse_code(RevOut, Out).

reverse_code(Code, Rev) :- rev_acc(Code, [], Rev).
rev_acc([], Acc, Acc).
rev_acc([I|Is], Acc, Rev) :- rev_acc(Is, [I|Acc], Rev).

sweep([], _, []).
sweep([I|Is], Live, Out) :-
    defines(I, R),
    \+ memberq(R, Live),
    pure(I),
    sweep(Is, Live, Out).
sweep([I|Is], Live, [I|Out]) :-
    uses(I, Us),
    append(Us, Live, Live1),
    sweep(Is, Live1, Out).

defines(move(_, R), R).
defines(add(_, R), R).
defines(sub(_, R), R).
defines(mul(_, R), R).
defines(clr(R), R).
defines(inc(R), R).
defines(dec(R), R).
defines(asl(_, R), R).
defines(neg(R), R).
defines(com(R), R).

pure(move(_, _)).
pure(clr(_)).

uses(move(S, _), [S]).
uses(add(S, R), [S, R]).
uses(sub(S, R), [S, R]).
uses(mul(S, R), [S, R]).
uses(cmp(A, B), [A, B]).
uses(tst(R), [R]).
uses(inc(R), [R]).
uses(dec(R), [R]).
uses(asl(_, R), [R]).
uses(neg(R), [R]).
uses(com(R), [R]).
uses(push(R), [R]).
uses(pop(_), []).
uses(jmp(_), []).
uses(beq(_), []).
uses(bne(_), []).
uses(label(_), []).
uses(clr(_), []).

memberq(X, [X|_]).
memberq(X, [_|Ys]) :- memberq(X, Ys).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

% --- a representative input program -----------------------------------------
program([
    move(r1, r1),
    move(0, r2),
    add(3, r3), add(4, r3),
    mul(2, r4),
    clr(r5), move(r6, r5),
    cmp(r7, r7), beq(l1),
    move(r1, r2), move(r2, r1),
    inc(r3), dec(r3),
    label(l1),
    sub(2, r3), sub(5, r3),
    push(r4), pop(r4),
    mul(8, r2),
    jmp(l2),
    add(1, r9),
    label(l2),
    neg(r5), neg(r5),
    tst(r6), cmp(0, r6),
    move(r0, r7), move(r0, r7),
    com(r8), com(r8),
    mul(1, r9),
    add(0, r1),
    label(l3)
]).
|}
