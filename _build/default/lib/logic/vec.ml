(** Minimal growable vector (OCaml 5.1 predates [Dynarray]).  Used for
    clause stores and for tabling consumer lists, which are iterated by
    index while growing. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let push v x =
  if v.len = Array.length v.data then begin
    let cap = max 8 (2 * Array.length v.data) in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let clear v =
  v.data <- [||];
  v.len <- 0
