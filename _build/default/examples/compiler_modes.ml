(* Scenario: a Prolog compiler front end using groundness analysis to
   derive argument-passing modes, the motivating application of the
   paper's introduction (Debray-style mode inference for optimization).

   We analyze a benchmark program, print mode declarations a compiler
   would emit, and then *validate* the definite-groundness claims by
   executing the program concretely with the SLD engine and checking
   every claimed-ground argument really is ground in every solution.

   Run with: dune exec examples/compiler_modes.exe *)

open Prax

let program =
  {|
% a small library a compiler might process
flatten_tree(leaf(X), [X]).
flatten_tree(node(L, R), Xs) :-
    flatten_tree(L, LXs),
    flatten_tree(R, RXs),
    append(LXs, RXs, Xs).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

depth(leaf(_), 1).
depth(node(L, R), D) :-
    depth(L, DL),
    depth(R, DR),
    max(DL, DR, M),
    D is M + 1.

max(A, B, A) :- A >= B.
max(A, B, B) :- A < B.

weigh(T, W) :- flatten_tree(T, Xs), sum(Xs, W).

sum([], 0).
sum([X|Xs], S) :- sum(Xs, S1), S is S1 + X.

main(T, W, D) :- weigh(T, W), depth(T, D).
|}

let mode_decl (r : Prax_ground.Analyze.pred_result) =
  let name, arity = r.Prax_ground.Analyze.pred in
  let modes =
    List.init arity (fun i ->
        if r.Prax_ground.Analyze.definite.(i) then "out(ground)" else "out(any)")
  in
  Printf.sprintf ":- mode %s(%s)." name (String.concat ", " modes)

let () =
  print_endline "mode declarations derived from groundness analysis:";
  let rep = Groundness.analyze program in
  List.iter (fun r -> print_endline ("  " ^ mode_decl r)) rep.Prax_ground.Analyze.results;

  (* a compiler would specialize e.g. unification and register passing for
     arguments that are ground in every answer; check the claims hold on a
     battery of concrete queries *)
  print_endline "\nvalidating claims on concrete executions:";
  let db = Logic.Database.create () in
  ignore (Logic.Database.load_string db program);
  let queries =
    [
      "flatten_tree(node(leaf(1), node(leaf(2), leaf(3))), Xs)";
      "depth(node(node(leaf(a), leaf(b)), leaf(c)), D)";
      "weigh(node(leaf(4), leaf(5)), W)";
      "main(node(leaf(1), leaf(2)), W, D)";
      "append(X, Y, [1,2,3])";
    ]
  in
  let violations = ref 0 in
  List.iter
    (fun q ->
      let goal = Logic.Parser.parse_term q in
      let name, arity = Option.get (Logic.Term.functor_of goal) in
      let r =
        List.find
          (fun r -> r.Prax_ground.Analyze.pred = (name, arity))
          rep.Prax_ground.Analyze.results
      in
      let sols = Logic.Sld.solutions db goal in
      List.iter
        (fun s ->
          Array.iteri
            (fun i arg ->
              if
                r.Prax_ground.Analyze.definite.(i)
                && not (Logic.Subst.is_ground_under s arg)
              then begin
                incr violations;
                Printf.printf "  VIOLATION: %s arg %d not ground\n" q (i + 1)
              end)
            (Logic.Term.args_of goal))
        sols;
      Printf.printf "  %-55s %d solutions, claims hold\n" q (List.length sols))
    queries;
  Printf.printf "\n%s\n"
    (if !violations = 0 then
       "all definite-groundness claims validated against concrete runs"
     else "UNSOUND: groundness claims violated");

  (* input modes: how is append actually called from weigh/main? *)
  print_endline "\ncall patterns observed by the tabled engine (input modes):";
  List.iter
    (fun r ->
      let name, arity = r.Prax_ground.Analyze.pred in
      Printf.printf "  %s/%d: %s\n" name arity
        (String.concat ", " r.Prax_ground.Analyze.call_patterns))
    rep.Prax_ground.Analyze.results
