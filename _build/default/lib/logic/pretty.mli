(** Term pretty-printing with operator notation, list syntax, and
    canonical variable names ([A], [B], …, [_27]). *)

val var_name : int -> string
val atom_to_string : string -> string

val pp : ?ops:Ops.table -> Format.formatter -> Term.t -> unit
val term_to_string : ?ops:Ops.table -> Term.t -> string
val clause_to_string : ?ops:Ops.table -> Parser.clause -> string
