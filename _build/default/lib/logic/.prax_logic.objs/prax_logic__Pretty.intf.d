lib/logic/pretty.mli: Format Ops Parser Term
