lib/logic/parser.mli: Ops Term
