(* Scenario: the three analyses the paper sketches beyond its case study
   (Sections 6-7), all running on the same substrate.

   1. Demand-driven dataflow analysis of an imperative program (§7):
      one dataflow fact is established goal-directed; the call table
      shows how little of the CFG the demand explored.
   2. Widening over an infinite abstract domain (§6.1): successor
      arithmetic made finite by on-the-fly extrapolation.
   3. Hindley-Milner type analysis by occur-check unification (§6.1).

   Run with: dune exec examples/extensions_tour.exe *)

open Prax

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  banner "Section 7: demand-driven dataflow (reaching definitions)";
  let t = Dataflow.Analyze.make Dataflow.Cfg.example in
  Printf.printf
    "does helper's assignment x@12 reach main's use of x at node 5?  %b\n"
    (Dataflow.Analyze.reaches t ~var:"x" ~def:12 ~node:5);
  Printf.printf "definitions reaching the final assignment (node 7):\n";
  List.iter
    (fun (v, d) -> Printf.printf "  %s defined at node %d\n" v d)
    (Dataflow.Analyze.reaching_at t ~node:7);
  Printf.printf "def-use chains of the whole program:\n";
  List.iter
    (fun ((v, d), u) -> Printf.printf "  %s@%d -> %d\n" v d u)
    (Dataflow.Analyze.def_use_chains t);
  let st = Dataflow.Analyze.stats t in
  Printf.printf "table entries used: %d\n" st.Prax_tabling.Engine.table_entries;

  banner "Section 6.1: widening over the infinite successor domain";
  let rep =
    Infinite.Widen.analyze ~chain:3
      "nat(0). nat(s(X)) :- nat(X).\n\
       even(0). even(s(s(X))) :- even(X).\n\
       plus(0, Y, Y). plus(s(X), Y, s(Z)) :- plus(X, Y, Z)."
  in
  List.iter
    (fun r ->
      let name, arity = r.Prax_infinite.Widen.pred in
      Printf.printf "%s/%d%s\n" name arity
        (if r.Prax_infinite.Widen.widened then "  (widened to omega)" else "");
      List.iter
        (fun a -> Printf.printf "  %s\n" (Logic.Pretty.term_to_string a))
        r.Prax_infinite.Widen.answers)
    rep.Prax_infinite.Widen.results;

  banner "Section 6.1: Hindley-Milner types by occur-check unification";
  let src =
    "append([], ys) = ys;\n\
     append(x:xs, ys) = x : append(xs, ys);\n\
     rev([], acc) = acc;\n\
     rev(x:xs, acc) = rev(xs, x:acc);\n\
     depth(Leaf(v)) = 1;\n\
     depth(Node(l, r)) = 1 + max2(depth(l), depth(r));\n\
     max2(a, b) = if a < b then b else a;\n\
     main() = append(rev([1,2,3], []), [4]);"
  in
  List.iter
    (fun r -> print_endline ("  " ^ Hm.Infer.result_to_string r))
    (Hm.Infer.infer_source src);
  (* type errors are detected, with occur-check doing the cyclic cases *)
  (match Hm.Infer.infer_source "grow(x) = grow(x : x);" with
  | _ -> print_endline "BUG: cyclic type accepted"
  | exception Hm.Infer.Type_error msg ->
      Printf.printf "  rejected as expected: %s\n" msg)
