(** Clause-level predicate dependency graph with Tarjan SCC
    condensation — the invalidation structure behind incremental
    re-analysis (docs/INCREMENTAL.md).

    Built over the {e abstract} (post-transform) clauses an analysis
    actually evaluates, so every analysis shares one graph shape: nodes
    are predicates, an edge [p -> q] means a clause of [p] calls [q].
    Three derived artifacts drive the edit path:

    - {b per-predicate digests} over the canonical rendering of the
      predicate's clauses (variables renumbered in first-occurrence
      order, so digests are stable across parses and processes);
    - {b SCC condensation} in reverse topological order (callees before
      callers) — the evaluation plan for bottom-up modes and the
      persistence unit for tabled fragments;
    - {b closure digests}: each SCC's digest folds in the digests of
      every SCC it (transitively) calls.  A clause edit therefore
      changes the closure digest of exactly the SCCs whose results
      could change — the {e dependent cone} — and cache keys built on
      closure digests invalidate precisely that cone, with no graph
      diffing against the previous version. *)

open Prax_logic

type pred = string * int

type t

val build : ?is_call:(pred -> bool) -> Parser.clause list -> t
(** [build clauses] indexes the program: nodes are every clause-head
    predicate plus every predicate called from a body ([,], [;], [->],
    [\+]/[not] are traversed as control; [=] is not a call).
    [is_call] filters body predicates (default: everything) — pass the
    engine's builtin test so [iff] and arithmetic do not become
    graph nodes. *)

val preds : t -> pred list
(** Every node, sorted. *)

val scc_count : t -> int

val scc_of : t -> pred -> int option
(** The SCC id of a predicate; ids index {!members} and are assigned in
    reverse topological order (an SCC's callees have smaller ids). *)

val members : t -> int -> pred list
(** Predicates of one SCC, sorted. *)

val succs : t -> int -> int list
(** Condensation edges: SCC ids this SCC calls into (sorted, no
    self-edge, no duplicates). *)

val clauses_of : t -> pred -> Parser.clause list
(** A predicate's clauses, in source order. *)

val pred_digest : t -> pred -> string
(** MD5 hex over the canonical renderings of the predicate's clauses,
    in source order.  Stable across runs; changes whenever any clause
    of the predicate is edited, added, removed, or reordered. *)

val closure_digest : t -> int -> string
(** MD5 hex folding the SCC's own member digests with the closure
    digests of every successor SCC: equal closure digests imply the
    whole downward-reachable subprogram is textually identical, which
    is the soundness condition for splicing the SCC's persisted tables
    (docs/INCREMENTAL.md). *)

val dependent_cone : t -> pred list -> int list
(** [dependent_cone g edited] — the SCC ids whose results may change
    when the given predicates' clauses change: the SCCs from which an
    edited predicate is reachable in the condensation (including the
    edited predicates' own SCCs).  Sorted.  This is exactly the set
    whose closure digests differ after the edit; exposed for tests and
    diagnostics. *)
