(** The three demand extents of the Sekar–Ramakrishnan strictness
    analysis: [E] (normal-form demand), [D] (head-normal-form demand),
    [N] (null demand), ordered N < D < E. *)

open Prax_logic

type t = E | D | N

let to_atom = function E -> Term.atom "e" | D -> Term.atom "d" | N -> Term.atom "n"

let of_term = function
  | Term.Atom "e" -> Some E
  | Term.Atom "d" -> Some D
  | Term.Atom "n" -> Some N
  | Term.Var _ -> Some N  (* unconstrained = no demand guaranteed *)
  | _ -> None

let to_char = function E -> 'e' | D -> 'd' | N -> 'n'

let rank = function N -> 0 | D -> 1 | E -> 2

let glb a b = if rank a <= rank b then a else b
let lub a b = if rank a >= rank b then a else b

let all = [ E; D; N ]

(** Strict in the standard sense: some evaluation is guaranteed. *)
let is_strict = function E | D -> true | N -> false
