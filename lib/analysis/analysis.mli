(** The unified analysis pipeline: a first-class analysis interface and
    registry.

    The paper's central observation is that its analyses — Prop
    groundness (Figure 1), strictness (Figure 3), depth-k constraint
    groundness (Section 5) — share one evaluation skeleton: preprocess
    the program, evaluate it on the tabled engine, collect the tables
    into results, and report the same Table 1–4 columns (phase times,
    table space, engine counts, status).  This module is that skeleton
    made first-class:

    - the shared {!phases} record and monotonic {!now} stopwatch every
      driver times itself with (one definition instead of five copies);
    - a {!report} carrying the Table-style columns plus a per-analysis
      payload rendered to text and JSON by the driver, serialized under
      the versioned [prax.report] schema (docs/ANALYSES.md);
    - an analysis {!t} — name, accepted source kind and file
      extensions, a defaulted key=value {!config} with CLI/JSON
      (de)serialization, and [run : config -> guard -> source -> report];
    - a process-wide registry ({!register}/{!find}/{!all}) that the
      front-ends ([xanalyze] single-run and batch, [praxtop], the bench
      harness) dispatch through, so adding an analysis is a single
      registration and no front-end matches on driver modules.

    The five shipped analyses register themselves via
    {!Prax_analyses.Analyses}. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

val report_schema_name : string
(** The schema identifier of serialized reports: ["prax.report"]. *)

val report_schema_version : int
(** Version of the serialized report schema.  Bump (and document in
    docs/ANALYSES.md) on any rename, removal, or change of meaning. *)

(** {1 Monotonic phase clock}

    Phase stopwatches must use the same clock as {!Metrics.timer}
    (monotonic), not [Unix.gettimeofday]: under NTP slew the wall clock
    can run at a different rate — or jump — and [--stats] phase totals
    would disagree with the report's. *)

val now : unit -> float
(** Monotonic seconds (arbitrary epoch); differences are meaningful. *)

(** {1 The shared phase skeleton} *)

type phases = { preproc : float; analysis : float; collection : float }
(** The Table 1–4 phase breakdown, in seconds.  Re-exported by each
    driver for backward compatibility. *)

val total : phases -> float
(** Sum of the three phases — the paper's "total analysis time". *)

val add_preproc : phases -> float -> phases
(** [add_preproc p dt] bills [dt] more seconds to preprocessing (the
    drivers time parsing separately from the rest of the pipeline). *)

val phased :
  timers:Metrics.timer * Metrics.timer * Metrics.timer ->
  pre:(unit -> 'a) ->
  eval:('a -> 'b) ->
  collect:('a -> 'b -> 'c) ->
  unit ->
  phases * 'a * 'b * 'c
(** [phased ~timers:(pre_t, eval_t, collect_t) ~pre ~eval ~collect ()]
    runs the three phases in order, billing each to its [Metrics] timer
    {e and} to the returned per-run {!phases} (same monotonic clock, so
    the two accountings agree). *)

val phase_timers : ?doc:string -> string -> Metrics.timer * Metrics.timer * Metrics.timer
(** [phase_timers prefix] registers (or retrieves) the conventional
    timer trio [<prefix>.preprocess] / [<prefix>.evaluate] /
    [<prefix>.collect]. *)

(** {1 Engine counts}

    A representation-neutral copy of the tabled engine's statistics, so
    generic reports do not depend on the engine module (analyses that
    bypass the tabled engine, e.g. GAIA, carry none). *)

type engine_counts = {
  calls : int;
  table_entries : int;
  answers : int;
  duplicates : int;
  resumptions : int;
  forced : int;
}

(** {1 Configurations}

    An analysis configuration is an ordered association list of
    [key=value] strings: uniform enough for CLI flags ([--set k=v]),
    JSON, and the snapshot store's config discriminator, while each
    driver parses its own values ({!config_int} etc.). *)

type config = (string * string) list

exception Config_error of string
(** Raised by the value accessors and {!run} on an unknown key or a
    malformed value.  Front-ends report it as an input error. *)

val config_get : config -> string -> string
val config_int : config -> string -> int
val config_bool : config -> string -> bool

val config_enum : config -> string -> string list -> string
(** [config_enum cfg key choices] reads [key] and checks membership. *)

val merge_config : defaults:config -> config -> (config, string) result
(** Overlay user assignments on the defaults: the result has exactly
    the defaults' keys in the defaults' order; an assignment to a key
    not in the defaults is an [Error].  Later assignments win. *)

val assignments_of_string : string -> (config, string) result
(** Parse a comma-separated assignment list: ["k=2,mode=compiled"]. *)

val config_to_string : config -> string
(** Canonical rendering [k=v,k2=v2] — newline-free and stable, used as
    the snapshot store's config discriminator. *)

val config_to_json : config -> Metrics.json

(** {1 Generic reports} *)

type report = {
  analysis : string;  (** registered analysis name *)
  config : config;  (** effective configuration of the run *)
  phases : phases;
  status : Guard.status;
      (** [Partial] when a resource budget degraded the run to a sound
          approximation *)
  table_bytes : int;  (** engine table-space estimate; 0 when n/a *)
  clause_count : int;
      (** size of the evaluated (abstract) program — clauses, rules, or
          CFG nodes; 0 when n/a *)
  source_lines : int option;  (** source size when the driver counts it *)
  engine : engine_counts option;
  payload_text : string;  (** the per-analysis human report *)
  payload_json : Metrics.json;  (** the per-analysis [result] payload *)
}

val timings_line : report -> string
(** The shared [--timings] epilogue: phase breakdown, total, table
    space, clause count. *)

val report_to_json : ?input:string -> report -> Metrics.json
(** The versioned [prax.report] document (docs/ANALYSES.md): schema
    header, analysis name and config, status and budget fields, phase
    breakdown, table/clause/engine columns, the rendered [text], and
    the per-analysis [result] payload. *)

(** A parsed [prax.report] document, as consumers see it (the status is
    kept as its wire string). *)
type parsed_report = {
  p_analysis : string;
  p_input : string option;
  p_config : config;
  p_status : string;  (** ["complete"] or ["partial"] *)
  p_phases : phases;
  p_table_bytes : int;
  p_clause_count : int;
  p_source_lines : int option;
  p_engine : engine_counts option;
  p_text : string;
  p_result : Metrics.json;
}

val report_of_json : Metrics.json -> (parsed_report, string) result
(** Validate and destructure a [prax.report] document: wrong schema
    name, unsupported version, or missing fields are [Error]s. *)

(** {1 The analysis interface and registry} *)

(** What an analysis consumes ([extensions] refine this for directory
    scans; the corpus registry tags benchmarks with the same kinds). *)
type source_kind =
  | Logic_program  (** Prolog clauses, [.pl] *)
  | Fp_program  (** the lazy functional language, [.eq] *)
  | Cfg_program  (** textual control-flow graphs, [.cfg] *)

val kind_to_string : source_kind -> string

(** {2 Incremental re-analysis (docs/INCREMENTAL.md)}

    An analysis that supports edit-aware re-analysis additionally
    implements {!incremental}: a [run_incr] that consults a {!cache} of
    per-SCC result fragments keyed by closure digest, splicing cached
    fragments back instead of recomputing them.  The cache is two plain
    string closures so the registry depends on no store — the CLI and
    daemon bind it to a {!Prax_store.Store.t} subdirectory, tests to a
    hashtable. *)

type cache = {
  cache_load : string -> string option;
      (** [cache_load key] — the fragment stored under [key] (an SCC
          closure digest), or [None] for a miss.  A miss is always safe:
          the SCC is recomputed. *)
  cache_save : string -> string -> unit;
      (** [cache_save key payload] — persist a fragment.  Must never
          raise; a failed save degrades to a future recomputation. *)
}

type incremental = {
  table_class : config -> string;
      (** The table-compatibility class of a configuration: two configs
          with the same class produce interchangeable cached fragments
          (e.g. groundness [mode=dynamic] and [mode=compiled] share
          class ["prop"] — same fixpoint, different clause store).  The
          class is part of the cache key, so declaring it wrong leaks
          stale results; declaring classes too finely merely loses
          sharing.  Receives a complete (defaults-merged) config. *)
  run_incr : config:config -> guard:Guard.t -> cache:cache -> string -> report;
      (** Like [run], but consults and refills the fragment cache.  The
          report must be identical to what [run] produces on the same
          source — the incremental-vs-scratch oracle in the test suite
          enforces byte-equality of the payload. *)
}

type t = {
  name : string;  (** registry key, e.g. ["groundness"] *)
  doc : string;  (** one-line description *)
  kind : source_kind;
  extensions : string list;  (** claimed file extensions, e.g. [[".pl"]] *)
  defaults : config;  (** every accepted key, with its default *)
  run : config:config -> guard:Guard.t -> string -> report;
      (** [run ~config ~guard source] analyzes the source text.  The
          [config] is complete (defaults merged); raises
          {!Config_error} on malformed values. *)
  incremental : incremental option;
      (** Edit-aware re-analysis support; [None] for analyses that
          always recompute (front-ends then fall back to [run]). *)
}

val register : t -> unit
(** Add an analysis to the process-wide registry.
    @raise Invalid_argument when the name is already registered. *)

val find : string -> t option

val all : unit -> t list
(** Every registered analysis, in registration order. *)

val names : unit -> string list

val claiming_extension : string -> t option
(** The first registered analysis claiming the extension (e.g.
    [".pl"]) — the default for directory scans. *)

val run : t -> ?config:config -> ?guard:Guard.t -> string -> report
(** [run a ~config src] merges [config] over [a.defaults] and runs.
    @raise Config_error on an unknown key or malformed value. *)

val run_incr :
  t -> ?config:config -> ?guard:Guard.t -> cache:cache -> string -> report
(** Like {!run} through the analysis's incremental entry point; falls
    back to a plain {!run} when the analysis declares no incremental
    support (so front-ends can pass [--incremental] unconditionally).
    @raise Config_error on an unknown key or malformed value. *)

val table_class : t -> ?config:config -> unit -> string option
(** The table-compatibility class of the (defaults-merged) config, or
    [None] when the analysis has no incremental support.
    @raise Config_error on an unknown key or malformed value. *)

val memory_cache : unit -> cache
(** A process-local hashtable-backed {!cache} — for tests and for the
    daemon's store-less configuration. *)
