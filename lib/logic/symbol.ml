(** Global string interning with an inverse table (see symbol.mli).

    The forward direction is a plain [Hashtbl] keyed by the name; the
    inverse is a growable array indexed by id.  Entries are never
    removed: analysis workloads draw functor names from the program
    text, a small finite set, so the table stays tiny and append-only
    keeps every lookup lock-free and allocation-free. *)

module Metrics = Prax_metrics.Metrics

let m_symbols =
  Metrics.counter ~units:"symbols"
    ~doc:"distinct functor/atom names interned in the global symbol table"
    "intern.symbols"

type t = int

type entry = { ename : string; ehash : int }

(* The table is domain-local: a worker domain spawned by the multicore
   batch runner starts from a copy of its parent's table (the parent is
   quiescent while it spawns the fleet, so the copy reads no concurrent
   mutation) and interning after the split stays private to the domain.
   Ids therefore only mean anything within their own domain — fine,
   because no term or symbol ever crosses domains (jobs exchange plain
   result strings). *)
type state = {
  forward : (string, int) Hashtbl.t;
  mutable inverse : entry array;
  mutable next : int;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun (p : state) ->
      {
        forward = Hashtbl.copy p.forward;
        inverse = Array.copy p.inverse;
        next = p.next;
      })
    (fun () ->
      {
        forward = Hashtbl.create 256;
        inverse = Array.make 256 { ename = ""; ehash = 0 };
        next = 0;
      })

let intern (s : string) : t =
  let st = Domain.DLS.get key in
  match Hashtbl.find_opt st.forward s with
  | Some id -> id
  | None ->
      let id = st.next in
      st.next <- id + 1;
      Metrics.incr m_symbols;
      let cap = Array.length st.inverse in
      if id >= cap then begin
        let bigger = Array.make (2 * cap) { ename = ""; ehash = 0 } in
        Array.blit st.inverse 0 bigger 0 cap;
        st.inverse <- bigger
      end;
      st.inverse.(id) <- { ename = s; ehash = Hashtbl.hash s };
      Hashtbl.add st.forward s id;
      id

let name (id : t) : string =
  let st = Domain.DLS.get key in
  if id < 0 || id >= st.next then invalid_arg "Symbol.name: unknown id"
  else st.inverse.(id).ename

let hash (id : t) : int =
  let st = Domain.DLS.get key in
  if id < 0 || id >= st.next then invalid_arg "Symbol.hash: unknown id"
  else st.inverse.(id).ehash

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare (a : int) b
let count () = (Domain.DLS.get key).next
let mem s = Hashtbl.mem (Domain.DLS.get key).forward s
