(* Cross-engine agreement: the four evaluation routes — tabled top-down
   (the XSB substitute), the GAIA-style abstract interpreter in both
   back-ends, and bottom-up semi-naive Datalog — implement the same Prop
   analysis and must produce identical success sets, per the paper's
   Table 2 remark ("the results obtained on the two systems are
   identical").  Also checks supplementary tabling preserves the minimal
   model on the tabled route. *)

open Prax_logic
open Prax_prop

let tabled_success src : (string * int, Bf.t) Hashtbl.t =
  let rep = Prax_ground.Analyze.analyze src in
  let out = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace out r.Prax_ground.Analyze.pred
        r.Prax_ground.Analyze.success)
    rep.Prax_ground.Analyze.results;
  out

let gaia_bitset_success src =
  let clauses = Parser.parse_clauses src in
  let abstract, _, _ = Prax_ground.Transform.program clauses in
  let abstract = Prax_tabling.Supplement.fold_program ~threshold:2 abstract in
  let out = Hashtbl.create 16 in
  List.iter
    (fun (r : Prax_gaia.Analyze.Bitset.result) ->
      let name, arity = r.Prax_gaia.Analyze.Bitset.pred in
      (* skip the supplementary helper predicates *)
      if String.length name > 3 && String.equal (String.sub name 0 3) "gp_"
      then
        Hashtbl.replace out
          (String.sub name 3 (String.length name - 3), arity)
          r.Prax_gaia.Analyze.Bitset.success)
    (Prax_gaia.Analyze.Bitset.analyze abstract);
  out

let gaia_bdd_success src =
  let clauses = Parser.parse_clauses src in
  let abstract, _, _ = Prax_ground.Transform.program clauses in
  let out = Hashtbl.create 16 in
  List.iter
    (fun (r : Prax_gaia.Analyze.Bdd_backend.result) ->
      let name, arity = r.Prax_gaia.Analyze.Bdd_backend.pred in
      if String.length name > 3 && String.equal (String.sub name 0 3) "gp_"
      then
        let rows =
          Prax_bdd.Bdd.sat_rows ~nvars:arity
            r.Prax_gaia.Analyze.Bdd_backend.success.Prax_gaia.Backend_bdd.f
        in
        Hashtbl.replace out
          (String.sub name 3 (String.length name - 3), arity)
          (Bf.of_rows arity rows))
    (Prax_gaia.Analyze.Bdd_backend.analyze abstract);
  out

let bottomup_success src =
  let clauses = Parser.parse_clauses src in
  let abstract, preds, _ = Prax_ground.Transform.program clauses in
  let rules =
    Prax_bottomup.From_prop.convert ~domain:Prax_bottomup.From_prop.bool_domain
      abstract
  in
  let intensional, db = Prax_bottomup.Datalog.load rules in
  ignore (Prax_bottomup.Datalog.seminaive intensional db);
  let out = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      let tuples =
        Prax_bottomup.Datalog.tuples_of db
          (Prax_ground.Transform.prefix ^ name, arity)
      in
      let f = Bf.bottom arity in
      List.iter
        (fun tup ->
          let row = ref 0 in
          Array.iteri
            (fun i t -> if Term.equal t Term.true_ then row := !row lor (1 lsl i))
            tup;
          Bf.add f !row)
        tuples;
      Hashtbl.replace out (name, arity) f)
    preds;
  out

let check_tables_equal msg (a : (string * int, Bf.t) Hashtbl.t) b =
  Hashtbl.iter
    (fun pred fa ->
      match Hashtbl.find_opt b pred with
      | Some fb ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s/%d" msg (fst pred) (snd pred))
            true (Bf.equal fa fb)
      | None ->
          Alcotest.failf "%s: missing predicate %s/%d" msg (fst pred) (snd pred))
    a

let programs =
  [
    ("append", "ap([], Ys, Ys). ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).");
    ( "rev-acc",
      "rev([],A,A). rev([H|T],A,R) :- rev(T,[H|A],R). top(X) :- rev([a,b],[],X)."
    );
    ( "mixed",
      "p(a, Y). p(X, b) :- q(X). q(c). q(f(Z)) :- p(Z, Z).\n\
       r(X, Y) :- p(X, Y), q(X)." );
    ( "disjunctive",
      "s(X) :- (X = a ; t(X)). t(f(Y)) :- s(Y)." );
    ( "arith",
      "len([],0). len([_|T],N) :- len(T,M), N is M + 1.\n\
       pair(L, N, N2) :- len(L, N), N2 is N * 2." );
  ]

let test_routes_agree (name, src) () =
  let t = tabled_success src in
  check_tables_equal (name ^ " tabled=gaia-bitset") t (gaia_bitset_success src);
  check_tables_equal (name ^ " tabled=gaia-bdd") t (gaia_bdd_success src);
  check_tables_equal (name ^ " tabled=bottomup") t (bottomup_success src)

(* supplementary tabling preserves the tabled route's results *)
let test_supplement_preserves_model () =
  List.iter
    (fun (name, src) ->
      let clauses = Parser.parse_clauses src in
      let rep1 = Prax_ground.Analyze.analyze_clauses clauses in
      let abstract, preds, maxiff = Prax_ground.Transform.program clauses in
      let folded = Prax_tabling.Supplement.fold_program ~threshold:1 abstract in
      let db = Database.create () in
      Database.load_clauses db folded;
      let e = Prax_tabling.Engine.create db in
      Iff.register e ~max_arity:maxiff;
      List.iter
        (fun (pname, arity) ->
          let goal =
            Term.mk
              (Prax_ground.Transform.prefix ^ pname)
              (Array.init arity (fun _ -> Term.fresh_var ()))
          in
          let expected =
            (List.find
               (fun r -> r.Prax_ground.Analyze.pred = (pname, arity))
               rep1.Prax_ground.Analyze.results)
              .Prax_ground.Analyze.success
          in
          let answers = ref [] in
          Prax_tabling.Engine.run e goal (fun s ->
              answers := Canon.canonical s goal :: !answers);
          (* sharing-respecting row expansion, as the analyzer does *)
          let seen = Prax_ground.Analyze.bf_of_answers arity !answers in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s/%d folded = unfolded" name pname arity)
            true (Bf.equal seen expected))
        preds)
    programs

(* the full corpus through tabled vs gaia-bdd (the Table 2 pairing) *)
let test_corpus_tabled_vs_gaia () =
  List.iter
    (fun (b : Prax_benchdata.Registry.logic_bench) ->
      let src = b.Prax_benchdata.Registry.source in
      let t = tabled_success src in
      check_tables_equal
        (b.Prax_benchdata.Registry.name ^ " tabled=gaia-bdd")
        t (gaia_bdd_success src))
    Prax_benchdata.Registry.logic_benchmarks

let () =
  Alcotest.run "prax_engines_agree"
    [
      ( "small programs",
        List.map
          (fun (name, src) ->
            Alcotest.test_case name `Quick (test_routes_agree (name, src)))
          programs );
      ( "transformations",
        [
          Alcotest.test_case "supplementary fold preserves model" `Quick
            test_supplement_preserves_model;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "tabled vs gaia-bdd on all 12" `Slow
            test_corpus_tabled_vs_gaia;
        ] );
    ]
