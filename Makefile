# Tier-1 gate: build + tests, under a global timeout so a regression
# that makes evaluation diverge fails the gate instead of wedging it
# (docs/ROBUSTNESS.md).  CI (.github/workflows/ci.yml) runs `make check`.

TIMEOUT ?= 600

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check:
	timeout $(TIMEOUT) dune build
	timeout $(TIMEOUT) dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
