lib/dataflow/analyze.ml: Cfg Database Encode Engine Hashtbl List Parser Prax_logic Prax_tabling Subst Term
