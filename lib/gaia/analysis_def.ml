(** Registry entry for the GAIA-style comparator: adapts {!Analyze} to
    the generic {!Prax_analysis.Analysis} interface (see
    docs/ANALYSES.md).  GAIA runs to fixpoint in one sweep with no
    tabled engine behind it, so the guard is unused, the status is
    always [Complete], and there are no engine counts or table-space
    estimate.  Registered by [Prax_analyses.Analyses]. *)

module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

let result_to_string (r : Analyze.pred_result) : string =
  let name, arity = r.Analyze.pred in
  Printf.sprintf "%s/%d: definite=%s" name arity
    (if r.Analyze.never_succeeds then "-"
     else
       String.concat ""
         (List.init arity (fun i ->
              if r.Analyze.definite.(i) then "g" else "?")))

let result_json (r : Analyze.pred_result) : Metrics.json =
  let name, arity = r.Analyze.pred in
  Metrics.Obj
    [
      ("name", Metrics.Str name);
      ("arity", Metrics.Int arity);
      ( "definite",
        Metrics.Str
          (if r.Analyze.never_succeeds then "-"
           else
             String.concat ""
               (List.init arity (fun i ->
                    if r.Analyze.definite.(i) then "g" else "?"))) );
      ("never_succeeds", Metrics.Bool r.Analyze.never_succeeds);
    ]

let run ~config ~guard:_ src : Analysis.report =
  let backend = Analysis.config_enum config "backend" [ "bdd"; "bitset" ] in
  let rep =
    match backend with
    | "bitset" -> Analyze.analyze_bitset src
    | _ -> Analyze.analyze_bdd src
  in
  {
    Analysis.analysis = "gaia";
    config;
    phases = rep.Analyze.phases;
    status = Guard.Complete;
    table_bytes = 0;
    clause_count = rep.Analyze.clause_count;
    source_lines = None;
    engine = None;
    payload_text =
      String.concat "\n" (List.map result_to_string rep.Analyze.results);
    payload_json = Metrics.Arr (List.map result_json rep.Analyze.results);
  }

let def : Analysis.t =
  {
    Analysis.name = "gaia";
    doc = "GAIA-style bottom-up groundness comparator (Table 2 baseline)";
    kind = Analysis.Logic_program;
    extensions = [ ".pl" ];
    defaults = [ ("backend", "bdd") ];
    run;
    incremental = None;
  }
