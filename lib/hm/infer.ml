(** Hindley–Milner type analysis of the functional language, implemented
    the way Section 6.1 frames it: the program's type equations are
    equality constraints solved by unification *with occur-check* — and
    we solve them with the logic substrate's own machinery.  Types are
    {!Prax_logic.Term} values, constraint solving is
    {!Prax_logic.Unify.unify_oc} over a persistent substitution,
    generalization is canonical renaming ({!Prax_logic.Canon}) and
    instantiation is fresh renaming — the paper's observation that "the
    only requirement is that occur-check be performed by the unification
    operation" made literal.

    Types: [int], [bool], [list(τ)], [tupK(τ1,…,τK)], and inferred
    monomorphic user datatypes (constructors used on the same value are
    unified into one datatype).  Top-level functions are generalized per
    strongly-connected component of the call graph, giving
    let-polymorphism where it is sound (e.g. [append] usable at several
    element types). *)

open Prax_logic
open Prax_fp

exception Type_error of string

let terr fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let tint = Term.atom "int"
let tbool = Term.atom "bool"
let tlist t = Term.mk "list" [| t |]
let tfun args res = Term.mkl "fn" (args @ [ res ])

(** A type scheme quantifies only the variables that are not free in the
    global constructor environment: datatype result/field types stay
    free so that later uses refine them globally (they are
    monomorphic). *)
type scheme = { body : Term.t; quantified : int list }

type env = {
  mutable subst : Subst.t;
  fn_schemes : (string, scheme) Hashtbl.t;
  fn_monotypes : (string, Term.t) Hashtbl.t;
      (** monotypes of the SCC currently being inferred *)
  (* user constructor -> (result type, field types); shared, monomorphic *)
  cons : (string, Term.t * Term.t list) Hashtbl.t;
  mutable datatype_count : int;
}

let create_env () =
  {
    subst = Subst.empty;
    fn_schemes = Hashtbl.create 16;
    fn_monotypes = Hashtbl.create 16;
    cons = Hashtbl.create 16;
    datatype_count = 0;
  }

let unify env t1 t2 ~ctx =
  match Unify.unify_oc env.subst t1 t2 with
  | Some s -> env.subst <- s
  | None ->
      terr "type clash in %s: %s vs %s" ctx
        (Pretty.term_to_string (Subst.resolve env.subst t1))
        (Pretty.term_to_string (Subst.resolve env.subst t2))

(* constructor signature: builtin parametric families are instantiated
   fresh per use; user constructors share one monomorphic signature *)
let constructor_sig env c arity : Term.t * Term.t list =
  match c with
  | "[]" when arity = 0 ->
      let a = Term.fresh_var () in
      (tlist a, [])
  | ":" when arity = 2 ->
      let a = Term.fresh_var () in
      (tlist a, [ a; tlist a ])
  | ("True" | "False") when arity = 0 -> (tbool, [])
  | _ when String.length c > 3 && String.equal (String.sub c 0 3) "tup" ->
      let fields = List.init arity (fun _ -> Term.fresh_var ()) in
      (Term.mkl c fields, fields)
  | _ -> (
      match Hashtbl.find_opt env.cons c with
      | Some (res, fields) ->
          if List.length fields <> arity then
            terr "constructor %s used with arity %d and %d" c
              (List.length fields) arity;
          (res, fields)
      | None ->
          (* a fresh datatype bucket: unification merges buckets of
             constructors that meet on the same value *)
          env.datatype_count <- env.datatype_count + 1;
          let res = Term.fresh_var () in
          let fields = List.init arity (fun _ -> Term.fresh_var ()) in
          Hashtbl.add env.cons c (res, fields);
          (res, fields))

(* variables free in the constructor environment, under the current
   substitution *)
let env_free_vars env : int list =
  Hashtbl.fold
    (fun _ (res, fields) acc ->
      List.concat_map
        (fun t -> Term.vars (Subst.resolve env.subst t))
        (res :: fields)
      @ acc)
    env.cons []
  |> List.sort_uniq Int.compare

let instantiate_scheme env (sc : scheme) : Term.t list * Term.t =
  (* resolve first so later refinements of free (datatype) variables are
     seen, then rename only the quantified variables *)
  let body = Subst.resolve env.subst sc.body in
  let tbl = Hashtbl.create 8 in
  let inst =
    Term.map_vars
      (fun v ->
        if List.mem v sc.quantified then (
          match Hashtbl.find_opt tbl v with
          | Some fresh -> fresh
          | None ->
              let fresh = Term.fresh_var () in
              Hashtbl.add tbl v fresh;
              fresh)
        else Term.var v)
      body
  in
  match inst with
  | Term.Struct ("fn", parts, _) ->
      let n = Array.length parts in
      (Array.to_list (Array.sub parts 0 (n - 1)), parts.(n - 1))
  | t -> ([], t)

let fn_type env f arity : Term.t list * Term.t =
  match Hashtbl.find_opt env.fn_monotypes f with
  | Some t -> (
      (* within the current SCC: monomorphic *)
      match Subst.walk env.subst t with
      | Term.Struct ("fn", parts, _) ->
          let n = Array.length parts in
          (Array.to_list (Array.sub parts 0 (n - 1)), parts.(n - 1))
      | _ -> assert false)
  | None -> (
      match Hashtbl.find_opt env.fn_schemes f with
      | Some scheme -> instantiate_scheme env scheme
      | None -> terr "call to unknown function %s/%d" f arity)

(* --- constraint generation ------------------------------------------------ *)

let rec infer_pat env (venv : (string * Term.t) list ref) (p : Ast.pat) :
    Term.t =
  match p with
  | Ast.PVar x ->
      let t = Term.fresh_var () in
      venv := (x, t) :: !venv;
      t
  | Ast.PInt _ -> tint
  | Ast.PCon (c, ps) ->
      let res, fields = constructor_sig env c (List.length ps) in
      List.iter2
        (fun p f ->
          let tp = infer_pat env venv p in
          unify env tp f ~ctx:(Printf.sprintf "pattern %s" c))
        ps fields;
      res

let rec infer_expr env (venv : (string * Term.t) list) (e : Ast.expr) : Term.t
    =
  match e with
  | Ast.Int _ -> tint
  | Ast.Var x -> (
      match List.assoc_opt x venv with
      | Some t -> t
      | None -> terr "unbound variable %s" x)
  | Ast.Con (c, es) ->
      let res, fields = constructor_sig env c (List.length es) in
      List.iter2
        (fun e f ->
          let te = infer_expr env venv e in
          unify env te f ~ctx:(Printf.sprintf "constructor %s" c))
        es fields;
      res
  | Ast.App (f, es) ->
      let args, res = fn_type env f (List.length es) in
      List.iter2
        (fun e a ->
          let te = infer_expr env venv e in
          unify env te a ~ctx:(Printf.sprintf "call of %s" f))
        es args;
      res
  | Ast.Prim (op, es) ->
      let tes = List.map (infer_expr env venv) es in
      (match (op, tes) with
      | ("+" | "-" | "*" | "div" | "mod"), [ a; b ] ->
          unify env a tint ~ctx:op;
          unify env b tint ~ctx:op;
          tint
      | "neg", [ a ] ->
          unify env a tint ~ctx:op;
          tint
      | ("==" | "/=" | "<" | "<=" | ">" | ">="), [ a; b ] ->
          unify env a tint ~ctx:op;
          unify env b tint ~ctx:op;
          tbool
      | _ -> terr "unknown primitive %s/%d" op (List.length es))
  | Ast.If (c, t, el) ->
      let tc = infer_expr env venv c in
      unify env tc tbool ~ctx:"if condition";
      let tt = infer_expr env venv t in
      let te = infer_expr env venv el in
      unify env tt te ~ctx:"if branches";
      tt
  | Ast.Let (x, e1, e2) ->
      let t1 = infer_expr env venv e1 in
      infer_expr env ((x, t1) :: venv) e2

let infer_equation env (eq : Ast.equation) =
  let args, res = fn_type env eq.Ast.fname (List.length eq.Ast.pats) in
  let venv = ref [] in
  List.iter2
    (fun p a ->
      let tp = infer_pat env venv p in
      unify env tp a ~ctx:(Printf.sprintf "%s argument pattern" eq.Ast.fname))
    eq.Ast.pats args;
  let tr = infer_expr env !venv eq.Ast.rhs in
  unify env tr res ~ctx:(Printf.sprintf "%s right-hand side" eq.Ast.fname)

(* --- call-graph SCCs -------------------------------------------------------- *)

let rec calls_of acc = function
  | Ast.Var _ | Ast.Int _ -> acc
  | Ast.Con (_, es) | Ast.Prim (_, es) -> List.fold_left calls_of acc es
  | Ast.App (f, es) -> List.fold_left calls_of (f :: acc) es
  | Ast.If (a, b, c) -> calls_of (calls_of (calls_of acc a) b) c
  | Ast.Let (_, a, b) -> calls_of (calls_of acc a) b

(* Tarjan over function names *)
let sccs (p : Ast.program) : string list list =
  let funs = List.map fst (Ast.functions p) in
  let adjacency f =
    Ast.equations_of p f
    |> List.concat_map (fun eq -> calls_of [] eq.Ast.rhs)
    |> List.filter (fun g -> List.mem g funs)
    |> List.sort_uniq compare
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let onstack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace onstack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem onstack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (adjacency v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove onstack w;
            if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun f -> if not (Hashtbl.mem index f) then strongconnect f) funs;
  (* Tarjan emits an SCC only after every SCC it reaches (its callees):
     chronological emission order is callees-first, and [out] accumulates
     at the head, so reverse it *)
  List.rev !out

(* --- entry point -------------------------------------------------------------- *)

type result = { fname : string; scheme : Term.t }

(** Infer types for a checked program.  Raises {!Type_error} on clashes
    (including occur-check failures surfaced as clashes). *)
let infer (p : Ast.program) : result list =
  let env = create_env () in
  let out = ref [] in
  List.iter
    (fun scc ->
      (* fresh monotypes for the SCC's functions *)
      List.iter
        (fun f ->
          let arity =
            match Ast.arity_of p f with Some a -> a | None -> 0
          in
          let t =
            tfun (List.init arity (fun _ -> Term.fresh_var ())) (Term.fresh_var ())
          in
          Hashtbl.replace env.fn_monotypes f t)
        scc;
      (* constrain all equations of the SCC *)
      List.iter
        (fun f -> List.iter (infer_equation env) (Ast.equations_of p f))
        scc;
      (* name the inferred datatypes: a constructor result still unbound
         is a monomorphic datatype and must NOT be generalized (otherwise
         a scheme instantiation would let it unify with anything) *)
      let cons_sorted =
        Hashtbl.fold (fun c sg acc -> (c, sg) :: acc) env.cons []
        |> List.sort compare
      in
      List.iter
        (fun (c, (res, _)) ->
          match Subst.walk env.subst res with
          | Term.Var v ->
              env.subst <- Subst.bind env.subst v (Term.atom ("dt$" ^ c))
          | _ -> ())
        cons_sorted;
      (* generalize: quantify the variables not free in the constructor
         environment *)
      let efv = env_free_vars env in
      List.iter
        (fun f ->
          let t = Hashtbl.find env.fn_monotypes f in
          let body = Subst.resolve env.subst t in
          let quantified =
            List.filter (fun v -> not (List.mem v efv)) (Term.vars body)
          in
          Hashtbl.remove env.fn_monotypes f;
          Hashtbl.replace env.fn_schemes f { body; quantified };
          out := f :: !out)
        scc)
    (sccs p);
  (* report with everything the later SCCs learned about the datatypes *)
  List.rev !out
  |> List.map (fun f ->
         let sc = Hashtbl.find env.fn_schemes f in
         { fname = f; scheme = Canon.canonical env.subst sc.body })

(* --- rendering ------------------------------------------------------------------ *)

let tyvar_name i =
  if i < 26 then Printf.sprintf "'%c" (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "'t%d" i

let rec type_to_string = function
  | Term.Var i -> tyvar_name i
  | Term.Atom a -> a
  | Term.Struct ("list", [| t |], _) -> Printf.sprintf "list(%s)" (type_to_string t)
  | Term.Struct ("fn", parts, _) ->
      let n = Array.length parts in
      let args = Array.to_list (Array.sub parts 0 (n - 1)) in
      Printf.sprintf "(%s) -> %s"
        (String.concat ", " (List.map type_to_string args))
        (type_to_string parts.(n - 1))
  | Term.Struct (f, args, _) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (Array.to_list (Array.map type_to_string args)))
  | Term.Int i -> string_of_int i

let result_to_string r =
  Printf.sprintf "%s : %s" r.fname (type_to_string r.scheme)

(** Parse, check, and infer from source. *)
let infer_source (src : string) : result list =
  infer (Check.parse_and_check src)
