(** Supplementary tabling (Section 4.2): fold long clause bodies into
    chains of intermediate tabled predicates so partial joins are
    computed once per variant instead of once per derivation.
    Semantics-preserving: the minimal model restricted to the original
    predicates is unchanged. *)

open Prax_logic

val fold_clause :
  threshold:int -> prefix:string -> int -> Parser.clause -> Parser.clause list
(** [fold_clause ~threshold ~prefix idx c] folds [c] if its body exceeds
    [threshold] literals; [idx] disambiguates the generated predicate
    names. *)

val fold_program :
  ?threshold:int -> ?prefix:string -> Parser.clause list -> Parser.clause list
(** Fold every long clause of a program (default threshold 2). *)
