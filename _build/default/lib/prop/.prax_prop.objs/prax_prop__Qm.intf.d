lib/prop/qm.mli: Bf
