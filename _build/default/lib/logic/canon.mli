(** Canonical forms for variant checking: tabled evaluation keys its
    call and answer tables on the variant class of a term (identical up
    to variable renaming), implemented by renumbering variables in
    first-occurrence order. *)

val canonical : Subst.t -> Term.t -> Term.t
(** Resolve under the substitution, then renumber free variables
    0,1,2,… in first-occurrence order. *)

val of_term : Term.t -> Term.t
(** Renumber an already-resolved term. *)

val variant : Term.t -> Term.t -> bool
(** Are the terms identical up to variable renaming? *)

val instantiate : Term.t -> Term.t
(** Rename a canonical term's variables to globally fresh ones (use
    before resolving a canonical table entry against live terms). *)

(** Hash tables keyed by canonical terms. *)
module Key : sig
  type t = Term.t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Tbl : Hashtbl.S with type key = Term.t
