test/test_prop.ml: Alcotest Array Bdd Bf Fun Iff List Parser Prax_bdd Prax_logic Prax_prop Pretty QCheck2 QCheck_alcotest Qm Subst Term Unify
