(** First-order terms, the common currency of every engine and analysis
    in this repository. *)

type t =
  | Var of int
  | Int of int
  | Atom of string
  | Struct of string * t array

(** {2 Variable supply} *)

val fresh_var : unit -> t
(** A variable with a globally fresh id. *)

val fresh_id : unit -> int

val reset_gensym : unit -> unit
(** Reset the global supply.  Only for tests needing reproducible
    numbering. *)

(** {2 Construction} *)

val atom : string -> t

val mk : string -> t array -> t
(** [mk name args] is [Atom name] when [args] is empty. *)

val mkl : string -> t list -> t

val true_ : t
val fail_ : t
val nil : t
val cons : t -> t -> t
val of_list : t list -> t

(** {2 Inspection} *)

val functor_of : t -> (string * int) option
(** Name and arity of a callable term; [None] for variables and
    integers. *)

val args_of : t -> t array
(** Arguments of a [Struct]; [[||]] otherwise. *)

val is_callable : t -> bool
val is_ground : t -> bool

val vars : t -> int list
(** Variable ids in first-occurrence order, without duplicates. *)

val fold_vars : ('a -> int -> 'a) -> 'a -> t -> 'a
val occurs : int -> t -> bool

val size : t -> int
(** Node count; used for table-space accounting. *)

val depth : t -> int

(** {2 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {2 Transformation} *)

val map_vars : (int -> t) -> t -> t
(** Apply a function to every variable, rebuilding the term. *)

val rename : t -> t
(** Rename all variables to fresh ones, consistently. *)

(** {2 Conjunctions and lists} *)

val conjuncts : t -> t list
(** Flatten a [','/2] tree into its conjuncts; [true] flattens to []. *)

val conj : t list -> t

val list_elements : t -> t list option
(** Elements of a proper list term, or [None]. *)
