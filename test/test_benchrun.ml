(* Tests for the bench-run store and A/B comparator
   (docs/BENCHMARKING.md): order statistics, the noise-gate threshold
   logic (relative tolerance AND absolute floor AND pooled IQR),
   run-directory round-trips, degradation on corrupt or missing
   manifests, and the `bench gate` exit codes through the built
   harness. *)

module Benchrun = Prax_benchrun.Benchrun

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-benchrun-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

(* --- synthetic rows and runs --------------------------------------------- *)

let mkstats = Benchrun.stats_of

let row ?(analysis = "groundness") ?(name = "qsort") ?(status = "complete")
    ?(counters = [ ("engine.answers_inserted", 24.) ]) ~total ~bytes () =
  {
    Benchrun.r_analysis = analysis;
    r_name = name;
    r_config = [ ("mode", "dynamic") ];
    r_status = status;
    r_source_lines = Some 45;
    r_clause_count = 40;
    r_phases =
      [
        ("preprocess", mkstats (List.map (fun t -> t *. 0.1) total));
        ("evaluate", mkstats (List.map (fun t -> t *. 0.8) total));
        ("collect", mkstats (List.map (fun t -> t *. 0.1) total));
      ];
    r_total = mkstats total;
    r_table_bytes = mkstats bytes;
    r_counters = counters;
  }

let mkrun ?(id = "r") rows =
  {
    Benchrun.dir = "";
    id;
    manifest = None;
    rows;
  }

let write ~dir ~id rows =
  let manifest = Benchrun.make_manifest ~run_id:id ~repeats:3 ~argv:[ "test" ] in
  Benchrun.write_run
    ~dir:(Filename.concat dir id)
    ~manifest ~rows
    ~logs:[ ("groundness-qsort.log", "repeat 1: total=0.001\n") ]

let delta_of ab ~metric =
  match
    List.find_opt
      (fun d -> d.Benchrun.d_metric = metric)
      ab.Benchrun.deltas
  with
  | Some d -> d
  | None -> Alcotest.failf "no delta for metric %s" metric

let verdict = Alcotest.testable
    (fun ppf v ->
      Format.pp_print_string ppf
        (match v with
        | Benchrun.Regression -> "regression"
        | Benchrun.Improvement -> "improvement"
        | Benchrun.Unchanged -> "unchanged"))
    ( = )

(* --- order statistics ----------------------------------------------------- *)

let test_stats () =
  let s = mkstats [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "odd median" 2. s.Benchrun.median;
  Alcotest.(check (float 1e-9)) "odd q1" 1.5 s.Benchrun.q1;
  Alcotest.(check (float 1e-9)) "odd q3" 2.5 s.Benchrun.q3;
  Alcotest.(check (float 1e-9)) "odd iqr" 1. (Benchrun.iqr s);
  let s = mkstats [ 4.; 1.; 3.; 2. ] in
  Alcotest.(check (float 1e-9)) "even median" 2.5 s.Benchrun.median;
  let s = mkstats [ 7. ] in
  Alcotest.(check (float 1e-9)) "singleton median" 7. s.Benchrun.median;
  Alcotest.(check (float 1e-9)) "singleton iqr" 0. (Benchrun.iqr s);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Benchrun.stats_of: empty sample list") (fun () ->
      ignore (mkstats []))

(* --- threshold logic ------------------------------------------------------ *)

(* a 50% time regression with tight samples clears tolerance, floor,
   and IQR: flagged and gated *)
let test_regression_flagged () =
  let base = mkrun [ row ~total:[ 1.0; 1.01; 0.99 ] ~bytes:[ 4664. ] () ] in
  let cand = mkrun [ row ~total:[ 1.5; 1.51; 1.49 ] ~bytes:[ 4664. ] () ] in
  let ab = Benchrun.compare_runs base cand in
  let d = delta_of ab ~metric:"total_seconds" in
  Alcotest.check verdict "total regressed" Benchrun.Regression
    d.Benchrun.d_verdict;
  Alcotest.(check bool) "total gated" true d.Benchrun.d_gated;
  Alcotest.(check bool) "gate trips" true (ab.Benchrun.regressions > 0)

(* the same median shift inside the pooled IQR is noise: not flagged *)
let test_noise_not_flagged () =
  let base = mkrun [ row ~total:[ 0.7; 1.0; 1.3 ] ~bytes:[ 4664. ] () ] in
  let cand = mkrun [ row ~total:[ 0.9; 1.4; 1.9 ] ~bytes:[ 4664. ] () ] in
  let ab = Benchrun.compare_runs base cand in
  let d = delta_of ab ~metric:"total_seconds" in
  (* diff 0.4 clears rel 0.30 and abs 0.005 but not the 0.5 pooled IQR *)
  Alcotest.check verdict "inside IQR is unchanged" Benchrun.Unchanged
    d.Benchrun.d_verdict;
  Alcotest.(check int) "no regressions" 0 ab.Benchrun.regressions

(* micro-benchmark jitter below the absolute floor never flags, however
   large the relative change *)
let test_abs_floor () =
  let base = mkrun [ row ~total:[ 0.001 ] ~bytes:[ 4664. ] () ] in
  let cand = mkrun [ row ~total:[ 0.004 ] ~bytes:[ 4664. ] () ] in
  let ab = Benchrun.compare_runs base cand in
  Alcotest.check verdict "sub-floor delta unchanged" Benchrun.Unchanged
    (delta_of ab ~metric:"total_seconds").Benchrun.d_verdict;
  Alcotest.(check int) "no regressions" 0 ab.Benchrun.regressions

let test_bytes_thresholds () =
  let base = mkrun [ row ~total:[ 1. ] ~bytes:[ 4664. ] () ] in
  let grown = mkrun [ row ~total:[ 1. ] ~bytes:[ 5600. ] () ] in
  let ab = Benchrun.compare_runs base grown in
  Alcotest.check verdict "20% table growth regresses" Benchrun.Regression
    (delta_of ab ~metric:"table_bytes").Benchrun.d_verdict;
  Alcotest.(check bool) "gate trips" true (ab.Benchrun.regressions > 0);
  (* +100 bytes on a tiny table is under the absolute floor *)
  let small = mkrun [ row ~total:[ 1. ] ~bytes:[ 100. ] () ] in
  let small' = mkrun [ row ~total:[ 1. ] ~bytes:[ 200. ] () ] in
  let ab = Benchrun.compare_runs small small' in
  Alcotest.(check int) "sub-floor byte delta passes" 0 ab.Benchrun.regressions

let test_improvement () =
  let base = mkrun [ row ~total:[ 1.0; 1.0; 1.0 ] ~bytes:[ 4664. ] () ] in
  let cand = mkrun [ row ~total:[ 0.5; 0.5; 0.5 ] ~bytes:[ 4664. ] () ] in
  let ab = Benchrun.compare_runs base cand in
  Alcotest.check verdict "halved total improves" Benchrun.Improvement
    (delta_of ab ~metric:"total_seconds").Benchrun.d_verdict;
  Alcotest.(check bool) "improvements counted" true
    (ab.Benchrun.improvements > 0);
  Alcotest.(check int) "no regressions" 0 ab.Benchrun.regressions

(* a status downgrade gates regardless of times *)
let test_status_downgrade () =
  let base = mkrun [ row ~total:[ 1. ] ~bytes:[ 4664. ] () ] in
  let cand =
    mkrun [ row ~status:"partial:deadline" ~total:[ 1. ] ~bytes:[ 4664. ] () ]
  in
  let ab = Benchrun.compare_runs base cand in
  let d = delta_of ab ~metric:"status" in
  Alcotest.check verdict "complete->partial regresses" Benchrun.Regression
    d.Benchrun.d_verdict;
  Alcotest.(check bool) "gated" true d.Benchrun.d_gated;
  Alcotest.(check bool) "gate trips" true (ab.Benchrun.regressions > 0);
  (* and the reverse is an improvement, not a regression *)
  let ab = Benchrun.compare_runs cand base in
  Alcotest.(check int) "partial->complete passes" 0 ab.Benchrun.regressions

(* a row that disappears from the candidate is lost coverage: gated *)
let test_missing_row () =
  let extra = row ~analysis:"strictness" ~name:"mergesort" ~total:[ 1. ]
      ~bytes:[ 1000. ] () in
  let base = mkrun [ row ~total:[ 1. ] ~bytes:[ 4664. ] (); extra ] in
  let cand = mkrun [ row ~total:[ 1. ] ~bytes:[ 4664. ] () ] in
  let ab = Benchrun.compare_runs base cand in
  Alcotest.(check (list (pair string string))) "missing row listed"
    [ ("strictness", "mergesort") ] ab.Benchrun.missing;
  Alcotest.(check int) "missing row gates" 1 ab.Benchrun.regressions;
  (* new rows in the candidate are informational *)
  let ab = Benchrun.compare_runs cand base in
  Alcotest.(check (list (pair string string))) "added row listed"
    [ ("strictness", "mergesort") ] ab.Benchrun.added;
  Alcotest.(check int) "added row does not gate" 0 ab.Benchrun.regressions

(* counters explain deltas but never gate *)
let test_counters_informational () =
  let base =
    mkrun [ row ~counters:[ ("unify.attempts", 1000.) ] ~total:[ 1. ]
        ~bytes:[ 4664. ] () ]
  in
  let cand =
    mkrun [ row ~counters:[ ("unify.attempts", 2000.) ] ~total:[ 1. ]
        ~bytes:[ 4664. ] () ]
  in
  let ab = Benchrun.compare_runs base cand in
  let d = delta_of ab ~metric:"unify.attempts" in
  Alcotest.check verdict "doubled counter flagged" Benchrun.Regression
    d.Benchrun.d_verdict;
  Alcotest.(check bool) "but not gated" false d.Benchrun.d_gated;
  Alcotest.(check int) "gate stays green" 0 ab.Benchrun.regressions

(* shard pooling: samples concatenate, degraded status survives,
   scalars come from the last shard *)
let test_pool_rows () =
  let s1 =
    [
      row ~status:"partial:deadline" ~counters:[ ("unify.attempts", 1.) ]
        ~total:[ 1.0; 1.1 ] ~bytes:[ 100. ] ();
      row ~analysis:"strictness" ~name:"mergesort" ~total:[ 5. ]
        ~bytes:[ 50. ] ();
    ]
  in
  let s2 =
    [ row ~counters:[ ("unify.attempts", 2.) ] ~total:[ 2.0; 2.1 ]
        ~bytes:[ 100. ] () ]
  in
  let pooled = Benchrun.pool_rows [ s1; s2 ] in
  Alcotest.(check int) "disjoint rows kept" 2 (List.length pooled);
  let p =
    List.find (fun r -> r.Benchrun.r_analysis = "groundness") pooled
  in
  Alcotest.(check int) "samples concatenated" 4 p.Benchrun.r_total.Benchrun.n;
  Alcotest.(check (float 1e-9)) "pooled median spans both shards" 1.55
    p.Benchrun.r_total.Benchrun.median;
  Alcotest.(check string) "degraded shard status survives" "partial:deadline"
    p.Benchrun.r_status;
  Alcotest.(check (float 1e-9)) "counters from the last shard" 2.
    (List.assoc "unify.attempts" p.Benchrun.r_counters)

(* --- run-directory round trip --------------------------------------------- *)

let test_roundtrip () =
  with_tmpdir (fun dir ->
      let rows =
        [
          row ~total:[ 0.0011; 0.0010; 0.0012 ] ~bytes:[ 4664. ] ();
          row ~analysis:"strictness" ~name:"mergesort" ~status:"complete"
            ~total:[ 0.01; 0.011; 0.009 ] ~bytes:[ 136672. ] ();
        ]
      in
      write ~dir ~id:"rt" rows;
      match Benchrun.find_run ~runs_dir:dir "rt" with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok run ->
          Alcotest.(check string) "id" "rt" run.Benchrun.id;
          Alcotest.(check bool) "manifest present" true
            (run.Benchrun.manifest <> None);
          let m = Option.get run.Benchrun.manifest in
          Alcotest.(check int) "repeats" 3 m.Benchrun.m_repeats;
          Alcotest.(check int) "rows" 2 (List.length run.Benchrun.rows);
          let loaded = List.hd run.Benchrun.rows in
          let orig = List.hd rows in
          Alcotest.(check (float 1e-12)) "total median survives"
            orig.Benchrun.r_total.Benchrun.median
            loaded.Benchrun.r_total.Benchrun.median;
          Alcotest.(check (list (float 1e-12))) "raw samples survive"
            orig.Benchrun.r_total.Benchrun.values
            loaded.Benchrun.r_total.Benchrun.values;
          Alcotest.(check string) "config survives" "dynamic"
            (List.assoc "mode" loaded.Benchrun.r_config);
          (* identity comparison: zero deltas flagged, zero regressions *)
          let ab = Benchrun.compare_runs run run in
          Alcotest.(check int) "self-ab regressions" 0 ab.Benchrun.regressions;
          Alcotest.(check int) "self-ab improvements" 0
            ab.Benchrun.improvements;
          Alcotest.(check bool) "every delta unchanged" true
            (List.for_all
               (fun d -> d.Benchrun.d_verdict = Benchrun.Unchanged)
               ab.Benchrun.deltas);
          (* the per-benchmark log landed *)
          Alcotest.(check bool) "log written" true
            (Sys.file_exists
               (Filename.concat run.Benchrun.dir "logs/groundness-qsort.log")))

(* --- degradation ----------------------------------------------------------- *)

let overwrite path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let test_manifest_degradation () =
  with_tmpdir (fun dir ->
      let rows = [ row ~total:[ 1. ] ~bytes:[ 4664. ] () ] in
      write ~dir ~id:"deg" rows;
      let rdir = Filename.concat dir "deg" in
      (* corrupt manifest: rows still load, manifest degrades to None *)
      overwrite (Filename.concat rdir "manifest.json") "{ not json";
      (match Benchrun.load_run rdir with
      | Ok run ->
          Alcotest.(check bool) "manifest degraded" true
            (run.Benchrun.manifest = None);
          Alcotest.(check string) "id from rows.json" "deg" run.Benchrun.id;
          Alcotest.(check int) "rows intact" 1 (List.length run.Benchrun.rows)
      | Error msg -> Alcotest.failf "corrupt manifest should degrade: %s" msg);
      (* missing manifest: same degradation *)
      Sys.remove (Filename.concat rdir "manifest.json");
      (match Benchrun.load_run rdir with
      | Ok run ->
          Alcotest.(check bool) "missing manifest degrades" true
            (run.Benchrun.manifest = None)
      | Error msg -> Alcotest.failf "missing manifest should degrade: %s" msg);
      (* corrupt rows: there is nothing sound to compare — an error *)
      overwrite (Filename.concat rdir "rows.json") "xx";
      (match Benchrun.load_run rdir with
      | Ok _ -> Alcotest.fail "corrupt rows.json must not load"
      | Error _ -> ());
      (* missing rows: likewise *)
      Sys.remove (Filename.concat rdir "rows.json");
      (match Benchrun.load_run rdir with
      | Ok _ -> Alcotest.fail "missing rows.json must not load"
      | Error _ -> ());
      (* and an unknown id through find_run *)
      match Benchrun.find_run ~runs_dir:dir "no-such-run" with
      | Ok _ -> Alcotest.fail "unknown run id must not load"
      | Error _ -> ())

(* --- bench gate exit codes through the built harness ----------------------- *)

let bench_exe =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bench")
    "main.exe"

(* run argv with stdout/stderr captured to a file; return the exit code *)
let run_code argv =
  with_tmpdir (fun dir ->
      let out = Filename.concat dir "out" in
      let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      let pid =
        Unix.create_process (List.hd argv) (Array.of_list argv) Unix.stdin fd fd
      in
      Unix.close fd;
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED code -> code
      | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
          Alcotest.failf "bench killed by signal %d" n)

let test_gate_exit_codes () =
  with_tmpdir (fun dir ->
      let base_rows = [ row ~total:[ 1.0; 1.0; 1.0 ] ~bytes:[ 4664. ] () ] in
      let slow_rows = [ row ~total:[ 3.0; 3.0; 3.0 ] ~bytes:[ 4664. ] () ] in
      write ~dir ~id:"base" base_rows;
      write ~dir ~id:"same" base_rows;
      write ~dir ~id:"slow" slow_rows;
      let gate extra =
        run_code
          ([ bench_exe; "gate"; "--runs-dir"; dir; "--baseline"; "base" ]
          @ extra)
      in
      Alcotest.(check int) "identical runs pass (exit 0)" 0
        (gate [ "--candidate"; "same" ]);
      Alcotest.(check int) "slowed run trips the gate (exit 2)" 2
        (gate [ "--candidate"; "slow" ]);
      Alcotest.(check int) "time gate off ignores the slowdown" 0
        (gate [ "--candidate"; "slow"; "--metrics"; "bytes" ]);
      Alcotest.(check int) "missing baseline is a usage error (exit 1)" 1
        (run_code
           [ bench_exe; "gate"; "--runs-dir"; dir; "--baseline"; "nope";
             "--candidate"; "same" ]);
      Alcotest.(check int) "ab reports without gating (exit 0)" 0
        (run_code [ bench_exe; "ab"; "--runs-dir"; dir; "base"; "slow" ]))

let () =
  Alcotest.run "benchrun"
    [
      ("stats", [ Alcotest.test_case "order statistics" `Quick test_stats ]);
      ( "thresholds",
        [
          Alcotest.test_case "regression flagged" `Quick test_regression_flagged;
          Alcotest.test_case "IQR noise not flagged" `Quick
            test_noise_not_flagged;
          Alcotest.test_case "absolute floor" `Quick test_abs_floor;
          Alcotest.test_case "table-byte thresholds" `Quick
            test_bytes_thresholds;
          Alcotest.test_case "improvement" `Quick test_improvement;
          Alcotest.test_case "status downgrade gates" `Quick
            test_status_downgrade;
          Alcotest.test_case "missing row gates" `Quick test_missing_row;
          Alcotest.test_case "counters informational" `Quick
            test_counters_informational;
          Alcotest.test_case "shard pooling" `Quick test_pool_rows;
        ] );
      ( "store",
        [
          Alcotest.test_case "round trip + self-ab identity" `Quick
            test_roundtrip;
          Alcotest.test_case "manifest degradation" `Quick
            test_manifest_degradation;
        ] );
      ( "gate",
        [ Alcotest.test_case "exit codes" `Quick test_gate_exit_codes ] );
    ]
