(** The [iff/k+1] relation of the Prop formulation (Figure 1), provided to
    the tabled engine as an enumerative builtin: [iff(A, B1, …, Bk)]
    succeeds for exactly the assignments of [true]/[false] satisfying
    [A ↔ B1 ∧ … ∧ Bk].

    Rather than asserting the 2^(k+1)-row relation as facts, the builtin
    enumerates the consistent completions of the current (partial)
    binding — observationally the paper's enumerative representation,
    including its incremental delta-set friendliness, without cluttering
    the clause database. *)

open Prax_logic

let ttrue = Term.Atom "true"
let tfalse = Term.Atom "false"

let as_bool = function
  | Term.Atom "true" -> Some true
  | Term.Atom "false" -> Some false
  | _ -> None

let solve (unify : Subst.t -> Term.t -> Term.t -> Subst.t option)
    (s : Subst.t) (args : Term.t array) (sc : Subst.t -> unit) : unit =
  let n = Array.length args in
  assert (n >= 1);
  (* positions must hold booleans or variables; anything else fails *)
  let feasible =
    Array.for_all
      (fun a ->
        match Subst.walk s a with
        | Term.Var _ -> true
        | t -> Option.is_some (as_bool t))
      args
  in
  if feasible then begin
    let check s' =
      let value i = Option.get (as_bool (Subst.walk s' args.(i))) in
      let rec conj i = i >= n || (value i && conj (i + 1)) in
      value 0 = conj 1
    in
    let rec unbound_ids i acc =
      if i >= n then List.rev acc
      else
        match Subst.walk s args.(i) with
        | Term.Var v when not (List.mem v acc) -> unbound_ids (i + 1) (v :: acc)
        | _ -> unbound_ids (i + 1) acc
    in
    let rec assign s' = function
      | [] -> if check s' then sc s'
      | v :: rest ->
          (match unify s' (Term.Var v) ttrue with
          | Some s'' -> assign s'' rest
          | None -> ());
          (match unify s' (Term.Var v) tfalse with
          | Some s'' -> assign s'' rest
          | None -> ())
    in
    assign s (unbound_ids 0 [])
  end

(** Register [iff/k] builtins for arities [1 .. max_arity + 1] on the
    given engine (1 lhs position + up to [max_arity] rhs positions). *)
let register (e : Prax_tabling.Engine.t) ~max_arity =
  for k = 1 to max_arity + 1 do
    Prax_tabling.Engine.register_builtin e "iff" k (fun _eng s args sc ->
        solve Unify.unify s args sc)
  done

(** The full extension of [iff/k+1] as ground fact rows — used by the
    bottom-up (Coral-style) baseline, which needs an extensional
    relation. *)
let extension k : bool list list =
  let sat = function
    | a :: bs -> a = List.for_all Fun.id bs
    | [] -> false
  in
  let rec enum i row acc =
    if i > k then if sat (List.rev row) then List.rev row :: acc else acc
    else enum (i + 1) (true :: row) (enum (i + 1) (false :: row) acc)
  in
  enum 0 [] []
