(* Term-trie (discrimination tree) tests: the trie index behind the
   engine's call/answer tables must agree with the hash-table path it
   replaced (a [Canon.Tbl] keyed by canonical term) on variant
   equivalence, duplicate suppression, and iteration content, and the
   node-based table-space accounting must still trip the guard's
   [--max-table-bytes] budget soundly.

   The agreement property runs ≥10k generated call/answer pairs through
   both implementations side by side. *)

open Prax_logic
open Prax_tabling
open Prax_guard

let parse = Parser.parse_term
let show t = Pretty.term_to_string t

(* --- generators --------------------------------------------------------- *)

let gen_term =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Term.var (i mod 6)) small_nat;
               map (fun i -> Term.int (i mod 40)) small_nat;
               oneofl
                 [
                   Term.atom "a"; Term.atom "b"; Term.atom "true";
                   Term.atom "false";
                 ];
             ]
         else
           frequency
             [
               (2, map (fun i -> Term.var (i mod 6)) small_nat);
               (1, oneofl [ Term.atom "a"; Term.atom "b" ]);
               ( 4,
                 map2
                   (fun f args -> Term.mkl f args)
                   (oneofl [ "f"; "g"; "h"; "p"; "." ])
                   (list_size (int_range 1 3) (self (n / 2))) );
             ])

(* Consistent renaming with an offset: a variant by construction, and
   (for non-ground terms) a physically different key that must land on
   the same canonical trie path. *)
let rename_by n t = Term.map_vars (fun i -> Term.var (i + n)) t

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- trie vs hash table, side by side ----------------------------------- *)

(* The old engine path: a Canon.Tbl plus an insertion-order vector.
   Feed the same canonical keys to both; every observable — dedup
   verdict, membership, cardinality, insertion order — must agree. *)
let agreement =
  prop "trie agrees with the Canon.Tbl path (dedup, membership, order)"
    2500
    QCheck2.Gen.(list_size (int_range 1 8) gen_term)
    (fun terms ->
      let tbl = Canon.Tbl.create 16 in
      let tbl_order = ref [] in
      let trie = Trie.create () in
      let trie_order = ref [] in
      List.iter
        (fun t ->
          (* insert both the term and a renamed variant: the variant
             must dedup against the original on both paths *)
          List.iter
            (fun key ->
              let hash_new =
                if Canon.Tbl.mem tbl key then false
                else begin
                  Canon.Tbl.add tbl key ();
                  tbl_order := key :: !tbl_order;
                  true
                end
              in
              let trie_new, fresh =
                match Trie.find_or_add trie key (fun () -> ()) with
                | Trie.Existing () -> (false, 0)
                | Trie.Added ((), fresh) ->
                    trie_order := key :: !trie_order;
                    (true, fresh)
              in
              if hash_new <> trie_new then
                QCheck2.Test.fail_reportf "dedup disagrees on %s" (show key);
              if fresh > Term.size key then
                QCheck2.Test.fail_reportf
                  "insert of %s allocated %d nodes > term size %d" (show key)
                  fresh (Term.size key))
            [ Canon.of_term t; Canon.of_term (rename_by 100 t) ])
        terms;
      (* cardinality, membership, and iteration content agree *)
      if Trie.cardinal trie <> Canon.Tbl.length tbl then
        QCheck2.Test.fail_reportf "cardinal %d <> table length %d"
          (Trie.cardinal trie) (Canon.Tbl.length tbl);
      List.iter
        (fun key ->
          if not (Trie.mem trie key) then
            QCheck2.Test.fail_reportf "trie lost %s" (show key);
          if Trie.find_opt trie key = None then
            QCheck2.Test.fail_reportf "find_opt misses %s" (show key))
        !tbl_order;
      if !trie_order <> !tbl_order then
        QCheck2.Test.fail_reportf "insertion order diverged";
      let trie_keys =
        Trie.fold (fun k () acc -> k :: acc) trie [] |> List.sort Term.compare
      in
      let tbl_keys =
        Canon.Tbl.fold (fun k () acc -> k :: acc) tbl []
        |> List.sort Term.compare
      in
      List.length trie_keys = List.length tbl_keys
      && List.for_all2 Term.equal trie_keys tbl_keys)

(* Variants are one key; non-variants are distinct keys. *)
let variant_semantics =
  prop "variant hits, non-variant misses" 2500
    QCheck2.Gen.(pair gen_term gen_term)
    (fun (t1, t2) ->
      let k1 = Canon.of_term t1 and k2 = Canon.of_term t2 in
      let trie = Trie.create () in
      ignore (Trie.find_or_add trie k1 (fun () -> 1));
      (* a renamed variant of t1 canonicalizes onto the same key *)
      let k1' = Canon.of_term (rename_by 7 t1) in
      (match Trie.find_or_add trie k1' (fun () -> 2) with
      | Trie.Existing 1 -> ()
      | _ -> QCheck2.Test.fail_reportf "variant of %s missed" (show t1));
      (* a different canonical term must get its own slot *)
      let expect_hit = Term.equal k1 k2 in
      match Trie.find_or_add trie k2 (fun () -> 3) with
      | Trie.Existing 1 ->
          expect_hit
          || QCheck2.Test.fail_reportf "%s collided with %s" (show k2) (show k1)
      | Trie.Added (3, _) ->
          (not expect_hit)
          || QCheck2.Test.fail_reportf "duplicate %s not deduped" (show k2)
      | _ -> false)

(* live_nodes equals the sum of fresh-node counts, and clear resets. *)
let node_accounting () =
  let trie = Trie.create () in
  let total = ref 0 in
  let keys =
    [ "p(a,b,c)"; "p(a,b,d)"; "p(a,X,Y)"; "q"; "q(1)"; "p(a,b,c)" ]
  in
  List.iter
    (fun s ->
      match Trie.find_or_add trie (Canon.of_term (parse s)) (fun () -> ()) with
      | Trie.Added ((), fresh) -> total := !total + fresh
      | Trie.Existing () -> ())
    keys;
  Alcotest.(check int) "live nodes = sum of fresh" !total (Trie.live_nodes trie);
  Alcotest.(check int) "five distinct keys" 5 (Trie.cardinal trie);
  (* p(a,b,c) vs p(a,b,d) share the p/3, a, b prefix: the second insert
     allocates exactly one node *)
  let t2 = Trie.create () in
  let f1 =
    match Trie.find_or_add t2 (parse "p(a,b,c)") (fun () -> ()) with
    | Trie.Added ((), f) -> f
    | _ -> -1
  in
  let f2 =
    match Trie.find_or_add t2 (parse "p(a,b,d)") (fun () -> ()) with
    | Trie.Added ((), f) -> f
    | _ -> -1
  in
  Alcotest.(check int) "first insert allocates size nodes" 4 f1;
  Alcotest.(check int) "prefix-sharing insert allocates one node" 1 f2;
  Trie.clear t2;
  Alcotest.(check int) "clear drops keys" 0 (Trie.cardinal t2);
  Alcotest.(check int) "clear drops nodes" 0 (Trie.live_nodes t2)

(* A whole-term variant inserted as a key: atoms and bare leaves work. *)
let leaf_keys () =
  let trie = Trie.create () in
  List.iter
    (fun s -> ignore (Trie.find_or_add trie (parse s) (fun () -> s)))
    [ "a"; "b"; "42" ];
  Alcotest.(check int) "three leaves" 3 (Trie.cardinal trie);
  Alcotest.(check (option string)) "atom found" (Some "a")
    (Trie.find_opt trie (parse "a"));
  Alcotest.(check (option string)) "int found" (Some "42")
    (Trie.find_opt trie (parse "42"));
  Alcotest.(check (option string)) "missing leaf" None
    (Trie.find_opt trie (parse "c"))

(* --- the engine on trie tables ------------------------------------------ *)

let engine_of ?guard src =
  let db = Database.create () in
  ignore (Database.load_string db src);
  Engine.create ?guard db

let path_src =
  "edge(a,b). edge(b,c). edge(c,a). edge(b,d).\n\
   path(X,Y) :- edge(X,Y).\n\
   path(X,Y) :- edge(X,Z), path(Z,Y)."

(* Discovery order and table dumps are properties of the engine the
   store round-trip relies on; the trie must not perturb either. *)
let engine_deterministic () =
  let run () =
    let e = engine_of path_src in
    let sols = Engine.query e (parse "path(X,Y)") in
    (List.map show sols, Engine.dump_tables e, Engine.table_space_bytes e)
  in
  let sols1, dump1, bytes1 = run () in
  let sols2, dump2, bytes2 = run () in
  Alcotest.(check (list string)) "discovery order stable" sols1 sols2;
  Alcotest.(check string) "dump stable" dump1 dump2;
  Alcotest.(check int) "bytes stable" bytes1 bytes2;
  Alcotest.(check bool) "bytes positive" true (bytes1 > 0)

(* Prefix sharing must make the trie accounting no larger than the old
   per-term accounting (one word per term node + overheads). *)
let accounting_bounded () =
  let e = engine_of path_src in
  ignore (Engine.query e (parse "path(X,Y)"));
  let stats = Engine.stats e in
  let old_model_bytes =
    (* entry: size + 8 words; answer: size + 2 words — the pre-trie
       model, recomputed from the final tables *)
    8
    * (List.fold_left (fun acc c -> acc + Term.size c + 8) 0 (Engine.calls e)
      + List.fold_left
          (fun acc a -> acc + Term.size a + 2)
          0
          (Engine.answers_for e ("path", 2) @ Engine.answers_for e ("edge", 2)))
  in
  Alcotest.(check bool) "trie accounting <= per-term accounting" true
    (Engine.table_space_bytes e <= old_model_bytes);
  Alcotest.(check bool) "entries recorded" true (stats.Engine.table_entries > 0)

(* nat/1 diverges; only the table-space budget stops it.  The trip must
   surface as a sound partial with consistent, reusable tables. *)
let table_bytes_trip () =
  let e =
    engine_of ~guard:(Guard.create ~max_table_bytes:2048 ())
      "nat(0). nat(s(X)) :- nat(X)."
  in
  let delivered = ref 0 in
  let status = Engine.run_status e (parse "nat(X)") (fun _ -> incr delivered) in
  (match status with
  | Guard.Partial { reason = Guard.Table_space; exhausted_entries } ->
      Alcotest.(check bool) "entries widened" true (exhausted_entries >= 1)
  | Guard.Partial { reason; _ } ->
      Alcotest.failf "expected table-space trip, got %s"
        (Guard.reason_to_string reason)
  | Guard.Complete -> Alcotest.fail "nat/1 cannot complete");
  Alcotest.(check bool) "answers delivered before the trip" true
    (!delivered > 0);
  Alcotest.(check bool) "tables consistent after abort" true
    (Engine.tables_consistent ~after_abort:true e);
  (* the estimate only ever tripped at, not wildly past, the budget:
     the guard checks on every insert, so the overshoot is bounded by
     one insert's worth of words *)
  Alcotest.(check bool) "space accounted" true (Engine.table_space_bytes e > 0);
  (* the widened entry holds its most-general answer and the engine
     stays usable *)
  let widened = Engine.answers_for e ("nat", 1) in
  Alcotest.(check bool) "most-general answer present" true
    (List.exists (fun a -> Unify.unifiable a (parse "nat(anything)")) widened)

(* Error recovery rebuilds the call trie: stale entries vanish, space
   accounting matches a from-scratch recomputation, survivors answer. *)
let error_recovery_rebuild () =
  let db = Database.create () in
  ignore
    (Database.load_string db
       "good(1). good(2).\nbad(X) :- good(X), boom(X).\n");
  let e = Engine.create db in
  Engine.register_builtin e "boom" 1 (fun _ _ _ _ -> failwith "boom");
  (* ground facts first: a closed entry that must survive *)
  ignore (Engine.query e (parse "good(X)"));
  let bytes_before = Engine.table_space_bytes e in
  (match Engine.query e (parse "bad(X)") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the boom/1 builtin to raise");
  Alcotest.(check bool) "tables consistent after error" true
    (Engine.tables_consistent ~after_abort:true e);
  (* the surviving good/1 entry still answers, without recomputation *)
  let again = Engine.query e (parse "good(X)") in
  Alcotest.(check int) "good/1 survived" 2 (List.length again);
  Alcotest.(check int) "space restored to the surviving entry"
    bytes_before
    (Engine.table_space_bytes e)

let () =
  Alcotest.run "trie"
    [
      ( "agreement",
        [
          agreement;
          variant_semantics;
        ] );
      ( "structure",
        [
          Alcotest.test_case "node accounting" `Quick node_accounting;
          Alcotest.test_case "leaf keys" `Quick leaf_keys;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic outcome" `Quick
            engine_deterministic;
          Alcotest.test_case "accounting bounded by old model" `Quick
            accounting_bounded;
          Alcotest.test_case "table-space budget trips" `Quick
            table_bytes_trip;
          Alcotest.test_case "error recovery rebuilds" `Quick
            error_recovery_rebuild;
        ] );
    ]
