(* Tests for the Prop domain: truth-table boolean functions, the iff
   relation/builtin, Quine-McCluskey rendering, and the ROBDD package,
   including cross-checks between the two representations. *)

open Prax_prop
open Prax_bdd

(* --- Bf ------------------------------------------------------------------ *)

let test_bf_top_bottom () =
  Alcotest.(check int) "top rows" 8 (Bf.count (Bf.top 3));
  Alcotest.(check int) "bottom rows" 0 (Bf.count (Bf.bottom 3));
  Alcotest.(check bool) "bottom empty" true (Bf.is_empty (Bf.bottom 3));
  Alcotest.(check bool) "top not empty" false (Bf.is_empty (Bf.top 0));
  Alcotest.(check int) "arity 0 top" 1 (Bf.count (Bf.top 0))

let test_bf_ops () =
  let x = Bf.var 2 0 and y = Bf.var 2 1 in
  Alcotest.(check int) "x rows" 2 (Bf.count x);
  Alcotest.(check int) "x&y rows" 1 (Bf.count (Bf.conj x y));
  Alcotest.(check int) "x|y rows" 3 (Bf.count (Bf.disj x y));
  Alcotest.(check int) "~x rows" 2 (Bf.count (Bf.neg x));
  Alcotest.(check bool) "x&~x empty" true (Bf.is_empty (Bf.conj x (Bf.neg x)));
  Alcotest.(check bool) "x|~x top" true (Bf.equal (Bf.disj x (Bf.neg x)) (Bf.top 2))

let test_bf_iff () =
  (* x0 <-> x1 & x2 *)
  let f = Bf.iff 3 0 [ 1; 2 ] in
  Alcotest.(check int) "iff rows" 4 (Bf.count f);
  Alcotest.(check bool) "row ttt" true (Bf.mem f 0b111);
  Alcotest.(check bool) "row t-lhs only rejected" false (Bf.mem f 0b001);
  Alcotest.(check bool) "row fft ok" true (Bf.mem f 0b010);
  (* iff with empty set is just the variable *)
  Alcotest.(check bool) "iff empty set" true
    (Bf.equal (Bf.iff 2 1 []) (Bf.var 2 1))

let test_bf_restrict_exists () =
  let f = Bf.iff 2 0 [ 1 ] in
  (* x0 <-> x1: restrict x1=true gives rows where x0=true *)
  let r = Bf.restrict f 1 true in
  Alcotest.(check (list int)) "restricted" [ 0b11 ] (Bf.rows r);
  let e = Bf.exists f 1 in
  Alcotest.(check int) "exists drops constraint" 4 (Bf.count e)

let test_bf_project_extend () =
  let f = Bf.iff 3 0 [ 1; 2 ] in
  let p = Bf.project f [ 0 ] in
  Alcotest.(check int) "projection arity" 1 (Bf.arity p);
  Alcotest.(check int) "projection total" 2 (Bf.count p);
  (* project respecting duplicates: positions [1;1] *)
  let p2 = Bf.project f [ 1; 1 ] in
  Alcotest.(check bool) "dup projection: only equal pairs" true
    (List.for_all (fun r -> r = 0b00 || r = 0b11) (Bf.rows p2));
  (* extend then project roundtrips *)
  let x = Bf.var 1 0 in
  let ext = Bf.extend x [ 2 ] 3 in
  Alcotest.(check bool) "extend embeds" true
    (Bf.equal (Bf.project ext [ 2 ]) x)

let test_bf_definite () =
  let f =
    Bf.of_tuples 3
      [
        [ Some true; Some true; Some false ]; [ Some true; Some false; Some false ];
      ]
  in
  Alcotest.(check (array bool)) "definite" [| true; false; false |] (Bf.definite f)

let test_bf_of_tuples_none_expands () =
  let f = Bf.of_tuples 2 [ [ Some true; None ] ] in
  Alcotest.(check int) "None both values" 2 (Bf.count f)

let test_bf_implies () =
  let xy = Bf.conj (Bf.var 2 0) (Bf.var 2 1) in
  Alcotest.(check bool) "x&y => x" true (Bf.implies xy (Bf.var 2 0));
  Alcotest.(check bool) "x !=> x&y" false (Bf.implies (Bf.var 2 0) xy)

(* --- Qm ------------------------------------------------------------------ *)

let names i = [| "a"; "b"; "c"; "d" |].(i)

let test_qm_simple () =
  Alcotest.(check string) "false" "false" (Qm.to_string ~names (Bf.bottom 2));
  Alcotest.(check string) "true" "true" (Qm.to_string ~names (Bf.top 2));
  Alcotest.(check string) "single var" "a" (Qm.to_string ~names (Bf.var 2 0))

let test_qm_covers_function () =
  (* the minimized formula must cover exactly the original rows *)
  let check_roundtrip f =
    let cubes = Qm.minimize f in
    let rows = Bf.rows f in
    List.iter
      (fun r ->
        Alcotest.(check bool) "row covered" true
          (List.exists (fun c -> Qm.covers c r) cubes))
      rows;
    for r = 0 to (1 lsl Bf.arity f) - 1 do
      if not (Bf.mem f r) then
        Alcotest.(check bool) "non-row not covered" false
          (List.exists (fun c -> Qm.covers c r) cubes)
    done
  in
  check_roundtrip (Bf.iff 3 0 [ 1; 2 ]);
  check_roundtrip (Bf.var 3 1);
  check_roundtrip (Bf.disj (Bf.var 3 0) (Bf.conj (Bf.var 3 1) (Bf.var 3 2)))

let prop_qm_cover =
  QCheck2.Test.make ~name:"QM cover is exact" ~count:100
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 15))
    (fun rows ->
      let f = Bf.of_rows 4 rows in
      let cubes = Qm.minimize f in
      let covered r = List.exists (fun c -> Qm.covers c r) cubes in
      List.for_all (fun r -> Bf.mem f r = covered r) (List.init 16 Fun.id))

(* --- BDD ------------------------------------------------------------------ *)

let test_bdd_basics () =
  Alcotest.(check bool) "x & ~x = 0" true
    (Bdd.is_false (Bdd.conj (Bdd.var 0) (Bdd.nvar 0)));
  Alcotest.(check bool) "x | ~x = 1" true
    (Bdd.is_true (Bdd.disj (Bdd.var 0) (Bdd.nvar 0)));
  Alcotest.(check bool) "hash-consing: same node" true
    (Bdd.equal (Bdd.conj (Bdd.var 0) (Bdd.var 1)) (Bdd.conj (Bdd.var 1) (Bdd.var 0)))

let test_bdd_iff () =
  let f = Bdd.iff 0 [ 1; 2 ] in
  Alcotest.(check int) "sat count" 4 (Bdd.sat_count ~nvars:3 f);
  Alcotest.(check (list int)) "same rows as Bf" (Bf.rows (Bf.iff 3 0 [ 1; 2 ]))
    (Bdd.sat_rows ~nvars:3 f)

let test_bdd_definite () =
  let f = Bdd.conj (Bdd.var 0) (Bdd.disj (Bdd.var 1) (Bdd.nvar 1)) in
  Alcotest.(check bool) "x definite" true (Bdd.definite_at f 0);
  Alcotest.(check bool) "y not definite" false (Bdd.definite_at f 1)

let test_bdd_exists () =
  let f = Bdd.conj (Bdd.var 0) (Bdd.var 1) in
  Alcotest.(check bool) "exists y (x&y) = x" true
    (Bdd.equal (Bdd.exists f 1) (Bdd.var 0))

(* random cross-check Bf vs Bdd through all shared operations *)
let gen_bf =
  QCheck2.Gen.(list_size (int_range 0 10) (int_range 0 15))
  |> QCheck2.Gen.map (fun rows -> Bf.of_rows 4 rows)

let bdd_of_bf f = Bdd.of_rows ~nvars:4 (Bf.rows f)

let prop_bdd_bf_conj =
  QCheck2.Test.make ~name:"Bdd/Bf agree on conj" ~count:150
    (QCheck2.Gen.pair gen_bf gen_bf) (fun (f, g) ->
      Bf.rows (Bf.conj f g)
      = Bdd.sat_rows ~nvars:4 (Bdd.conj (bdd_of_bf f) (bdd_of_bf g)))

let prop_bdd_bf_disj =
  QCheck2.Test.make ~name:"Bdd/Bf agree on disj" ~count:150
    (QCheck2.Gen.pair gen_bf gen_bf) (fun (f, g) ->
      Bf.rows (Bf.disj f g)
      = Bdd.sat_rows ~nvars:4 (Bdd.disj (bdd_of_bf f) (bdd_of_bf g)))

let prop_bdd_bf_neg =
  QCheck2.Test.make ~name:"Bdd/Bf agree on neg" ~count:150 gen_bf (fun f ->
      (* negation within the 4-var universe *)
      let expected = Bf.rows (Bf.neg f) in
      let bddneg = Bdd.neg (bdd_of_bf f) in
      expected = Bdd.sat_rows ~nvars:4 bddneg)

let prop_bdd_bf_definite =
  QCheck2.Test.make ~name:"Bdd/Bf agree on definite" ~count:150 gen_bf
    (fun f ->
      let bf = Bf.definite f in
      let bd = Array.init 4 (fun v -> Bdd.definite_at (bdd_of_bf f) v) in
      (* definite is only meaningful on satisfiable functions; on the empty
         function Bf says all-true and Bdd agrees (f & ~v is empty) *)
      bf = bd)

(* --- iff builtin ----------------------------------------------------------- *)

open Prax_logic

let iff_solutions args_src =
  let t = Parser.parse_term args_src in
  let args = Term.args_of t in
  let out = ref [] in
  Iff.solve Unify.unify Subst.empty args (fun s ->
      out := Subst.resolve s t :: !out);
  List.map Pretty.term_to_string (List.sort Term.compare !out)

let test_iff_builtin_open () =
  Alcotest.(check (list string)) "open iff/3"
    [
      "iff(false,false,false)"; "iff(false,false,true)";
      "iff(false,true,false)"; "iff(true,true,true)";
    ]
    (iff_solutions "iff(A, B, C)")

let test_iff_builtin_bound () =
  Alcotest.(check (list string)) "lhs true forces rhs"
    [ "iff(true,true,true)" ]
    (iff_solutions "iff(true, B, C)");
  Alcotest.(check (list string)) "contradiction fails" []
    (iff_solutions "iff(true, false, C)")

let test_iff_builtin_shared_vars () =
  Alcotest.(check (list string)) "shared var"
    [ "iff(false,false,false)"; "iff(true,true,true)" ]
    (iff_solutions "iff(A, B, B)")

let test_iff_builtin_nonbool () =
  Alcotest.(check (list string)) "non-boolean arg fails" []
    (iff_solutions "iff(A, foo, B)")

let test_iff_extension () =
  (* the ground extension used by the bottom-up engine matches the builtin *)
  Alcotest.(check int) "extension size k=2" 4
    (List.length (Iff.extension 2));
  List.iter
    (fun row ->
      match row with
      | a :: bs ->
          Alcotest.(check bool) "row satisfies" true
            (a = List.for_all Fun.id bs)
      | [] -> Alcotest.fail "empty row")
    (Iff.extension 3)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_qm_cover; prop_bdd_bf_conj; prop_bdd_bf_disj; prop_bdd_bf_neg;
      prop_bdd_bf_definite;
    ]

let () =
  Alcotest.run "prax_prop"
    [
      ( "bf",
        [
          Alcotest.test_case "top/bottom" `Quick test_bf_top_bottom;
          Alcotest.test_case "boolean ops" `Quick test_bf_ops;
          Alcotest.test_case "iff" `Quick test_bf_iff;
          Alcotest.test_case "restrict/exists" `Quick test_bf_restrict_exists;
          Alcotest.test_case "project/extend" `Quick test_bf_project_extend;
          Alcotest.test_case "definite" `Quick test_bf_definite;
          Alcotest.test_case "of_tuples None" `Quick test_bf_of_tuples_none_expands;
          Alcotest.test_case "implies" `Quick test_bf_implies;
        ] );
      ( "qm",
        [
          Alcotest.test_case "simple forms" `Quick test_qm_simple;
          Alcotest.test_case "cover exactness" `Quick test_qm_covers_function;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "basics" `Quick test_bdd_basics;
          Alcotest.test_case "iff" `Quick test_bdd_iff;
          Alcotest.test_case "definite" `Quick test_bdd_definite;
          Alcotest.test_case "exists" `Quick test_bdd_exists;
        ] );
      ( "iff builtin",
        [
          Alcotest.test_case "open call" `Quick test_iff_builtin_open;
          Alcotest.test_case "bound lhs" `Quick test_iff_builtin_bound;
          Alcotest.test_case "shared vars" `Quick test_iff_builtin_shared_vars;
          Alcotest.test_case "non-boolean" `Quick test_iff_builtin_nonbool;
          Alcotest.test_case "ground extension" `Quick test_iff_extension;
        ] );
      ("properties", qsuite);
    ]
