lib/strict/demand.ml: Prax_logic Term
