(** Idempotent-enough substitutions: persistent maps from variable ids to
    terms, dereferenced lazily.  Persistence is what makes the
    continuation-passing engines trivially backtrackable — no trail is
    needed; an old substitution is simply kept. *)

module IM = Map.Make (Int)

type t = Term.t IM.t

let empty : t = IM.empty
let is_empty = IM.is_empty
let cardinal = IM.cardinal

(** Dereference the top of [t]: follow variable bindings until reaching a
    non-variable or an unbound variable.  Does not descend into
    structures. *)
let rec walk (s : t) (t : Term.t) : Term.t =
  match t with
  | Term.Var i -> (
      match IM.find_opt i s with Some t' -> walk s t' | None -> t)
  | _ -> t

(** Bind variable [i] to [t].  The caller must ensure [i] is unbound. *)
let bind (s : t) i (t : Term.t) : t = IM.add i t s

(** Fully apply [s] to [t], producing a term with only unbound variables. *)
let rec resolve (s : t) (t : Term.t) : Term.t =
  match walk s t with
  | Term.Struct (f, args) -> Term.Struct (f, Array.map (resolve s) args)
  | t' -> t'

(** The unbound variables remaining in [resolve s t], in first-occurrence
    order. *)
let free_vars s t = Term.vars (resolve s t)

let is_ground_under s t = Term.is_ground (resolve s t)

(** Does variable [id] occur in [t] under [s]?  Used for occur-check. *)
let rec occurs_check (s : t) id (t : Term.t) : bool =
  match walk s t with
  | Term.Var j -> j = id
  | Term.Int _ | Term.Atom _ -> false
  | Term.Struct (_, args) ->
      let n = Array.length args in
      let rec go i = i < n && (occurs_check s id args.(i) || go (i + 1)) in
      go 0
