lib/prop/qm.ml: Array Bf Hashtbl List String
