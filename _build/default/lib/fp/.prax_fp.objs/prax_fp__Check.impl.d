lib/fp/check.ml: Ast Fparser Hashtbl List Printf String
