lib/logic/lexer.ml: Buffer Char List Printf String
