lib/benchdata/logic_medium.ml:
