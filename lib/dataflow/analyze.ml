(** Demand-driven dataflow analysis on the tabled engine, plus a direct
    (non-logic-programming) reference implementation of reaching
    definitions used to validate the declarative route and to play the
    role of the special-purpose C analyzer of the Section 7 comparison. *)

open Prax_logic
open Prax_tabling
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis

(* Phase timers (docs/METRICS.md): encoding the CFG as clauses, and
   demand-driven query evaluation. *)
let t_encode =
  Metrics.timer ~doc:"dataflow: encode the CFG program as clauses"
    "dataflow.encode"

let t_query =
  Metrics.timer ~doc:"dataflow: tabled evaluation of demand queries"
    "dataflow.query"

type t = { engine : Engine.t; program : Cfg.program }

let make ?guard (p : Cfg.program) : t =
  Metrics.time t_encode (fun () ->
      let db = Database.create () in
      Database.load_clauses db (Encode.program p);
      { engine = Engine.create ?guard db; program = p })

let query t goal_src =
  Metrics.time t_query (fun () ->
      Engine.query t.engine (Parser.parse_term goal_src))

(** Does the definition of [var] at node [d] reach node [n]?  A single
    demand: tabled evaluation explores only what the query needs. *)
let reaches t ~var ~def ~node : bool =
  let goal =
    Term.mkl "reach" [ Encode.def_term var def; Term.int node ]
  in
  Metrics.time t_query (fun () -> Engine.query t.engine goal <> [])

(** All definitions reaching [node] — the exhaustive question. *)
let reaching_at t ~node : (string * int) list =
  let v = Term.fresh_var () and m = Term.fresh_var () in
  let goal = Term.mkl "reach" [ Term.mkl "def" [ v; m ]; Term.int node ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match (Subst.walk s v, Subst.walk s m) with
          | Term.Atom var, Term.Int d -> out := (var, d) :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let live_at t ~node : string list =
  let v = Term.fresh_var () in
  let goal = Term.mkl "livein" [ v; Term.int node ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match Subst.walk s v with
          | Term.Atom var -> out := var :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let def_use_chains t : ((string * int) * int) list =
  let v = Term.fresh_var () and m = Term.fresh_var () and u = Term.fresh_var () in
  let goal = Term.mkl "du" [ Term.mkl "def" [ v; m ]; u ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match (Subst.walk s v, Subst.walk s m, Subst.walk s u) with
          | Term.Atom var, Term.Int d, Term.Int usenode ->
              out := ((var, d), usenode) :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let stats t = Engine.stats t.engine

(* --- whole-program driver ------------------------------------------------- *)

let t_collect =
  Metrics.timer ~doc:"dataflow: fold reach answers into per-node rows"
    "dataflow.collect"

(* The shared Table-style phase record, re-exported like the other
   drivers (definition lives in prax.analysis). *)
type phases = Analysis.phases = {
  preproc : float;
  analysis : float;
  collection : float;
}

let total = Analysis.total

type report = {
  rows : (int * (string * int) list) list;
      (** per node, sorted by id: definitions [(var, def_node)] reaching
          its entry *)
  phases : phases;
  table_bytes : int;
  engine_stats : Engine.stats;
  node_count : int;
  proc_count : int;
  status : Guard.status;
      (** [Partial] when a resource budget stopped evaluation; the rows
          then under-report reachability for the unexplored demands *)
}

(** Exhaustive reaching-definitions over a whole program, demand by
    demand: one [reach(def(V,M), n)] query per node, evaluated on the
    tabled engine, then the answer tables folded into per-node rows —
    the same preprocess/evaluate/collect skeleton as the other
    analyses, so Section 7's comparison is like-for-like. *)
let analyze ?(guard = Guard.unlimited) (p : Cfg.program) : report =
  let phases, t, status, rows =
    Analysis.phased ~timers:(t_encode, t_query, t_collect)
      ~pre:(fun () ->
        let db = Database.create () in
        Database.load_clauses db (Encode.program p);
        { engine = Engine.create ~guard db; program = p })
      (* one demand per node: which definitions reach its entry?
         Budgets are sticky, so after an exhaustion the remaining
         demands degrade immediately. *)
      ~eval:(fun t ->
        List.fold_left
          (fun acc (pr : Cfg.proc) ->
            List.fold_left
              (fun acc (n : Cfg.node) ->
                let v = Term.fresh_var () and m = Term.fresh_var () in
                let goal =
                  Term.mkl "reach"
                    [ Term.mkl "def" [ v; m ]; Term.int n.Cfg.id ]
                in
                Guard.combine acc (Engine.run_status t.engine goal (fun _ -> ())))
              acc pr.Cfg.nodes)
          Guard.Complete p)
      (* collection: fold the reach/2 answer tables (across all call
         variants) into one row per node *)
      ~collect:(fun t _status ->
        let tbl : (int, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun ans ->
            match Term.args_of ans with
            | [| dterm; Term.Int n |] -> (
                match
                  if Term.functor_of dterm = Some ("def", 2) then
                    Term.args_of dterm
                  else [||]
                with
                | [| Term.Atom v; Term.Int m |] ->
                    let cur =
                      Option.value (Hashtbl.find_opt tbl n) ~default:[]
                    in
                    if not (List.mem (v, m) cur) then
                      Hashtbl.replace tbl n ((v, m) :: cur)
                | _ -> ())
            | _ -> ())
          (Engine.answers_for t.engine ("reach", 2));
        List.concat_map
          (fun (pr : Cfg.proc) ->
            List.map
              (fun (n : Cfg.node) ->
                ( n.Cfg.id,
                  List.sort compare
                    (Option.value (Hashtbl.find_opt tbl n.Cfg.id) ~default:[])
                ))
              pr.Cfg.nodes)
          p
        |> List.sort compare)
      ()
  in
  {
    rows;
    phases;
    table_bytes = Engine.table_space_bytes t.engine;
    engine_stats = Engine.stats t.engine;
    node_count =
      List.fold_left (fun acc pr -> acc + List.length pr.Cfg.nodes) 0 p;
    proc_count = List.length p;
    status;
  }

(** Full pipeline from [.cfg] source text; parse time is billed to
    preprocessing like the other drivers. *)
let analyze_source ?guard (src : string) : report =
  let t0 = Analysis.now () in
  let p = Metrics.time t_encode (fun () -> Cfg.parse src) in
  let t_parse = Analysis.now () -. t0 in
  let r = analyze ?guard p in
  { r with phases = Analysis.add_preproc r.phases t_parse }

let row_to_string (n, defs) =
  Printf.sprintf "node %d: reaching={%s}" n
    (String.concat ","
       (List.map (fun (v, d) -> Printf.sprintf "%s@%d" v d) defs))

let report_to_string (rep : report) : string =
  String.concat "\n" (List.map row_to_string rep.rows)

(* --- reference implementation ------------------------------------------- *)

(** Classic worklist reaching-definitions over the same graph (with the
    same interprocedural call/return edges), entirely outside the logic
    engine.  [reference_reaching_at p node] must agree with
    {!reaching_at}; the tests check this on random ladders. *)
let reference_reaching (p : Cfg.program) : (int, (string * int) list) Hashtbl.t
    =
  (* materialize nodes and edges exactly as the encoding does *)
  let nodes =
    List.concat_map (fun (pr : Cfg.proc) -> pr.Cfg.nodes) p
  in
  let edges = ref [] in
  List.iter
    (fun (pr : Cfg.proc) ->
      List.iter
        (fun (m, n) ->
          match (Cfg.node_of pr m).Cfg.stmt with
          | Cfg.Call callee -> (
              match Cfg.find_proc p callee with
              | Some target ->
                  edges := (m, target.Cfg.entry) :: (target.Cfg.exit, n) :: !edges
              | None -> edges := (m, n) :: !edges)
          | _ -> edges := (m, n) :: !edges)
        pr.Cfg.edges)
    p;
  let stmt_of = Hashtbl.create 64 in
  List.iter (fun (n : Cfg.node) -> Hashtbl.replace stmt_of n.Cfg.id n.Cfg.stmt) nodes;
  (* in[n] = defs reaching the *entry* of n; the logic encoding's
     reach(D, N) is exactly this *)
  let in_ : (int, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n : Cfg.node) -> Hashtbl.replace in_ n.Cfg.id []) nodes;
  let out_of id =
    let stmt = Hashtbl.find stmt_of id in
    let killed = Cfg.defs stmt in
    let survived =
      List.filter
        (fun (v, _) -> not (List.mem v killed))
        (Hashtbl.find in_ id)
    in
    List.map (fun v -> (v, id)) (Cfg.defs stmt) @ survived
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m, n) ->
        let flow = out_of m in
        let cur = Hashtbl.find in_ n in
        let extra = List.filter (fun d -> not (List.mem d cur)) flow in
        if extra <> [] then begin
          Hashtbl.replace in_ n (extra @ cur);
          changed := true
        end)
      !edges
  done;
  in_

let reference_reaching_at (p : Cfg.program) ~node : (string * int) list =
  match Hashtbl.find_opt (reference_reaching p) node with
  | Some l -> List.sort_uniq compare l
  | None -> []
