lib/benchdata/logic_press.ml:
