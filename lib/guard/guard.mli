(** Composable resource budgets for the evaluation engines.

    An analysis embedded in a compiler pipeline must never hang or crash
    its host: the tabled engine's termination guarantee holds only when
    calls and answers range over a finite domain, and depth-k with a
    large [k], [widen = None] configurations, or arbitrary user programs
    can blow past any reasonable time/space envelope.  A guard is the
    tripwire — the analogue of XSB's table-space limits and timed call
    interrupts: a bundle of budgets (wall-clock deadline on the
    monotonic clock, derivation-step count, table-space bytes) checked
    cheaply at the engines' existing event sites.

    On exhaustion the engine does not return garbage: it stops
    producing, force-completes unfinished table entries by widening them
    to their most general answer (a sound over-approximation), and
    reports a {!status} of [Partial] — see [docs/ROBUSTNESS.md] for the
    soundness argument and {!Prax_tabling.Engine.run_status} for the
    engine side.

    Guards also carry the fault-injection hook ({!Inject}) used to prove
    the abort-anywhere property: at any event the engine can be torn
    down and the partial result is still sound and the engine still
    usable. *)

(** Why a budget tripped. *)
type reason =
  | Deadline  (** wall-clock deadline passed *)
  | Steps  (** derivation-step budget exhausted *)
  | Table_space  (** table-space byte budget exhausted *)
  | Fault of string  (** injected fault ({!Inject}) *)

val reason_to_string : reason -> string

(** Outcome of a governed evaluation.  [Partial] flags a sound
    over-approximation: [exhausted_entries] is the number of table
    entries that had to be force-completed by widening. *)
type status = Complete | Partial of { reason : reason; exhausted_entries : int }

val status_to_string : status -> string
(** ["complete"], or ["partial(<reason>, widened=<n>)"]. *)

val is_partial : status -> bool

val combine : status -> status -> status
(** Fold statuses of successive governed runs: [Complete] is the unit;
    two [Partial]s keep the first reason and sum the widened-entry
    counts. *)

exception Exhausted of reason
(** Raised by {!check} / {!note_space} when a budget is exhausted.  The
    engines catch it at their public entry points; it should never
    escape to a CLI user. *)

type t

val unlimited : t
(** The no-op guard: every check is a single load-and-branch. *)

val create :
  ?timeout:float ->
  ?max_steps:int ->
  ?max_table_bytes:int ->
  ?on_event:(int -> unit) ->
  unit ->
  t
(** [create ()] makes a guard.  [timeout] is seconds of wall clock from
    now (monotonic); [max_steps] bounds derivation steps (engine events);
    [max_table_bytes] bounds the engine's table-space estimate.
    [on_event] is invoked with the running event count on every check —
    the fault-injection hook ({!Inject}); it may raise.

    Deadline and step budgets are {e sticky}: once tripped, every later
    {!check} trips again immediately, so a driver issuing several
    governed runs degrades each of them instead of hanging on the
    first.  Injected faults are one-shot. *)

val counting : unit -> t
(** An active guard with no limits: counts events (see {!steps}) without
    ever tripping.  Used to measure a run's event span before a
    fault-injection sweep. *)

val active : t -> bool
(** [false] exactly for {!unlimited}. *)

val check : t -> unit
(** Count one engine event and verify the budgets.  Cost: one branch
    for {!unlimited}; otherwise an increment and two compares — the
    monotonic clock is read only every 256th event
    (counted by the [guard.deadline_checks] metric).
    @raise Exhausted when a budget is exhausted. *)

val note_space : t -> int -> unit
(** [note_space g bytes] verifies the table-space budget against the
    engine's current estimate.  Called by the engine whenever the
    estimate grows.
    @raise Exhausted when over budget. *)

val steps : t -> int
(** Events counted so far. *)

val tripped : t -> reason option
(** The first budget that tripped, if any. *)

val timeout_seconds : t -> float option
val max_steps : t -> int option
val max_table_bytes : t -> int option

val duration_of_string : string -> float option
(** Parse a human duration: ["100ms"], ["2s"], ["1.5s"], ["90us"],
    ["2m"], or a bare number meaning seconds.  [None] on junk. *)

(** {1 Budget specifications}

    A {!t} is a live object — its deadline is absolute from creation —
    so it cannot be stored, shipped to a worker process, or scaled for
    a retry.  A [spec] is the inert description: the supervisor
    ({!Prax_serve}) keeps a [spec] per batch, scales it down the
    degradation ladder, and mints a fresh guard from it at the start of
    every attempt. *)

type spec = {
  timeout : float option;  (** seconds of wall clock per attempt *)
  max_steps : int option;
  max_table_bytes : int option;
}

val no_limits : spec

val spec :
  ?timeout:float -> ?max_steps:int -> ?max_table_bytes:int -> unit -> spec

val spec_is_unlimited : spec -> bool

val scale_spec : spec -> float -> spec
(** [scale_spec s f] multiplies every finite budget by [f] (floors at 1
    step / 1 byte / 1ms so a scaled budget still trips rather than
    degenerating to zero-which-means-unlimited). *)

val of_spec : spec -> t
(** A fresh guard honoring [spec]; {!unlimited} when nothing is set
    (the deadline clock starts now). *)

val spec_to_string : spec -> string
(** Human rendering, e.g. ["timeout=2s steps=10000 bytes=off"]; used in
    batch reports and as a store-key configuration discriminator. *)

val budget_json_fields : t -> (string * Prax_metrics.Metrics.json) list
(** [("budget", {...})] fields for a prax.stats document (empty list for
    {!unlimited}); see docs/METRICS.md. *)

val status_json_fields : status -> (string * Prax_metrics.Metrics.json) list
(** [("status", ...)] and, when partial, [("partial_reason", ...)],
    [("widened_entries", ...)] fields for a prax.stats document. *)
