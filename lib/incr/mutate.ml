(** Seeded deterministic source mutations.  See mutate.mli. *)

open Prax_logic

(* Fixed LCG (Numerical Recipes constants over 2^32) — the sweep must
   replay identically everywhere, so no Random, no state outside the
   closure, and arithmetic that fits a 63-bit int. *)
let lcg seed =
  let st = ref (seed land 0xFFFFFFFF) in
  fun bound ->
    st := ((!st * 1664525) + 1013904223) land 0xFFFFFFFF;
    if bound <= 0 then 0 else (!st lsr 7) mod bound

(* --- logic programs -------------------------------------------------------- *)

type item = Dir of Term.t | Cl of Parser.clause

(* Clauses are re-printed from their *canonical* form (variables
   renumbered in first-occurrence order, head and body sharing one
   numbering): raw fresh-variable ids differ between parses, and the
   mutation must be a pure function of the seed and the source text. *)
let print_clause ops (c : Parser.clause) =
  match c.Parser.body with
  | [] -> Pretty.term_to_string ~ops (Canon.of_term c.Parser.head) ^ "."
  | g :: rest ->
      let body =
        List.fold_left (fun acc g' -> Term.mk "," [| acc; g' |]) g rest
      in
      Pretty.term_to_string ~ops
        (Canon.of_term (Term.mk ":-" [| c.Parser.head; body |]))
      ^ "."

let print_items ops items =
  String.concat "\n"
    (List.map
       (function
         | Dir d -> ":- " ^ Pretty.term_to_string ~ops d ^ "."
         | Cl c -> print_clause ops c)
       items)
  ^ "\n"

let mutate_pl ~seed src =
  match
    let ops = Ops.create () in
    let items =
      List.map
        (function
          | Parser.Directive d -> Dir d
          | Parser.Clause c -> Cl c)
        (Parser.parse_program ~ops src)
    in
    (ops, items)
  with
  | exception _ -> None
  | ops, items ->
      let rand = lcg seed in
      let arr = Array.of_list items in
      let clause_idx =
        Array.to_list
          (Array.mapi (fun i it -> (i, it)) arr)
        |> List.filter_map (function i, Cl c -> Some (i, c) | _ -> None)
      in
      let nclauses = List.length clause_idx in
      (* candidate ops, tried in a seed-determined rotation so every
         seed yields an edit whenever any edit is possible *)
      let delete () =
        if nclauses < 2 then None
        else
          let i, _ = List.nth clause_idx (rand nclauses) in
          Some
            (Array.to_list arr |> List.filteri (fun j _ -> j <> i))
      in
      let truncate () =
        let with_body =
          List.filter (fun (_, c) -> c.Parser.body <> []) clause_idx
        in
        match with_body with
        | [] -> None
        | _ ->
            let i, c = List.nth with_body (rand (List.length with_body)) in
            let body =
              List.filteri
                (fun j _ -> j < List.length c.Parser.body - 1)
                c.Parser.body
            in
            (* work on a copy: a candidate that the validating re-parse
               rejects must not leak its edit into the next candidate *)
            let arr' = Array.copy arr in
            arr'.(i) <- Cl { c with Parser.body };
            Some (Array.to_list arr')
      in
      let swap () =
        (* adjacent clause items (directives between them block a swap:
           an [op] directive must keep preceding its uses) *)
        let adjacent =
          List.filter_map
            (function
              | (i, _) :: (j, _) :: _ when j = i + 1 -> Some i
              | _ -> None)
            (let rec tails = function
               | [] -> []
               | _ :: t as l -> l :: tails t
             in
             tails clause_idx)
        in
        match adjacent with
        | [] -> None
        | _ ->
            let i = List.nth adjacent (rand (List.length adjacent)) in
            let arr' = Array.copy arr in
            arr'.(i) <- arr.(i + 1);
            arr'.(i + 1) <- arr.(i);
            Some (Array.to_list arr')
      in
      let ops_pool = [| delete; truncate; swap |] in
      let start = rand (Array.length ops_pool) in
      let rec try_from k =
        if k = Array.length ops_pool then None
        else
          match ops_pool.((start + k) mod Array.length ops_pool) () with
          | Some items' -> (
              (* the generator guarantees parseability by construction:
                 a candidate the parser rejects (a printer corner the
                 round-trip cannot yet carry) falls through to the next
                 mutation kind instead of poisoning the sweep *)
              let out = print_items ops items' in
              match Parser.parse_program ~ops:(Ops.create ()) out with
              | _ -> Some out
              | exception _ -> try_from (k + 1))
          | None -> try_from (k + 1)
      in
      try_from 0

(* --- functional programs --------------------------------------------------- *)

let mutate_eq ~seed src =
  if String.trim src = "" then None
  else
    let rand = lcg seed in
    (* the name comes from the seed, not the LCG: [apply_n] uses
       consecutive seeds and the definitions must not collide *)
    let name = Printf.sprintf "zzmut%d" (seed land 0xFFFFFF) in
    let def =
      match rand 2 with
      | 0 -> Printf.sprintf "%s(x) = x;" name
      | _ ->
          Printf.sprintf "%s(n, a) = if n == 0 then a else %s(n - 1, a);"
            name name
    in
    let sep = if String.length src > 0 && src.[String.length src - 1] = '\n'
      then "" else "\n" in
    Some (src ^ sep ^ def ^ "\n")

(* --- composition ------------------------------------------------------------ *)

let apply_n ~seed ~n m src =
  let rec go k src =
    if k = n then Some src
    else match m ~seed:(seed + k) src with
      | None -> None
      | Some src' -> go (k + 1) src'
  in
  go 0 src
