(** Syntactic unification over persistent substitutions.

    [unify] is the engine default (no occur-check, as in Prolog/XSB);
    [unify_oc] performs the occur-check and is used where the paper demands
    it (Hindley–Milner-style equation solving, depth-k abstract
    unification's underlying equality). *)

module Metrics = Prax_metrics.Metrics

let m_attempts =
  Metrics.counter ~units:"calls"
    ~doc:"top-level unification attempts (both engines, any hook)"
    "unify.attempts"

let m_failures =
  Metrics.counter ~units:"calls" ~doc:"top-level unification attempts that failed"
    "unify.failures"

let m_occur_hits =
  Metrics.counter ~units:"hits"
    ~doc:"variable bindings rejected by the occur-check (unify_oc only)"
    "unify.occur_check_hits"

let rec unify_gen ~oc (s : Subst.t) (t1 : Term.t) (t2 : Term.t) :
    Subst.t option =
  if t1 == t2 then Some s
    (* unifying any term with itself binds nothing; hash-consing makes
       this pointer test hit for every shared subterm *)
  else
    let t1 = Subst.walk s t1 and t2 = Subst.walk s t2 in
    match (t1, t2) with
    | Term.Var i, Term.Var j when i = j -> Some s
    | Term.Var i, _ ->
        if oc && Subst.occurs_check s i t2 then begin
          Metrics.incr m_occur_hits;
          None
        end
        else Some (Subst.bind s i t2)
    | _, Term.Var j ->
        if oc && Subst.occurs_check s j t1 then begin
          Metrics.incr m_occur_hits;
          None
        end
        else Some (Subst.bind s j t1)
    | Term.Int a, Term.Int b -> if a = b then Some s else None
    | Term.Atom a, Term.Atom b -> if String.equal a b then Some s else None
    | Term.Struct (f, a1, _), Term.Struct (g, a2, _)
      when String.equal f g && Array.length a1 = Array.length a2 ->
        (* interned functors: String.equal is a pointer comparison here *)
        if t1 == t2 then Some s
        else if Term.is_ground t1 && Term.is_ground t2 then
          (* ground structs are hash-consed: distinct pointers are
             distinct terms, and two distinct ground terms never unify *)
          None
        else unify_args ~oc s a1 a2 0
    | _ -> None

and unify_args ~oc s a1 a2 i =
  if i >= Array.length a1 then Some s
  else
    match unify_gen ~oc s a1.(i) a2.(i) with
    | Some s' -> unify_args ~oc s' a1 a2 (i + 1)
    | None -> None

let counted result =
  Metrics.incr m_attempts;
  (match result with None -> Metrics.incr m_failures | Some _ -> ());
  result

let unify s t1 t2 = counted (unify_gen ~oc:false s t1 t2)
let unify_oc s t1 t2 = counted (unify_gen ~oc:true s t1 t2)

(** Do [t1] and [t2] unify?  Convenience for tests. *)
let unifiable t1 t2 = Option.is_some (unify Subst.empty t1 t2)
