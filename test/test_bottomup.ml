(* Tests for the bottom-up Datalog engine: naive/semi-naive agreement,
   the Prop conversion, adornment, magic sets, and supplementary magic
   (correctness of answers and the goal-directedness of derived facts). *)

open Prax_logic
open Prax_bottomup

let v = Term.fresh_var
let a s = Term.atom s

let atom name args = { Datalog.pred = (name, List.length args); args = Array.of_list args }

let rule head body = { Datalog.head; body }

(* edge/path over a small graph, directly as Datalog *)
let graph_rules extra_edges =
  let edge x y = rule (atom "edge" [ a x; a y ]) [] in
  let x = v () and y = v () and z = v () in
  [
    edge "a" "b"; edge "b" "c"; edge "c" "d";
    rule (atom "path" [ Term.var 900001; Term.var 900002 ])
      [ atom "edge" [ Term.var 900001; Term.var 900002 ] ];
    rule
      (atom "path" [ x; y ])
      [ atom "edge" [ x; z ] |> Fun.id; atom "path" [ z; y ] ];
  ]
  @ List.map (fun (p, q) -> edge p q) extra_edges

let eval_with evaluator rules =
  let intensional, db = Datalog.load rules in
  ignore (evaluator intensional db);
  db

let path_facts db =
  Datalog.tuples_of db ("path", 2)
  |> List.map (fun t ->
         Printf.sprintf "%s-%s" (Pretty.term_to_string t.(0))
           (Pretty.term_to_string t.(1)))
  |> List.sort compare

let test_naive_path () =
  let db = eval_with Datalog.naive (graph_rules []) in
  Alcotest.(check (list string)) "closure"
    [ "a-b"; "a-c"; "a-d"; "b-c"; "b-d"; "c-d" ]
    (path_facts db)

let test_seminaive_agrees_with_naive () =
  List.iter
    (fun extra ->
      let d1 = eval_with Datalog.naive (graph_rules extra) in
      let d2 = eval_with Datalog.seminaive (graph_rules extra) in
      Alcotest.(check (list string)) "naive = seminaive" (path_facts d1)
        (path_facts d2))
    [ []; [ ("d", "a") ]; [ ("d", "b"); ("c", "a") ] ]

let test_seminaive_cycle_terminates () =
  let db = eval_with Datalog.seminaive (graph_rules [ ("d", "a") ]) in
  Alcotest.(check int) "full closure on cycle" 16 (List.length (path_facts db))

let test_dedup () =
  let db = Datalog.create_db () in
  Alcotest.(check bool) "first insert" true
    (Datalog.add_fact db ("p", 1) [| a "x" |]);
  Alcotest.(check bool) "duplicate rejected" false
    (Datalog.add_fact db ("p", 1) [| a "x" |]);
  Alcotest.(check int) "count" 1 (Datalog.fact_count db)

let test_query_filters () =
  let db = eval_with Datalog.seminaive (graph_rules []) in
  let answers = Datalog.query db (atom "path" [ a "a"; v () ]) in
  Alcotest.(check int) "path(a, _)" 3 (List.length answers)

(* --- adornment / magic ------------------------------------------------------ *)

let query_pattern bound =
  atom "path" [ (if bound then a "a" else v ()); v () ]

let test_adorn_names () =
  let adorned, q = Magic.adorn (graph_rules []) (query_pattern true) in
  Alcotest.(check string) "query adorned" "path$bf" (fst q.Datalog.pred);
  Alcotest.(check bool) "adorned rules mention path$bf" true
    (List.exists
       (fun (r : Datalog.rule) -> fst r.Datalog.head.Datalog.pred = "path$bf")
       adorned)

let test_magic_same_answers () =
  let rules = graph_rules [ ("d", "e"); ("e", "a") ] in
  let full = eval_with Datalog.seminaive rules in
  let expected =
    Datalog.query full (query_pattern true)
    |> List.map (fun t -> Pretty.term_to_string t.(1))
    |> List.sort compare
  in
  List.iter
    (fun (label, transform) ->
      let trules, tq = transform rules (query_pattern true) in
      let db = eval_with Datalog.seminaive trules in
      let got =
        Datalog.query db tq
        |> List.map (fun t -> Pretty.term_to_string t.(1))
        |> List.sort compare
      in
      Alcotest.(check (list string)) (label ^ " answers") expected got)
    [ ("magic", Magic.magic); ("supplementary", Magic.supplementary) ]

let test_magic_goal_directed () =
  (* a graph with a large unreachable component: magic must not derive
     path facts inside it *)
  let unreachable =
    List.init 10 (fun i -> (Printf.sprintf "u%d" i, Printf.sprintf "u%d" (i + 1)))
  in
  let rules = graph_rules unreachable in
  let full = eval_with Datalog.seminaive rules in
  let mrules, _ = Magic.magic rules (query_pattern true) in
  let mdb = eval_with Datalog.seminaive mrules in
  Alcotest.(check bool) "magic derives fewer facts" true
    (Datalog.fact_count mdb < Datalog.fact_count full);
  (* no adorned path fact with an unreachable source *)
  let bad =
    Datalog.tuples_of mdb ("path$bf", 2)
    |> List.filter (fun t ->
           match t.(0) with
           | Term.Atom s -> String.length s > 0 && s.[0] = 'u'
           | _ -> false)
  in
  Alcotest.(check int) "no unreachable paths" 0 (List.length bad)

(* --- Prop conversion --------------------------------------------------------- *)

let test_from_prop_equalities_solved () =
  let clauses =
    Parser.parse_clauses "gp_p(X) :- X = true. gp_q(Y) :- Y = Z, gp_p(Z)."
  in
  let rules = From_prop.convert ~domain:From_prop.bool_domain clauses in
  (* gp_p(true) becomes a fact *)
  Alcotest.(check bool) "equality became fact" true
    (List.exists
       (fun (r : Datalog.rule) ->
         r.Datalog.body = []
         && fst r.Datalog.head.Datalog.pred = "gp_p"
         && Term.equal r.Datalog.head.Datalog.args.(0) (a "true"))
       rules)

let test_from_prop_disjunction_expanded () =
  let clauses = Parser.parse_clauses "gp_p(X) :- (X = true ; X = false)." in
  let rules = From_prop.convert ~domain:From_prop.bool_domain clauses in
  let p_rules =
    List.filter
      (fun (r : Datalog.rule) -> fst r.Datalog.head.Datalog.pred = "gp_p")
      rules
  in
  Alcotest.(check int) "two alternatives" 2 (List.length p_rules)

let test_from_prop_var_facts_grounded () =
  let clauses = Parser.parse_clauses "gp_p(X, Y)." in
  let rules = From_prop.convert ~domain:From_prop.bool_domain clauses in
  let p_rules =
    List.filter
      (fun (r : Datalog.rule) -> fst r.Datalog.head.Datalog.pred = "gp_p")
      rules
  in
  Alcotest.(check int) "grounded over domain^2" 4 (List.length p_rules)

let test_from_prop_failing_clause_dropped () =
  let clauses = Parser.parse_clauses "gp_p(X) :- fail. gp_p(X) :- X = true." in
  let rules = From_prop.convert ~domain:From_prop.bool_domain clauses in
  let p_rules =
    List.filter
      (fun (r : Datalog.rule) -> fst r.Datalog.head.Datalog.pred = "gp_p")
      rules
  in
  Alcotest.(check int) "only the succeeding clause" 1 (List.length p_rules)

(* --- supplementary fold (tabling-side) ---------------------------------------- *)

let test_supplement_shapes () =
  let clauses =
    Parser.parse_clauses "h(X, Y) :- p(X, A), q(A, B), r(B, Y)."
  in
  let folded = Prax_tabling.Supplement.fold_program ~threshold:2 clauses in
  (* 3-literal body folds into a 2-step chain plus the final clause *)
  Alcotest.(check int) "clause count" 3 (List.length folded);
  List.iter
    (fun (c : Parser.clause) ->
      Alcotest.(check bool) "bodies at most 2 literals" true
        (List.length c.Parser.body <= 2))
    folded

let test_supplement_short_bodies_untouched () =
  let clauses = Parser.parse_clauses "p(X) :- q(X), r(X). s(a)." in
  let folded = Prax_tabling.Supplement.fold_program ~threshold:2 clauses in
  Alcotest.(check int) "unchanged" 2 (List.length folded)

let () =
  Alcotest.run "prax_bottomup"
    [
      ( "evaluation",
        [
          Alcotest.test_case "naive path" `Quick test_naive_path;
          Alcotest.test_case "seminaive = naive" `Quick
            test_seminaive_agrees_with_naive;
          Alcotest.test_case "cycles terminate" `Quick
            test_seminaive_cycle_terminates;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "query" `Quick test_query_filters;
        ] );
      ( "magic",
        [
          Alcotest.test_case "adornment" `Quick test_adorn_names;
          Alcotest.test_case "answers preserved" `Quick test_magic_same_answers;
          Alcotest.test_case "goal-directed" `Quick test_magic_goal_directed;
        ] );
      ( "prop conversion",
        [
          Alcotest.test_case "equalities" `Quick test_from_prop_equalities_solved;
          Alcotest.test_case "disjunction" `Quick
            test_from_prop_disjunction_expanded;
          Alcotest.test_case "fact grounding" `Quick
            test_from_prop_var_facts_grounded;
          Alcotest.test_case "failing clause" `Quick
            test_from_prop_failing_clause_dropped;
        ] );
      ( "supplement",
        [
          Alcotest.test_case "fold shapes" `Quick test_supplement_shapes;
          Alcotest.test_case "short bodies" `Quick
            test_supplement_short_bodies_untouched;
        ] );
    ]
