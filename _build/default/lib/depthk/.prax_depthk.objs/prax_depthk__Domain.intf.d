lib/depthk/domain.mli: Prax_logic Prax_tabling Subst Term
