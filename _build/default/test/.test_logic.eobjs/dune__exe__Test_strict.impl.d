test/test_strict.ml: Alcotest Analyze Ast Check Demand Eval List Option Prax_benchdata Prax_fp Prax_logic Prax_strict QCheck2 QCheck_alcotest String
