(* The observability layer: counter invariants on a real analysis run,
   timer nesting/reentrancy/exception safety, the runtime off switch,
   and the serialized schema (JSON round-trip, CSV shape). *)

module M = Prax_metrics.Metrics

let small_program =
  "app([], L, L).\n\
   app([H|T], L, [H|R]) :- app(T, L, R).\n\
   rev([], []).\n\
   rev([H|T], R) :- rev(T, RT), app(RT, [H], R)."

(* --- counter invariants -------------------------------------------------- *)

let test_engine_invariants () =
  M.reset ();
  let rep = Prax_ground.Analyze.analyze small_program in
  let c = M.counter_value in
  let lookups = c "engine.call_lookups" in
  Alcotest.(check bool) "analysis exercises the engine" true (lookups > 0);
  Alcotest.(check int) "lookups = hits + misses" lookups
    (c "engine.call_hits" + c "engine.call_misses");
  Alcotest.(check int) "offered = inserted + deduped"
    (c "engine.answers_offered")
    (c "engine.answers_inserted" + c "engine.answers_deduped");
  (* a miss is exactly a new call-table entry; one engine ran, so the
     global counter must equal its per-engine figure *)
  Alcotest.(check int) "misses = table entries"
    rep.Prax_ground.Analyze.engine_stats.Prax_tabling.Engine.table_entries
    (c "engine.call_misses");
  Alcotest.(check int) "resumptions agree with the per-engine stats"
    rep.Prax_ground.Analyze.engine_stats.Prax_tabling.Engine.resumptions
    (c "engine.consumer_resumptions");
  Alcotest.(check bool) "unification was counted" true (c "unify.attempts" > 0)

let test_phase_timers () =
  M.reset ();
  ignore (Prax_ground.Analyze.analyze small_program);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " advanced") true (M.timer_seconds name > 0.))
    [ "ground.preprocess"; "ground.evaluate"; "ground.collect" ]

(* --- timers -------------------------------------------------------------- *)

let spin () =
  (* enough work for a monotonic-clock delta on any platform *)
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  !x

let timing_of name =
  let snap = M.snapshot () in
  List.find (fun t -> String.equal t.M.timer_name name) snap.M.timers

let test_timer_nesting () =
  let outer = M.timer "test.outer" in
  let inner = M.timer "test.inner" in
  M.reset ();
  let r =
    M.time outer (fun () ->
        ignore (spin ());
        M.time inner spin)
  in
  Alcotest.(check bool) "time returns the body's result" true (r > 0);
  Alcotest.(check bool) "inner <= outer" true
    (M.seconds inner <= M.seconds outer);
  Alcotest.(check bool) "both advanced" true (M.seconds inner > 0.);
  let t = timing_of "test.inner" in
  Alcotest.(check (option string)) "dynamic parent attribution"
    (Some "test.outer") t.M.parent;
  Alcotest.(check int) "one activation" 1 t.M.activations

let test_timer_reentrancy () =
  let t = M.timer "test.reentrant" in
  M.reset ();
  let rec go n = M.time t (fun () -> if n > 0 then go (n - 1) else spin ()) in
  ignore (go 3);
  let tg = timing_of "test.reentrant" in
  Alcotest.(check int) "nested self-activations count once" 1 tg.M.activations;
  Alcotest.(check bool) "clock charged once, not per level" true
    (tg.M.timer_seconds > 0.)

let test_timer_exception_safety () =
  let t = M.timer "test.raising" in
  M.reset ();
  (try M.time t (fun () -> ignore (spin ()); raise Exit) with Exit -> ());
  let tg = timing_of "test.raising" in
  Alcotest.(check int) "activation recorded despite the raise" 1
    tg.M.activations;
  Alcotest.(check bool) "elapsed time recorded despite the raise" true
    (tg.M.timer_seconds > 0.);
  (* the timer must be reusable afterwards: depth guard back to zero *)
  ignore (M.time t spin);
  Alcotest.(check int) "timer usable after the raise" 2
    (timing_of "test.raising").M.activations

(* --- runtime switch ------------------------------------------------------ *)

let test_disabled () =
  let c = M.counter "test.switch" in
  let t = M.timer "test.switch_timer" in
  M.reset ();
  M.set_enabled false;
  Fun.protect
    ~finally:(fun () -> M.set_enabled true)
    (fun () ->
      M.incr c;
      M.add c 10;
      Alcotest.(check int) "bumps dropped while off" 0 (M.value c);
      let r = M.time t (fun () -> 42) in
      Alcotest.(check int) "time is transparent while off" 42 r;
      Alcotest.(check (float 0.)) "no time billed while off" 0. (M.seconds t);
      let snap = M.snapshot () in
      Alcotest.(check bool) "snapshot empty while off" true
        (snap.M.counters = [] && snap.M.gauges = [] && snap.M.timers = []));
  M.incr c;
  Alcotest.(check int) "recording resumes when re-enabled" 1 (M.value c)

(* --- cross-domain merge --------------------------------------------------- *)

let test_domain_merge () =
  (* the multicore batch contract: each worker domain accumulates bumps
     in its own slot array (spawned zeroed), exports at the end of its
     body, and the caller absorbs at join — counters sum, gauges
     max-merge, and nothing a worker did is visible before the absorb *)
  let c = M.counter "test.domain_counter" in
  let g = M.gauge "test.domain_gauge" in
  M.reset ();
  M.incr c;
  M.set g 50;
  let worker () =
    Alcotest.(check int) "worker starts from zero" 0 (M.value c);
    for _ = 1 to 5 do
      M.incr c
    done;
    M.set g 100;
    (* timers are main-domain-only: transparent in a worker *)
    let r = M.time (M.timer "test.domain_timer") (fun () -> 42) in
    Alcotest.(check int) "time is transparent off-main" 42 r;
    M.export_local ()
  in
  let d = Domain.spawn worker in
  let exported = Domain.join d in
  Alcotest.(check int) "worker bumps invisible before absorb" 1 (M.value c);
  M.absorb exported;
  Alcotest.(check int) "counters sum at absorb" 6 (M.value c);
  let gauge_value =
    let snap = M.snapshot () in
    (List.find
       (fun s -> String.equal s.M.name "test.domain_gauge")
       snap.M.gauges)
      .M.value
  in
  Alcotest.(check int) "gauges max-merge at absorb" 100 gauge_value;
  Alcotest.(check (float 0.)) "no worker timer time billed" 0.
    (M.timer_seconds "test.domain_timer")

(* --- serialization ------------------------------------------------------- *)

let test_json_roundtrip () =
  M.reset ();
  let c = M.counter ~units:"events" "test.json_counter" in
  M.add c 7;
  let g = M.gauge ~units:"bytes" "test.json_gauge" in
  M.set g 4096;
  ignore (M.time (M.timer "test.json_timer") spin);
  let doc =
    M.stats_doc ~tool:"test" ~analysis:"roundtrip" ~input:"-"
      ~phases:[ ("preprocess", 0.25); ("evaluate", 0.5) ]
      ~extra:[ ("note", M.Str "a \"quoted\"\nvalue") ]
      (M.snapshot ())
  in
  let reparsed = M.json_of_string (M.json_to_string doc) in
  Alcotest.(check bool) "document round-trips structurally" true
    (reparsed = doc);
  Alcotest.(check bool) "schema version present" true
    (M.member "schema_version" reparsed = Some (M.Int M.schema_version));
  Alcotest.(check bool) "schema name present" true
    (M.member "schema" reparsed = Some (M.Str M.schema_name));
  (* total_seconds is the exact sum of the phases *)
  Alcotest.(check bool) "total_seconds = sum of phases" true
    (M.member "total_seconds" reparsed = Some (M.Float 0.75))

let test_json_values () =
  List.iter
    (fun j ->
      Alcotest.(check bool) "value round-trips" true
        (M.json_of_string (M.json_to_string j) = j))
    [
      M.Null;
      M.Bool true;
      M.Int (-42);
      M.Float 0.1;
      M.Float 1.0;
      M.Float (-3.25e-7);
      M.Str "plain";
      M.Str "esc \\ \" \n \t \001";
      M.Arr [ M.Int 1; M.Str "two"; M.Arr []; M.Obj [] ];
      M.Obj [ ("a", M.Null); ("b", M.Arr [ M.Bool false ]) ];
    ];
  Alcotest.check_raises "trailing garbage rejected"
    (M.Json_error "trailing input at offset 2") (fun () ->
      ignore (M.json_of_string "1 x"))

let test_csv () =
  M.reset ();
  let c = M.counter "test.csv_counter" in
  M.incr c;
  M.incr c;
  let csv = M.snapshot_to_csv (M.snapshot ()) in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header row" "kind,name,value,unit" (List.hd lines);
  Alcotest.(check bool) "counter row present" true
    (List.mem "counter,test.csv_counter,2,events" lines);
  (* every data row has exactly the four header fields *)
  List.iter
    (fun l ->
      if l <> "" then
        Alcotest.(check int)
          ("four fields: " ^ l)
          4
          (List.length (String.split_on_char ',' l)))
    lines

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "engine invariants" `Quick test_engine_invariants;
          Alcotest.test_case "phase timers advance" `Quick test_phase_timers;
        ] );
      ( "timers",
        [
          Alcotest.test_case "nesting" `Quick test_timer_nesting;
          Alcotest.test_case "reentrancy" `Quick test_timer_reentrancy;
          Alcotest.test_case "exception safety" `Quick
            test_timer_exception_safety;
        ] );
      ("switch", [ Alcotest.test_case "disabled" `Quick test_disabled ]);
      ( "domains",
        [
          Alcotest.test_case "export/absorb merge" `Quick test_domain_merge;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "stats_doc round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json values" `Quick test_json_values;
          Alcotest.test_case "csv shape" `Quick test_csv;
        ] );
    ]
