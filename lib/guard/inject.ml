(** Fault-injection harness: guards that abort or raise at the Nth
    engine event.

    The point is to make the abort-anywhere property testable: for a
    deterministic engine run, event [n] identifies a unique program
    point, so [abort_at n] tears the evaluation down exactly there.
    Sweeping [n] over a run's event span (measured with
    {!Guard.counting}) and asserting after every abort that

    - the reported answers are a sound over-approximation restricted to
      completed-or-widened table entries, and
    - the same engine instance completes a fresh query afterwards

    proves that no engine event leaves the tables in a state the
    degradation machinery cannot repair.  [test/test_guard.ml] runs this
    sweep. *)

(** [abort_at n] trips a {!Guard.Fault} exactly at event [n] (one-shot:
    the engine stays usable afterwards without swapping guards). *)
let abort_at ?timeout ?max_steps ?max_table_bytes n : Guard.t =
  Guard.create ?timeout ?max_steps ?max_table_bytes
    ~on_event:(fun k ->
      if k = n then raise (Guard.Exhausted (Guard.Fault "injected-abort")))
    ()

(** [raise_at n exn] raises an arbitrary exception at event [n] —
    modelling a crashing user builtin rather than a budget trip.  The
    engine must recover its table invariants (discarding entries whose
    producers were interrupted) rather than degrade to a partial
    result. *)
let raise_at n exn : Guard.t =
  Guard.create ~on_event:(fun k -> if k = n then raise exn) ()

(** Event span of a deterministic run: execute [f] under a counting
    guard and return how many events it saw.  The sweep range for
    {!abort_at}. *)
let events_of (f : Guard.t -> unit) : int =
  let g = Guard.counting () in
  f g;
  Guard.steps g
