test/test_engines_agree.mli:
