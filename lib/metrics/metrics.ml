(** Engine observability: process-wide counters, gauges, and hierarchical
    phase timers, with machine-readable snapshots.

    See docs/METRICS.md for the full metric catalogue and the output
    schema.  Design constraints, in order:

    - near-zero overhead on hot paths: a counter bump is one load of the
      enable flag plus one unboxed integer store; timers read the
      monotonic clock only at the outermost entry/exit of a phase;
    - a single process-wide registry, so the CLIs and the bench harness
      can snapshot "everything that happened" without threading handles
      through every layer (per-engine figures stay available through
      [Engine.stats]);
    - a versioned, documented serialization ({!stats_doc}) that a
      benchmark harness can consume without scraping human output. *)

let schema_name = "prax.stats"

(* v2 (additive over v1): evaluation [status] / [partial_reason] /
   [widened_entries] and the [budget] object on governed runs, plus the
   guard.* / engine.aborts / engine.forced_completions / datalog.aborts
   counters.  v1 documents remain valid v2 prefixes.

   v3 (additive over v2): the term-representation counters
   intern.symbols, hashcons.hits, hashcons.misses introduced with
   interned symbols and hash-consed terms.  No field changed shape; v2
   consumers that ignore unknown counters keep working.

   v4 (additive over v3): the supervised-batch counters — serve.jobs,
   serve.workers_spawned, serve.crashes, serve.watchdog_kills,
   serve.retries, serve.backoff_ms, serve.bad_frames, serve.partials,
   serve.cache_answers — and the persistent-store counters store.hits,
   store.misses, store.writes, store.corrupt_detected,
   store.version_skew.  The batch surface also emits per-batch
   documents with analysis="batch".  No field changed shape.

   v5 (additive over v4): the analysis-daemon family — daemon.accepted,
   daemon.requests, daemon.shed_queue, daemon.shed_rate,
   daemon.rejected_bad_frame, daemon.warm_hits, daemon.drain_ms and the
   gauges daemon.queue_depth / daemon.inflight — plus store.tmp_swept
   (orphaned write-temp files removed at store open).  No field changed
   shape.

   v6 (additive over v5): the incremental re-analysis family — the
   counters incr.sccs, incr.invalidated, incr.spliced (condensation
   SCCs seen / recomputed / restored from cached fragments) and the
   gauge incr.cone_frac (invalidated share of the condensation, in
   permille: 1000 = full recompute).  The bump also versions the
   per-SCC fragment cache: stored fragments carry the stats schema
   version in their store key, so a v5 store never feeds a v6 reader.
   No field changed shape. *)
let schema_version = 6
let min_supported_schema_version = 1

let schema_version_supported v =
  v >= min_supported_schema_version && v <= schema_version

(* --- registry ----------------------------------------------------------- *)

(* Cells carry metadata plus a slot index into a per-domain value array
   (see "multicore" below); the registry tables themselves are shared
   and mutated only under [reg_mutex]. *)
type cell = {
  c_name : string;
  c_units : string;
  c_doc : string;
  c_idx : int;
}

type counter = cell
type gauge = cell

type timer = {
  t_name : string;
  t_doc : string;
  mutable t_ns : int64;  (** cumulative nanoseconds, outermost activations *)
  mutable t_count : int;  (** completed outermost activations *)
  mutable t_depth : int;  (** reentrancy guard *)
  mutable t_start : int64;  (** start stamp of the running activation *)
  mutable t_parent : string option;
      (** innermost timer running when this one first started *)
}

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let counters_tbl : (string, cell) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, cell) Hashtbl.t = Hashtbl.create 16
let timers_tbl : (string, timer) Hashtbl.t = Hashtbl.create 32

(* --- multicore ----------------------------------------------------------

   Counter and gauge values live in a per-domain int array indexed by
   the cell's slot, so a bump is still a plain (unsynchronized) array
   store: worker domains accumulate privately and the batch runner adds
   the whole array back into the main domain at join ([export_local] /
   [absorb]).  Registration is rare and shared, hence mutex-protected.
   Timers keep their hierarchical bookkeeping but record only
   main-domain activity — a worker domain's [time] is just [f ()]. *)

let reg_mutex = Mutex.create ()
let slot_count = ref 0

let values_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Array.make (max 64 !slot_count) 0))

let slot (c : cell) : int array * int =
  let r = Domain.DLS.get values_key in
  let a = !r in
  if c.c_idx < Array.length a then (a, c.c_idx)
  else begin
    let bigger = Array.make (max (2 * Array.length a) (c.c_idx + 1)) 0 in
    Array.blit a 0 bigger 0 (Array.length a);
    r := bigger;
    (bigger, c.c_idx)
  end

let main_domain = Domain.self ()
let in_main_domain () = Domain.self () = main_domain

(* innermost running timers, for parent attribution (main domain only) *)
let running : timer list ref = ref []

let find_or_add tbl name make =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
          let c = make () in
          Hashtbl.add tbl name c;
          c)

let fresh_idx () =
  (* called under [reg_mutex] via find_or_add *)
  let i = !slot_count in
  incr slot_count;
  i

let counter ?(units = "events") ?(doc = "") name : counter =
  find_or_add counters_tbl name (fun () ->
      { c_name = name; c_units = units; c_doc = doc; c_idx = fresh_idx () })

let gauge ?(units = "") ?(doc = "") name : gauge =
  find_or_add gauges_tbl name (fun () ->
      { c_name = name; c_units = units; c_doc = doc; c_idx = fresh_idx () })

let timer ?(doc = "") name : timer =
  find_or_add timers_tbl name (fun () ->
      {
        t_name = name;
        t_doc = doc;
        t_ns = 0L;
        t_count = 0;
        t_depth = 0;
        t_start = 0L;
        t_parent = None;
      })

let incr c =
  if !enabled_flag then begin
    let a, i = slot c in
    a.(i) <- a.(i) + 1
  end

let add c n =
  if !enabled_flag then begin
    let a, i = slot c in
    a.(i) <- a.(i) + n
  end

let value c =
  let a, i = slot c in
  a.(i)

let set g v =
  if !enabled_flag then begin
    let a, i = slot g in
    a.(i) <- v
  end

let now_ns () = Monotonic_clock.now ()

let time t f =
  if (not !enabled_flag) || not (in_main_domain ()) then f ()
  else begin
    if t.t_depth = 0 then begin
      (match !running with
      | outer :: _ when t.t_parent = None && outer != t ->
          t.t_parent <- Some outer.t_name
      | _ -> ());
      t.t_start <- now_ns ()
    end;
    t.t_depth <- t.t_depth + 1;
    running := t :: !running;
    let leave () =
      (match !running with _ :: rest -> running := rest | [] -> ());
      t.t_depth <- t.t_depth - 1;
      if t.t_depth = 0 then begin
        t.t_ns <- Int64.add t.t_ns (Int64.sub (now_ns ()) t.t_start);
        t.t_count <- t.t_count + 1
      end
    in
    match f () with
    | x ->
        leave ();
        x
    | exception e ->
        leave ();
        raise e
  end

let seconds t = Int64.to_float t.t_ns /. 1e9

let counter_value name =
  match Hashtbl.find_opt counters_tbl name with Some c -> value c | None -> 0

let timer_seconds name =
  match Hashtbl.find_opt timers_tbl name with Some t -> seconds t | None -> 0.

let reset () =
  let r = Domain.DLS.get values_key in
  Array.fill !r 0 (Array.length !r) 0;
  Hashtbl.iter
    (fun _ t ->
      t.t_ns <- 0L;
      t.t_count <- 0)
    timers_tbl

(* --- cross-domain merge -------------------------------------------------- *)

type export = int array

let export_local () : export = Array.copy !(Domain.DLS.get values_key)

let absorb (e : export) =
  (* counters accumulate, so they add; a gauge is a point-in-time
     measurement, so the merged value keeps the largest observation *)
  Hashtbl.iter
    (fun _ c ->
      if c.c_idx < Array.length e && e.(c.c_idx) <> 0 then begin
        let a, i = slot c in
        a.(i) <- a.(i) + e.(c.c_idx)
      end)
    counters_tbl;
  Hashtbl.iter
    (fun _ g ->
      if g.c_idx < Array.length e then begin
        let a, i = slot g in
        a.(i) <- max a.(i) e.(g.c_idx)
      end)
    gauges_tbl

(* --- snapshots ---------------------------------------------------------- *)

type sample = { name : string; value : int; units : string; doc : string }

type timing = {
  timer_name : string;
  timer_seconds : float;
  activations : int;
  parent : string option;
  timer_doc : string;
}

type snapshot = {
  counters : sample list;
  gauges : sample list;
  timers : timing list;
}

let sorted_samples tbl =
  Hashtbl.fold
    (fun _ c acc ->
      { name = c.c_name; value = value c; units = c.c_units; doc = c.c_doc }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.name b.name)

let snapshot () : snapshot =
  if not !enabled_flag then { counters = []; gauges = []; timers = [] }
  else
    {
      counters = sorted_samples counters_tbl;
      gauges = sorted_samples gauges_tbl;
      timers =
        Hashtbl.fold
          (fun _ t acc ->
            {
              timer_name = t.t_name;
              timer_seconds = seconds t;
              activations = t.t_count;
              parent = t.t_parent;
              timer_doc = t.t_doc;
            }
            :: acc)
          timers_tbl []
        |> List.sort (fun a b -> String.compare a.timer_name b.timer_name);
    }

(* --- JSON --------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let float_repr f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_to_string (j : json) : string =
  let b = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s -> escape_string b s
    | Arr els ->
        Buffer.add_char b '[';
        List.iteri
          (fun i e ->
            if i > 0 then Buffer.add_char b ',';
            go e)
          els;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

exception Json_error of string

(* A minimal strict JSON reader, enough to round-trip {!json_to_string}
   output in tests and small harnesses.  Not a streaming parser. *)
let json_of_string (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = s.[!pos] in
      Stdlib.incr pos;
      c
    end
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      Stdlib.incr pos
    done
  in
  let expect c =
    if next () <> c then fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              Buffer.add_utf_8_uchar b (Uchar.of_int code)
          | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      Stdlib.incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        Stdlib.incr pos;
        skip_ws ();
        if peek () = Some '}' then (Stdlib.incr pos; Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> fields ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        Stdlib.incr pos;
        skip_ws ();
        if peek () = Some ']' then (Stdlib.incr pos; Arr [])
        else
          let rec els acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> els (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          els []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- serialization of snapshots ----------------------------------------- *)

let snapshot_to_json (snap : snapshot) : json =
  Obj
    [
      ("counters", Obj (List.map (fun s -> (s.name, Int s.value)) snap.counters));
      ("gauges", Obj (List.map (fun s -> (s.name, Int s.value)) snap.gauges));
      ( "timers",
        Obj
          (List.map
             (fun t ->
               ( t.timer_name,
                 Obj
                   [
                     ("seconds", Float t.timer_seconds);
                     ("count", Int t.activations);
                     ( "parent",
                       match t.parent with None -> Null | Some p -> Str p );
                   ] ))
             snap.timers) );
    ]

let stats_doc ~tool ~analysis ~input ?(phases = []) ?(extra = [])
    (snap : snapshot) : json =
  let header =
    [
      ("schema", Str schema_name);
      ("schema_version", Int schema_version);
      ("tool", Str tool);
      ("analysis", Str analysis);
      ("input", Str input);
    ]
  in
  let phase_fields =
    match phases with
    | [] -> []
    | _ ->
        let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. phases in
        [
          ("phases", Obj (List.map (fun (n, s) -> (n, Float s)) phases));
          ("total_seconds", Float total);
        ]
  in
  match snapshot_to_json snap with
  | Obj body -> Obj (header @ phase_fields @ extra @ body)
  | _ -> assert false

let snapshot_to_csv (snap : snapshot) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "kind,name,value,unit\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "counter,%s,%d,%s\n" s.name s.value s.units))
    snap.counters;
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "gauge,%s,%d,%s\n" s.name s.value s.units))
    snap.gauges;
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "timer,%s,%s,seconds\n" t.timer_name
           (float_repr t.timer_seconds));
      Buffer.add_string b
        (Printf.sprintf "timer_count,%s,%d,activations\n" t.timer_name
           t.activations))
    snap.timers;
  Buffer.contents b

let snapshot_to_human (snap : snapshot) : string =
  let b = Buffer.create 1024 in
  let rule title = Buffer.add_string b (title ^ ":\n") in
  if snap.counters <> [] then begin
    rule "counters";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %12d %s\n" s.name s.value s.units))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    rule "gauges";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %12d %s\n" s.name s.value s.units))
      snap.gauges
  end;
  if snap.timers <> [] then begin
    rule "timers";
    List.iter
      (fun t ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %12.6f s  x%d%s\n" t.timer_name
             t.timer_seconds t.activations
             (match t.parent with
             | None -> ""
             | Some p -> "  (under " ^ p ^ ")")))
      snap.timers
  end;
  if snap.counters = [] && snap.gauges = [] && snap.timers = [] then
    Buffer.add_string b "(metrics disabled or empty)\n";
  Buffer.contents b
