(** A GAIA-style special-purpose top-down abstract interpreter for the
    Prop domain — the Table 2 comparator.

    Unlike the declarative route (abstract program + tabled engine), this
    is a hand-built fixpoint engine: it interprets the Prop abstraction
    of each clause directly with boolean-function operations
    (conjoin-iff, call-pattern projection, output extension), memoizes
    call patterns, and iterates chaotically until the call-pattern table
    is stable.  The abstract clause bodies are produced by
    {!Prax_ground.Transform}, so both analyzers implement *exactly the
    same analysis* — results are checked identical in the tests, as the
    paper notes for XSB vs GAIA. *)

open Prax_logic

module Make (B : Boolfun.S) = struct
  type clause_info = {
    nvars : int;  (** clause variables are positions 0..nvars-1 *)
    head_args : int list;  (** positions of the head argument variables *)
    body : Term.t list;
  }

  type pred_info = { arity : int; clauses : clause_info list }

  module Key = struct
    type t = string * int * B.t

    let equal (n1, a1, b1) (n2, a2, b2) =
      String.equal n1 n2 && a1 = a2 && B.equal b1 b2

    let hash (n, a, b) = Hashtbl.hash (n, a, B.hash b)
  end

  module KT = Hashtbl.Make (Key)

  type t = {
    preds : (string * int, pred_info) Hashtbl.t;
    (* call-pattern memo: (pred, input function over args) -> output *)
    memo : B.t ref KT.t;
    mutable order : Key.t list;  (** discovery order, reversed *)
    mutable changed : bool;
  }

  (* canonicalize a clause: variables to positions 0..n-1 *)
  let prepare_clause (c : Parser.clause) : clause_info =
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let remap t =
      Term.map_vars
        (fun v ->
          match Hashtbl.find_opt tbl v with
          | Some p -> Term.var p
          | None ->
              let p = !next in
              incr next;
              Hashtbl.add tbl v p;
              Term.var p)
        t
    in
    let head = remap c.Parser.head in
    let body = List.map remap c.Parser.body in
    let head_args =
      Term.args_of head |> Array.to_list
      |> List.map (function
           | Term.Var p -> p
           | _ ->
               invalid_arg
                 "Absint: abstract clause heads must have variable arguments")
    in
    { nvars = !next; head_args; body }

  let create (abstract_clauses : Parser.clause list) : t =
    let by_pred = Hashtbl.create 32 in
    List.iter
      (fun c ->
        match Term.functor_of c.Parser.head with
        | Some p ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_pred p) in
            Hashtbl.replace by_pred p (c :: prev)
        | None -> ())
      abstract_clauses;
    let preds = Hashtbl.create 32 in
    Hashtbl.iter
      (fun (name, arity) cs ->
        Hashtbl.replace preds (name, arity)
          { arity; clauses = List.rev_map prepare_clause cs })
      by_pred;
    { preds; memo = KT.create 64; order = []; changed = false }

  (* variable positions of call-argument terms (always variables in the
     transformed program) *)
  let arg_positions args =
    Array.to_list args
    |> List.map (function
         | Term.Var p -> `Pos p
         | Term.Atom "true" -> `True
         | Term.Atom "false" -> `False
         | _ -> invalid_arg "Absint: unexpected call argument")

  let rec eval_body (st : t) nvars (sigma : B.t) (goals : Term.t list) : B.t =
    match goals with
    | [] -> sigma
    | g :: rest ->
        if B.is_empty sigma then sigma
        else
          let sigma' = eval_goal st nvars sigma g in
          eval_body st nvars sigma' rest

  and eval_goal st nvars sigma (g : Term.t) : B.t =
    match g with
    | Term.Atom "true" -> sigma
    | Term.Atom ("fail" | "false") -> B.bottom nvars
    | Term.Struct (",", [| a; b |], _) ->
        eval_body st nvars sigma [ a; b ]
    | Term.Struct (";", [| a; b |], _) ->
        let s1 = eval_body st nvars sigma (Term.conjuncts a) in
        let s2 = eval_body st nvars sigma (Term.conjuncts b) in
        B.disj s1 s2
    | Term.Struct ("=", [| Term.Var x; rhs |], _) -> (
        match rhs with
        | Term.Atom "true" -> B.conj sigma (B.lit nvars x true)
        | Term.Atom "false" -> B.conj sigma (B.lit nvars x false)
        | Term.Var y -> B.conj sigma (B.iff_c nvars x [ y ])
        | _ -> invalid_arg "Absint: unexpected = rhs")
    | Term.Struct ("iff", args, _) -> (
        match arg_positions args with
        | `Pos x :: rest ->
            let set =
              List.map
                (function
                  | `Pos p -> p
                  | `True | `False ->
                      invalid_arg "Absint: iff over constants")
                rest
            in
            B.conj sigma (B.iff_c nvars x set)
        | _ -> invalid_arg "Absint: iff lhs must be a variable")
    | Term.Struct (name, args, _) -> solve_literal st nvars sigma name args
    | Term.Atom name -> solve_literal st nvars sigma name [||]
    | _ -> invalid_arg "Absint: unexpected goal"

  and solve_literal st nvars sigma name args =
    let arity = Array.length args in
    match Hashtbl.find_opt st.preds (name, arity) with
    | None -> sigma (* unknown predicate: no information *)
    | Some _ ->
        let poss =
          arg_positions args
          |> List.map (function
               | `Pos p -> p
               | `True | `False ->
                   invalid_arg "Absint: constant call argument")
        in
        let beta_in = B.project sigma poss in
        let beta_out = solve_call st (name, arity) beta_in in
        B.conj sigma (B.extend beta_out poss nvars)

  and solve_call st (name, arity) (beta_in : B.t) : B.t =
    let key = (name, arity, beta_in) in
    match KT.find_opt st.memo key with
    | Some out -> !out
    | None ->
        let out = ref (B.bottom arity) in
        KT.add st.memo key out;
        st.order <- key :: st.order;
        st.changed <- true;
        (* compute a first approximation immediately *)
        recompute st key;
        !out

  and recompute st ((name, arity, beta_in) as key) =
    let info = Hashtbl.find st.preds (name, arity) in
    let out_ref = KT.find st.memo key in
    let result =
      List.fold_left
        (fun acc ci ->
          let sigma = B.top ci.nvars in
          let sigma = B.conj sigma (B.extend beta_in ci.head_args ci.nvars) in
          let sigma = eval_body st ci.nvars sigma ci.body in
          B.disj acc (B.project sigma ci.head_args))
        (B.bottom arity) info.clauses
    in
    if not (B.equal result !out_ref) then begin
      out_ref := result;
      st.changed <- true
    end

  (* chaotic iteration to the fixpoint *)
  let stabilize st =
    let rec loop () =
      st.changed <- false;
      List.iter (fun key -> recompute st key) (List.rev st.order);
      if st.changed then loop ()
    in
    loop ()

  type result = { pred : string * int; success : B.t; definite : bool array }

  (** Analyze all predicates of the (already transformed) program from
      open (top) call patterns. *)
  let analyze (abstract_clauses : Parser.clause list) : result list =
    let st = create abstract_clauses in
    let preds =
      Hashtbl.fold (fun p _ acc -> p :: acc) st.preds [] |> List.sort compare
    in
    List.iter
      (fun (name, arity) ->
        ignore (solve_call st (name, arity) (B.top arity)))
      preds;
    stabilize st;
    List.map
      (fun (name, arity) ->
        let out = !(KT.find st.memo (name, arity, B.top arity)) in
        { pred = (name, arity); success = out; definite = B.definite out })
      preds
end
