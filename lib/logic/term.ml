(** Interned, hash-consed first-order terms (see term.mli for the
    contract).

    Every [Struct] node carries a packed meta word:

    {v
      bits 0..29   structural hash (30 bits, like Hashtbl.hash's range)
      bit  30      ground flag (no variables anywhere below)
      bits 31..    node count, saturating at 2^30 - 1
    v}

    so [hash], [size], and [is_ground] are O(1) field reads.  {e Ground}
    [Struct] nodes are hash-consed through a weak table keyed by the
    meta word and shallow child identity, and [Atom] nodes are unique
    per interned name, which gives the central invariant:

    {e structurally equal ground callable terms are physically equal.}

    Non-ground nodes are deliberately {e not} interned: they are built
    from freshly renamed variables on every clause activation, so a
    weak-table lookup could never find sharing — it would only promote
    short-lived garbage and grow the table.  (Restricting consing to
    the ground fragment is what makes the representation a net win; the
    all-nodes variant measured ~1.3x {e slower} on the Table-1 corpus.)
    Equality on the non-ground fragment falls back to a structural walk
    whose leaf comparisons are O(1) thanks to the invariant above.

    [Var]/[Int] leaves are not globally unique (fresh variables are
    born unique anyway), so shallow child comparison checks them
    structurally — a constant-time test.  Everything else reduces to
    pointer comparison. *)

module Metrics = Prax_metrics.Metrics

let m_hc_hits =
  Metrics.counter ~units:"nodes"
    ~doc:"ground structure constructions answered by an existing hash-consed \
          node"
    "hashcons.hits"

let m_hc_misses =
  Metrics.counter ~units:"nodes"
    ~doc:"ground structure constructions that allocated a new hash-consed node"
    "hashcons.misses"

type t =
  | Var of int
  | Int of int
  | Atom of string
  | Struct of string * t array * int

(* --- meta word --------------------------------------------------------- *)

let hash_bits = 30
let hash_mask = (1 lsl hash_bits) - 1
let ground_bit = 1 lsl hash_bits
let size_shift = hash_bits + 1
let max_size = (1 lsl 30) - 1

let meta_hash m = m land hash_mask
let meta_ground m = m land ground_bit <> 0
let meta_size m = m lsr size_shift

(* leaf hashes: cheap, deterministic, spread over the 30-bit range *)
let hash_var i = (i * 0x01000193) land hash_mask
let hash_int i = ((i * 0x27d4eb2f) lxor 0x165667b1) land hash_mask

let hash = function
  | Var i -> hash_var i
  | Int i -> hash_int i
  | Atom a -> Hashtbl.hash a
  | Struct (_, _, m) -> meta_hash m

let size = function
  | Var _ | Int _ | Atom _ -> 1
  | Struct (_, _, m) -> meta_size m

let is_ground = function
  | Var _ -> false
  | Int _ | Atom _ -> true
  | Struct (_, _, m) -> meta_ground m

(* --- equality ---------------------------------------------------------- *)

(* Shallow equality for hash-consed children: interned nodes compare by
   pointer, non-unique leaves structurally.  O(1). *)
let subterm_equal x y =
  x == y
  ||
  match (x, y) with
  | Var i, Var j -> i = j
  | Int i, Int j -> i = j
  | _ -> false

let rec equal t1 t2 =
  t1 == t2
  ||
  match (t1, t2) with
  | Var i, Var j -> i = j
  | Int i, Int j -> i = j
  | Atom a, Atom b -> String.equal a b
  | Struct (f, a1, m1), Struct (g, a2, m2) ->
      (* equal ground structs are hash-consed, hence physically equal —
         already refuted above; the structural walk is only ever needed
         on the non-ground fragment *)
      m1 = m2
      && (not (meta_ground m1))
      && String.equal f g
      && Array.length a1 = Array.length a2
      && equal_args a1 a2 0
  | _ -> false

and equal_args a1 a2 i =
  i >= Array.length a1 || (equal a1.(i) a2.(i) && equal_args a1 a2 (i + 1))

let rec compare t1 t2 =
  if t1 == t2 then 0
  else
    match (t1, t2) with
    | Var i, Var j -> Int.compare i j
    | Var _, _ -> -1
    | _, Var _ -> 1
    | Int i, Int j -> Int.compare i j
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Atom a, Atom b -> String.compare a b
    | Atom _, _ -> -1
    | _, Atom _ -> 1
    | Struct (f, a1, _), Struct (g, a2, _) ->
        let c = String.compare f g in
        if c <> 0 then c
        else
          let c = Int.compare (Array.length a1) (Array.length a2) in
          if c <> 0 then c else compare_args a1 a2 0

and compare_args a1 a2 i =
  if i >= Array.length a1 then 0
  else
    let c = compare a1.(i) a2.(i) in
    if c <> 0 then c else compare_args a1 a2 (i + 1)

(* --- hash-consing ------------------------------------------------------ *)

module HC = Weak.Make (struct
  type nonrec t = t

  let hash = function
    | Struct (_, _, m) -> meta_hash m
    | Var i -> hash_var i
    | Int i -> hash_int i
    | Atom a -> Hashtbl.hash a

  (* Only Struct nodes are interned; candidate and slot agree on the
     meta word (hash, size, ground) before children are looked at, and
     children of both sides are already canonical, so the child test is
     shallow. *)
  let equal a b =
    match (a, b) with
    | Struct (f, a1, m1), Struct (g, a2, m2) ->
        m1 = m2 && String.equal f g
        && Array.length a1 = Array.length a2
        &&
        let n = Array.length a1 in
        let rec go i = i >= n || (subterm_equal a1.(i) a2.(i) && go (i + 1)) in
        go 0
    | _ -> a == b
end)

(* Interning state is domain-local, like the symbol table: a worker
   domain of the multicore batch runner splits off a copy of its
   parent's tables at spawn (re-adding the live hash-consed nodes, so
   pre-spawn terms like [true_] keep their canonical identity in every
   domain) and new nodes stay private to the domain.  The physical-
   equality invariant therefore holds {e within} each domain, which is
   all the engine ever compares — jobs exchange plain strings. *)
type istate = {
  hc : HC.t;
  mutable atoms : t array;  (* unique Atom node per symbol id *)
  mutable gensym : int;
}

let ikey : istate Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun (p : istate) ->
      let hc = HC.create 4096 in
      HC.iter (fun node -> HC.add hc node) p.hc;
      { hc; atoms = Array.copy p.atoms; gensym = p.gensym })
    (fun () ->
      { hc = HC.create 4096; atoms = Array.make 256 (Int 0); gensym = 0 })

(* [fname] must already be a canonical (interned) string and [fh] its
   hash; [args] is owned by the node if it is inserted.  Only ground
   nodes go through the weak table: a non-ground node carries variables
   that are fresh per clause activation, so interning it could never
   find sharing — it would only keep transient garbage alive. *)
let cons_struct fh fname args =
  let n = Array.length args in
  let h = ref ((fh * 31) + n)
  and sz = ref 1
  and gr = ref true in
  for i = 0 to n - 1 do
    let a = args.(i) in
    h := ((!h * 65599) + hash a) land hash_mask;
    sz := !sz + size a;
    if not (is_ground a) then gr := false
  done;
  let sz = if !sz > max_size then max_size else !sz in
  let meta =
    (sz lsl size_shift) lor (if !gr then ground_bit else 0) lor (!h land hash_mask)
  in
  let candidate = Struct (fname, args, meta) in
  if not !gr then candidate
  else begin
    let node = HC.merge (Domain.DLS.get ikey).hc candidate in
    if node == candidate then Metrics.incr m_hc_misses
    else Metrics.incr m_hc_hits;
    node
  end

let atom s =
  let sym = Symbol.intern s in
  let id = (sym :> int) in
  let st = Domain.DLS.get ikey in
  let cap = Array.length st.atoms in
  if id >= cap then begin
    let bigger = Array.make (max (2 * cap) (id + 1)) (Int 0) in
    Array.blit st.atoms 0 bigger 0 cap;
    st.atoms <- bigger
  end;
  match st.atoms.(id) with
  | Atom _ as a -> a
  | _ ->
      let a = Atom (Symbol.name sym) in
      st.atoms.(id) <- a;
      a

(* small-id caches: canonical forms renumber variables from 0 and the
   corpus programs use small integer constants, so these hit constantly *)
let small_vars = Array.init 1024 (fun i -> Var i)
let small_ints = Array.init 1024 (fun i -> Int i)

let var i = if i >= 0 && i < 1024 then small_vars.(i) else Var i
let int i = if i >= 0 && i < 1024 then small_ints.(i) else Int i

let mk name args =
  if Array.length args = 0 then atom name
  else
    let id = Symbol.intern name in
    cons_struct (Symbol.hash id) (Symbol.name id) args

(* rebuild with a functor name taken from an existing node (already
   canonical): skips the intern lookup *)
let remk fname args = cons_struct (Hashtbl.hash fname) fname args

let rebuild t args =
  match t with
  | Struct (f, _, _) -> remk f args
  | _ -> invalid_arg "Term.rebuild: not a structure"

let mkl name args =
  match args with [] -> atom name | _ -> mk name (Array.of_list args)

(* --- variable supply --------------------------------------------------- *)

let fresh_var () =
  let st = Domain.DLS.get ikey in
  st.gensym <- st.gensym + 1;
  var st.gensym

let fresh_id () =
  let st = Domain.DLS.get ikey in
  st.gensym <- st.gensym + 1;
  st.gensym

(** Reset the (domain-local) variable supply.  Only for tests that need
    reproducible variable numbering. *)
let reset_gensym () = (Domain.DLS.get ikey).gensym <- 0

let true_ = atom "true"
let fail_ = atom "fail"
let nil = atom "[]"
let cons h t = mk "." [| h; t |]

let rec of_list = function [] -> nil | x :: xs -> cons x (of_list xs)

(** Functor name and arity of a callable term; variables and integers have
    none. *)
let functor_of = function
  | Atom a -> Some (a, 0)
  | Struct (f, args, _) -> Some (f, Array.length args)
  | Var _ | Int _ -> None

let args_of = function Struct (_, args, _) -> args | _ -> [||]

let is_callable = function Atom _ | Struct _ -> true | Var _ | Int _ -> false

(** Fold over all variable ids occurring in [t]; ground subterms carry
    none and are skipped in O(1). *)
let rec fold_vars f acc = function
  | Var i -> f acc i
  | Int _ | Atom _ -> acc
  | Struct (_, args, m) ->
      if meta_ground m then acc else Array.fold_left (fold_vars f) acc args

(** Variable ids in order of first occurrence, without duplicates. *)
let vars t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      out := i :: !out
    end
  in
  let rec go = function
    | Var i -> add i
    | Int _ | Atom _ -> ()
    | Struct (_, args, m) -> if not (meta_ground m) then Array.iter go args
  in
  go t;
  List.rev !out

(* Short-circuits on the first occurrence; ground subtrees cannot
   contain the variable and are skipped in O(1). *)
let rec occurs id t =
  match t with
  | Var i -> i = id
  | Int _ | Atom _ -> false
  | Struct (_, args, m) ->
      (not (meta_ground m))
      &&
      let n = Array.length args in
      let rec go i = i < n && (occurs id args.(i) || go (i + 1)) in
      go 0

let rec depth = function
  | Var _ | Int _ | Atom _ -> 1
  | Struct (_, args, _) ->
      1 + Array.fold_left (fun d t -> max d (depth t)) 0 args

(** Apply [f] to every variable, rebuilding the term.  Ground subterms
    have no variables and are returned as-is; a node whose children all
    come back physically unchanged is itself returned unchanged. *)
let rec map_vars f t =
  match t with
  | Var i -> f i
  | Int _ | Atom _ -> t
  | Struct (g, args, m) ->
      if meta_ground m then t
      else begin
        let changed = ref false in
        let args' =
          Array.map
            (fun a ->
              let a' = map_vars f a in
              if a' != a then changed := true;
              a')
            args
        in
        if !changed then remk g args' else t
      end

(** Rename all variables in [t] to fresh ones, consistently.  The
    renaming table is a linear scan over a small array — terms on the
    renaming paths (canonical calls and answers) carry few distinct
    variables, so this beats a per-call hash table. *)
let rename t =
  if is_ground t then t
  else begin
    let olds = ref (Array.make 8 0) in
    let news = ref (Array.make 8 true_) in
    let n = ref 0 in
    map_vars
      (fun i ->
        let arr = !olds and k = !n in
        let rec find j =
          if j >= k then -1 else if arr.(j) = i then j else find (j + 1)
        in
        let j = find 0 in
        if j >= 0 then !news.(j)
        else begin
          if k >= Array.length arr then begin
            let bigger = Array.make (2 * k) 0 in
            Array.blit arr 0 bigger 0 k;
            olds := bigger;
            let bigger' = Array.make (2 * k) true_ in
            Array.blit !news 0 bigger' 0 k;
            news := bigger'
          end;
          let v = fresh_var () in
          !olds.(k) <- i;
          !news.(k) <- v;
          incr n;
          v
        end)
      t
  end

(** Flatten a [','/2] tree into the list of conjuncts.  Accumulator
    formulation: linear even on left-leaning conjunction trees. *)
let conjuncts t =
  let rec go t acc =
    match t with
    | Struct (",", [| a; b |], _) -> go a (go b acc)
    | Atom "true" -> acc
    | t -> t :: acc
  in
  go t []

let rec conj = function
  | [] -> true_
  | [ g ] -> g
  | g :: gs -> mk "," [| g; conj gs |]

(** Decompose a list term into [Some elements] if proper, [None] otherwise. *)
let rec list_elements = function
  | Atom "[]" -> Some []
  | Struct (".", [| h; t |], _) -> (
      match list_elements t with Some es -> Some (h :: es) | None -> None)
  | _ -> None
