(** Analysis over an infinite abstract domain with on-the-fly widening —
    the Section 6.1 extension the paper describes but does not build.

    The domain is successor arithmetic: programs compute over numerals
    [0, s(0), s(s(0)), …], so predicates like

    {[ nat(0).  nat(s(X)) :- nat(X). ]}

    have infinitely many answers and plain tabled evaluation cannot
    terminate.  The analysis abstracts each answer's numeral arguments by
    their magnitude and, once a table entry has seen numerals beyond a
    cutoff at some argument position, *widens* that position to ω
    (accelerating the ascending chain 0, 1, 2, … to its limit), exactly
    the iterate-extrapolation scheme of Cousot–Cousot widening.  The
    widening operator consults the answers already recorded in the table
    — the capability the paper says on-the-fly approximation needs from
    the engine ({!Prax_tabling.Engine.hooks.widen}).

    Calls are kept finite symmetrically: numeral call arguments deeper
    than the cutoff are generalized to fresh variables, a sound
    over-approximation (a more general call subsumes the original). *)

open Prax_logic

let omega = Term.atom "$omega"

(** Depth of a numeral [s^k(z)]: [Some (k, base)] where [base] is [`Zero]
    for a complete numeral or [`Var]/[`Omega] for a partial one. *)
let rec numeral_shape = function
  | Term.Int 0 | Term.Atom "0" -> Some (0, `Zero)
  | Term.Atom "$omega" -> Some (0, `Omega)
  | Term.Var _ -> Some (0, `Var)
  | Term.Struct ("s", [| t |], _) -> (
      match numeral_shape t with
      | Some (k, base) -> Some (k + 1, base)
      | None -> None)
  | _ -> None

let is_complete_numeral t =
  match numeral_shape t with Some (_, `Zero) -> true | _ -> false

let numeral_depth t =
  match numeral_shape t with Some (k, _) -> Some k | None -> None

(** Widening operator: for each argument position, if the entry already
    holds [chain] answers with distinct complete-numeral depths at that
    position and the incoming answer's numeral is strictly deeper than
    all of them, replace it by ω. *)
let widen_answers ~chain ~previous (ans : Term.t) : Term.t =
  match ans with
  | Term.Struct (f, args, _) ->
      let args' =
        Array.mapi
          (fun i a ->
            match numeral_depth a with
            | Some d when is_complete_numeral a ->
                let seen =
                  List.filter_map
                    (fun prev ->
                      match prev with
                      | Term.Struct (g, pargs, _)
                        when String.equal f g && Array.length pargs = Array.length args ->
                          if is_complete_numeral pargs.(i) then
                            numeral_depth pargs.(i)
                          else None
                      | _ -> None)
                    previous
                  |> List.sort_uniq compare
                in
                if
                  List.length seen >= chain
                  && List.for_all (fun d' -> d > d') seen
                then omega
                else a
            | _ -> a)
          args
      in
      Term.rebuild ans args'
  | _ -> ans

(* generalize deep numeral call arguments to variables *)
let generalize_call ~chain (call : Term.t) : Term.t =
  match call with
  | Term.Struct (_, args, _) ->
      let args' =
        Array.map
          (fun a ->
            match numeral_depth a with
            | Some d when d > chain -> Term.fresh_var ()
            | _ -> a)
          args
      in
      Term.rebuild call args'
  | _ -> call

(** ω-aware unification: ω stands for "any numeral at least as deep as
    the cutoff", so it unifies with any numeral shape and with ω. *)
let rec unify (s : Subst.t) t1 t2 =
  let t1 = Subst.walk s t1 and t2 = Subst.walk s t2 in
  match (t1, t2) with
  | Term.Atom "$omega", t | t, Term.Atom "$omega" -> (
      match t with
      | Term.Atom "$omega" -> Some s
      | Term.Var v -> Some (Subst.bind s v omega)
      | _ -> if Option.is_some (numeral_depth t) then Some s else None)
  | Term.Var i, Term.Var j when i = j -> Some s
  | Term.Var i, t | t, Term.Var i -> Some (Subst.bind s i t)
  | Term.Int a, Term.Int b -> if a = b then Some s else None
  | Term.Atom a, Term.Atom b -> if String.equal a b then Some s else None
  | Term.Struct (f, a1, _), Term.Struct (g, a2, _)
    when String.equal f g && Array.length a1 = Array.length a2 ->
      let n = Array.length a1 in
      let rec go s i =
        if i >= n then Some s
        else
          match unify s a1.(i) a2.(i) with
          | Some s' -> go s' (i + 1)
          | None -> None
      in
      go s 0
  | _ -> None

(* Normalization keeping the ω-extended numeral domain closed:
   s^k(ω) = ω (already "unboundedly deep"), and open numerals deeper than
   the cutoff generalize to a fresh variable.  Without this, consuming a
   widened answer would regrow chains above ω. *)
let rec normalize ~chain (t : Term.t) : Term.t =
  match numeral_shape t with
  | Some (k, `Omega) when k > 0 -> omega
  | Some (k, `Var) when k > chain -> Term.fresh_var ()
  | _ -> (
      match t with
      | Term.Struct (_, args, _) ->
          Term.rebuild t (Array.map (normalize ~chain) args)
      | _ -> t)

let hooks ~chain : Prax_tabling.Engine.hooks =
  {
    Prax_tabling.Engine.unify;
    abstract_call =
      (fun c -> Canon.of_term (normalize ~chain (generalize_call ~chain c)));
    abstract_answer = (fun a -> Canon.of_term (normalize ~chain a));
    widen = Some (fun ~previous ans -> widen_answers ~chain ~previous ans);
  }

(* --- driver ------------------------------------------------------------- *)

type pred_result = {
  pred : string * int;
  answers : Term.t list;
  widened : bool;  (** some answer contains ω *)
}

type report = { results : pred_result list; engine_stats : Prax_tabling.Engine.stats }

let rec contains_omega = function
  | Term.Atom "$omega" -> true
  | Term.Struct (_, args, _) -> Array.exists contains_omega args
  | _ -> false

let analyze ?(chain = 3) (src : string) : report =
  let clauses = Parser.parse_clauses src in
  let db = Database.create () in
  Database.load_clauses db clauses;
  let e = Prax_tabling.Engine.create ~hooks:(hooks ~chain) db in
  let preds =
    List.filter_map (fun c -> Term.functor_of c.Parser.head) clauses
    |> List.sort_uniq compare
  in
  List.iter
    (fun (name, arity) ->
      let goal = Term.mk name (Array.init arity (fun _ -> Term.fresh_var ())) in
      Prax_tabling.Engine.run e goal (fun _ -> ()))
    preds;
  let results =
    List.map
      (fun (name, arity) ->
        let answers = Prax_tabling.Engine.answers_for e (name, arity) in
        {
          pred = (name, arity);
          answers;
          widened = List.exists contains_omega answers;
        })
      preds
  in
  { results; engine_stats = Prax_tabling.Engine.stats e }

let result_for rep p = List.find_opt (fun r -> r.pred = p) rep.results
