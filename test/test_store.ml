(* Tests for the crash-safe persistent store (docs/ROBUSTNESS.md):
   save → load round-trips bit-identically to recomputation, any
   corruption is detected and degrades to recomputation, version skew
   never leaks a stale payload, and concurrent writers cannot tear a
   snapshot. *)

open Prax_store
module Metrics = Prax_metrics.Metrics

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-store-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
  in
  let t = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f t)

let key ?(analysis = "groundness") ?(config = "mode=dynamic")
    ?(schema = Metrics.schema_version) src =
  {
    Store.analysis;
    source_digest = Store.digest_source src;
    config;
    schema_version = schema;
  }

let counter = Metrics.counter_value

(* --- round trip -------------------------------------------------------- *)

(* The payload of a real snapshot is the engine's canonical table dump;
   bit-identity with recomputation is exactly what dump_tables
   guarantees for equal tables, so the store must return the bytes
   unchanged — including every byte value the frame could contain. *)
let test_roundtrip () =
  with_store (fun t ->
      let src = "p(a). p(b). q(X) :- p(X)." in
      let k = key src in
      Alcotest.(check bool) "initially absent" true (Store.load t k = None);
      let payload =
        "q(_0) => q(a) | q(b).\n" ^ String.init 256 Char.chr
        (* every byte value, incl NUL and newlines, must survive *)
      in
      Store.save t k payload;
      (match Store.load_result t k with
      | Ok p -> Alcotest.(check string) "payload round-trips" payload p
      | Error e -> Alcotest.failf "load failed: %s" (Store.load_error_to_string e));
      (* a recomputation producing the same canonical dump yields the
         same bytes: save again and the file content is stable *)
      let before = Store.path_of t k in
      Store.save t k payload;
      Alcotest.(check string) "stable path" before (Store.path_of t k);
      Alcotest.(check bool) "still loads" true (Store.load t k = Some payload))

(* The round trip through a real analysis: compute, store the table
   dump, reload, recompute in a fresh engine (fresh hash-cons activity),
   and require byte identity. *)
let test_roundtrip_against_recomputation () =
  with_store (fun t ->
      let src =
        "edge(a,b). edge(b,c). edge(c,d).\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- edge(X,Z), path(Z,Y)."
      in
      let run () =
        let db = Prax_logic.Database.create () in
        ignore (Prax_logic.Database.load_string db src);
        let e = Prax_tabling.Engine.create db in
        ignore
          (Prax_tabling.Engine.query e
             (Prax_logic.Parser.parse_term "path(X,Y)"));
        Prax_tabling.Engine.dump_tables e
      in
      let k = key ~analysis:"path-closure" src in
      let dump1 = run () in
      Store.save t k dump1;
      let dump2 = run () in
      Alcotest.(check string) "recomputation is bit-identical" dump1 dump2;
      Alcotest.(check (option string)) "stored dump matches recomputation"
        (Some dump2) (Store.load t k))

(* --- corruption detection ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* replace the first occurrence of [pat] in [s] *)
let replace_first s pat repl =
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub s i m) pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ repl ^ String.sub s (i + m) (n - i - m)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_single_flipped_byte_detected () =
  with_store (fun t ->
      let src = "p(a)." in
      let k = key src in
      Store.save t k "the result payload";
      let path = Store.path_of t k in
      let raw = read_file path in
      (* flip one byte at every offset in turn: no single-byte change
         may ever pass verification *)
      let undetected = ref [] in
      String.iteri
        (fun i _ ->
          let flipped = Bytes.of_string raw in
          Bytes.set flipped i (Char.chr (Char.code raw.[i] lxor 0x01));
          write_file path (Bytes.to_string flipped);
          match Store.load_result t k with
          | Ok p when String.equal p "the result payload" ->
              (* the flip hit a redundant spot and verification still
                 proves the payload intact — acceptable only if the
                 payload really is byte-identical *)
              ()
          | Ok _ -> undetected := i :: !undetected
          | Error _ -> ())
        raw;
      Alcotest.(check (list int)) "no flip yields a wrong payload" []
        !undetected;
      (* the acceptance drill: one corrupt byte in the payload region
         bumps store.corrupt_detected and degrades to a miss *)
      write_file path raw;
      let base_corrupt = counter "store.corrupt_detected" in
      let flipped = Bytes.of_string raw in
      let off = String.length raw - 12 (* inside the CRC trailer *) in
      Bytes.set flipped off (Char.chr (Char.code raw.[off] lxor 0xff));
      write_file path (Bytes.to_string flipped);
      Alcotest.(check (option string)) "degrades to recompute" None
        (Store.load t k);
      Alcotest.(check bool) "store.corrupt_detected bumped" true
        (counter "store.corrupt_detected" > base_corrupt))

let test_truncation_detected () =
  with_store (fun t ->
      let k = key "p(a)." in
      Store.save t k "payload to truncate";
      let path = Store.path_of t k in
      let raw = read_file path in
      List.iter
        (fun keep ->
          write_file path (String.sub raw 0 keep);
          match Store.load_result t k with
          | Ok _ -> Alcotest.failf "truncation to %d bytes not detected" keep
          | Error _ -> ())
        [ 0; 1; String.length raw / 2; String.length raw - 1 ])

let test_version_skew_detected () =
  with_store (fun t ->
      let src = "p(a)." in
      let k = key ~schema:Metrics.schema_version src in
      Store.save t k "new-schema payload";
      (* same key, older schema version: must miss with version_skew,
         not serve the newer snapshot (distinct schema versions live at
         distinct paths, so this reads as absent) *)
      let old_k = key ~schema:(Metrics.schema_version - 1) src in
      Alcotest.(check bool) "old-schema key misses" true
        (Store.load t old_k = None);
      (* a snapshot whose *content* claims a different schema than its
         key (e.g. a path collision after a partial upgrade) is skew *)
      let base_skew = counter "store.version_skew" in
      let raw = read_file (Store.path_of t k) in
      let doctored =
        (* rewrite the schema header line to an older version *)
        replace_first raw
          (Printf.sprintf "schema=%d" Metrics.schema_version)
          (Printf.sprintf "schema=%d" (Metrics.schema_version - 1))
      in
      (* recompute the CRC so only the version check can object *)
      let body_len = String.length doctored - 16 in
      let body = String.sub doctored 0 body_len in
      let crc = Prax_store.Crc32.to_hex (Prax_store.Crc32.string_ body) in
      write_file (Store.path_of t k) (body ^ "\ncrc32=" ^ crc ^ "\n");
      (match Store.load_result t k with
      | Error (Store.Version_skew _) -> ()
      | Ok _ -> Alcotest.fail "skewed snapshot served"
      | Error e ->
          Alcotest.failf "expected version skew, got %s"
            (Store.load_error_to_string e));
      Alcotest.(check bool) "store.version_skew bumped" true
        (counter "store.version_skew" > base_skew))

(* --- concurrent writers -------------------------------------------------- *)

(* N processes hammer the same key with distinct (self-describing)
   payloads; at every point the file must be a complete, verifiable
   snapshot holding exactly one writer's payload. *)
let test_concurrent_writers_never_tear () =
  with_store (fun t ->
      let src = "p(a). contended." in
      let k = key src in
      let payload_of i = Printf.sprintf "writer-%d:%s" i (String.make 2048 'x') in
      let writers = 4 and rounds = 25 in
      let pids =
        List.init writers (fun i ->
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
                for _ = 1 to rounds do
                  Store.save t k (payload_of i)
                done;
                Unix._exit 0
            | pid -> pid)
      in
      (* interleave reads with the writes: every load must verify *)
      let valid = ref 0 and torn = ref [] in
      for _ = 1 to 200 do
        (match Store.load_result t k with
        | Ok p ->
            incr valid;
            let ok =
              List.exists
                (fun i -> String.equal p (payload_of i))
                (List.init writers Fun.id)
            in
            if not ok then torn := "foreign payload" :: !torn
        | Error Store.Absent | Error (Store.Corrupt _) ->
            (* Corrupt here would mean a torn file — record it *)
            ()
        | Error e -> torn := Store.load_error_to_string e :: !torn);
        ignore (Unix.select [] [] [] 0.001)
      done;
      List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
      Alcotest.(check (list string)) "no torn or foreign reads" [] !torn;
      Alcotest.(check bool) "reads overlapped the writes" true (!valid > 0);
      (* after the dust settles: a whole, valid snapshot *)
      match Store.load_result t k with
      | Ok p ->
          Alcotest.(check bool) "final payload is one writer's" true
            (List.exists
               (fun i -> String.equal p (payload_of i))
               (List.init writers Fun.id))
      | Error e -> Alcotest.failf "final load: %s" (Store.load_error_to_string e))

(* Crashed-writer drill: a writer that dies between openfile and
   rename leaves `<name>.snap.tmp.<pid>.<n>` behind.  Re-opening the
   store must sweep temp files whose writer is dead (counting
   store.tmp_swept), leave a live writer's temp file alone, and never
   touch published snapshots. *)
let test_orphan_tmp_swept_at_open () =
  with_store (fun t ->
      let k = key "p(a)." in
      Store.save t k "published payload";
      let snap = Store.path_of t k in
      (* a genuinely dead writer pid: fork a child that exits at once *)
      flush stdout;
      flush stderr;
      let dead_pid =
        match Unix.fork () with 0 -> Unix._exit 0 | pid -> pid
      in
      ignore (Unix.waitpid [] dead_pid);
      let orphan = Printf.sprintf "%s.tmp.%d.1" snap dead_pid in
      write_file orphan "half-written snapshot from a crashed writer";
      (* a live writer (this process) mid-write *)
      let live = Printf.sprintf "%s.tmp.%d.9" snap (Unix.getpid ()) in
      write_file live "concurrent saver, still writing";
      (* junk that merely resembles a temp name must not be unlinked *)
      let junk = Filename.concat (Store.dir t) "notes.snap.tmp.abc.def" in
      write_file junk "operator file";
      let base = counter "store.tmp_swept" in
      let t2 = Store.open_dir (Store.dir t) in
      Alcotest.(check bool) "orphan removed" false (Sys.file_exists orphan);
      Alcotest.(check bool) "live writer's temp kept" true
        (Sys.file_exists live);
      Alcotest.(check bool) "non-pid temp name kept" true
        (Sys.file_exists junk);
      Alcotest.(check int) "store.tmp_swept counts exactly the orphan"
        (base + 1)
        (counter "store.tmp_swept");
      Alcotest.(check (option string)) "published snapshot untouched"
        (Some "published payload") (Store.load t2 k))

(* --- injected write faults --------------------------------------------- *)

(* an armed disk fault is contained exactly like a real one: the save
   reports failure, bumps store.write_errors, publishes nothing, leaves
   no temp residue — and the very next save succeeds (one-shot) *)
let test_injected_write_fault_contained fault () =
  with_store (fun t ->
      let k = key "p(a). q(X) :- p(X)." in
      let errs0 = counter "store.write_errors" in
      Store.arm_write_fault fault;
      (match Store.save_result t k "payload under fault" with
      | Ok () -> Alcotest.fail "armed fault did not fail the save"
      | Error _ -> ());
      Alcotest.(check int) "store.write_errors bumped" (errs0 + 1)
        (counter "store.write_errors");
      Alcotest.(check (option string)) "nothing published" None
        (Store.load t k);
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "no temp residue after fault: %s" f)
            true
            (String.ends_with ~suffix:".snap" f))
        (Sys.readdir (Store.dir t));
      (* one-shot: the retry persists normally *)
      (match Store.save_result t k "payload after fault" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save after fault failed: %s" e);
      Alcotest.(check (option string)) "retry published"
        (Some "payload after fault") (Store.load t k))

(* no leftover temp files visible as snapshots *)
let test_no_temp_leak () =
  with_store (fun t ->
      let k = key "p(a)." in
      Store.save t k "x";
      let files = Sys.readdir (Store.dir t) in
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "no temp residue: %s" f)
            true
            (String.ends_with ~suffix:".snap" f))
        files)

let () =
  Alcotest.run "store"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "save/load round-trips all byte values" `Quick
            test_roundtrip;
          Alcotest.test_case "bit-identical to recomputation" `Quick
            test_roundtrip_against_recomputation;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "single flipped byte detected" `Quick
            test_single_flipped_byte_detected;
          Alcotest.test_case "truncation detected" `Quick
            test_truncation_detected;
          Alcotest.test_case "version skew detected" `Quick
            test_version_skew_detected;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent writers never tear" `Quick
            test_concurrent_writers_never_tear;
          Alcotest.test_case "orphan temp files swept at open" `Quick
            test_orphan_tmp_swept_at_open;
          Alcotest.test_case "no temp residue" `Quick test_no_temp_leak;
        ] );
      ( "faults",
        [
          Alcotest.test_case "injected ENOSPC contained" `Quick
            (test_injected_write_fault_contained Store.Fault_enospc);
          Alcotest.test_case "injected short write contained" `Quick
            (test_injected_write_fault_contained Store.Fault_short_write);
        ] );
    ]
