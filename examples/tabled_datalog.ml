(* Scenario: the tabled engine as a deductive database.

   The paper's enabling technology is a logic programming system that is
   *complete* (terminates with all answers on finite domains) while
   keeping Prolog's programming model.  This example exercises exactly
   that: left-recursive graph queries no ordinary Prolog terminates on,
   same-generation over a cyclic database, the call table as a free
   byproduct, and a cross-check of the tabled engine against the
   bottom-up (Coral-style) evaluator on the same program.

   Run with: dune exec examples/tabled_datalog.exe *)

open Prax

let org_chart =
  {|
reports_to(amy, bob).   reports_to(bob, cal).
reports_to(cal, dan).   reports_to(eve, bob).
reports_to(fay, eve).   reports_to(gil, fay).

% left recursion: the natural way to write it, fatal for plain Prolog
above(X, Y) :- above(X, Z), reports_to(Z, Y).
above(X, Y) :- reports_to(X, Y).

% same-generation: the classic tabling showcase
peer(X, X).
peer(X, Y) :- reports_to(X, PX), peer(PX, PY), reports_to(Y, PY).
|}

let show = Logic.Pretty.term_to_string

let () =
  let db = Logic.Database.create () in
  ignore (Logic.Database.load_string db org_chart);
  let e = Tabling.Engine.create db in

  print_endline "everyone above gil (left-recursive transitive closure):";
  Tabling.Engine.query e (Logic.Parser.parse_term "above(gil, Y)")
  |> List.iter (fun t -> print_endline ("  " ^ show t));

  print_endline "\ngil's same-generation peers:";
  Tabling.Engine.query e (Logic.Parser.parse_term "peer(gil, Y)")
  |> List.iter (fun t -> print_endline ("  " ^ show t));

  (* the call table is a free byproduct: which subqueries were posed? *)
  print_endline "\ncall variants recorded in the table (input patterns):";
  Tabling.Engine.calls e
  |> List.iter (fun c -> print_endline ("  " ^ show c));

  let st = Tabling.Engine.stats e in
  Printf.printf
    "\nengine statistics: %d calls, %d table entries, %d answers (%d \
     duplicates filtered), %d consumer resumptions, %d bytes of tables\n"
    st.Prax_tabling.Engine.calls st.Prax_tabling.Engine.table_entries
    st.Prax_tabling.Engine.answers st.Prax_tabling.Engine.duplicates
    st.Prax_tabling.Engine.resumptions
    (Tabling.Engine.table_space_bytes e);

  (* cross-check: bottom-up semi-naive evaluation computes the same
     'above' relation *)
  print_endline "\ncross-check against the bottom-up engine:";
  let clauses = Logic.Parser.parse_clauses org_chart in
  let rules =
    List.map
      (fun (c : Logic.Parser.clause) ->
        let atom t =
          match t with
          | Logic.Term.Atom n -> { Bottomup.Datalog.pred = (n, 0); args = [||] }
          | Logic.Term.Struct (n, args, _) ->
              { Bottomup.Datalog.pred = (n, Array.length args); args }
          | _ -> assert false
        in
        {
          Bottomup.Datalog.head = atom c.Logic.Parser.head;
          body = List.map atom c.Logic.Parser.body;
        })
      clauses
  in
  let intensional, ddb = Bottomup.Datalog.load rules in
  ignore (Bottomup.Datalog.seminaive intensional ddb);
  let bu =
    Bottomup.Datalog.tuples_of ddb ("above", 2)
    |> List.map (fun t ->
           Printf.sprintf "above(%s,%s)" (show t.(0)) (show t.(1)))
    |> List.sort compare
  in
  let td =
    Tabling.Engine.query e (Logic.Parser.parse_term "above(X, Y)")
    |> List.map show |> List.sort compare
  in
  Printf.printf "  top-down tabled: %d facts; bottom-up: %d facts; equal: %b\n"
    (List.length td) (List.length bu)
    (td = bu);

  (* magic sets restricts the bottom-up computation to what the query
     needs — compare fact counts for a selective query *)
  let q =
    {
      Bottomup.Datalog.pred = ("above", 2);
      args = [| Logic.Term.atom "gil"; Logic.Term.fresh_var () |];
    }
  in
  let mrules, mq = Bottomup.Magic.magic rules q in
  let mi, mdb = Bottomup.Datalog.load mrules in
  ignore (Bottomup.Datalog.seminaive mi mdb);
  Printf.printf
    "  magic sets for above(gil,Y): %d facts derived (vs %d unrestricted), \
     answers: %s\n"
    (Bottomup.Datalog.fact_count mdb)
    (Bottomup.Datalog.fact_count ddb)
    (Bottomup.Datalog.query mdb mq
    |> List.map (fun t -> show t.(1))
    |> String.concat ",")
