(** The Prop abstraction of Figure 1: map a logic program [P] to an
    abstract program [Pα] whose minimal model is the output groundness of
    [P], and whose tabled call patterns are the input groundness.

    Each source variable [X] is associated with a target variable [TX]
    holding [X]'s groundness value ([true]/[false]).  Each source
    predicate [p/n] becomes [gp_p/n] over groundness values.  Every
    argument term [t] of a head or body literal is abstracted by
    [iff(α, TX1, …, TXk)] where the [Xi] are the variables of [t]
    (so [α ↔ ∧ TXi], i.e. "t is ground iff all its variables are").

    Built-in predicates are abstracted soundly (the paper's analyses do
    the same through the base-relation definitions):
    - [X = t]: static most-general unification, each resulting binding
      abstracted via [iff];
    - [is/2] and arithmetic comparisons: success grounds every variable
      involved;
    - type tests [atom/number/atomic/integer/ground]: ground their
      argument; [var]/[nonvar] and negation bind nothing;
    - control ([!], [true], I/O) binds nothing;
    - [;], [->] are translated compositionally ([->] without commitment —
      a sound over-approximation). *)

open Prax_logic

let prefix = "gp_"

let abstract_pred (name, arity) = (prefix ^ name, arity)

type ctx = {
  mutable map : (int * int) list;  (** source var id -> target var id *)
  defined : (string * int, unit) Hashtbl.t;
  mutable max_iff_arity : int;  (** widest iff emitted, for builtin registration *)
}

let target_var ctx v =
  match List.assoc_opt v ctx.map with
  | Some tv -> Term.var tv
  | None ->
      let tv = Term.fresh_id () in
      ctx.map <- (v, tv) :: ctx.map;
      Term.var tv

(* iff(alpha, TX1..TXk) for the variables of [t]; degenerate cases emitted
   as unifications to keep the abstract program small (the "coding for the
   evaluation mechanism" the paper describes). *)
let abstract_arg ctx (t : Term.t) (alpha : Term.t) : Term.t list =
  match t with
  | Term.Var v -> [ Term.mk "=" [| alpha; target_var ctx v |] ]
  | _ ->
      let vs = Term.vars t in
      if vs = [] then [ Term.mk "=" [| alpha; Term.true_ |] ]
      else begin
        ctx.max_iff_arity <- max ctx.max_iff_arity (List.length vs);
        [
          Term.mkl "iff" (alpha :: List.map (target_var ctx) vs);
        ]
      end

(* all variables of [t] become ground *)
let ground_all ctx t =
  List.map
    (fun v -> Term.mk "=" [| target_var ctx v; Term.true_ |])
    (Term.vars t)

(* abstraction of X = t bindings from a static mgu *)
let abstract_bindings ctx (s : Subst.t) vars_involved : Term.t list =
  List.concat_map
    (fun v ->
      match Subst.walk s (Term.var v) with
      | Term.Var v' when v' = v -> []
      | t -> abstract_arg ctx (Subst.resolve s t) (target_var ctx v))
    vars_involved

let rec abstract_goal ctx (g : Term.t) : Term.t list =
  match g with
  | Term.Atom ("true" | "!" | "nl" | "fail" | "false" | "halt" | "listing") ->
      (* [fail] must keep failing abstractly *)
      if g = Term.fail_ || g = Term.atom "false" then [ Term.fail_ ]
      else []
  | Term.Atom name ->
      if Hashtbl.mem ctx.defined (name, 0) then [ Term.atom (prefix ^ name) ]
      else []
  | Term.Struct (",", [| a; b |], _) -> abstract_goal ctx a @ abstract_goal ctx b
  | Term.Struct (";", [| a; b |], _) ->
      let a' = Term.conj (abstract_goal ctx a) in
      let b' = Term.conj (abstract_goal ctx b) in
      [ Term.mk ";" [| a'; b' |] ]
  | Term.Struct ("->", [| c; t |], _) ->
      abstract_goal ctx c @ abstract_goal ctx t
  | Term.Struct ("\\+", [| _ |], _) | Term.Struct ("not", [| _ |], _) ->
      (* negation binds nothing on success *)
      []
  | Term.Struct ("=", [| t1; t2 |], _) -> (
      match Unify.unify_oc Subst.empty t1 t2 with
      | None ->
          (* genuine clash → clause cannot succeed; occur-check-only
             failure → concrete Prolog may still succeed (cyclic term), so
             claim nothing *)
          if Option.is_none (Unify.unify Subst.empty t1 t2) then
            [ Term.fail_ ]
          else []
      | Some s ->
          let vs =
            List.sort_uniq Int.compare (Term.vars t1 @ Term.vars t2)
          in
          abstract_bindings ctx s vs)
  | Term.Struct ("\\=", [| _; _ |], _) -> []
  | Term.Struct ("is", [| x; e |], _) -> ground_all ctx e @ ground_all ctx x
  | Term.Struct (("=:=" | "=\\=" | "<" | ">" | "=<" | ">="), [| a; b |], _) ->
      ground_all ctx a @ ground_all ctx b
  | Term.Struct (("atom" | "atomic" | "number" | "integer" | "ground"), [| t |], _)
    ->
      ground_all ctx t
  | Term.Struct (("var" | "nonvar" | "compound"), [| _ |], _) -> []
  | Term.Struct ("==", [| t1; t2 |], _) ->
      (* identical terms have identical groundness *)
      let alpha = Term.fresh_var () in
      abstract_arg ctx t1 alpha @ abstract_arg ctx t2 alpha
  | Term.Struct (("\\==" | "@<" | "@>" | "@=<" | "@>="), [| _; _ |], _) -> []
  | Term.Struct ("compare", [| o; _; _ |], _) -> ground_all ctx o
  | Term.Struct ("functor", [| _; f; a |], _) -> ground_all ctx f @ ground_all ctx a
  | Term.Struct ("arg", [| n; _; _ |], _) -> ground_all ctx n
  | Term.Struct (("write" | "print" | "tab" | "name"), _, _) -> []
  | Term.Struct ("call", [| g |], _) -> abstract_goal ctx g
  | Term.Struct ("findall", [| _; g; _ |], _) ->
      (* inner bindings do not escape; analyze a renamed copy for failure
         propagation only, leaving the result list unconstrained *)
      let g' = Term.rename g in
      abstract_goal ctx g'
  | Term.Struct (name, args, _) ->
      let arity = Array.length args in
      if Hashtbl.mem ctx.defined (name, arity) then begin
        let alphas = Array.map (fun _ -> Term.fresh_var ()) args in
        let arg_lits =
          List.concat
            (List.mapi
               (fun i t -> abstract_arg ctx t alphas.(i))
               (Array.to_list args))
        in
        arg_lits @ [ Term.mk (prefix ^ name) alphas ]
      end
      else
        (* unknown predicate: no groundness information on success *)
        []
  | Term.Var _ | Term.Int _ ->
      (* meta-call of unknown goal: nothing can be concluded *)
      []

(* Abstract one clause; reports the widest iff emitted through [ctx]. *)
let abstract_clause ctx (c : Parser.clause) : Parser.clause =
  ctx.map <- [];
  let name, args =
    match c.Parser.head with
    | Term.Atom a -> (a, [||])
    | Term.Struct (f, args, _) -> (f, args)
    | _ -> invalid_arg "Transform.abstract_clause: bad clause head"
  in
  let alphas = Array.map (fun _ -> Term.fresh_var ()) args in
  let head_lits =
    List.concat
      (List.mapi (fun i t -> abstract_arg ctx t alphas.(i)) (Array.to_list args))
  in
  let body_lits = List.concat_map (abstract_goal ctx) c.Parser.body in
  { Parser.head = Term.mk (prefix ^ name) alphas; body = head_lits @ body_lits }

(** Transform a whole program.  Returns the abstract clauses, the set of
    abstracted predicates, and the widest [iff] arity used. *)
let program (clauses : Parser.clause list) :
    Parser.clause list * (string * int) list * int =
  let defined = Hashtbl.create 32 in
  List.iter
    (fun c ->
      match Term.functor_of c.Parser.head with
      | Some p -> Hashtbl.replace defined p ()
      | None -> ())
    clauses;
  let ctx = { map = []; defined; max_iff_arity = 1 } in
  let abstracted = List.map (abstract_clause ctx) clauses in
  let preds =
    Hashtbl.fold (fun p () acc -> p :: acc) defined [] |> List.sort compare
  in
  (abstracted, preds, ctx.max_iff_arity)
