lib/fp/ast.ml: List Option Printf String
