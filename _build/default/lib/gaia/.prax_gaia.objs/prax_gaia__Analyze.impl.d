lib/gaia/analyze.ml: Absint Backend_bdd Backend_bitset List Parser Prax_bdd Prax_ground Prax_logic Prax_prop Prax_tabling String Unix
