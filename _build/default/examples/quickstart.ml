(* Quickstart: the paper's running example, end to end.

   Figure 2: the append program and its Prop abstraction; the success set
   of gp_ap is the truth table of (X ∧ Y) ↔ Z.
   Figure 4: the same program in the functional language and its
   strictness: ap is ee-strict in both arguments, d-strict in the first.

   Run with: dune exec examples/quickstart.exe *)

open Prax

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  banner "Figure 2: groundness of append via the Prop domain";
  let src = "ap([], Ys, Ys). ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs)." in
  (* show the abstract program the transformation produces *)
  let clauses = Logic.Parser.parse_clauses src in
  let abstract, _, _ = Groundness.Transform.program clauses in
  print_endline "abstract program:";
  List.iter
    (fun c -> print_endline ("  " ^ Logic.Pretty.clause_to_string c))
    abstract;
  (* run the analysis *)
  let rep = Groundness.analyze src in
  print_endline "analysis results:";
  print_endline (Prax_ground.Analyze.report_to_string rep);
  (* the success set is exactly (X ∧ Y) ↔ Z *)
  let r = List.hd rep.Prax_ground.Analyze.results in
  let expected =
    Prop.Bf.of_tuples 3
      [
        [ Some true; Some true; Some true ];
        [ Some true; Some false; Some false ];
        [ Some false; Some true; Some false ];
        [ Some false; Some false; Some false ];
      ]
  in
  Printf.printf "success set equals (X&Y)<->Z: %b\n"
    (Prop.Bf.equal r.Prax_ground.Analyze.success expected);

  banner "Figure 4: strictness of append by demand propagation";
  let fsrc = "ap([], ys) = ys;\nap(x:xs, ys) = x : ap(xs, ys);" in
  let frep = Strictness.analyze fsrc in
  print_endline (Prax_strict.Analyze.report_to_string frep);
  (* e-demand propagates e to both arguments; d-demand only d to the first *)
  (match Prax_strict.Analyze.result_for frep "ap" with
  | Some r ->
      Printf.printf "ap is ee-strict: %b\n"
        (r.Prax_strict.Analyze.e_demands
        = Some [| Prax_strict.Demand.E; Prax_strict.Demand.E |]);
      Printf.printf "ap under d-demand is strict only in arg 1: %b\n"
        (r.Prax_strict.Analyze.d_demands
        = Some [| Prax_strict.Demand.D; Prax_strict.Demand.N |])
  | None -> assert false);

  banner "Section 5: the same groundness via depth-k abstraction";
  let drep = Depthk.analyze ~k:2 (src ^ " main(R) :- ap([a,b],[c],R).") in
  print_endline (Prax_depthk.Analyze.report_to_string drep);

  banner "Input modes for free (the call table)";
  (* tabled evaluation records every call variant; with a ground query the
     call patterns show which arguments are ground at call time *)
  let rep2 =
    Groundness.analyze (src ^ " main(R) :- ap([a,b], [c], R).")
  in
  List.iter
    (fun r ->
      let name, arity = r.Prax_ground.Analyze.pred in
      Printf.printf "  %s/%d called with modes: %s\n" name arity
        (String.concat ", " r.Prax_ground.Analyze.call_patterns))
    rep2.Prax_ground.Analyze.results
