(** Incremental re-analysis: per-SCC fragment cache, the engine splice
    resolver, and the edit-aware evaluation loop (docs/INCREMENTAL.md).

    The paper's analyses are deterministic fixpoints of the program
    text, so re-analysis after an edit only has to recompute the
    {e dependent cone}: the condensation SCCs from which an edited
    predicate is reachable.  Everything below the cone is textually
    identical — witnessed by an unchanged {!Depgraph.closure_digest} —
    and its results can be spliced back from a cache instead of
    recomputed.  This module owns the machinery shared by the tabled
    drivers (groundness [mode=dynamic]/[mode=compiled], strictness):

    - the {b fragment codec}: a cached fragment is one SCC's call-table
      slice — per call variant, the sorted answers and the demand edges
      (subcall keys) its producer consumed from — one term per line in a
      preorder, length-prefixed encoding that preserves canonical
      variable ids, so decoding needs no parser and no
      re-canonicalization (decode speed bounds the warm-run splice);
    - {b the splice loop} ({!run_tabled}): load fragments for every
      closure-digest cache hit, install the engine resolver so a cache
      hit answers new call-table entries without running their
      producers, replay the recorded demand edges so the call table
      ends up {e identical} to a from-scratch run (reports read input
      modes off the call table), then persist fresh fragments for the
      recomputed cone;
    - the {b store binding} ({!cache_of_store}) and the [incr.*]
      metrics (docs/METRICS.md, schema v6).

    The bottom-up def domain ([mode=def]) reuses {!Depgraph} and the
    cache-key convention but serializes its own implication-set values
    (see [Prax_ground.Def]). *)

open Prax_logic
module Engine = Prax_tabling.Engine
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis
module Store = Prax_store.Store

(** {1 Cache keys} *)

val fragment_key : table_class:string -> string -> string
(** [fragment_key ~table_class digest] — the cache key of one SCC
    fragment: the table-compatibility class prefixed onto the SCC's
    closure digest, so classes can never collide even in a cache shared
    across analyses (groundness [prop] and [def] fragments of the same
    source have {e equal} closure digests and different payloads). *)

(** {1 Outcome accounting} *)

type outcome = {
  sccs : int;  (** SCCs in the condensation *)
  invalidated : int;  (** SCCs recomputed (closure digest missed) *)
  spliced : int;  (** SCCs restored from cached fragments *)
  spliced_entries : int;  (** call-table entries installed by splice *)
}

val record : outcome -> unit
(** Feed the [incr.sccs] / [incr.invalidated] / [incr.spliced] counters
    and set the [incr.cone_frac] gauge (invalidated/sccs in permille;
    0 on an empty condensation). *)

(** {1 The edit-aware evaluation loop} *)

val run_tabled :
  cache:Analysis.cache ->
  table_class:string ->
  engine:Engine.t ->
  clauses:Parser.clause list ->
  goals:Term.t list ->
  unit ->
  Guard.status * outcome
(** [run_tabled ~cache ~table_class ~engine ~clauses ~goals ()] is the
    incremental replacement for a driver's evaluation phase: it builds
    the dependency graph over the (abstract) [clauses] the engine will
    evaluate, loads the fragment of every SCC whose closure digest hits
    the [cache], installs the splice resolver, runs the [goals] in
    order under the engine's guard (statuses folded with
    {!Guard.combine}, exactly like the from-scratch drivers), replays
    the spliced entries' recorded demand edges to fixpoint, and — on a
    [Complete] run — persists fragments: invalidated SCCs are saved
    fresh from {!Engine.export_tables}; hit SCCs are re-saved only when
    the run demanded call variants the cached fragment did not hold
    (merged, keeping the cached records — a spliced entry carries no
    demand edges to re-record).  Partial runs persist nothing (widened
    tables are an over-approximation, not the fixpoint).  The resolver
    is always removed before returning.  Also {!record}s the outcome. *)

(** {1 Fragment codec}

    Exposed for tests and the corruption drill: a syntactically invalid
    fragment must degrade to a miss, never to wrong answers. *)

val fragment_to_string : Engine.exported list -> string
val fragment_of_string : string -> Engine.exported list option

(** {1 Store binding} *)

val cache_of_store :
  Store.t -> analysis:string -> table_class:string -> Analysis.cache
(** Bind the fragment cache to the subdirectory [incr/<analysis>/] of a
    snapshot store: loads and saves go through the store's atomic-write
    / CRC / version-skew protocol, so torn or stale fragments degrade
    to recomputation.  The store key uses the fragment key as source
    digest and [table_class] as the config discriminator. *)
