(** Quine–McCluskey minimization, used to render Prop analysis results as
    readable boolean formulae (the truth tables themselves are the
    machine-facing representation).

    An implicant is a cube: per position [True], [False] or [Dontcare].
    We compute prime implicants by iterated merging and then a greedy
    cover — exact minimality is not required for reporting. *)

type lit = True | False | Dontcare

type cube = lit array

let cube_of_row arity r : cube =
  Array.init arity (fun i -> if r land (1 lsl i) <> 0 then True else False)

(* Two cubes merge when they differ in exactly one concrete position. *)
let merge (a : cube) (b : cube) : cube option =
  let n = Array.length a in
  let diff = ref (-1) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if a.(i) <> b.(i) then
      match (a.(i), b.(i)) with
      | True, False | False, True ->
          if !diff >= 0 then ok := false else diff := i
      | _ -> ok := false
  done;
  if !ok && !diff >= 0 then begin
    let c = Array.copy a in
    c.(!diff) <- Dontcare;
    Some c
  end
  else None

let covers (c : cube) r =
  let n = Array.length c in
  let rec go i =
    i >= n
    ||
    (match c.(i) with
    | Dontcare -> true
    | True -> r land (1 lsl i) <> 0
    | False -> r land (1 lsl i) = 0)
    && go (i + 1)
  in
  go 0

let prime_implicants (f : Bf.t) : cube list =
  let rec iterate (cubes : cube list) (primes : cube list) =
    if cubes = [] then primes
    else begin
      let used = Hashtbl.create 16 in
      let next = Hashtbl.create 16 in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                match merge a b with
                | Some c ->
                    Hashtbl.replace used (Array.to_list a) ();
                    Hashtbl.replace used (Array.to_list b) ();
                    Hashtbl.replace next (Array.to_list c) ()
                | None -> ())
            cubes)
        cubes;
      let primes' =
        List.filter (fun c -> not (Hashtbl.mem used (Array.to_list c))) cubes
        @ primes
      in
      let next_cubes =
        Hashtbl.fold (fun c () acc -> Array.of_list c :: acc) next []
      in
      iterate next_cubes primes'
    end
  in
  iterate (List.map (cube_of_row (Bf.arity f)) (Bf.rows f)) []

(** Greedy minimal-ish cover of [f]'s rows by its prime implicants. *)
let minimize (f : Bf.t) : cube list =
  let rs = Bf.rows f in
  if rs = [] then []
  else
    let primes = prime_implicants f in
    let uncovered = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace uncovered r ()) rs;
    let chosen = ref [] in
    while Hashtbl.length uncovered > 0 do
      (* pick the prime covering the most uncovered rows *)
      let best = ref None and best_count = ref 0 in
      List.iter
        (fun c ->
          let n =
            Hashtbl.fold
              (fun r () acc -> if covers c r then acc + 1 else acc)
              uncovered 0
          in
          if n > !best_count then begin
            best := Some c;
            best_count := n
          end)
        primes;
      match !best with
      | None -> Hashtbl.reset uncovered (* cannot happen: primes cover f *)
      | Some c ->
          chosen := c :: !chosen;
          Hashtbl.iter
            (fun r () -> if covers c r then Hashtbl.remove uncovered r)
            (Hashtbl.copy uncovered)
    done;
    List.rev !chosen

(** Render as a sum of products over the given position names. *)
let to_string ~names (f : Bf.t) : string =
  if Bf.is_empty f then "false"
  else if Bf.equal f (Bf.top (Bf.arity f)) then "true"
  else
    let cube_str (c : cube) =
      let lits = ref [] in
      Array.iteri
        (fun i l ->
          match l with
          | Dontcare -> ()
          | True -> lits := names i :: !lits
          | False -> lits := ("~" ^ names i) :: !lits)
        c;
      match List.rev !lits with
      | [] -> "true"
      | ls -> String.concat "&" ls
    in
    minimize f |> List.map cube_str |> String.concat " | "
