lib/logic/subst.ml: Array Int Map Term
