test/test_ground.mli:
