(** praxd — the resident analysis daemon.

    The batch surface ([xanalyze batch]) pays a cold process per
    invocation: registry construction, symbol interning, store opens.
    This module keeps all of that resident in one long-lived process — a
    Unix-domain-socket server that parses requests off the {!Wire}
    protocol, admits them through {!Admission} plus queue-depth
    backpressure, dispatches them onto the {!Prax_serve.Serve.Pool}
    worker fleet (each job still forks: a crashing analysis can never
    take the daemon down, and forked children inherit the warm interned
    heap copy-on-write), and answers repeats from a resident result
    cache backed by the optional {!Prax_store.Store}.

    {2 Admission ladder}

    An [analyze] request passes, in order (docs/ROBUSTNESS.md):

    + {b drain check} — a draining daemon answers ["draining"];
    + {b rate limit} — the client's token bucket ([rate]/[burst]);
      empty answers ["overloaded"/"rate_limited"] ([daemon.shed_rate]);
    + {b queue depth} — pool backlog at [max_queue] answers
      ["overloaded"/"queue_full"] ([daemon.shed_queue]);
    + {b registry validation} — unknown analysis or config key answers
      ["error"] (the caller's fault, not load);
    + {b warm cache} — a resident (or stored) complete result for the
      same (analysis, source bytes, config, schema) answers ["cached"]
      without forking ([daemon.warm_hits]);
    + otherwise the job joins the fleet; its budget is the [serve]
      config's guard spec, so a budget-tripped job degrades to
      ["partial"] instead of being shed.

    Malformed frames answer ["rejected"] and poison only themselves;
    an oversized frame loses framing, so it also closes its connection
    ([daemon.rejected_bad_frame]).  Either way the accept loop is
    untouched.

    {2 Lifecycle}

    {!listen} refuses to start over a live daemon (socket probe), and
    sweeps a stale socket + pidfile left by a SIGKILLed predecessor.
    SIGTERM/SIGINT (or a [drain] request) begin graceful drain: stop
    accepting, answer queued requests ["draining"], let in-flight jobs
    finish until [drain_deadline], then SIGKILL-and-reap the rest;
    finally the socket and pidfile are removed and [daemon.drain_ms]
    records the drain.  {!run} then returns — the process exits 0.

    Counters/gauges (stats schema v5, docs/METRICS.md):
    [daemon.accepted], [daemon.requests], [daemon.shed_queue],
    [daemon.shed_rate], [daemon.rejected_bad_frame], [daemon.warm_hits],
    [daemon.cold_ms], [daemon.warm_ms], [daemon.drain_ms],
    [daemon.queue_depth], [daemon.inflight]. *)

module Serve = Prax_serve.Serve

type config = {
  socket_path : string;
  max_queue : int;  (** pool backlog bound before queue_full shedding *)
  rate : float;  (** per-client tokens/second; ≤ 0 disables *)
  burst : float;  (** per-client bucket ceiling *)
  max_request_bytes : int;  (** request-line cap *)
  drain_deadline : float;  (** seconds granted to in-flight jobs on drain *)
  store_dir : string option;  (** persistent backing for the warm cache *)
  serve : Serve.config;
      (** the worker fleet: [serve.jobs] is the in-flight cap, its
          budget/retry/watchdog knobs apply per job *)
}

val default_config : socket_path:string -> config
(** [max_queue=32; rate=0 (off); burst=8; max_request_bytes=8M;
    drain_deadline=5s; store_dir=None; serve=Serve.default_config]. *)

type t

exception Already_running of string
(** Raised by {!listen} when a live daemon answers on the socket (the
    message names the path). *)

val listen : config -> t
(** Claim the socket: probe-and-sweep a stale one, bind, listen, write
    the pidfile ([<socket>.pid]).
    @raise Already_running when a live daemon holds the socket.
    @raise Unix.Unix_error on bind/permission failures. *)

val run : ?on_ready:(unit -> unit) -> t -> unit
(** Serve until drained.  Installs SIGTERM/SIGINT handlers (restored on
    return) that trigger graceful drain; ignores SIGPIPE for the
    duration (a client gone mid-response must not kill the daemon).
    [on_ready] fires once the loop is about to accept — startup
    synchronization for scripts and tests. *)

val socket_path : t -> string
val pid_path : t -> string
