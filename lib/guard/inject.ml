(** Fault-injection harness: guards that abort or raise at the Nth
    engine event.

    The point is to make the abort-anywhere property testable: for a
    deterministic engine run, event [n] identifies a unique program
    point, so [abort_at n] tears the evaluation down exactly there.
    Sweeping [n] over a run's event span (measured with
    {!Guard.counting}) and asserting after every abort that

    - the reported answers are a sound over-approximation restricted to
      completed-or-widened table entries, and
    - the same engine instance completes a fresh query afterwards

    proves that no engine event leaves the tables in a state the
    degradation machinery cannot repair.  [test/test_guard.ml] runs this
    sweep. *)

(** [abort_at n] trips a {!Guard.Fault} exactly at event [n] (one-shot:
    the engine stays usable afterwards without swapping guards). *)
let abort_at ?timeout ?max_steps ?max_table_bytes n : Guard.t =
  Guard.create ?timeout ?max_steps ?max_table_bytes
    ~on_event:(fun k ->
      if k = n then raise (Guard.Exhausted (Guard.Fault "injected-abort")))
    ()

(** [raise_at n exn] raises an arbitrary exception at event [n] —
    modelling a crashing user builtin rather than a budget trip.  The
    engine must recover its table invariants (discarding entries whose
    producers were interrupted) rather than degrade to a partial
    result. *)
let raise_at n exn : Guard.t =
  Guard.create ~on_event:(fun k -> if k = n then raise exn) ()

(** Event span of a deterministic run: execute [f] under a counting
    guard and return how many events it saw.  The sweep range for
    {!abort_at}. *)
let events_of (f : Guard.t -> unit) : int =
  let g = Guard.counting () in
  f g;
  Guard.steps g

(** {1 Worker-process faults}

    The in-process harness above proves abort-anywhere for one engine;
    the supervisor ({!Prax_serve}) additionally promises that a worker
    {e process} dying arbitrarily — SIGKILL, OOM-kill, a hang — cannot
    take down a batch.  That promise is exercised by planting faults in
    the worker via an environment variable, because the fault must
    occur in the forked child, beyond any in-process control flow the
    supervisor could see.

    Grammar of [PRAX_INJECT_WORKER] (comma-separated directives):

    {v kind:job[:attempt]     kind ∈ {crash, exit, hang}
crash:kalah:1          SIGKILL itself on kalah's first attempt
exit:*:2               exit(70) on every job's second attempt
hang:qsort             sleep forever on every qsort attempt v}

    [job] is the job id ["*"] for any; [attempt] is 1-based, omitted
    for any.  Faults are planted before the analysis starts, so a
    crashed attempt has produced no result frame — exactly the
    worker-death shape the retry ladder must absorb. *)

type worker_fault =
  | Kill_self  (** SIGKILL own pid: the mid-job `kill -9` drill *)
  | Exit_nonzero  (** exit(70): a crashing worker that dies politely *)
  | Hang  (** sleep past any watchdog: exercises the SIGKILL path *)

let inject_worker_var = "PRAX_INJECT_WORKER"

let worker_fault_of_string ~job ~attempt (value : string) :
    worker_fault option =
  let directive d =
    let d = String.trim d in
    match String.index_opt d ':' with
    | None -> None
    | Some i -> (
        let kind = String.sub d 0 i in
        let rest = String.sub d (i + 1) (String.length d - i - 1) in
        (* job names may themselves contain ':' (batch job ids are
           "analysis:input"), so the attempt selector is only the
           *last* segment, and only when it parses as an integer *)
        let job, attempt =
          match String.rindex_opt rest ':' with
          | None -> (rest, None)
          | Some j -> (
              let tail =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              match int_of_string_opt tail with
              | Some n -> (String.sub rest 0 j, Some n)
              | None ->
                  if String.equal tail "" then (String.sub rest 0 j, None)
                  else (rest, None))
        in
        if String.equal job "" then None else Some (kind, job, attempt))
  in
  let matches (kind, j, a) =
    (String.equal j "*" || String.equal j job)
    && (match a with None -> true | Some n -> n = attempt)
    &&
    match kind with "crash" | "exit" | "hang" -> true | _ -> false
  in
  String.split_on_char ',' value
  |> List.filter_map directive
  |> List.find_opt matches
  |> Option.map (fun (kind, _, _) ->
         match kind with
         | "crash" -> Kill_self
         | "exit" -> Exit_nonzero
         | _ -> Hang)

(** The fault planted for [job]'s [attempt], read from
    [PRAX_INJECT_WORKER] (unset / no match: [None]). *)
let worker_fault_of_env ~job ~attempt () : worker_fault option =
  match Sys.getenv_opt inject_worker_var with
  | None | Some "" -> None
  | Some v -> worker_fault_of_string ~job ~attempt v

(** Execute a planted fault inside the worker process.  Does not
    return (kills, exits, or sleeps far past any sane watchdog). *)
let apply_worker_fault : worker_fault -> unit = function
  | Kill_self -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Exit_nonzero -> exit 70
  | Hang ->
      (* long enough that only the watchdog ends it; loop in case a
         stray signal interrupts the sleep *)
      while true do
        Unix.sleepf 3600.
      done

(** {1 Daemon chaos plans}

    The worker faults above are keyed by job; a resident daemon has
    failure modes no job selector can reach — a client connection reset
    mid-response, the snapshot store hitting [ENOSPC], a drain arriving
    under load.  A {e chaos plan} schedules such faults at scripted
    points: each entry fires when the daemon admits its Nth [analyze]
    request (1-based, counted at arrival, before any admission
    decision), so a plan replays identically against the same request
    sequence.  The invariant the harness asserts around every plan:
    {e every request gets exactly one structured response} (the
    scripted reset victim's response is deliberately truncated — that
    {e is} the fault — but the daemon still generated it once) {e and
    the daemon exits clean}.

    Grammar of [PRAX_INJECT_DAEMON] (comma-separated [kind\@N]):

    {v crash@1,reset@3,enospc@4,drain@6

kind ∈ crash | exit | hang   worker fault on request N's job
       reset                 truncate request N's response mid-frame
                             and close its connection
       enospc | shortwrite   fail the next store write (N's snapshot)
       drain                 begin graceful drain when request N arrives v}

    The same plan can be shipped as a JSON file ([praxd serve --chaos
    plan.json]): [{"faults":[{"at":1,"fault":"worker-crash"},...]}]
    with fault names [worker-crash], [worker-exit], [worker-hang],
    [conn-reset], [store-enospc], [store-short-write], [drain]. *)

type store_fault = Enospc | Short_write

type daemon_fault =
  | Worker of worker_fault
  | Conn_reset
  | Store_write of store_fault
  | Drain_now

(** Fire points are 1-based analyze-request ordinals; multiple faults
    may share an ordinal. *)
type daemon_plan = (int * daemon_fault) list

let inject_daemon_var = "PRAX_INJECT_DAEMON"

let daemon_fault_of_name = function
  | "crash" | "worker-crash" -> Some (Worker Kill_self)
  | "exit" | "worker-exit" -> Some (Worker Exit_nonzero)
  | "hang" | "worker-hang" -> Some (Worker Hang)
  | "reset" | "conn-reset" -> Some Conn_reset
  | "enospc" | "store-enospc" -> Some (Store_write Enospc)
  | "shortwrite" | "store-short-write" -> Some (Store_write Short_write)
  | "drain" -> Some Drain_now
  | _ -> None

let daemon_fault_name = function
  | Worker Kill_self -> "worker-crash"
  | Worker Exit_nonzero -> "worker-exit"
  | Worker Hang -> "worker-hang"
  | Conn_reset -> "conn-reset"
  | Store_write Enospc -> "store-enospc"
  | Store_write Short_write -> "store-short-write"
  | Drain_now -> "drain"

(** Parse the compact [kind\@N] grammar.  Errors name the bad
    directive — a misspelled chaos plan must fail loudly at startup,
    never silently run a different drill. *)
let daemon_plan_of_string (value : string) : (daemon_plan, string) result =
  let directive d =
    let d = String.trim d in
    match String.index_opt d '@' with
    | None -> Error (Printf.sprintf "bad chaos directive %S (want kind@N)" d)
    | Some i -> (
        let kind = String.sub d 0 i in
        let at_s = String.sub d (i + 1) (String.length d - i - 1) in
        match (daemon_fault_of_name kind, int_of_string_opt at_s) with
        | Some fault, Some at when at >= 1 -> Ok (at, fault)
        | None, _ -> Error (Printf.sprintf "unknown chaos fault %S" kind)
        | _, _ ->
            Error
              (Printf.sprintf "bad chaos fire point %S (want an ordinal >= 1)"
                 at_s))
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
        match directive d with
        | Ok entry -> all (entry :: acc) rest
        | Error _ as e -> e)
  in
  String.split_on_char ',' value
  |> List.filter (fun s -> String.trim s <> "")
  |> all []

let daemon_plan_of_env () : (daemon_plan, string) result =
  match Sys.getenv_opt inject_daemon_var with
  | None | Some "" -> Ok []
  | Some v -> daemon_plan_of_string v

(** Parse a JSON plan document: [{"faults":[{"at":N,"fault":NAME},...]}]
    (or the bare array). *)
let daemon_plan_of_json (text : string) : (daemon_plan, string) result =
  let module M = Prax_metrics.Metrics in
  match M.json_of_string text with
  | exception _ -> Error "chaos plan is not JSON"
  | doc -> (
      let entries =
        match doc with
        | M.Arr l -> Ok l
        | M.Obj _ -> (
            match M.member "faults" doc with
            | Some (M.Arr l) -> Ok l
            | Some _ -> Error "chaos plan: \"faults\" must be an array"
            | None -> Error "chaos plan: missing \"faults\" array")
        | _ -> Error "chaos plan: expected an object or array"
      in
      match entries with
      | Error _ as e -> e
      | Ok l ->
          let entry j =
            match (M.member "at" j, M.member "fault" j) with
            | Some (M.Int at), Some (M.Str name) when at >= 1 -> (
                match daemon_fault_of_name name with
                | Some f -> Ok (at, f)
                | None -> Error (Printf.sprintf "unknown chaos fault %S" name))
            | _ ->
                Error
                  "chaos plan entry: want {\"at\": <ordinal >= 1>, \
                   \"fault\": <name>}"
          in
          let rec all acc = function
            | [] -> Ok (List.rev acc)
            | j :: rest -> (
                match entry j with
                | Ok e -> all (e :: acc) rest
                | Error _ as e -> e)
          in
          all [] l)

(** The faults scheduled for analyze-request ordinal [n]. *)
let daemon_faults_at (plan : daemon_plan) n : daemon_fault list =
  List.filter_map (fun (at, f) -> if at = n then Some f else None) plan
