test/test_engines_agree.ml: Alcotest Array Bf Canon Database Hashtbl Iff List Parser Prax_bdd Prax_benchdata Prax_bottomup Prax_gaia Prax_ground Prax_logic Prax_prop Prax_tabling Printf String Term
