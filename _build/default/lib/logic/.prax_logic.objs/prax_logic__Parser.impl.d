lib/logic/parser.ml: Char Hashtbl Lexer List Ops Printf String Term
