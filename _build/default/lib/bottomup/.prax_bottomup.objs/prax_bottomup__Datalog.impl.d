lib/bottomup/datalog.ml: Array Hashtbl List Option Prax_logic Pretty Printf String Term
