(** Worker-pool supervisor — see serve.mli and docs/ROBUSTNESS.md.

    Single-threaded, [select]-based.  The parent never blocks on a
    single worker: all result/stderr pipes are multiplexed, watchdog
    deadlines and retry backoffs are folded into the select timeout,
    and children are reaped with [WNOHANG].  A worker is finalized only
    when it has exited {e and} both its pipes have reached EOF, so a
    frame written just before death is never half-read. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

let m_jobs =
  Metrics.counter ~units:"jobs" ~doc:"batch jobs supervised" "serve.jobs"

let m_spawned =
  Metrics.counter ~units:"processes" ~doc:"worker processes forked"
    "serve.workers_spawned"

let m_crashes =
  Metrics.counter ~units:"attempts"
    ~doc:"worker attempts that died without a valid result frame"
    "serve.crashes"

let m_kills =
  Metrics.counter ~units:"processes"
    ~doc:"hung workers SIGKILLed by the per-attempt watchdog"
    "serve.watchdog_kills"

let m_retries =
  Metrics.counter ~units:"attempts" ~doc:"crashed attempts re-executed"
    "serve.retries"

let m_backoff_ms =
  Metrics.counter ~units:"ms" ~doc:"total retry backoff waited"
    "serve.backoff_ms"

let m_bad_frames =
  Metrics.counter ~units:"frames"
    ~doc:"result frames rejected (magic/length/digest)" "serve.bad_frames"

let m_partials =
  Metrics.counter ~units:"jobs" ~doc:"jobs that completed with a partial result"
    "serve.partials"

let m_cache_answers =
  Metrics.counter ~units:"jobs" ~doc:"jobs answered from the cache hook"
    "serve.cache_answers"

type config = {
  jobs : int;
  retries : int;
  job_timeout : float option;
  budget : Guard.spec;
  reduced_budget_factor : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_jitter : float;
  max_stderr_bytes : int;
  max_frame_bytes : int;
}

let default_config =
  {
    jobs = 2;
    retries = 2;
    job_timeout = None;
    budget = Guard.no_limits;
    reduced_budget_factor = 0.5;
    backoff_base = 0.05;
    backoff_factor = 2.0;
    backoff_jitter = 0.25;
    max_stderr_bytes = 64 * 1024;
    max_frame_bytes = 256 * 1024 * 1024;
  }

type worker_status = Complete | Partial_result of string

type crash = { attempt : int; what : string; stderr : string }

type outcome =
  | Done of { payload : string; partial : string option; from_cache : bool }
  | Crashed of crash

type report = {
  job : string;
  outcome : outcome;
  attempts : int;
  crashes : crash list;
  elapsed : float;
  backoff : float;
}

let outcome_class = function
  | Done { from_cache = true; _ } -> "cached"
  | Done { partial = Some _; _ } -> "partial"
  | Done _ -> "complete"
  | Crashed _ -> "crashed"

(* --- result frames ------------------------------------------------------- *)

(* PXF1 | status byte | 2B BE reason length | 4B BE payload length |
   16B MD5(payload) | reason | payload.  The digest makes a worker that
   dies mid-write or scribbles on the pipe distinguishable from one
   that delivered: a frame either verifies completely or the attempt is
   a crash. *)
let frame_magic = "PXF1"
let frame_header_len = 4 + 1 + 2 + 4 + 16

let encode_frame (status : worker_status) (payload : string) : string =
  let status_byte, reason =
    match status with
    | Complete -> ('C', "")
    | Partial_result r -> ('P', r)
  in
  let b = Buffer.create (frame_header_len + String.length payload) in
  Buffer.add_string b frame_magic;
  Buffer.add_char b status_byte;
  let rlen = min (String.length reason) 0xffff in
  Buffer.add_char b (Char.chr (rlen lsr 8));
  Buffer.add_char b (Char.chr (rlen land 0xff));
  let plen = String.length payload in
  Buffer.add_char b (Char.chr ((plen lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((plen lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((plen lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (plen land 0xff));
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b (String.sub reason 0 rlen);
  Buffer.add_string b payload;
  Buffer.contents b

let decode_frame ~max_frame_bytes (raw : string) :
    (worker_status * string, string) result =
  let n = String.length raw in
  if n = 0 then Error "no result frame (worker wrote nothing)"
  else if n < frame_header_len then Error "truncated frame header"
  else if not (String.equal (String.sub raw 0 4) frame_magic) then
    Error "bad frame magic"
  else
    let status_byte = raw.[4] in
    let rlen = (Char.code raw.[5] lsl 8) lor Char.code raw.[6] in
    let plen =
      (Char.code raw.[7] lsl 24)
      lor (Char.code raw.[8] lsl 16)
      lor (Char.code raw.[9] lsl 8)
      lor Char.code raw.[10]
    in
    if plen > max_frame_bytes then Error "frame payload over limit"
    else if n <> frame_header_len + rlen + plen then
      Error
        (Printf.sprintf "frame length mismatch (have %d bytes, frame says %d)"
           n
           (frame_header_len + rlen + plen))
    else
      let digest = String.sub raw 11 16 in
      let reason = String.sub raw frame_header_len rlen in
      let payload = String.sub raw (frame_header_len + rlen) plen in
      if not (String.equal (Digest.string payload) digest) then
        Error "frame digest mismatch"
      else
        match status_byte with
        | 'C' -> Ok (Complete, payload)
        | 'P' -> Ok (Partial_result reason, payload)
        | c -> Error (Printf.sprintf "unknown frame status %C" c)

(* --- child side ---------------------------------------------------------- *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

(* the budget rung of the degradation ladder: full budget for the first
   attempt and its first retry, then geometrically reduced so a job
   whose budget appetite is what kills it terminates degraded *)
let budget_scale config attempt =
  if attempt <= 2 then 1.0
  else config.reduced_budget_factor ** float_of_int (attempt - 2)

let child_run config ~scale ~worker ~job ~attempt result_fd : 'never =
  let finish code =
    (try Unix.close result_fd with Unix.Unix_error _ -> ());
    Unix._exit code
  in
  let status, payload =
    try
      (* the attempt ladder's scale composes with the host's per-job
         scale (the daemon's pressure tier) multiplicatively *)
      let guard =
        Guard.of_spec
          (Guard.scale_spec config.budget (budget_scale config attempt *. scale))
      in
      worker ~job ~attempt ~guard
    with exn ->
      Printf.eprintf "worker(%s) attempt %d: uncaught exception %s\n%!" job
        attempt (Printexc.to_string exn);
      finish 2
  in
  (try
     let frame = encode_frame status payload in
     write_all result_fd frame 0 (String.length frame)
   with _ -> finish 3);
  finish 0

(* --- parent-side state --------------------------------------------------- *)

type running = {
  r_job : string;
  r_attempt : int;
  r_pid : int;
  r_started : float;
  r_deadline : float option;
  mutable r_result_fd : Unix.file_descr option;
  mutable r_stderr_fd : Unix.file_descr option;
  r_result_buf : Buffer.t;
  r_stderr_buf : Buffer.t;
  mutable r_stderr_dropped : bool;
  mutable r_watchdog_killed : bool;
  mutable r_exit : Unix.process_status option;
  (* carried across attempts of the same job *)
  r_crashes : crash list;
  r_first_spawn : float;
  r_backoff : float;
  r_scale : float;
}

type waiting = {
  w_job : string;
  w_attempt : int;
  w_ready_at : float;
  w_crashes : crash list;
  w_first_spawn : float option;
  w_backoff : float;
  w_scale : float;  (* host-supplied budget scale (pressure tier) *)
}

let signal_name =
  (* OCaml uses its own negative signal numbers; name the ones a worker
     plausibly dies of *)
  let names =
    [
      (Sys.sigkill, "SIGKILL"); (Sys.sigsegv, "SIGSEGV"); (Sys.sigterm, "SIGTERM");
      (Sys.sigint, "SIGINT"); (Sys.sigabrt, "SIGABRT"); (Sys.sigbus, "SIGBUS");
      (Sys.sigfpe, "SIGFPE"); (Sys.sigill, "SIGILL"); (Sys.sigpipe, "SIGPIPE");
      (Sys.sigxfsz, "SIGXFSZ"); (Sys.sigxcpu, "SIGXCPU");
    ]
  in
  fun sg ->
    match List.assoc_opt sg names with
    | Some n -> n
    | None -> Printf.sprintf "signal#%d" sg

let status_string ~killed ~timeout frame_err = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d (%s)" n frame_err
  | Unix.WSIGNALED _ when killed ->
      Printf.sprintf "watchdog SIGKILL after %gs"
        (Option.value timeout ~default:0.)
  | Unix.WSIGNALED sg -> Printf.sprintf "%s (%s)" (signal_name sg) frame_err
  | Unix.WSTOPPED sg -> Printf.sprintf "stopped by %s" (signal_name sg)

let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

(* deterministic jitter in [-1,1] from (job, attempt): reproducible
   batches, decorrelated retry storms *)
let jitter_of job attempt =
  let h = Hashtbl.hash (job, attempt, "serve-jitter") in
  (float_of_int (h land 0xffff) /. 65535. *. 2.) -. 1.

let backoff_delay config ~job ~attempt =
  (* attempt is the one that just failed; first retry (attempt 1
     failed) waits base, then geometric *)
  let exp' = config.backoff_base *. (config.backoff_factor ** float_of_int (attempt - 1)) in
  let j = 1. +. (config.backoff_jitter *. jitter_of job attempt) in
  Float.max 0. (exp' *. j)

(* --- the incremental worker pool ----------------------------------------- *)

exception Interrupted of int

module Pool = struct
  (* The supervisor's state machine, factored out of the batch loop so
     a long-lived host (the analysis daemon) can drive it from its own
     select loop: jobs are [submit]ted at any time, [step] advances
     every worker without blocking, and the host owns the select. *)

  type t = {
    p_config : config;
    p_worker :
      job:string -> attempt:int -> guard:Guard.t -> worker_status * string;
    p_on_child : (unit -> unit) option;
    p_read_chunk : Bytes.t;
    mutable p_waiting : waiting list;
    mutable p_running : running list;
  }

  let create ?(config = default_config) ?on_child ~worker () =
    if config.jobs < 1 then invalid_arg "Serve.Pool.create: jobs < 1";
    if config.retries < 0 then invalid_arg "Serve.Pool.create: retries < 0";
    {
      p_config = config;
      p_worker = worker;
      p_on_child = on_child;
      p_read_chunk = Bytes.create 65536;
      p_waiting = [];
      p_running = [];
    }

  let submit t ?(budget_scale = 1.0) job =
    Metrics.incr m_jobs;
    t.p_waiting <-
      t.p_waiting
      @ [
          {
            w_job = job;
            w_attempt = 1;
            w_ready_at = 0.;
            w_crashes = [];
            w_first_spawn = None;
            w_backoff = 0.;
            w_scale = budget_scale;
          };
        ]

  let pending t = List.length t.p_waiting
  let inflight t = List.length t.p_running
  let idle t = t.p_waiting = [] && t.p_running = []

  let fds t =
    List.concat_map
      (fun r -> Option.to_list r.r_result_fd @ Option.to_list r.r_stderr_fd)
      t.p_running

  let next_wake t =
    let deadlines =
      List.filter_map
        (fun r -> if r.r_watchdog_killed then None else r.r_deadline)
        t.p_running
    in
    let ready =
      List.filter_map
        (fun w -> if w.w_ready_at > 0. then Some w.w_ready_at else None)
        t.p_waiting
    in
    match deadlines @ ready with
    | [] -> None
    | l -> Some (List.fold_left Float.min (List.hd l) (List.tl l))

  let spawn t now (w : waiting) =
    let config = t.p_config in
    (* buffered output written before the fork must not be re-flushed
       by the child *)
    flush stdout;
    flush stderr;
    let r_read, r_write = Unix.pipe () in
    let e_read, e_write = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (* child: restore default signal dispositions (a host's drain
           handler must not leak into workers), drop every parent-side
           fd — including other workers' pipes inherited across fork (a
           sibling holding a pipe open would postpone that worker's EOF
           past its own lifetime) and whatever sockets the host asks to
           close via on_child *)
        (try Sys.set_signal Sys.sigterm Sys.Signal_default
         with Sys_error _ | Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint Sys.Signal_default
         with Sys_error _ | Invalid_argument _ -> ());
        Unix.close r_read;
        Unix.close e_read;
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fds t);
        (match t.p_on_child with
        | Some f -> ( try f () with _ -> ())
        | None -> ());
        Unix.dup2 e_write Unix.stderr;
        Unix.close e_write;
        child_run config ~scale:w.w_scale ~worker:t.p_worker ~job:w.w_job
          ~attempt:w.w_attempt r_write
    | pid ->
        Unix.close r_write;
        Unix.close e_write;
        Metrics.incr m_spawned;
        t.p_running <-
          {
            r_job = w.w_job;
            r_attempt = w.w_attempt;
            r_pid = pid;
            r_started = now;
            r_deadline = Option.map (fun tmo -> now +. tmo) config.job_timeout;
            r_result_fd = Some r_read;
            r_stderr_fd = Some e_read;
            r_result_buf = Buffer.create 1024;
            r_stderr_buf = Buffer.create 256;
            r_stderr_dropped = false;
            r_watchdog_killed = false;
            r_exit = None;
            r_crashes = w.w_crashes;
            r_first_spawn = Option.value w.w_first_spawn ~default:now;
            r_backoff = w.w_backoff;
            r_scale = w.w_scale;
          }
          :: t.p_running

  let drain t (r : running) which =
    let config = t.p_config in
    let fd_opt, buf =
      match which with
      | `Result -> (r.r_result_fd, r.r_result_buf)
      | `Stderr -> (r.r_stderr_fd, r.r_stderr_buf)
    in
    match fd_opt with
    | None -> ()
    | Some fd -> (
        match
          restart_eintr (fun () -> Unix.read fd t.p_read_chunk 0 65536)
        with
        | 0 ->
            Unix.close fd;
            (match which with
            | `Result -> r.r_result_fd <- None
            | `Stderr -> r.r_stderr_fd <- None)
        | n -> (
            match which with
            | `Result ->
                (* a frame larger than the cap can never verify; stop
                   buffering but keep draining so the child is not
                   blocked on a full pipe before we kill it *)
                if
                  Buffer.length buf
                  <= config.max_frame_bytes + frame_header_len
                then Buffer.add_subbytes buf t.p_read_chunk 0 n
            | `Stderr ->
                let room = config.max_stderr_bytes - Buffer.length buf in
                if room >= n then Buffer.add_subbytes buf t.p_read_chunk 0 n
                else begin
                  if room > 0 then Buffer.add_subbytes buf t.p_read_chunk 0 room;
                  r.r_stderr_dropped <- true
                end))

  (* a finalized attempt either yields the job's report or re-enqueues
     the next attempt down the retry ladder *)
  let finalize t now (r : running) : report option =
    let config = t.p_config in
    let exit_status = Option.get r.r_exit in
    let stderr_text =
      Buffer.contents r.r_stderr_buf
      ^ if r.r_stderr_dropped then "\n[stderr truncated]" else ""
    in
    let attempt_result =
      match
        decode_frame ~max_frame_bytes:config.max_frame_bytes
          (Buffer.contents r.r_result_buf)
      with
      | Ok (status, payload) -> Ok (status, payload)
      | Error frame_err ->
          if
            (match exit_status with Unix.WEXITED 0 -> false | _ -> true)
            || Buffer.length r.r_result_buf > 0
          then Metrics.incr m_bad_frames;
          Error
            {
              attempt = r.r_attempt;
              what =
                status_string ~killed:r.r_watchdog_killed
                  ~timeout:config.job_timeout frame_err exit_status;
              stderr = stderr_text;
            }
    in
    match attempt_result with
    | Ok (status, payload) ->
        let partial =
          match status with
          | Complete -> None
          | Partial_result reason -> Some reason
        in
        Some
          {
            job = r.r_job;
            outcome = Done { payload; partial; from_cache = false };
            attempts = r.r_attempt;
            crashes = List.rev r.r_crashes;
            elapsed = now -. r.r_first_spawn;
            backoff = r.r_backoff;
          }
    | Error crash ->
        Metrics.incr m_crashes;
        if r.r_attempt <= config.retries then begin
          let delay = backoff_delay config ~job:r.r_job ~attempt:r.r_attempt in
          Metrics.incr m_retries;
          Metrics.add m_backoff_ms (int_of_float (delay *. 1e3));
          t.p_waiting <-
            {
              w_job = r.r_job;
              w_attempt = r.r_attempt + 1;
              w_ready_at = now +. delay;
              w_crashes = crash :: r.r_crashes;
              w_first_spawn = Some r.r_first_spawn;
              w_backoff = r.r_backoff +. delay;
              w_scale = r.r_scale;
            }
            :: t.p_waiting;
          None
        end
        else
          Some
            {
              job = r.r_job;
              outcome = Crashed crash;
              attempts = r.r_attempt;
              crashes = List.rev (crash :: r.r_crashes);
              elapsed = now -. r.r_first_spawn;
              backoff = r.r_backoff;
            }

  let step t ~readable : report list =
    let config = t.p_config in
    let now = Unix.gettimeofday () in
    (* fill free slots with due work, earliest-ready first *)
    let due, not_due =
      List.partition (fun w -> w.w_ready_at <= now) t.p_waiting
    in
    let due = List.sort (fun a b -> compare a.w_ready_at b.w_ready_at) due in
    let free = config.jobs - List.length t.p_running in
    let to_spawn, overflow =
      if free >= List.length due then (due, [])
      else
        ( List.filteri (fun i _ -> i < free) due,
          List.filteri (fun i _ -> i >= free) due )
    in
    t.p_waiting <- overflow @ not_due;
    List.iter (spawn t now) to_spawn;
    (* drain whatever the host's select saw *)
    List.iter
      (fun r ->
        (match r.r_result_fd with
        | Some fd when List.memq fd readable -> drain t r `Result
        | _ -> ());
        match r.r_stderr_fd with
        | Some fd when List.memq fd readable -> drain t r `Stderr
        | _ -> ())
      t.p_running;
    let now = Unix.gettimeofday () in
    (* watchdog: SIGKILL attempts past their deadline *)
    List.iter
      (fun r ->
        match r.r_deadline with
        | Some d when (not r.r_watchdog_killed) && r.r_exit = None && now > d
          ->
            r.r_watchdog_killed <- true;
            Metrics.incr m_kills;
            (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ())
        | _ -> ())
      t.p_running;
    (* frame-overflow protection: a worker streaming an over-limit
       frame is killed like a hang *)
    List.iter
      (fun r ->
        if
          (not r.r_watchdog_killed)
          && r.r_exit = None
          && Buffer.length r.r_result_buf
             > config.max_frame_bytes + frame_header_len
        then begin
          r.r_watchdog_killed <- true;
          Metrics.incr m_kills;
          try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end)
      t.p_running;
    (* reap exits without blocking *)
    List.iter
      (fun r ->
        if r.r_exit = None then
          match
            restart_eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] r.r_pid)
          with
          | 0, _ -> ()
          | _, st -> r.r_exit <- Some st)
      t.p_running;
    (* finalize workers that exited and whose pipes are fully drained *)
    let done_, still =
      List.partition
        (fun r ->
          r.r_exit <> None && r.r_result_fd = None && r.r_stderr_fd = None)
        t.p_running
    in
    t.p_running <- still;
    List.filter_map (finalize t now) done_

  let cancel_pending t =
    let cancelled = List.map (fun w -> w.w_job) t.p_waiting in
    t.p_waiting <- [];
    cancelled

  let kill_all t =
    let killed = List.map (fun r -> r.r_job) t.p_running in
    List.iter
      (fun r ->
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (match r.r_result_fd with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        (match r.r_stderr_fd with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        (* SIGKILL cannot be caught, so a blocking reap terminates *)
        if r.r_exit = None then
          try ignore (restart_eintr (fun () -> Unix.waitpid [] r.r_pid))
          with Unix.Unix_error _ -> ())
      t.p_running;
    t.p_running <- [];
    killed @ cancel_pending t
end

(* --- the batch supervisor loop -------------------------------------------- *)

let run_batch ?(config = default_config) ?cached ?persist ?on_report ~worker
    (jobs : string list) : report list =
  let results : (string, report) Hashtbl.t = Hashtbl.create 16 in
  let finish_job (rep : report) =
    Hashtbl.replace results rep.job rep;
    (match rep.outcome with
    | Done { partial = Some _; _ } -> Metrics.incr m_partials
    | Done { payload; partial = None; from_cache = false } -> (
        match persist with
        | Some p -> p ~job:rep.job ~payload
        | None -> ())
    | Done _ | Crashed _ -> ());
    match on_report with Some f -> f rep | None -> ()
  in
  let pool = Pool.create ~config ~worker () in
  (* cache pass: answered jobs never fork *)
  List.iter
    (fun job ->
      match Option.bind cached (fun c -> c ~job) with
      | Some payload ->
          Metrics.incr m_jobs;
          Metrics.incr m_cache_answers;
          finish_job
            {
              job;
              outcome = Done { payload; partial = None; from_cache = true };
              attempts = 0;
              crashes = [];
              elapsed = 0.;
              backoff = 0.;
            }
      | None -> Pool.submit pool job)
    jobs;
  (* An interrupted batch must not strand workers: SIGTERM/SIGINT break
     the loop, SIGKILL and reap every in-flight worker, and surface as
     {!Interrupted} so the CLI can take its distinct exit path. *)
  let interrupted = ref None in
  let old_term =
    Sys.signal Sys.sigterm
      (Sys.Signal_handle (fun sg -> interrupted := Some sg))
  in
  let old_int =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun sg -> interrupted := Some sg))
  in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int
  in
  Fun.protect ~finally:restore (fun () ->
      let readable = ref [] in
      while not (Pool.idle pool) do
        (match !interrupted with
        | Some sg ->
            ignore (Pool.kill_all pool);
            raise (Interrupted sg)
        | None -> ());
        List.iter finish_job (Pool.step pool ~readable:!readable);
        readable := [];
        if not (Pool.idle pool) then begin
          let now = Unix.gettimeofday () in
          let wake =
            match Pool.next_wake pool with
            | Some w -> Float.min w (now +. 0.5)
            | None -> now +. 0.5
          in
          let timeout = Float.max 0.01 (wake -. now) in
          match Pool.fds pool with
          | [] -> (
              try Unix.sleepf timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | fds -> (
              match Unix.select fds [] [] timeout with
              | r, _, _ -> readable := r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        end
      done);
  List.filter_map (fun job -> Hashtbl.find_opt results job) jobs
