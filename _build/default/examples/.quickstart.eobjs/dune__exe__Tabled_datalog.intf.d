examples/tabled_datalog.mli:
