(** Well-formedness checking and name resolution for functional programs:

    - consistent arity across a function's equations and call sites;
    - saturated constructor applications (consistent arity per name);
    - pattern linearity (no repeated variable in one equation's patterns);
    - no unbound variables on the right-hand side; a bare lowercase name
      that is not pattern-bound but is defined as a 0-ary function is
      resolved to a call (so [main = fib;] works when [fib] is a CAF). *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let check_linear (eq : Ast.equation) =
  let vars = List.fold_left Ast.pat_vars [] eq.Ast.pats in
  let sorted = List.sort compare vars in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some v -> fail "%s: repeated pattern variable %s" eq.Ast.fname v
  | None -> ()

(* collect arities, failing on inconsistency *)
let arity_table kind pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      match Hashtbl.find_opt tbl name with
      | Some a when a <> arity ->
          fail "%s %s used with arities %d and %d" kind name a arity
      | Some _ -> ()
      | None -> Hashtbl.add tbl name arity)
    pairs;
  tbl

let rec resolve_expr funs bound (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var v ->
      if List.mem v bound then e
      else if Hashtbl.find_opt funs v = Some 0 then Ast.App (v, [])
      else fail "unbound variable %s" v
  | Ast.Int _ -> e
  | Ast.Con (c, es) -> Ast.Con (c, List.map (resolve_expr funs bound) es)
  | Ast.App (f, es) -> (
      match Hashtbl.find_opt funs f with
      | None -> fail "call to undefined function %s/%d" f (List.length es)
      | Some a when a <> List.length es ->
          fail "function %s defined with arity %d, called with %d" f a
            (List.length es)
      | Some _ -> Ast.App (f, List.map (resolve_expr funs bound) es))
  | Ast.Prim (op, es) -> Ast.Prim (op, List.map (resolve_expr funs bound) es)
  | Ast.If (c, t, el) ->
      Ast.If
        ( resolve_expr funs bound c,
          resolve_expr funs bound t,
          resolve_expr funs bound el )
  | Ast.Let (x, e1, e2) ->
      Ast.Let (x, resolve_expr funs bound e1, resolve_expr funs (x :: bound) e2)

(** Check the program and return it with bare references to 0-ary
    functions resolved to calls. *)
let check (p : Ast.program) : Ast.program =
  if p = [] then fail "empty program";
  let funs =
    arity_table "function"
      (List.map (fun eq -> (eq.Ast.fname, List.length eq.Ast.pats)) p)
  in
  ignore (arity_table "constructor" (Ast.constructors p));
  List.map
    (fun eq ->
      check_linear eq;
      let bound = List.fold_left Ast.pat_vars [] eq.Ast.pats in
      { eq with Ast.rhs = resolve_expr funs bound eq.Ast.rhs })
    p

(** Parse and check in one step. *)
let parse_and_check (src : string) : Ast.program =
  check (Fparser.parse_program src)

(** Source lines, for the paper's lines/second throughput metric. *)
let line_count (src : string) : int =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && not (String.length l >= 2 && String.sub l 0 2 = "--"))
  |> List.length
