(** Registry entry for strictness: adapts the typed {!Analyze} driver
    to the generic {!Prax_analysis.Analysis} interface (see
    docs/ANALYSES.md).  Registered by [Prax_analyses.Analyses]. *)

module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics

let counts (st : Prax_tabling.Engine.stats) : Analysis.engine_counts =
  {
    Analysis.calls = st.Prax_tabling.Engine.calls;
    table_entries = st.Prax_tabling.Engine.table_entries;
    answers = st.Prax_tabling.Engine.answers;
    duplicates = st.Prax_tabling.Engine.duplicates;
    resumptions = st.Prax_tabling.Engine.resumptions;
    forced = st.Prax_tabling.Engine.forced;
  }

let result_json (r : Analyze.func_result) : Metrics.json =
  Metrics.Obj
    [
      ("name", Metrics.Str r.Analyze.fname);
      ("arity", Metrics.Int r.Analyze.arity);
      ("e_demand", Metrics.Str (Analyze.demand_string r.Analyze.e_demands));
      ("d_demand", Metrics.Str (Analyze.demand_string r.Analyze.d_demands));
      ( "strict_args",
        Metrics.Arr
          (List.map
             (fun i -> Metrics.Int (i + 1))
             (Analyze.strict_args r)) );
    ]

let wrap ~config (rep : Analyze.report) : Analysis.report =
  {
    Analysis.analysis = "strictness";
    config;
    phases = rep.Analyze.phases;
    status = rep.Analyze.status;
    table_bytes = rep.Analyze.table_bytes;
    clause_count = rep.Analyze.rule_count;
    source_lines = Some rep.Analyze.source_lines;
    engine = Some (counts rep.Analyze.engine_stats);
    payload_text = Analyze.report_to_string rep;
    payload_json = Metrics.Arr (List.map result_json rep.Analyze.results);
  }

let run ~config ~guard src : Analysis.report =
  let supplementary = Analysis.config_bool config "supplementary" in
  wrap ~config (Analyze.analyze ~supplementary ~guard src)

let run_incr ~config ~guard ~cache src : Analysis.report =
  let supplementary = Analysis.config_bool config "supplementary" in
  wrap ~config (Analyze.analyze_incr ~cache ~supplementary ~guard src)

(* Table-compatibility (docs/INCREMENTAL.md): supplementary folding
   changes the derived rule set, hence the table shape — the two
   settings must not share fragments. *)
let table_class config =
  if Analysis.config_bool config "supplementary" then "slg" else "slg-nosupp"

let def : Analysis.t =
  {
    Analysis.name = "strictness";
    doc = "Demand-based strictness analysis of a lazy functional program \
           (Figure 3)";
    kind = Analysis.Fp_program;
    extensions = [ ".eq" ];
    defaults = [ ("supplementary", "true") ];
    run;
    incremental = Some { Analysis.table_class; run_incr };
  }
