(** Shared-memory parallel batch: a fleet of worker {e domains} (OCaml
    multicore) instead of forked worker processes.

    The fork supervisor ({!Serve}) buys OS-process isolation — crashes,
    hangs, OOM kills — at the cost of a fork + re-parse per job.  This
    runner is the other point in the design space: [jobs] domains pull
    jobs off a shared atomic queue and run the worker function {e in
    process}, so a batch over many small inputs spends its time
    analyzing, not forking.  There is no watchdog, no retry ladder, and
    no crash containment beyond catching exceptions: a worker that
    diverges diverges (use the fork runner for hostile inputs; budgets
    still bound each job via [budget]).

    Safe parallel evaluation rests on the domain-local interning state
    of the substrate: the symbol table, hash-consed terms, and BDD
    tables are split per domain at spawn ({!Domain.DLS} with
    [split_from_parent]), and metrics accumulate in per-domain arrays
    that are {!Prax_metrics.Metrics.absorb}ed at join.  Jobs exchange
    only strings with the caller, so nothing interned ever crosses a
    domain boundary.

    Determinism: reports are returned (and [on_report] streamed) in
    input order, with identical payload/outcome classification whatever
    the domain count — [xanalyze batch --runner domains] output is
    byte-for-byte identical between [--jobs 1] and [--jobs N].

    Counters: [serve.jobs], [serve.partials], [serve.crashes],
    [serve.cache_answers] (shared with the fork supervisor) and
    [serve.domains_spawned]. *)

module Guard = Prax_guard.Guard

val run :
  ?jobs:int ->
  ?budget:Guard.spec ->
  ?cached:(job:string -> string option) ->
  ?persist:(job:string -> payload:string -> unit) ->
  ?on_report:(Serve.report -> unit) ->
  worker:
    (job:string -> attempt:int -> guard:Guard.t -> Serve.worker_status * string) ->
  string list ->
  Serve.report list
(** [run ~worker jobs] evaluates every job on a fleet of
    [min jobs (length names)] domains and returns one {!Serve.report}
    per distinct job, in input order.  [worker] runs in a worker domain
    with [attempt = 1] and a fresh guard minted from [budget]; an
    exception it raises is caught and reported as a [Crashed] outcome
    (attempt 1, no stderr capture — the exception text is in [what]).
    [cached] / [persist] / [on_report] have the same contract as in
    {!Serve.run_batch} and all run in the calling domain. *)
