(* Scenario: strictness-driven optimization of a lazy functional program.

   A compiler for a lazy language uses strictness analysis to evaluate
   strict arguments eagerly (call-by-value), avoiding thunk allocation.
   The transformation is sound only for arguments the analysis marks
   strict: forcing a non-strict argument can turn a terminating program
   into a diverging one.

   This example demonstrates both directions:
   - forcing arguments the analysis calls strict never changes results;
   - there exists a non-strict argument whose forcing diverges, so the
     analysis is not vacuous.

   Run with: dune exec examples/lazy_optimizer.exe *)

open Prax

let program =
  {|
-- head of a list, with a default for the empty case
hd([], dflt) = dflt;
hd(x:xs, dflt) = x;

-- an infinite list: safe to pass around lazily, fatal to force deeply
nats(k) = k : nats(k + 1);

-- a computation with no weak-head normal form at all
bot = bot;

-- take is strict in n (under d-demand) but lazy in its list argument
take(0, xs) = [];
take(n, []) = [];
take(n, x:xs) = x : take(n - 1, xs);

sum([]) = 0;
sum(x:xs) = x + sum(xs);

-- strict in both: the result needs both computations
addboth(a, b) = a + b;

main() = sum(take(5, nats(1))) + hd([7], 0 - 1);
|}

let demand_string = Prax_strict.Analyze.demand_string

let () =
  let rep = Strictness.analyze program in
  print_endline "strictness analysis:";
  List.iter
    (fun r ->
      Printf.printf "  %-8s e-demand=%-6s d-demand=%-6s strict args: %s\n"
        r.Prax_strict.Analyze.fname
        (demand_string r.Prax_strict.Analyze.e_demands)
        (demand_string r.Prax_strict.Analyze.d_demands)
        (String.concat ","
           (List.map
              (fun i -> string_of_int (i + 1))
              (Prax_strict.Analyze.strict_args r))))
    rep.Prax_strict.Analyze.results;

  let prog = Fp.Check.parse_and_check program in

  (* 1. forcing analysis-approved strict arguments preserves results *)
  print_endline "\nforcing strict arguments (analysis-approved):";
  let check_call fname args =
    let r = Option.get (Prax_strict.Analyze.result_for rep fname) in
    let strict = Prax_strict.Analyze.strict_args r in
    let lazy_result = Fp.Eval.run prog fname args in
    let eager_result =
      Fp.Eval.run_forcing prog fname args ~force_args:strict
    in
    Printf.printf "  %s%s: lazy=%s eager-on-%s=%s  (%s)\n" fname
      (Printf.sprintf "(%s)"
         (String.concat "," (List.map Fp.Ast.expr_to_string args)))
      lazy_result
      (String.concat "," (List.map (fun i -> string_of_int (i + 1)) strict))
      eager_result
      (if String.equal lazy_result eager_result then "identical" else "BUG")
  in
  check_call "addboth" [ Fp.Ast.Int 3; Fp.Ast.Int 4 ];
  check_call "take"
    [ Fp.Ast.Int 3; Fp.Ast.App ("nats", [ Fp.Ast.Int 10 ]) ];
  check_call "hd"
    [
      Fp.Ast.Con (":", [ Fp.Ast.Int 1; Fp.Ast.Con ("[]", []) ]);
      Fp.Ast.Int 0;
    ];
  check_call "main" [];

  (* 2. the analysis correctly refuses to call take strict in xs: with a
     bottom argument the lazy call terminates, the forced one diverges
     (observed via the fuel bound) *)
  print_endline "\nwhy take must not be strict in its list argument:";
  let args = [ Fp.Ast.Int 0; Fp.Ast.App ("bot", []) ] in
  Printf.printf "  lazily:  take(0, bot) = %s\n" (Fp.Eval.run prog "take" args);
  (match Fp.Eval.run_forcing ~fuel:200_000 prog "take" args ~force_args:[ 1 ] with
  | exception Fp.Eval.Diverged ->
      print_endline
        "  eagerly: forcing take's 2nd argument on bot diverges — correctly, \
         the analysis never marked it strict (equations are alternatives, \
         so even n gets no guaranteed demand: take(n,[]) ignores it)"
  | s -> Printf.printf "  unexpectedly converged to %s\n" s);

  (* 3. thunk-allocation estimate: how many arguments could a compiler
     pass by value? *)
  let total = ref 0 and strict_total = ref 0 in
  List.iter
    (fun r ->
      total := !total + r.Prax_strict.Analyze.arity;
      strict_total :=
        !strict_total + List.length (Prax_strict.Analyze.strict_args r))
    rep.Prax_strict.Analyze.results;
  Printf.printf
    "\n%d of %d argument positions can be passed by value (no thunk)\n"
    !strict_total !total
