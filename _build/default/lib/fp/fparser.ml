(** Recursive-descent parser for the functional language.

    Precedence (loose to tight), following Haskell's conventions:
      or < and < comparisons < [:] (right) < [+ -] < [* div mod] < atoms
    [and]/[or] are desugared to [If] (short-circuit, so the strictness
    analysis never claims their right operand is demanded); [not e]
    desugars to [If(e, False, True)]. *)

exception Error of string

type state = { mutable toks : Flexer.token list }

let peek st = match st.toks with [] -> Flexer.Eof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok msg =
  if peek st = tok then advance st
  else
    raise
      (Error (Printf.sprintf "%s (found %s)" msg (Flexer.to_string (peek st))))

let ffalse = Ast.Con ("False", [])
let ftrue = Ast.Con ("True", [])

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Flexer.Kw "or" ->
      advance st;
      let rhs = parse_or st in
      Ast.If (lhs, ftrue, rhs)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Flexer.Kw "and" ->
      advance st;
      let rhs = parse_and st in
      Ast.If (lhs, rhs, ffalse)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_cons st in
  match peek st with
  | Flexer.Sym (("==" | "/=" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      let rhs = parse_cons st in
      Ast.Prim (op, [ lhs; rhs ])
  | _ -> lhs

and parse_cons st =
  let lhs = parse_add st in
  match peek st with
  | Flexer.Sym ":" ->
      advance st;
      let rhs = parse_cons st in
      Ast.Con (":", [ lhs; rhs ])
  | Flexer.Sym "++" ->
      advance st;
      let rhs = parse_cons st in
      (* list append is a library function the program must define *)
      Ast.App ("append", [ lhs; rhs ])
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Flexer.Sym (("+" | "-") as op) ->
        advance st;
        let rhs = parse_mul st in
        go (Ast.Prim (op, [ lhs; rhs ]))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Flexer.Sym "*" ->
        advance st;
        go (Ast.Prim ("*", [ lhs; parse_atom st ]))
    | Flexer.Kw (("div" | "mod") as op) ->
        advance st;
        go (Ast.Prim (op, [ lhs; parse_atom st ]))
    | _ -> lhs
  in
  go (parse_atom st)

and parse_atom st : Ast.expr =
  match peek st with
  | Flexer.Num n ->
      advance st;
      Ast.Int n
  | Flexer.Sym "-" ->
      advance st;
      let e = parse_atom st in
      (match e with Ast.Int n -> Ast.Int (-n) | _ -> Ast.Prim ("neg", [ e ]))
  | Flexer.Kw "not" ->
      advance st;
      let e = parse_atom st in
      Ast.If (e, ffalse, ftrue)
  | Flexer.Kw "if" ->
      advance st;
      let c = parse_expr st in
      expect st (Flexer.Kw "then") "expected 'then'";
      let t = parse_expr st in
      expect st (Flexer.Kw "else") "expected 'else'";
      let e = parse_expr st in
      Ast.If (c, t, e)
  | Flexer.Kw "let" ->
      advance st;
      let x =
        match peek st with
        | Flexer.LIdent x ->
            advance st;
            x
        | t -> raise (Error ("expected variable after let, found " ^ Flexer.to_string t))
      in
      expect st (Flexer.Sym "=") "expected '=' in let";
      let e1 = parse_expr st in
      expect st (Flexer.Kw "in") "expected 'in'";
      let e2 = parse_expr st in
      Ast.Let (x, e1, e2)
  | Flexer.LIdent name -> (
      advance st;
      match peek st with
      | Flexer.Sym "(" ->
          advance st;
          let args = parse_args st in
          Ast.App (name, args)
      | _ -> Ast.Var name)
  | Flexer.UIdent name -> (
      advance st;
      match peek st with
      | Flexer.Sym "(" ->
          advance st;
          let args = parse_args st in
          Ast.Con (name, args)
      | _ -> Ast.Con (name, []))
  | Flexer.Sym "[" ->
      advance st;
      parse_list st
  | Flexer.Sym "(" -> (
      advance st;
      let e = parse_expr st in
      match peek st with
      | Flexer.Sym ")" ->
          advance st;
          e
      | Flexer.Sym "," ->
          (* tuple *)
          let rec rest acc =
            match peek st with
            | Flexer.Sym "," ->
                advance st;
                rest (parse_expr st :: acc)
            | Flexer.Sym ")" ->
                advance st;
                List.rev acc
            | t -> raise (Error ("in tuple: " ^ Flexer.to_string t))
          in
          let es = e :: rest [] in
          Ast.Con (Printf.sprintf "tup%d" (List.length es), es)
      | t -> raise (Error ("expected ) or , found " ^ Flexer.to_string t)))
  | t -> raise (Error ("unexpected " ^ Flexer.to_string t))

and parse_args st : Ast.expr list =
  match peek st with
  | Flexer.Sym ")" ->
      advance st;
      []
  | _ ->
      let rec go acc =
        let e = parse_expr st in
        match peek st with
        | Flexer.Sym "," ->
            advance st;
            go (e :: acc)
        | Flexer.Sym ")" ->
            advance st;
            List.rev (e :: acc)
        | t -> raise (Error ("in arguments: " ^ Flexer.to_string t))
      in
      go []

and parse_list st : Ast.expr =
  match peek st with
  | Flexer.Sym "]" ->
      advance st;
      Ast.Con ("[]", [])
  | _ ->
      let rec go () =
        let e = parse_expr st in
        match peek st with
        | Flexer.Sym "," ->
            advance st;
            Ast.Con (":", [ e; go () ])
        | Flexer.Sym "]" ->
            advance st;
            Ast.Con (":", [ e; Ast.Con ("[]", []) ])
        | t -> raise (Error ("in list: " ^ Flexer.to_string t))
      in
      go ()

(* --- patterns ------------------------------------------------------------ *)

let rec parse_pat st : Ast.pat =
  let lhs = parse_pat_atom st in
  match peek st with
  | Flexer.Sym ":" ->
      advance st;
      let rhs = parse_pat st in
      Ast.PCon (":", [ lhs; rhs ])
  | _ -> lhs

and parse_pat_atom st : Ast.pat =
  match peek st with
  | Flexer.LIdent v ->
      advance st;
      Ast.PVar v
  | Flexer.Num n ->
      advance st;
      Ast.PInt n
  | Flexer.Sym "-" ->
      advance st;
      (match peek st with
      | Flexer.Num n ->
          advance st;
          Ast.PInt (-n)
      | t -> raise (Error ("expected number after - in pattern, found " ^ Flexer.to_string t)))
  | Flexer.UIdent c -> (
      advance st;
      match peek st with
      | Flexer.Sym "(" ->
          advance st;
          let ps = parse_pat_args st in
          Ast.PCon (c, ps)
      | _ -> Ast.PCon (c, []))
  | Flexer.Sym "[" ->
      advance st;
      parse_pat_list st
  | Flexer.Sym "(" -> (
      advance st;
      let p = parse_pat st in
      match peek st with
      | Flexer.Sym ")" ->
          advance st;
          p
      | Flexer.Sym "," ->
          let rec rest acc =
            match peek st with
            | Flexer.Sym "," ->
                advance st;
                rest (parse_pat st :: acc)
            | Flexer.Sym ")" ->
                advance st;
                List.rev acc
            | t -> raise (Error ("in tuple pattern: " ^ Flexer.to_string t))
          in
          let ps = p :: rest [] in
          Ast.PCon (Printf.sprintf "tup%d" (List.length ps), ps)
      | t -> raise (Error ("in pattern: " ^ Flexer.to_string t)))
  | t -> raise (Error ("unexpected pattern token " ^ Flexer.to_string t))

and parse_pat_args st : Ast.pat list =
  match peek st with
  | Flexer.Sym ")" ->
      advance st;
      []
  | _ ->
      let rec go acc =
        let p = parse_pat st in
        match peek st with
        | Flexer.Sym "," ->
            advance st;
            go (p :: acc)
        | Flexer.Sym ")" ->
            advance st;
            List.rev (p :: acc)
        | t -> raise (Error ("in pattern arguments: " ^ Flexer.to_string t))
      in
      go []

and parse_pat_list st : Ast.pat =
  match peek st with
  | Flexer.Sym "]" ->
      advance st;
      Ast.PCon ("[]", [])
  | _ ->
      let rec go () =
        let p = parse_pat st in
        match peek st with
        | Flexer.Sym "," ->
            advance st;
            Ast.PCon (":", [ p; go () ])
        | Flexer.Sym "]" ->
            advance st;
            Ast.PCon (":", [ p; Ast.PCon ("[]", []) ])
        | t -> raise (Error ("in list pattern: " ^ Flexer.to_string t))
      in
      go ()

(* --- equations ------------------------------------------------------------ *)

let parse_equation st : Ast.equation =
  let fname =
    match peek st with
    | Flexer.LIdent f ->
        advance st;
        f
    | t -> raise (Error ("expected function name, found " ^ Flexer.to_string t))
  in
  let pats =
    match peek st with
    | Flexer.Sym "(" ->
        advance st;
        parse_pat_args st
    | _ -> []
  in
  expect st (Flexer.Sym "=") "expected '=' in equation";
  let rhs = parse_expr st in
  expect st (Flexer.Sym ";") "expected ';' at end of equation";
  { Ast.fname; pats; rhs }

let parse_program (src : string) : Ast.program =
  let st = { toks = Flexer.tokenize src } in
  let rec go acc =
    match peek st with
    | Flexer.Eof -> List.rev acc
    | _ -> go (parse_equation st :: acc)
  in
  go []
