lib/logic/unify.ml: Array Option String Subst Term
