(** press1/press2 — fragments of PRESS (the PRolog Equation Solving
    System), after the Art of Prolog presentation: symbolic equation
    solving by isolation, attraction/collection, and polynomial methods.
    press2 differs in its top-level strategy (homogenization first) and
    simplifier.  Reconstructions; see DESIGN.md. *)

let press1 =
  {|
% press1 -- equation solving by isolation and collection.
:- op(700, xfx, ===).

press_top(Answer) :-
    equation(E),
    solve_equation(E, x, Answer).

equation(x * x - 3 * x + 2 === 0).
equation(2 ^ x === 8).
equation(log(x) + log(5) === 2).

solve_equation(A === B, X, Solution) :-
    single_occurrence(X, A === B),
    position(X, A === B, [Side|Pos]),
    maneuver_sides(Side, A === B, Eq1),
    isolate(Pos, Eq1, Solution).
solve_equation(Lhs === Rhs, X, Solution) :-
    is_polynomial(Lhs, X),
    is_polynomial(Rhs, X),
    polynomial_normal_form(Lhs - Rhs, X, Poly),
    solve_polynomial(Poly, X, Solution).

% --- occurrence bookkeeping ---------------------------------------------
single_occurrence(X, T) :- occurrences(X, T, 1).

occurrences(X, X, 1).
occurrences(X, T, 0) :- atomic_term(T), T \= X.
occurrences(X, T, N) :-
    compound_term(T),
    T =.. [_|Args],
    occ_list(X, Args, N).

occ_list(_, [], 0).
occ_list(X, [A|As], N) :-
    occurrences(X, A, N1),
    occ_list(X, As, N2),
    N is N1 + N2.

atomic_term(T) :- atom(T).
atomic_term(T) :- number(T).

compound_term(T) :- \+ atomic_term(T).

% --- position and isolation ----------------------------------------------
position(X, X, []).
position(X, T, [N|Pos]) :-
    compound_term(T),
    T =.. [_|Args],
    nth_arg(Args, 1, N, Arg),
    position(X, Arg, Pos).

nth_arg([A|_], N, N, A).
nth_arg([_|As], I, N, A) :- I1 is I + 1, nth_arg(As, I1, N, A).

maneuver_sides(1, L === R, L === R).
maneuver_sides(2, L === R, R === L).

isolate([], Eq, Eq).
isolate([N|Pos], Eq, Answer) :-
    isolax(N, Eq, Eq1),
    isolate(Pos, Eq1, Answer).

% isolation axioms: move everything but the marked argument across
isolax(1, A + B === C, A === C - B).
isolax(2, A + B === C, B === C - A).
isolax(1, A - B === C, A === C + B).
isolax(2, A - B === C, B === A - C).
isolax(1, A * B === C, A === C / B) :- B \= 0.
isolax(2, A * B === C, B === C / A) :- A \= 0.
isolax(1, A / B === C, A === C * B).
isolax(2, A / B === C, B === A / C).
isolax(1, A ^ B === C, A === C ^ (1 / B)).
isolax(2, A ^ B === C, B === log(C) / log(A)).
isolax(1, log(A) === C, A === exp(C)).
isolax(1, exp(A) === C, A === log(C)).
isolax(1, -(A) === C, A === -(C)).

% --- polynomial route ------------------------------------------------------
is_polynomial(X, X).
is_polynomial(T, _) :- number(T).
is_polynomial(A + B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A - B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A * B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A ^ N, X) :- is_polynomial(A, X), number(N), N >= 0.
is_polynomial(-(A), X) :- is_polynomial(A, X).

% normal form: list of coeff(Power, Coefficient), highest power first
polynomial_normal_form(T, X, Poly) :-
    poly_of(T, X, Raw),
    collect_terms(Raw, Poly).

poly_of(X, X, [coeff(1, 1)]).
poly_of(N, _, [coeff(0, N)]) :- number(N).
poly_of(A + B, X, P) :-
    poly_of(A, X, PA), poly_of(B, X, PB), append(PA, PB, P).
poly_of(A - B, X, P) :-
    poly_of(A, X, PA), poly_of(B, X, PB),
    negate_poly(PB, NB), append(PA, NB, P).
poly_of(-(A), X, P) :-
    poly_of(A, X, PA), negate_poly(PA, P).
poly_of(A * B, X, P) :-
    poly_of(A, X, PA), poly_of(B, X, PB),
    poly_product(PA, PB, P).
poly_of(A ^ N, X, P) :-
    number(N),
    poly_power(N, A, X, P).

poly_power(0, _, _, [coeff(0, 1)]).
poly_power(N, A, X, P) :-
    N > 0, N1 is N - 1,
    poly_power(N1, A, X, P1),
    poly_of(A, X, PA),
    poly_product(P1, PA, P).

negate_poly([], []).
negate_poly([coeff(P, C)|Rest], [coeff(P, C1)|Out]) :-
    C1 is -C, negate_poly(Rest, Out).

poly_product([], _, []).
poly_product([coeff(P, C)|Rest], Q, Out) :-
    scale_poly(Q, P, C, Scaled),
    poly_product(Rest, Q, Rec),
    append(Scaled, Rec, Out).

scale_poly([], _, _, []).
scale_poly([coeff(P, C)|Rest], DP, DC, [coeff(P1, C1)|Out]) :-
    P1 is P + DP, C1 is C * DC,
    scale_poly(Rest, DP, DC, Out).

collect_terms(Raw, Poly) :-
    max_power(Raw, 0, Max),
    gather(Max, Raw, Poly).

max_power([], M, M).
max_power([coeff(P, _)|Rest], Acc, M) :-
    ( P > Acc -> max_power(Rest, P, M) ; max_power(Rest, Acc, M) ).

gather(P, Raw, Out) :-
    P >= 0,
    coeff_sum(Raw, P, C),
    P1 is P - 1,
    ( P1 >= 0 -> gather(P1, Raw, Rest) ; Rest = [] ),
    ( C =:= 0, Out = Rest
    ; C =\= 0, Out = [coeff(P, C)|Rest]
    ).

coeff_sum([], _, 0).
coeff_sum([coeff(P, C)|Rest], P, S) :-
    coeff_sum(Rest, P, S1), S is S1 + C.
coeff_sum([coeff(Q, _)|Rest], P, S) :-
    Q \= P, coeff_sum(Rest, P, S).

solve_polynomial([coeff(1, A), coeff(0, B)], X, X === Val) :-
    Val is -B // A.
solve_polynomial([coeff(2, A), coeff(1, B), coeff(0, C)], X, X === Root) :-
    Disc is B * B - 4 * A * C,
    Disc >= 0,
    isqrt(Disc, S),
    Root is (-B + S) // (2 * A).
solve_polynomial([coeff(2, A), coeff(1, B)], X, Answer) :-
    ( Answer = (X === 0)
    ; Val is -B // A, Answer = (X === Val)
    ).

isqrt(N, S) :- between_num(0, N, S), S * S =< N, S1 is S + 1, S1 * S1 > N.

between_num(L, _, L).
between_num(L, H, X) :- L < H, L1 is L + 1, between_num(L1, H, X).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
|}

let press2 =
  {|
% press2 -- the homogenization variant of the equation solver: rewrite
% the equation over a single reduced unknown, then solve by isolation.
:- op(700, xfx, ===).

press_top(Answer) :-
    equation(E),
    solve(E, x, Answer).

equation(5 ^ x - 25 === 100).
equation(2 ^ (2 * x) - 5 * 2 ^ (x + 1) + 16 === 0).
equation(3 ^ x + 9 ^ x === 12).

solve(Eq, X, Answer) :-
    homogenize(Eq, X, U, Eq1),
    % the rewritten equation is over the fresh unknown u
    solve_reduced(Eq1, u, u === Val),
    recover(X, U, Val, Answer).
solve(Eq, X, Answer) :-
    solve_reduced(Eq, X, Answer).

% --- homogenization --------------------------------------------------------
homogenize(Eq, X, U, Eq1) :-
    offenders(Eq, X, Offs),
    Offs \= [],
    reduced_term(Offs, X, U),
    rewrite_all(Eq, Offs, X, U, Eq1).

offenders(A === B, X, Offs) :-
    offs(A, X, O1),
    offs(B, X, O2),
    append(O1, O2, Offs).

offs(T, X, [T]) :- exponential(T, X).
offs(T, _, []) :- atom(T).
offs(T, _, []) :- number(T).
offs(A + B, X, O) :- offs(A, X, O1), offs(B, X, O2), append(O1, O2, O).
offs(A - B, X, O) :- offs(A, X, O1), offs(B, X, O2), append(O1, O2, O).
offs(A * B, X, O) :- offs(A, X, O1), offs(B, X, O2), append(O1, O2, O).
offs(-(A), X, O) :- offs(A, X, O).

exponential(B ^ E, X) :- number(B), contains_var(X, E).

contains_var(X, X).
contains_var(X, A + B) :- ( contains_var(X, A) ; contains_var(X, B) ).
contains_var(X, A - B) :- ( contains_var(X, A) ; contains_var(X, B) ).
contains_var(X, A * B) :- ( contains_var(X, A) ; contains_var(X, B) ).
contains_var(X, _ ^ E) :- contains_var(X, E).

% the reduced unknown: smallest base raised to x
reduced_term([B ^ _|_], X, B ^ X).

% rewrite each offender as a power of the reduced term
rewrite_all(A === B, Offs, X, U, A1 === B1) :-
    rw(A, Offs, X, U, A1),
    rw(B, Offs, X, U, B1).

rw(T, Offs, X, U, T1) :-
    memberq(T, Offs),
    express(T, X, U, T1).
rw(T, _, _, _, T) :- atom(T).
rw(T, _, _, _, T) :- number(T).
rw(A + B, Offs, X, U, A1 + B1) :- rw(A, Offs, X, U, A1), rw(B, Offs, X, U, B1).
rw(A - B, Offs, X, U, A1 - B1) :- rw(A, Offs, X, U, A1), rw(B, Offs, X, U, B1).
rw(A * B, Offs, X, U, A1 * B1) :- rw(A, Offs, X, U, A1), rw(B, Offs, X, U, B1).
rw(-(A), Offs, X, U, -(A1)) :- rw(A, Offs, X, U, A1).

% express B^E in terms of U = B0^x
express(B ^ X0, X0, B0 ^ X0, u) :- B =:= B0.
express(B ^ (K * X0), X0, B0 ^ X0, u ^ K) :- B =:= B0.
express(B ^ (X0 + C), X0, B0 ^ X0, u * F) :- B =:= B0, F is B ^ C.
express(B ^ X0, X0, B0 ^ X0, u ^ K) :-
    B > B0, power_of(B, B0, K).

power_of(B, B0, K) :-
    between_num(1, 8, K),
    pow(B0, K, B).

pow(_, 0, 1).
pow(B, K, P) :- K > 0, K1 is K - 1, pow(B, K1, P1), P is P1 * B.

memberq(X, [X|_]).
memberq(X, [_|Ys]) :- memberq(X, Ys).

between_num(L, _, L).
between_num(L, H, X) :- L < H, L1 is L + 1, between_num(L1, H, X).

% --- reduced solving --------------------------------------------------------
solve_reduced(A === B, X, Answer) :-
    simplify(A, A1),
    simplify(B, B1),
    isolate_eq(A1 === B1, X, Answer).

isolate_eq(Eq, X, Answer) :-
    one_occurrence(X, Eq),
    isol(Eq, X, Answer).

one_occurrence(X, A === B) :-
    count_occ(X, A, NA),
    count_occ(X, B, NB),
    N is NA + NB,
    N =:= 1.

count_occ(X, X, 1).
count_occ(X, T, 0) :- atom(T), T \= X.
count_occ(_, T, 0) :- number(T).
count_occ(X, A + B, N) :- count_occ(X, A, N1), count_occ(X, B, N2), N is N1 + N2.
count_occ(X, A - B, N) :- count_occ(X, A, N1), count_occ(X, B, N2), N is N1 + N2.
count_occ(X, A * B, N) :- count_occ(X, A, N1), count_occ(X, B, N2), N is N1 + N2.
count_occ(X, A ^ B, N) :- count_occ(X, A, N1), count_occ(X, B, N2), N is N1 + N2.
count_occ(X, -(A), N) :- count_occ(X, A, N).

isol(X === R, X, X === R).
isol(A + B === C, X, Answer) :-
    ( count_occ(X, A, 1) -> isol(A === C - B, X, Answer)
    ; isol(B === C - A, X, Answer)
    ).
isol(A - B === C, X, Answer) :-
    ( count_occ(X, A, 1) -> isol(A === C + B, X, Answer)
    ; isol(B === A - C, X, Answer)
    ).
isol(A * B === C, X, Answer) :-
    ( count_occ(X, A, 1) -> isol(A === C / B, X, Answer)
    ; isol(B === C / A, X, Answer)
    ).
isol(A ^ K === C, X, Answer) :-
    number(K),
    isol(A === root(C, K), X, Answer).

% --- simplifier ---------------------------------------------------------------
simplify(T, T1) :-
    rewrite(T, T0),
    ( T0 = T -> T1 = T ; simplify(T0, T1) ).

rewrite(A + 0, A).
rewrite(0 + A, A).
rewrite(A - 0, A).
rewrite(A * 1, A).
rewrite(1 * A, A).
rewrite(A * 0, 0).
rewrite(0 * A, 0).
rewrite(A ^ 1, A).
rewrite(_ ^ 0, 1).
rewrite(A + B, C) :- number(A), number(B), C is A + B.
rewrite(A - B, C) :- number(A), number(B), C is A - B.
rewrite(A * B, C) :- number(A), number(B), C is A * B.
rewrite(A + B, A1 + B1) :- rewrite(A, A1), B1 = B.
rewrite(A + B, A + B1) :- rewrite(B, B1).
rewrite(A * B, A1 * B) :- rewrite(A, A1).
rewrite(A * B, A * B1) :- rewrite(B, B1).
rewrite(A - B, A1 - B) :- rewrite(A, A1).
rewrite(A - B, A - B1) :- rewrite(B, B1).
rewrite(T, T).

recover(X, _ ^ X, Val, X === log_val(Val)).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
|}
