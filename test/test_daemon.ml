(* The resident analysis daemon (docs/ROBUSTNESS.md "serving under
   load").  In-process: token-bucket refill timing and the prax.wire
   grammar.  End-to-end against a live praxd: analyze round trips, the
   warm cache, queue-full and rate-limit shedding, malformed/oversized
   frame rejection, drain with in-flight jobs, stale-socket recovery
   after SIGKILL, and refusal to double-serve a live socket. *)

module Metrics = Prax_metrics.Metrics
module Wire = Prax_daemon.Wire
module Admission = Prax_daemon.Admission
module Pressure = Prax_daemon.Pressure
module Lru = Prax_daemon.Lru
module Client = Prax_daemon.Client
module Inject = Prax_guard.Inject

let bin name =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bin")
    name

let praxd = bin "praxd.exe"
let xanalyze = bin "xanalyze.exe"

(* --- admission: token buckets (deterministic, clock injected) ----------- *)

let test_token_bucket_refill () =
  let a = Admission.create ~rate:2.0 ~burst:2.0 in
  (* a fresh client starts with a full burst *)
  Alcotest.(check bool) "burst 1" true (Admission.admit a ~client:"c" ~now:0.);
  Alcotest.(check bool) "burst 2" true (Admission.admit a ~client:"c" ~now:0.);
  Alcotest.(check bool) "empty" false (Admission.admit a ~client:"c" ~now:0.);
  (* refill at 2 tokens/s: 0.4s -> 0.8 tokens, still short *)
  Alcotest.(check bool) "0.4s: not yet" false
    (Admission.admit a ~client:"c" ~now:0.4);
  (* 0.55s from empty: >= 1 token (0.4s refill left the 0.8 in place) *)
  Alcotest.(check bool) "0.55s: one token back" true
    (Admission.admit a ~client:"c" ~now:0.55);
  Alcotest.(check bool) "and spent again" false
    (Admission.admit a ~client:"c" ~now:0.55);
  (* a long idle caps at burst, not unbounded accumulation *)
  Alcotest.(check bool) "cap 1" true (Admission.admit a ~client:"c" ~now:60.);
  Alcotest.(check bool) "cap 2" true (Admission.admit a ~client:"c" ~now:60.);
  Alcotest.(check bool) "capped at burst" false
    (Admission.admit a ~client:"c" ~now:60.);
  (* time running backwards refills nothing and does not raise *)
  Alcotest.(check bool) "clock skew safe" false
    (Admission.admit a ~client:"c" ~now:59.);
  (* clients are independent *)
  Alcotest.(check bool) "other client unaffected" true
    (Admission.admit a ~client:"d" ~now:60.);
  Alcotest.(check int) "two clients tracked" 2 (Admission.clients a)

let test_token_bucket_disabled () =
  let a = Admission.create ~rate:0. ~burst:1.0 in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "rate 0 admits (%d)" i)
      true
      (Admission.admit a ~client:"c" ~now:0.)
  done

(* --- pressure tiers (pure arithmetic, no daemon) -------------------------- *)

let test_pressure_tiers () =
  let decide pending inflight =
    Pressure.decide ~max_queue:4 ~jobs:4 ~pending ~inflight
  in
  let tier_of pending inflight =
    match decide pending inflight with
    | Pressure.Admit t -> t.Pressure.level
    | Pressure.Shed _ -> Alcotest.failf "unexpected shed at %d+%d" pending inflight
  in
  (* capacity 8: occupancy < 1/2 is full budget *)
  Alcotest.(check int) "idle is tier 0" 0 (tier_of 0 0);
  Alcotest.(check int) "3/8 is tier 0" 0 (tier_of 1 2);
  (* the 1/2 boundary enters the reduced tier *)
  Alcotest.(check int) "4/8 is tier 1" 1 (tier_of 2 2);
  Alcotest.(check int) "5/8 is tier 1" 1 (tier_of 1 4);
  (* the 3/4 boundary enters the minimal tier *)
  Alcotest.(check int) "6/8 is tier 2" 2 (tier_of 2 4);
  Alcotest.(check int) "7/8 is tier 2" 2 (tier_of 3 4);
  (* the shed point is unchanged: pending at max_queue sheds, inflight
     alone never does *)
  (match decide 4 0 with
  | Pressure.Shed { retry_after_ms } ->
      Alcotest.(check bool) "shed hint in range" true
        (retry_after_ms >= 50 && retry_after_ms <= 5000)
  | Pressure.Admit _ -> Alcotest.fail "full queue must shed");
  Alcotest.(check int) "full slots alone admit (minimal)" 2 (tier_of 3 4);
  (* tier scales are the documented ladder *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "ladder scales"
    [ (0, 1.0); (1, 0.5); (2, 0.25) ]
    (List.map (fun t -> (t.Pressure.level, t.Pressure.scale)) Pressure.tiers);
  (* the retry hint scales with backlog per worker slot and clamps *)
  Alcotest.(check int) "hint floors at 50ms" 50
    (Pressure.retry_after_ms ~jobs:8 ~pending:0 ~inflight:0);
  Alcotest.(check int) "300ms for 5 backlogged over 2 slots" 300
    (Pressure.retry_after_ms ~jobs:2 ~pending:3 ~inflight:2);
  Alcotest.(check int) "hint caps at 5s" 5000
    (Pressure.retry_after_ms ~jobs:1 ~pending:1000 ~inflight:1)

(* --- the client's deterministic backoff ----------------------------------- *)

let test_backoff_deterministic () =
  let d1 =
    Client.backoff_delay ~key:"k" ~attempt:2 ~base:0.2 ~cap:10.
      ~retry_after_ms:None
  in
  let d2 =
    Client.backoff_delay ~key:"k" ~attempt:2 ~base:0.2 ~cap:10.
      ~retry_after_ms:None
  in
  Alcotest.(check (float 0.)) "same key+attempt is reproducible" d1 d2;
  (* capped exponential: attempt n is within [0.75, 1.25] x base*2^(n-1),
     and never exceeds the cap *)
  for attempt = 1 to 10 do
    let d =
      Client.backoff_delay ~key:"k" ~attempt ~base:0.1 ~cap:2.
        ~retry_after_ms:None
    in
    let expo = Float.min 2. (0.1 *. (2. ** float_of_int (attempt - 1))) in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in jitter band" attempt)
      true
      (d >= (0.75 *. expo) -. 1e-9 && d <= 2.0 +. 1e-9);
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d capped" attempt)
      true (d <= 2.0 +. 1e-9)
  done;
  (* the server's retry_after_ms hint floors the delay *)
  let floored =
    Client.backoff_delay ~key:"k" ~attempt:1 ~base:0.1 ~cap:10.
      ~retry_after_ms:(Some 3000)
  in
  Alcotest.(check bool) "hint floors the delay" true (floored >= 3.0);
  (* no thundering herd: distinct clients spread across the jitter band
     instead of colliding on one instant *)
  let delays =
    List.init 32 (fun i ->
        Client.backoff_delay
          ~key:(Printf.sprintf "client-%d" i)
          ~attempt:1 ~base:1.0 ~cap:10. ~retry_after_ms:None)
  in
  let distinct = List.sort_uniq compare delays in
  Alcotest.(check bool) "32 clients spread over > 16 instants" true
    (List.length distinct > 16);
  List.iter
    (fun d ->
      Alcotest.(check bool) "every delay inside the band" true
        (d >= 0.75 && d <= 1.25))
    delays

(* --- the LRU bound on the resident cache ---------------------------------- *)

let test_lru_bounds () =
  let evictions = ref [] in
  let t =
    Lru.create
      ~on_evict:(fun ~key -> evictions := key :: !evictions)
      ~max_entries:3 ~max_bytes:1000 ()
  in
  Lru.put t "a" "1";
  Lru.put t "b" "2";
  Lru.put t "c" "3";
  Alcotest.(check int) "three live" 3 (Lru.length t);
  (* touching "a" makes "b" the LRU victim of the next insert *)
  Alcotest.(check (option string)) "find a" (Some "1") (Lru.find t "a");
  Lru.put t "d" "4";
  Alcotest.(check int) "entry cap holds" 3 (Lru.length t);
  Alcotest.(check (list string)) "lru victim was b" [ "b" ] !evictions;
  Alcotest.(check (option string)) "b evicted" None (Lru.find t "b");
  Alcotest.(check (option string)) "a survived (recency)" (Some "1")
    (Lru.find t "a");
  (* byte cap: a large value evicts until bytes fit *)
  evictions := [];
  let big = Lru.create ~max_entries:100 ~max_bytes:20 () in
  Lru.put big "k1" "0123456789";  (* 12 bytes *)
  Lru.put big "k2" "0123";  (* 6 bytes; total 18 *)
  Lru.put big "k3" "0123456789";  (* would be 30: evicts k1 then fits 18 *)
  Alcotest.(check int) "byte cap holds" 2 (Lru.length big);
  Alcotest.(check bool) "bytes within cap" true (Lru.bytes big <= 20);
  Alcotest.(check (option string)) "oldest evicted" None (Lru.find big "k1");
  (* a value larger than the whole cache is refused outright *)
  Lru.put big "k4" (String.make 50 'x');
  Alcotest.(check (option string)) "oversized refused" None (Lru.find big "k4");
  Alcotest.(check bool) "cache not flushed for it" true (Lru.length big >= 1);
  (* replace refreshes bytes accounting *)
  let r = Lru.create ~max_entries:10 ~max_bytes:100 () in
  Lru.put r "k" "aaaa";
  Lru.put r "k" "bb";
  Alcotest.(check int) "replace keeps one entry" 1 (Lru.length r);
  Alcotest.(check int) "replace recounts bytes" 3 (Lru.bytes r);
  Lru.remove r "k";
  Alcotest.(check int) "remove empties" 0 (Lru.length r);
  Alcotest.(check int) "remove zeroes bytes" 0 (Lru.bytes r)

(* --- the chaos-plan grammar ----------------------------------------------- *)

let test_chaos_plan_grammar () =
  (* the env grammar: kind@N, short and long fault names *)
  (match Inject.daemon_plan_of_string "crash@1, conn-reset@3,drain@5" with
  | Ok plan ->
      Alcotest.(check int) "three directives" 3 (List.length plan);
      Alcotest.(check (list string)) "fault at 1"
        [ "worker-crash" ]
        (List.map Inject.daemon_fault_name (Inject.daemon_faults_at plan 1));
      Alcotest.(check (list string)) "fault at 3"
        [ "conn-reset" ]
        (List.map Inject.daemon_fault_name (Inject.daemon_faults_at plan 3));
      Alcotest.(check (list string)) "nothing at 2" []
        (List.map Inject.daemon_fault_name (Inject.daemon_faults_at plan 2))
  | Error e -> Alcotest.failf "good plan rejected: %s" e);
  (* a bad plan fails loudly, never silently runs a different drill *)
  let reject what s =
    match Inject.daemon_plan_of_string s with
    | Ok _ -> Alcotest.failf "%s: accepted %S" what s
    | Error _ -> ()
  in
  reject "unknown fault" "meteor@1";
  reject "missing ordinal" "crash";
  reject "zero ordinal" "crash@0";
  reject "non-numeric ordinal" "crash@soon";
  (* the JSON plan document (praxd serve --chaos) *)
  (match
     Inject.daemon_plan_of_json
       {|{"faults":[{"at":2,"fault":"store-enospc"},{"at":2,"fault":"worker-hang"}]}|}
   with
  | Ok plan ->
      Alcotest.(check (list string)) "two faults share ordinal 2"
        [ "store-enospc"; "worker-hang" ]
        (List.map Inject.daemon_fault_name (Inject.daemon_faults_at plan 2))
  | Error e -> Alcotest.failf "good JSON plan rejected: %s" e);
  (match Inject.daemon_plan_of_json "]junk[" with
  | Ok _ -> Alcotest.fail "non-JSON plan accepted"
  | Error _ -> ());
  match Inject.daemon_plan_of_json {|{"faults":[{"at":0,"fault":"drain"}]}|} with
  | Ok _ -> Alcotest.fail "zero ordinal accepted in JSON"
  | Error _ -> ()

(* --- the wire grammar ---------------------------------------------------- *)

let test_wire_grammar () =
  let reject line what =
    match Wire.parse_request line with
    | Ok _ -> Alcotest.failf "%s: accepted %S" what line
    | Error _ -> ()
  in
  reject "not JSON" "]junk[";
  reject "wrong schema" {|{"wire":"other.wire","version":1,"op":"ping"}|};
  reject "future version" {|{"wire":"prax.wire","version":99,"op":"ping"}|};
  reject "unknown op" {|{"wire":"prax.wire","version":1,"op":"reboot"}|};
  reject "missing op" {|{"wire":"prax.wire","version":1}|};
  reject "analyze missing source"
    {|{"wire":"prax.wire","version":1,"op":"analyze","analysis":"g","input":"f"}|};
  reject "non-string config value"
    {|{"wire":"prax.wire","version":1,"op":"analyze","analysis":"g","input":"f","source":"s","config":{"k":2}}|};
  (* a well-formed analyze round-trips through the serializer *)
  let req =
    {
      Wire.id = Metrics.Int 7;
      client = Some "t";
      op =
        Wire.Analyze
          {
            analysis = "groundness";
            input = "x.pl";
            source = "p(a).";
            config = [ ("mode", "dynamic") ];
          };
    }
  in
  (match Wire.parse_request (Wire.request_to_string req) with
  | Error e -> Alcotest.failf "round trip: %s" e
  | Ok r -> (
      Alcotest.(check bool) "id survives" true (r.Wire.id = Metrics.Int 7);
      match r.Wire.op with
      | Wire.Analyze { analysis; config; _ } ->
          Alcotest.(check string) "analysis survives" "groundness" analysis;
          Alcotest.(check (list (pair string string)))
            "config survives"
            [ ("mode", "dynamic") ]
            config
      | _ -> Alcotest.fail "op changed"));
  (* response documents validate and carry their status *)
  let line = Wire.response ~id:(Metrics.Int 7) ~status:"overloaded" [] in
  match Wire.response_status (Metrics.json_of_string line) with
  | Ok s -> Alcotest.(check string) "status extracted" "overloaded" s
  | Error e -> Alcotest.failf "response rejected: %s" e

(* --- e2e plumbing --------------------------------------------------------- *)

let env_with extra =
  Array.append (Unix.environment ())
    (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) extra))

let fresh_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "praxd-t-%d-%d.sock" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xfffff))

let devnull () = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0o600

(* spawn praxd serve with [args]; stdout/stderr to /dev/null *)
let spawn_praxd ?(env = []) ~socket args =
  let null = devnull () in
  let pid =
    Unix.create_process_env praxd
      (Array.of_list
         ([ praxd; "serve"; "--socket"; socket; "-q" ] @ args))
      (env_with env) null null null
  in
  Unix.close null;
  pid

let ping ?(timeout = 5.) socket =
  Client.request ~timeout ~socket
    { Wire.id = Metrics.Int 0; client = Some "test"; op = Wire.Ping }

let wait_ready socket =
  let rec loop n =
    if n = 0 then Alcotest.fail "praxd did not become ready"
    else
      match ping socket with
      | Ok ("ok", _) -> ()
      | _ ->
          Unix.sleepf 0.05;
          loop (n - 1)
  in
  loop 200

let reap ?(kill = true) pid =
  if kill then begin
    (* graceful first: SIGTERM lets the daemon drain and SIGKILL its own
       workers.  A bare SIGKILL here would orphan any hung worker, which
       inherits the test runner's stdout and deadlocks the harness
       waiting for pipe EOF. *)
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 8. in
    let rec poll () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            match Unix.waitpid [] pid with
            | _, st -> st
            | exception Unix.Unix_error _ -> Unix.WEXITED 255
          end
          else begin
            Unix.sleepf 0.02;
            poll ()
          end
      | _, st -> st
      | exception Unix.Unix_error _ -> Unix.WEXITED 255
    in
    poll ()
  end
  else
    match Unix.waitpid [] pid with
    | _, st -> st
    | exception Unix.Unix_error _ -> Unix.WEXITED 255

let with_daemon ?env ?(args = []) f =
  let socket = fresh_socket () in
  let pid = spawn_praxd ?env ~socket args in
  Fun.protect
    ~finally:(fun () ->
      ignore (reap pid);
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (socket ^ ".pid") with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready socket;
      f ~socket ~pid)

let analyze_req ?(client = "test") ~input ~source () =
  {
    Wire.id = Metrics.Int 1;
    client = Some client;
    op =
      Wire.Analyze
        { analysis = "groundness"; input; source; config = [] };
  }

let request_status ?(timeout = 30.) socket req =
  match Client.request ~timeout ~socket req with
  | Ok (status, doc) -> (status, doc)
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

(* raw-socket side of the protocol, for async sends and bad frames *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd s =
  let n = String.length s in
  let w = ref 0 in
  while !w < n do
    w := !w + Unix.write_substring fd s !w (n - !w)
  done

let raw_recv_line ?(timeout = 10.) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1 in
  let rec loop () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then Alcotest.fail "timed out awaiting response line";
    match Unix.select [ fd ] [] [] left with
    | [], _, _ -> loop ()
    | _ -> (
        match Unix.read fd chunk 0 1 with
        | 0 -> `Eof
        | _ ->
            if Bytes.get chunk 0 = '\n' then `Line (Buffer.contents buf)
            else begin
              Buffer.add_bytes buf chunk;
              loop ()
            end)
  in
  loop ()

let status_of_line line =
  match Wire.response_status (Metrics.json_of_string line) with
  | Ok s -> s
  | Error e -> Alcotest.failf "bad response %S: %s" line e

(* --- e2e: round trips, warm cache, lifecycle ------------------------------ *)

let test_analyze_and_warm_cache () =
  with_daemon (fun ~socket ~pid ->
      let req = analyze_req ~input:"t.pl" ~source:"p(a). q(X) :- p(X)." () in
      let status, doc = request_status socket req in
      Alcotest.(check string) "cold is complete" "complete" status;
      (match Metrics.member "report" doc with
      | Some _ -> ()
      | None -> Alcotest.fail "no report in response");
      (* the identical request is answered from the resident cache *)
      let status2, _ = request_status socket req in
      Alcotest.(check string) "repeat is cached" "cached" status2;
      (* a config change is a different key: cold again *)
      let status3, _ =
        request_status socket
          {
            (analyze_req ~input:"t.pl" ~source:"p(a). q(X) :- p(X)." ()) with
            Wire.op =
              Wire.Analyze
                {
                  analysis = "groundness";
                  input = "t.pl";
                  source = "p(a). q(X) :- p(X).";
                  config = [ ("mode", "compiled") ];
                };
          }
      in
      Alcotest.(check string) "distinct config misses" "complete" status3;
      (* unknown analysis: a structured error, daemon stays up *)
      let status4, _ =
        request_status socket
          {
            Wire.id = Metrics.Int 9;
            client = Some "test";
            op =
              Wire.Analyze
                { analysis = "no_such"; input = "x"; source = "p(a)."; config = [] };
          }
      in
      Alcotest.(check string) "unknown analysis errors" "error" status4;
      (* the stats verb reports the daemon.* family under schema v6 *)
      let status5, doc5 =
        request_status socket
          { Wire.id = Metrics.Int 2; client = Some "test"; op = Wire.Stats }
      in
      Alcotest.(check string) "stats ok" "ok" status5;
      (match Metrics.member "stats" doc5 with
      | Some stats -> (
          (match Metrics.member "schema_version" stats with
          | Some (Metrics.Int v) ->
              Alcotest.(check int) "stats schema v6" 6 v
          | _ -> Alcotest.fail "stats lacks schema_version");
          match Metrics.member "counters" stats with
          | Some (Metrics.Obj counters) ->
              (match List.assoc_opt "daemon.warm_hits" counters with
              | Some (Metrics.Int n) ->
                  Alcotest.(check bool) "warm hit counted" true (n >= 1)
              | _ -> Alcotest.fail "daemon.warm_hits missing");
              (match List.assoc_opt "daemon.cold_ms" counters with
              | Some (Metrics.Int n) ->
                  (* warm answers never touch cold_ms; two cold runs did *)
                  Alcotest.(check bool) "cold time accumulated" true (n >= 0)
              | _ -> Alcotest.fail "daemon.cold_ms missing")
          | _ -> Alcotest.fail "stats lacks counters")
      | None -> Alcotest.fail "no stats in response");
      (* graceful drain by request: daemon exits 0, socket + pidfile gone *)
      let status6, _ =
        request_status socket
          { Wire.id = Metrics.Int 3; client = Some "test"; op = Wire.Drain }
      in
      Alcotest.(check string) "drain acknowledged" "ok" status6;
      (match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | st ->
          Alcotest.failf "daemon did not exit 0 after drain (%s)"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
      Alcotest.(check bool) "pidfile removed" false
        (Sys.file_exists (socket ^ ".pid")))

let test_worker_crash_absorbed () =
  (* a first-attempt SIGKILL in the worker is retried to completion:
     the client sees a complete result, never the crash *)
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "crash:*:1") ]
    ~args:[ "--retries"; "2" ]
    (fun ~socket ~pid:_ ->
      let status, doc =
        request_status socket
          (analyze_req ~input:"c.pl" ~source:"p(a). r(X) :- p(X)." ())
      in
      Alcotest.(check string) "retried to complete" "complete" status;
      match Metrics.member "attempts" doc with
      | Some (Metrics.Int n) ->
          Alcotest.(check bool) "took more than one attempt" true (n >= 2)
      | _ -> Alcotest.fail "no attempts field")

(* --- e2e: admission control ----------------------------------------------- *)

let test_queue_full_shed_and_drain_kill () =
  (* one worker slot, queue of one, every worker hangs: the third
     concurrent request must be shed with queue_full, and SIGTERM must
     drain by killing the stragglers — structured crashes, exit 0 *)
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "hang:*") ]
    ~args:[ "--jobs"; "1"; "--max-queue"; "1"; "--retries"; "0";
            "--drain-deadline"; "1s" ]
    (fun ~socket ~pid ->
      let send_analyze i =
        let fd = raw_connect socket in
        raw_send fd
          (Wire.request_to_string
             (analyze_req
                ~input:(Printf.sprintf "h%d.pl" i)
                ~source:(Printf.sprintf "p(a%d)." i)
                ())
          ^ "\n");
        fd
      in
      (* staggered sends: #1 occupies the slot, #2 the queue, #3 is shed *)
      let c1 = send_analyze 1 in
      Unix.sleepf 0.3;
      let c2 = send_analyze 2 in
      Unix.sleepf 0.3;
      let c3 = send_analyze 3 in
      (match raw_recv_line c3 with
      | `Line l ->
          Alcotest.(check string) "third is shed" "overloaded"
            (status_of_line l);
          Alcotest.(check bool) "names queue_full" true
            (let j = Metrics.json_of_string l in
             match Metrics.member "reason" j with
             | Some (Metrics.Str r) -> String.equal r "queue_full"
             | _ -> false)
      | `Eof -> Alcotest.fail "shed connection closed without response");
      (* now drain: the hung worker and its queued sibling are killed at
         the deadline and answered with structured crashes *)
      Unix.kill pid Sys.sigterm;
      (match raw_recv_line ~timeout:15. c1 with
      | `Line l ->
          Alcotest.(check string) "in-flight job crash-reported" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "in-flight connection closed silently");
      (match raw_recv_line ~timeout:15. c2 with
      | `Line l ->
          Alcotest.(check string) "queued job crash-reported" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "queued connection closed silently");
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c1; c2; c3 ];
      (match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit 0 after deadline drain");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket))

let test_rate_limit_shed () =
  (* burst 1, slow refill: the second request from the same client is
     shed before any work — even a cache-warm one *)
  with_daemon ~args:[ "--rate"; "0.05"; "--burst"; "1" ]
    (fun ~socket ~pid:_ ->
      let req = analyze_req ~client:"hammer" ~input:"r.pl" ~source:"p(a)." () in
      let status, _ = request_status socket req in
      Alcotest.(check string) "first admitted" "complete" status;
      let status2, doc2 = request_status socket req in
      Alcotest.(check string) "second shed" "overloaded" status2;
      (match Metrics.member "reason" doc2 with
      | Some (Metrics.Str r) ->
          Alcotest.(check string) "rate limited" "rate_limited" r
      | _ -> Alcotest.fail "no reason");
      (* a different client is admitted *)
      let status3, _ =
        request_status socket
          (analyze_req ~client:"other" ~input:"r.pl" ~source:"p(a)." ())
      in
      Alcotest.(check string) "other client cached" "cached" status3)

(* --- e2e: frame hygiene --------------------------------------------------- *)

let test_malformed_and_oversized_frames () =
  with_daemon ~args:[ "--max-request-bytes"; "256" ] (fun ~socket ~pid:_ ->
      (* malformed line: rejected, connection still usable *)
      let fd = raw_connect socket in
      raw_send fd "this is not json\n";
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "malformed rejected" "rejected"
            (status_of_line l)
      | `Eof -> Alcotest.fail "connection closed on malformed frame");
      raw_send fd
        ({|{"wire":"prax.wire","version":1,"id":1,"op":"ping"}|} ^ "\n");
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "connection not poisoned" "ok"
            (status_of_line l)
      | `Eof -> Alcotest.fail "connection dead after rejection");
      Unix.close fd;
      (* oversized frame: rejected and the connection is closed *)
      let fd = raw_connect socket in
      raw_send fd (String.make 1000 'x');
      (match raw_recv_line fd with
      | `Line l ->
          Alcotest.(check string) "oversize rejected" "rejected"
            (status_of_line l)
      | `Eof -> Alcotest.fail "no rejection for oversized frame");
      (match raw_recv_line fd with
      | `Eof -> ()
      | `Line l -> Alcotest.failf "expected close after oversize, got %S" l);
      Unix.close fd;
      (* the accept loop survived both *)
      match ping socket with
      | Ok ("ok", _) -> ()
      | _ -> Alcotest.fail "daemon unhealthy after bad frames")

(* --- e2e: lifecycle ------------------------------------------------------- *)

let test_stale_socket_recovery () =
  let socket = fresh_socket () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (socket ^ ".pid") with Unix.Unix_error _ -> ())
    (fun () ->
      (* first daemon dies by SIGKILL: no cleanup, stale socket+pidfile *)
      let pid1 = spawn_praxd ~socket [] in
      wait_ready socket;
      Unix.kill pid1 Sys.sigkill;
      ignore (Unix.waitpid [] pid1);
      Alcotest.(check bool) "stale socket left behind" true
        (Sys.file_exists socket);
      (* a successor must sweep the stale socket and serve *)
      let pid2 = spawn_praxd ~socket [] in
      Fun.protect
        ~finally:(fun () -> ignore (reap pid2))
        (fun () ->
          wait_ready socket;
          (* but a live daemon must never be double-served *)
          let null = devnull () in
          let pid3 =
            Unix.create_process praxd
              [| praxd; "serve"; "--socket"; socket; "-q" |]
              null null null
          in
          Unix.close null;
          (match Unix.waitpid [] pid3 with
          | _, Unix.WEXITED 1 -> ()
          | _, Unix.WEXITED c ->
              Alcotest.failf "double-serve exited %d (expected 1)" c
          | _ -> Alcotest.fail "double-serve died abnormally");
          match ping socket with
          | Ok ("ok", _) -> ()
          | _ -> Alcotest.fail "original daemon disturbed by refused start"))

(* --- e2e: the xanalyze client exit codes ---------------------------------- *)

let test_client_exit_codes () =
  with_daemon (fun ~socket ~pid:_ ->
      let run_client args =
        let null = devnull () in
        let pid =
          Unix.create_process xanalyze
            (Array.of_list (xanalyze :: args))
            null null null
        in
        Unix.close null;
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED c -> c
        | _ -> 255
      in
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "complete exits 0" 0 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "cached repeat exits 0" 0 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ^ ".nope" ]
      in
      Alcotest.(check int) "unreachable daemon exits 6" 6 code;
      let code =
        run_client
          [ "client"; "analyze"; "groundness"; "no-such-file.pl";
            "--socket"; socket ]
      in
      Alcotest.(check int) "missing input file exits 1" 1 code)

let run_client_env env args =
  let null = devnull () in
  let pid =
    Unix.create_process_env xanalyze
      (Array.of_list (xanalyze :: args))
      (env_with env) null null null
  in
  Unix.close null;
  match Unix.waitpid [] pid with _, Unix.WEXITED c -> c | _ -> 255

let counter_of doc name =
  match Metrics.member "stats" doc with
  | Some stats -> (
      match Metrics.member "counters" stats with
      | Some (Metrics.Obj counters) -> (
          match List.assoc_opt name counters with
          | Some (Metrics.Int n) -> n
          | _ -> 0)
      | _ -> 0)
  | None -> 0

let stats_counters socket =
  let _, doc =
    request_status socket
      { Wire.id = Metrics.Int 99; client = Some "stats"; op = Wire.Stats }
  in
  doc

(* --- e2e: pressure tiers under load --------------------------------------- *)

let test_degraded_tier_admission () =
  (* one worker slot, queue of four.  The chaos plan hangs request 1's
     worker (attempt 1, no retries, 1s watchdog), so requests 2-4 pile
     up behind it: request 4 arrives at occupancy 3/5 and must be
     admitted at the reduced tier — answered, tagged degraded — where
     the binary daemon would have given it a full-budget wait or,
     deeper in the band, a shed *)
  with_daemon
    ~env:[ ("PRAX_INJECT_DAEMON", "hang@1") ]
    ~args:[ "--jobs"; "1"; "--max-queue"; "4"; "--retries"; "0";
            "--job-timeout"; "1s" ]
    (fun ~socket ~pid:_ ->
      let send i =
        let fd = raw_connect socket in
        raw_send fd
          (Wire.request_to_string
             (analyze_req
                ~input:(Printf.sprintf "d%d.pl" i)
                ~source:(Printf.sprintf "p(b%d)." i)
                ())
          ^ "\n");
        fd
      in
      let c1 = send 1 in
      Unix.sleepf 0.3;
      let c2 = send 2 in
      Unix.sleepf 0.3;
      let c3 = send 3 in
      Unix.sleepf 0.3;
      let c4 = send 4 in
      let line fd what =
        match raw_recv_line ~timeout:30. fd with
        | `Line l -> Metrics.json_of_string l
        | `Eof -> Alcotest.failf "%s: connection closed without response" what
      in
      let status j = match Wire.response_status j with
        | Ok s -> s | Error e -> Alcotest.fail e
      in
      let degraded j =
        match Metrics.member "degraded" j with
        | Some (Metrics.Bool b) -> b
        | _ -> false
      in
      (* request 1 hung and the watchdog crashed it (retries 0) *)
      let j1 = line c1 "hung request" in
      Alcotest.(check string) "hung request crash-reported" "crashed"
        (status j1);
      (* requests 2 and 3 arrived under 1/2 occupancy: full budget *)
      let j2 = line c2 "request 2" in
      Alcotest.(check string) "request 2 complete" "complete" (status j2);
      Alcotest.(check bool) "request 2 not degraded" false (degraded j2);
      let j3 = line c3 "request 3" in
      Alcotest.(check string) "request 3 complete" "complete" (status j3);
      Alcotest.(check bool) "request 3 not degraded" false (degraded j3);
      (* request 4 arrived at 3/5 occupancy: reduced tier, still a
         sound complete answer on this tiny program *)
      let j4 = line c4 "request 4" in
      Alcotest.(check string) "request 4 answered" "complete" (status j4);
      Alcotest.(check bool) "request 4 tagged degraded" true (degraded j4);
      (match Metrics.member "tier" j4 with
      | Some (Metrics.Int t) ->
          Alcotest.(check bool) "tier is reduced or deeper" true (t >= 1)
      | _ -> Alcotest.fail "degraded response lacks tier");
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c1; c2; c3; c4 ];
      (* the daemon counted the degraded admission *)
      let doc = stats_counters socket in
      Alcotest.(check bool) "daemon.degraded counted" true
        (counter_of doc "daemon.degraded" >= 1);
      Alcotest.(check bool) "chaos fault counted" true
        (counter_of doc "daemon.chaos_injected" >= 1))

let test_shed_retry_after_hint () =
  (* at the (unchanged) shed point the overloaded response now carries
     a retry_after_ms hint proportional to the backlog *)
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "hang:*") ]
    ~args:[ "--jobs"; "1"; "--max-queue"; "1"; "--retries"; "0";
            "--drain-deadline"; "1s" ]
    (fun ~socket ~pid ->
      let send i =
        let fd = raw_connect socket in
        raw_send fd
          (Wire.request_to_string
             (analyze_req
                ~input:(Printf.sprintf "s%d.pl" i)
                ~source:(Printf.sprintf "p(c%d)." i)
                ())
          ^ "\n");
        fd
      in
      let c1 = send 1 in
      Unix.sleepf 0.3;
      let c2 = send 2 in
      Unix.sleepf 0.3;
      let c3 = send 3 in
      (match raw_recv_line c3 with
      | `Line l ->
          let j = Metrics.json_of_string l in
          Alcotest.(check string) "third shed" "overloaded" (status_of_line l);
          (match Wire.retry_after_ms j with
          | Some ms ->
              Alcotest.(check bool) "hint in clamp range" true
                (ms >= 50 && ms <= 5000)
          | None -> Alcotest.fail "shed lacks retry_after_ms")
      | `Eof -> Alcotest.fail "shed connection closed without response");
      (* drain before leaving: the 1s deadline SIGKILLs the hung worker
         and answers the in-flight job with a structured crashed — do
         not rely on teardown to clean up a deliberately wedged pool *)
      Unix.kill pid Sys.sigterm;
      (match raw_recv_line ~timeout:15. c1 with
      | `Line l ->
          Alcotest.(check string) "hung job crashed on drain" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "hung job got no response on drain");
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c1; c2; c3 ];
      match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit 0 after deadline drain")

(* --- e2e: retrying clients ------------------------------------------------- *)

let test_client_retries_converge () =
  (* burst 1, refill 1/s: the second immediate request is shed; with
     --retries the client backs off (honoring retry_after_ms) and
     converges to the cached answer instead of failing with exit 5 *)
  with_daemon ~args:[ "--rate"; "1"; "--burst"; "1" ] (fun ~socket ~pid:_ ->
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--client"; "hammer"; "--socket"; socket ]
      in
      Alcotest.(check int) "first request admitted" 0 code;
      (* without retries: immediate shed, exit 5 *)
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--client"; "hammer"; "--socket"; socket ]
      in
      Alcotest.(check int) "immediate repeat shed (exit 5)" 5 code;
      (* with retries: backoff past the refill and converge *)
      let t0 = Unix.gettimeofday () in
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--client"; "hammer"; "--retries"; "4"; "--backoff"; "200ms";
            "--socket"; socket ]
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check int) "retrying client converges (exit 0)" 0 code;
      Alcotest.(check bool) "convergence actually waited for refill" true
        (elapsed >= 0.4))

let test_client_batch_streams_corpus () =
  with_daemon (fun ~socket ~pid:_ ->
      let code =
        run_client_env []
          [ "client"; "batch"; "qsort,pg,plan"; "--analysis"; "groundness";
            "--socket"; socket ]
      in
      Alcotest.(check int) "cold corpus batch exits 0" 0 code;
      (* the repeat is answered from the warm cache, still exit 0 *)
      let code =
        run_client_env []
          [ "client"; "batch"; "qsort,pg,plan"; "--analysis"; "groundness";
            "--socket"; socket ]
      in
      Alcotest.(check int) "warm corpus batch exits 0" 0 code;
      let doc = stats_counters socket in
      Alcotest.(check bool) "second pass hit the warm cache" true
        (counter_of doc "daemon.warm_hits" >= 3);
      (* an unknown benchmark in the spec is the caller's fault *)
      let code =
        run_client_env []
          [ "client"; "batch"; "no-such-bench"; "--analysis"; "groundness";
            "--socket"; socket ]
      in
      Alcotest.(check int) "unknown benchmark exits 1" 1 code)

(* --- e2e: protocol violations are exit 7 ----------------------------------- *)

(* a fake "daemon" that accepts one connection, reads one line, writes
   [reply] verbatim (no newline added), and closes — the client must
   classify whatever it got as a protocol violation, never a result *)
let with_fake_server reply f =
  let socket = fresh_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 1;
  match Unix.fork () with
  | 0 ->
      (* child: serve exactly one connection *)
      let conn, _ = Unix.accept fd in
      let buf = Bytes.create 65536 in
      let rec read_line_then_reply () =
        match Unix.read conn buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            if Bytes.index_opt (Bytes.sub buf 0 n) '\n' <> None then begin
              let w = ref 0 in
              let len = String.length reply in
              while !w < len do
                w := !w + Unix.write_substring conn reply !w (len - !w)
              done
            end
            else read_line_then_reply ()
      in
      (try read_line_then_reply () with _ -> ());
      (try Unix.close conn with Unix.Unix_error _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close fd;
      Fun.protect
        ~finally:(fun () ->
          ignore (reap pid);
          try Unix.unlink socket with Unix.Unix_error _ -> ())
        (fun () -> f socket)

let test_client_protocol_error_exit () =
  (* a malformed (non-JSON) reply *)
  with_fake_server "this is not a prax.wire frame\n" (fun socket ->
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "garbage reply exits 7" 7 code);
  (* a truncated reply: half a frame, then EOF — exactly what the
     chaos conn-reset fault produces *)
  with_fake_server {|{"wire":"prax.wire","version":1,"id":1,"sta|}
    (fun socket ->
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "truncated reply exits 7" 7 code);
  (* a structurally valid JSON line with the wrong schema header *)
  with_fake_server ({|{"wire":"other.wire","version":1,"status":"ok"}|} ^ "\n")
    (fun socket ->
      let code =
        run_client_env []
          [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
            "--socket"; socket ]
      in
      Alcotest.(check int) "wrong schema exits 7" 7 code);
  (* no daemon at all stays exit 6: unreachable, not protocol *)
  let code =
    run_client_env []
      [ "client"; "analyze"; "groundness"; "qsort"; "--bench";
        "--socket"; "/nonexistent/prax.sock" ]
  in
  Alcotest.(check int) "unreachable stays exit 6" 6 code

(* the oversized-reply cap, in-process (a >64M fake reply would be
   slow): the reader must stop buffering at the cap and call it a
   protocol violation *)
let test_client_oversized_reply () =
  with_fake_server (String.make 4096 'x' ^ "\n") (fun socket ->
      match
        Client.request ~timeout:10. ~max_response_bytes:1024 ~socket
          (analyze_req ~input:"o.pl" ~source:"p(a)." ())
      with
      | Error (Client.Protocol_error msg) ->
          Alcotest.(check bool) "names the oversize" true
            (String.length msg > 0)
      | Error (Client.Connect_failed e) ->
          Alcotest.failf "wrong class: connect (%s)" e
      | Ok (status, _) -> Alcotest.failf "oversized reply accepted: %s" status)

(* --- e2e: drain under a hung worker leaves no orphans ---------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* live PIDs (other than our own) whose environment carries [marker]:
   praxd workers inherit the daemon's environment, so any process still
   wearing the marker after the daemon exited is an orphan *)
let procs_with_env marker =
  Sys.readdir "/proc" |> Array.to_list
  |> List.filter_map int_of_string_opt
  |> List.filter (fun p ->
         p <> Unix.getpid ()
         &&
         match
           In_channel.with_open_bin
             (Printf.sprintf "/proc/%d/environ" p)
             In_channel.input_all
         with
         | s -> contains s marker
         | exception _ -> false)

let test_drain_hung_worker_no_orphans () =
  let marker = Printf.sprintf "praxd-orphan-probe-%d" (Unix.getpid ()) in
  with_daemon
    ~env:[ ("PRAX_INJECT_WORKER", "hang:*"); ("PRAX_ORPHAN_MARKER", marker) ]
    ~args:[ "--jobs"; "1"; "--retries"; "0"; "--drain-deadline"; "1s" ]
    (fun ~socket ~pid ->
      let fd = raw_connect socket in
      raw_send fd
        (Wire.request_to_string
           (analyze_req ~input:"hang.pl" ~source:"p(z)." ())
        ^ "\n");
      (* let the worker spawn and hang, then SIGTERM the daemon *)
      Unix.sleepf 0.5;
      Unix.kill pid Sys.sigterm;
      (* the hung worker is SIGKILLed at the 1s deadline and its client
         still gets a structured crash, not silence *)
      (match raw_recv_line ~timeout:15. fd with
      | `Line l ->
          Alcotest.(check string) "hung job crash-reported" "crashed"
            (status_of_line l)
      | `Eof -> Alcotest.fail "hung job's connection closed silently");
      Unix.close fd;
      (match reap ~kill:false pid with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit 0 after deadline drain");
      (* the orphan probe: nothing still wears the marker *)
      Alcotest.(check (list int)) "no orphan workers" []
        (procs_with_env marker))

(* --- e2e: the chaos harness ------------------------------------------------ *)

let test_chaos_plan_end_to_end () =
  (* a scripted drill across four faults; the invariant under every one
     of them: each request gets exactly one response attempt (a
     structured line, or the scripted mid-frame reset) and the daemon
     exits clean *)
  let plan_file =
    Filename.temp_file "prax-chaos" ".json"
  in
  let store_dir =
    let d = Filename.temp_file "prax-chaos-store" "" in
    Sys.remove d;
    d
  in
  Out_channel.with_open_text plan_file (fun oc ->
      output_string oc
        {|{"faults":[
            {"at":1,"fault":"worker-crash"},
            {"at":2,"fault":"store-enospc"},
            {"at":3,"fault":"conn-reset"},
            {"at":4,"fault":"drain"}]}|});
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove plan_file with Sys_error _ -> ());
      try
        Sys.readdir store_dir
        |> Array.iter (fun f -> Sys.remove (Filename.concat store_dir f));
        Unix.rmdir store_dir
      with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () ->
      with_daemon
        ~args:[ "--chaos"; plan_file; "--retries"; "2"; "--store"; store_dir ]
        (fun ~socket ~pid ->
          let analyze i =
            analyze_req
              ~input:(Printf.sprintf "x%d.pl" i)
              ~source:(Printf.sprintf "p(e%d)." i)
              ()
          in
          (* 1: the worker crash is absorbed by the retry ladder *)
          let status, doc = request_status socket (analyze 1) in
          Alcotest.(check string) "crash absorbed: complete" "complete" status;
          (match Metrics.member "attempts" doc with
          | Some (Metrics.Int n) ->
              Alcotest.(check bool) "crash cost an attempt" true (n >= 2)
          | _ -> Alcotest.fail "no attempts field");
          (* 2: the store write fails (ENOSPC) — contained: the client
             still gets its complete answer *)
          let status, _ = request_status socket (analyze 2) in
          Alcotest.(check string) "enospc contained: complete" "complete"
            status;
          let doc = stats_counters socket in
          Alcotest.(check bool) "store.write_errors counted" true
            (counter_of doc "store.write_errors" >= 1);
          (* 3: the connection reset mid-frame — the response line is
             cut and the socket closed; a raw reader sees EOF, a real
             client classifies it as a protocol error (exit 7) *)
          let fd = raw_connect socket in
          raw_send fd (Wire.request_to_string (analyze 3) ^ "\n");
          (match raw_recv_line ~timeout:30. fd with
          | `Eof -> ()
          | `Line l ->
              Alcotest.failf "reset connection delivered a whole frame: %S" l);
          Unix.close fd;
          (* the daemon survived its own reset drill *)
          (match ping socket with
          | Ok ("ok", _) -> ()
          | _ -> Alcotest.fail "daemon unhealthy after conn-reset");
          (* 4: drain fires on arrival: the request is answered
             "draining" (its one structured response) and the daemon
             exits clean *)
          let status, _ = request_status socket (analyze 4) in
          Alcotest.(check string) "drain drill answers draining" "draining"
            status;
          (match reap ~kill:false pid with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED c ->
              Alcotest.failf "daemon exited %d after chaos drill" c
          | _ -> Alcotest.fail "daemon died abnormally after chaos drill");
          (* every fault the plan scripted was injected and counted *)
          Alcotest.(check bool) "socket removed after chaos drain" false
            (Sys.file_exists socket)))

let test_chaos_bad_plan_fails_startup () =
  (* a misspelled plan must refuse to serve, not silently run without
     faults *)
  let socket = fresh_socket () in
  let null = devnull () in
  let pid =
    Unix.create_process_env praxd
      [| praxd; "serve"; "--socket"; socket; "-q" |]
      (env_with [ ("PRAX_INJECT_DAEMON", "meteor@1") ])
      null null null
  in
  Unix.close null;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 1 -> ()
  | _, Unix.WEXITED c ->
      Alcotest.failf "bad chaos plan: praxd exited %d (expected 1)" c
  | _ -> Alcotest.fail "bad chaos plan: praxd died abnormally"

let () =
  Prax_analyses.Analyses.ensure ();
  Alcotest.run "daemon"
    [
      ( "admission",
        [
          Alcotest.test_case "token bucket refill timing" `Quick
            test_token_bucket_refill;
          Alcotest.test_case "rate 0 disables limiting" `Quick
            test_token_bucket_disabled;
          Alcotest.test_case "pressure tiers and shed hints" `Quick
            test_pressure_tiers;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "deterministic jittered backoff" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "LRU entry and byte bounds" `Quick
            test_lru_bounds;
          Alcotest.test_case "chaos plan grammar" `Quick
            test_chaos_plan_grammar;
        ] );
      ("wire", [ Alcotest.test_case "grammar" `Quick test_wire_grammar ]);
      ( "serving",
        [
          Alcotest.test_case "analyze, warm cache, stats, drain" `Quick
            test_analyze_and_warm_cache;
          Alcotest.test_case "worker crash absorbed by retries" `Quick
            test_worker_crash_absorbed;
          Alcotest.test_case "queue-full shed + drain kills stragglers" `Quick
            test_queue_full_shed_and_drain_kill;
          Alcotest.test_case "per-client rate-limit shed" `Quick
            test_rate_limit_shed;
          Alcotest.test_case "malformed/oversized frames rejected" `Quick
            test_malformed_and_oversized_frames;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "degraded-tier admission under load" `Quick
            test_degraded_tier_admission;
          Alcotest.test_case "shed carries retry_after_ms" `Quick
            test_shed_retry_after_hint;
        ] );
      ( "clients",
        [
          Alcotest.test_case "retrying client converges" `Quick
            test_client_retries_converge;
          Alcotest.test_case "batch streams a corpus" `Quick
            test_client_batch_streams_corpus;
          Alcotest.test_case "protocol violations exit 7" `Quick
            test_client_protocol_error_exit;
          Alcotest.test_case "oversized reply is a protocol error" `Quick
            test_client_oversized_reply;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "drain kills hung worker, no orphans" `Quick
            test_drain_hung_worker_no_orphans;
          Alcotest.test_case "scripted fault plan end to end" `Quick
            test_chaos_plan_end_to_end;
          Alcotest.test_case "bad plan fails startup" `Quick
            test_chaos_bad_plan_fails_startup;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stale socket swept, live socket refused" `Quick
            test_stale_socket_recovery;
          Alcotest.test_case "client exit codes" `Quick test_client_exit_codes;
        ] );
    ]
