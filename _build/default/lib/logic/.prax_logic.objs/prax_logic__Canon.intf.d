lib/logic/canon.mli: Hashtbl Subst Term
