lib/logic/subst.mli: Term
