lib/strict/transform.ml: Array Ast Demand Hashtbl List Parser Prax_fp Prax_logic String Term
