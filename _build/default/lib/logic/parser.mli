(** Operator-precedence parser for the Prolog subset (the reader).
    Variables are scoped per clause; [_] is always fresh. *)

exception Parse_error of string

(** A program clause with its body flattened into goals. *)
type clause = { head : Term.t; body : Term.t list }

type item = Clause of clause | Directive of Term.t

val clause_of_term : Term.t -> item
(** Interpret a term as a clause or directive ([:- G], [?- G]). *)

val parse_program : ?ops:Ops.table -> string -> item list
(** Parse a whole program.  [:- op(P, Assoc, Name)] directives take
    effect immediately and are also returned. *)

val parse_clauses : ?ops:Ops.table -> string -> clause list
(** Clauses only, directives dropped. *)

val parse_term : ?ops:Ops.table -> string -> Term.t
(** A single term (for tests and queries). *)

val handle_op_directive : Ops.table -> Term.t -> bool
