(** Incremental re-analysis machinery: fragment codec, splice loop,
    store binding, [incr.*] metrics.  See incr.mli and
    docs/INCREMENTAL.md. *)

open Prax_logic
module Engine = Prax_tabling.Engine
module Guard = Prax_guard.Guard
module Metrics = Prax_metrics.Metrics
module Analysis = Prax_analysis.Analysis
module Store = Prax_store.Store

(* --- metrics (docs/METRICS.md, schema v6) -------------------------------- *)

let m_sccs =
  Metrics.counter ~units:"sccs"
    ~doc:"incremental: condensation SCCs across incremental runs"
    "incr.sccs"

let m_invalidated =
  Metrics.counter ~units:"sccs"
    ~doc:"incremental: SCCs recomputed because their closure digest missed \
          the fragment cache"
    "incr.invalidated"

let m_spliced =
  Metrics.counter ~units:"sccs"
    ~doc:"incremental: SCCs restored from cached fragments"
    "incr.spliced"

let g_cone_frac =
  Metrics.gauge ~units:"permille"
    ~doc:"incremental: invalidated/sccs of the last incremental run, in \
          permille (1000 = full recompute)"
    "incr.cone_frac"

(* Phase timers: where an incremental run spends its time.  The sum is
   the driver's evaluate phase minus the actual engine evaluation — the
   overhead the splice must amortize (docs/INCREMENTAL.md). *)
let t_plan =
  Metrics.timer ~doc:"incremental: dependency graph + closure digests"
    "incr.plan"

let t_load =
  Metrics.timer ~doc:"incremental: fragment cache probes + decode"
    "incr.load"

let t_replay =
  Metrics.timer ~doc:"incremental: demand-edge replay through spliced cones"
    "incr.replay"

let t_persist =
  Metrics.timer ~doc:"incremental: fragment export + save"
    "incr.persist"

type outcome = {
  sccs : int;
  invalidated : int;
  spliced : int;
  spliced_entries : int;
}

let record o =
  Metrics.add m_sccs o.sccs;
  Metrics.add m_invalidated o.invalidated;
  Metrics.add m_spliced o.spliced;
  Metrics.set g_cone_frac
    (if o.sccs = 0 then 0 else o.invalidated * 1000 / o.sccs)

(* --- cache keys ----------------------------------------------------------- *)

let fragment_key ~table_class digest = table_class ^ ":" ^ digest

(* --- fragment codec -------------------------------------------------------- *)

(* One SCC's call-table slice, one canonical term per line:
     prax.incr.fragment 2
     e <term>          -- opens a record (the call variant)
     a <term>          -- sorted answers, as exported
     s <term>          -- demand edges to replay on splice
   Terms are encoded in a preorder form with length-prefixed names —
     v<id>  i<int>  a<len>:<bytes>  f<len>:<bytes>/<arity> <arg> ...
     r<idx>            -- back-reference to an earlier node
   — because decode speed bounds how fast a warm run can get: v1 used
   the Prolog reader and fragment decode dominated the whole splice
   (incr.load).  Atom and struct definitions are numbered in postorder
   across the whole fragment, and any repeat is emitted as [r<idx>]:
   analysis answer sets share enormous sub-structure (the terms are
   hash-consed in memory for the same reason), so sharing shrinks both
   the payload and the number of nodes to rebuild.  The exported terms
   are already canonical and the encoding preserves variable ids, so
   the decoded terms are canonical by construction.  Anything malformed
   degrades the whole fragment to a cache miss, never to wrong
   answers. *)
let fragment_magic = "prax.incr.fragment 2"

module TTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

(* encoder state: postorder index of every atom/struct node emitted *)
type enc = { memo : int TTbl.t; mutable next : int; buf : Buffer.t }

let rec enc_term e (t : Term.t) =
  let b = e.buf in
  match t with
  | Term.Var i ->
      Buffer.add_char b 'v';
      Buffer.add_string b (string_of_int i)
  | Term.Int i ->
      Buffer.add_char b 'i';
      Buffer.add_string b (string_of_int i)
  | Term.Atom a -> (
      match TTbl.find_opt e.memo t with
      | Some idx ->
          Buffer.add_char b 'r';
          Buffer.add_string b (string_of_int idx)
      | None ->
          Buffer.add_char b 'a';
          Buffer.add_string b (string_of_int (String.length a));
          Buffer.add_char b ':';
          Buffer.add_string b a;
          TTbl.add e.memo t e.next;
          e.next <- e.next + 1)
  | Term.Struct (f, args, _) -> (
      match TTbl.find_opt e.memo t with
      | Some idx ->
          Buffer.add_char b 'r';
          Buffer.add_string b (string_of_int idx)
      | None ->
          Buffer.add_char b 'f';
          Buffer.add_string b (string_of_int (String.length f));
          Buffer.add_char b ':';
          Buffer.add_string b f;
          Buffer.add_char b '/';
          Buffer.add_string b (string_of_int (Array.length args));
          Array.iter
            (fun x ->
              Buffer.add_char b ' ';
              enc_term e x)
            args;
          (* postorder: the arguments' definitions took their indices
             first, so encoder and decoder number nodes identically *)
          TTbl.add e.memo t e.next;
          e.next <- e.next + 1)

exception Bad

(* decoder state: the defined nodes, in the encoder's postorder *)
type nodes = { mutable arr : Term.t array; mutable len : int }

let nodes_push ns t =
  if ns.len = Array.length ns.arr then begin
    let bigger = Array.make (max 64 (2 * ns.len)) t in
    Array.blit ns.arr 0 bigger 0 ns.len;
    ns.arr <- bigger
  end;
  ns.arr.(ns.len) <- t;
  ns.len <- ns.len + 1

let dec_uint s pos limit =
  let start = !pos in
  let v = ref 0 in
  while
    !pos < limit
    &&
    let c = s.[!pos] in
    c >= '0' && c <= '9'
  do
    v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
    incr pos
  done;
  if !pos = start then raise Bad;
  !v

let dec_int s pos limit =
  if !pos < limit && s.[!pos] = '-' then begin
    incr pos;
    -dec_uint s pos limit
  end
  else dec_uint s pos limit

let dec_name s pos limit =
  let len = dec_uint s pos limit in
  if !pos >= limit || s.[!pos] <> ':' then raise Bad;
  incr pos;
  if len < 0 || !pos + len > limit then raise Bad;
  let name = String.sub s !pos len in
  pos := !pos + len;
  name

let rec dec_term ns s pos limit =
  if !pos >= limit then raise Bad;
  let tag = s.[!pos] in
  incr pos;
  match tag with
  | 'v' -> Term.var (dec_int s pos limit)
  | 'i' -> Term.int (dec_int s pos limit)
  | 'r' ->
      let idx = dec_uint s pos limit in
      if idx >= ns.len then raise Bad;
      ns.arr.(idx)
  | 'a' ->
      let t = Term.atom (dec_name s pos limit) in
      nodes_push ns t;
      t
  | 'f' ->
      let f = dec_name s pos limit in
      if !pos >= limit || s.[!pos] <> '/' then raise Bad;
      incr pos;
      let arity = dec_uint s pos limit in
      if arity = 0 then raise Bad;
      let args = Array.make arity (Term.int 0) in
      for i = 0 to arity - 1 do
        if !pos >= limit || s.[!pos] <> ' ' then raise Bad;
        incr pos;
        args.(i) <- dec_term ns s pos limit
      done;
      let t = Term.mk f args in
      nodes_push ns t;
      t
  | _ -> raise Bad

let fragment_to_string (records : Engine.exported list) : string =
  let e = { memo = TTbl.create 1024; next = 0; buf = Buffer.create 1024 } in
  let b = e.buf in
  Buffer.add_string b fragment_magic;
  Buffer.add_char b '\n';
  List.iter
    (fun (r : Engine.exported) ->
      Buffer.add_string b "e ";
      enc_term e r.Engine.ex_call;
      Buffer.add_char b '\n';
      List.iter
        (fun a ->
          Buffer.add_string b "a ";
          enc_term e a;
          Buffer.add_char b '\n')
        r.Engine.ex_answers;
      List.iter
        (fun s ->
          Buffer.add_string b "s ";
          enc_term e s;
          Buffer.add_char b '\n')
        r.Engine.ex_subcalls)
    (List.sort
       (fun (a : Engine.exported) b -> Term.compare a.ex_call b.ex_call)
       records);
  Buffer.contents b

let fragment_of_string (s : string) : Engine.exported list option =
  let n = String.length s in
  let mlen = String.length fragment_magic in
  if
    n < mlen + 1
    || (not (String.equal (String.sub s 0 mlen) fragment_magic))
    || s.[mlen] <> '\n'
  then None
  else
    try
      let pos = ref (mlen + 1) in
      let ns = { arr = Array.make 64 (Term.int 0); len = 0 } in
      let cur = ref None in
      let acc = ref [] in
      let flush () =
        match !cur with
        | None -> ()
        | Some (call, answers, subs) ->
            acc :=
              {
                Engine.ex_call = call;
                ex_answers = List.rev answers;
                ex_subcalls = List.rev subs;
              }
              :: !acc
      in
      while !pos < n do
        if !pos + 2 > n || s.[!pos + 1] <> ' ' then raise Bad;
        let tag = s.[!pos] in
        pos := !pos + 2;
        let t = dec_term ns s pos n in
        if !pos < n then
          if s.[!pos] = '\n' then incr pos else raise Bad;
        match (tag, !cur) with
        | 'e', _ ->
            flush ();
            cur := Some (t, [], [])
        | 'a', Some (c, ans, subs) -> cur := Some (c, t :: ans, subs)
        | 's', Some (c, ans, subs) -> cur := Some (c, ans, t :: subs)
        | _ -> raise Bad
      done;
      flush ();
      Some (List.rev !acc)
    with Bad | Invalid_argument _ -> None

(* --- the edit-aware evaluation loop ---------------------------------------- *)

let run_tabled ~(cache : Analysis.cache) ~table_class ~(engine : Engine.t)
    ~(clauses : Parser.clause list) ~(goals : Term.t list) () :
    Guard.status * outcome =
  let g =
    Metrics.time t_plan (fun () ->
        Depgraph.build
          ~is_call:(fun p -> not (Engine.is_builtin engine p))
          clauses)
  in
  let n = Depgraph.scc_count g in
  (* load: one fragment per closure-digest cache hit *)
  let hit = Array.make n false in
  let old_records : Engine.exported list array = Array.make n [] in
  let frag : (Term.t list * Term.t list) Canon.Tbl.t =
    Canon.Tbl.create 256
  in
  Metrics.time t_load (fun () ->
      for s = 0 to n - 1 do
        let key = fragment_key ~table_class (Depgraph.closure_digest g s) in
        match cache.Analysis.cache_load key with
        | None -> ()
        | Some payload -> (
            match fragment_of_string payload with
            | None -> ()  (* corrupt fragment = miss *)
            | Some records ->
                hit.(s) <- true;
                old_records.(s) <- records;
                List.iter
                  (fun (r : Engine.exported) ->
                    Canon.Tbl.replace frag r.ex_call
                      (r.ex_answers, r.ex_subcalls))
                  records)
      done);
  (* splice: answer new table entries from the fragments, queueing their
     recorded demand edges for replay *)
  let pending : Term.t Queue.t = Queue.create () in
  let queued : unit Canon.Tbl.t = Canon.Tbl.create 256 in
  (* every table entry the fragments could not answer: a variant of an
     invalidated SCC, or one a cached fragment did not hold.  Zero
     misses on an all-hit run means the table is exactly the union of
     the fragments, so persist has nothing to do. *)
  let resolver_misses = ref 0 in
  Engine.set_resolver engine
    (Some
       (fun key ->
         match Canon.Tbl.find_opt frag key with
         | None ->
             incr resolver_misses;
             None
         | Some (answers, subs) ->
             List.iter
               (fun k ->
                 if not (Canon.Tbl.mem queued k) then begin
                   Canon.Tbl.replace queued k ();
                   Queue.add k pending
                 end)
               subs;
             Some answers));
  let finally () = Engine.set_resolver engine None in
  match
    let status =
      List.fold_left
        (fun acc goal ->
          Guard.combine acc (Engine.run_status engine goal (fun _ -> ())))
        Guard.Complete goals
    in
    (* drain: replaying a demand edge may splice further entries, which
       enqueue their own edges — loop to fixpoint.  Replay through clean
       cones reinstalls exactly the call variants the original producers
       demanded, which is what makes the restored call table (and so
       dump_tables, call_patterns, table_space_bytes) byte-identical to
       a from-scratch run.  [demand_status] creates the entry without
       consuming its answers — the table is the deliverable here, not
       the enumeration. *)
    Metrics.time t_replay (fun () ->
        let status = ref status in
        while not (Queue.is_empty pending) do
          let k = Queue.pop pending in
          status := Guard.combine !status (Engine.demand_status engine k)
        done;
        !status)
  with
  | exception e ->
      finally ();
      raise e
  | status ->
      finally ();
      (* persist: only a complete run's tables are the fixpoint.  A run
         that hit on every SCC and spliced every entry it created has a
         table identical to the cached fragments — skip the export
         walk entirely (the common fully-warm case). *)
      let all_hit = Array.for_all Fun.id hit in
      if not (Guard.is_partial status) && not (all_hit && !resolver_misses = 0)
      then begin
        Metrics.time t_persist @@ fun () ->
        let buckets : Engine.exported list array = Array.make n [] in
        List.iter
          (fun (r : Engine.exported) ->
            match Term.functor_of r.ex_call with
            | None -> ()
            | Some p -> (
                match Depgraph.scc_of g p with
                | Some s -> buckets.(s) <- r :: buckets.(s)
                | None -> ()))
          (Engine.export_tables engine);
        for s = 0 to n - 1 do
          let fresh = List.rev buckets.(s) in
          let key =
            fragment_key ~table_class (Depgraph.closure_digest g s)
          in
          if not hit.(s) then begin
            if fresh <> [] then
              cache.Analysis.cache_save key (fragment_to_string fresh)
          end
          else begin
            (* merge: keep every cached record (a spliced entry's export
               has no demand edges, so it must not overwrite the record
               that does), append variants this run demanded afresh *)
            let old_calls : unit Canon.Tbl.t = Canon.Tbl.create 16 in
            List.iter
              (fun (r : Engine.exported) ->
                Canon.Tbl.replace old_calls r.ex_call ())
              old_records.(s);
            let added =
              List.filter
                (fun (r : Engine.exported) ->
                  not (Canon.Tbl.mem old_calls r.ex_call))
                fresh
            in
            if added <> [] then
              cache.Analysis.cache_save key
                (fragment_to_string (old_records.(s) @ added))
          end
        done
      end;
      let spliced = Array.fold_left (fun a h -> if h then a + 1 else a) 0 hit in
      let o =
        {
          sccs = n;
          invalidated = n - spliced;
          spliced;
          spliced_entries = Engine.spliced_entries engine;
        }
      in
      record o;
      (status, o)

(* --- store binding ---------------------------------------------------------- *)

let cache_of_store store ~analysis ~table_class : Analysis.cache =
  let sub = Store.sub (Store.sub store "incr") analysis in
  let key digest =
    {
      Store.analysis;
      source_digest = digest;
      config = table_class;
      schema_version = Metrics.schema_version;
    }
  in
  {
    Analysis.cache_load = (fun d -> Store.load sub (key d));
    cache_save = (fun d payload -> Store.save sub (key d) payload);
  }
