(** Term pretty-printing with operator notation, list syntax, and
    canonical variable names. *)

let var_name i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'A' + i))
  else Printf.sprintf "_%d" i

let needs_quotes a =
  let ok_unquoted =
    String.length a > 0
    && (Lexer.is_lower a.[0]
        && String.for_all Lexer.is_alnum a
       || String.for_all Lexer.is_symbol_char a)
  in
  (not ok_unquoted)
  && not (List.mem a [ "[]"; "!"; ";"; "{}" ])

let atom_to_string a =
  if needs_quotes a then
    "'" ^ String.concat "''" (String.split_on_char '\'' a) ^ "'"
  else a

let rec pp ?(ops = Ops.create ()) fmt (t : Term.t) = pp_prec ops 1200 fmt t

and pp_prec ops maxprec fmt t =
  match t with
  | Term.Var i -> Format.pp_print_string fmt (var_name i)
  | Term.Int i -> Format.fprintf fmt "%d" i
  | Term.Atom a -> Format.pp_print_string fmt (atom_to_string a)
  | Term.Struct (".", [| _; _ |], _) -> pp_list ops fmt t
  | Term.Struct ("{}", [| x |], _) ->
      (* curly terms read back as {X}, never as a call of the atom {} *)
      Format.fprintf fmt "{%a}" (pp_prec ops 1200) x
  | Term.Struct (f, [| a; b |], _) as whole -> (
      match Ops.infix ops f with
      | Some { Ops.prec; assoc } ->
          let lmax, rmax =
            match assoc with
            | Ops.XFX -> (prec - 1, prec - 1)
            | Ops.XFY -> (prec - 1, prec)
            | Ops.YFX -> (prec, prec - 1)
            | _ -> (prec, prec)
          in
          let bare fmt () =
            Format.fprintf fmt "%a%s%a" (pp_prec ops lmax) a
              (if String.equal f "," then ", " else Printf.sprintf " %s " f)
              (pp_prec ops rmax) b
          in
          if prec > maxprec then Format.fprintf fmt "(%a)" bare ()
          else bare fmt ()
      | None -> pp_canonical ops fmt whole)
  | Term.Struct (f, [| a |], _) as whole -> (
      match Ops.prefix ops f with
      | Some { Ops.prec; assoc } ->
          let sub = match assoc with Ops.FY -> prec | _ -> prec - 1 in
          let bare fmt () =
            Format.fprintf fmt "%s %a" f (pp_prec ops sub) a
          in
          if prec > maxprec then Format.fprintf fmt "(%a)" bare ()
          else bare fmt ()
      | None -> pp_canonical ops fmt whole)
  | Term.Struct _ -> pp_canonical ops fmt t

and pp_canonical ops fmt = function
  | Term.Struct (f, args, _) ->
      Format.fprintf fmt "%s(" (atom_to_string f);
      Array.iteri
        (fun i a ->
          if i > 0 then Format.pp_print_string fmt ",";
          pp_prec ops 999 fmt a)
        args;
      Format.pp_print_string fmt ")"
  | t -> pp_prec ops 1200 fmt t

and pp_list ops fmt t =
  Format.pp_print_string fmt "[";
  let rec go first t =
    match t with
    | Term.Atom "[]" -> ()
    | Term.Struct (".", [| h; tl |], _) ->
        if not first then Format.pp_print_string fmt ",";
        pp_prec ops 999 fmt h;
        go false tl
    | other ->
        Format.pp_print_string fmt "|";
        pp_prec ops 999 fmt other
  in
  go true t;
  Format.pp_print_string fmt "]"

let term_to_string ?ops t = Format.asprintf "%a" (pp ?ops) t

let clause_to_string ?ops (c : Parser.clause) =
  match c.Parser.body with
  | [] -> term_to_string ?ops c.Parser.head ^ "."
  | body ->
      term_to_string ?ops c.Parser.head
      ^ " :- "
      ^ String.concat ", " (List.map (term_to_string ?ops) body)
      ^ "."
