(* Benchmark harness: regenerates every table of the paper's evaluation
   section and the ablations motivated by its prose, then runs Bechamel
   micro-benchmarks of the analysis phase.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- one section

   Assessment-driven runs (lib/benchrun, docs/BENCHMARKING.md):

     bench/main.exe run [--repeats N] ...     persistent run directory
     bench/main.exe ab <a> <b>                A/B deltas between two runs
     bench/main.exe gate --baseline <id>      nonzero exit on regression

   Shapes, not absolute times, are the reproduction target: the paper
   measured XSB 1.4.2 on 1996 SPARCstations.  EXPERIMENTS.md holds the
   side-by-side discussion. *)

open Prax

(* Tabled evaluation is allocation-heavy (activation copies, persistent
   substitution nodes, canonical answers), and the long-lived survivors
   are the tables themselves.  The default 256k-word minor heap forces a
   minor collection every fraction of a millisecond and promotes
   still-live transients; a workload-sized nursery removes that overhead
   (docs/PERFORMANCE.md quantifies it). *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* the registry-driven sections dispatch through Prax.Analysis *)
let () = Analyses.ensure ()

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* Every governed table row runs under a per-run wall-clock budget: a
   corpus program that diverges (or a regression that makes one diverge)
   degrades that row to a sound partial result instead of wedging the
   whole harness.  The status and budget are recorded per row. *)
let bench_timeout = 10. (* seconds *)
let bench_guard () = Guard.create ~timeout:bench_timeout ()
let budget_cell = Printf.sprintf "%gs" bench_timeout

let status_cell = function
  | Guard.Complete -> "complete"
  | Guard.Partial { reason; _ } ->
      "partial:" ^ Guard.reason_to_string reason

(* best of three runs, as a mild guard against scheduler noise *)
let best3 f =
  let r1 = f () in
  let m1 = fst r1 in
  let r2 = f () in
  let m2 = fst r2 in
  let r3 = f () in
  let m3 = fst r3 in
  if m1 <= m2 && m1 <= m3 then r1 else if m2 <= m3 then r2 else r3

let src n =
  (Option.get (Benchdata.Registry.find_logic n)).Benchdata.Registry.source

let fsrc n =
  (Option.get (Benchdata.Registry.find_fp n)).Benchdata.Registry.source

(* ------------------------------------------------------------------ *)
(* Table 1: Prop-based groundness analysis                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1: performance of Prop-based groundness analysis (tabled engine, \
     dynamic mode)";
  Printf.printf "%-8s %5s | %8s %8s %8s %8s | %8s %10s | %7s %7s %7s | %-8s %s\n"
    "Program" "lines" "Preproc" "Analysis" "Collect" "Total" "Incr.(%)"
    "Table(B)" "Entries" "Answers" "Resump" "Status" "Budget";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let (total, (rep, compile)) =
        best3 (fun () ->
            let rep =
              Groundness.analyze ~guard:(bench_guard ())
                b.Benchdata.Registry.source
            in
            let compile =
              Groundness.Analyze.compile_time b.Benchdata.Registry.source
            in
            (Prax_ground.Analyze.total rep.Prax_ground.Analyze.phases,
             (rep, compile)))
      in
      let p = rep.Prax_ground.Analyze.phases in
      let st = rep.Prax_ground.Analyze.engine_stats in
      Printf.printf
        "%-8s %5d | %8.4f %8.4f %8.4f %8.4f | %8.1f %10d | %7d %7d %7d | %-8s %s\n"
        b.Benchdata.Registry.name b.Benchdata.Registry.paper_lines
        p.Prax_ground.Analyze.preproc p.Prax_ground.Analyze.analysis
        p.Prax_ground.Analyze.collection total
        (100. *. total /. max 1e-9 compile)
        rep.Prax_ground.Analyze.table_bytes
        st.Prax_tabling.Engine.table_entries st.Prax_tabling.Engine.answers
        st.Prax_tabling.Engine.resumptions
        (status_cell rep.Prax_ground.Analyze.status)
        budget_cell)
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Table 2: declarative-on-tabled-engine vs special-purpose (GAIA)     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section
    "Table 2: total analysis time, tabled declarative analyzer (\"XSB\") vs \
     special-purpose abstract interpreter (\"GAIA\", BDD back-end)";
  Printf.printf "%-8s | %10s %10s | %s\n" "Program" "tabled(s)" "gaia(s)"
    "paper: XSB vs GAIA (s)";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let tabled, _ =
        best3 (fun () ->
            let rep = Groundness.analyze b.Benchdata.Registry.source in
            (Prax_ground.Analyze.total rep.Prax_ground.Analyze.phases, ()))
      in
      let gaia, _ =
        best3 (fun () ->
            let rep = Gaia.Analyze.analyze_bdd b.Benchdata.Registry.source in
            (Prax_gaia.Analyze.total rep.Prax_gaia.Analyze.phases, ()))
      in
      let paper =
        match (b.Benchdata.Registry.table1, b.Benchdata.Registry.gaia_total)
        with
        | Some row, Some g ->
            Printf.sprintf "%.2f vs %.2f" row.Benchdata.Registry.total g
        | _ -> "-"
      in
      Printf.printf "%-8s | %10.4f %10.4f | %s\n" b.Benchdata.Registry.name
        tabled gaia paper)
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Table 3: strictness analysis                                        *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: performance of strictness analysis (tabled engine)";
  Printf.printf "%-10s %5s | %8s %8s %8s %8s | %9s %10s | %7s %7s %7s | %-8s %s\n"
    "Program" "lines" "Preproc" "Analysis" "Collect" "Total" "lines/s"
    "Table(B)" "Entries" "Answers" "Resump" "Status" "Budget";
  let total_lines = ref 0 and total_time = ref 0. in
  List.iter
    (fun (b : Benchdata.Registry.fp_bench) ->
      let (total, rep) =
        best3 (fun () ->
            let rep =
              Strictness.analyze ~guard:(bench_guard ())
                b.Benchdata.Registry.source
            in
            (Prax_strict.Analyze.total rep.Prax_strict.Analyze.phases, rep))
      in
      let p = rep.Prax_strict.Analyze.phases in
      let st = rep.Prax_strict.Analyze.engine_stats in
      let lines = rep.Prax_strict.Analyze.source_lines in
      total_lines := !total_lines + lines;
      total_time := !total_time +. total;
      Printf.printf
        "%-10s %5d | %8.4f %8.4f %8.4f %8.4f | %9.0f %10d | %7d %7d %7d | %-8s %s\n"
        b.Benchdata.Registry.name lines p.Prax_strict.Analyze.preproc
        p.Prax_strict.Analyze.analysis p.Prax_strict.Analyze.collection total
        (float_of_int lines /. max 1e-9 total)
        rep.Prax_strict.Analyze.table_bytes
        st.Prax_tabling.Engine.table_entries st.Prax_tabling.Engine.answers
        st.Prax_tabling.Engine.resumptions
        (status_cell rep.Prax_strict.Analyze.status)
        budget_cell)
    Benchdata.Registry.fp_benchmarks;
  Printf.printf
    "\nThroughput over the whole corpus: %.0f source lines/second\n"
    (float_of_int !total_lines /. max 1e-9 !total_time)

(* ------------------------------------------------------------------ *)
(* Table 4: depth-k groundness                                         *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section
    "Table 4: groundness analysis with depth-k term abstraction (k=1; the \
     paper's Table 4 also omits gabriel/press1/press2)";
  Printf.printf "%-8s | %8s %8s %8s %8s | %8s %10s | %7s %7s %7s | %-8s %s\n"
    "Program" "Preproc" "Analysis" "Collect" "Total" "Incr.(%)" "Table(B)"
    "Entries" "Answers" "Resump" "Status" "Budget";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let (total, (rep, compile)) =
        best3 (fun () ->
            let rep =
              Depthk.analyze ~guard:(bench_guard ()) ~k:1
                b.Benchdata.Registry.source
            in
            let compile =
              Groundness.Analyze.compile_time b.Benchdata.Registry.source
            in
            (Prax_depthk.Analyze.total rep.Prax_depthk.Analyze.phases,
             (rep, compile)))
      in
      let p = rep.Prax_depthk.Analyze.phases in
      let st = rep.Prax_depthk.Analyze.engine_stats in
      Printf.printf
        "%-8s | %8.4f %8.4f %8.4f %8.4f | %8.1f %10d | %7d %7d %7d | %-8s %s\n"
        b.Benchdata.Registry.name p.Prax_depthk.Analyze.preproc
        p.Prax_depthk.Analyze.analysis p.Prax_depthk.Analyze.collection total
        (100. *. total /. max 1e-9 compile)
        rep.Prax_depthk.Analyze.table_bytes
        st.Prax_tabling.Engine.table_entries st.Prax_tabling.Engine.answers
        st.Prax_tabling.Engine.resumptions
        (status_cell rep.Prax_depthk.Analyze.status)
        budget_cell)
    Benchdata.Registry.table4_benchmarks

(* ------------------------------------------------------------------ *)
(* Stress: worst-case groundness, dynamic vs def under a step budget   *)
(* ------------------------------------------------------------------ *)

let stress () =
  section
    "Stress: worst-case groundness programs (examples/stress/, after \
     Genaim-Howe-Codish) - tabled Prop (mode=dynamic) vs def-domain \
     fast path (mode=def) under the registry step budgets";
  Printf.printf "%-12s %8s | %-16s %10s %10s %8s | %-10s %10s %10s\n" "Program"
    "budget" "dynamic" "total(s)" "Table(B)" "answers" "def" "total(s)"
    "Table(B)";
  List.iter
    (fun (b : Benchdata.Registry.stress_bench) ->
      let measure mode =
        let guard = Guard.create ~max_steps:b.Benchdata.Registry.max_steps () in
        let rep =
          match mode with
          | `Dynamic -> Groundness.analyze ~guard b.Benchdata.Registry.source
          | `Def ->
              Groundness.Def.analyze ~guard b.Benchdata.Registry.source
        in
        rep
      in
      let d = measure `Dynamic and f = measure `Def in
      Printf.printf
        "%-12s %8d | %-16s %10.4f %10d %8d | %-10s %10.4f %10d\n"
        b.Benchdata.Registry.name b.Benchdata.Registry.max_steps
        (status_cell d.Prax_ground.Analyze.status)
        (Prax_ground.Analyze.total d.Prax_ground.Analyze.phases)
        d.Prax_ground.Analyze.table_bytes
        d.Prax_ground.Analyze.engine_stats.Prax_tabling.Engine.answers
        (status_cell f.Prax_ground.Analyze.status)
        (Prax_ground.Analyze.total f.Prax_ground.Analyze.phases)
        f.Prax_ground.Analyze.table_bytes)
    Benchdata.Registry.stress_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: dynamic (assert) vs compiled clause store                 *)
(* ------------------------------------------------------------------ *)

let ablation_dynvscomp () =
  section
    "Ablation (Section 4 prose): dynamic (assert + interpret) vs full \
     compilation of the analysis rules";
  Printf.printf "%-8s | %9s %9s %9s | %9s %9s %9s | %s\n" "Program" "dyn-pre"
    "dyn-eval" "dyn-tot" "comp-pre" "comp-eval" "comp-tot" "winner";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let measure mode =
        best3 (fun () ->
            let rep =
              Groundness.Analyze.analyze ~mode b.Benchdata.Registry.source
            in
            let p = rep.Prax_ground.Analyze.phases in
            (Prax_ground.Analyze.total p, p))
      in
      let dt, dp = measure Logic.Database.Dynamic in
      let ct, cp = measure Logic.Database.Compiled in
      Printf.printf
        "%-8s | %9.4f %9.4f %9.4f | %9.4f %9.4f %9.4f | %s\n"
        b.Benchdata.Registry.name dp.Prax_ground.Analyze.preproc
        dp.Prax_ground.Analyze.analysis dt cp.Prax_ground.Analyze.preproc
        cp.Prax_ground.Analyze.analysis ct
        (if dt <= ct then "dynamic" else "compiled"))
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: enumerative truth tables vs BDDs                          *)
(* ------------------------------------------------------------------ *)

(* kalah/read: the truth-table back-end cannot represent their widest
   clauses (>20 variables); press2 takes over half a minute *)
let bitset_infeasible = [ "kalah"; "read"; "press2" ]

let ablation_repr () =
  section
    "Ablation (Section 4 prose): boolean-function representation in the \
     special-purpose analyzer - enumerated truth tables vs BDDs";
  Printf.printf "%-8s | %12s %12s\n" "Program" "bitset(s)" "bdd(s)";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      if List.mem b.Benchdata.Registry.name bitset_infeasible then
        Printf.printf "%-8s | %12s %12s\n" b.Benchdata.Registry.name
          "(infeasible)" "-"
      else begin
        (* single run: the slow side of this ablation is the datum *)
        let tb =
          let rep = Gaia.Analyze.analyze_bitset b.Benchdata.Registry.source in
          Prax_gaia.Analyze.total rep.Prax_gaia.Analyze.phases
        in
        let td, _ =
          best3 (fun () ->
              let rep = Gaia.Analyze.analyze_bdd b.Benchdata.Registry.source in
              (Prax_gaia.Analyze.total rep.Prax_gaia.Analyze.phases, ()))
        in
        Printf.printf "%-8s | %12.4f %12.4f\n" b.Benchdata.Registry.name tb td
      end)
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: top-down tabling vs bottom-up (Coral) with magic sets     *)
(* ------------------------------------------------------------------ *)

let entry_pred (clauses : Logic.Parser.clause list) : (string * int) option =
  (* the corpus convention: a *_top predicate is the entry point *)
  List.find_map
    (fun (c : Logic.Parser.clause) ->
      match Logic.Term.functor_of c.Logic.Parser.head with
      | Some (name, arity)
        when String.length name > 4
             && String.equal (String.sub name (String.length name - 4) 4)
                  "_top" ->
          Some (name, arity)
      | _ -> None)
    clauses

let ablation_magic () =
  section
    "Ablation (Section 7): goal-directed evaluation - tabled top-down vs \
     bottom-up semi-naive, plain / magic / supplementary-magic";
  Printf.printf "%-8s | %9s %9s %9s %9s | %7s %7s %7s\n" "Program" "tabled"
    "plain-bu" "magic" "supmagic" "factsP" "factsM" "factsS";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let clauses = Logic.Parser.parse_clauses b.Benchdata.Registry.source in
      match entry_pred clauses with
      | None -> Printf.printf "%-8s | (no entry predicate)\n" b.Benchdata.Registry.name
      | Some (top, arity) ->
          let abstract, _, maxiff = Groundness.Transform.program clauses in
          (* tabled top-down, goal-directed from the entry point *)
          let t_tab, _ =
            best3 (fun () ->
                let db = Logic.Database.create () in
                Logic.Database.load_clauses db abstract;
                let e = Tabling.Engine.create db in
                Prop.Iff.register e ~max_arity:maxiff;
                let goal =
                  Logic.Term.mk
                    (Groundness.Transform.prefix ^ top)
                    (Array.init arity (fun _ -> Logic.Term.fresh_var ()))
                in
                let t0 = Unix.gettimeofday () in
                Tabling.Engine.run e goal (fun _ -> ());
                (Unix.gettimeofday () -. t0, ()))
          in
          let rules =
            Bottomup.From_prop.convert ~domain:Bottomup.From_prop.bool_domain
              abstract
          in
          let q =
            {
              Bottomup.Datalog.pred = (Groundness.Transform.prefix ^ top, arity);
              args = Array.init arity (fun _ -> Logic.Term.fresh_var ());
            }
          in
          let run rules =
            let t0 = Unix.gettimeofday () in
            let intensional, db = Bottomup.Datalog.load rules in
            ignore (Bottomup.Datalog.seminaive intensional db);
            (Unix.gettimeofday () -. t0, Bottomup.Datalog.fact_count db)
          in
          let t_plain, f_plain = run rules in
          let mrules, _ = Bottomup.Magic.magic rules q in
          let t_magic, f_magic = run mrules in
          let srules, _ = Bottomup.Magic.supplementary rules q in
          let t_sup, f_sup = run srules in
          Printf.printf
            "%-8s | %9.4f %9.4f %9.4f %9.4f | %7d %7d %7d\n"
            b.Benchdata.Registry.name t_tab t_plain t_magic t_sup f_plain
            f_magic f_sup)
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: supplementary tabling for strictness                      *)
(* ------------------------------------------------------------------ *)

(* without supplementary tabling the larger programs take minutes *)
let supp_off_feasible = [ "eu"; "quicksort"; "listcompr"; "mergesort" ]

let ablation_supp () =
  section
    "Ablation (Section 4.2): supplementary tabling for the strictness \
     analyzer (the optimization the paper proposes but leaves unevaluated)";
  Printf.printf "%-10s | %10s %10s | %12s %12s\n" "Program" "supp-on" "supp-off"
    "resump-on" "resump-off";
  List.iter
    (fun (b : Benchdata.Registry.fp_bench) ->
      let measure supplementary =
        let rep =
          Strictness.Analyze.analyze ~supplementary b.Benchdata.Registry.source
        in
        ( Prax_strict.Analyze.total rep.Prax_strict.Analyze.phases,
          rep.Prax_strict.Analyze.engine_stats.Prax_tabling.Engine.resumptions
        )
      in
      let t_on, r_on = measure true in
      if List.mem b.Benchdata.Registry.name supp_off_feasible then begin
        let t_off, r_off = measure false in
        Printf.printf "%-10s | %10.4f %10.4f | %12d %12d\n"
          b.Benchdata.Registry.name t_on t_off r_on r_off
      end
      else
        Printf.printf "%-10s | %10.4f %10s | %12d %12s\n"
          b.Benchdata.Registry.name t_on "(min.)" r_on "-")
    Benchdata.Registry.fp_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: depth parameter sweep                                     *)
(* ------------------------------------------------------------------ *)

let k2_feasible =
  [ "qsort"; "queens"; "pg"; "gabriel"; "disj"; "cs"; "peep" ]

let ablation_depthk_sweep () =
  section "Ablation: depth-k sweep (k = 1 vs k = 2, where tractable)";
  Printf.printf "%-8s | %10s %8s %8s | %10s %8s %8s\n" "Program" "k=1(s)"
    "answers" "entries" "k=2(s)" "answers" "entries";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let measure k =
        let rep = Depthk.analyze ~k b.Benchdata.Registry.source in
        ( Prax_depthk.Analyze.total rep.Prax_depthk.Analyze.phases,
          rep.Prax_depthk.Analyze.engine_stats.Prax_tabling.Engine.answers,
          rep.Prax_depthk.Analyze.engine_stats.Prax_tabling.Engine.table_entries
        )
      in
      let t1, a1, e1 = measure 1 in
      if List.mem b.Benchdata.Registry.name k2_feasible then begin
        let t2, a2, e2 = measure 2 in
        Printf.printf "%-8s | %10.4f %8d %8d | %10.4f %8d %8d\n"
          b.Benchdata.Registry.name t1 a1 e1 t2 a2 e2
      end
      else
        Printf.printf "%-8s | %10.4f %8d %8d | %10s %8s %8s\n"
          b.Benchdata.Registry.name t1 a1 e1 "(slow)" "-" "-")
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Ablation: variant tabling vs the open-call strategy (Section 6.2)   *)
(* ------------------------------------------------------------------ *)

let ablation_opencall () =
  section
    "Ablation (Section 6.2): variant tabling vs the open-call \
     (forward-subsumption) strategy, groundness corpus";
  Printf.printf "%-8s | %9s %7s %7s | %9s %7s %7s\n" "Program" "variant"
    "entries" "answers" "opencall" "entries" "answers";
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      let clauses = Logic.Parser.parse_clauses b.Benchdata.Registry.source in
      let abstract, preds, maxiff = Groundness.Transform.program clauses in
      let measure open_calls =
        let db = Logic.Database.create () in
        Logic.Database.load_clauses db abstract;
        let e = Tabling.Engine.create ~open_calls db in
        Prop.Iff.register e ~max_arity:maxiff;
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun (name, arity) ->
            let goal =
              Logic.Term.mk
                (Groundness.Transform.prefix ^ name)
                (Array.init arity (fun _ -> Logic.Term.fresh_var ()))
            in
            Tabling.Engine.run e goal (fun _ -> ()))
          preds;
        let st = Tabling.Engine.stats e in
        ( Unix.gettimeofday () -. t0,
          st.Prax_tabling.Engine.table_entries,
          st.Prax_tabling.Engine.answers )
      in
      let tv, ev, av = measure false in
      let to_, eo, ao = measure true in
      Printf.printf "%-8s | %9.4f %7d %7d | %9.4f %7d %7d\n"
        b.Benchdata.Registry.name tv ev av to_ eo ao)
    Benchdata.Registry.logic_benchmarks

(* ------------------------------------------------------------------ *)
(* Extension benches: Section 7 dataflow, Section 6.1 widening & types *)
(* ------------------------------------------------------------------ *)

let ext_dataflow () =
  section
    "Extension (Section 7): demand-driven dataflow on ladder CFGs - one \
     demand query vs the exhaustive relation, tabled engine";
  Printf.printf "%7s | %12s %9s | %12s %9s\n" "rungs" "demand(s)" "entries"
    "exhaustive" "entries";
  List.iter
    (fun rungs ->
      let p = [ Dataflow.Cfg.ladder ~name:"main" ~base:0 ~rungs ] in
      let t0 = Unix.gettimeofday () in
      let t = Dataflow.Analyze.make p in
      ignore (Dataflow.Analyze.reaches t ~var:"v0" ~def:1 ~node:2);
      let td = Unix.gettimeofday () -. t0 in
      let ed = (Dataflow.Analyze.stats t).Prax_tabling.Engine.table_entries in
      let t1 = Unix.gettimeofday () in
      let t' = Dataflow.Analyze.make p in
      let nodes =
        List.concat_map
          (fun (pr : Dataflow.Cfg.proc) ->
            List.map (fun (n : Dataflow.Cfg.node) -> n.Dataflow.Cfg.id)
              pr.Dataflow.Cfg.nodes)
          p
      in
      List.iter (fun n -> ignore (Dataflow.Analyze.reaching_at t' ~node:n)) nodes;
      let te = Unix.gettimeofday () -. t1 in
      let ee = (Dataflow.Analyze.stats t').Prax_tabling.Engine.table_entries in
      Printf.printf "%7d | %12.4f %9d | %12.4f %9d\n" rungs td ed te ee)
    [ 10; 20; 40; 80 ]

let ext_widening () =
  section
    "Extension (Section 6.1): widening over the infinite successor domain \
     - answers stay finite, precision grows with the chain cutoff";
  let peano =
    "nat(0). nat(s(X)) :- nat(X).\n\
     plus(0, Y, Y). plus(s(X), Y, s(Z)) :- plus(X, Y, Z).\n\
     even(0). even(s(s(X))) :- even(X)."
  in
  Printf.printf "%7s | %10s %9s %9s\n" "chain" "time(s)" "answers" "widened";
  List.iter
    (fun chain ->
      let t0 = Unix.gettimeofday () in
      let rep = Infinite.Widen.analyze ~chain peano in
      let t = Unix.gettimeofday () -. t0 in
      let answers =
        List.fold_left
          (fun acc r -> acc + List.length r.Prax_infinite.Widen.answers)
          0 rep.Prax_infinite.Widen.results
      in
      let widened =
        List.length
          (List.filter
             (fun r -> r.Prax_infinite.Widen.widened)
             rep.Prax_infinite.Widen.results)
      in
      Printf.printf "%7d | %10.4f %9d %9d/3\n" chain t answers widened)
    [ 2; 3; 5; 8 ]

let ext_types () =
  section
    "Extension (Section 6.1): Hindley-Milner type analysis by occur-check \
     unification, functional corpus";
  Printf.printf "%-10s | %10s %6s\n" "Program" "time(s)" "funcs";
  List.iter
    (fun (b : Benchdata.Registry.fp_bench) ->
      let t0 = Unix.gettimeofday () in
      match Hm.Infer.infer_source b.Benchdata.Registry.source with
      | results ->
          Printf.printf "%-10s | %10.4f %6d\n" b.Benchdata.Registry.name
            (Unix.gettimeofday () -. t0)
            (List.length results)
      | exception Hm.Infer.Type_error m ->
          Printf.printf "%-10s | type error: %s\n" b.Benchdata.Registry.name m)
    Benchdata.Registry.fp_benchmarks

(* ------------------------------------------------------------------ *)
(* Machine-readable stats dump                                         *)
(* ------------------------------------------------------------------ *)

let statsjson () =
  section
    "Machine-readable stats: one prax.stats JSON document per corpus \
     benchmark (schema in docs/METRICS.md)";
  let emit ~analysis ~timer_prefix ~input ~table_bytes ~guard ~status =
    let open Metrics in
    let g =
      gauge ~units:"bytes" ~doc:"call/answer table space estimate"
        "engine.table_space_bytes"
    in
    set g table_bytes;
    let phases =
      List.map
        (fun ph -> (ph, timer_seconds (timer_prefix ^ "." ^ ph)))
        [ "preprocess"; "evaluate"; "collect" ]
    in
    let extra =
      Guard.status_json_fields status @ Guard.budget_json_fields guard
    in
    print_endline
      (json_to_string
         (stats_doc ~tool:"bench" ~analysis ~input ~phases ~extra
            (snapshot ())))
  in
  List.iter
    (fun (b : Benchdata.Registry.logic_bench) ->
      (* counters are process-wide: reset so each document covers one run *)
      Metrics.reset ();
      let guard = bench_guard () in
      let rep = Groundness.analyze ~guard b.Benchdata.Registry.source in
      emit ~analysis:"groundness" ~timer_prefix:"ground"
        ~input:b.Benchdata.Registry.name
        ~table_bytes:rep.Prax_ground.Analyze.table_bytes ~guard
        ~status:rep.Prax_ground.Analyze.status)
    Benchdata.Registry.logic_benchmarks;
  List.iter
    (fun (b : Benchdata.Registry.fp_bench) ->
      Metrics.reset ();
      let guard = bench_guard () in
      let rep = Strictness.analyze ~guard b.Benchdata.Registry.source in
      emit ~analysis:"strictness" ~timer_prefix:"strict"
        ~input:b.Benchdata.Registry.name
        ~table_bytes:rep.Prax_strict.Analyze.table_bytes ~guard
        ~status:rep.Prax_strict.Analyze.status)
    Benchdata.Registry.fp_benchmarks;
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_bechamel ?(quota = 0.5) ?(kde = Some 1000) tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let name = Test.name test in
      Hashtbl.iter
        (fun key raw ->
          let est = Analyze.one ols instance raw in
          ignore key;
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
              Printf.printf "%-34s %12.1f ns/run\n" name t
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        results)
    tests

let bechamel () =
  section
    "Bechamel micro-benchmarks: one statistically-sampled representative per \
     table (analysis pipeline end to end)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"table1/groundness-qsort"
        (Staged.stage (fun () -> ignore (Groundness.analyze (src "qsort"))));
      Test.make ~name:"table1/groundness-read"
        (Staged.stage (fun () -> ignore (Groundness.analyze (src "read"))));
      Test.make ~name:"table2/gaia-bdd-qsort"
        (Staged.stage (fun () ->
             ignore (Gaia.Analyze.analyze_bdd (src "qsort"))));
      Test.make ~name:"table3/strictness-mergesort"
        (Staged.stage (fun () ->
             ignore (Strictness.analyze (fsrc "mergesort"))));
      Test.make ~name:"table4/depthk-queens"
        (Staged.stage (fun () -> ignore (Depthk.analyze ~k:1 (src "queens"))));
    ]
  in
  run_bechamel tests

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the term-representation hot paths               *)
(* ------------------------------------------------------------------ *)

(* The three operations the interned/hash-consed representation is meant
   to make cheap: head unification, canonicalization for variant table
   keys, and answer-table insert with duplicate detection.  Variable ids
   are fixed (disjoint blocks) so every run measures the same work. *)
let micro_tests () =
  let open Bechamel in
  let v i = Logic.Term.var (1000 + i) in
  let pat =
    Logic.Term.mk "p"
      [|
        v 0;
        Logic.Term.mk "f" [| v 1; Logic.Term.atom "a" |];
        Logic.Term.mk "g" [| v 0; v 2 |];
      |]
  in
  let ground_goal =
    Logic.Parser.parse_term "p(h(b), f(c, a), g(h(b), [1, 2, 3, 4, 5]))"
  in
  let variant = Logic.Term.map_vars (fun i -> Logic.Term.var (i + 1000)) pat in
  let nonground = Logic.Parser.parse_term "f(X, g(Y, h(Z, [A, B | C])), Y)" in
  let ground_big =
    Logic.Parser.parse_term "f(1, g(2, h(3, [4, 5, 6, 7, 8])), 9)"
  in
  (* 64 offers, 32 distinct: every other insert is a duplicate, the mix
     the engine's answer tables see on the iff-heavy corpus *)
  let answers =
    Array.init 64 (fun i ->
        Logic.Canon.of_term
          (Logic.Term.mk "ans"
             [| Logic.Term.int (i mod 32); Logic.Term.var 0 |]))
  in
  [
    Test.make ~name:"micro/unify-bind"
      (Staged.stage (fun () ->
           ignore (Logic.Unify.unify Logic.Subst.empty pat ground_goal)));
    Test.make ~name:"micro/unify-variant"
      (Staged.stage (fun () ->
           ignore (Logic.Unify.unify Logic.Subst.empty pat variant)));
    Test.make ~name:"micro/canonical-ground"
      (Staged.stage (fun () ->
           ignore (Logic.Canon.canonical Logic.Subst.empty ground_big)));
    Test.make ~name:"micro/canonical-vars"
      (Staged.stage (fun () ->
           ignore (Logic.Canon.canonical Logic.Subst.empty nonground)));
    Test.make ~name:"micro/answer-insert-dedup"
      (Staged.stage (fun () ->
           let tbl = Logic.Canon.Tbl.create 64 in
           Array.iter
             (fun a ->
               if not (Logic.Canon.Tbl.mem tbl a) then
                 Logic.Canon.Tbl.add tbl a ())
             answers));
  ]

let micro () =
  section
    "Bechamel micro-benchmarks: term-representation hot paths (unify, \
     canonicalization, answer-table insert/dedup)";
  run_bechamel (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis: splice speedup per edit distance           *)
(* ------------------------------------------------------------------ *)

(* The incremental matrix: the analyses with per-SCC fragment support,
   each over its corpus, at edit distances 1/4/16 clauses applied by
   the deterministic mutation generator (seeded, so every machine
   measures the same edits).  Scratch and spliced runs both analyze
   the *edited* source; the fragment cache is populated once from the
   base source and then frozen (loads only), so every repetition
   measures the same base->edit re-analysis. *)

let incr_edit_sizes = [ 1; 4; 16 ]

let incr_matrix () =
  List.map
    (fun (b : Benchdata.Registry.logic_bench) ->
      ( "groundness",
        b.Benchdata.Registry.name,
        b.Benchdata.Registry.source,
        Incr.Mutate.mutate_pl ))
    Benchdata.Registry.logic_benchmarks
  @ List.map
      (fun (b : Benchdata.Registry.fp_bench) ->
        ( "strictness",
          b.Benchdata.Registry.name,
          b.Benchdata.Registry.source,
          Incr.Mutate.mutate_eq ))
      Benchdata.Registry.fp_benchmarks

let gauge_value name =
  let snap = Metrics.snapshot () in
  List.fold_left
    (fun acc (s : Metrics.sample) ->
      if String.equal s.Metrics.name name then s.Metrics.value else acc)
    0 snap.Metrics.gauges

type incr_row = {
  ir_analysis : string;
  ir_name : string;
  ir_edit : int;  (* mutation count applied to the base source *)
  ir_scratch : Analysis.phases;
  ir_spliced : Analysis.phases;
  ir_sccs : int;
  ir_invalidated : int;
  ir_spliced_sccs : int;
  ir_cone_permille : int;
}

(* Speedup over the phases the splice can help (evaluate + collect):
   both runs parse the same edited source, so including preprocess
   would only dilute the signal on small programs. *)
let ir_speedup r =
  let work (p : Analysis.phases) =
    p.Analysis.analysis +. p.Analysis.collection
  in
  work r.ir_scratch /. Float.max (work r.ir_spliced) 1e-9

let incr_sweep () =
  List.concat_map
    (fun (aname, bname, source, mut) ->
      let a = Option.get (Analysis.find aname) in
      let base_tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let populate =
        {
          Analysis.cache_load = (fun k -> Hashtbl.find_opt base_tbl k);
          cache_save = (fun k v -> Hashtbl.replace base_tbl k v);
        }
      in
      ignore
        (Analysis.run_incr a ~guard:(bench_guard ()) ~cache:populate source);
      let frozen =
        {
          Analysis.cache_load = (fun k -> Hashtbl.find_opt base_tbl k);
          cache_save = (fun _ _ -> ());
        }
      in
      List.filter_map
        (fun n ->
          match Incr.Mutate.apply_n ~seed:1 ~n mut source with
          | None -> None
          | Some edited ->
              let _, scratch =
                best3 (fun () ->
                    let rep =
                      Analysis.run a ~guard:(bench_guard ()) edited
                    in
                    (Analysis.total rep.Analysis.phases, rep.Analysis.phases))
              in
              let _, (spliced, sccs, invalidated, spliced_sccs, cone) =
                best3 (fun () ->
                    Metrics.reset ();
                    let rep =
                      Analysis.run_incr a ~guard:(bench_guard ()) ~cache:frozen
                        edited
                    in
                    ( Analysis.total rep.Analysis.phases,
                      ( rep.Analysis.phases,
                        Metrics.counter_value "incr.sccs",
                        Metrics.counter_value "incr.invalidated",
                        Metrics.counter_value "incr.spliced",
                        gauge_value "incr.cone_frac" ) ))
              in
              Metrics.reset ();
              Some
                {
                  ir_analysis = aname;
                  ir_name = bname;
                  ir_edit = n;
                  ir_scratch = scratch;
                  ir_spliced = spliced;
                  ir_sccs = sccs;
                  ir_invalidated = invalidated;
                  ir_spliced_sccs = spliced_sccs;
                  ir_cone_permille = cone;
                })
        incr_edit_sizes)
    (incr_matrix ())

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let incremental () =
  section
    "Incremental re-analysis: spliced re-run vs scratch per edit distance \
     (docs/INCREMENTAL.md)";
  let rows = incr_sweep () in
  List.iter
    (fun r ->
      Printf.printf
        "  %-10s %-10s edit %2d  scratch %8.4fs  spliced %8.4fs  %6.1fx  \
         cone %4d/1000 (%d/%d sccs)\n"
        r.ir_analysis r.ir_name r.ir_edit
        (r.ir_scratch.Analysis.analysis +. r.ir_scratch.Analysis.collection)
        (r.ir_spliced.Analysis.analysis +. r.ir_spliced.Analysis.collection)
        (ir_speedup r) r.ir_cone_permille r.ir_invalidated r.ir_sccs)
    rows;
  List.iter
    (fun n ->
      match
        List.filter_map
          (fun r -> if r.ir_edit = n then Some (ir_speedup r) else None)
          rows
      with
      | [] -> ()
      | sp -> Printf.printf "  median speedup, edit %2d: %6.1fx\n" n (median sp))
    incr_edit_sizes;
  (* The acceptance slice: single-clause edits where the condensation
     actually has somewhere to split AND the scratch run does enough
     work to amortize the splice's fixed costs (graph + closure-digest
     planning, fragment decode, demand replay — a few milliseconds).
     Programs whose whole scratch analysis is under the floor can never
     win incrementally, whatever the cache does; the floor keeps the
     slice honest rather than flattering — slow *spliced* runs above it
     still count against the median.  The all-rows median printed above
     keeps the full picture visible. *)
  let amortizable_floor = 0.010 in
  match
    rows
    |> List.filter (fun r ->
           r.ir_edit = 1 && r.ir_sccs > 1
           && r.ir_scratch.Analysis.analysis
              +. r.ir_scratch.Analysis.collection
              >= amortizable_floor)
    |> List.map ir_speedup
  with
  | [] -> ()
  | sp ->
      Printf.printf
        "  median speedup, single-clause edits on multi-SCC programs (>= \
         %.0fms scratch work): %6.1fx\n"
        (amortizable_floor *. 1000.) (median sp)

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark dump: BENCH_engine.json                  *)
(* ------------------------------------------------------------------ *)

let bench_json_file = "BENCH_engine.json"

let tracked_counters =
  [
    "engine.call_lookups";
    "engine.call_hits";
    "engine.call_misses";
    "engine.answers_offered";
    "engine.answers_inserted";
    "engine.answers_deduped";
    "engine.consumer_resumptions";
    "unify.attempts";
    "unify.failures";
    "hashcons.hits";
    "hashcons.misses";
    "intern.symbols";
    "trie.nodes";
    "trie.prefix_hits";
  ]

(* Which corpus slice a registered analysis sweeps in benchjson, with
   each row's configuration.  Everything else about the row is
   generic: the analysis is found in the registry and run through
   [Analysis.run].  depthk reproduces Table 4 (k=1 over the paper's
   Table-4 subset); groundness additionally sweeps the worst-case
   stress corpus in def mode (the mode that completes it —
   examples/stress/README.md); the other analyses take their kind's
   whole corpus at default configuration. *)
let bench_corpus (a : Analysis.t) :
    (string * string * int option * Analysis.config) list =
  match a.Analysis.name with
  | "depthk" ->
      List.map
        (fun (b : Benchdata.Registry.logic_bench) ->
          ( b.Benchdata.Registry.name,
            b.Benchdata.Registry.source,
            Some b.Benchdata.Registry.paper_lines,
            [ ("k", "1") ] ))
        Benchdata.Registry.table4_benchmarks
  | _ -> (
      match a.Analysis.kind with
      | Analysis.Logic_program ->
          List.map
            (fun (b : Benchdata.Registry.logic_bench) ->
              ( b.Benchdata.Registry.name,
                b.Benchdata.Registry.source,
                Some b.Benchdata.Registry.paper_lines,
                [] ))
            Benchdata.Registry.logic_benchmarks
          @
          if a.Analysis.name = "groundness" then
            List.map
              (fun (b : Benchdata.Registry.stress_bench) ->
                ( b.Benchdata.Registry.name,
                  b.Benchdata.Registry.source,
                  None,
                  [ ("mode", "def") ] ))
              Benchdata.Registry.stress_benchmarks
          else []
      | Analysis.Fp_program ->
          List.map
            (fun (b : Benchdata.Registry.fp_bench) ->
              ( b.Benchdata.Registry.name,
                b.Benchdata.Registry.source,
                Some b.Benchdata.Registry.paper_lines,
                [] ))
            Benchdata.Registry.fp_benchmarks
      | Analysis.Cfg_program ->
          List.map
            (fun (b : Benchdata.Registry.cfg_bench) ->
              (b.Benchdata.Registry.name, b.Benchdata.Registry.source, None, []))
            Benchdata.Registry.cfg_benchmarks)

(* One row per (registered analysis, corpus benchmark of its kind) —
   Tables 1, 3, and 4 plus the gaia and dataflow sweeps all go through
   the same registry dispatch.  Best of three runs, counters reset per
   repetition so each row's counters describe exactly the run whose
   times it reports.  The perf trajectory across PRs is tracked by
   diffing these files; docs/PERFORMANCE.md explains how to read one. *)
let benchjson () =
  section
    ("Machine-readable engine benchmarks -> " ^ bench_json_file
   ^ " (every registered analysis over its corpus; docs/PERFORMANCE.md \
      explains the fields)");
  let open Metrics in
  let counters_now () =
    List.map (fun c -> (c, Int (counter_value c))) tracked_counters
  in
  let row ~name ~lines ~(rep : Analysis.report) ~counters =
    let p = rep.Analysis.phases in
    Obj
      ([
         ("name", Str name);
         ("analysis", Str rep.Analysis.analysis);
         ("config", Analysis.config_to_json rep.Analysis.config);
       ]
      @ (match (rep.Analysis.source_lines, lines) with
        | Some l, _ | None, Some l -> [ ("source_lines", Int l) ]
        | None, None -> [])
      @ [
          ( "phases",
            Obj
              [
                ("preprocess", Float p.Analysis.preproc);
                ("evaluate", Float p.Analysis.analysis);
                ("collect", Float p.Analysis.collection);
              ] );
          ("total_seconds", Float (Analysis.total p));
          ("table_bytes", Int rep.Analysis.table_bytes);
          ("clause_count", Int rep.Analysis.clause_count);
        ]
      @ (match rep.Analysis.engine with
        | Some e ->
            [
              ("table_entries", Int e.Analysis.table_entries);
              ("answers", Int e.Analysis.answers);
              ("resumptions", Int e.Analysis.resumptions);
            ]
        | None -> [])
      @ [ ("status", Str (status_cell rep.Analysis.status));
          ("counters", Obj counters);
        ])
  in
  let rows =
    List.concat_map
      (fun (a : Analysis.t) ->
        let corpus = bench_corpus a in
        List.map
          (fun (name, source, lines, config) ->
            let _, (rep, counters) =
              best3 (fun () ->
                  Metrics.reset ();
                  let rep =
                    Analysis.run a ~config ~guard:(bench_guard ()) source
                  in
                  (Analysis.total rep.Analysis.phases, (rep, counters_now ())))
            in
            Printf.printf "  %-10s %-10s analysis %8.4fs  table %7dB\n"
              a.Analysis.name name
              rep.Analysis.phases.Analysis.analysis
              rep.Analysis.table_bytes;
            row ~name ~lines ~rep ~counters)
          corpus)
      (Analysis.all ())
  in
  Metrics.reset ();
  (* the incremental section: scratch-vs-spliced re-analysis per edit
     distance, same deterministic matrix as the [incremental] console
     section (prax.bench v3 is additive over v2) *)
  let phases_json (p : Analysis.phases) =
    Obj
      [
        ("preprocess", Float p.Analysis.preproc);
        ("evaluate", Float p.Analysis.analysis);
        ("collect", Float p.Analysis.collection);
      ]
  in
  let incr_rows =
    List.map
      (fun r ->
        Printf.printf "  %-10s %-10s incremental edit %2d  %6.1fx\n"
          r.ir_analysis r.ir_name r.ir_edit (ir_speedup r);
        Obj
          [
            ("name", Str r.ir_name);
            ("analysis", Str r.ir_analysis);
            ("edit_clauses", Int r.ir_edit);
            ("scratch", phases_json r.ir_scratch);
            ("spliced", phases_json r.ir_spliced);
            ("speedup", Float (ir_speedup r));
            ("sccs", Int r.ir_sccs);
            ("invalidated", Int r.ir_invalidated);
            ("spliced_sccs", Int r.ir_spliced_sccs);
            ("cone_frac_permille", Int r.ir_cone_permille);
          ])
      (incr_sweep ())
  in
  Metrics.reset ();
  let doc =
    Obj
      [
        ("schema", Str "prax.bench");
        ("schema_version", Int 3);
        ("stats_schema_version", Int Metrics.schema_version);
        ("report_schema_version", Int Analysis.report_schema_version);
        ("benchmarks", Arr rows);
        ("incremental", Arr incr_rows);
      ]
  in
  let oc = open_out bench_json_file in
  output_string oc (json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" bench_json_file (List.length rows)

(* ------------------------------------------------------------------ *)
(* Smoke: the CI gate over the term representation                      *)
(* ------------------------------------------------------------------ *)

(* Quick (<~5s) representation-invariant checks plus a short-quota run
   of the micro-benchmarks, exiting nonzero on any violation so a
   representation regression fails the CI workflow loudly. *)
let smoke () =
  section
    "Smoke: term-representation invariants + short-quota micro-benchmarks \
     (CI gate; nonzero exit on failure)";
  let failed = ref false in
  let check name ok =
    Printf.printf "  %-52s %s\n" name (if ok then "ok" else "FAIL");
    if not ok then failed := true
  in
  let a = Logic.Term.mk "pt" [| Logic.Term.int 1; Logic.Term.atom "smoke" |] in
  let b = Logic.Term.mk "pt" [| Logic.Term.int 1; Logic.Term.atom "smoke" |] in
  check "structurally equal structs are physically equal" (a == b);
  check "atoms are interned"
    (Logic.Term.atom "smoke" == Logic.Term.atom "smoke");
  check "O(1) size from the meta word" (Logic.Term.size a = 3);
  check "O(1) ground flag" (Logic.Term.is_ground a);
  check "O(1) ground flag (negative)"
    (not (Logic.Term.is_ground (Logic.Term.mk "f" [| Logic.Term.var 0 |])));
  check "variant check via canonical forms"
    (Logic.Canon.variant
       (Logic.Parser.parse_term "f(X, g(X, Y))")
       (Logic.Parser.parse_term "f(A, g(A, B))"));
  check "all five analyses registered"
    (List.sort compare (Analysis.names ())
    = [ "dataflow"; "depthk"; "gaia"; "groundness"; "strictness" ]);
  check "registry claims .pl/.eq/.cfg"
    (List.for_all
       (fun ext -> Analysis.claiming_extension ext <> None)
       [ ".pl"; ".eq"; ".cfg" ]);
  Metrics.reset ();
  ignore (Logic.Term.atom "smoke_fresh_symbol_probe");
  let rep = Groundness.analyze (src "qsort") in
  check "groundness(qsort) completes"
    (match rep.Prax_ground.Analyze.status with
    | Guard.Complete -> true
    | Guard.Partial _ -> false);
  check "table space accounted" (rep.Prax_ground.Analyze.table_bytes > 0);
  check "hash-cons counters live"
    (Metrics.counter_value "hashcons.hits"
     + Metrics.counter_value "hashcons.misses"
     > 0);
  check "symbol-intern counter live"
    (Metrics.counter_value "intern.symbols" > 0);
  Metrics.reset ();
  run_bechamel ~quota:0.05 ~kde:None (micro_tests ());
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Profiling loop: run one groundness analysis many times in-process   *)
(* so sampling profilers (gprofng, perf) get enough samples.           *)
(* ------------------------------------------------------------------ *)

let profile () =
  let name =
    try Sys.getenv "PROFILE_BENCH" with Not_found -> "read"
  in
  let reps =
    try int_of_string (Sys.getenv "PROFILE_REPS") with _ -> 400
  in
  section
    (Printf.sprintf "Profile loop: groundness on %s x%d (for sampling \
                     profilers; PROFILE_BENCH / PROFILE_REPS to override)"
       name reps);
  let source = src name in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Groundness.analyze ~guard:(bench_guard ()) source)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d runs in %.3fs (%.4fs/run)\n%!" reps dt
    (dt /. float_of_int reps)

(* ------------------------------------------------------------------ *)
(* Batch: supervised fork-per-job overhead and store warm-start        *)
(* ------------------------------------------------------------------ *)

(* Quantifies what OS-process isolation costs (fork + result-frame
   round trip per job, vs calling the analyzer in-process) and what the
   persistent store buys back (a warm second run answers every job from
   snapshots without forking at all).  docs/ROBUSTNESS.md describes the
   supervision protocol and the snapshot format. *)
let batch () =
  section
    "Batch: supervised fork-per-job overhead vs in-process, and \
     persistent-store warm start";
  let names = [ "cs"; "disj"; "gabriel"; "qsort"; "queens"; "read" ] in
  let sources = List.map (fun n -> (n, src n)) names in
  let jobs = List.map fst sources in
  let config =
    {
      Serve.default_config with
      Serve.jobs = 2;
      budget = Guard.spec ~timeout:bench_timeout ();
    }
  in
  let worker ~job ~attempt:_ ~guard =
    let rep = Groundness.analyze ~guard (List.assoc job sources) in
    match rep.Prax_ground.Analyze.status with
    | Guard.Complete -> (Serve.Complete, "ok:" ^ job)
    | Guard.Partial { reason; _ } ->
        (Serve.Partial_result (Guard.reason_to_string reason), "partial:" ^ job)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let inproc, () =
    time (fun () ->
        List.iter
          (fun (_, source) ->
            ignore (Groundness.analyze ~guard:(bench_guard ()) source))
          sources)
  in
  let cold, _ = time (fun () -> Serve.run_batch ~config ~worker jobs) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-bench-store.%d" (Unix.getpid ()))
  in
  let store = Store.open_dir dir in
  let key_of job =
    {
      Store.analysis = "groundness";
      source_digest = Store.digest_source (List.assoc job sources);
      config = "mode=dynamic";
      schema_version = Metrics.schema_version;
    }
  in
  let cached ~job = Store.load store (key_of job) in
  let persist ~job ~payload = Store.save store (key_of job) payload in
  Metrics.reset ();
  let cold_store, _ =
    time (fun () -> Serve.run_batch ~config ~cached ~persist ~worker jobs)
  in
  let writes = Metrics.counter_value "store.writes" in
  Metrics.reset ();
  let warm, reports =
    time (fun () -> Serve.run_batch ~config ~cached ~persist ~worker jobs)
  in
  let hits = Metrics.counter_value "store.hits" in
  let forks = Metrics.counter_value "serve.workers_spawned" in
  let n = List.length jobs in
  let pct a b = 100. *. (a -. b) /. b in
  Printf.printf "  %d groundness jobs, %d concurrent workers\n" n
    config.Serve.jobs;
  Printf.printf "  in-process, sequential        %8.4fs\n" inproc;
  Printf.printf "  supervised, no store (cold)   %8.4fs  isolation overhead %+.1f%%\n"
    cold (pct cold inproc);
  Printf.printf "  supervised + store (cold)     %8.4fs  %d snapshot writes\n"
    cold_store writes;
  Printf.printf
    "  supervised + store (warm)     %8.4fs  %d/%d store hits, %d forks (%.1fx vs cold)\n"
    warm hits n forks
    (if warm > 0. then cold /. warm else 0.);
  let cached_n =
    List.length
      (List.filter
         (fun r ->
           match r.Serve.outcome with
           | Serve.Done { from_cache = true; _ } -> true
           | _ -> false)
         reports)
  in
  if cached_n <> n then
    Printf.printf "  WARNING: only %d/%d jobs answered from cache\n" cached_n n;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Run store: bench run / ab / gate (lib/benchrun, docs/BENCHMARKING.md)*)
(* ------------------------------------------------------------------ *)

let default_runs_dir = Filename.concat "bench_data" "runs"

(* exit codes of the run-store subcommands (docs/CLI.md): 0 ok / gate
   passed, 1 usage or load error, 2 gate found regressions *)
let exit_usage = 1
let exit_regression = 2

let usage_fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("bench: " ^ msg);
      exit exit_usage)
    fmt

(* PRAX_BENCH_SLOWDOWN="analysis:benchmark:seconds[,...]" — measurement
   injection for testing the gate: the seconds are added to the
   recorded evaluate/total samples of every matching row, making the
   row *report* slower without sleeping.  CI and test_benchrun use it
   to prove that an artificially slowed benchmark trips the gate. *)
let injected_slowdown ~analysis ~name =
  match Sys.getenv_opt "PRAX_BENCH_SLOWDOWN" with
  | None -> 0.
  | Some spec ->
      List.fold_left
        (fun acc entry ->
          match String.split_on_char ':' (String.trim entry) with
          | [ a; n; secs ] when a = analysis && n = name -> (
              match float_of_string_opt secs with
              | Some s -> acc +. s
              | None -> usage_fail "PRAX_BENCH_SLOWDOWN: bad seconds in %S" entry)
          | _ -> acc)
        0.
        (String.split_on_char ',' spec)

type sweep_sample = {
  s_phases : (string * float) list;  (* preprocess/evaluate/collect *)
  s_total : float;
  s_bytes : float;
  s_status : string;
  s_counters : (string * float) list;
}

(* One repeat of one (analysis x benchmark) cell, counters reset around
   it so they describe exactly this repetition. *)
let sweep_once (a : Analysis.t) ~config ~name source =
  Metrics.reset ();
  let rep = Analysis.run a ~config ~guard:(bench_guard ()) source in
  let p = rep.Analysis.phases in
  let slow = injected_slowdown ~analysis:a.Analysis.name ~name in
  ( {
      s_phases =
        [
          ("preprocess", p.Analysis.preproc);
          ("evaluate", p.Analysis.analysis +. slow);
          ("collect", p.Analysis.collection);
        ];
      s_total = Analysis.total p +. slow;
      s_bytes = float_of_int rep.Analysis.table_bytes;
      s_status = status_cell rep.Analysis.status;
      s_counters =
        List.map
          (fun c -> (c, float_of_int (Metrics.counter_value c)))
          tracked_counters;
    },
    rep )

(* The repeat-sampling loop over the (analysis x corpus) matrix.
   Filters: [analyses] / [benchmarks] are comma-lists of names (None =
   everything).  Returns the rows plus one log per row with the
   per-repeat raw samples. *)
let sweep ~repeats ~analyses ~benchmarks () =
  let wanted filter x =
    match filter with None -> true | Some l -> List.mem x l
  in
  let rows = ref [] and logs = ref [] in
  List.iter
    (fun (a : Analysis.t) ->
      if wanted analyses a.Analysis.name then begin
        let corpus = bench_corpus a in
        List.iter
          (fun (name, source, lines, config) ->
            if wanted benchmarks name then begin
              let samples = ref [] and last_rep = ref None in
              (* one untimed warm-up: the cold first execution of a
                 cell can run an order of magnitude slower (heap
                 growth, cold caches) and would pollute q3/IQR *)
              ignore (sweep_once a ~config ~name source);
              for _ = 1 to repeats do
                (* settle the GC so a pending major slice from the
                   previous cell doesn't land in this one — without
                   this, adjacent cells' times trade off between
                   otherwise-identical runs *)
                Gc.full_major ();
                let s, rep = sweep_once a ~config ~name source in
                samples := s :: !samples;
                last_rep := Some rep
              done;
              let samples = List.rev !samples in
              let rep = Option.get !last_rep in
              let totals = List.map (fun s -> s.s_total) samples in
              let total = Benchrun.stats_of totals in
              (* the representative repeat (status): the one whose
                 total lands closest to the median *)
              let repr =
                List.fold_left
                  (fun best s ->
                    if
                      Float.abs (s.s_total -. total.Benchrun.median)
                      < Float.abs (best.s_total -. total.Benchrun.median)
                    then s
                    else best)
                  (List.hd samples) samples
              in
              let phase ph =
                ( ph,
                  Benchrun.stats_of
                    (List.map (fun s -> List.assoc ph s.s_phases) samples) )
              in
              let row =
                {
                  Benchrun.r_analysis = a.Analysis.name;
                  r_name = name;
                  r_config = config;
                  r_status = repr.s_status;
                  r_source_lines =
                    (match (rep.Analysis.source_lines, lines) with
                    | Some l, _ | None, Some l -> Some l
                    | None, None -> None);
                  r_clause_count = rep.Analysis.clause_count;
                  r_phases =
                    List.map phase [ "preprocess"; "evaluate"; "collect" ];
                  r_total = total;
                  r_table_bytes =
                    Benchrun.stats_of (List.map (fun s -> s.s_bytes) samples);
                  (* counters come from the LAST repeat: with the
                     process warmed up they are deterministic for a
                     given binary and matrix order, so A/B counter
                     deltas reflect code changes, not cold-start
                     effects of whichever repeat won the median *)
                  r_counters =
                    (List.nth samples (List.length samples - 1)).s_counters;
                }
              in
              Printf.printf "  %-10s %-10s median %8.4fs  iqr %8.4fs  table %7.0fB  %s\n%!"
                a.Analysis.name name total.Benchrun.median
                (Benchrun.iqr total) row.Benchrun.r_table_bytes.Benchrun.median
                repr.s_status;
              let log =
                String.concat ""
                  (List.mapi
                     (fun i s ->
                       Printf.sprintf
                         "repeat %d: total=%.6f preprocess=%.6f \
                          evaluate=%.6f collect=%.6f table_bytes=%.0f \
                          status=%s\n"
                         (i + 1) s.s_total
                         (List.assoc "preprocess" s.s_phases)
                         (List.assoc "evaluate" s.s_phases)
                         (List.assoc "collect" s.s_phases)
                         s.s_bytes s.s_status)
                     samples)
              in
              rows := row :: !rows;
              logs :=
                (Printf.sprintf "%s-%s.log" a.Analysis.name name, log) :: !logs
            end)
          corpus
      end)
    (Analysis.all ());
  Metrics.reset ();
  (List.rev !rows, List.rev !logs)

(* --- flag parsing (shared by run/ab/gate) --------------------------- *)

let comma_list s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

type runopts = {
  mutable repeats : int;
  mutable shards : int;
  mutable runs_dir : string;
  mutable run_id : string option;
  mutable analyses : string list option;
  mutable benchmarks : string list option;
  mutable baseline : string option;
  mutable candidate : string option;
  mutable json : bool;
  mutable th : Benchrun.thresholds;
}

let parse_opts ~what ~defaults_repeats args =
  let o =
    {
      repeats = defaults_repeats;
      shards = 2;
      runs_dir = default_runs_dir;
      run_id = None;
      analyses = None;
      benchmarks = None;
      baseline = None;
      candidate = None;
      json = false;
      th = Benchrun.default_thresholds;
    }
  in
  let positional = ref [] in
  let int_of ~flag v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ -> usage_fail "%s: %s expects a positive integer, got %S" what flag v
  in
  let float_of ~flag v =
    match float_of_string_opt v with
    | Some f when f >= 0. -> f
    | _ -> usage_fail "%s: %s expects a non-negative number, got %S" what flag v
  in
  let rec go = function
    | [] -> ()
    | "--repeats" :: v :: rest ->
        o.repeats <- int_of ~flag:"--repeats" v;
        go rest
    | "--shards" :: v :: rest ->
        o.shards <- int_of ~flag:"--shards" v;
        go rest
    | "--runs-dir" :: v :: rest ->
        o.runs_dir <- v;
        go rest
    | "--id" :: v :: rest ->
        o.run_id <- Some v;
        go rest
    | "--analyses" :: v :: rest ->
        o.analyses <- Some (comma_list v);
        go rest
    | "--benchmarks" :: v :: rest ->
        o.benchmarks <- Some (comma_list v);
        go rest
    | "--baseline" :: v :: rest ->
        o.baseline <- Some v;
        go rest
    | "--candidate" :: v :: rest ->
        o.candidate <- Some v;
        go rest
    | "--json" :: rest ->
        o.json <- true;
        go rest
    | "--rel-time" :: v :: rest ->
        o.th <- { o.th with Benchrun.rel_time = float_of ~flag:"--rel-time" v };
        go rest
    | "--abs-time" :: v :: rest ->
        o.th <- { o.th with Benchrun.abs_time = float_of ~flag:"--abs-time" v };
        go rest
    | "--rel-bytes" :: v :: rest ->
        o.th <- { o.th with Benchrun.rel_bytes = float_of ~flag:"--rel-bytes" v };
        go rest
    | "--abs-bytes" :: v :: rest ->
        o.th <- { o.th with Benchrun.abs_bytes = float_of ~flag:"--abs-bytes" v };
        go rest
    | "--metrics" :: v :: rest ->
        let ms = comma_list v in
        List.iter
          (fun m ->
            if m <> "time" && m <> "bytes" then
              usage_fail "%s: --metrics accepts time,bytes (got %S)" what m)
          ms;
        o.th <-
          {
            o.th with
            Benchrun.gate_time = List.mem "time" ms;
            gate_bytes = List.mem "bytes" ms;
          };
        go rest
    | flag :: _ when String.length flag > 2 && String.sub flag 0 2 = "--" ->
        usage_fail "%s: unknown or value-less option %s" what flag
    | arg :: rest ->
        positional := arg :: !positional;
        go rest
  in
  go args;
  (o, List.rev !positional)

let load_run_or_fail ~runs_dir spec =
  match Benchrun.find_run ~runs_dir spec with
  | Ok run -> run
  | Error msg -> usage_fail "%s" msg

(* Execute the matrix in [shards] fresh processes and pool the
   samples.  Code/heap layout is a per-process lottery worth tens of
   percent on some cells for the process's whole lifetime, so a single
   process's tight samples can systematically mislead an A/B; with
   every run's samples drawn from several layouts, that variance shows
   up in each row's own IQR and the noise bound adapts.  Each shard is
   a re-exec of this binary with [--shards 1] (fork would inherit the
   parent's layout and defeat the point). *)
let sharded_sweep o =
  let per_shard =
    List.init o.shards (fun i ->
        (o.repeats / o.shards)
        + if i < o.repeats mod o.shards then 1 else 0)
    |> List.filter (fun n -> n > 0)
  in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-bench-shards-%d" (Unix.getpid ()))
  in
  let filters =
    (match o.analyses with
    | Some l -> [ "--analyses"; String.concat "," l ]
    | None -> [])
    @
    match o.benchmarks with
    | Some l -> [ "--benchmarks"; String.concat "," l ]
    | None -> []
  in
  let shard_dirs =
    List.mapi
      (fun i reps ->
        let id = Printf.sprintf "shard-%d" (i + 1) in
        Printf.printf "  shard %d/%d: %d repeat%s...\n%!" (i + 1)
          (List.length per_shard) reps
          (if reps = 1 then "" else "s");
        let argv =
          [
            Sys.executable_name; "run"; "--shards"; "1"; "--runs-dir"; tmp;
            "--id"; id; "--repeats"; string_of_int reps;
          ]
          @ filters
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process Sys.executable_name (Array.of_list argv)
            Unix.stdin devnull Unix.stderr
        in
        Unix.close devnull;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, st ->
            let what =
              match st with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            usage_fail "bench run: shard %d failed (%s)" (i + 1) what);
        Filename.concat tmp id)
      per_shard
  in
  let shards =
    List.map
      (fun d ->
        match Benchrun.load_run d with
        | Ok run -> run
        | Error msg -> usage_fail "bench run: shard unreadable: %s" msg)
      shard_dirs
  in
  let rows = Benchrun.pool_rows (List.map (fun r -> r.Benchrun.rows) shards) in
  (* merge the per-cell logs, one "# shard i" block per process *)
  let logs = Hashtbl.create 64 in
  let order = ref [] in
  List.iteri
    (fun i d ->
      let ldir = Filename.concat d "logs" in
      if Sys.file_exists ldir then
        Array.iter
          (fun f ->
            let ic = open_in (Filename.concat ldir f) in
            let len = in_channel_length ic in
            let content = really_input_string ic len in
            close_in ic;
            let name = f in
            if not (Hashtbl.mem logs name) then order := name :: !order;
            Hashtbl.replace logs name
              (Option.value ~default:"" (Hashtbl.find_opt logs name)
              ^ Printf.sprintf "# shard %d\n" (i + 1)
              ^ content))
          (Sys.readdir ldir))
    shard_dirs;
  let logs =
    List.rev_map (fun name -> (name, Hashtbl.find logs name)) !order
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (try rm tmp with Sys_error _ -> ());
  List.iter
    (fun (r : Benchrun.row) ->
      Printf.printf
        "  %-10s %-10s median %8.4fs  iqr %8.4fs  table %7.0fB  %s\n%!"
        r.Benchrun.r_analysis r.Benchrun.r_name
        r.Benchrun.r_total.Benchrun.median
        (Benchrun.iqr r.Benchrun.r_total)
        r.Benchrun.r_table_bytes.Benchrun.median r.Benchrun.r_status)
    rows;
  (rows, logs)

(* bench run: execute the matrix, persist a run directory *)
let cmd_run args =
  let o, positional = parse_opts ~what:"bench run" ~defaults_repeats:6 args in
  if positional <> [] then
    usage_fail "bench run: unexpected argument %s" (List.hd positional);
  let run_id =
    match o.run_id with Some id -> id | None -> Benchrun.fresh_id ()
  in
  let dir = Filename.concat o.runs_dir run_id in
  if Sys.file_exists dir then
    usage_fail "bench run: %s already exists (pick another --id)" dir;
  section
    (Printf.sprintf
       "Bench run %s: %d repeat%s x %d shard%s per (analysis x benchmark) -> %s"
       run_id o.repeats
       (if o.repeats = 1 then "" else "s")
       o.shards
       (if o.shards = 1 then "" else "s")
       dir);
  let rows, logs =
    if o.shards > 1 && o.repeats > 1 then sharded_sweep o
    else
      sweep ~repeats:o.repeats ~analyses:o.analyses ~benchmarks:o.benchmarks ()
  in
  if rows = [] then
    usage_fail "bench run: the filters selected no (analysis x benchmark) cells";
  let manifest =
    Benchrun.make_manifest ~run_id ~repeats:o.repeats
      ~argv:(Array.to_list Sys.argv)
  in
  Benchrun.write_run ~dir ~manifest ~rows ~logs;
  Printf.printf "wrote %s (%d rows, %d repeats, rev %s)\n" dir
    (List.length rows) o.repeats manifest.Benchrun.m_git_rev;
  run_id

(* bench ab: load two runs, print the deltas *)
let cmd_ab args =
  let o, positional = parse_opts ~what:"bench ab" ~defaults_repeats:5 args in
  let a, b =
    match positional with
    | [ a; b ] -> (a, b)
    | _ -> usage_fail "usage: bench ab <run-id-or-dir> <run-id-or-dir>"
  in
  let base = load_run_or_fail ~runs_dir:o.runs_dir a in
  let cand = load_run_or_fail ~runs_dir:o.runs_dir b in
  (match (base.Benchrun.manifest, cand.Benchrun.manifest) with
  | Some mb, Some mc when mb.Benchrun.m_git_rev <> mc.Benchrun.m_git_rev ->
      Printf.printf "note: comparing different revisions (%s vs %s)\n"
        mb.Benchrun.m_git_rev mc.Benchrun.m_git_rev
  | None, _ | _, None ->
      print_endline
        "note: a manifest is missing or corrupt; comparing rows only"
  | _ -> ());
  let ab = Benchrun.compare_runs ~thresholds:o.th base cand in
  if o.json then print_endline (Metrics.json_to_string (Benchrun.ab_to_json ab))
  else print_string (Benchrun.render_ab ab)

(* bench gate: compare a candidate (given, or freshly swept) against a
   baseline; exit 2 on any gated regression *)
let cmd_gate args =
  let o, positional = parse_opts ~what:"bench gate" ~defaults_repeats:4 args in
  if positional <> [] then
    usage_fail "bench gate: unexpected argument %s" (List.hd positional);
  let baseline_spec =
    match o.baseline with
    | Some b -> b
    | None -> usage_fail "bench gate: --baseline <run-id-or-dir> is required"
  in
  let base = load_run_or_fail ~runs_dir:o.runs_dir baseline_spec in
  let cand =
    match o.candidate with
    | Some c -> load_run_or_fail ~runs_dir:o.runs_dir c
    | None ->
        (* no candidate run given: sweep one now, restricted to the
           baseline's matrix so missing-row gating compares like with
           like *)
        let analyses =
          match o.analyses with
          | Some _ as f -> f
          | None ->
              Some
                (List.sort_uniq compare
                   (List.map
                      (fun r -> r.Benchrun.r_analysis)
                      base.Benchrun.rows))
        in
        let benchmarks =
          match o.benchmarks with
          | Some _ as f -> f
          | None ->
              Some
                (List.sort_uniq compare
                   (List.map (fun r -> r.Benchrun.r_name) base.Benchrun.rows))
        in
        let id =
          cmd_run
            ([ "--repeats"; string_of_int o.repeats;
               "--shards"; string_of_int o.shards;
               "--runs-dir"; o.runs_dir;
               "--analyses"; String.concat "," (Option.get analyses);
               "--benchmarks"; String.concat "," (Option.get benchmarks);
             ]
            @ match o.run_id with Some id -> [ "--id"; id ] | None -> [])
        in
        load_run_or_fail ~runs_dir:o.runs_dir id
  in
  let ab = Benchrun.compare_runs ~thresholds:o.th base cand in
  if o.json then print_endline (Metrics.json_to_string (Benchrun.ab_to_json ab))
  else print_string (Benchrun.render_ab ab);
  if ab.Benchrun.regressions > 0 then begin
    Printf.printf "gate: FAIL (%d regression%s vs %s)\n" ab.Benchrun.regressions
      (if ab.Benchrun.regressions = 1 then "" else "s")
      ab.Benchrun.base_id;
    exit exit_regression
  end
  else Printf.printf "gate: PASS (vs %s)\n" ab.Benchrun.base_id

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("stress", stress);
    ("ablation_dynvscomp", ablation_dynvscomp);
    ("ablation_repr", ablation_repr);
    ("ablation_magic", ablation_magic);
    ("ablation_supp", ablation_supp);
    ("ablation_depthk", ablation_depthk_sweep);
    ("ablation_opencall", ablation_opencall);
    ("ext_dataflow", ext_dataflow);
    ("ext_widening", ext_widening);
    ("ext_types", ext_types);
    ("statsjson", statsjson);
    ("incremental", incremental);
    ("benchjson", benchjson);
    ("bechamel", bechamel);
    ("micro", micro);
    ("smoke", smoke);
    ("batch", batch);
    ("profile", profile);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "run" :: rest -> ignore (cmd_run rest)
  | "ab" :: rest -> cmd_ab rest
  | "gate" :: rest -> cmd_gate rest
  | [] ->
      (* the profiling loop is opt-in: it exists for sampling profilers,
         not for the report *)
      List.iter
        (fun (n, f) -> if n <> "profile" then f ())
        sections
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> f ()
          | None ->
              Printf.eprintf
                "unknown section %s; available: %s\n\
                 run-store subcommands: run, ab, gate (docs/BENCHMARKING.md)\n"
                n
                (String.concat ", " (List.map fst sections));
              exit 1)
        names
