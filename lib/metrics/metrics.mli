(** Engine observability: process-wide counters, gauges, and hierarchical
    phase timers, with machine-readable snapshots.

    Every hot path of the system (the tabled engine, SLD resolution,
    unification, the bottom-up Datalog baseline, the four analysis
    drivers) registers named metrics here at module initialization and
    bumps them as it runs.  A CLI or harness then calls {!snapshot} and
    serializes it with {!stats_doc} / {!snapshot_to_csv} /
    {!snapshot_to_human}.

    The metric catalogue, naming conventions, and the serialized schema
    are documented in [docs/METRICS.md]; the schema is versioned by
    {!schema_version} and validated by [test/test_metrics.ml].

    {2 Cost model}

    A counter bump is a load of the global enable flag plus one unboxed
    store into a domain-local value array — safe to leave in the
    innermost engine loops, and race-free under multicore: each domain
    accumulates privately and a parallel runner folds worker values back
    with {!export_local} / {!absorb} at join.  Timers
    read the monotonic clock (via [bechamel.monotonic_clock]'s
    [clock_gettime] stub) only at the outermost entry and exit of a
    phase; nested re-entries of the same timer are depth-counted and do
    not touch the clock.  With {!set_enabled}[ false] every operation is
    a single conditional and {!snapshot} returns the empty record. *)

val schema_name : string
(** The schema identifier emitted in every {!stats_doc}: ["prax.stats"]. *)

val schema_version : int
(** Version of the serialized stats schema.  Bump it (and document the
    change in [docs/METRICS.md]) whenever a field is renamed, removed,
    or changes meaning; adding new counters does not require a bump.
    History: 1 = initial; 2 = adds evaluation status/budget fields;
    3 = adds term-representation counters; 4 = adds the supervised-batch
    [serve.] and persistent-store [store.] counter families; 5 = adds
    the analysis-daemon [daemon.] family and [store.tmp_swept]; 6 = adds
    the incremental re-analysis [incr.] family (all additive — older
    documents remain valid). *)

val min_supported_schema_version : int
(** Oldest schema version consumers of prax.stats documents are expected
    to accept.  Every bump so far is additive, so this stays 1. *)

val schema_version_supported : int -> bool
(** [schema_version_supported v]: does a document claiming version [v]
    parse under this library's schema expectations? *)

(** {1 Runtime switch} *)

val enabled : unit -> bool
(** Is metric recording currently on?  (Default: on.) *)

val set_enabled : bool -> unit
(** Turn recording on or off at runtime.  While off, counter bumps,
    gauge sets, and timer activations are dropped, and {!snapshot}
    returns an empty snapshot. *)

(** {1 Counters}

    A counter is a monotonically increasing event count, identified by a
    process-wide dotted name ([component.event]).  Creating a counter
    with a name that already exists returns the existing cell (the
    metadata of the first registration wins). *)

type counter

val counter : ?units:string -> ?doc:string -> string -> counter
(** [counter ~units ~doc name] registers (or retrieves) the counter
    [name].  [units] is a human label for what is being counted
    (default ["events"]); [doc] is a one-line description shown by the
    human renderer. *)

val incr : counter -> unit
(** Add one.  No-op while disabled. *)

val add : counter -> int -> unit
(** Add [n].  No-op while disabled. *)

val value : counter -> int
(** Current value (reads are never gated). *)

val counter_value : string -> int
(** Value of the counter registered under [name], or [0] if no such
    counter exists.  Convenience for tests and display code. *)

(** {1 Gauges}

    A gauge is a point-in-time measurement (e.g. table space in bytes),
    set rather than accumulated. *)

type gauge

val gauge : ?units:string -> ?doc:string -> string -> gauge
val set : gauge -> int -> unit

(** {1 Phase timers}

    A timer accumulates wall-clock nanoseconds (monotonic clock) over
    the dynamic extent of {!time} calls.  Timers are hierarchical in two
    ways: by dotted-name convention ([ground.preprocess]), and
    dynamically — the first time a timer starts while another is
    running, the running one is recorded as its [parent] and reported in
    snapshots.  Re-entrant activations (the same timer started inside
    itself) are depth-counted: only the outermost activation reads the
    clock and counts, so recursive phases are not double-billed. *)

type timer

val timer : ?doc:string -> string -> timer
(** Register (or retrieve) the timer [name]. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()] inside an activation of [t].  Exception-safe:
    the elapsed time is recorded even if [f] raises.  While disabled it
    is exactly [f ()].  Timers record main-domain activity only: in a
    worker domain spawned by the multicore batch runner, [time t f] is
    exactly [f ()] (per-job wall times come from the runner; the global
    phase timers would otherwise interleave concurrent jobs into
    meaningless totals). *)

val seconds : timer -> float
(** Accumulated seconds so far. *)

val timer_seconds : string -> float
(** Accumulated seconds of the timer registered under [name], or [0.]
    if no such timer exists. *)

(** {1 Snapshots} *)

val reset : unit -> unit
(** Zero every registered counter, gauge, and timer (registrations and
    metadata are kept).  Call before a measured region; pair with
    {!snapshot} after it. *)

type sample = { name : string; value : int; units : string; doc : string }

type timing = {
  timer_name : string;
  timer_seconds : float;
  activations : int;
  parent : string option;
  timer_doc : string;
}

type snapshot = {
  counters : sample list;
  gauges : sample list;
  timers : timing list;
}

val snapshot : unit -> snapshot
(** Capture every registered metric, each list sorted by name.  Returns
    the empty snapshot while disabled. *)

(** {1 Cross-domain merge}

    Counter and gauge values are stored per domain (a worker domain
    starts from zero), so parallel evaluation never races on a cell.
    A multicore runner calls {!export_local} in each worker domain just
    before it finishes and {!absorb}s the exports in the joining domain:
    counters add, gauges keep the largest observation. *)

type export

val export_local : unit -> export
(** This domain's raw counter/gauge values, detached from further
    updates. *)

val absorb : export -> unit
(** Fold an {!export_local} from a finished worker domain into the
    calling domain's values: counters are summed, gauges max-merged. *)

(** {1 JSON}

    A minimal self-contained JSON representation — the container image
    carries no JSON library, and the stats schema needs only this. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact (single-line) rendering.  Floats are printed so that they
    round-trip exactly through {!json_of_string}. *)

exception Json_error of string

val json_of_string : string -> json
(** Strict parser for the subset of JSON this module emits (full value
    grammar, UTF-8 [\u] escapes).  Raises {!Json_error} on malformed
    input.  Used by the round-trip tests and available to harnesses. *)

val member : string -> json -> json option
(** [member key (Obj fields)] looks up [key]; [None] on other
    constructors. *)

(** {1 Serialization of snapshots} *)

val snapshot_to_json : snapshot -> json
(** The [{counters; gauges; timers}] object described in
    [docs/METRICS.md] (names map to values; timers map to
    [{seconds; count; parent}]). *)

val stats_doc :
  tool:string ->
  analysis:string ->
  input:string ->
  ?phases:(string * float) list ->
  ?extra:(string * json) list ->
  snapshot ->
  json
(** The versioned top-level stats document: schema header
    ([schema], [schema_version], [tool], [analysis], [input]), the
    phase breakdown with its [total_seconds] sum (when [phases] is
    non-empty), any [extra] fields, then the snapshot body. *)

val snapshot_to_csv : snapshot -> string
(** [kind,name,value,unit] rows: one [counter]/[gauge] row per metric,
    and a [timer] (seconds) plus [timer_count] (activations) row pair
    per timer.  Metric names never contain commas or quotes, so no
    quoting is applied. *)

val snapshot_to_human : snapshot -> string
(** Aligned plain-text listing for terminals ([praxtop]'s [:- stats.],
    [xanalyze --stats=human]). *)
