(** Term tries (discrimination trees) over canonical terms — the
    call/answer table index of the tabled engine (see trie.mli for the
    contract).

    A canonical term is fully determined by its preorder label sequence:
    each node of the term contributes one label — [Lvar i] / [Lint i]
    for leaves, [Latom a] for nullary callables, [Lfun (f, n)] for a
    structure head — and the arities embedded in the labels make the
    sequence self-delimiting.  The trie stores one node per distinct
    label-sequence prefix, so insert and variant lookup are a single
    preorder walk and terms sharing a prefix (answers of the same call
    almost always share at least the functor and the first arguments)
    share its nodes.

    Child edges are scanned linearly: tabled-analysis domains branch
    over tiny alphabets ([true]/[false]/a variable, a handful of functor
    names), so a per-node hash table would cost more than it saves.
    Label comparison against a term head is pointer-first on interned
    names with a structural fallback, never allocating. *)

module Metrics = Prax_metrics.Metrics

let m_nodes =
  Metrics.counter ~units:"nodes"
    ~doc:"trie nodes allocated by call/answer-table inserts"
    "trie.nodes"

let m_prefix_hits =
  Metrics.counter ~units:"edges"
    ~doc:"insert steps that reused an existing trie edge (prefix sharing)"
    "trie.prefix_hits"

type label =
  | Lvar of int
  | Lint of int
  | Latom of string
  | Lfun of string * int

(* [payload] marks a terminal: the node reached after consuming a whole
   key's label sequence.  The key itself is kept alongside the value so
   iteration can hand both back without re-deriving terms from paths. *)
type 'a node = {
  mutable labels : label array;
  mutable kids : 'a node array;
  mutable nkids : int;
  mutable payload : (Term.t * 'a) option;
}

type 'a t = {
  mutable root : 'a node;
  mutable count : int;  (** terminals holding a value *)
  mutable nodes : int;  (** live nodes, root excluded *)
}

let new_node () = { labels = [||]; kids = [||]; nkids = 0; payload = None }
let create () = { root = new_node (); count = 0; nodes = 0 }
let cardinal t = t.count
let live_nodes t = t.nodes

let clear t =
  t.root <- new_node ();
  t.count <- 0;
  t.nodes <- 0

(* Does edge label [lbl] match the head of term [x]?  Interned names
   make the pointer test hit almost always; [String.equal] keeps the
   test sound for names interned by another domain. *)
let label_matches lbl (x : Term.t) =
  match (lbl, x) with
  | Lvar i, Term.Var j -> i = j
  | Lint i, Term.Int j -> i = j
  | Latom a, Term.Atom b -> a == b || String.equal a b
  | Lfun (f, n), Term.Struct (g, args, _) ->
      n = Array.length args && (f == g || String.equal f g)
  | _ -> false

let label_of (x : Term.t) =
  match x with
  | Term.Var i -> Lvar i
  | Term.Int i -> Lint i
  | Term.Atom a -> Latom a
  | Term.Struct (f, args, _) -> Lfun (f, Array.length args)

let find_child node x =
  let n = node.nkids in
  let labels = node.labels in
  let rec go i =
    if i >= n then None
    else if label_matches labels.(i) x then Some node.kids.(i)
    else go (i + 1)
  in
  go 0

let add_child node x =
  let child = new_node () in
  let n = node.nkids in
  if n = Array.length node.kids then begin
    let cap = max 2 (2 * n) in
    let labels = Array.make cap (Lint 0) in
    let kids = Array.make cap child in
    Array.blit node.labels 0 labels 0 n;
    Array.blit node.kids 0 kids 0 n;
    node.labels <- labels;
    node.kids <- kids
  end;
  node.labels.(n) <- label_of x;
  node.kids.(n) <- child;
  node.nkids <- n + 1;
  child

(* Preorder walk consuming [x]'s whole label sequence, creating missing
   edges.  [fresh] counts nodes allocated on this walk. *)
let rec walk_insert t fresh node (x : Term.t) =
  let child =
    match find_child node x with
    | Some c ->
        Metrics.incr m_prefix_hits;
        c
    | None ->
        incr fresh;
        t.nodes <- t.nodes + 1;
        Metrics.incr m_nodes;
        add_child node x
  in
  match x with
  | Term.Struct (_, args, _) ->
      let n = Array.length args in
      let rec go node i =
        if i >= n then node else go (walk_insert t fresh node args.(i)) (i + 1)
      in
      go child 0
  | _ -> child

(* Read-only walk; [None] as soon as an edge is missing. *)
let rec walk_find node (x : Term.t) =
  match find_child node x with
  | None -> None
  | Some child -> (
      match x with
      | Term.Struct (_, args, _) ->
          let n = Array.length args in
          let rec go node i =
            if i >= n then Some node
            else
              match walk_find node args.(i) with
              | None -> None
              | Some node -> go node (i + 1)
          in
          go child 0
      | _ -> Some child)

let find_opt t key =
  match walk_find t.root key with
  | Some { payload = Some (_, v); _ } -> Some v
  | _ -> None

let mem t key =
  match walk_find t.root key with
  | Some { payload = Some _; _ } -> true
  | _ -> false

type 'a outcome = Existing of 'a | Added of 'a * int

let find_or_add t key mk =
  let fresh = ref 0 in
  let node = walk_insert t fresh t.root key in
  match node.payload with
  | Some (_, v) -> Existing v
  | None ->
      let v = mk () in
      node.payload <- Some (key, v);
      t.count <- t.count + 1;
      Added (v, !fresh)

let iter f t =
  let rec go node =
    (match node.payload with Some (k, v) -> f k v | None -> ());
    for i = 0 to node.nkids - 1 do
      go node.kids.(i)
    done
  in
  go t.root

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
