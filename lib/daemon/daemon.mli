(** praxd — the resident analysis daemon.

    The batch surface ([xanalyze batch]) pays a cold process per
    invocation: registry construction, symbol interning, store opens.
    This module keeps all of that resident in one long-lived process — a
    Unix-domain-socket server that parses requests off the {!Wire}
    protocol, admits them through {!Admission} plus queue-depth
    backpressure, dispatches them onto the {!Prax_serve.Serve.Pool}
    worker fleet (each job still forks: a crashing analysis can never
    take the daemon down, and forked children inherit the warm interned
    heap copy-on-write), and answers repeats from a resident result
    cache backed by the optional {!Prax_store.Store}.

    {2 Admission ladder}

    An [analyze] request passes, in order (docs/ROBUSTNESS.md):

    + {b drain check} — a draining daemon answers ["draining"];
    + {b rate limit} — the client's token bucket ([rate]/[burst]);
      empty answers ["overloaded"/"rate_limited"] with a
      [retry_after_ms] refill hint ([daemon.shed_rate]);
    + {b pressure tier} — {!Pressure.decide} on pool occupancy: backlog
      at [max_queue] sheds with ["overloaded"/"queue_full"] and a
      [retry_after_ms] hint ([daemon.shed_queue]); below that the
      request is {e admitted} at the tier's guard-budget scale
      (full ×1.0 under 50% occupancy, reduced ×0.5 under 75%, minimal
      ×0.25 above) — degrade, don't drop.  A reduced-tier admission
      bumps [daemon.degraded] and its eventual result carries
      [degraded]/[tier]/[tier_label] fields;
    + {b registry validation} — unknown analysis or config key answers
      ["error"] (the caller's fault, not load);
    + {b warm cache} — a resident (or stored) complete result for the
      same (analysis, source bytes, config, schema) answers ["cached"]
      without forking ([daemon.warm_hits]).  The resident cache is
      LRU-bounded by [cache_entries]/[cache_bytes]
      ([daemon.cache_evictions]);
    + otherwise the job joins the fleet; its budget is the [serve]
      config's guard spec scaled by the admission tier, so a
      budget-tripped job degrades to ["partial"] instead of being shed.

    Malformed frames answer ["rejected"] and poison only themselves;
    an oversized frame loses framing, so it also closes its connection
    ([daemon.rejected_bad_frame]).  Either way the accept loop is
    untouched.

    {2 Lifecycle}

    {!listen} refuses to start over a live daemon (socket probe), and
    sweeps a stale socket + pidfile left by a SIGKILLed predecessor.
    SIGTERM/SIGINT (or a [drain] request) begin graceful drain: stop
    accepting, answer queued requests ["draining"], let in-flight jobs
    finish until [drain_deadline], then SIGKILL-and-reap the rest;
    finally the socket and pidfile are removed and [daemon.drain_ms]
    records the drain.  {!run} then returns — the process exits 0.

    {2 Chaos harness}

    [config.chaos] is a deterministic fault plan
    ({!Prax_guard.Inject.daemon_plan}, from [praxd serve --chaos] or
    [PRAX_INJECT_DAEMON]): each fault fires when the Nth [analyze]
    request arrives (1-based, counted before admission).  Worker faults
    (crash/exit/hang) are planted on that request's job for attempt 1
    only, so the pool's retry ladder absorbs them; [conn-reset] flushes
    half the response line and closes; [store-enospc]/
    [store-short-write] arm a one-shot contained {!Prax_store.Store}
    write fault; [drain] begins graceful drain mid-load.  The invariant
    under any plan: every request gets exactly one structured response
    and the daemon exits clean ([daemon.chaos_injected] counts firings).

    Counters/gauges (stats schema v5, docs/METRICS.md):
    [daemon.accepted], [daemon.requests], [daemon.shed_queue],
    [daemon.shed_rate], [daemon.rejected_bad_frame], [daemon.warm_hits],
    [daemon.cold_ms], [daemon.warm_ms], [daemon.drain_ms],
    [daemon.degraded], [daemon.cache_evictions], [daemon.chaos_injected],
    [daemon.queue_depth], [daemon.inflight], [daemon.tier]. *)

module Serve = Prax_serve.Serve
module Inject = Prax_guard.Inject

type config = {
  socket_path : string;
  max_queue : int;  (** pool backlog bound before queue_full shedding *)
  rate : float;  (** per-client tokens/second; ≤ 0 disables *)
  burst : float;  (** per-client bucket ceiling *)
  max_request_bytes : int;  (** request-line cap *)
  drain_deadline : float;  (** seconds granted to in-flight jobs on drain *)
  store_dir : string option;  (** persistent backing for the warm cache *)
  incremental : bool;
      (** edit-aware workers (docs/INCREMENTAL.md): consult the per-SCC
          fragment cache and splice unchanged cones back instead of
          recomputing; reports stay byte-identical to full runs.
          Fragment reuse across requests requires [store_dir] (workers
          fork, so a memory-backed cache dies with the child). *)
  cache_entries : int;  (** resident-cache LRU entry cap (≥ 1) *)
  cache_bytes : int;  (** resident-cache LRU byte cap (≥ 1) *)
  chaos : Inject.daemon_plan;  (** deterministic fault schedule; [[]] = off *)
  serve : Serve.config;
      (** the worker fleet: [serve.jobs] is the in-flight cap, its
          budget/retry/watchdog knobs apply per job *)
}

val default_config : socket_path:string -> config
(** [max_queue=32; rate=0 (off); burst=8; max_request_bytes=8M;
    drain_deadline=5s; store_dir=None; incremental=false;
    cache_entries=512; cache_bytes=64M; chaos=[];
    serve=Serve.default_config]. *)

type t

exception Already_running of string
(** Raised by {!listen} when a live daemon answers on the socket (the
    message names the path). *)

val listen : config -> t
(** Claim the socket: probe-and-sweep a stale one, bind, listen, write
    the pidfile ([<socket>.pid]).
    @raise Already_running when a live daemon holds the socket.
    @raise Unix.Unix_error on bind/permission failures. *)

val run : ?on_ready:(unit -> unit) -> t -> unit
(** Serve until drained.  Installs SIGTERM/SIGINT handlers (restored on
    return) that trigger graceful drain; ignores SIGPIPE for the
    duration (a client gone mid-response must not kill the daemon).
    [on_ready] fires once the loop is about to accept — startup
    synchronization for scripts and tests. *)

val socket_path : t -> string
val pid_path : t -> string
