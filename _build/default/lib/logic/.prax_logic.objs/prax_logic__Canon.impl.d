lib/logic/canon.ml: Hashtbl Subst Term
