(** Supervised batch evaluation: a worker-pool supervisor with
    OS-process isolation.

    The paper's evaluation is a batch over a 22-program corpus; one bad
    input — a transform that diverges past every budget, a term that
    blows the table, a plain bug that segfaults the runtime — must not
    invalidate the whole run.  {!Prax_guard} gives {e in-process}
    isolation (budgets, sound partial results); this module adds the
    next rung, {e OS-process} isolation: every analysis job runs in a
    forked worker, so a crash, hang, or OOM kill in one job cannot take
    down the batch, and the batch always terminates with a complete
    per-job report.

    {2 Supervision protocol}

    - One [fork]ed worker per job attempt; results come back over a
      pipe as a single length-prefixed, MD5-digest-checked frame, so a
      worker that dies mid-write (truncated frame) or scribbles on its
      pipe (digest mismatch) is classified as crashed, never as a
      bogus result.
    - Worker stderr is captured over a second pipe (bounded) and
      attached to crash records.
    - A per-attempt wall-clock watchdog [SIGKILL]s hung workers
      ([serve.watchdog_kills]).
    - Crashed attempts are retried up to [retries] times with
      exponential backoff plus deterministic jitter
      ([serve.retries], [serve.backoff_ms]).
    - The degradation ladder (docs/ROBUSTNESS.md): attempt at full
      budget → retry at full budget → retries at a reduced
      {!Prax_guard.Guard.spec} budget (so a job that dies {e because}
      of its budget appetite completes degraded instead of crashing
      forever) → a worker that completes under budget exhaustion
      reports [Partial] → only when every attempt died is the job
      recorded [Crashed], with the last exit status and captured
      stderr.

    The supervisor is single-threaded ([select]-based) and generic in
    the worker function; the analysis wiring lives in [bin/xanalyze.ml]
    (the [batch] command) and the bench harness. *)

module Guard = Prax_guard.Guard

type config = {
  jobs : int;  (** concurrent workers (≥ 1) *)
  retries : int;  (** re-executions after the first attempt (≥ 0) *)
  job_timeout : float option;
      (** watchdog: seconds of wall clock per attempt before SIGKILL *)
  budget : Guard.spec;
      (** in-worker evaluation budget for attempt 1 (and 2); minted
          fresh per attempt *)
  reduced_budget_factor : float;
      (** per-extra-attempt budget scale applied from attempt 3 on
          (the "retry at reduced budget" rung); 0 < f ≤ 1 *)
  backoff_base : float;  (** seconds before the first retry *)
  backoff_factor : float;  (** exponential growth per further retry *)
  backoff_jitter : float;
      (** relative jitter amplitude in [0,1], deterministic per
          (job, attempt) so runs are reproducible *)
  max_stderr_bytes : int;  (** cap on captured worker stderr *)
  max_frame_bytes : int;  (** cap on a result frame's payload *)
}

val default_config : config
(** [jobs=2; retries=2; job_timeout=None; budget=no_limits;
    reduced_budget_factor=0.5; backoff_base=0.05; backoff_factor=2.0;
    backoff_jitter=0.25; max_stderr_bytes=64k; max_frame_bytes=256M] *)

(** What a worker reports about its own evaluation. *)
type worker_status =
  | Complete
  | Partial_result of string  (** sound degraded result; the reason *)

(** A failed attempt, as observed by the supervisor. *)
type crash = {
  attempt : int;  (** 1-based *)
  what : string;
      (** ["signal -7"], ["exit 70"], ["watchdog SIGKILL after 2.0s"],
          ["bad frame: ..."] *)
  stderr : string;  (** captured worker stderr (bounded) *)
}

type outcome =
  | Done of {
      payload : string;  (** the worker's result frame *)
      partial : string option;  (** degradation reason when partial *)
      from_cache : bool;  (** answered by [cached] without forking *)
    }
  | Crashed of crash  (** the last attempt; earlier ones in [crashes] *)

type report = {
  job : string;
  outcome : outcome;
  attempts : int;  (** 0 when answered from cache *)
  crashes : crash list;  (** every failed attempt, oldest first *)
  elapsed : float;  (** seconds, spawn of first attempt → outcome *)
  backoff : float;  (** seconds spent waiting between attempts *)
}

val outcome_class : outcome -> string
(** ["complete"], ["partial"], ["crashed"], or ["cached"] — the batch
    report / exit-code classification. *)

exception Interrupted of int
(** Raised by {!run_batch} when SIGTERM or SIGINT arrives mid-batch,
    {e after} every in-flight worker has been SIGKILLed and reaped (no
    orphans) and pending work discarded.  Carries the OCaml signal
    number ([Sys.sigterm] / [Sys.sigint]) so the CLI can exit
    [128+signal] like a shell would. *)

(** The supervisor's state machine as an incremental API, for hosts
    that own their own event loop (the analysis daemon).  Jobs are
    {!Pool.submit}ted at any time; {!Pool.step} advances every worker
    without blocking and returns finished reports; the host selects on
    {!Pool.fds} with a timeout bounded by {!Pool.next_wake}.
    {!run_batch} is a thin driver over this module. *)
module Pool : sig
  type t

  val create :
    ?config:config ->
    ?on_child:(unit -> unit) ->
    worker:
      (job:string -> attempt:int -> guard:Guard.t -> worker_status * string) ->
    unit ->
    t
  (** [on_child] runs in the forked worker before the job; hosts use it
      to close inherited fds (listen sockets, client connections) the
      pool cannot know about.  Workers also reset SIGTERM/SIGINT to
      their default dispositions so a host's drain handler never leaks
      into children. *)

  val submit : t -> ?budget_scale:float -> string -> unit
  (** Enqueue a job (counted in [serve.jobs]); it spawns on a later
      {!step} when a slot is free.  [budget_scale] (default 1.0)
      multiplies the config's guard budget for every attempt of this
      job — the daemon's pressure-tier degradation hook
      (docs/ROBUSTNESS.md); it composes with the per-attempt
      reduced-budget ladder. *)

  val pending : t -> int
  (** Jobs submitted (or awaiting retry) but not currently running. *)

  val inflight : t -> int
  (** Worker processes currently alive (or awaiting final reap). *)

  val idle : t -> bool
  (** No pending and no in-flight work. *)

  val fds : t -> Unix.file_descr list
  (** Every live worker pipe fd — the host's select read set. *)

  val next_wake : t -> float option
  (** Earliest absolute time ({!Unix.gettimeofday} clock) at which the
      pool needs a {!step} even without fd activity: the nearest
      watchdog deadline or retry-backoff expiry.  [None] when only fd
      activity matters. *)

  val step : t -> readable:Unix.file_descr list -> report list
  (** One non-blocking supervision round: spawn due work into free
      slots, drain [readable] pipes, SIGKILL watchdog-expired and
      frame-overflowing workers, reap exits, finalize.  Crashed
      attempts with retries left are re-enqueued internally; the
      returned reports are final.  Call with [readable:[]] to run
      timers only. *)

  val cancel_pending : t -> string list
  (** Drop all pending (never-spawned this attempt) jobs, returning
      their ids. *)

  val kill_all : t -> string list
  (** SIGKILL and synchronously reap every in-flight worker, then drop
      pending work; returns all abandoned job ids.  The pool is idle
      afterwards.  Safe against already-dead workers. *)
end

val run_batch :
  ?config:config ->
  ?cached:(job:string -> string option) ->
  ?persist:(job:string -> payload:string -> unit) ->
  ?on_report:(report -> unit) ->
  worker:(job:string -> attempt:int -> guard:Guard.t -> worker_status * string) ->
  string list ->
  report list
(** [run_batch ~worker jobs] supervises one worker process per job and
    returns a report per job, in input order.  [worker] runs {e in the
    forked child}: it receives the 1-based attempt number and the
    attempt's guard (already scaled down the ladder) and returns its
    status and result payload; anything it raises is printed to
    (captured) stderr and classified as a crash.

    [cached] is consulted before the first spawn of each job; a [Some]
    answers the job without forking ([from_cache = true]) — the
    warm-start hook for {!Prax_store}.  [persist] is called in the
    supervisor on every {e complete} (not partial, not cached) result —
    the store-write hook.  [on_report] streams each job's final report
    as it is reached (progress display).

    Counters (docs/METRICS.md): [serve.jobs], [serve.workers_spawned],
    [serve.crashes], [serve.watchdog_kills], [serve.retries],
    [serve.backoff_ms], [serve.bad_frames], [serve.partials],
    [serve.cache_answers]. *)
