test/test_strict.mli:
