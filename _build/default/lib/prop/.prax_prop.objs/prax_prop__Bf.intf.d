lib/prop/bf.mli:
