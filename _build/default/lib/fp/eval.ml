(** Call-by-need (lazy graph reduction) interpreter for the functional
    language — the stand-in for the EQUALS runtime.

    Thunks memoize their weak-head value; pattern matching drives
    evaluation.  A fuel counter bounds reduction steps so that tests can
    observe nontermination ({!Diverged}) deterministically, which is what
    the strictness validation property needs: forcing an argument the
    analysis calls strict must never turn a terminating program into a
    diverging one. *)

exception Diverged
exception Stuck of string

type value = VInt of int | VCon of string * thunk array

and thunk = { mutable state : state }

and state =
  | Done of value
  | Pending of env * Ast.expr
  | Busy  (** blackhole: direct self-dependency *)

and env = (string * thunk) list

type t = {
  eqns : (string, Ast.equation list) Hashtbl.t;
  mutable fuel : int;
}

let make ?(fuel = 2_000_000) (p : Ast.program) : t =
  let eqns = Hashtbl.create 32 in
  List.iter
    (fun (f, _) -> Hashtbl.replace eqns f (Ast.equations_of p f))
    (Ast.functions p);
  { eqns; fuel }

let tick ev =
  ev.fuel <- ev.fuel - 1;
  if ev.fuel <= 0 then raise Diverged

let thunk_of_value v = { state = Done v }
let delay env e = { state = Pending (env, e) }

let vtrue = VCon ("True", [||])
let vfalse = VCon ("False", [||])
let vbool b = if b then vtrue else vfalse

let rec whnf ev (th : thunk) : value =
  match th.state with
  | Done v -> v
  | Busy -> raise Diverged
  | Pending (env, e) ->
      th.state <- Busy;
      let v = eval ev env e in
      th.state <- Done v;
      v

and eval ev env (e : Ast.expr) : value =
  tick ev;
  match e with
  | Ast.Int n -> VInt n
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some th -> whnf ev th
      | None -> raise (Stuck ("unbound variable " ^ x)))
  | Ast.Con (c, es) ->
      VCon (c, Array.of_list (List.map (delay env) es))
  | Ast.App (f, es) -> apply ev f (List.map (delay env) es)
  | Ast.Prim (op, es) -> prim ev op (List.map (fun e -> eval ev env e) es)
  | Ast.If (c, t, el) -> (
      match eval ev env c with
      | VCon ("True", _) -> eval ev env t
      | VCon ("False", _) -> eval ev env el
      | _ -> raise (Stuck "if condition not boolean"))
  | Ast.Let (x, e1, e2) -> eval ev ((x, delay env e1) :: env) e2

and apply ev f (args : thunk list) : value =
  match Hashtbl.find_opt ev.eqns f with
  | None | Some [] -> raise (Stuck ("no equations for " ^ f))
  | Some eqs ->
      let rec try_eqs = function
        | [] -> raise (Stuck ("pattern match failure in " ^ f))
        | eq :: rest -> (
            match match_pats ev eq.Ast.pats args [] with
            | Some env -> eval ev env eq.Ast.rhs
            | None -> try_eqs rest)
      in
      try_eqs eqs

and match_pats ev pats args env =
  match (pats, args) with
  | [], [] -> Some env
  | p :: ps, a :: as_ -> (
      match match_pat ev p a env with
      | Some env' -> match_pats ev ps as_ env'
      | None -> None)
  | _ -> raise (Stuck "arity mismatch in application")

and match_pat ev (p : Ast.pat) (th : thunk) env : env option =
  match p with
  | Ast.PVar x -> Some ((x, th) :: env)
  | Ast.PInt n -> (
      match whnf ev th with VInt m when m = n -> Some env | _ -> None)
  | Ast.PCon (c, ps) -> (
      match whnf ev th with
      | VCon (c', fields)
        when String.equal c c' && Array.length fields = List.length ps ->
          let rec go i ps env =
            match ps with
            | [] -> Some env
            | p :: rest -> (
                match match_pat ev p fields.(i) env with
                | Some env' -> go (i + 1) rest env'
                | None -> None)
          in
          go 0 ps env
      | _ -> None)

and prim ev op (vs : value list) : value =
  ignore ev;
  let int = function
    | VInt n -> n
    | VCon _ -> raise (Stuck ("primitive " ^ op ^ " applied to constructor"))
  in
  match (op, vs) with
  | "+", [ a; b ] -> VInt (int a + int b)
  | "-", [ a; b ] -> VInt (int a - int b)
  | "*", [ a; b ] -> VInt (int a * int b)
  | "div", [ a; b ] ->
      let d = int b in
      if d = 0 then raise (Stuck "division by zero") else VInt (int a / d)
  | "mod", [ a; b ] ->
      let d = int b in
      if d = 0 then raise (Stuck "mod by zero") else VInt (int a mod d)
  | "neg", [ a ] -> VInt (-int a)
  | "==", [ a; b ] -> vbool (int a = int b)
  | "/=", [ a; b ] -> vbool (int a <> int b)
  | "<", [ a; b ] -> vbool (int a < int b)
  | "<=", [ a; b ] -> vbool (int a <= int b)
  | ">", [ a; b ] -> vbool (int a > int b)
  | ">=", [ a; b ] -> vbool (int a >= int b)
  | _ -> raise (Stuck ("unknown primitive " ^ op))

(* --- forcing and printing ------------------------------------------------ *)

(** Force to full normal form (the paper's e-demand). *)
let rec force_deep ev (th : thunk) : value =
  match whnf ev th with
  | VInt n -> VInt n
  | VCon (c, fields) ->
      Array.iter (fun f -> ignore (force_deep ev f)) fields;
      VCon (c, fields)

let rec value_to_string ev (v : value) : string =
  match v with
  | VInt n -> string_of_int n
  | VCon ("[]", _) -> "[]"
  | VCon (":", [| h; t |]) ->
      (* render proper lists with bracket syntax *)
      let rec items acc th =
        match whnf ev th with
        | VCon ("[]", _) -> Some (List.rev acc)
        | VCon (":", [| h; t |]) -> items (whnf ev h :: acc) t
        | _ -> None
      in
      (match items [ whnf ev h ] t with
      | Some vs ->
          "[" ^ String.concat "," (List.map (value_to_string ev) vs) ^ "]"
      | None ->
          value_to_string ev (whnf ev h) ^ ":" ^ value_to_string ev (whnf ev t))
  | VCon (c, [||]) -> c
  | VCon (c, fields) ->
      c ^ "("
      ^ String.concat ","
          (Array.to_list
             (Array.map (fun f -> value_to_string ev (whnf ev f)) fields))
      ^ ")"

(** Evaluate a call [f(args)] to normal form and print it. *)
let run ?fuel (p : Ast.program) (f : string) (args : Ast.expr list) : string =
  let ev = make ?fuel p in
  let th = delay [] (Ast.App (f, args)) in
  let v = force_deep ev th in
  value_to_string ev v

(** Evaluate with argument [i] (0-based) forced to WHNF first — the
    transformation strictness analysis licenses.  Used by the validation
    property tests. *)
let run_forcing ?fuel (p : Ast.program) (f : string) (args : Ast.expr list)
    ~(force_args : int list) : string =
  let ev = make ?fuel p in
  let ths = List.map (delay []) args in
  List.iteri
    (fun i th -> if List.mem i force_args then ignore (whnf ev th))
    ths;
  let v =
    apply ev f ths |> fun v ->
    ignore (force_deep ev (thunk_of_value v));
    v
  in
  value_to_string ev v
