(** read — a Prolog tokenizer and operator-precedence reader written in
    Prolog, after O'Keefe's public-domain read.pl: the largest benchmark
    of the suite.  Works over character-code lists.  Reconstruction; see
    DESIGN.md. *)

let read =
  {|
% read -- tokenize and parse a Prolog term from a code list.
read_top(Term) :-
    sample(Cs),
    read_term_codes(Cs, Term).

sample("foo(X, bar(Y, [1,2|T]), Z * 3 + 4) :- baz(X), qux(Y, Z).").

read_term_codes(Cs, Term) :-
    tokens(Cs, Toks),
    parse(Toks, 1200, Term, [end]).

% ====================== tokenizer ======================
tokens([], [end]).
tokens([C|Cs], Toks) :-
    char_type(C, Type),
    tokens_dispatch(Type, C, Cs, Toks).

tokens_dispatch(space, _, Cs, Toks) :- tokens(Cs, Toks).
tokens_dispatch(digit, C, Cs, [int(N)|Toks]) :-
    take_digits(Cs, Ds, Rest),
    code_number([C|Ds], 0, N),
    tokens(Rest, Toks).
tokens_dispatch(lower, C, Cs, [atom(A)|Toks]) :-
    take_alnum(Cs, As, Rest),
    atom_from_codes([C|As], A),
    tokens(Rest, Toks).
tokens_dispatch(upper, C, Cs, [var(V)|Toks]) :-
    take_alnum(Cs, As, Rest),
    atom_from_codes([C|As], V),
    tokens(Rest, Toks).
tokens_dispatch(symbol, C, Cs, [atom(A)|Toks]) :-
    take_symbols(Cs, Ss, Rest),
    atom_from_codes([C|Ss], A),
    tokens(Rest, Toks).
tokens_dispatch(punct, C, Cs, [punct(C)|Toks]) :-
    tokens(Cs, Toks).
tokens_dispatch(quote, _, Cs, [atom(A)|Toks]) :-
    take_quoted(Cs, Qs, Rest),
    atom_from_codes(Qs, A),
    tokens(Rest, Toks).
tokens_dispatch(stop, _, Cs, Toks) :-
    ( Cs = [] -> Toks = [end]
    ; Cs = [C2|_], char_type(C2, space) -> Toks0 = [end], tokens_rest(Cs, Toks0, Toks)
    ; take_symbols(Cs, Ss, Rest),
      atom_from_codes([0'.|Ss], A),
      Toks = [atom(A)|Toks1],
      tokens(Rest, Toks1)
    ).

tokens_rest(_, Toks, Toks).

char_type(0' , space).
char_type(9, space).
char_type(10, space).
char_type(13, space).
char_type(C, digit) :- C >= 0'0, C =< 0'9.
char_type(C, lower) :- C >= 0'a, C =< 0'z.
char_type(C, upper) :- C >= 0'A, C =< 0'Z.
char_type(0'_, upper).
char_type(0'., stop).
char_type(0'', quote).
char_type(0'(, punct).
char_type(0'), punct).
char_type(0'[, punct).
char_type(0'], punct).
char_type(0'{, punct).
char_type(0'}, punct).
char_type(0',, punct).
char_type(0'|, punct).
char_type(0'!, punct).
char_type(0';, punct).
char_type(C, symbol) :- symbol_code(C).

symbol_code(0'+). symbol_code(0'-). symbol_code(0'*). symbol_code(0'/).
symbol_code(0'\\). symbol_code(0'^). symbol_code(0'<). symbol_code(0'>).
symbol_code(0'=). symbol_code(0'~). symbol_code(0':). symbol_code(0'?).
symbol_code(0'@). symbol_code(0'#). symbol_code(0'&). symbol_code(0'$).

take_digits([C|Cs], [C|Ds], Rest) :-
    char_type(C, digit),
    take_digits(Cs, Ds, Rest).
take_digits(Cs, [], Cs) :- \+ starts_digit(Cs).

starts_digit([C|_]) :- char_type(C, digit).

take_alnum([C|Cs], [C|As], Rest) :-
    alnum(C),
    take_alnum(Cs, As, Rest).
take_alnum(Cs, [], Cs) :- \+ starts_alnum(Cs).

starts_alnum([C|_]) :- alnum(C).

alnum(C) :- char_type(C, lower).
alnum(C) :- char_type(C, upper).
alnum(C) :- char_type(C, digit).

take_symbols([C|Cs], [C|Ss], Rest) :-
    char_type(C, symbol),
    take_symbols(Cs, Ss, Rest).
take_symbols(Cs, [], Cs) :- \+ starts_symbol(Cs).

starts_symbol([C|_]) :- char_type(C, symbol).
starts_symbol([0'.|_]).

take_quoted([0''|Rest], [], Rest).
take_quoted([C|Cs], [C|Qs], Rest) :-
    C =\= 39,   % quote character
    take_quoted(Cs, Qs, Rest).

code_number([], N, N).
code_number([D|Ds], Acc, N) :-
    Acc1 is Acc * 10 + D - 0'0,
    code_number(Ds, Acc1, N).

atom_from_codes(Cs, A) :- name(A, Cs).

% ====================== parser ======================
% parse(Tokens, MaxPrec, Term, RestTokens)
parse(Toks, Max, Term, Rest) :-
    primary(Toks, Max, Left, LeftPrec, Toks1),
    infix_loop(Toks1, Left, LeftPrec, Max, Term, Rest).

primary([int(N)|Toks], _, N, 0, Toks).
primary([var(V)|Toks], _, '$VAR'(V), 0, Toks).
primary([punct(0'()|Toks], _, Term, 0, Rest) :-
    parse(Toks, 1200, Term, [punct(0'))|Rest]).
primary([punct(0'[)|Toks], _, List, 0, Rest) :-
    parse_list(Toks, List, Rest).
primary([punct(0'{), punct(0'})|Toks], _, '{}', 0, Toks).
primary([punct(0'{)|Toks], _, '{}'(T), 0, Rest) :-
    parse(Toks, 1200, T, [punct(0'})|Rest]).
primary([punct(0'!)|Toks], _, !, 0, Toks).
primary([atom(A), punct(0'()|Toks], _, Term, 0, Rest) :-
    parse_args(Toks, Args, Rest),
    Term =.. [A|Args].
primary([atom(A)|Toks], Max, Term, Prec, Rest) :-
    prefix_op(A, P, ArgMax),
    P =< Max,
    starts_term(Toks),
    parse(Toks, ArgMax, Arg, Rest),
    Term =.. [A, Arg],
    Prec = P.
primary([atom(A)|Toks], _, A, 0, Toks) :-
    \+ prefix_ok(A, Toks).

prefix_ok(A, Toks) :-
    prefix_op(A, _, _),
    starts_term(Toks).

starts_term([int(_)|_]).
starts_term([var(_)|_]).
starts_term([atom(_)|_]).
starts_term([punct(0'()|_]).
starts_term([punct(0'[)|_]).
starts_term([punct(0'{)|_]).

infix_loop(Toks, Left, LeftPrec, Max, Term, Rest) :-
    Toks = [atom(A)|Toks1],
    infix_op(A, P, LMax, RMax),
    P =< Max,
    LeftPrec =< LMax,
    parse(Toks1, RMax, Right, Toks2),
    NewLeft =.. [A, Left, Right],
    infix_loop(Toks2, NewLeft, P, Max, Term, Rest).
infix_loop([punct(0',)|Toks1], Left, LeftPrec, Max, Term, Rest) :-
    1000 =< Max,
    LeftPrec =< 999,
    parse(Toks1, 1000, Right, Toks2),
    infix_loop(Toks2, ','(Left, Right), 1000, Max, Term, Rest).
% termination is nondeterministic: the caller constrains the rest of the
% token list, and backtracking finds the right split
infix_loop(Toks, Term, _, _, Term, Toks).

parse_args(Toks, [Arg|Args], Rest) :-
    parse(Toks, 999, Arg, Toks1),
    ( Toks1 = [punct(0',)|Toks2] ->
        parse_args(Toks2, Args, Rest)
    ; Toks1 = [punct(0'))|Rest], Args = []
    ).

parse_list([punct(0'])|Toks], [], Toks).
parse_list(Toks, [E|Es], Rest) :-
    parse(Toks, 999, E, Toks1),
    ( Toks1 = [punct(0',)|Toks2] ->
        parse_list(Toks2, Es, Rest)
    ; Toks1 = [punct(0'|)|Toks2] ->
        parse(Toks2, 999, Es, [punct(0'])|Rest])
    ; Toks1 = [punct(0'])|Rest], Es = []
    ).

% ====================== operator table ======================
infix_op(:-, 1200, 1199, 1199).
infix_op(-->, 1200, 1199, 1199).
infix_op(;, 1100, 1099, 1100).
infix_op(->, 1050, 1049, 1050).
infix_op(=, 700, 699, 699).
infix_op(\=, 700, 699, 699).
infix_op(==, 700, 699, 699).
infix_op(\==, 700, 699, 699).
infix_op(is, 700, 699, 699).
infix_op(=.., 700, 699, 699).
infix_op(<, 700, 699, 699).
infix_op(>, 700, 699, 699).
infix_op(=<, 700, 699, 699).
infix_op(>=, 700, 699, 699).
infix_op(=:=, 700, 699, 699).
infix_op(=\=, 700, 699, 699).
infix_op(@<, 700, 699, 699).
infix_op(@>, 700, 699, 699).
infix_op(+, 500, 500, 499).
infix_op(-, 500, 500, 499).
infix_op(/\, 500, 500, 499).
infix_op(\/, 500, 500, 499).
infix_op(*, 400, 400, 399).
infix_op(/, 400, 400, 399).
infix_op(//, 400, 400, 399).
infix_op(mod, 400, 400, 399).
infix_op(<<, 400, 400, 399).
infix_op(>>, 400, 400, 399).
infix_op(**, 200, 199, 199).
infix_op(^, 200, 199, 200).

prefix_op(:-, 1200, 1199).
prefix_op(?-, 1200, 1199).
prefix_op(\+, 900, 900).
prefix_op(-, 200, 200).
prefix_op(+, 200, 200).
prefix_op(\, 200, 200).

% ====================== round trip check ======================
check(Cs, T) :-
    read_term_codes(Cs, T1),
    T = T1.

samples_all([T1, T2, T3]) :-
    sample(S1),
    read_term_codes(S1, T1),
    sample2(S2),
    read_term_codes(S2, T2),
    sample3(S3),
    read_term_codes(S3, T3).

sample2("f(g(h(X)), [a,b,c], 'quoted atom', 42).").
sample3("a + b * c - d / e ^ f.").
|}
