(** The smaller logic-program benchmarks of Tables 1/2/4: qsort, queens,
    pg, plan, gabriel.  The original GAIA-suite sources are not
    distributed with the paper; these are faithful reconstructions of the
    classic programs (same names, same problem, comparable size and
    recursion structure) written for this repository — see DESIGN.md. *)

let qsort =
  {|
% qsort -- quicksort with explicit partition (the classic benchmark).
qsort([], []).
qsort([X|Xs], Sorted) :-
    partition(Xs, X, Littles, Bigs),
    qsort(Littles, Ls),
    qsort(Bigs, Bs),
    append(Ls, [X|Bs], Sorted).

partition([], _, [], []).
partition([X|Xs], Pivot, [X|Ls], Bs) :-
    X =< Pivot, partition(Xs, Pivot, Ls, Bs).
partition([X|Xs], Pivot, Ls, [X|Bs]) :-
    X > Pivot, partition(Xs, Pivot, Ls, Bs).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

qsort_top(S) :- qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11], S).
|}

let queens =
  {|
% queens -- N-queens with permutation generation and safety check.
queens(N, Qs) :-
    range(1, N, Ns),
    place(Ns, Qs),
    safe(Qs).

range(N, N, [N]).
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).

place([], []).
place(Xs, [Q|Qs]) :- select(Q, Xs, Rest), place(Rest, Qs).

select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).

safe([]).
safe([Q|Qs]) :- no_attack(Q, Qs, 1), safe(Qs).

no_attack(_, [], _).
no_attack(Q, [Q1|Qs], D) :-
    Q =\= Q1 + D,
    Q =\= Q1 - D,
    D1 is D + 1,
    no_attack(Q, Qs, D1).

queens_top(Qs) :- queens(8, Qs).
|}

let pg =
  {|
% pg -- projectile/geometry problem solver: a small arithmetic-heavy
% program computing ballistic tables by iterative approximation.
gravity(981).   % cm/s^2, scaled

projectile(V, Angle, Range, Height, Time) :-
    sin_approx(Angle, S),
    cos_approx(Angle, C),
    gravity(G),
    Vy is V * S // 1000,
    Vx is V * C // 1000,
    Time is 2 * Vy * 100 // G,
    Range is Vx * Time,
    Height is Vy * Vy * 50 // G.

% fixed-point approximations over integer milliradians
sin_approx(A, S) :- A =< 785, S is A - (A * A * A // 6000000).
sin_approx(A, S) :- A > 785, B is 1571 - A, cos_approx_raw(B, S).
cos_approx(A, C) :- A =< 785, cos_approx_raw(A, C).
cos_approx(A, C) :- A > 785, B is 1571 - A, S is B - (B * B * B // 6000000), C = S.
cos_approx_raw(A, C) :- C is 1000 - (A * A // 2000).

table(_, [], []).
table(V, [A|As], [entry(A, R, H, T)|Es]) :-
    projectile(V, A, R, H, T),
    table(V, As, Es).

angles([262, 393, 524, 655, 785, 916, 1047]).

best_range([], Best, Best).
best_range([entry(A, R, _, _)|Es], entry(BA, BR, BH, BT), Best) :-
    ( R > BR ->
        best_range(Es, entry(A, R, 0, 0), Best)
    ; best_range(Es, entry(BA, BR, BH, BT), Best)
    ).

pg_top(Best) :-
    angles(As),
    table(5000, As, Es),
    Es = [E|Rest],
    best_range(Rest, E, Best).
|}

let plan =
  {|
% plan -- STRIPS-style blocks-world planner: states are sorted fact
% lists, actions have preconditions and add/delete lists, search is
% depth-bounded forward planning.
plan_top(Plan) :-
    initial(S0),
    goals(Gs),
    depth_bound(D),
    plan(S0, Gs, [], D, Plan).

initial([clear(b), clear(c), on(a, table), on(b, table), on(c, a)]).
goals([on(a, b), on(b, c)]).
depth_bound(4).

plan(State, Goals, _, _, []) :- satisfied(Goals, State).
plan(State, Goals, Visited, D, [Action|Plan]) :-
    \+ satisfied(Goals, State),
    D > 0,
    action(Action, Pre, Add, Del),
    satisfied(Pre, State),
    apply_action(State, Add, Del, State1),
    \+ member_chk(State1, Visited),
    D1 is D - 1,
    plan(State1, Goals, [State1|Visited], D1, Plan).

satisfied([], _).
satisfied([G|Gs], State) :- member_chk(G, State), satisfied(Gs, State).

% move block X from Y onto Z
action(move(X, Y, Z),
       [clear(X), clear(Z), on(X, Y)],
       [on(X, Z), clear(Y)],
       [on(X, Y), clear(Z)]) :-
    block(X), object(Y), object(Z),
    X \= Y, X \= Z, Y \= Z,
    Y \= table.
% move block X from the table onto Z
action(move_from_table(X, Z),
       [clear(X), clear(Z), on(X, table)],
       [on(X, Z)],
       [on(X, table), clear(Z)]) :-
    block(X), block(Z), X \= Z.
% unstack block X from Y onto the table
action(to_table(X, Y),
       [clear(X), on(X, Y)],
       [on(X, table), clear(Y)],
       [on(X, Y)]) :-
    block(X), block(Y), X \= Y.

apply_action(State, Add, Del, State1) :-
    remove_all(Del, State, Mid),
    add_all(Add, Mid, State1).

remove_all([], State, State).
remove_all([F|Fs], State, Out) :-
    remove_one(F, State, Mid),
    remove_all(Fs, Mid, Out).

remove_one(_, [], []).
remove_one(F, [F|Rest], Rest).
remove_one(F, [G|Rest], [G|Out]) :- F \= G, remove_one(F, Rest, Out).

% keep states canonical (sorted) so visited-checking works
add_all([], State, State).
add_all([F|Fs], State, Out) :-
    insert_fact(F, State, Mid),
    add_all(Fs, Mid, Out).

insert_fact(F, [], [F]).
insert_fact(F, [G|Rest], [F, G|Rest]) :- F @< G.
insert_fact(F, [G|Rest], [G|Rest]) :- F == G.
insert_fact(F, [G|Rest], [G|Out]) :- F @> G, insert_fact(F, Rest, Out).

block(a).
block(b).
block(c).

object(table).
object(X) :- block(X).

member_chk(X, [Y|_]) :- X == Y.
member_chk(X, [_|Ys]) :- member_chk(X, Ys).
|}

let gabriel =
  {|
% gabriel -- the 'browse' benchmark from the Gabriel suite: builds a
% database of property-list patterns and repeatedly matches them.
browse_top(Matches) :-
    init(100, 10, 4, Symbols),
    investigate(Symbols, Matches).

init(N, M, Npats, Symbols) :-
    fill(N, [], Base),
    patterns(Npats, Pats),
    seed_symbols(Base, M, Pats, Symbols).

fill(0, Acc, Acc).
fill(N, Acc, Out) :-
    N > 0,
    N1 is N - 1,
    fill(N1, [dummy(N)|Acc], Out).

patterns(0, []).
patterns(N, [P|Ps]) :-
    N > 0,
    make_pattern(N, P),
    N1 is N - 1,
    patterns(N1, Ps).

make_pattern(1, pat(a, star(b), c, star(d))).
make_pattern(2, pat(a, star(b), star(b), c)).
make_pattern(3, pat(star(a), b, star(c), d)).
make_pattern(4, pat(a, b, star(c), star(d))).

seed_symbols([], _, _, []).
seed_symbols([dummy(K)|Ds], M, Pats, [sym(K, Props)|Ss]) :-
    K1 is K mod M,
    properties(K1, Pats, Props),
    seed_symbols(Ds, M, Pats, Ss).

properties(_, [], []).
properties(K, [P|Ps], [prop(K, P)|Qs]) :- properties(K, Ps, Qs).

investigate([], []).
investigate([sym(_, Props)|Ss], Out) :-
    match_props(Props, Here),
    investigate(Ss, Rest),
    append(Here, Rest, Out).

match_props([], []).
match_props([prop(K, pat(P1, P2, P3, P4))|Ps], Out) :-
    data_item(K, Item),
    ( match_pat([P1, P2, P3, P4], Item) ->
        Out = [K|Rest]
    ; Out = Rest
    ),
    match_props(Ps, Rest).

data_item(0, [a, b, b, c, d]).
data_item(1, [a, b, c, d]).
data_item(2, [a, c]).
data_item(3, [a, b, c, c, c, d]).
data_item(4, [b, c, d]).
data_item(5, [a, b, b, b, c]).
data_item(6, [a, d]).
data_item(7, [c, d]).
data_item(8, [a, b, c]).
data_item(9, [a, b, b, c, c, d]).

match_pat([], []).
match_pat([star(X)|Ps], Items) :-
    eat_star(X, Items, Rest),
    match_pat(Ps, Rest).
match_pat([P|Ps], [P|Items]) :-
    atom(P),
    match_pat(Ps, Items).

eat_star(_, Items, Items).
eat_star(X, [X|Items], Rest) :- eat_star(X, Items, Rest).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
|}
