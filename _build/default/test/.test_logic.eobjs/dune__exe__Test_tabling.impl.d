test/test_tabling.ml: Alcotest Array Canon Database Engine Hashtbl List Parser Prax_logic Prax_tabling Pretty Printf QCheck2 QCheck_alcotest Sld String Subst Term
