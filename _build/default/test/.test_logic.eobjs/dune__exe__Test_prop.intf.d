test/test_prop.mli:
