lib/prop/iff.ml: Array Fun List Option Prax_logic Prax_tabling Subst Term Unify
