(** Operator-precedence parser for the Prolog subset (the reader).

    Implements the standard Prolog term-reading algorithm over the token
    stream from {!Lexer} and the operator table from {!Ops}.  Produces
    {!Term.t} clauses; variables are scoped per clause and mapped to fresh
    ids ([_] is always fresh). *)

exception Parse_error of string

type state = {
  mutable toks : Lexer.token list;
  ops : Ops.table;
  vars : (string, int) Hashtbl.t;  (** clause-local variable scope *)
}

let peek st = match st.toks with [] -> Lexer.TEOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg =
  if peek st = tok then advance st else raise (Parse_error msg)

let var_of_name st name =
  if String.equal name "_" then Term.fresh_var ()
  else
    match Hashtbl.find_opt st.vars name with
    | Some id -> Term.var id
    | None ->
        let id = Term.fresh_id () in
        Hashtbl.add st.vars name id;
        Term.var id

(* Can the upcoming token begin a term?  Decides whether an atom that is
   also a prefix operator is applied or stands alone. *)
let starts_term st =
  match peek st with
  | Lexer.TAtom _ | Lexer.TVar _ | Lexer.TInt _ | Lexer.TStr _
  | Lexer.TLpar _ | Lexer.TLbracket | Lexer.TLbrace ->
      true
  | _ -> false

let term_of_string s =
  String.to_seq s |> List.of_seq
  |> List.map (fun c -> Term.int (Char.code c))
  |> Term.of_list

(* An infix operator occurrence: ',' and '|' tokens act as operators too. *)
let infix_here st =
  match peek st with
  | Lexer.TAtom a -> (
      match Ops.infix st.ops a with Some e -> Some (a, e) | None -> None)
  | Lexer.TComma -> Some (",", { Ops.prec = 1000; assoc = Ops.XFY })
  | Lexer.TBar -> Some (";", { Ops.prec = 1100; assoc = Ops.XFY })
  | _ -> None

let rec parse st maxprec : Term.t =
  let left, leftprec = parse_primary st maxprec in
  parse_infix st left leftprec maxprec

and parse_infix st left leftprec maxprec =
  match infix_here st with
  | Some (name, { Ops.prec; assoc }) when prec <= maxprec ->
      let lmax, rmax =
        match assoc with
        | Ops.XFX -> (prec - 1, prec - 1)
        | Ops.XFY -> (prec - 1, prec)
        | Ops.YFX -> (prec, prec - 1)
        | Ops.FY | Ops.FX -> assert false
      in
      if leftprec <= lmax then begin
        advance st;
        let right = parse st rmax in
        parse_infix st (Term.mk name [| left; right |]) prec maxprec
      end
      else left
  | _ -> left

and parse_primary st maxprec : Term.t * int =
  match peek st with
  | Lexer.TInt i ->
      advance st;
      (Term.int i, 0)
  | Lexer.TVar v ->
      advance st;
      (var_of_name st v, 0)
  | Lexer.TStr s ->
      advance st;
      (term_of_string s, 0)
  | Lexer.TLpar _ ->
      advance st;
      let t = parse st 1200 in
      expect st Lexer.TRpar "expected )";
      (t, 0)
  | Lexer.TLbracket ->
      advance st;
      (parse_list st, 0)
  | Lexer.TLbrace ->
      advance st;
      if peek st = Lexer.TRbrace then begin
        advance st;
        (Term.atom "{}", 0)
      end
      else begin
        let t = parse st 1200 in
        expect st Lexer.TRbrace "expected }";
        (Term.mk "{}" [| t |], 0)
      end
  | Lexer.TAtom a -> (
      advance st;
      match peek st with
      | Lexer.TLpar true ->
          advance st;
          let args = parse_arglist st in
          expect st Lexer.TRpar "expected ) after arguments";
          (Term.mkl a args, 0)
      | _ -> (
          (* negative numeric literal *)
          match (a, peek st) with
          | "-", Lexer.TInt i ->
              advance st;
              (Term.int (-i), 0)
          | _ -> (
              match Ops.prefix st.ops a with
              | Some { Ops.prec; assoc } when prec <= maxprec && starts_term st
                ->
                  (* an atom that is also an infix op directly after a
                     prefix op is being used as an operand, not applied *)
                  let operand_is_infix =
                    match infix_here st with
                    | Some _ -> not (starts_term { st with toks = List.tl st.toks })
                    | None -> false
                  in
                  if operand_is_infix then (Term.atom a, 0)
                  else
                    let sub =
                      match assoc with
                      | Ops.FY -> prec
                      | Ops.FX -> prec - 1
                      | _ -> assert false
                    in
                    let arg = parse st sub in
                    (Term.mk a [| arg |], prec)
              | _ -> (Term.atom a, 0))))
  | tok ->
      raise
        (Parse_error
           (Printf.sprintf "unexpected token %s" (Lexer.token_to_string tok)))

and parse_arglist st : Term.t list =
  let arg = parse st 999 in
  if peek st = Lexer.TComma then begin
    advance st;
    arg :: parse_arglist st
  end
  else [ arg ]

and parse_list st : Term.t =
  if peek st = Lexer.TRbracket then begin
    advance st;
    Term.nil
  end
  else
    let rec elements () =
      let e = parse st 999 in
      match peek st with
      | Lexer.TComma ->
          advance st;
          let rest = elements () in
          Term.cons e rest
      | Lexer.TBar ->
          advance st;
          let tail = parse st 999 in
          expect st Lexer.TRbracket "expected ] after list tail";
          Term.cons e tail
      | Lexer.TRbracket ->
          advance st;
          Term.cons e Term.nil
      | tok ->
          raise
            (Parse_error
               (Printf.sprintf "in list: unexpected %s"
                  (Lexer.token_to_string tok)))
    in
    elements ()

(** A program clause: [head :- body] with the body flattened into a list
    of goals; facts have an empty body. *)
type clause = { head : Term.t; body : Term.t list }

type item = Clause of clause | Directive of Term.t

let clause_of_term (t : Term.t) : item =
  match t with
  | Term.Struct (":-", [| h; b |], _) -> Clause { head = h; body = Term.conjuncts b }
  | Term.Struct (":-", [| d |], _) -> Directive d
  | Term.Struct ("?-", [| d |], _) -> Directive d
  | h -> Clause { head = h; body = [] }

(** Parse one term terminated by an end-of-clause token. *)
let read_term st : Term.t option =
  Hashtbl.reset st.vars;
  match peek st with
  | Lexer.TEOF -> None
  | _ ->
      let t = parse st 1200 in
      expect st Lexer.TEnd "expected . at end of clause";
      Some t

let handle_op_directive ops = function
  | Term.Struct ("op", [| Term.Int p; Term.Atom a; Term.Atom name |], _) -> (
      match Ops.assoc_of_string a with
      | Some assoc ->
          Ops.add ops p assoc name;
          true
      | None -> false)
  | _ -> false

(** Parse a whole program.  [:- op(...)] directives take effect
    immediately; all directives are also returned in order. *)
let parse_program ?(ops = Ops.create ()) (src : string) : item list =
  let st = { toks = Lexer.tokenize src; ops; vars = Hashtbl.create 16 } in
  let rec go acc =
    match read_term st with
    | None -> List.rev acc
    | Some t ->
        let item = clause_of_term t in
        (match item with
        | Directive d -> ignore (handle_op_directive ops d)
        | Clause _ -> ());
        go (item :: acc)
  in
  go []

(** Clauses only, directives dropped. *)
let parse_clauses ?ops src : clause list =
  parse_program ?ops src
  |> List.filter_map (function Clause c -> Some c | Directive _ -> None)

(** Parse a single term from a string (for tests and queries). *)
let parse_term ?(ops = Ops.create ()) (src : string) : Term.t =
  let st = { toks = Lexer.tokenize src; ops; vars = Hashtbl.create 16 } in
  let t = parse st 1200 in
  (match peek st with
  | Lexer.TEnd | Lexer.TEOF -> ()
  | tok ->
      raise
        (Parse_error
           (Printf.sprintf "trailing input: %s" (Lexer.token_to_string tok))));
  t
