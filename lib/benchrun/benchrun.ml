(* Bench-run store, A/B comparator, and regression-gate logic.  See
   benchrun.mli and docs/BENCHMARKING.md. *)

module Metrics = Prax_metrics.Metrics

(* The rows file keeps the prax.bench identity so existing consumers of
   BENCH_engine.json parse it; the per-repeat [samples] extension is
   additive (docs/PERFORMANCE.md documents the base schema). *)
let rows_schema_name = "prax.bench"
let rows_schema_version = 2

(* ------------------------------------------------------------------ *)
(* Repeat-sample statistics                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  n : int;
  median : float;
  q1 : float;
  q3 : float;
  values : float list;
}

(* linear-interpolation quantile over a sorted array *)
let quantile sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let stats_of values =
  if values = [] then invalid_arg "Benchrun.stats_of: empty sample list";
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  {
    n = Array.length sorted;
    median = quantile sorted 0.5;
    q1 = quantile sorted 0.25;
    q3 = quantile sorted 0.75;
    values;
  }

let iqr s = s.q3 -. s.q1

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

type row = {
  r_analysis : string;
  r_name : string;
  r_config : (string * string) list;
  r_status : string;
  r_source_lines : int option;
  r_clause_count : int;
  r_phases : (string * stats) list;
  r_total : stats;
  r_table_bytes : stats;
  r_counters : (string * float) list;
}

let row_key r = (r.r_analysis, r.r_name)

(* Pool the samples of matching rows across shard sweeps (separate
   processes).  Code/heap layout differs per process and can shift a
   cell's times by tens of percent for the process's whole lifetime —
   pooling puts that variance inside the row's own distribution, where
   the IQR-based noise bound can see it. *)
let pool_row a b =
  {
    b with
    (* any degraded shard degrades the pooled row *)
    r_status = (if a.r_status <> "complete" then a.r_status else b.r_status);
    r_phases =
      List.map
        (fun (ph, sb) ->
          match List.assoc_opt ph a.r_phases with
          | Some sa -> (ph, stats_of (sa.values @ sb.values))
          | None -> (ph, sb))
        b.r_phases;
    r_total = stats_of (a.r_total.values @ b.r_total.values);
    r_table_bytes = stats_of (a.r_table_bytes.values @ b.r_table_bytes.values);
  }

let pool_rows shards =
  match shards with
  | [] -> []
  | first :: rest ->
      List.fold_left
        (fun acc shard ->
          let merged =
            List.map
              (fun r ->
                match
                  List.find_opt (fun r' -> row_key r' = row_key r) shard
                with
                | Some r' -> pool_row r r'
                | None -> r)
              acc
          in
          let extra =
            List.filter
              (fun r' ->
                not (List.exists (fun r -> row_key r = row_key r') acc))
              shard
          in
          merged @ extra)
        first rest

(* ------------------------------------------------------------------ *)
(* Manifests                                                           *)
(* ------------------------------------------------------------------ *)

type manifest = {
  m_run_id : string;
  m_created_unix : float;
  m_git_rev : string;
  m_host : string;
  m_ocaml_version : string;
  m_word_size : int;
  m_repeats : int;
  m_argv : string list;
  m_bench_schema_version : int;
  m_stats_schema_version : int;
  m_report_schema_version : int;
}

(* First line of a shell command's stdout, or None on any failure: the
   manifest must be capturable outside a git checkout and on hosts
   without the tool. *)
let command_line cmd =
  try
    let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let make_manifest ~run_id ~repeats ~argv =
  {
    m_run_id = run_id;
    m_created_unix = Unix.gettimeofday ();
    m_git_rev = Option.value ~default:"unknown" (command_line "git rev-parse HEAD");
    m_host = Option.value ~default:"unknown" (command_line "uname -sm");
    m_ocaml_version = Sys.ocaml_version;
    m_word_size = Sys.word_size;
    m_repeats = repeats;
    m_argv = argv;
    m_bench_schema_version = rows_schema_version;
    m_stats_schema_version = Metrics.schema_version;
    m_report_schema_version = Prax_analysis.Analysis.report_schema_version;
  }

let id_counter = ref 0

let fresh_id () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  let base =
    Printf.sprintf "run-%04d%02d%02d-%02d%02d%02d-%d" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec (Unix.getpid ())
  in
  incr id_counter;
  if !id_counter = 1 then base
  else Printf.sprintf "%s-%d" base !id_counter

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

open Metrics

(* [open Metrics] (for the JSON constructors) also brings Metrics'
   [schema_name]/[schema_version] into scope; the manifest carries the
   benchrun identity, so bind ours after the open. *)
let schema_name = "prax.benchrun"
let schema_version = 1

let num = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let get_num j key = Option.bind (member key j) num
let get_str j key =
  match member key j with Some (Str s) -> Some s | _ -> None
let get_int j key = Option.map int_of_float (get_num j key)

let stats_to_samples s = Arr (List.map (fun v -> Float v) s.values)

let samples_to_stats = function
  | Arr vs ->
      let values = List.filter_map num vs in
      if values = [] then None else Some (stats_of values)
  | _ -> None

let config_to_json config = Obj (List.map (fun (k, v) -> (k, Str v)) config)

let config_of_json = function
  | Some (Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with Str s -> Some (k, s) | _ -> None)
        fields
  | _ -> []

let row_to_json r =
  Obj
    ([
       ("name", Str r.r_name);
       ("analysis", Str r.r_analysis);
       ("config", config_to_json r.r_config);
     ]
    @ (match r.r_source_lines with
      | Some l -> [ ("source_lines", Int l) ]
      | None -> [])
    @ [
        ( "phases",
          Obj
            (List.map
               (fun (ph, s) -> (ph, Float s.median))
               r.r_phases) );
        ("total_seconds", Float r.r_total.median);
        ("table_bytes", Int (int_of_float r.r_table_bytes.median));
        ("clause_count", Int r.r_clause_count);
        ("status", Str r.r_status);
        ( "counters",
          Obj (List.map (fun (c, v) -> (c, Float v)) r.r_counters) );
        (* additive prax.bench v2 extension: the raw repeat samples, so
           a loader reconstructs the order statistics exactly *)
        ( "samples",
          Obj
            (List.map (fun (ph, s) -> (ph, stats_to_samples s)) r.r_phases
            @ [
                ("total_seconds", stats_to_samples r.r_total);
                ("table_bytes", stats_to_samples r.r_table_bytes);
              ]) );
      ])

(* Accepts both store-written rows (with [samples]) and plain
   prax.bench v2 rows (BENCH_engine.json style): a scalar metric
   degrades to a single-sample statistic with zero IQR. *)
let row_of_json j =
  match (get_str j "analysis", get_str j "name") with
  | Some analysis, Some name ->
      let samples = member "samples" j in
      let sampled key scalar =
        match Option.bind samples (member key) with
        | Some arr -> (
            match samples_to_stats arr with
            | Some s -> Some s
            | None -> Option.map (fun v -> stats_of [ v ]) scalar)
        | None -> Option.map (fun v -> stats_of [ v ]) scalar
      in
      let phase ph =
        let scalar = Option.bind (member "phases" j) (fun p -> get_num p ph) in
        (ph, sampled ph scalar)
      in
      let phases = List.map phase [ "preprocess"; "evaluate"; "collect" ] in
      let total = sampled "total_seconds" (get_num j "total_seconds") in
      let bytes = sampled "table_bytes" (get_num j "table_bytes") in
      let counters =
        match member "counters" j with
        | Some (Obj fields) ->
            List.filter_map
              (fun (c, v) -> Option.map (fun f -> (c, f)) (num v))
              fields
        | _ -> []
      in
      (match (total, bytes) with
      | Some r_total, Some r_table_bytes ->
          Some
            {
              r_analysis = analysis;
              r_name = name;
              r_config = config_of_json (member "config" j);
              r_status = Option.value ~default:"complete" (get_str j "status");
              r_source_lines = get_int j "source_lines";
              r_clause_count =
                Option.value ~default:0 (get_int j "clause_count");
              r_phases =
                List.filter_map
                  (fun (ph, s) -> Option.map (fun s -> (ph, s)) s)
                  phases;
              r_total;
              r_table_bytes;
              r_counters = counters;
            }
      | _ -> None)
  | _ -> None

let manifest_to_json m =
  Obj
    [
      ("schema", Str schema_name);
      ("schema_version", Int schema_version);
      ("run_id", Str m.m_run_id);
      ("created_unix", Float m.m_created_unix);
      ("git_rev", Str m.m_git_rev);
      ("host", Str m.m_host);
      ("ocaml_version", Str m.m_ocaml_version);
      ("word_size", Int m.m_word_size);
      ("repeats", Int m.m_repeats);
      ("argv", Arr (List.map (fun a -> Str a) m.m_argv));
      ("bench_schema_version", Int m.m_bench_schema_version);
      ("stats_schema_version", Int m.m_stats_schema_version);
      ("report_schema_version", Int m.m_report_schema_version);
    ]

let manifest_of_json j =
  match (get_str j "schema", get_str j "run_id") with
  | Some s, Some run_id when s = schema_name ->
      Some
        {
          m_run_id = run_id;
          m_created_unix = Option.value ~default:0. (get_num j "created_unix");
          m_git_rev = Option.value ~default:"unknown" (get_str j "git_rev");
          m_host = Option.value ~default:"unknown" (get_str j "host");
          m_ocaml_version =
            Option.value ~default:"unknown" (get_str j "ocaml_version");
          m_word_size = Option.value ~default:0 (get_int j "word_size");
          m_repeats = Option.value ~default:1 (get_int j "repeats");
          m_argv =
            (match member "argv" j with
            | Some (Arr l) ->
                List.filter_map
                  (function Str s -> Some s | _ -> None)
                  l
            | _ -> []);
          m_bench_schema_version =
            Option.value ~default:rows_schema_version
              (get_int j "bench_schema_version");
          m_stats_schema_version =
            Option.value ~default:Metrics.schema_version
              (get_int j "stats_schema_version");
          m_report_schema_version =
            Option.value ~default:1 (get_int j "report_schema_version");
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The run store                                                       *)
(* ------------------------------------------------------------------ *)

type run = {
  dir : string;
  id : string;
  manifest : manifest option;
  rows : row list;
}

let mkdir_p dir =
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
    else if not (Sys.is_directory d) then
      raise (Sys_error (d ^ ": exists and is not a directory"))
  in
  make dir

(* prax.store's write discipline: unique temp in the same directory,
   fsync, rename — a crashed writer leaves only a temp file, never a
   torn manifest or rows file that parses. *)
let write_atomic path content =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ()) (Filename.basename path))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc content;
      flush oc;
      Unix.fsync fd);
  Sys.rename tmp path

let rows_doc ~manifest rows =
  Obj
    [
      ("schema", Str rows_schema_name);
      ("schema_version", Int rows_schema_version);
      ("run_id", Str manifest.m_run_id);
      ("repeats", Int manifest.m_repeats);
      ("stats_schema_version", Int manifest.m_stats_schema_version);
      ("report_schema_version", Int manifest.m_report_schema_version);
      ("benchmarks", Arr (List.map row_to_json rows));
    ]

let summary_doc ~manifest rows =
  let statuses pred = List.length (List.filter pred rows) in
  let by_analysis =
    List.fold_left
      (fun acc r ->
        let t = try List.assoc r.r_analysis acc with Not_found -> 0. in
        (r.r_analysis, t +. r.r_total.median)
        :: List.remove_assoc r.r_analysis acc)
      [] rows
  in
  Obj
    [
      ("schema", Str (schema_name ^ ".summary"));
      ("schema_version", Int schema_version);
      ("run_id", Str manifest.m_run_id);
      ("rows", Int (List.length rows));
      ("complete", Int (statuses (fun r -> r.r_status = "complete")));
      ("partial", Int (statuses (fun r -> r.r_status <> "complete")));
      ( "median_total_seconds",
        Float (List.fold_left (fun a r -> a +. r.r_total.median) 0. rows) );
      ( "per_analysis_total_seconds",
        Obj
          (List.map
             (fun (a, t) -> (a, Float t))
             (List.sort compare by_analysis)) );
    ]

let write_run ~dir ~manifest ~rows ~logs =
  mkdir_p dir;
  write_atomic
    (Filename.concat dir "manifest.json")
    (json_to_string (manifest_to_json manifest) ^ "\n");
  write_atomic
    (Filename.concat dir "rows.json")
    (json_to_string (rows_doc ~manifest rows) ^ "\n");
  write_atomic
    (Filename.concat dir "summary.json")
    (json_to_string (summary_doc ~manifest rows) ^ "\n");
  if logs <> [] then begin
    let logdir = Filename.concat dir "logs" in
    mkdir_p logdir;
    List.iter
      (fun (file, text) -> write_atomic (Filename.concat logdir file) text)
      logs
  end

let read_json path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> (
        try Ok (json_of_string text)
        with Json_error msg -> Error (path ^ ": " ^ msg))
    | exception Sys_error msg -> Error msg

let load_run dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (dir ^ ": not a run directory")
  else
    match read_json (Filename.concat dir "rows.json") with
    | Error msg -> Error msg
    | Ok doc -> (
        match member "benchmarks" doc with
        | Some (Arr entries) ->
            let rows = List.filter_map row_of_json entries in
            if rows = [] then
              Error (dir ^ "/rows.json: no parseable benchmark rows")
            else
              (* a bad manifest degrades: rows still compare *)
              let manifest =
                match read_json (Filename.concat dir "manifest.json") with
                | Ok j -> manifest_of_json j
                | Error _ -> None
              in
              let id =
                match manifest with
                | Some m -> m.m_run_id
                | None -> (
                    match get_str doc "run_id" with
                    | Some id -> id
                    | None -> Filename.basename dir)
              in
              Ok { dir; id; manifest; rows }
        | _ -> Error (dir ^ "/rows.json: missing \"benchmarks\" array"))

let find_run ~runs_dir spec =
  if Sys.file_exists spec && Sys.is_directory spec then load_run spec
  else
    let candidate = Filename.concat runs_dir spec in
    if Sys.file_exists candidate then load_run candidate
    else
      Error
        (Printf.sprintf "no run %s (looked at %s and %s)" spec spec candidate)

let list_runs ~runs_dir =
  match Sys.readdir runs_dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun e ->
             Sys.file_exists
               (Filename.concat (Filename.concat runs_dir e) "rows.json"))
      |> List.sort compare
  | exception Sys_error _ -> []

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type thresholds = {
  rel_time : float;
  abs_time : float;
  rel_bytes : float;
  abs_bytes : float;
  gate_time : bool;
  gate_bytes : bool;
}

let default_thresholds =
  {
    rel_time = 0.30;
    abs_time = 0.005;
    rel_bytes = 0.05;
    abs_bytes = 256.;
    gate_time = true;
    gate_bytes = true;
  }

type verdict = Regression | Improvement | Unchanged

type delta = {
  d_analysis : string;
  d_name : string;
  d_metric : string;
  d_base : float;
  d_cand : float;
  d_pct : float;
  d_pooled_iqr : float;
  d_verdict : verdict;
  d_gated : bool;
}

type ab = {
  base_id : string;
  cand_id : string;
  deltas : delta list;
  missing : (string * string) list;
  added : (string * string) list;
  regressions : int;
  improvements : int;
}

(* The noise gate: a delta is flagged only when it clears the relative
   tolerance AND the absolute floor AND the pooled IQR of the two
   sample sets (the noisier run dominates).  Deterministic metrics
   (IQR 0) fall back to the tolerance and floor alone. *)
let judge ~rel ~abs_floor ~pooled base cand =
  let diff = cand -. base in
  let bound = Float.max (Float.max (rel *. Float.abs base) abs_floor) pooled in
  if diff > bound then Regression
  else if -.diff > bound then Improvement
  else Unchanged

let metric_delta ~analysis ~name ~metric ~rel ~abs_floor ~gated base cand =
  let pooled = Float.max (iqr base) (iqr cand) in
  {
    d_analysis = analysis;
    d_name = name;
    d_metric = metric;
    d_base = base.median;
    d_cand = cand.median;
    d_pct =
      (if Float.abs base.median > 0. then
         (cand.median -. base.median) /. Float.abs base.median
       else if cand.median = base.median then 0.
       else Float.infinity);
    d_pooled_iqr = pooled;
    d_verdict = judge ~rel ~abs_floor ~pooled base.median cand.median;
    d_gated = gated;
  }

let row_deltas th (b : row) (c : row) =
  let analysis = b.r_analysis and name = b.r_name in
  let time metric sb sc =
    metric_delta ~analysis ~name ~metric ~rel:th.rel_time
      ~abs_floor:th.abs_time ~gated:th.gate_time sb sc
  in
  let phases =
    List.filter_map
      (fun (ph, sb) ->
        Option.map (fun sc -> time ph sb sc) (List.assoc_opt ph c.r_phases))
      b.r_phases
  in
  let bytes =
    metric_delta ~analysis ~name ~metric:"table_bytes" ~rel:th.rel_bytes
      ~abs_floor:th.abs_bytes ~gated:th.gate_bytes b.r_table_bytes
      c.r_table_bytes
  in
  (* a status downgrade is a correctness-coverage regression whatever
     the times say: the candidate no longer completes this benchmark *)
  let status =
    let flag s = if s = "complete" then 0. else 1. in
    let vb = flag b.r_status and vc = flag c.r_status in
    if vb = vc then []
    else
      [
        {
          d_analysis = analysis;
          d_name = name;
          d_metric = "status";
          d_base = vb;
          d_cand = vc;
          d_pct = 0.;
          d_pooled_iqr = 0.;
          d_verdict = (if vc > vb then Regression else Improvement);
          d_gated = true;
        };
      ]
  in
  (* counters are informational: deterministic work measures, useful to
     explain a time delta, never gated on their own *)
  let counters =
    List.filter_map
      (fun (cn, vb) ->
        Option.map
          (fun vc ->
            let pooled = 0. in
            {
              d_analysis = analysis;
              d_name = name;
              d_metric = cn;
              d_base = vb;
              d_cand = vc;
              d_pct =
                (if Float.abs vb > 0. then (vc -. vb) /. Float.abs vb
                 else if vc = vb then 0.
                 else Float.infinity);
              d_pooled_iqr = pooled;
              d_verdict = judge ~rel:0.10 ~abs_floor:16. ~pooled vb vc;
              d_gated = false;
            })
          (List.assoc_opt cn c.r_counters))
      b.r_counters
  in
  (time "total_seconds" b.r_total c.r_total :: phases)
  @ [ bytes ] @ status @ counters

let compare_runs ?(thresholds = default_thresholds) base cand =
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cand_tbl (row_key r) r) cand.rows;
  let base_keys = List.map row_key base.rows in
  let deltas =
    List.concat_map
      (fun b ->
        match Hashtbl.find_opt cand_tbl (row_key b) with
        | Some c -> row_deltas thresholds b c
        | None -> [])
      base.rows
  in
  let missing =
    List.filter (fun k -> not (Hashtbl.mem cand_tbl k)) base_keys
  in
  let added =
    List.filter_map
      (fun r ->
        let k = row_key r in
        if List.mem k base_keys then None else Some k)
      cand.rows
  in
  let rank d =
    match (d.d_verdict, d.d_gated) with
    | Regression, true -> 0
    | Regression, false -> 1
    | Improvement, true -> 2
    | Improvement, false -> 3
    | Unchanged, _ -> 4
  in
  let deltas =
    List.stable_sort (fun a b -> compare (rank a) (rank b)) deltas
  in
  let count v =
    List.length
      (List.filter (fun d -> d.d_gated && d.d_verdict = v) deltas)
  in
  {
    base_id = base.id;
    cand_id = cand.id;
    deltas;
    missing;
    added;
    (* a vanished row is a gated regression: the candidate lost
       coverage the baseline had *)
    regressions = count Regression + List.length missing;
    improvements = count Improvement;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let verdict_to_string = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"

let pct_string p =
  if Float.is_integer p && Float.abs p = Float.infinity then "(new)"
  else Printf.sprintf "%+.1f%%" (100. *. p)

let render_delta d =
  Printf.sprintf "  %-11s %-10s/%-10s %-14s %12.6g -> %-12.6g %9s  (noise bound %g)"
    (verdict_to_string d.d_verdict)
    d.d_analysis d.d_name d.d_metric d.d_base d.d_cand (pct_string d.d_pct)
    d.d_pooled_iqr

let render_ab ab =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "A/B: baseline %s vs candidate %s\n" ab.base_id ab.cand_id);
  let flagged =
    List.filter (fun d -> d.d_verdict <> Unchanged) ab.deltas
  in
  if flagged = [] then
    Buffer.add_string buf "  no deltas beyond noise tolerance\n"
  else
    List.iter
      (fun d -> Buffer.add_string buf (render_delta d ^ "\n"))
      flagged;
  List.iter
    (fun (a, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  MISSING    %s/%s (in baseline, not in candidate)\n"
           a n))
    ab.missing;
  List.iter
    (fun (a, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  added      %s/%s (new in candidate)\n" a n))
    ab.added;
  let unchanged =
    List.length ab.deltas - List.length flagged
  in
  Buffer.add_string buf
    (Printf.sprintf
       "verdict: %d gated regression%s, %d gated improvement%s, %d metric%s \
        within tolerance\n"
       ab.regressions
       (if ab.regressions = 1 then "" else "s")
       ab.improvements
       (if ab.improvements = 1 then "" else "s")
       unchanged
       (if unchanged = 1 then "" else "s"));
  Buffer.contents buf

let delta_to_json d =
  Obj
    [
      ("analysis", Str d.d_analysis);
      ("benchmark", Str d.d_name);
      ("metric", Str d.d_metric);
      ("base", Float d.d_base);
      ("candidate", Float d.d_cand);
      ( "pct_change",
        if Float.abs d.d_pct = Float.infinity then Null
        else Float (d.d_pct *. 100.) );
      ("pooled_iqr", Float d.d_pooled_iqr);
      ("verdict", Str (verdict_to_string d.d_verdict));
      ("gated", Bool d.d_gated);
    ]

let ab_to_json ab =
  let pair (a, n) = Obj [ ("analysis", Str a); ("benchmark", Str n) ] in
  Obj
    [
      ("schema", Str (schema_name ^ ".ab"));
      ("schema_version", Int schema_version);
      ("baseline", Str ab.base_id);
      ("candidate", Str ab.cand_id);
      ("regressions", Int ab.regressions);
      ("improvements", Int ab.improvements);
      ("missing", Arr (List.map pair ab.missing));
      ("added", Arr (List.map pair ab.added));
      ("deltas", Arr (List.map delta_to_json ab.deltas));
    ]
