(** Quine–McCluskey minimization, used to render Prop results as
    readable boolean formulae. *)

type lit = True | False | Dontcare

type cube = lit array
(** An implicant: one literal per position. *)

val covers : cube -> int -> bool
(** Does the cube cover the assignment row? *)

val prime_implicants : Bf.t -> cube list

val minimize : Bf.t -> cube list
(** A (greedy, near-minimal) prime-implicant cover of the function. *)

val to_string : names:(int -> string) -> Bf.t -> string
(** Sum-of-products rendering, e.g. ["a&~b | c"]; ["true"]/["false"]
    for the constant functions. *)
