flip(X, Y) :- X = Y.
flip(X, Y) :- X = a.
p(X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15, X16) :-
    flip(X1, X2),
    flip(X2, X3),
    flip(X3, X4),
    flip(X4, X5),
    flip(X5, X6),
    flip(X6, X7),
    flip(X7, X8),
    flip(X8, X9),
    flip(X9, X10),
    flip(X10, X11),
    flip(X11, X12),
    flip(X12, X13),
    flip(X13, X14),
    flip(X14, X15),
    flip(X15, X16).
