(** Canonical forms for variant checking.

    Tabled evaluation keys its call and answer tables on the *variant*
    class of a term: two terms are variants iff they are identical up to a
    renaming of variables.  We canonicalize by renumbering variables
    0,1,2,… in order of first occurrence; variant checking is then
    structural equality of canonical forms, and canonical forms hash
    consistently, so they serve directly as hash-table keys. *)

(** [canonical s t] resolves [t] under [s] and renumbers its free
    variables in first-occurrence order, in a single traversal: each node
    is dereferenced through [s] as it is visited, ground subterms are
    returned as-is (an O(1) flag check), and unbound variables are
    renumbered on the spot.  Fusing resolution with renumbering avoids
    building the intermediate resolvent that a [Subst.resolve] +
    [Term.map_vars] pipeline would allocate; a node whose children come
    back physically unchanged is shared, so an already-canonical term is
    returned as-is. *)
let canonical (s : Subst.t) (t : Term.t) : Term.t =
  (* renumbering table as a linear scan: tabled calls and answers carry a
     handful of distinct variables, where a scan over a small array beats
     allocating a hash table per call *)
  let seen = ref (Array.make 8 0) in
  let n = ref 0 in
  let renumber i =
    let arr = !seen and k = !n in
    let rec find j =
      if j >= k then -1 else if arr.(j) = i then j else find (j + 1)
    in
    let j = find 0 in
    if j >= 0 then Term.var j
    else begin
      if k >= Array.length arr then begin
        let bigger = Array.make (2 * k) 0 in
        Array.blit arr 0 bigger 0 k;
        seen := bigger
      end;
      !seen.(k) <- i;
      incr n;
      Term.var k
    end
  in
  let rec go t =
    match Subst.walk s t with
    | Term.Var i -> renumber i
    | Term.Struct (_, args, _) as t' ->
        if Term.is_ground t' then t'
        else begin
          let changed = ref false in
          let args' =
            Array.map
              (fun a ->
                let a' = go a in
                if a' != a then changed := true;
                a')
              args
          in
          if !changed then Term.rebuild t' args' else t'
        end
    | t' -> t'
  in
  go t

(** Renumber an already-resolved term. *)
let of_term (t : Term.t) : Term.t = canonical Subst.empty t

let variant t1 t2 = Term.equal (of_term t1) (of_term t2)

(** A canonical term's variables are 0..n-1; rename them to globally fresh
    variables before resolving against live terms. *)
let instantiate (t : Term.t) : Term.t = Term.rename t

module Key = struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end

module Tbl = Hashtbl.Make (Key)
