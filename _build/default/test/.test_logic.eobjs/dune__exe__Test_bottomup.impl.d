test/test_bottomup.ml: Alcotest Array Datalog From_prop Fun List Magic Parser Prax_bottomup Prax_logic Prax_tabling Pretty Printf String Term
