(** Reduced ordered binary decision diagrams (Bryant), hash-consed with a
    memoized [apply].

    This is the boolean-function representation the paper *argues
    against* for Prop-based analysis ([10, 40] use BDDs / Toupie): the
    repository uses it for the representation ablation bench and as an
    alternative back-end of the GAIA-style analyzer, so the enumerative
    vs symbolic comparison the paper makes in Section 4 can be
    re-measured.

    Variables are non-negative integers ordered by value.  Nodes are
    hash-consed (per domain — see the state note below), so structural
    equality is physical equality. *)

type t = Leaf of bool | Node of { id : int; var : int; lo : t; hi : t }

let id = function Leaf false -> 0 | Leaf true -> 1 | Node { id; _ } -> id

let zero = Leaf false
let one = Leaf true

(* Hash-cons table, (var, lo-id, hi-id) -> node, and the apply memo.
   Both are domain-local: a worker domain of the multicore batch runner
   starts from a copy of its parent's tables (parent quiescent at
   spawn), so node ids stay canonical within every domain and
   evaluation never races.  BDDs never cross domains. *)
type state = {
  uniq : (int * int * int, t) Hashtbl.t;
  memo : (int * int * int, t) Hashtbl.t;
  mutable next_id : int;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun (p : state) ->
      {
        uniq = Hashtbl.copy p.uniq;
        memo = Hashtbl.copy p.memo;
        next_id = p.next_id;
      })
    (fun () ->
      { uniq = Hashtbl.create 1024; memo = Hashtbl.create 4096; next_id = 2 })

let node var lo hi =
  if id lo = id hi then lo
  else
    let st = Domain.DLS.get key in
    let k = (var, id lo, id hi) in
    match Hashtbl.find_opt st.uniq k with
    | Some n -> n
    | None ->
        let n = Node { id = st.next_id; var; lo; hi } in
        st.next_id <- st.next_id + 1;
        Hashtbl.add st.uniq k n;
        n

let var v = node v zero one
let nvar v = node v one zero

let equal a b = id a = id b

(* --- apply ----------------------------------------------------------------- *)

type op = And | Or | Xor | Imp | Iff

let op_code = function And -> 0 | Or -> 1 | Xor -> 2 | Imp -> 3 | Iff -> 4

let eval_op op a b =
  match op with
  | And -> a && b
  | Or -> a || b
  | Xor -> a <> b
  | Imp -> (not a) || b
  | Iff -> a = b

let rec apply op a b =
  match (a, b) with
  | Leaf x, Leaf y -> if eval_op op x y then one else zero
  | _ ->
      (* short circuits *)
      let shortcut =
        match (op, a, b) with
        | And, Leaf false, _ | And, _, Leaf false -> Some zero
        | And, Leaf true, x | And, x, Leaf true -> Some x
        | Or, Leaf true, _ | Or, _, Leaf true -> Some one
        | Or, Leaf false, x | Or, x, Leaf false -> Some x
        | _ -> None
      in
      (match shortcut with
      | Some r -> r
      | None ->
          let memo = (Domain.DLS.get key).memo in
          let k = (op_code op, id a, id b) in
          (match Hashtbl.find_opt memo k with
          | Some r -> r
          | None ->
              let split =
                match (a, b) with
                | Node na, Node nb ->
                    if na.var = nb.var then (na.var, na.lo, na.hi, nb.lo, nb.hi)
                    else if na.var < nb.var then (na.var, na.lo, na.hi, b, b)
                    else (nb.var, a, a, nb.lo, nb.hi)
                | Node na, Leaf _ -> (na.var, na.lo, na.hi, b, b)
                | Leaf _, Node nb -> (nb.var, a, a, nb.lo, nb.hi)
                | Leaf _, Leaf _ -> assert false
              in
              let v, alo, ahi, blo, bhi = split in
              let r = node v (apply op alo blo) (apply op ahi bhi) in
              Hashtbl.add memo k r;
              r))

let conj a b = apply And a b
let disj a b = apply Or a b
let xor a b = apply Xor a b
let imp a b = apply Imp a b
let iff2 a b = apply Iff a b

let rec neg = function
  | Leaf b -> if b then zero else one
  | Node { var = v; lo; hi; _ } -> node v (neg lo) (neg hi)

(** [x_v ↔ (x_1 ∧ … ∧ x_k)] for the positions in [set] — the Prop
    abstraction of one binding. *)
let iff v set =
  let conj_set = List.fold_left (fun acc p -> conj acc (var p)) one set in
  iff2 (var v) conj_set

(* --- quantification and restriction ----------------------------------------- *)

let rec restrict f v value =
  match f with
  | Leaf _ -> f
  | Node { var = w; lo; hi; _ } ->
      if w = v then if value then hi else lo
      else if w > v then f
      else node w (restrict lo v value) (restrict hi v value)

let exists f v = disj (restrict f v false) (restrict f v true)

let rec forall_list f = function [] -> f | v :: vs -> forall_list (exists f v) vs

(* --- satisfying assignments -------------------------------------------------- *)

let is_false f = equal f zero
let is_true f = equal f one

(** Is position [v] true in every satisfying assignment?  (The definite
    groundness question.)  f ∧ ¬v unsatisfiable. *)
let definite_at f v = is_false (conj f (nvar v))

let rec count_range f from nvars =
  if from >= nvars then if is_true f then 1 else 0
  else
    match f with
    | Leaf false -> 0
    | Leaf true -> 1 lsl (nvars - from)
    | Node { var = v; lo; hi; _ } ->
        if v = from then count_range lo (from + 1) nvars + count_range hi (from + 1) nvars
        else 2 * count_range f (from + 1) nvars

let sat_count ~nvars f = count_range f 0 nvars

(** All satisfying rows over positions [0..nvars-1], as bit-rows matching
    {!Prax_prop.Bf} indexing.  For tests and cross-checking. *)
let sat_rows ~nvars f : int list =
  let out = ref [] in
  for r = (1 lsl nvars) - 1 downto 0 do
    let rec eval g =
      match g with
      | Leaf b -> b
      | Node { var = v; lo; hi; _ } ->
          if r land (1 lsl v) <> 0 then eval hi else eval lo
    in
    if eval f then out := r :: !out
  done;
  !out

(** Build from explicit rows. *)
let of_rows ~nvars rows =
  List.fold_left
    (fun acc r ->
      let cube = ref one in
      for v = 0 to nvars - 1 do
        let lit = if r land (1 lsl v) <> 0 then var v else nvar v in
        cube := conj !cube lit
      done;
      disj acc !cube)
    zero rows

(** Number of live hash-consed nodes (in this domain). *)
let node_count () = Hashtbl.length (Domain.DLS.get key).uniq

let rec size f =
  match f with Leaf _ -> 1 | Node { lo; hi; _ } -> 1 + size lo + size hi
