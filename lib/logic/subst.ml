(** Idempotent-enough substitutions: persistent maps from variable ids to
    terms, dereferenced lazily.  Persistence is what makes the
    continuation-passing engines trivially backtrackable — no trail is
    needed; an old substitution is simply kept.

    The map is a little-endian Patricia trie (Okasaki & Gill, "Fast
    Mergeable Integer Maps"): lookups and inserts follow the bits of the
    variable id with no rebalancing and no comparisons beyond integer
    equality.  [walk]/[bind] sit in the innermost loop of both engines —
    they are the reason this is not simply [Map.Make (Int)] (the AVL
    rebalancing and three-way comparisons showed up as a constant factor
    on the Table-1 corpus). *)

type t =
  | Empty
  | Leaf of int * Term.t
  | Branch of int * int * t * t
      (** [Branch (prefix, bit, l, r)]: keys in [l] have the [bit] unset,
          keys in [r] have it set; all agree with [prefix] below [bit]. *)

let empty = Empty

let is_empty = function Empty -> true | _ -> false

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

(* All variable ids are non-negative, so the plain lowest-set-bit
   arithmetic below never has to worry about the sign bit. *)

let find_opt k m =
  let rec go = function
    | Empty -> None
    | Leaf (j, v) -> if j = k then Some v else None
    | Branch (_, bit, l, r) -> go (if k land bit = 0 then l else r)
  in
  go m

(* lowest bit where [p0] and [p1] disagree *)
let branching_bit p0 p1 =
  let d = p0 lxor p1 in
  d land -d

let mask p bit = p land (bit - 1)

let join p0 t0 p1 t1 =
  let bit = branching_bit p0 p1 in
  if p0 land bit = 0 then Branch (mask p0 bit, bit, t0, t1)
  else Branch (mask p0 bit, bit, t1, t0)

let rec add k v = function
  | Empty -> Leaf (k, v)
  | Leaf (j, _) as t ->
      if j = k then Leaf (k, v) else join k (Leaf (k, v)) j t
  | Branch (p, bit, l, r) as t ->
      if mask k bit = p then
        if k land bit = 0 then Branch (p, bit, add k v l, r)
        else Branch (p, bit, l, add k v r)
      else join k (Leaf (k, v)) p t

(** Dereference the top of [t]: follow variable bindings until reaching a
    non-variable or an unbound variable.  Does not descend into
    structures. *)
let rec walk (s : t) (t : Term.t) : Term.t =
  match t with
  | Term.Var i -> (
      match find_opt i s with Some t' -> walk s t' | None -> t)
  | _ -> t

(** Bind variable [i] to [t].  The caller must ensure [i] is unbound. *)
let bind (s : t) i (t : Term.t) : t = add i t s

(** Fully apply [s] to [t], producing a term with only unbound variables.
    Ground subterms cannot be affected and are returned as-is (an O(1)
    flag check on the interned representation); nodes whose children all
    come back unchanged are shared rather than rebuilt. *)
let rec resolve (s : t) (t : Term.t) : Term.t =
  if is_empty s then t
  else
    match walk s t with
    | Term.Struct (_, args, _) as t' ->
        if Term.is_ground t' then t'
        else begin
          let changed = ref false in
          let args' =
            Array.map
              (fun a ->
                let a' = resolve s a in
                if a' != a then changed := true;
                a')
              args
          in
          if !changed then Term.rebuild t' args' else t'
        end
    | t' -> t'

(** The unbound variables remaining in [resolve s t], in first-occurrence
    order. *)
let free_vars s t = Term.vars (resolve s t)

let is_ground_under s t = Term.is_ground (resolve s t)

(** Does variable [id] occur in [t] under [s]?  Used for occur-check.
    A ground subterm can bind nothing, so the O(1) ground flag prunes
    whole subtrees; when the substitution is empty this degenerates to
    {!Term.occurs}' short-circuiting scan. *)
let rec occurs_check (s : t) id (t : Term.t) : bool =
  match walk s t with
  | Term.Var j -> j = id
  | Term.Int _ | Term.Atom _ -> false
  | Term.Struct (_, args, _) as t' ->
      (not (Term.is_ground t'))
      && (if is_empty s then Term.occurs id t'
          else
            let n = Array.length args in
            let rec go i =
              i < n && (occurs_check s id args.(i) || go (i + 1))
            in
            go 0)
