(** Syntactic unification over persistent substitutions. *)

val unify : Subst.t -> Term.t -> Term.t -> Subst.t option
(** Standard unification without occur-check (as in Prolog/XSB). *)

val unify_oc : Subst.t -> Term.t -> Term.t -> Subst.t option
(** Unification with occur-check, as required by the depth-k abstract
    unification and the Hindley–Milner type equations (Sections 5 and
    6.1 of the paper). *)

val unifiable : Term.t -> Term.t -> bool
(** Do the terms unify under the empty substitution? *)
