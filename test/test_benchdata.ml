(* Corpus regression tests: every benchmark parses, runs concretely
   (logic: the *_top entry point has a solution under SLD; functional:
   main() normalizes under the lazy interpreter), analyzes under every
   engine, and the registry's paper-reported rows are consistent with
   the tables in the paper. *)

open Prax_logic
open Prax_benchdata

let top_of db =
  Database.predicates db
  |> List.find_opt (fun (n, _) ->
         String.length n > 4
         && String.equal (String.sub n (String.length n - 4) 4) "_top")

let test_logic_tops_run () =
  List.iter
    (fun (b : Registry.logic_bench) ->
      let db = Database.create ~mode:Database.Compiled () in
      ignore (Database.load_string db b.Registry.source);
      match top_of db with
      | None -> Alcotest.failf "%s has no *_top entry point" b.Registry.name
      | Some (name, arity) ->
          let goal =
            Term.mk name (Array.init arity (fun _ -> Term.fresh_var ()))
          in
          let sols =
            Sld.solutions ~limit:1 ~max_inferences:8_000_000 db goal
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s/%d solvable" b.Registry.name name arity)
            1 (List.length sols))
    Registry.logic_benchmarks

let test_logic_corpus_sizes () =
  List.iter
    (fun (b : Registry.logic_bench) ->
      let clauses = Parser.parse_clauses b.Registry.source in
      Alcotest.(check bool)
        (b.Registry.name ^ " nontrivial")
        true
        (List.length clauses >= 8))
    Registry.logic_benchmarks

let test_registry_unique_names () =
  let names =
    List.map (fun (b : Registry.logic_bench) -> b.Registry.name)
      Registry.logic_benchmarks
    @ List.map (fun (b : Registry.fp_bench) -> b.Registry.name)
        Registry.fp_benchmarks
  in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_paper_rows () =
  (* Table 1 covers all 12 logic benchmarks; Table 4 exactly 9 (the
     paper omits gabriel/press1/press2); Table 2 (GAIA) all 12; Table 3
     all 10 functional ones *)
  Alcotest.(check int) "12 logic benchmarks" 12
    (List.length Registry.logic_benchmarks);
  Alcotest.(check int) "table1 rows" 12
    (List.length
       (List.filter
          (fun (b : Registry.logic_bench) -> b.Registry.table1 <> None)
          Registry.logic_benchmarks));
  Alcotest.(check int) "table4 rows" 9 (List.length Registry.table4_benchmarks);
  Alcotest.(check bool) "table4 omits press1" true
    (List.for_all
       (fun (b : Registry.logic_bench) ->
         not (List.mem b.Registry.name [ "gabriel"; "press1"; "press2" ]))
       Registry.table4_benchmarks);
  Alcotest.(check int) "10 functional benchmarks" 10
    (List.length Registry.fp_benchmarks);
  (* paper row internal consistency: phases sum to ~total *)
  List.iter
    (fun (b : Registry.logic_bench) ->
      match b.Registry.table1 with
      | Some r ->
          let sum = r.Registry.preproc +. r.Registry.analysis +. r.Registry.collection in
          Alcotest.(check bool)
            (b.Registry.name ^ " phases sum to total")
            true
            (Float.abs (sum -. r.Registry.total) < 0.02)
      | None -> ())
    Registry.logic_benchmarks

let test_all_engines_run_corpus () =
  (* groundness + depth-k(k=1) + gaia-bdd produce results on all 12 *)
  List.iter
    (fun (b : Registry.logic_bench) ->
      let g = Prax_ground.Analyze.analyze b.Registry.source in
      Alcotest.(check bool) (b.Registry.name ^ " ground") true
        (g.Prax_ground.Analyze.results <> []);
      let d = Prax_depthk.Analyze.analyze ~k:1 b.Registry.source in
      Alcotest.(check bool) (b.Registry.name ^ " depthk") true
        (d.Prax_depthk.Analyze.results <> []);
      let a = Prax_gaia.Analyze.analyze_bdd b.Registry.source in
      Alcotest.(check bool) (b.Registry.name ^ " gaia") true
        (a.Prax_gaia.Analyze.results <> []))
    Registry.logic_benchmarks

let test_strictness_runs_corpus () =
  List.iter
    (fun (b : Registry.fp_bench) ->
      let r = Prax_strict.Analyze.analyze b.Registry.source in
      Alcotest.(check bool) (b.Registry.name ^ " strict") true
        (r.Prax_strict.Analyze.results <> []))
    [ Option.get (Registry.find_fp "eu");
      Option.get (Registry.find_fp "mergesort");
      Option.get (Registry.find_fp "quicksort");
      Option.get (Registry.find_fp "strassen") ]

(* spot-check specific, human-verified results on the reconstructions *)
let test_qsort_result_correct () =
  let b = Option.get (Registry.find_logic "qsort") in
  let db = Database.create () in
  ignore (Database.load_string db b.Registry.source);
  let goal = Parser.parse_term "qsort([3,1,2], S)" in
  match Sld.solutions ~limit:1 db goal with
  | [ s ] ->
      Alcotest.(check string) "sorted" "qsort([3,1,2],[1,2,3])"
        (Pretty.term_to_string (Canon.canonical s goal))
  | _ -> Alcotest.fail "qsort failed"

let test_read_roundtrip () =
  (* the Prolog-implemented reader parses its own operator expressions *)
  let b = Option.get (Registry.find_logic "read") in
  let db = Database.create () in
  ignore (Database.load_string db b.Registry.source);
  let goal =
    Parser.parse_term "read_term_codes(\"a + b * c.\", T)"
  in
  match Sld.solutions ~limit:1 ~max_inferences:2_000_000 db goal with
  | [ s ] ->
      Alcotest.(check string) "precedence respected" "a + b * c"
        (Pretty.term_to_string (Subst.resolve s (Term.args_of goal).(1)))
  | _ -> Alcotest.fail "reader failed"

let test_peep_optimizes () =
  let b = Option.get (Registry.find_logic "peep") in
  let db = Database.create () in
  ignore (Database.load_string db b.Registry.source);
  let goal = Parser.parse_term "optimize([move(r1,r1), add(2,r2), add(3,r2)], Out)" in
  match Sld.solutions ~limit:1 ~max_inferences:2_000_000 db goal with
  | [ s ] ->
      Alcotest.(check string) "window rules fire" "[add(5,r2)]"
        (Pretty.term_to_string (Subst.resolve s (Term.args_of goal).(1)))
  | _ -> Alcotest.fail "peep failed"

let test_plan_achieves_goals () =
  let b = Option.get (Registry.find_logic "plan") in
  let db = Database.create () in
  ignore (Database.load_string db b.Registry.source);
  (* validate the plan by checking the goal holds in the final state *)
  let goal =
    Parser.parse_term
      "(plan_top(P), initial(S0), goals(Gs), check_plan(S0, P, Gs))"
  in
  ignore (Database.load_string db
    "check_plan(S, [], Gs) :- satisfied(Gs, S).\n\
     check_plan(S, [A|As], Gs) :- action(A, Pre, Add, Del), satisfied(Pre, S), apply_action(S, Add, Del, S1), check_plan(S1, As, Gs).");
  match Sld.solutions ~limit:1 ~max_inferences:8_000_000 db goal with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "plan invalid or missing"

(* --- worst-case stress corpus (examples/stress/) ------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* dune runtest runs from _build/default/test, dune exec from the
   invocation directory — accept either *)
let stress_dir () =
  List.find_opt Sys.file_exists
    [ "../examples/stress"; "examples/stress" ]

let test_stress_files_in_sync () =
  (* the on-disk .pl files CI and the CLI exercise must be byte-identical
     to the sources the bench harness embeds *)
  let dir =
    match stress_dir () with
    | Some d -> d
    | None -> Alcotest.fail "examples/stress not found from test cwd"
  in
  List.iter
    (fun (b : Registry.stress_bench) ->
      let path = Filename.concat dir (b.Registry.name ^ ".pl") in
      Alcotest.(check string)
        (b.Registry.name ^ ".pl in sync")
        b.Registry.source (read_file path))
    Registry.stress_benchmarks

let test_stress_contract () =
  (* the registry budget keeps both exit codes exercised: the smallest
     product size completes under mode=dynamic, the largest trips the
     budget — and mode=def completes every size *)
  let module Guard = Prax_guard.Guard in
  let run mode name =
    let b = Option.get (Registry.find_stress name) in
    let guard = Guard.create ~max_steps:b.Registry.max_steps () in
    let rep =
      match mode with
      | `Dynamic -> Prax_ground.Analyze.analyze ~guard b.Registry.source
      | `Def -> Prax_ground.Def.analyze ~guard b.Registry.source
    in
    rep.Prax_ground.Analyze.status
  in
  Alcotest.(check bool) "ghc8 dynamic completes" true
    (run `Dynamic "ghc8" = Guard.Complete);
  Alcotest.(check bool) "ghc16 dynamic trips" true
    (Guard.is_partial (run `Dynamic "ghc16"));
  List.iter
    (fun (b : Registry.stress_bench) ->
      Alcotest.(check bool)
        (b.Registry.name ^ " def completes")
        true
        (run `Def b.Registry.name = Guard.Complete))
    Registry.stress_benchmarks

let () =
  Alcotest.run "prax_benchdata"
    [
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick test_registry_unique_names;
          Alcotest.test_case "paper rows" `Quick test_registry_paper_rows;
          Alcotest.test_case "corpus sizes" `Quick test_logic_corpus_sizes;
        ] );
      ( "concrete runs",
        [
          Alcotest.test_case "all logic tops solvable" `Slow test_logic_tops_run;
          Alcotest.test_case "qsort result" `Quick test_qsort_result_correct;
          Alcotest.test_case "read roundtrip" `Quick test_read_roundtrip;
          Alcotest.test_case "peep optimizes" `Quick test_peep_optimizes;
          Alcotest.test_case "plan achieves goals" `Quick test_plan_achieves_goals;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "all engines on corpus" `Slow
            test_all_engines_run_corpus;
          Alcotest.test_case "strictness subset" `Quick
            test_strictness_runs_corpus;
        ] );
      ( "stress corpus",
        [
          Alcotest.test_case "files in sync" `Quick test_stress_files_in_sync;
          Alcotest.test_case "budget contract" `Quick test_stress_contract;
        ] );
    ]
