(** Term tries (discrimination trees) keyed by canonical terms.

    The index structure behind the tabled engine's call and answer
    tables: insert and variant lookup are a single preorder walk over
    the key term, and keys sharing a label-sequence prefix (answers of
    one call variant typically share the functor and leading arguments)
    share the trie nodes for it — the prefix sharing that cuts
    table-space relative to one hash-table slot per whole term.

    Keys are expected in canonical form ({!Canon.canonical}: variables
    renumbered in first-occurrence order), so lookup by structural walk
    {e is} variant lookup, exactly like the hash-table path it replaces.
    Two process-wide counters feed the observability registry
    (docs/METRICS.md): [trie.nodes], trie nodes allocated by inserts,
    and [trie.prefix_hits], insert steps that reused an existing edge.

    Not thread-safe; confine a trie to one domain. *)

type 'a t

val create : unit -> 'a t

val cardinal : 'a t -> int
(** Number of keys holding a value. *)

val live_nodes : 'a t -> int
(** Trie nodes currently reachable (root excluded) — the basis of the
    engine's table-space accounting. *)

val find_opt : 'a t -> Term.t -> 'a option
val mem : 'a t -> Term.t -> bool

type 'a outcome =
  | Existing of 'a  (** the key was already present; its value *)
  | Added of 'a * int
      (** the key was inserted; the created value and the number of trie
          nodes this insert allocated (0 when the whole label sequence
          was shared and only the terminal marking was new) *)

val find_or_add : 'a t -> Term.t -> (unit -> 'a) -> 'a outcome
(** [find_or_add t key mk]: single-walk lookup-or-insert.  [mk] is
    called only when the key is absent. *)

val iter : (Term.t -> 'a -> unit) -> 'a t -> unit
(** Preorder over the trie; visiting order is insertion-history
    dependent, so callers needing a canonical order must sort (the
    engine's [dump_tables] does). *)

val fold : (Term.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val clear : 'a t -> unit
