(* Tests for the Section 6/7 extensions: demand-driven dataflow analysis
   (§7), widening over infinite domains (§6.1), and Hindley-Minler type
   analysis by occur-check unification (§6.1). *)

open Prax_dataflow
open Prax_infinite
open Prax_hm

(* ===================== dataflow ===================== *)

let t () = Analyze.make Cfg.example

let test_df_reaching_example () =
  let t = t () in
  Alcotest.(check (list (pair string int)))
    "defs reaching node 7"
    [ ("x", 1); ("x", 12); ("y", 2); ("y", 5) ]
    (Analyze.reaching_at t ~node:7)

let test_df_matches_reference () =
  let t = t () in
  List.iter
    (fun node ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "node %d" node)
        (Analyze.reference_reaching_at Cfg.example ~node)
        (Analyze.reaching_at t ~node))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 11; 12; 13; 14 ]

let test_df_interprocedural () =
  let t = t () in
  (* helper's definition of x at node 12 flows back into main *)
  Alcotest.(check bool) "x@12 reaches main's node 5" true
    (Analyze.reaches t ~var:"x" ~def:12 ~node:5);
  (* main's x@1 flows into helper *)
  Alcotest.(check bool) "x@1 reaches helper's node 11" true
    (Analyze.reaches t ~var:"x" ~def:1 ~node:11)

let test_df_killed () =
  let t = t () in
  (* y@2 is killed by y@5 on the path through the loop body, but the
     direct branch 3->7 preserves it *)
  Alcotest.(check bool) "y@2 reaches 7 via the branch" true
    (Analyze.reaches t ~var:"y" ~def:2 ~node:7);
  (* z@7's def reaches the exit *)
  Alcotest.(check bool) "z@7 reaches 8" true
    (Analyze.reaches t ~var:"z" ~def:7 ~node:8)

let test_df_liveness () =
  let t = t () in
  Alcotest.(check (list string)) "live at 3" [ "x"; "y" ]
    (Analyze.live_at t ~node:3);
  (* z is never used: dead everywhere *)
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "z dead at %d" node)
        false
        (List.mem "z" (Analyze.live_at t ~node)))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_df_du_chains () =
  let t = t () in
  let du = Analyze.def_use_chains t in
  Alcotest.(check bool) "y@5 used at 6" true (List.mem (("y", 5), 6) du);
  Alcotest.(check bool) "no use of z" true
    (List.for_all (fun ((v, _), _) -> v <> "z") du)

let test_df_demand_is_goal_directed () =
  (* a single demand on a ladder touches fewer table entries than the
     exhaustive query *)
  let lad = [ Cfg.ladder ~name:"main" ~base:0 ~rungs:40 ] in
  let t1 = Analyze.make lad in
  ignore (Analyze.reaches t1 ~var:"v0" ~def:1 ~node:2);
  let demand_entries = (Analyze.stats t1).Prax_tabling.Engine.table_entries in
  let t2 = Analyze.make lad in
  ignore (Analyze.reaching_at t2 ~node:2);
  let exhaustive_entries = (Analyze.stats t2).Prax_tabling.Engine.table_entries in
  Alcotest.(check bool) "demand <= exhaustive" true
    (demand_entries <= exhaustive_entries)

let prop_df_ladder_reference =
  QCheck2.Test.make ~name:"ladder reaching defs = reference" ~count:20
    QCheck2.Gen.(int_range 1 12)
    (fun rungs ->
      let p = [ Cfg.ladder ~name:"main" ~base:0 ~rungs ] in
      let t = Analyze.make p in
      let nodes =
        List.concat_map (fun (pr : Cfg.proc) ->
            List.map (fun (n : Cfg.node) -> n.Cfg.id) pr.Cfg.nodes)
          p
      in
      List.for_all
        (fun node ->
          Analyze.reaching_at t ~node
          = Analyze.reference_reaching_at p ~node)
        nodes)

(* ===================== widening ===================== *)

let peano =
  "nat(0). nat(s(X)) :- nat(X).\n\
   plus(0, Y, Y). plus(s(X), Y, s(Z)) :- plus(X, Y, Z).\n\
   even(0). even(s(s(X))) :- even(X)."

let test_widen_terminates () =
  let rep = Widen.analyze ~chain:3 peano in
  Alcotest.(check int) "three predicates" 3 (List.length rep.Widen.results)

let test_widen_nat_shape () =
  let rep = Widen.analyze ~chain:3 peano in
  let nat = Option.get (Widen.result_for rep ("nat", 1)) in
  Alcotest.(check bool) "widened" true nat.Widen.widened;
  (* the finite prefix is exact *)
  let answers =
    List.map Prax_logic.Pretty.term_to_string nat.Widen.answers
    |> List.sort compare
  in
  Alcotest.(check bool) "0 present" true (List.mem "nat(0)" answers);
  Alcotest.(check bool) "s(0) present" true (List.mem "nat(s(0))" answers);
  Alcotest.(check bool) "omega present" true
    (List.mem "nat('$omega')" answers)

let test_widen_even_prefix_exact () =
  let rep = Widen.analyze ~chain:3 peano in
  let even = Option.get (Widen.result_for rep ("even", 1)) in
  let answers = List.map Prax_logic.Pretty.term_to_string even.Widen.answers in
  Alcotest.(check bool) "even(0)" true (List.mem "even(0)" answers);
  Alcotest.(check bool) "even(s(s(0)))" true (List.mem "even(s(s(0)))" answers);
  (* the odd numeral never appears concretely *)
  Alcotest.(check bool) "no even(s(0))" false (List.mem "even(s(0))" answers)

let test_widen_chain_parameter () =
  let r2 = Widen.analyze ~chain:2 peano in
  let r5 = Widen.analyze ~chain:5 peano in
  let count rep =
    (Option.get (Widen.result_for rep ("nat", 1))).Widen.answers |> List.length
  in
  Alcotest.(check bool) "longer chains keep more precision" true
    (count r5 >= count r2)

let test_widen_finite_program_unchanged () =
  (* widening must not fire on a finite-domain program *)
  let rep = Widen.analyze ~chain:3 "small(0). small(s(0))." in
  let r = Option.get (Widen.result_for rep ("small", 1)) in
  Alcotest.(check bool) "not widened" false r.Widen.widened;
  Alcotest.(check int) "exact answers" 2 (List.length r.Widen.answers)

let test_widen_numeral_helpers () =
  Alcotest.(check bool) "complete numeral" true
    (Widen.is_complete_numeral (Prax_logic.Parser.parse_term "s(s(0))"));
  Alcotest.(check bool) "open numeral incomplete" false
    (Widen.is_complete_numeral (Prax_logic.Parser.parse_term "s(X)"));
  Alcotest.(check (option int)) "depth" (Some 2)
    (Widen.numeral_depth (Prax_logic.Parser.parse_term "s(s(X))"))

(* ===================== HM types ===================== *)

let types src =
  Infer.infer_source src
  |> List.map (fun r -> (r.Infer.fname, Infer.type_to_string r.Infer.scheme))

let type_of src f = List.assoc f (types src)

let test_hm_monomorphic () =
  Alcotest.(check string) "int function" "(int) -> int"
    (type_of "inc(x) = x + 1;" "inc")

let test_hm_polymorphic_list () =
  Alcotest.(check string) "append" "(list('a), list('a)) -> list('a)"
    (type_of "append([], ys) = ys;\nappend(x:xs, ys) = x : append(xs, ys);"
       "append")

let test_hm_let_polymorphism () =
  (* length reused at two element types: needs generalization *)
  let src =
    "len([]) = 0;\nlen(x:xs) = 1 + len(xs);\n\
     both() = len([1]) + len([[1],[2]]);"
  in
  Alcotest.(check string) "len polymorphic" "(list('a)) -> int"
    (type_of src "len");
  Alcotest.(check string) "both types" "() -> int" (type_of src "both")

let test_hm_bool () =
  Alcotest.(check string) "comparison" "(int, int) -> bool"
    (type_of "lt(a, b) = a < b;" "lt")

let test_hm_tuples () =
  Alcotest.(check string) "swap" "(tup2('a, 'b)) -> tup2('b, 'a)"
    (type_of "swap((a, b)) = (b, a);" "swap")

let test_hm_user_datatype () =
  let src =
    "depth(Leaf(x)) = 1;\ndepth(Node(l, r)) = 1 + depth(l) + depth(r);"
  in
  (* Leaf and Node are matched on the same argument: one datatype *)
  Alcotest.(check string) "tree depth" "(dt$Leaf) -> int" (type_of src "depth")

let test_hm_recursive_datatype_fields () =
  let src =
    "flat(Leaf(x)) = x : [];\nflat(Node(l, r)) = app(flat(l), flat(r));\n\
     app([], ys) = ys;\napp(x:xs, ys) = x : app(xs, ys);\n\
     use() = flat(Node(Leaf(1), Leaf(2)));"
  in
  Alcotest.(check string) "leaves are ints here" "() -> list(int)"
    (type_of src "use")

let test_hm_mutual_recursion () =
  let src =
    "isodd(n) = if n == 0 then False else iseven(n - 1);\n\
     iseven(n) = if n == 0 then True else isodd(n - 1);"
  in
  Alcotest.(check string) "even" "(int) -> bool" (type_of src "iseven");
  Alcotest.(check string) "odd" "(int) -> bool" (type_of src "isodd")

let test_hm_type_errors () =
  let expect_error src =
    match Infer.infer_source src with
    | _ -> Alcotest.failf "expected type error in %s" src
    | exception Infer.Type_error _ -> ()
  in
  expect_error "bad(x) = x + [];";
  expect_error "bad2() = if 1 then 2 else 3;";
  expect_error "bad3(x) = if x then x + 1 else 0;";
  (* occur-check: a list that contains itself *)
  expect_error "grow(x) = grow(x : x);"

let test_hm_branch_unification () =
  Alcotest.(check string) "if branches unify"
    "(bool, int) -> int"
    (type_of "pick(c, x) = if c then x else 0;" "pick")

let test_hm_corpus_types () =
  (* every corpus benchmark type-checks; spot-check two signatures *)
  List.iter
    (fun (b : Prax_benchdata.Registry.fp_bench) ->
      match Infer.infer_source b.Prax_benchdata.Registry.source with
      | results ->
          Alcotest.(check bool)
            (b.Prax_benchdata.Registry.name ^ " typed")
            true (results <> [])
      | exception Infer.Type_error m ->
          Alcotest.failf "%s: %s" b.Prax_benchdata.Registry.name m)
    Prax_benchdata.Registry.fp_benchmarks;
  let ms =
    (Option.get (Prax_benchdata.Registry.find_fp "mergesort"))
      .Prax_benchdata.Registry.source
  in
  Alcotest.(check string) "msort" "(list(int)) -> list(int)"
    (type_of ms "msort")

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_df_ladder_reference ]

let () =
  Alcotest.run "prax_extensions"
    [
      ( "dataflow",
        [
          Alcotest.test_case "reaching example" `Quick test_df_reaching_example;
          Alcotest.test_case "matches reference" `Quick test_df_matches_reference;
          Alcotest.test_case "interprocedural" `Quick test_df_interprocedural;
          Alcotest.test_case "kill respected" `Quick test_df_killed;
          Alcotest.test_case "liveness" `Quick test_df_liveness;
          Alcotest.test_case "def-use chains" `Quick test_df_du_chains;
          Alcotest.test_case "demand is goal-directed" `Quick
            test_df_demand_is_goal_directed;
        ] );
      ( "widening",
        [
          Alcotest.test_case "terminates" `Quick test_widen_terminates;
          Alcotest.test_case "nat shape" `Quick test_widen_nat_shape;
          Alcotest.test_case "even prefix exact" `Quick
            test_widen_even_prefix_exact;
          Alcotest.test_case "chain parameter" `Quick test_widen_chain_parameter;
          Alcotest.test_case "finite program untouched" `Quick
            test_widen_finite_program_unchanged;
          Alcotest.test_case "numeral helpers" `Quick test_widen_numeral_helpers;
        ] );
      ( "hm types",
        [
          Alcotest.test_case "monomorphic" `Quick test_hm_monomorphic;
          Alcotest.test_case "polymorphic lists" `Quick test_hm_polymorphic_list;
          Alcotest.test_case "let polymorphism" `Quick test_hm_let_polymorphism;
          Alcotest.test_case "booleans" `Quick test_hm_bool;
          Alcotest.test_case "tuples" `Quick test_hm_tuples;
          Alcotest.test_case "user datatypes" `Quick test_hm_user_datatype;
          Alcotest.test_case "datatype fields" `Quick
            test_hm_recursive_datatype_fields;
          Alcotest.test_case "mutual recursion" `Quick test_hm_mutual_recursion;
          Alcotest.test_case "type errors" `Quick test_hm_type_errors;
          Alcotest.test_case "branch unification" `Quick
            test_hm_branch_unification;
          Alcotest.test_case "corpus types" `Slow test_hm_corpus_types;
        ] );
      ("properties", qsuite);
    ]
