(** Groundness analysis driver: preprocess (parse, transform, load),
    analyze (tabled evaluation of the abstract program), collect (fold the
    call/answer tables into per-predicate groundness results).

    The three phases and their timings mirror the paper's Table 1
    methodology exactly; total analysis time is their sum. *)

open Prax_logic
open Prax_tabling
open Prax_prop
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis

(* Phase timers mirroring the Table 1 columns (docs/METRICS.md).  The
   [phases] record carries the same breakdown per report; the timers
   accumulate process-wide for `--stats` output. *)
let t_preprocess =
  Metrics.timer ~doc:"groundness: parse, transform, load" "ground.preprocess"

let t_evaluate =
  Metrics.timer ~doc:"groundness: tabled evaluation of the abstract program"
    "ground.evaluate"

let t_collect =
  Metrics.timer ~doc:"groundness: fold call/answer tables into results"
    "ground.collect"

type pred_result = {
  pred : string * int;
  success : Bf.t;  (** output groundness as a boolean function *)
  definite : bool array;  (** argument ground in every answer *)
  never_succeeds : bool;
  call_patterns : string list;  (** input modes, e.g. ["gf"; "gg"] *)
}

(* The shared Table-style phase record, re-exported so existing callers
   keep their [Analyze.phases] spelling (the definition now lives in
   prax.analysis, one copy for all drivers). *)
type phases = Analysis.phases = {
  preproc : float;
  analysis : float;
  collection : float;
}

let total = Analysis.total

type report = {
  results : pred_result list;
  phases : phases;
  table_bytes : int;
  engine_stats : Engine.stats;
  clause_count : int;  (** size of the abstract program *)
  status : Guard.status;
      (** [Partial] when a resource budget stopped evaluation: the
          results are then a sound over-approximation (widened table
          entries answer their most general call) *)
}

(* monotonic, same clock as the Metrics timers (docs/ANALYSES.md) *)
let now = Analysis.now

(* Fold an answer's rows into [f].  Unbound variables in an answer range
   over both values, but sharing must be respected: gp_ap(true,A,A)
   contributes (t,t,t) and (t,f,f) only. *)
let add_answer_rows (f : Bf.t) (ans : Term.t) : unit =
  let args = Term.args_of ans in
  let vars = Term.vars ans in
  let rec assign env = function
    | [] ->
        let row = ref 0 in
        Array.iteri
          (fun i a ->
            let b =
              match a with
              | Term.Atom "true" -> true
              | Term.Atom "false" -> false
              | Term.Var v -> List.assoc v env
              | _ -> false
            in
            if b then row := !row lor (1 lsl i))
          args;
        Bf.add f !row
    | v :: rest ->
        assign ((v, true) :: env) rest;
        assign ((v, false) :: env) rest
  in
  assign [] vars

let bf_of_answers arity (answers : Term.t list) : Bf.t =
  let f = Bf.bottom arity in
  List.iter (add_answer_rows f) answers;
  f

let mode_char = function
  | Term.Atom "true" -> 'g'
  | Term.Atom "false" -> 'n'
  | _ -> '?'

let pattern_of_call (call : Term.t) : string =
  Term.args_of call |> Array.to_seq |> Seq.map mode_char |> String.of_seq

(* Preprocessing shared by the scratch and incremental paths: transform
   + load into the clause store. *)
let prepare ~mode ~guard clauses =
  let abstract, preds, max_iff = Transform.program clauses in
  let db = Database.create ~mode () in
  Database.load_clauses db abstract;
  let e = Engine.create ~guard db in
  Iff.register e ~max_arity:max_iff;
  (abstract, preds, e)

(* The evaluation-phase demand: an open call on every abstracted
   predicate, in predicate order. *)
let open_goal (name, arity) =
  Term.mk (Transform.prefix ^ name)
    (Array.init arity (fun _ -> Term.fresh_var ()))

(* Collection shared by both paths: combine answers per predicate. *)
let collect_results e status preds =
  List.map
    (fun (name, arity) ->
      let gp = (Transform.prefix ^ name, arity) in
      let unexplored =
        (* a partial run may have tripped before this predicate's
           open call even created a table entry; its answer table
           is then empty because nothing was derived, not because
           the predicate fails — degrade to top, not bottom *)
        Guard.is_partial status && Engine.calls_for e gp = []
      in
      let answers = Engine.answers_for e gp in
      let success =
        if unexplored then Bf.top arity else bf_of_answers arity answers
      in
      let never = Bf.is_empty success in
      let definite = Bf.definite success in
      let call_patterns =
        Engine.calls_for e gp |> List.map pattern_of_call
        |> List.sort_uniq compare
      in
      { pred = (name, arity); success; definite; never_succeeds = never;
        call_patterns })
    preds

(** Run the analysis on already-parsed clauses (so callers can time
    parsing separately if they wish). *)
let analyze_clauses ?(mode = Database.Dynamic) ?(guard = Guard.unlimited)
    (clauses : Parser.clause list) : report =
  let phases, (abstract, _, e), status, results =
    Analysis.phased ~timers:(t_preprocess, t_evaluate, t_collect)
      ~pre:(fun () -> prepare ~mode ~guard clauses)
      (* analysis: open call on every abstracted predicate.  Budgets are
         sticky, so after an exhaustion the remaining predicates degrade
         immediately instead of each burning a full budget. *)
      ~eval:(fun (_, preds, e) ->
        List.fold_left
          (fun acc p ->
            Guard.combine acc (Engine.run_status e (open_goal p) (fun _ -> ())))
          Guard.Complete preds)
      ~collect:(fun (_, preds, e) status -> collect_results e status preds)
      ()
  in
  {
    results;
    phases;
    table_bytes = Engine.table_space_bytes e;
    engine_stats = Engine.stats e;
    clause_count = List.length abstract;
    status;
  }

(** Edit-aware variant: same phases, but the evaluation consults a
    per-SCC fragment cache — unchanged cones splice their tables back
    instead of recomputing (docs/INCREMENTAL.md).  The report is
    byte-identical to {!analyze_clauses} on the same source. *)
let analyze_clauses_incr ~cache ?(mode = Database.Dynamic)
    ?(guard = Guard.unlimited) (clauses : Parser.clause list) : report =
  let phases, (abstract, _, e), (status, _), results =
    Analysis.phased ~timers:(t_preprocess, t_evaluate, t_collect)
      ~pre:(fun () -> prepare ~mode ~guard clauses)
      ~eval:(fun (abstract, preds, e) ->
        Prax_incr.Incr.run_tabled ~cache ~table_class:"prop" ~engine:e
          ~clauses:abstract
          ~goals:(List.map open_goal preds)
          ())
      ~collect:(fun (_, preds, e) (status, _) -> collect_results e status preds)
      ()
  in
  {
    results;
    phases;
    table_bytes = Engine.table_space_bytes e;
    engine_stats = Engine.stats e;
    clause_count = List.length abstract;
    status;
  }

(** Full pipeline from source text; parse time is part of preprocessing,
    as in the paper. *)
let analyze ?(mode = Database.Dynamic) ?guard (src : string) : report =
  let t0 = now () in
  let clauses = Metrics.time t_preprocess (fun () -> Parser.parse_clauses src) in
  let t_parse = now () -. t0 in
  let r = analyze_clauses ~mode ?guard clauses in
  { r with phases = Analysis.add_preproc r.phases t_parse }

(** Edit-aware full pipeline; see {!analyze_clauses_incr}. *)
let analyze_incr ~cache ?(mode = Database.Dynamic) ?guard (src : string) :
    report =
  let t0 = now () in
  let clauses = Metrics.time t_preprocess (fun () -> Parser.parse_clauses src) in
  let t_parse = now () -. t0 in
  let r = analyze_clauses_incr ~cache ~mode ?guard clauses in
  { r with phases = Analysis.add_preproc r.phases t_parse }

(** Plain compilation time of the source (parse + load), the baseline for
    the paper's "compile time increase" column. *)
let compile_time ?(mode = Database.Compiled) (src : string) : float =
  let t0 = now () in
  let db = Database.create ~mode () in
  ignore (Database.load_string db src);
  now () -. t0

(* --- reporting ---------------------------------------------------------- *)

let result_to_string (r : pred_result) : string =
  let name, arity = r.pred in
  let args = List.init arity (fun i -> Printf.sprintf "A%d" (i + 1)) in
  let formula =
    if r.never_succeeds then "unreachable"
    else Qm.to_string ~names:(fun i -> List.nth args i) r.success
  in
  let definite =
    if r.never_succeeds then "-"
    else
      String.concat ""
        (List.init arity (fun i -> if r.definite.(i) then "g" else "?"))
  in
  Printf.sprintf "%s/%d: success=%s definite=%s calls={%s}" name arity formula
    definite
    (String.concat "," r.call_patterns)

let report_to_string (rep : report) : string =
  String.concat "\n" (List.map result_to_string rep.results)
