lib/prop/bf.ml: Array Bytes Char Hashtbl Int List
