test/test_depthk.mli:
