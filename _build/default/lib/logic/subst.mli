(** Persistent substitutions: maps from variable ids to terms,
    dereferenced lazily.  Persistence is what makes the
    continuation-passing engines trivially backtrackable — no trail is
    needed. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val walk : t -> Term.t -> Term.t
(** Follow variable bindings at the top of the term until reaching a
    non-variable or an unbound variable.  Does not descend into
    structures. *)

val bind : t -> int -> Term.t -> t
(** [bind s i t] binds variable [i] to [t].  The caller must ensure [i]
    is unbound in [s]. *)

val resolve : t -> Term.t -> Term.t
(** Fully apply the substitution, producing a term whose only variables
    are unbound ones. *)

val free_vars : t -> Term.t -> int list
val is_ground_under : t -> Term.t -> bool

val occurs_check : t -> int -> Term.t -> bool
(** Does the variable occur in the term under the substitution? *)
