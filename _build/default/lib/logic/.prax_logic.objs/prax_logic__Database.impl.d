lib/logic/database.ml: Array Hashtbl Int List Ops Option Parser String Subst Term Unify Vec
