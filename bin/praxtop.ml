(* praxtop — an interactive top level for the tabled engine: consult
   programs, pose queries, and inspect the tables, in the spirit of an
   XSB session.

     dune exec bin/praxtop.exe [file.pl ...]

   Commands:
     ?- goal.            solve goal with the tabled engine (all answers)
     :- sld goal.        solve with plain SLD resolution (Prolog semantics)
     :- consult 'file'.  load a program file
     :- bench name.      load a corpus benchmark
     :- tables.          dump the call table
     :- stats.           engine statistics
     :- reset.           clear the tables
     :- listing.         predicates currently defined
     :- halt.            leave
   Plain clauses typed at the prompt are asserted. *)

open Prax

type session = { db : Logic.Database.t; mutable engine : Tabling.Engine.t }

let make_session () =
  let db = Logic.Database.create () in
  { db; engine = Tabling.Engine.create db }

(* asserting clauses invalidates completed tables: rebuild the engine *)
let refresh s = s.engine <- Tabling.Engine.create s.db

let consult s src =
  let items = Logic.Parser.parse_program src in
  let count = ref 0 in
  List.iter
    (function
      | Logic.Parser.Clause c ->
          Logic.Database.assertz s.db c;
          incr count
      | Logic.Parser.Directive _ -> ())
    items;
  refresh s;
  Printf.printf "loaded %d clauses\n" !count

let show_solutions s goal =
  let n = ref 0 in
  Tabling.Engine.run s.engine goal (fun subst ->
      incr n;
      print_endline
        ("  " ^ Logic.Pretty.term_to_string (Logic.Canon.canonical subst goal)));
  if !n = 0 then print_endline "no." else Printf.printf "%d answer(s).\n" !n

let show_sld s goal =
  match Logic.Sld.solutions ~limit:50 s.db goal with
  | [] -> print_endline "no."
  | sols ->
      List.iter
        (fun subst ->
          print_endline
            ("  " ^ Logic.Pretty.term_to_string (Logic.Canon.canonical subst goal)))
        sols;
      Printf.printf "%d answer(s) (limit 50).\n" (List.length sols)

let show_tables s =
  let calls = Tabling.Engine.calls s.engine in
  if calls = [] then print_endline "(no tables)"
  else
    List.iter
      (fun c -> print_endline ("  " ^ Logic.Pretty.term_to_string c))
      calls

let show_stats s =
  let st = Tabling.Engine.stats s.engine in
  Printf.printf
    "calls=%d entries=%d answers=%d duplicates=%d resumptions=%d table-bytes=%d\n"
    st.Prax_tabling.Engine.calls st.Prax_tabling.Engine.table_entries
    st.Prax_tabling.Engine.answers st.Prax_tabling.Engine.duplicates
    st.Prax_tabling.Engine.resumptions
    (Tabling.Engine.table_space_bytes s.engine);
  (* process-wide counters accumulated across every engine this session *)
  print_string (Metrics.snapshot_to_human (Metrics.snapshot ()))

let show_stats_json s =
  let g =
    Metrics.gauge ~units:"bytes" ~doc:"call/answer table space estimate"
      "engine.table_space_bytes"
  in
  Metrics.set g (Tabling.Engine.table_space_bytes s.engine);
  print_endline
    (Metrics.json_to_string
       (Metrics.stats_doc ~tool:"praxtop" ~analysis:"session" ~input:"-"
          (Metrics.snapshot ())))

let show_listing s =
  List.iter
    (fun (name, arity) ->
      Printf.printf "  %s/%d (%d clauses)\n" name arity
        (List.length (Logic.Database.clauses_of s.db (name, arity))))
    (Logic.Database.predicates s.db)

exception Quit

let handle_directive s (d : Logic.Term.t) =
  match d with
  | Logic.Term.Atom "halt" -> raise Quit
  | Logic.Term.Atom "tables" -> show_tables s
  | Logic.Term.Atom "stats" -> show_stats s
  | Logic.Term.Struct ("stats", [| Logic.Term.Atom "json" |]) ->
      show_stats_json s
  | Logic.Term.Atom "listing" -> show_listing s
  | Logic.Term.Atom "reset" ->
      refresh s;
      print_endline "tables cleared."
  | Logic.Term.Struct ("sld", [| g |]) -> show_sld s g
  | Logic.Term.Struct ("consult", [| Logic.Term.Atom path |]) -> (
      match In_channel.with_open_text path In_channel.input_all with
      | src -> consult s src
      | exception Sys_error m -> Printf.printf "cannot read %s: %s\n" path m)
  | Logic.Term.Struct ("bench", [| Logic.Term.Atom name |]) -> (
      match Benchdata.Registry.find_logic name with
      | Some b -> consult s b.Benchdata.Registry.source
      | None -> Printf.printf "unknown benchmark %s\n" name)
  | Logic.Term.Struct (("assert" | "assertz"), [| t |]) ->
      (match Logic.Parser.clause_of_term t with
      | Logic.Parser.Clause c ->
          Logic.Database.assertz s.db c;
          refresh s;
          print_endline "asserted."
      | Logic.Parser.Directive _ -> print_endline "cannot assert a directive")
  | g -> show_solutions s g

let handle_line s line =
  let line = String.trim line in
  if line = "" then ()
  else
    match Logic.Parser.parse_program line with
    | items ->
        List.iter
          (function
            | Logic.Parser.Directive d -> handle_directive s d
            | Logic.Parser.Clause { Logic.Parser.head; body = [] } ->
                (* a bare term at the prompt is a query, as in XSB;
                   use :- assert(fact). to add facts *)
                show_solutions s head
            | Logic.Parser.Clause c ->
                (* a rule typed at the prompt is asserted *)
                Logic.Database.assertz s.db c;
                refresh s;
                print_endline "asserted.")
          items
    | exception Logic.Parser.Parse_error m -> Printf.printf "syntax error: %s\n" m
    | exception Logic.Lexer.Lex_error (m, pos) ->
        Printf.printf "lexical error at %d: %s\n" pos m

let () =
  let s = make_session () in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match In_channel.with_open_text arg In_channel.input_all with
        | src -> consult s src
        | exception Sys_error m -> Printf.printf "cannot read %s: %s\n" arg m)
    Sys.argv;
  print_endline
    "praxtop - tabled logic programming top level  (:- halt. to leave)";
  (try
     while true do
       print_string "?- ";
       match In_channel.input_line stdin with
       | None -> raise Quit
       | Some line -> (
           (* allow both "?- g." and plain "g." at the prompt: try as a
              query first when it starts with a goal-looking term *)
           try handle_line s line
           with
           | Prax_logic.Sld.Existence_error (n, a) ->
               Printf.printf "undefined predicate %s/%d\n" n a
           | Prax_logic.Sld.Instantiation_error w ->
               Printf.printf "arguments insufficiently instantiated (%s)\n" w
           | Prax_logic.Sld.Type_error (k, t) ->
               Printf.printf "type error: expected %s in %s\n" k
                 (Logic.Pretty.term_to_string t)
           | Tabling.Engine.Not_definite t ->
               Printf.printf "not a definite goal: %s\n"
                 (Logic.Pretty.term_to_string t))
     done
   with Quit -> print_endline "bye.")
