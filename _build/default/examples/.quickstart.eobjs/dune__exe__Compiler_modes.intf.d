examples/compiler_modes.mli:
