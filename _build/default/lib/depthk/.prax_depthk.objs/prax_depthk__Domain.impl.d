lib/depthk/domain.ml: Array Canon Prax_logic Prax_tabling String Subst Term
