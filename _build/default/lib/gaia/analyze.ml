(** Driver for the GAIA-style analyzer, with the same phase accounting as
    the declarative analyzers so Table 2's comparison is like-for-like. *)

open Prax_logic

module Bitset = Absint.Make (Backend_bitset)
module Bdd_backend = Absint.Make (Backend_bdd)

type pred_result = {
  pred : string * int;  (** source predicate (gp_ prefix stripped) *)
  definite : bool array;
  never_succeeds : bool;
}

type phases = { preproc : float; analysis : float; collection : float }

let total p = p.preproc +. p.analysis +. p.collection

type report = { results : pred_result list; phases : phases }

let now () = Unix.gettimeofday ()

let strip_prefix name =
  let p = Prax_ground.Transform.prefix in
  let pl = String.length p in
  if String.length name > pl && String.equal (String.sub name 0 pl) p then
    String.sub name pl (String.length name - pl)
  else name

module type RUNNER = sig
  type result

  val analyze : Parser.clause list -> result list
  val pred_of : result -> string * int
  val definite_of : result -> bool array
  val empty_of : result -> bool
end

let analyze_gen ?(fold = false) (module M : RUNNER) (src : string) : report =
  let t0 = now () in
  let clauses = Parser.parse_clauses src in
  let abstract, _, _ = Prax_ground.Transform.program clauses in
  let abstract =
    (* the truth-table back-end cannot represent universes beyond ~20
       positions: fold long bodies through supplementary predicates,
       which preserves the minimal model *)
    if fold then Prax_tabling.Supplement.fold_program ~threshold:2 abstract
    else abstract
  in
  let t1 = now () in
  let raw = M.analyze abstract in
  let t2 = now () in
  let results =
    List.map
      (fun r ->
        let name, arity = M.pred_of r in
        {
          pred = (strip_prefix name, arity);
          definite = M.definite_of r;
          never_succeeds = M.empty_of r;
        })
      raw
  in
  let t3 = now () in
  {
    results;
    phases = { preproc = t1 -. t0; analysis = t2 -. t1; collection = t3 -. t2 };
  }

let analyze_bitset (src : string) : report =
  analyze_gen ~fold:true
    (module struct
      type result = Bitset.result

      let analyze = Bitset.analyze
      let pred_of (r : result) = r.Bitset.pred
      let definite_of (r : result) = r.Bitset.definite

      let empty_of (r : result) =
        Prax_prop.Bf.is_empty r.Bitset.success
    end)
    src

let analyze_bdd (src : string) : report =
  analyze_gen
    (module struct
      type result = Bdd_backend.result

      let analyze = Bdd_backend.analyze
      let pred_of (r : result) = r.Bdd_backend.pred
      let definite_of (r : result) = r.Bdd_backend.definite
      let empty_of (r : result) = Prax_bdd.Bdd.is_false r.Bdd_backend.success.Backend_bdd.f
    end)
    src

let result_for (rep : report) p = List.find_opt (fun r -> r.pred = p) rep.results
