test/test_benchdata.ml: Alcotest Array Canon Database Float List Option Parser Prax_benchdata Prax_depthk Prax_gaia Prax_ground Prax_logic Prax_strict Pretty Printf Registry Sld String Subst Term
