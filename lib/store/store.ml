(** Crash-safe persistent snapshot store — see store.mli and
    docs/ROBUSTNESS.md for the protocol and on-disk format. *)

module Metrics = Prax_metrics.Metrics

let m_hits =
  Metrics.counter ~units:"loads" ~doc:"store loads answered by a valid snapshot"
    "store.hits"

let m_misses =
  Metrics.counter ~units:"loads"
    ~doc:"store loads that degraded to recomputation (absent/corrupt/skew)"
    "store.misses"

let m_corrupt =
  Metrics.counter ~units:"snapshots"
    ~doc:"snapshots rejected by integrity checks (magic/header/length/CRC)"
    "store.corrupt_detected"

let m_skew =
  Metrics.counter ~units:"snapshots"
    ~doc:"snapshots rejected for format or stats-schema version mismatch"
    "store.version_skew"

let m_writes =
  Metrics.counter ~units:"snapshots" ~doc:"snapshots written (temp+rename)"
    "store.writes"

let m_tmp_swept =
  Metrics.counter ~units:"files"
    ~doc:"orphaned temp files from crashed writers removed at store open"
    "store.tmp_swept"

let m_write_errors =
  Metrics.counter ~units:"snapshots"
    ~doc:"snapshot writes that failed (ENOSPC, short write, IO error) and \
          were contained: the result stays unpersisted, the caller unaffected"
    "store.write_errors"

let format_version = 1
let magic = "PRAXSNAP"

type key = {
  analysis : string;
  source_digest : string;
  config : string;
  schema_version : int;
}

let digest_source src = Digest.to_hex (Digest.string src)

type t = { root : string }

(* A writer that died between [openfile] and [rename] leaves
   `<name>.snap.tmp.<pid>.<counter>` behind; the snapshot itself is
   intact-or-absent (that is the point of the protocol), but the temp
   files accumulate forever.  Opening the store sweeps them — except
   those whose writer pid is still alive, which may be a concurrent
   saver mid-write. *)
let writer_alive pid =
  if pid = Unix.getpid () then true
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) ->
        (* EPERM: exists but not ours — alive *)
        true

(* The sweep recurses: the incremental layer keeps per-SCC fragment
   snapshots in subdirectories (root/incr/<analysis>/), written with the
   same temp-file protocol, so their orphans must be collected too. *)
let rec sweep_tmp root =
  match Sys.readdir root with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun name ->
          let path = Filename.concat root name in
          if try Sys.is_directory path with Sys_error _ -> false then
            sweep_tmp path
          else
          let marker = ".snap.tmp." in
          match
            (* name = <base>.snap.tmp.<pid>.<counter> *)
            let rec find i =
              if i + String.length marker > String.length name then None
              else if String.sub name i (String.length marker) = marker then
                Some (i + String.length marker)
              else find (i + 1)
            in
            find 0
          with
          | None -> ()
          | Some rest_at -> (
              let rest =
                String.sub name rest_at (String.length name - rest_at)
              in
              match String.split_on_char '.' rest with
              | [ pid_s; _counter ] -> (
                  match int_of_string_opt pid_s with
                  | Some pid when not (writer_alive pid) -> (
                      match Unix.unlink (Filename.concat root name) with
                      | () -> Metrics.incr m_tmp_swept
                      | exception Unix.Unix_error _ -> ())
                  | _ -> ())
              | _ -> ()))
        entries

let open_dir root =
  (if Sys.file_exists root then begin
     if not (Sys.is_directory root) then
       raise (Sys_error (root ^ ": not a directory"))
   end
   else
     try Unix.mkdir root 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  sweep_tmp root;
  { root }

let sub t name =
  if
    name = "" || name = "." || name = ".."
    || String.exists (fun c -> c = '/' || c = '\\' || c = '\x00') name
  then invalid_arg (Printf.sprintf "Store.sub: bad component %S" name);
  let root = Filename.concat t.root name in
  (if Sys.file_exists root then begin
     if not (Sys.is_directory root) then
       raise (Sys_error (root ^ ": not a directory"))
   end
   else
     try Unix.mkdir root 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* no sweep: the parent's recursive open-time sweep covered it, and
     [sub] is called per analysis run — scanning would be O(cache) *)
  { root }

let dir t = t.root

(* One file per key; the name folds the whole key so distinct
   configurations of the same source never collide, with a readable
   analysis prefix for operators listing the directory. *)
let path_of t (k : key) =
  let id =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            [ k.analysis; k.source_digest; k.config;
              string_of_int k.schema_version ]))
  in
  Filename.concat t.root (Printf.sprintf "%s-%s.snap" k.analysis id)

type load_error =
  | Absent
  | Corrupt of string
  | Version_skew of string
  | Key_mismatch

let load_error_to_string = function
  | Absent -> "absent"
  | Corrupt what -> "corrupt: " ^ what
  | Version_skew what -> "version-skew: " ^ what
  | Key_mismatch -> "key-mismatch"

(* --- encoding ----------------------------------------------------------- *)

(* Header lines are ASCII `field=value\n`; [config] is the only
   caller-supplied field and the key type forbids newlines in it, but a
   hostile value must corrupt only its own snapshot, so reject rather
   than silently mangle. *)
let check_no_newline what v =
  if String.contains v '\n' then
    invalid_arg (Printf.sprintf "Store: %s must not contain newlines" what)

let encode (k : key) (payload : string) : string =
  check_no_newline "key.analysis" k.analysis;
  check_no_newline "key.source_digest" k.source_digest;
  check_no_newline "key.config" k.config;
  let body =
    Printf.sprintf "%s %d\nanalysis=%s\nsource=%s\nconfig=%s\nschema=%d\nlen=%d\n%s"
      magic format_version k.analysis k.source_digest k.config k.schema_version
      (String.length payload) payload
  in
  body ^ Printf.sprintf "\ncrc32=%s\n" (Crc32.to_hex (Crc32.string_ body))

(* Strict decoder: every departure from the format is classified as
   [Corrupt] (structure damaged) or [Version_skew] (structure fine,
   wrong era).  The CRC is checked before trusting any field other than
   the trailer position itself. *)
let decode (k : key) (raw : string) : (string, load_error) result =
  let n = String.length raw in
  (* trailer: "\ncrc32=XXXXXXXX\n" = 16 bytes *)
  let trailer_len = 16 in
  if n < trailer_len then Error (Corrupt "truncated (no trailer)")
  else
    let body_len = n - trailer_len in
    let trailer = String.sub raw body_len trailer_len in
    if
      not
        (String.length trailer = trailer_len
        && String.sub trailer 0 7 = "\ncrc32="
        && trailer.[trailer_len - 1] = '\n')
    then Error (Corrupt "malformed trailer")
    else
      let stored_crc = String.sub trailer 7 8 in
      let actual_crc = Crc32.to_hex (Crc32.update 0l raw 0 body_len) in
      if not (String.equal stored_crc actual_crc) then
        Error
          (Corrupt
             (Printf.sprintf "crc mismatch (stored %s, computed %s)" stored_crc
                actual_crc))
      else
        (* CRC holds: the header bytes are authentic, parse them. *)
        let body = String.sub raw 0 body_len in
        let line_end from =
          match String.index_from_opt body from '\n' with
          | Some i -> i
          | None -> raise Exit
        in
        let field from name =
          let i = line_end from in
          let line = String.sub body from (i - from) in
          let prefix = name ^ "=" in
          if String.starts_with ~prefix line then
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix),
             i + 1)
          else raise Exit
        in
        match
          let i0 = line_end 0 in
          let first = String.sub body 0 i0 in
          (match String.split_on_char ' ' first with
          | [ m; v ] when String.equal m magic -> (
              match int_of_string_opt v with
              | Some fv when fv = format_version -> ()
              | Some fv ->
                  raise
                    (Failure (Printf.sprintf "container format v%d (expected v%d)" fv format_version))
              | None -> raise Exit)
          | _ -> raise Exit);
          let analysis, p = field (i0 + 1) "analysis" in
          let source, p = field p "source" in
          let config, p = field p "config" in
          let schema_s, p = field p "schema" in
          let len_s, p = field p "len" in
          let schema =
            match int_of_string_opt schema_s with
            | Some v -> v
            | None -> raise Exit
          in
          let len =
            match int_of_string_opt len_s with
            | Some v when v >= 0 -> v
            | _ -> raise Exit
          in
          if p + len <> body_len then raise Exit;
          let payload = String.sub body p len in
          ({ analysis; source_digest = source; config; schema_version = schema },
           payload)
        with
        | exception Exit -> Error (Corrupt "malformed header")
        | exception Failure what -> Error (Version_skew what)
        | stored, payload ->
            if stored.schema_version <> k.schema_version then
              Error
                (Version_skew
                   (Printf.sprintf "stats schema v%d (expected v%d)"
                      stored.schema_version k.schema_version))
            else if
              String.equal stored.analysis k.analysis
              && String.equal stored.source_digest k.source_digest
              && String.equal stored.config k.config
            then Ok payload
            else Error Key_mismatch

(* --- public operations --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_result t (k : key) : (string, load_error) result =
  let path = path_of t k in
  let result =
    match read_file path with
    | exception Sys_error _ -> Error Absent
    | raw -> decode k raw
  in
  (match result with
  | Ok _ -> Metrics.incr m_hits
  | Error e ->
      Metrics.incr m_misses;
      (match e with
      | Corrupt _ -> Metrics.incr m_corrupt
      | Version_skew _ -> Metrics.incr m_skew
      | Absent | Key_mismatch -> ()));
  result

let load t k = match load_result t k with Ok p -> Some p | Error _ -> None

let tmp_counter = ref 0

(* Fault injection for the chaos harness (docs/ROBUSTNESS.md): arm a
   one-shot write fault and the next [save] fails as if the disk did —
   [Enospc] before any payload byte lands, [Short_write] after half of
   them.  Armed by the daemon's chaos plan; a store fault must degrade
   to "result not persisted", never to a crashed caller or a published
   torn snapshot. *)
type write_fault = Fault_enospc | Fault_short_write

let armed_fault : write_fault option ref = ref None
let arm_write_fault f = armed_fault := Some f
let take_fault () =
  let f = !armed_fault in
  armed_fault := None;
  f

exception Injected of write_fault

let save_result t (k : key) (payload : string) : (unit, string) result =
  let data = encode k payload in
  let path = path_of t k in
  incr tmp_counter;
  (* unique per process *and* per call: concurrent savers never share a
     temp file, and the only shared operation is the atomic rename *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_counter
  in
  let fault = take_fault () in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match fault with Some Fault_enospc -> raise (Injected Fault_enospc) | _ -> ());
        let n = String.length data in
        let limit =
          match fault with Some Fault_short_write -> n / 2 | _ -> n
        in
        let written = ref 0 in
        while !written < limit do
          written :=
            !written + Unix.write_substring fd data !written (limit - !written)
        done;
        (match fault with
        | Some Fault_short_write -> raise (Injected Fault_short_write)
        | _ -> ());
        (* durability point: the payload is on disk before the rename
           publishes it, so a crash can leave a stale or absent snapshot
           but never a published half-written one *)
        Unix.fsync fd);
    Unix.rename tmp path
  with
  | () ->
      (* complete the durability chain: the rename itself must reach the
         directory inode, or a power cut after an acknowledged save could
         resurrect the old snapshot (or none).  Directory fsync support
         varies by platform/filesystem, so failure here downgrades to the
         pre-fsync guarantee instead of failing the save. *)
      (try
         let dfd = Unix.openfile t.root [ Unix.O_RDONLY ] 0 in
         Fun.protect
           ~finally:(fun () ->
             try Unix.close dfd with Unix.Unix_error _ -> ())
           (fun () -> Unix.fsync dfd)
       with Unix.Unix_error _ -> ());
      Metrics.incr m_writes;
      Ok ()
  | exception ((Unix.Unix_error _ | Sys_error _ | Injected _) as exn) ->
      (* containment: a failed write leaves no torn published snapshot
         (the rename never ran) and no stranded temp *)
      (try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Metrics.incr m_write_errors;
      Error
        (match exn with
        | Unix.Unix_error (e, _, _) -> Unix.error_message e
        | Injected Fault_enospc -> "injected ENOSPC"
        | Injected Fault_short_write -> "injected short write"
        | Sys_error m -> m
        | _ -> "write failed")

let save t (k : key) (payload : string) : unit =
  match save_result t k payload with Ok () | Error _ -> ()
