(** The shipped analyses, registered into {!Prax_analysis.Analysis}'s
    process-wide registry.

    Registration happens at module initialization, but the OCaml linker
    drops libraries nothing references — so every front-end calls
    {!ensure} (a cheap no-op beyond forcing this module) before its
    first registry lookup.  Registration order is meaningful:
    [Analysis.claiming_extension] awards an extension to the first
    registrant, so [.pl] defaults to groundness even though depth-k and
    gaia accept it too. *)

module Analysis = Prax_analysis.Analysis

let () =
  Analysis.register Prax_ground.Analysis_def.def;
  Analysis.register Prax_strict.Analysis_def.def;
  Analysis.register Prax_depthk.Analysis_def.def;
  Analysis.register Prax_gaia.Analysis_def.def;
  Analysis.register Prax_dataflow.Analysis_def.def

(** Force registration of the shipped analyses (idempotent). *)
let ensure () = ()
