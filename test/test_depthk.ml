(* Tests for the depth-k abstract domain and analyzer: abstract
   unification with γ, truncation, termination on programs plain tabling
   would diverge on (integer counters), and soundness of definite
   groundness against concrete execution. *)

open Prax_logic
open Prax_depthk

let parse = Parser.parse_term
let show = Pretty.term_to_string

let aunify s1 s2 =
  Domain.unify Subst.empty (parse s1) (parse s2)

(* --- abstract unification -------------------------------------------------- *)

let test_gamma_unifies_ground () =
  (match Domain.unify Subst.empty Domain.gamma (parse "f(a, b)") with
  | Some _ -> ()
  | None -> Alcotest.fail "gamma ~ ground struct");
  match Domain.unify Subst.empty Domain.gamma (Term.int 3) with
  | Some _ -> ()
  | None -> Alcotest.fail "gamma ~ int"

let test_gamma_grounds_variables () =
  let x = Term.fresh_var () in
  let t = Term.mk "f" [| x; Term.atom "a" |] in
  match Domain.unify Subst.empty Domain.gamma t with
  | Some s ->
      Alcotest.(check string) "var bound to gamma" "'$gamma'"
        (show (Subst.resolve s x))
  | None -> Alcotest.fail "gamma ~ f(X, a) must succeed"

let test_gamma_gamma () =
  match Domain.unify Subst.empty Domain.gamma Domain.gamma with
  | Some _ -> ()
  | None -> Alcotest.fail "gamma ~ gamma"

let test_abstract_clash () =
  Alcotest.(check bool) "f/1 vs g/1" true (aunify "f(a)" "g(a)" = None);
  Alcotest.(check bool) "arity" true (aunify "f(a)" "f(a,b)" = None)

let test_abstract_occur_check () =
  let x = Term.fresh_var () in
  let fx = Term.mk "f" [| x |] in
  Alcotest.(check bool) "occur check" true
    (Domain.unify Subst.empty x fx = None)

let test_a_ground () =
  Alcotest.(check bool) "gamma ground" true (Domain.a_ground Domain.gamma);
  Alcotest.(check bool) "struct with gamma ground" true
    (Domain.a_ground (parse "f('$gamma', a)"));
  Alcotest.(check bool) "var not ground" false
    (Domain.a_ground (Term.fresh_var ()))

(* --- truncation -------------------------------------------------------------- *)

let test_truncate_depth () =
  let t = parse "f(g(h(a)), X)" in
  let tr = Domain.truncate ~k:2 t in
  (* h(a) sits at depth 2: ground, so it becomes gamma *)
  Alcotest.(check string) "ground subterm -> gamma" "f(g('$gamma'),A)"
    (show (Canon.of_term tr))

let test_truncate_nonground_becomes_var () =
  let t = parse "f(g(h(X)))" in
  let tr = Domain.truncate ~k:2 t in
  match Canon.of_term tr with
  | Term.Struct ("f", [| Term.Struct ("g", [| Term.Var _ |], _) |], _) -> ()
  | t' -> Alcotest.failf "expected f(g(Var)), got %s" (show t')

let test_truncate_shallow_unchanged () =
  let t = parse "f(a, X)" in
  Alcotest.(check bool) "within depth untouched" true
    (Term.equal (Domain.truncate ~k:2 t) t)

let test_truncate_bounds_depth () =
  let deep = parse "f(g(h(i(j(k(a))))))" in
  Alcotest.(check bool) "depth bounded" true
    (Term.depth (Domain.truncate ~k:3 deep) <= 4)

(* --- analysis ------------------------------------------------------------------ *)

let test_append_depthk () =
  let rep =
    Analyze.analyze ~k:2
      "ap([], Ys, Ys). ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).\n\
       main(R) :- ap([a,b,c], [d], R)."
  in
  let main = Option.get (Analyze.result_for rep ("main", 1)) in
  Alcotest.(check (array bool)) "main ground" [| true |] main.Analyze.definite;
  let ap = Option.get (Analyze.result_for rep ("ap", 3)) in
  Alcotest.(check (array bool)) "ap open" [| false; false; false |]
    ap.Analyze.definite

let test_counter_terminates () =
  (* is/2 widened to gamma: the unbounded counter converges *)
  let rep =
    Analyze.analyze ~k:2
      "count(N) :- N1 is N + 1, count(N1). start :- count(0)."
  in
  let c = Option.get (Analyze.result_for rep ("count", 1)) in
  Alcotest.(check bool) "no success (infinite loop)" true c.Analyze.never_succeeds

let test_arith_grounds () =
  let rep = Analyze.analyze ~k:2 "inc(X, Y) :- Y is X + 1." in
  let r = Option.get (Analyze.result_for rep ("inc", 2)) in
  Alcotest.(check (array bool)) "both ground" [| true; true |]
    r.Analyze.definite

let test_structure_tracked () =
  (* depth-k keeps structure Prop cannot: the result is a cons cell with
     ground head even though the tail is unknown *)
  let rep =
    Analyze.analyze ~k:2 "mk([a|T]) :- tail(T). tail([]). tail([b])."
  in
  let r = Option.get (Analyze.result_for rep ("mk", 1)) in
  Alcotest.(check bool) "some pattern mentions cons of a" true
    (List.exists
       (fun a ->
         match Term.args_of a with
         | [| Term.Struct (".", [| Term.Atom "a"; _ |], _) |] -> true
         | _ -> false)
       r.Analyze.answers)

let test_partial_instantiation_not_claimed () =
  let rep = Analyze.analyze ~k:2 "p(f(X))." in
  let r = Option.get (Analyze.result_for rep ("p", 1)) in
  Alcotest.(check (array bool)) "f(X) not ground" [| false |] r.Analyze.definite

let test_k1_coarser_than_k2 () =
  let src =
    "ap([], Ys, Ys). ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).\n\
     main(R) :- ap([a,b], [c], R)."
  in
  let r1 = Analyze.analyze ~k:1 src in
  let r2 = Analyze.analyze ~k:2 src in
  let entries rep = rep.Analyze.engine_stats.Prax_tabling.Engine.table_entries in
  Alcotest.(check bool) "k=1 uses fewer or equal table entries" true
    (entries r1 <= entries r2);
  (* and both soundly report main ground *)
  List.iter
    (fun rep ->
      let m = Option.get (Analyze.result_for rep ("main", 1)) in
      Alcotest.(check bool) "main ground" true m.Analyze.definite.(0))
    [ r1; r2 ]

(* soundness: depth-k definite groundness holds on concrete runs *)
let test_soundness_on_concrete_runs () =
  let cases =
    [
      ("rev([],A,A). rev([H|T],A,R) :- rev(T,[H|A],R).\n\
        top(X) :- rev([a,b,c],[],X).", "top", 1, "top(X)");
      ("len([],0). len([_|T],N) :- len(T,M), N is M + 1.", "len", 2,
       "len([a,b],N)");
    ]
  in
  List.iter
    (fun (src, pname, arity, query) ->
      let rep = Analyze.analyze ~k:2 src in
      let r = Option.get (Analyze.result_for rep (pname, arity)) in
      let db = Database.create () in
      ignore (Database.load_string db src);
      let goal = parse query in
      List.iter
        (fun s ->
          Array.iteri
            (fun i arg ->
              if r.Analyze.definite.(i) then
                Alcotest.(check bool)
                  (Printf.sprintf "%s arg %d ground" pname (i + 1))
                  true
                  (Subst.is_ground_under s arg))
            (Term.args_of goal))
        (Sld.solutions db goal))
    cases

(* agreement with Prop groundness: on the corpus, depth-k's definite set
   and Prop's definite set are both sound, and depth-k refines Prop on
   top-level-ground patterns; check they never contradict concrete runs
   and that both mark the *_top predicates consistently *)
let test_corpus_runs () =
  List.iter
    (fun name ->
      let b = Option.get (Prax_benchdata.Registry.find_logic name) in
      let rep = Analyze.analyze ~k:1 b.Prax_benchdata.Registry.source in
      Alcotest.(check bool)
        (name ^ " produced results")
        true
        (rep.Analyze.results <> []))
    [ "qsort"; "queens"; "pg"; "plan"; "disj"; "cs"; "peep" ]

let () =
  Alcotest.run "prax_depthk"
    [
      ( "abstract unification",
        [
          Alcotest.test_case "gamma vs ground" `Quick test_gamma_unifies_ground;
          Alcotest.test_case "gamma grounds vars" `Quick
            test_gamma_grounds_variables;
          Alcotest.test_case "gamma gamma" `Quick test_gamma_gamma;
          Alcotest.test_case "clash" `Quick test_abstract_clash;
          Alcotest.test_case "occur check" `Quick test_abstract_occur_check;
          Alcotest.test_case "abstract groundness" `Quick test_a_ground;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "ground to gamma" `Quick test_truncate_depth;
          Alcotest.test_case "open to var" `Quick
            test_truncate_nonground_becomes_var;
          Alcotest.test_case "shallow unchanged" `Quick
            test_truncate_shallow_unchanged;
          Alcotest.test_case "depth bounded" `Quick test_truncate_bounds_depth;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "append" `Quick test_append_depthk;
          Alcotest.test_case "counter terminates" `Quick test_counter_terminates;
          Alcotest.test_case "arithmetic" `Quick test_arith_grounds;
          Alcotest.test_case "structure tracked" `Quick test_structure_tracked;
          Alcotest.test_case "partial instantiation" `Quick
            test_partial_instantiation_not_claimed;
          Alcotest.test_case "k sweep" `Quick test_k1_coarser_than_k2;
          Alcotest.test_case "soundness" `Quick test_soundness_on_concrete_runs;
          Alcotest.test_case "corpus subset" `Slow test_corpus_runs;
        ] );
    ]
