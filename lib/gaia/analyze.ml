(** Driver for the GAIA-style analyzer, with the same phase accounting as
    the declarative analyzers so Table 2's comparison is like-for-like. *)

open Prax_logic
module Analysis = Prax_analysis.Analysis
module Bitset = Absint.Make (Backend_bitset)
module Bdd_backend = Absint.Make (Backend_bdd)

type pred_result = {
  pred : string * int;  (** source predicate (gp_ prefix stripped) *)
  definite : bool array;
  never_succeeds : bool;
}

(* The shared Table-style phase record, re-exported so existing callers
   keep their [Analyze.phases] spelling (the definition now lives in
   prax.analysis, one copy for all drivers). *)
type phases = Analysis.phases = {
  preproc : float;
  analysis : float;
  collection : float;
}

let total = Analysis.total

type report = {
  results : pred_result list;
  phases : phases;
  clause_count : int;  (** size of the abstract program analyzed *)
}

(* monotonic, same clock as the Metrics timers (docs/ANALYSES.md) *)
let now = Analysis.now

(* Phase timers mirroring the Table 2 comparison columns
   (docs/METRICS.md). *)
let timers = Analysis.phase_timers ~doc:"gaia" "gaia"

let strip_prefix name =
  let p = Prax_ground.Transform.prefix in
  let pl = String.length p in
  if String.length name > pl && String.equal (String.sub name 0 pl) p then
    String.sub name pl (String.length name - pl)
  else name

module type RUNNER = sig
  type result

  val analyze : Parser.clause list -> result list
  val pred_of : result -> string * int
  val definite_of : result -> bool array
  val empty_of : result -> bool
end

let analyze_gen ?(fold = false) (module M : RUNNER) (src : string) : report =
  let phases, abstract, _, results =
    Analysis.phased ~timers
      ~pre:(fun () ->
        let clauses = Parser.parse_clauses src in
        let abstract, _, _ = Prax_ground.Transform.program clauses in
        (* the truth-table back-end cannot represent universes beyond
           ~20 positions: fold long bodies through supplementary
           predicates, which preserves the minimal model *)
        if fold then Prax_tabling.Supplement.fold_program ~threshold:2 abstract
        else abstract)
      ~eval:(fun abstract -> M.analyze abstract)
      ~collect:(fun _ raw ->
        List.map
          (fun r ->
            let name, arity = M.pred_of r in
            {
              pred = (strip_prefix name, arity);
              definite = M.definite_of r;
              never_succeeds = M.empty_of r;
            })
          raw)
      ()
  in
  { results; phases; clause_count = List.length abstract }

let analyze_bitset (src : string) : report =
  analyze_gen ~fold:true
    (module struct
      type result = Bitset.result

      let analyze = Bitset.analyze
      let pred_of (r : result) = r.Bitset.pred
      let definite_of (r : result) = r.Bitset.definite

      let empty_of (r : result) =
        Prax_prop.Bf.is_empty r.Bitset.success
    end)
    src

let analyze_bdd (src : string) : report =
  analyze_gen
    (module struct
      type result = Bdd_backend.result

      let analyze = Bdd_backend.analyze
      let pred_of (r : result) = r.Bdd_backend.pred
      let definite_of (r : result) = r.Bdd_backend.definite
      let empty_of (r : result) = Prax_bdd.Bdd.is_false r.Bdd_backend.success.Backend_bdd.f
    end)
    src

let result_for (rep : report) p = List.find_opt (fun r -> r.pred = p) rep.results
