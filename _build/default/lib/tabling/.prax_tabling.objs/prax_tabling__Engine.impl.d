lib/tabling/engine.ml: Array Canon Database Fun Hashtbl List Option Prax_logic Sld String Subst Term Unify Vec
