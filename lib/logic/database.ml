(** Clause database with two storage modes, modelling the paper's central
    preprocessing trade-off:

    - [Dynamic]: clauses are asserted as-is and matched interpretively
      (XSB's [assert] + [call/1] route — cheap preprocessing, slower
      resolution);
    - [Compiled]: at load time each clause's head is compiled into a
      closure-chain matcher with preallocated variable slots, and the
      predicate gets a first-argument index (the "full compilation" route
      — expensive preprocessing, faster resolution).

    Clauses are canonicalized at insertion so their variables are
    [0..nvars-1]; activation renames them into globally fresh variables
    either interpretively (dynamic) or through a slot array (compiled). *)

type mode = Dynamic | Compiled

type pred = string * int

(* First-argument index key.  Names are interned to symbol ids, so key
   hashing and equality are integer operations — no string traversal on
   the per-resolution lookup path. *)
type key = KInt of int | KAtom of Symbol.t | KStruct of Symbol.t * int

let key_of_term (t : Term.t) : key option =
  match t with
  | Term.Int i -> Some (KInt i)
  | Term.Atom a -> Some (KAtom (Symbol.intern a))
  | Term.Struct (f, args, _) -> Some (KStruct (Symbol.intern f, Array.length args))
  | Term.Var _ -> None

(** A head-argument matcher produced by compilation: matches a goal
    argument against the clause pattern, binding clause variables through
    the activation's slot array. *)
type matcher = Term.t array -> Subst.t -> Term.t -> Subst.t option

type cclause = {
  nvars : int;
  head : Term.t;  (** canonicalized: variables are 0..nvars-1 *)
  body : Term.t list;
  matchers : matcher array option;  (** one per head argument, if compiled *)
  source_pos : int;  (** for stable clause order in merged index lookups *)
}

type pred_entry = {
  clauses : cclause Vec.t;
  mutable index : (key, int list) Hashtbl.t option;
      (** clause positions per key, in reverse source order *)
  mutable unindexed : int list;  (** positions of var-first-arg clauses, reversed *)
}

type t = {
  mode : mode;
  preds : (pred, pred_entry) Hashtbl.t;
  ops : Ops.table;
  mutable clause_count : int;
}

let create ?(mode = Dynamic) () =
  { mode; preds = Hashtbl.create 64; ops = Ops.create (); clause_count = 0 }

let entry_for db p =
  match Hashtbl.find_opt db.preds p with
  | Some e -> e
  | None ->
      let e = { clauses = Vec.create (); index = None; unindexed = [] } in
      Hashtbl.add db.preds p e;
      e

let defined db p = Hashtbl.mem db.preds p

let predicates db =
  Hashtbl.fold (fun p _ acc -> p :: acc) db.preds []
  |> List.sort compare

(* --- head compilation ------------------------------------------------- *)

(* Compile a pattern into a matcher.  [seen] tracks clause variables whose
   first occurrence has already been compiled: first occurrences bind the
   slot's fresh variable directly (no unification needed when the goal
   side is arbitrary); later occurrences unify. *)
let rec compile_pattern seen (pat : Term.t) : matcher =
  match pat with
  | Term.Var i ->
      if Hashtbl.mem seen i then fun slots s goal ->
        Unify.unify s slots.(i) goal
      else begin
        Hashtbl.add seen i ();
        (* First occurrence: the slot holds a fresh, unbound variable, so
           a full unification always succeeds by binding it — bind it
           directly.  Guard only against the goal dereferencing to that
           same variable (binding a variable to itself would loop). *)
        fun slots s goal ->
          match slots.(i) with
          | Term.Var v -> (
              match Subst.walk s goal with
              | Term.Var w when w = v -> Some s
              | g -> Some (Subst.bind s v g))
          | _ -> Unify.unify s slots.(i) goal
      end
  | Term.Int n ->
      fun _ s goal -> (
        match Subst.walk s goal with
        | Term.Int m when m = n -> Some s
        | Term.Var v -> Some (Subst.bind s v pat)
        | _ -> None)
  | Term.Atom a ->
      fun _ s goal -> (
        match Subst.walk s goal with
        | Term.Atom b when String.equal a b -> Some s
        | Term.Var v -> Some (Subst.bind s v pat)
        | _ -> None)
  | Term.Struct (f, args, _) ->
      let n = Array.length args in
      let subs = Array.map (compile_pattern seen) args in
      fun slots s goal -> (
        match Subst.walk s goal with
        | Term.Struct (g, gargs, _)
          when String.equal f g && Array.length gargs = n ->
            let rec go s i =
              if i >= n then Some s
              else
                match subs.(i) slots s gargs.(i) with
                | Some s' -> go s' (i + 1)
                | None -> None
            in
            go s 0
        | Term.Var v ->
            (* goal side unbound: build the instance through the slots *)
            let inst = Term.map_vars (fun i -> slots.(i)) pat in
            Some (Subst.bind s v inst)
        | _ -> None)

(* Canonicalize a clause so variables are 0..nvars-1. *)
let canonicalize_clause (c : Parser.clause) : int * Term.t * Term.t list =
  let tbl = Hashtbl.create 8 in
  let next = ref 0 in
  let remap t =
    Term.map_vars
      (fun i ->
        match Hashtbl.find_opt tbl i with
        | Some v -> v
        | None ->
            let v = Term.var !next in
            incr next;
            Hashtbl.add tbl i v;
            v)
      t
  in
  let head = remap c.Parser.head in
  let body = List.map remap c.Parser.body in
  (!next, head, body)

let assertz db (c : Parser.clause) =
  let p =
    match Term.functor_of c.Parser.head with
    | Some p -> p
    | None -> invalid_arg "Database.assertz: head is not callable"
  in
  let nvars, head, body = canonicalize_clause c in
  let matchers =
    match db.mode with
    | Dynamic -> None
    | Compiled ->
        let seen = Hashtbl.create 8 in
        Some (Array.map (compile_pattern seen) (Term.args_of head))
  in
  let e = entry_for db p in
  let pos = Vec.length e.clauses in
  Vec.push e.clauses { nvars; head; body; matchers; source_pos = pos };
  (match db.mode with
  | Dynamic -> ()
  | Compiled -> (
      let idx =
        match e.index with
        | Some i -> i
        | None ->
            let i = Hashtbl.create 8 in
            e.index <- Some i;
            i
      in
      match Term.args_of head with
      | [||] -> e.unindexed <- pos :: e.unindexed
      | args -> (
          match key_of_term args.(0) with
          | Some k ->
              let old = Option.value ~default:[] (Hashtbl.find_opt idx k) in
              Hashtbl.replace idx k (pos :: old)
          | None -> e.unindexed <- pos :: e.unindexed)));
  db.clause_count <- db.clause_count + 1

let load_clauses db cs = List.iter (assertz db) cs

(** Load a program source; [:- op] directives take effect, other
    directives are returned for the caller (e.g. entry points). *)
let load_string db (src : string) : Term.t list =
  let items = Parser.parse_program ~ops:db.ops src in
  List.filter_map
    (function
      | Parser.Clause c ->
          assertz db c;
          None
      | Parser.Directive d -> Some d)
    items

(* --- retrieval --------------------------------------------------------- *)

(** All clauses of [p], in source order. *)
let clauses_of db p =
  match Hashtbl.find_opt db.preds p with
  | None -> []
  | Some e -> Vec.to_list e.clauses

(** Clauses possibly matching [goal] under [s], in source order.  Uses the
    first-argument index in compiled mode. *)
let matching db (s : Subst.t) (goal : Term.t) : cclause list =
  let p =
    match Term.functor_of goal with Some p -> p | None -> ("", -1)
  in
  match Hashtbl.find_opt db.preds p with
  | None -> []
  | Some e -> (
      match (db.mode, e.index) with
      | Dynamic, _ | _, None -> Vec.to_list e.clauses
      | Compiled, Some idx -> (
          let args = Term.args_of goal in
          if Array.length args = 0 then Vec.to_list e.clauses
          else
            match key_of_term (Subst.walk s args.(0)) with
            | None -> Vec.to_list e.clauses
            | Some k ->
                let keyed =
                  Option.value ~default:[] (Hashtbl.find_opt idx k)
                in
                let merged =
                  List.merge
                    (fun a b -> Int.compare a b)
                    (List.rev keyed) (List.rev e.unindexed)
                in
                List.map (fun i -> Vec.get e.clauses i) merged))

(** Activate a clause for resolution against [goal]'s arguments: returns
    the new substitution and the instantiated body, or [None] if the head
    does not match.  This is where the dynamic/compiled split pays off. *)
let activate (c : cclause) (s : Subst.t) (goal : Term.t) :
    (Subst.t * Term.t list) option =
  let gargs = Term.args_of goal in
  let hargs = Term.args_of c.head in
  if Array.length gargs <> Array.length hargs then None
  else
    match c.matchers with
    | Some ms ->
        let slots = Array.init c.nvars (fun _ -> Term.fresh_var ()) in
        let n = Array.length ms in
        let rec go s i =
          if i >= n then Some s
          else
            match ms.(i) slots s gargs.(i) with
            | Some s' -> go s' (i + 1)
            | None -> None
        in
        Option.map
          (fun s' ->
            let body =
              List.map (Term.map_vars (fun i -> slots.(i))) c.body
            in
            (s', body))
          (go s 0)
    | None ->
        (* Interpretive head matching, with the same first-occurrence
           discipline as the compiled matchers: the first time a clause
           variable is met its slot takes the (dereferenced) goal subterm
           directly — no fresh variable, no substitution entry — and only
           repeated occurrences fall back to real unification.  Clause
           variables never reached by matching get fresh variables when
           the body is instantiated. *)
        let slots = Array.make c.nvars Term.true_ in
        let filled = Array.make c.nvars false in
        let slot_of v =
          if filled.(v) then slots.(v)
          else begin
            filled.(v) <- true;
            let f = Term.fresh_var () in
            slots.(v) <- f;
            f
          end
        in
        let rec match_arg s (pat : Term.t) (garg : Term.t) : Subst.t option =
          match pat with
          | Term.Var v ->
              if filled.(v) then Unify.unify s slots.(v) garg
              else begin
                filled.(v) <- true;
                slots.(v) <- Subst.walk s garg;
                Some s
              end
          | Term.Int n -> (
              match Subst.walk s garg with
              | Term.Int m when m = n -> Some s
              | Term.Var w -> Some (Subst.bind s w pat)
              | _ -> None)
          | Term.Atom a -> (
              match Subst.walk s garg with
              | Term.Atom b when String.equal a b -> Some s
              | Term.Var w -> Some (Subst.bind s w pat)
              | _ -> None)
          | Term.Struct (f, pargs, _) -> (
              match Subst.walk s garg with
              | Term.Struct (g, gargs2, _)
                when String.equal f g
                     && Array.length gargs2 = Array.length pargs ->
                  let n = Array.length pargs in
                  let rec go s i =
                    if i >= n then Some s
                    else
                      match match_arg s pargs.(i) gargs2.(i) with
                      | Some s' -> go s' (i + 1)
                      | None -> None
                  in
                  go s 0
              | Term.Var w ->
                  (* goal side unbound: instantiate the pattern through
                     the slots and bind *)
                  Some (Subst.bind s w (Term.map_vars slot_of pat))
              | _ -> None)
        in
        let n = Array.length hargs in
        let rec go s i =
          if i >= n then Some s
          else
            match match_arg s hargs.(i) gargs.(i) with
            | Some s' -> go s' (i + 1)
            | None -> None
        in
        Option.map
          (fun s' ->
            let body = List.map (Term.map_vars slot_of) c.body in
            (s', body))
          (go s 0)

(** Like {!activate} but resolving the head with a caller-supplied
    unification (e.g. depth-k abstract unification).  Always takes the
    interpretive path: compiled matchers bake in concrete unification. *)
let activate_with ~unify (c : cclause) (s : Subst.t) (goal : Term.t) :
    (Subst.t * Term.t list) option =
  let slots = Array.init c.nvars (fun _ -> Term.fresh_var ()) in
  let head = Term.map_vars (fun i -> slots.(i)) c.head in
  Option.map
    (fun s' ->
      let body = List.map (Term.map_vars (fun i -> slots.(i))) c.body in
      (s', body))
    (unify s head goal)

(** Rough size accounting, in machine words, of all stored clauses. *)
let stored_words db =
  Hashtbl.fold
    (fun _ e acc ->
      Vec.fold
        (fun acc c ->
          acc + Term.size c.head
          + List.fold_left (fun a g -> a + Term.size g) 0 c.body + 4)
        acc e.clauses)
    db.preds 0
