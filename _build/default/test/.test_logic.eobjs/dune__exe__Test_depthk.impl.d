test/test_depthk.ml: Alcotest Analyze Array Canon Database Domain List Option Parser Prax_benchdata Prax_depthk Prax_logic Prax_tabling Pretty Printf Sld Subst Term
