lib/bottomup/magic.ml: Array Datalog Hashtbl Int List Option Prax_logic Printf String Term
