(** Shared-memory parallel batch: a fleet of worker {e domains} instead
    of forked worker processes — see domains.mli. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

(* shared with the fork supervisor: Metrics.counter returns the
   existing cell when the name is already registered *)
let m_jobs = Metrics.counter ~units:"jobs" "serve.jobs"
let m_partials = Metrics.counter ~units:"jobs" "serve.partials"
let m_crashes = Metrics.counter ~units:"attempts" "serve.crashes"
let m_cache_answers = Metrics.counter ~units:"jobs" "serve.cache_answers"

let m_domains =
  Metrics.counter ~units:"domains"
    ~doc:"worker domains spawned by the multicore batch runner"
    "serve.domains_spawned"

let run ?(jobs = 2) ?(budget = Guard.no_limits) ?cached ?persist ?on_report
    ~worker (names : string list) : Serve.report list =
  let results : (string, Serve.report) Hashtbl.t = Hashtbl.create 16 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* cache pass in the calling domain: answered jobs never spawn *)
  let to_run =
    List.filter
      (fun job ->
        if Hashtbl.mem seen job then false
        else begin
          Hashtbl.add seen job ();
          Metrics.incr m_jobs;
          match Option.bind cached (fun c -> c ~job) with
          | Some payload ->
              Metrics.incr m_cache_answers;
              Hashtbl.replace results job
                {
                  Serve.job;
                  outcome =
                    Serve.Done { payload; partial = None; from_cache = true };
                  attempts = 0;
                  crashes = [];
                  elapsed = 0.;
                  backoff = 0.;
                };
              false
          | None -> true
        end)
      names
  in
  let arr = Array.of_list to_run in
  let n = Array.length arr in
  if n > 0 then begin
    let slots : Serve.report option array = Array.make n None in
    (* work queue: an atomic next-index over the job array.  Claiming is
       the only cross-domain synchronization; each slot is written by
       exactly one domain and read by the caller after join. *)
    let next = Atomic.make 0 in
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let job = arr.(i) in
          let started = Unix.gettimeofday () in
          let outcome, crashes =
            match worker ~job ~attempt:1 ~guard:(Guard.of_spec budget) with
            | Serve.Complete, payload ->
                ( Serve.Done { payload; partial = None; from_cache = false },
                  [] )
            | Serve.Partial_result reason, payload ->
                ( Serve.Done
                    { payload; partial = Some reason; from_cache = false },
                  [] )
            | exception exn ->
                let crash =
                  {
                    Serve.attempt = 1;
                    what =
                      "uncaught exception " ^ Printexc.to_string exn;
                    stderr = "";
                  }
                in
                (Serve.Crashed crash, [ crash ])
          in
          slots.(i) <-
            Some
              {
                Serve.job;
                outcome;
                attempts = 1;
                crashes;
                elapsed = Unix.gettimeofday () -. started;
                backoff = 0.;
              };
          loop ()
        end
      in
      loop ();
      Metrics.export_local ()
    in
    let fleet =
      List.init (max 1 (min jobs n)) (fun _ ->
          Metrics.incr m_domains;
          Domain.spawn body)
    in
    (* join brings each worker's private metrics home *)
    List.iter (fun d -> Metrics.absorb (Domain.join d)) fleet;
    Array.iter
      (function
        | Some (r : Serve.report) -> Hashtbl.replace results r.Serve.job r
        | None -> ())
      slots
  end;
  (* classify, persist, and stream in input order — deterministic
     regardless of which domain ran which job *)
  List.filter_map
    (fun job ->
      match Hashtbl.find_opt results job with
      | None -> None
      | Some rep ->
          (match rep.Serve.outcome with
          | Serve.Done { partial = Some _; _ } -> Metrics.incr m_partials
          | Serve.Done { payload; partial = None; from_cache = false } -> (
              match persist with
              | Some p -> p ~job ~payload
              | None -> ())
          | Serve.Done _ -> ()
          | Serve.Crashed _ -> Metrics.incr m_crashes);
          (match on_report with Some f -> f rep | None -> ());
          Some rep)
    names
