(** Back-end signature for the GAIA-style abstract interpreter: boolean
    functions over a fixed universe of positions, with the operations a
    top-down Prop interpreter needs.  Two implementations: enumerated
    truth tables ({!Backend_bitset}) and ROBDDs ({!Backend_bdd}) — the
    representations whose trade-off Section 4 of the paper discusses. *)

module type S = sig
  type t

  val name : string
  val top : int -> t
  val bottom : int -> t

  val iff_c : int -> int -> int list -> t
  (** [iff_c n pos set]: the constraint [pos ↔ ∧ set] over universe [n]. *)

  val lit : int -> int -> bool -> t
  (** [lit n pos b]: the constraint [pos = b] over universe [n]. *)

  val conj : t -> t -> t
  val disj : t -> t -> t

  val project : t -> int list -> t
  (** [project f kept] restricts to the positions [kept] (in order,
      duplicates allowed); result universe is [length kept]. *)

  val extend : t -> int list -> int -> t
  (** [extend f mapping n]: embed [f] (over positions [0..k-1]) into
      universe [n], sending position [i] to [mapping_i]. *)

  val equal : t -> t -> bool
  val hash : t -> int
  val is_empty : t -> bool

  val definite : t -> bool array
  (** positions true in every satisfying assignment *)
end
