(** Per-client token buckets — see admission.mli. *)

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;
  burst : float;
  buckets : (string, bucket) Hashtbl.t;
}

let create ~rate ~burst =
  { rate; burst = Float.max 1.0 burst; buckets = Hashtbl.create 16 }

let refill t (b : bucket) ~now =
  let dt = Float.max 0. (now -. b.last) in
  b.tokens <- Float.min t.burst (b.tokens +. (dt *. t.rate));
  b.last <- now

let bucket_of t ~client ~now =
  match Hashtbl.find_opt t.buckets client with
  | Some b ->
      refill t b ~now;
      b
  | None ->
      let b = { tokens = t.burst; last = now } in
      Hashtbl.add t.buckets client b;
      b

let admit t ~client ~now =
  if t.rate <= 0. then true
  else
    let b = bucket_of t ~client ~now in
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false

let tokens t ~client ~now =
  if t.rate <= 0. then infinity
  else (bucket_of t ~client ~now).tokens

let retry_after t ~client ~now =
  if t.rate <= 0. then 0.
  else
    let b = bucket_of t ~client ~now in
    if b.tokens >= 1.0 then 0. else (1.0 -. b.tokens) /. t.rate

let clients t = Hashtbl.length t.buckets
