(** Pressure-tiered admission: degrade, don't drop.

    The daemon's queue-depth check used to be binary — under [max_queue]
    a job ran at full budget, at [max_queue] it was shed with
    ["overloaded"].  The guard layer already knows how to produce sound
    [Partial] results under a reduced budget ({!Prax_guard.Guard.scale_spec}),
    so the binary cliff wastes the whole middle of the ladder: a daemon
    at 80% occupancy could still answer every request, just less
    exhaustively.

    This module computes a {e load level} from the pool's queue depth
    and in-flight count and maps it onto a tier ladder:

    {v occupancy = (pending + inflight) / (max_queue + jobs)

tier 0  "full"      occupancy < 1/2   budget x 1.0
tier 1  "reduced"   occupancy < 3/4   budget x 0.5
tier 2  "minimal"   otherwise         budget x 0.25
shed                pending >= max_queue v}

    The shed point is unchanged from the binary daemon — a full queue
    still answers ["overloaded"]/["queue_full"] — but everything below
    it now admits, at a budget scaled by the tier.  A budget-tripped
    job degrades to a sound ["partial"] result instead of an outright
    refusal, and the response is tagged ([degraded], [tier]) so clients
    can tell a full-fidelity answer from a load-shaped one.

    Sheds carry a [retry_after_ms] hint proportional to the backlog per
    worker slot, so retrying clients back off against actual load
    rather than a blind constant.

    Everything here is pure arithmetic over the pool counters — fully
    deterministic and unit-testable without a daemon. *)

type tier = {
  level : int;  (** 0 = full budget; higher = more degraded *)
  label : string;  (** ["full"], ["reduced"], ["minimal"] *)
  scale : float;  (** budget multiplier for {!Prax_guard.Guard.scale_spec} *)
}

type decision =
  | Admit of tier
  | Shed of { retry_after_ms : int }
      (** queue full; the hint says when a retry has a chance *)

val tiers : tier list
(** The ladder, level 0 first.  Exposed for docs and tests. *)

val occupancy : max_queue:int -> jobs:int -> pending:int -> inflight:int -> float
(** [(pending + inflight) / (max_queue + jobs)], clamped to [0, 1].
    [max_queue] and [jobs] are clamped to at least 1. *)

val decide :
  max_queue:int -> jobs:int -> pending:int -> inflight:int -> decision
(** The admission decision for one analyze request given the pool
    counters at arrival.  [Shed] exactly when [pending >= max_queue]
    (the pre-tier daemon's shed point); otherwise [Admit] with the
    occupancy's tier. *)

val retry_after_ms : jobs:int -> pending:int -> inflight:int -> int
(** The shed hint: [100ms] per backlogged job per worker slot, clamped
    to [50, 5000] ms.  Deterministic in the counters. *)
