(** The [iff/k+1] relation of the Prop formulation (Figure 1), provided to
    the tabled engine as an enumerative builtin: [iff(A, B1, …, Bk)]
    succeeds for exactly the assignments of [true]/[false] satisfying
    [A ↔ B1 ∧ … ∧ Bk].

    Rather than asserting the 2^(k+1)-row relation as facts, the builtin
    enumerates the consistent completions of the current (partial)
    binding — observationally the paper's enumerative representation,
    including its incremental delta-set friendliness, without cluttering
    the clause database. *)

open Prax_logic

let ttrue = Term.atom "true"
let tfalse = Term.atom "false"

let as_bool = function
  | Term.Atom "true" -> Some true
  | Term.Atom "false" -> Some false
  | _ -> None

let solve (unify : Subst.t -> Term.t -> Term.t -> Subst.t option)
    (s : Subst.t) (args : Term.t array) (sc : Subst.t -> unit) : unit =
  let n = Array.length args in
  assert (n >= 1);
  (* positions must hold booleans or variables; anything else fails *)
  let feasible =
    Array.for_all
      (fun a ->
        match Subst.walk s a with
        | Term.Var _ -> true
        | t -> Option.is_some (as_bool t))
      args
  in
  if feasible then begin
    (* Feasibility established every position as a boolean or a variable,
       and the positions' variables are bound only to boolean atoms below,
       so assignments are direct [Subst.bind]s — a full unification would
       only rediscover that the variable is unbound.  [unify] stays the
       entry point for engines that hook abstract unification over
       non-Var positions. *)
    ignore unify;
    match as_bool (Subst.walk s args.(0)) with
    | Some true ->
        (* [A = true] forces the whole conjunction true: bind every
           unbound rhs position and check the bound ones, instead of
           enumerating 2^u assignments to find the single consistent
           one. *)
        let rec force s' i =
          if i >= n then sc s'
          else
            match Subst.walk s' args.(i) with
            | Term.Var v -> force (Subst.bind s' v ttrue) (i + 1)
            | t -> if as_bool t = Some true then force s' (i + 1)
        in
        force s 1
    | lhs ->
        (* Enumerate only the rhs unknowns; each completion determines the
           conjunction's value, which either checks against a bound lhs or
           binds an unbound one.  Successful substitutions arrive in the
           same order as the naive 2^(u+1) enumeration: the all-true
           completion (lhs true) first, then the falsifying completions in
           lexicographic order (lhs false). *)
        let rhs_conj s' =
          let rec go i =
            i >= n || (Option.get (as_bool (Subst.walk s' args.(i))) && go (i + 1))
          in
          go 1
        in
        let finish s' =
          let c = rhs_conj s' in
          match lhs with
          | Some b -> if b = c then sc s'
          | None -> (
              (* the lhs variable may itself occur in an rhs position and
                 have been bound by the enumeration *)
              match Subst.walk s' args.(0) with
              | Term.Var v -> sc (Subst.bind s' v (if c then ttrue else tfalse))
              | t -> if as_bool t = Some c then sc s')
        in
        let rec unbound_ids i acc =
          if i >= n then List.rev acc
          else
            match Subst.walk s args.(i) with
            | Term.Var v when not (List.mem v acc) ->
                unbound_ids (i + 1) (v :: acc)
            | _ -> unbound_ids (i + 1) acc
        in
        let rec assign s' = function
          | [] -> finish s'
          | v :: rest ->
              assign (Subst.bind s' v ttrue) rest;
              assign (Subst.bind s' v tfalse) rest
        in
        assign s (unbound_ids 1 [])
  end

(** Register [iff/k] builtins for arities [1 .. max_arity + 1] on the
    given engine (1 lhs position + up to [max_arity] rhs positions). *)
let register (e : Prax_tabling.Engine.t) ~max_arity =
  for k = 1 to max_arity + 1 do
    Prax_tabling.Engine.register_builtin e "iff" k (fun _eng s args sc ->
        solve Unify.unify s args sc)
  done

(** The full extension of [iff/k+1] as ground fact rows — used by the
    bottom-up (Coral-style) baseline, which needs an extensional
    relation. *)
let extension k : bool list list =
  let sat = function
    | a :: bs -> a = List.for_all Fun.id bs
    | [] -> false
  in
  let rec enum i row acc =
    if i > k then if sat (List.rev row) then List.rev row :: acc else acc
    else enum (i + 1) (true :: row) (enum (i + 1) (false :: row) acc)
  in
  enum 0 [] []
