(** The tabled evaluation engine — the XSB substitute (system S3 of
    DESIGN.md).

    A continuation-passing formulation of OLDT/SLG for definite programs:

    - every tabled call is *canonicalized* (variables renumbered in
      first-occurrence order) and looked up in the call table by variant
      check, exactly as XSB does;
    - the first occurrence of a call variant becomes its *producer*: it
      resolves the (renamed-apart) canonical call against program clauses;
    - each successful derivation yields a canonical *answer*; duplicate
      answers are filtered by variant check; each genuinely new answer is
      eagerly pushed to every registered consumer;
    - later occurrences of the same call variant become *consumers*: they
      replay the answers present at registration time and receive all
      later answers through the eager broadcast.

    For definite programs this computes the minimal model restricted to
    the call forest, and terminates whenever calls and answers range over
    a finite domain — the completeness guarantee the paper relies on.

    The engine is parametric in three hooks so that the depth-k analysis
    of Section 5 is this same engine with abstract unification and
    depth-k call/answer abstraction plugged in (the paper does the
    analogous thing by meta-programming abstract unification in XSB).

    {2 Resource governance}

    Evaluation can be governed by a {!Prax_guard.Guard.t}: every
    resolution step checks the budgets, and on exhaustion the engine
    does not raise out of a half-mutated state — {!run_status}
    force-completes every table entry that could still have received
    answers by widening it to its most general answer (the entry's own
    call pattern, whose concretization covers everything the entry could
    ever answer), then reports [Partial].  The tables stay consistent
    and reusable: later queries replay the widened answers, a sound
    over-approximation.  See docs/ROBUSTNESS.md. *)

open Prax_logic
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

(* Process-wide observability counters (docs/METRICS.md).  Per-engine
   figures remain available through the [stats] record; these global
   cells are what `xanalyze --stats`, praxtop's `:- stats.`, and the
   bench harness snapshot. *)
let m_call_lookups =
  Metrics.counter ~units:"calls"
    ~doc:"tabled call occurrences (call-table lookups by variant)"
    "engine.call_lookups"

let m_call_hits =
  Metrics.counter ~units:"calls"
    ~doc:"call-table lookups answered by an existing variant entry"
    "engine.call_hits"

let m_call_misses =
  Metrics.counter ~units:"calls"
    ~doc:"call-table lookups that created a new entry (producer started)"
    "engine.call_misses"

let m_answers_offered =
  Metrics.counter ~units:"answers"
    ~doc:"candidate answers derived by producers (pre-dedup)"
    "engine.answers_offered"

let m_answers_inserted =
  Metrics.counter ~units:"answers"
    ~doc:"genuinely new canonical answers recorded in answer tables"
    "engine.answers_inserted"

let m_answers_deduped =
  Metrics.counter ~units:"answers"
    ~doc:"candidate answers suppressed by the variant check"
    "engine.answers_deduped"

let m_suspensions =
  Metrics.counter ~units:"consumers"
    ~doc:"consumer registrations on a table entry (suspensions)"
    "engine.consumer_suspensions"

let m_resumptions =
  Metrics.counter ~units:"deliveries"
    ~doc:"answer deliveries to consumers, replay and broadcast (resumptions)"
    "engine.consumer_resumptions"

let m_completions =
  Metrics.counter ~units:"producers"
    ~doc:
      "producers that exhausted clause resolution (this engine's analogue of \
       SCC completion)"
    "engine.producer_completions"

let m_widenings =
  Metrics.counter ~units:"answers"
    ~doc:"applications of the answer-widening hook" "engine.widenings"

let m_aborts =
  Metrics.counter ~units:"aborts"
    ~doc:
      "governed runs torn down by budget exhaustion or an exception \
       unwinding through the engine"
    "engine.aborts"

let m_forced_completions =
  Metrics.counter ~units:"entries"
    ~doc:
      "table entries force-completed (widened to their most general answer) \
       after budget exhaustion"
    "engine.forced_completions"

type hooks = {
  unify : Subst.t -> Term.t -> Term.t -> Subst.t option;
  abstract_call : Term.t -> Term.t;
      (** applied to the canonical call before table lookup *)
  abstract_answer : Term.t -> Term.t;
      (** applied to the canonical answer before dedup/recording *)
  widen : (previous:Term.t list -> Term.t -> Term.t) option;
      (** on-the-fly widening (Section 6.1): sees the answers already in
          the entry and may extrapolate the incoming one.  With a widening
          operator whose image has finite chains this makes analyses over
          infinite domains terminate. *)
}

let concrete_hooks =
  {
    unify = Unify.unify;
    abstract_call = Fun.id;
    abstract_answer = Fun.id;
    widen = None;
  }

type stats = {
  mutable calls : int;  (** tabled call occurrences *)
  mutable table_entries : int;
  mutable answers : int;  (** distinct answers recorded *)
  mutable duplicates : int;  (** answers filtered by variant check *)
  mutable resumptions : int;  (** consumer deliveries *)
  mutable forced : int;  (** entries force-completed after an abort *)
}

type entry = {
  call : Term.t;  (** canonical (post-abstraction) *)
  answers : Term.t Vec.t;
  answer_set : unit Trie.t;
      (** per-entry answer trie: duplicate suppression is a single
          walk, and answers sharing a prefix share its nodes *)
  mutable answer_space : int;
      (** words accounted to this entry's answers, so abort recovery
          can subtract (or keep) them exactly *)
  consumers : (Term.t -> unit) Vec.t;
  deps : entry Vec.t;
      (** entries this entry's producer consumes from: through a
          registered consumer, a new answer in a dep can extend this
          entry's answer set even after its own clause resolution is
          exhausted, so abort recovery must treat this entry as open
          whenever a dep is open *)
  mutable completed : bool;  (** producer exhausted clause resolution *)
  mutable mark : bool;  (** scratch for abort-recovery closure computation *)
}

type t = {
  db : Database.t;
  hooks : hooks;
  builtins : (string * int, builtin) Hashtbl.t;
  mutable tables : entry Trie.t;
      (** call trie: canonical (post-abstraction) call variants; mutable
          only so abort recovery can rebuild it without stale branches *)
  stats : stats;
  tabled : string * int -> bool;
  open_calls : bool;
      (** the forward-subsumption strategy of Section 6.2: table only the
          most general (open) call per predicate and answer every
          specific call by filtering its answers *)
  mutable guard : Guard.t;
  mutable space_words : int;
      (** incremental table-space estimate, kept exact w.r.t. the
          {!table_space_bytes} accounting so the guard can check the
          byte budget in O(1) *)
  mutable producing : entry list;
      (** stack of producers currently resolving clauses, innermost
          first; used to attribute consumer registrations ([deps]) *)
  mutable run_depth : int;  (** nesting of public [run_status] calls *)
  mutable resolver : (Term.t -> Term.t list option) option;
      (** splice resolver for incremental re-analysis: consulted when a
          call-table lookup creates a new entry; [Some answers] installs
          them as the entry's complete answer set and the producer is
          skipped (docs/INCREMENTAL.md) *)
  mutable spliced : int;  (** entries installed by the splice resolver *)
}

and builtin = t -> Subst.t -> Term.t array -> (Subst.t -> unit) -> unit

exception Not_definite of Term.t

let register_builtin_tbl builtins name arity b =
  Hashtbl.replace builtins (name, arity) b

(* standard arithmetic and comparison builtins, as XSB provides them;
   analyses override any of these by registering their own abstract
   versions *)
let default_builtins (builtins : (string * int, builtin) Hashtbl.t) =
  let det name arity f =
    register_builtin_tbl builtins name arity (fun _e s args sc ->
        match f s args with Some s' -> sc s' | None -> ())
  in
  det "is" 2 (fun s args ->
      let v = Term.int (Sld.eval_arith s args.(1)) in
      Unify.unify s args.(0) v);
  List.iter
    (fun (name, test) ->
      det name 2 (fun s args ->
          if test (Sld.eval_arith s args.(0)) (Sld.eval_arith s args.(1)) then
            Some s
          else None))
    [
      ("<", ( < )); (">", ( > )); ("=<", ( <= )); (">=", ( >= ));
      ("=:=", ( = )); ("=\\=", ( <> ));
    ];
  det "==" 2 (fun s args ->
      if Term.equal (Subst.resolve s args.(0)) (Subst.resolve s args.(1)) then
        Some s
      else None);
  det "\\==" 2 (fun s args ->
      if Term.equal (Subst.resolve s args.(0)) (Subst.resolve s args.(1)) then
        None
      else Some s);
  det "\\=" 2 (fun s args ->
      match Unify.unify s args.(0) args.(1) with
      | Some _ -> None
      | None -> Some s)

let create ?(hooks = concrete_hooks) ?(tabled = fun _ -> true)
    ?(open_calls = false) ?(guard = Guard.unlimited) db =
  let builtins = Hashtbl.create 16 in
  default_builtins builtins;
  {
    db;
    hooks;
    builtins;
    tables = Trie.create ();
    stats =
      { calls = 0; table_entries = 0; answers = 0; duplicates = 0;
        resumptions = 0; forced = 0 };
    tabled;
    open_calls;
    guard;
    space_words = 0;
    producing = [];
    run_depth = 0;
    resolver = None;
    spliced = 0;
  }

let set_guard e g = e.guard <- g
let guard e = e.guard
let set_resolver e r = e.resolver <- r
let spliced_entries e = e.spliced

let is_builtin e p = Hashtbl.mem e.builtins p

(* the most general call pattern for a goal's predicate *)
let open_call_of goal =
  match goal with
  | Term.Atom _ -> goal
  | Term.Struct (_, args, _) ->
      Term.rebuild goal (Array.mapi (fun i _ -> Term.var i) args)
  | Term.Var _ | Term.Int _ -> goal

let register_builtin e name arity (b : builtin) =
  Hashtbl.replace e.builtins (name, arity) b

(* --- table-space accounting -------------------------------------------- *)

(* one word per trie node actually allocated by the insert, plus
   per-entry and per-answer overhead — the same unit (a word per stored
   node) as the pre-trie accounting, so before/after byte figures
   compare like for like and the delta measures exactly the structural
   sharing the discrimination tree buys (a key never costs more nodes
   than its term size).  Maintained incrementally so the guard's byte
   budget is O(1) to check, as XSB's table statistics are. *)
let entry_overhead = 8
let answer_overhead = 2

let grow_space e words =
  e.space_words <- e.space_words + words;
  Guard.note_space e.guard (8 * e.space_words)

let table_space_bytes e : int = 8 * e.space_words

(* Find or create the table entry for an already-canonical call [key].
   Incremental splice (docs/INCREMENTAL.md): a fresh entry may be
   answered from a persisted table fragment instead of by running its
   producer.  Installed answers go through the same dedup trie and
   space accounting as produced ones, so `dump_tables`,
   `table_space_bytes`, and the consistency invariants are
   indistinguishable from a fresh computation; the entry completes
   immediately (a fragment holds a complete answer set by
   construction — only Complete runs persist). *)
let find_entry e key =
  let mk_entry () =
    {
      call = key;
      answers = Vec.create ();
      answer_set = Trie.create ();
      answer_space = 0;
      consumers = Vec.create ();
      deps = Vec.create ();
      completed = false;
      mark = false;
    }
  in
  let entry, is_new =
    match Trie.find_or_add e.tables key mk_entry with
    | Trie.Existing entry ->
        Metrics.incr m_call_hits;
        (entry, false)
    | Trie.Added (entry, fresh_nodes) ->
        e.stats.table_entries <- e.stats.table_entries + 1;
        Metrics.incr m_call_misses;
        grow_space e (fresh_nodes + entry_overhead);
        (entry, true)
  in
  if is_new then begin
    match e.resolver with
    | None -> ()
    | Some resolve -> (
        match resolve key with
        | None -> ()
        | Some answers ->
            List.iter
              (fun ans ->
                match Trie.find_or_add entry.answer_set ans (fun () -> ()) with
                | Trie.Existing () -> ()
                | Trie.Added ((), fresh_nodes) ->
                    Vec.push entry.answers ans;
                    e.stats.answers <- e.stats.answers + 1;
                    let words = fresh_nodes + answer_overhead in
                    entry.answer_space <- entry.answer_space + words;
                    grow_space e words)
              answers;
            entry.completed <- true;
            e.spliced <- e.spliced + 1)
  end;
  (entry, is_new)

(* --- core resolution --------------------------------------------------- *)

let rec solve e (s : Subst.t) (goal : Term.t) (sc : Subst.t -> unit) : unit =
  Guard.check e.guard;
  match Subst.walk s goal with
  | Term.Var _ | Term.Int _ -> raise (Not_definite goal)
  | Term.Atom "true" -> sc s
  | Term.Atom ("fail" | "false") -> ()
  | Term.Atom "!" -> sc s (* cut is control, invisible to the minimal model *)
  | Term.Struct (",", [| a; b |], _) ->
      solve e s a (fun s' -> solve e s' b sc)
  | Term.Struct (";", [| Term.Struct ("->", [| c; t |], _); el |], _) ->
      (* non-committal if-then-else: sound over-approximation for
         analysis programs (this engine evaluates definite programs;
         concrete control constructs belong to Sld) *)
      solve e s c (fun s' -> solve e s' t sc);
      solve e s el sc
  | Term.Struct (";", [| a; b |], _) ->
      solve e s a sc;
      solve e s b sc
  | Term.Struct ("->", [| c; t |], _) ->
      solve e s c (fun s' -> solve e s' t sc)
  | Term.Struct (("\\+" | "not"), [| _ |], _) ->
      (* negation binds nothing on success: over-approximate by success *)
      sc s
  | Term.Struct ("=", [| a; b |], _) ->
      if e.hooks.unify == Unify.unify then (
        (* Concrete =/2: the transformed analysis programs emit long runs
           of [V = true] / [V = W] bindings, so inline unification's
           variable cases and fall back to the full routine only for
           structure-against-structure. *)
        match (Subst.walk s a, Subst.walk s b) with
        | Term.Var i, Term.Var j when i = j -> sc s
        | Term.Var i, tb -> sc (Subst.bind s i tb)
        | ta, Term.Var j -> sc (Subst.bind s j ta)
        | ta, tb -> (
            match Unify.unify s ta tb with Some s' -> sc s' | None -> ()))
      else (
        match e.hooks.unify s a b with Some s' -> sc s' | None -> ())
  | (Term.Atom _ | Term.Struct _) as g -> (
      let p = Option.get (Term.functor_of g) in
      match Hashtbl.find_opt e.builtins p with
      | Some b -> b e s (Term.args_of g) sc
      | None ->
          if e.tabled p then solve_tabled e s g sc
          else solve_program e s g sc)

and solve_goals e s goals sc =
  match goals with
  | [] -> sc s
  | g :: rest -> solve e s g (fun s' -> solve_goals e s' rest sc)

(* Non-tabled program-clause resolution (plain SLD step). *)
and solve_program e s g sc =
  let concrete = e.hooks.unify == Unify.unify in
  List.iter
    (fun c ->
      let activation =
        if concrete then Database.activate c s g
        else Database.activate_with ~unify:e.hooks.unify c s g
      in
      match activation with
      | Some (s', body) -> solve_goals e s' body sc
      | None -> ())
    (Database.matching e.db s g)

and solve_tabled e s goal sc =
  e.stats.calls <- e.stats.calls + 1;
  Metrics.incr m_call_lookups;
  let canonical = Canon.canonical s goal in
  let key =
    e.hooks.abstract_call
      (if e.open_calls then open_call_of canonical else canonical)
  in
  let entry, is_new = find_entry e key in
  (* Attribute the registration to the producer on whose behalf we
     consume: new answers in [entry] can extend that producer's answer
     set even after its own clause resolution finished, so abort
     recovery must not treat it as closed while [entry] is open. *)
  let owner =
    match e.producing with p :: _ when p != entry -> Some p | _ -> None
  in
  (match owner with
  | Some p ->
      let n = Vec.length p.deps in
      if n = 0 || Vec.get p.deps (n - 1) != entry then Vec.push p.deps entry
  | None -> ());
  (* The consumer: unify a (renamed-apart) canonical answer with our goal
     instance.  With abstraction enabled the call in the table may be more
     general than [goal]; unifying against [key]'s instance keeps the
     variable correspondence right, so unify goal with the answer term
     directly. *)
  let consumer ans =
    Guard.check e.guard;
    e.stats.resumptions <- e.stats.resumptions + 1;
    Metrics.incr m_resumptions;
    let inst = Canon.instantiate ans in
    match e.hooks.unify s goal inst with
    | None -> ()
    | Some s' -> (
        (* A resumption continues [owner]'s clause body, so while [sc]
           runs the demanding entry is [owner] — not whichever producer
           happened to broadcast [ans].  Re-establish it so the table
           lookups [sc] makes attribute their demand edges ([deps]) to
           the entry whose body they occur in; the incremental splice
           replays those edges, and misattribution would re-demand call
           variants only the broadcasting producer's cone needed. *)
        match owner with
        | None -> sc s'
        | Some p -> (
            let saved = e.producing in
            e.producing <- p :: saved;
            match sc s' with
            | () -> e.producing <- saved
            | exception ex ->
                e.producing <- saved;
                raise ex))
  in
  (* Snapshot-then-register so each answer reaches this consumer exactly
     once: answers arriving after registration come via the broadcast.
     [find_entry] splices before we get here, so spliced answers are
     delivered through the replay below exactly like the answers an
     existing entry would replay. *)
  let n0 = Vec.length entry.answers in
  Metrics.incr m_suspensions;
  Vec.push entry.consumers consumer;
  if is_new && not entry.completed then producer e entry;
  for i = 0 to n0 - 1 do
    consumer (Vec.get entry.answers i)
  done

and producer e entry =
  let call = Canon.instantiate entry.call in
  let concrete = e.hooks.unify == Unify.unify in
  let on_success s' =
    (* the eager-broadcast cascade (answer -> consumer -> new answer)
       never re-enters [solve], so the guard must also be checked at the
       answer-offer event or a recursive producer could run unbounded *)
    Guard.check e.guard;
    Metrics.incr m_answers_offered;
    let ans = e.hooks.abstract_answer (Canon.canonical s' call) in
    let ans =
      match e.hooks.widen with
      | None -> ans
      | Some w ->
          Metrics.incr m_widenings;
          Canon.of_term (w ~previous:(Vec.to_list entry.answers) ans)
    in
    match Trie.find_or_add entry.answer_set ans (fun () -> ()) with
    | Trie.Existing () ->
        e.stats.duplicates <- e.stats.duplicates + 1;
        Metrics.incr m_answers_deduped
    | Trie.Added ((), fresh_nodes) ->
        Vec.push entry.answers ans;
        e.stats.answers <- e.stats.answers + 1;
        Metrics.incr m_answers_inserted;
        let words = fresh_nodes + answer_overhead in
        entry.answer_space <- entry.answer_space + words;
        grow_space e words;
        (* Eager broadcast — but only to the consumers present when the
           answer arrived: a consumer that registers during this loop has
           already snapshotted this answer into its replay (it is in
           [entry.answers]), so delivering it here too would duplicate
           derivations, which diverges through recursive cycles. *)
        let ncons = Vec.length entry.consumers in
        for i = 0 to ncons - 1 do
          (Vec.get entry.consumers i) ans
        done
  in
  e.producing <- entry :: e.producing;
  List.iter
    (fun c ->
      let activation =
        if concrete then Database.activate c Subst.empty call
        else Database.activate_with ~unify:e.hooks.unify c Subst.empty call
      in
      match activation with
      | Some (s', body) -> solve_goals e s' body on_success
      | None -> ())
    (Database.matching e.db Subst.empty call);
  (* All program clauses for this call variant are exhausted.  With eager
     broadcast there is no separate completion phase; this is the closest
     event to an SCC completion. *)
  e.producing <- List.tl e.producing;
  entry.completed <- true;
  Metrics.incr m_completions

(* --- abort recovery ----------------------------------------------------- *)

(* An entry is *closed* iff its producer exhausted clause resolution and
   every entry it consumes from is closed: only then can no further
   answer reach it.  The greatest such set is computed by demotion from
   "every completed entry". *)
let closed_set e =
  Trie.iter (fun _ entry -> entry.mark <- entry.completed) e.tables;
  let changed = ref true in
  while !changed do
    changed := false;
    Trie.iter
      (fun _ entry ->
        if
          entry.mark
          && Vec.fold (fun acc d -> acc || not d.mark) false entry.deps
        then begin
          entry.mark <- false;
          changed := true
        end)
      e.tables
  done

(* Stale consumers hold continuations of the aborted run; none of them
   may ever be poked again.  Closed entries keep their (exact) answers
   and will only ever be replayed. *)
let scrub_entry entry =
  Vec.clear entry.consumers;
  Vec.clear entry.deps;
  entry.completed <- true;
  entry.mark <- false

(* Budget exhaustion: degrade to a sound over-approximation.  Every
   entry that could still have received answers is force-completed by
   widening: its own call pattern is inserted as an answer, and every
   concrete answer the interrupted run could have derived for the entry
   is an instance of it.  Returns the number of entries widened. *)
let force_complete_tables e =
  closed_set e;
  let widened = ref 0 in
  Trie.iter
    (fun _ entry ->
      if not entry.mark then begin
        incr widened;
        e.stats.forced <- e.stats.forced + 1;
        Metrics.incr m_forced_completions;
        match Trie.find_or_add entry.answer_set entry.call (fun () -> ()) with
        | Trie.Existing () -> ()
        | Trie.Added ((), fresh_nodes) ->
            Vec.push entry.answers entry.call;
            e.stats.answers <- e.stats.answers + 1;
            (* account the widened answer directly: consulting the guard
               here would re-trip a sticky table-space budget from inside
               the recovery path *)
            let words = fresh_nodes + answer_overhead in
            entry.answer_space <- entry.answer_space + words;
            e.space_words <- e.space_words + words
      end;
      scrub_entry entry)
    e.tables;
  e.producing <- [];
  !widened

(* A non-guard exception (crashing user builtin, [Not_definite], …):
   there is no partial result to report, so restore the invariants by
   discarding every entry whose answer set may be incomplete — a reused
   engine then re-produces those calls from scratch instead of replaying
   silently truncated tables. *)
let recover_after_error e =
  closed_set e;
  let survivors =
    Trie.fold
      (fun key entry acc ->
        if entry.mark then (key, entry) :: acc
        else begin
          e.stats.table_entries <- e.stats.table_entries - 1;
          e.stats.answers <- e.stats.answers - Vec.length entry.answers;
          acc
        end)
      e.tables []
  in
  (* Rebuild the call trie from the surviving entries: dropping a key
     from a discrimination tree cannot reclaim the prefix nodes it
     shares, so this cold path re-inserts the survivors into a fresh
     trie and recomputes the space estimate from the fresh-node counts
     (each entry's answer trie is untouched, so its accounted words
     carry over exactly). *)
  let tables = Trie.create () in
  e.space_words <- 0;
  List.iter
    (fun (key, entry) ->
      scrub_entry entry;
      match Trie.find_or_add tables key (fun () -> entry) with
      | Trie.Existing _ -> assert false (* keys were distinct in the old trie *)
      | Trie.Added (_, fresh_nodes) ->
          e.space_words <-
            e.space_words + fresh_nodes + entry_overhead + entry.answer_space)
    survivors;
  e.tables <- tables;
  e.producing <- []

(* Table invariants, checked by the fault-injection tests: every entry's
   answer vector and dedup set agree, and after any abort every entry is
   completed with no registered consumers or dependency edges. *)
let tables_consistent ?(after_abort = false) e : bool =
  Trie.fold
    (fun _ entry ok ->
      ok
      && Vec.length entry.answers = Trie.cardinal entry.answer_set
      && Vec.fold
           (fun acc a -> acc && Trie.mem entry.answer_set a)
           true entry.answers
      && ((not after_abort)
         || entry.completed
            && Vec.length entry.consumers = 0
            && Vec.length entry.deps = 0))
    e.tables true
  && (not after_abort || e.producing = [])

(* --- public API -------------------------------------------------------- *)

(** Enumerate solutions of [goal] under the engine's guard, calling [k]
    with each substitution as it is derived.  On budget exhaustion the
    tables are force-completed (see above) and the result is [Partial];
    answers already delivered to [k] stand, and the over-approximating
    widened answers are readable from the tables ({!answers_for}).  On
    any other exception the tables are restored to a reusable state and
    the exception is re-raised. *)
let run_status e (goal : Term.t) (k : Subst.t -> unit) : Guard.status =
  if e.run_depth > 0 then begin
    (* nested run (e.g. from a builtin): the outermost invocation owns
       abort recovery *)
    solve e Subst.empty goal k;
    Guard.Complete
  end
  else begin
    e.run_depth <- 1;
    match solve e Subst.empty goal k with
    | () ->
        e.run_depth <- 0;
        Guard.Complete
    | exception Guard.Exhausted reason ->
        e.run_depth <- 0;
        Metrics.incr m_aborts;
        let exhausted_entries = force_complete_tables e in
        Guard.Partial { reason; exhausted_entries }
    | exception exn ->
        e.run_depth <- 0;
        Metrics.incr m_aborts;
        recover_after_error e;
        raise exn
  end

(** Enumerate solutions of [goal], calling [k] with each substitution.
    Degrades gracefully under a guard (the status is dropped; use
    {!run_status} to observe it). *)
let run e (goal : Term.t) (k : Subst.t -> unit) : unit =
  ignore (run_status e goal k)

(** Force the table entry for an already-canonical call [key] into
    existence — spliced from the resolver or produced to completion —
    without registering a consumer or enumerating its answers.  This is
    the incremental replay's workhorse: replay only needs the call
    table to contain the demanded variants (reports read input modes
    off the table), so instantiating and unifying every answer against
    a discarding continuation would be pure overhead. *)
let demand_status e (key : Term.t) : Guard.status =
  let demand () =
    e.stats.calls <- e.stats.calls + 1;
    Metrics.incr m_call_lookups;
    let entry, is_new = find_entry e key in
    if is_new && not entry.completed then producer e entry
  in
  if e.run_depth > 0 then begin
    demand ();
    Guard.Complete
  end
  else begin
    e.run_depth <- 1;
    match demand () with
    | () ->
        e.run_depth <- 0;
        Guard.Complete
    | exception Guard.Exhausted reason ->
        e.run_depth <- 0;
        Metrics.incr m_aborts;
        let exhausted_entries = force_complete_tables e in
        Guard.Partial { reason; exhausted_entries }
    | exception exn ->
        e.run_depth <- 0;
        Metrics.incr m_aborts;
        recover_after_error e;
        raise exn
  end

(** Distinct canonical solutions of [goal] with the evaluation status. *)
let query_status e (goal : Term.t) : Term.t list * Guard.status =
  let seen = Canon.Tbl.create 32 in
  let out = Vec.create () in
  let status =
    run_status e goal (fun s ->
        let a = Canon.canonical s goal in
        if not (Canon.Tbl.mem seen a) then begin
          Canon.Tbl.add seen a ();
          Vec.push out a
        end)
  in
  (Vec.to_list out, status)

(** Distinct canonical solutions of [goal], in discovery order. *)
let query e (goal : Term.t) : Term.t list = fst (query_status e goal)

(** The call table: every canonical call variant encountered.  Reading
    input modes off this table is the paper's "input groundness for free"
    observation. *)
let calls e : Term.t list =
  Trie.fold (fun _ entry acc -> entry.call :: acc) e.tables []
  |> List.sort Term.compare

(** Recorded answers of every call variant of predicate [p]. *)
let answers_for e (name, arity) : Term.t list =
  Trie.fold
    (fun _ entry acc ->
      match Term.functor_of entry.call with
      | Some (n, a) when String.equal n name && a = arity ->
          Vec.fold (fun acc t -> t :: acc) acc entry.answers
      | _ -> acc)
    e.tables []
  |> List.sort Term.compare

let calls_for e (name, arity) : Term.t list =
  calls e
  |> List.filter (fun c ->
         match Term.functor_of c with
         | Some (n, a) -> String.equal n name && a = arity
         | None -> false)

(* --- outcome serialization (docs/ROBUSTNESS.md) -------------------------- *)

(** Canonical textual dump of the call/answer tables: one line per call
    variant, [call => a1 | a2.] ("-" for an empty answer set), answers
    and lines sorted.  Canonical terms carry first-occurrence variable
    numbering, so two engines that derived the same tables — in any
    discovery order — render byte-identical dumps: the property the
    persistent store's round-trip check and warm-start digests rely on
    (parse a line back and the terms re-enter the hash-cons tables as
    the same canonical forms). *)
let dump_tables e : string =
  let lines =
    Trie.fold
      (fun _ entry acc ->
        let answers =
          Vec.to_list entry.answers
          |> List.sort Term.compare
          |> List.map Pretty.term_to_string
        in
        Printf.sprintf "%s => %s."
          (Pretty.term_to_string entry.call)
          (match answers with [] -> "-" | l -> String.concat " | " l)
        :: acc)
      e.tables []
    |> List.sort compare
  in
  match lines with [] -> "" | _ -> String.concat "\n" lines ^ "\n"

(** MD5 hex of {!dump_tables} — a compact fingerprint of the complete
    analysis outcome, recorded in stored snapshots so a warm-started
    batch can assert bit-identity with recomputation. *)
let table_digest e : string = Digest.to_hex (Digest.string (dump_tables e))

(* Per-entry extraction for the incremental store (docs/INCREMENTAL.md):
   the canonical call, its answers, and the call variants its producer
   consumed from ([deps] — the demand edges a future splice must replay
   so the restored call table is byte-identical to a fresh one).
   Everything is sorted, so the export of a given table state is
   canonical regardless of discovery order. *)
type exported = {
  ex_call : Term.t;
  ex_answers : Term.t list;
  ex_subcalls : Term.t list;
}

let export_tables e : exported list =
  Trie.fold
    (fun _ entry acc ->
      {
        ex_call = entry.call;
        ex_answers = Vec.to_list entry.answers |> List.sort Term.compare;
        ex_subcalls =
          Vec.fold (fun acc d -> d.call :: acc) [] entry.deps
          |> List.sort_uniq Term.compare;
      }
      :: acc)
    e.tables []
  |> List.sort (fun a b -> Term.compare a.ex_call b.ex_call)

let stats e = e.stats

let reset_tables e =
  Trie.clear e.tables;
  e.space_words <- 0;
  e.producing <- [];
  e.run_depth <- 0;
  e.spliced <- 0;
  e.stats.calls <- 0;
  e.stats.table_entries <- 0;
  e.stats.answers <- 0;
  e.stats.duplicates <- 0;
  e.stats.resumptions <- 0;
  e.stats.forced <- 0
