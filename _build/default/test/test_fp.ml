(* Tests for the functional-language frontend (lexer, parser, checker)
   and the call-by-need interpreter. *)

open Prax_fp

let parse = Check.parse_and_check

let run ?fuel src call args = Eval.run ?fuel (parse src) call args

(* --- parsing ---------------------------------------------------------- *)

let test_parse_shapes () =
  let p = parse "f(x, y) = x + y;\ng() = f(1, 2);" in
  Alcotest.(check int) "two functions" 2 (List.length (Ast.functions p));
  match List.hd p with
  | { Ast.fname = "f"; pats = [ Ast.PVar "x"; Ast.PVar "y" ];
      rhs = Ast.Prim ("+", [ Ast.Var "x"; Ast.Var "y" ]) } ->
      ()
  | eq -> Alcotest.failf "unexpected shape %s" (Ast.equation_to_string eq)

let test_parse_precedence () =
  let p = parse "f(x) = 1 + 2 * x;" in
  (match (List.hd p).Ast.rhs with
  | Ast.Prim ("+", [ Ast.Int 1; Ast.Prim ("*", _) ]) -> ()
  | e -> Alcotest.failf "precedence wrong: %s" (Ast.expr_to_string e));
  let p2 = parse "g(x) = 1 : 2 : [] ;" in
  match (List.hd p2).Ast.rhs with
  | Ast.Con (":", [ Ast.Int 1; Ast.Con (":", _) ]) -> ()
  | e -> Alcotest.failf "cons assoc wrong: %s" (Ast.expr_to_string e)

let test_parse_cmp_vs_cons () =
  (* x : xs == [] must parse as (x:xs) == [] — cons binds tighter *)
  let p = parse "f(x, xs) = if x : xs == [] then 1 else 2;" in
  match (List.hd p).Ast.rhs with
  | Ast.If (Ast.Prim ("==", [ Ast.Con (":", _); Ast.Con ("[]", []) ]), _, _) ->
      ()
  | e -> Alcotest.failf "wrong: %s" (Ast.expr_to_string e)

let test_parse_list_sugar () =
  let p = parse "f() = [1, 2, 3];" in
  match (List.hd p).Ast.rhs with
  | Ast.Con (":", [ Ast.Int 1; Ast.Con (":", [ Ast.Int 2; Ast.Con (":", _) ]) ])
    ->
      ()
  | e -> Alcotest.failf "list sugar: %s" (Ast.expr_to_string e)

let test_parse_tuples () =
  let p = parse "swap((a, b)) = (b, a);" in
  match List.hd p with
  | { Ast.pats = [ Ast.PCon ("tup2", [ Ast.PVar "a"; Ast.PVar "b" ]) ];
      rhs = Ast.Con ("tup2", [ Ast.Var "b"; Ast.Var "a" ]); _ } ->
      ()
  | eq -> Alcotest.failf "tuples: %s" (Ast.equation_to_string eq)

let test_parse_and_or_desugar () =
  let p = parse "f(a, b) = a and b;\ng(a, b) = a or b;\nh(a) = not a;" in
  (match (List.hd p).Ast.rhs with
  | Ast.If (Ast.Var "a", Ast.Var "b", Ast.Con ("False", [])) -> ()
  | e -> Alcotest.failf "and: %s" (Ast.expr_to_string e));
  match (List.nth p 2).Ast.rhs with
  | Ast.If (Ast.Var "a", Ast.Con ("False", []), Ast.Con ("True", [])) -> ()
  | e -> Alcotest.failf "not: %s" (Ast.expr_to_string e)

let test_parse_comments () =
  let p = parse "-- a line comment\nf(x) = {- block {- nested -} -} x;" in
  Alcotest.(check int) "one equation" 1 (List.length p)

let test_check_arity_error () =
  Alcotest.check_raises "arity mismatch"
    (Check.Error "function f defined with arity 2, called with 1") (fun () ->
      ignore (parse "f(x, y) = x;\ng(a) = f(a);"))

let test_check_unbound () =
  Alcotest.check_raises "unbound var" (Check.Error "unbound variable z")
    (fun () -> ignore (parse "f(x) = z;"))

let test_check_nonlinear () =
  Alcotest.check_raises "repeated pattern var"
    (Check.Error "f: repeated pattern variable x") (fun () ->
      ignore (parse "f(x, x) = x;"))

let test_check_caf_resolution () =
  let p = parse "k = 42;\nf(x) = x + k;" in
  match (List.nth p 1).Ast.rhs with
  | Ast.Prim ("+", [ Ast.Var "x"; Ast.App ("k", []) ]) -> ()
  | e -> Alcotest.failf "CAF not resolved: %s" (Ast.expr_to_string e)

let test_constructors_collected () =
  let p = parse "f(Leaf(x)) = Node(x, x);" in
  let cs = Ast.constructors p in
  Alcotest.(check bool) "Leaf/1" true (List.mem ("Leaf", 1) cs);
  Alcotest.(check bool) "Node/2" true (List.mem ("Node", 2) cs);
  Alcotest.(check bool) "builtin list cons" true (List.mem (":", 2) cs)

(* --- evaluation -------------------------------------------------------- *)

let test_eval_arith () =
  Alcotest.(check string) "fib" "55"
    (run "fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);" "fib"
       [ Ast.Int 10 ])

let test_eval_lists () =
  Alcotest.(check string) "append" "[1,2,3,4]"
    (run "app([], ys) = ys;\napp(x:xs, ys) = x : app(xs, ys);" "app"
       [
         Ast.Con (":", [ Ast.Int 1; Ast.Con (":", [ Ast.Int 2; Ast.Con ("[]", []) ]) ]);
         Ast.Con (":", [ Ast.Int 3; Ast.Con (":", [ Ast.Int 4; Ast.Con ("[]", []) ]) ]);
       ])

let test_eval_laziness () =
  (* taking from an infinite list terminates: call-by-need *)
  Alcotest.(check string) "take 3 nats" "[0,1,2]"
    (run
       "nats(k) = k : nats(k + 1);\n\
        take(0, xs) = [];\ntake(n, []) = [];\ntake(n, x:xs) = x : take(n-1, xs);"
       "take"
       [ Ast.Int 3; Ast.App ("nats", [ Ast.Int 0 ]) ])

let test_eval_sharing () =
  (* call-by-need evaluates a shared binding once: with call-by-name this
     would exceed the fuel budget *)
  let src =
    "slow(0) = 1;\nslow(n) = slow(n - 1) + slow(n - 1);\n\
     double(x) = x + x;\nmain() = double(slow(18));"
  in
  Alcotest.(check string) "shared thunk" "524288"
    (run ~fuel:3_000_000 src "main" [])

let test_eval_equation_order () =
  let src = "classify(0) = Zero;\nclassify(n) = Other;" in
  Alcotest.(check string) "first match" "Zero" (run src "classify" [ Ast.Int 0 ]);
  Alcotest.(check string) "fallthrough" "Other" (run src "classify" [ Ast.Int 7 ])

let test_eval_divergence_detected () =
  Alcotest.check_raises "bottom diverges" Eval.Diverged (fun () ->
      ignore (run ~fuel:10_000 "bot = bot;" "bot" []))

let test_eval_blackhole () =
  (* recursive lets are rejected at check time (the language has no
     letrec); self-dependency through a function call is detected by the
     fuel bound *)
  Alcotest.check_raises "recursive let rejected"
    (Check.Error "unbound variable y") (fun () ->
      ignore (run "f(x) = let y = y + 1 in y;" "f" [ Ast.Int 0 ]));
  Alcotest.check_raises "self-dependent CAF" Eval.Diverged (fun () ->
      ignore (run ~fuel:100_000 "id(x) = x;\nloop = id(loop);" "loop" []))

let test_eval_pattern_failure () =
  Alcotest.check_raises "no matching equation"
    (Eval.Stuck "pattern match failure in hd") (fun () ->
      ignore (run "hd(x:xs) = x;" "hd" [ Ast.Con ("[]", []) ]))

let test_eval_let_laziness () =
  (* the let-bound diverging computation is never demanded *)
  Alcotest.(check string) "unused let" "5"
    (run ~fuel:10_000 "bot = bot;\nf(x) = let d = bot in x;" "f" [ Ast.Int 5 ])

let test_eval_deep_force () =
  (* printing forces structures deeply *)
  Alcotest.(check string) "nested tuples" "tup2(1,tup2(2,3))"
    (run "f() = (1, (2, 3));" "f" [])

let test_eval_div_by_zero () =
  Alcotest.check_raises "div by zero" (Eval.Stuck "division by zero")
    (fun () -> ignore (run "f(x) = x div 0;" "f" [ Ast.Int 1 ]))

let test_eval_benchmarks_run () =
  (* every corpus benchmark's main() evaluates to a normal form *)
  List.iter
    (fun (b : Prax_benchdata.Registry.fp_bench) ->
      let prog = parse b.Prax_benchdata.Registry.source in
      match Eval.run ~fuel:30_000_000 prog "main" [] with
      | s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s main() nonempty" b.Prax_benchdata.Registry.name)
            true (String.length s > 0)
      | exception Eval.Diverged ->
          Alcotest.failf "%s main() exhausted fuel" b.Prax_benchdata.Registry.name)
    Prax_benchdata.Registry.fp_benchmarks

let () =
  Alcotest.run "prax_fp"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "cons vs cmp" `Quick test_parse_cmp_vs_cons;
          Alcotest.test_case "list sugar" `Quick test_parse_list_sugar;
          Alcotest.test_case "tuples" `Quick test_parse_tuples;
          Alcotest.test_case "and/or/not desugar" `Quick test_parse_and_or_desugar;
          Alcotest.test_case "comments" `Quick test_parse_comments;
        ] );
      ( "checker",
        [
          Alcotest.test_case "arity error" `Quick test_check_arity_error;
          Alcotest.test_case "unbound variable" `Quick test_check_unbound;
          Alcotest.test_case "nonlinear pattern" `Quick test_check_nonlinear;
          Alcotest.test_case "CAF resolution" `Quick test_check_caf_resolution;
          Alcotest.test_case "constructor collection" `Quick
            test_constructors_collected;
        ] );
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "lists" `Quick test_eval_lists;
          Alcotest.test_case "laziness" `Quick test_eval_laziness;
          Alcotest.test_case "sharing (call-by-need)" `Quick test_eval_sharing;
          Alcotest.test_case "equation order" `Quick test_eval_equation_order;
          Alcotest.test_case "divergence" `Quick test_eval_divergence_detected;
          Alcotest.test_case "blackhole" `Quick test_eval_blackhole;
          Alcotest.test_case "pattern failure" `Quick test_eval_pattern_failure;
          Alcotest.test_case "lazy let" `Quick test_eval_let_laziness;
          Alcotest.test_case "deep forcing" `Quick test_eval_deep_force;
          Alcotest.test_case "division by zero" `Quick test_eval_div_by_zero;
          Alcotest.test_case "benchmark mains" `Slow test_eval_benchmarks_run;
        ] );
    ]
