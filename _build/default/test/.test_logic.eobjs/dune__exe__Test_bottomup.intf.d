test/test_bottomup.mli:
