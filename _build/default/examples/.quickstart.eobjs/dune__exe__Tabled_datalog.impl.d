examples/tabled_datalog.ml: Array Bottomup List Logic Prax Prax_tabling Printf String Tabling
