(** Registry entry for Prop groundness: adapts the typed {!Analyze}
    driver to the generic {!Prax_analysis.Analysis} interface (see
    docs/ANALYSES.md).  Registered by [Prax_analyses.Analyses]. *)

open Prax_logic
open Prax_prop
module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics

let counts (st : Prax_tabling.Engine.stats) : Analysis.engine_counts =
  {
    Analysis.calls = st.Prax_tabling.Engine.calls;
    table_entries = st.Prax_tabling.Engine.table_entries;
    answers = st.Prax_tabling.Engine.answers;
    duplicates = st.Prax_tabling.Engine.duplicates;
    resumptions = st.Prax_tabling.Engine.resumptions;
    forced = st.Prax_tabling.Engine.forced;
  }

let result_json (r : Analyze.pred_result) : Metrics.json =
  let name, arity = r.Analyze.pred in
  let args = List.init arity (fun i -> Printf.sprintf "A%d" (i + 1)) in
  Metrics.Obj
    [
      ("name", Metrics.Str name);
      ("arity", Metrics.Int arity);
      ( "success",
        Metrics.Str
          (if r.Analyze.never_succeeds then "unreachable"
           else
             Qm.to_string ~names:(fun i -> List.nth args i) r.Analyze.success)
      );
      ( "definite",
        Metrics.Str
          (String.concat ""
             (List.init arity (fun i ->
                  if r.Analyze.definite.(i) then "g" else "?"))) );
      ("never_succeeds", Metrics.Bool r.Analyze.never_succeeds);
      ( "calls",
        Metrics.Arr
          (List.map (fun p -> Metrics.Str p) r.Analyze.call_patterns) );
    ]

let wrap ~config (rep : Analyze.report) : Analysis.report =
  {
    Analysis.analysis = "groundness";
    config;
    phases = rep.Analyze.phases;
    status = rep.Analyze.status;
    table_bytes = rep.Analyze.table_bytes;
    clause_count = rep.Analyze.clause_count;
    source_lines = None;
    engine = Some (counts rep.Analyze.engine_stats);
    payload_text = Analyze.report_to_string rep;
    payload_json = Metrics.Arr (List.map result_json rep.Analyze.results);
  }

let run ~config ~guard src : Analysis.report =
  let rep =
    match Analysis.config_enum config "mode" [ "dynamic"; "compiled"; "def" ] with
    | "def" ->
        (* def-domain fast path: bottom-up over definite Boolean
           functions, no tabled evaluation (docs/ANALYSES.md) *)
        Def.analyze ~guard src
    | mode_name ->
        let mode =
          if mode_name = "compiled" then Database.Compiled else Database.Dynamic
        in
        Analyze.analyze ~mode ~guard src
  in
  wrap ~config rep

let run_incr ~config ~guard ~cache src : Analysis.report =
  let rep =
    match Analysis.config_enum config "mode" [ "dynamic"; "compiled"; "def" ] with
    | "def" -> Def.analyze_incr ~cache ~guard src
    | mode_name ->
        let mode =
          if mode_name = "compiled" then Database.Compiled else Database.Dynamic
        in
        Analyze.analyze_incr ~cache ~mode ~guard src
  in
  wrap ~config rep

(* Table-compatibility (docs/INCREMENTAL.md): dynamic and compiled run
   the same tabled fixpoint over different clause stores, so their
   fragments are interchangeable — one shared class "prop".  The def
   domain caches implication-set values, a different payload entirely. *)
let table_class config =
  match Analysis.config_enum config "mode" [ "dynamic"; "compiled"; "def" ] with
  | "def" -> "def"
  | _ -> "prop"

let def : Analysis.t =
  {
    Analysis.name = "groundness";
    doc = "Prop-domain groundness analysis of a logic program (Figure 1)";
    kind = Analysis.Logic_program;
    extensions = [ ".pl" ];
    defaults = [ ("mode", "dynamic") ];
    run;
    incremental = Some { Analysis.table_class; run_incr };
  }
