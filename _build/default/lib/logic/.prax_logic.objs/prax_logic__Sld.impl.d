lib/logic/sld.ml: Array Char Database Int List Pretty String Subst Term Unify
