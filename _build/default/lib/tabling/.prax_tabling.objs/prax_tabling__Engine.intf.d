lib/tabling/engine.mli: Database Prax_logic Subst Term
