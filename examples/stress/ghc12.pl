gen(a).
gen(_).
p(X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12) :-
    gen(X1),
    gen(X2),
    gen(X3),
    gen(X4),
    gen(X5),
    gen(X6),
    gen(X7),
    gen(X8),
    gen(X9),
    gen(X10),
    gen(X11),
    gen(X12).
