lib/strict/demand.mli: Prax_logic Term
