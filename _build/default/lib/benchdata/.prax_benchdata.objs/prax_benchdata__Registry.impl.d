lib/benchdata/registry.ml: Fp_programs List Logic_medium Logic_peep Logic_press Logic_read Logic_small String
