lib/benchdata/fp_programs.ml:
