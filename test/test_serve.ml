(* Tests for the process-isolated worker supervisor
   (docs/ROBUSTNESS.md): a SIGKILLed worker is retried and the batch
   still reports every job; a worker sleeping past the watchdog is
   killed; injected guard faults surface as Partial, not crashes; the
   degradation ladder bottoms out in a Crashed record carrying exit
   status and stderr. *)

open Prax_serve
module Guard = Prax_guard.Guard
module Inject = Prax_guard.Inject
module Metrics = Prax_metrics.Metrics

let counter = Metrics.counter_value

(* attempts communicate across processes through marker files: a worker
   that should fail only once creates the marker, dies, and succeeds on
   the retry that finds it *)
let scratch_dir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-serve-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let marker name = Filename.concat scratch_dir name

let once_marker name =
  let path = marker name in
  if Sys.file_exists path then true
  else begin
    close_out (open_out path);
    false
  end

let quick_config =
  {
    Serve.default_config with
    Serve.jobs = 2;
    retries = 2;
    backoff_base = 0.01;
    backoff_factor = 2.0;
  }

let payload_for job = "result:" ^ job

let check_class expected (r : Serve.report) =
  Alcotest.(check string)
    (Printf.sprintf "%s outcome" r.Serve.job)
    expected
    (Serve.outcome_class r.Serve.outcome)

(* --- happy path --------------------------------------------------------- *)

let test_all_complete () =
  let jobs = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ] in
  let reports =
    Serve.run_batch ~config:quick_config
      ~worker:(fun ~job ~attempt:_ ~guard:_ -> (Serve.Complete, payload_for job))
      jobs
  in
  Alcotest.(check (list string)) "reports in input order" jobs
    (List.map (fun r -> r.Serve.job) reports);
  List.iter
    (fun r ->
      check_class "complete" r;
      match r.Serve.outcome with
      | Serve.Done { payload; _ } ->
          Alcotest.(check string) "payload delivered intact"
            (payload_for r.Serve.job) payload
      | Serve.Crashed _ -> Alcotest.fail "crash on healthy worker")
    reports

(* --- kill resilience ----------------------------------------------------- *)

(* the acceptance drill: kill -9 of a worker mid-batch leaves the batch
   completing with that job retried and every job accounted for *)
let test_sigkill_mid_job_is_retried () =
  let victim = "kalah" in
  let jobs = [ "cs"; victim; "disj"; "pg"; "plan" ] in
  let base_crashes = counter "serve.crashes" in
  let base_retries = counter "serve.retries" in
  let reports =
    Serve.run_batch ~config:quick_config
      ~worker:(fun ~job ~attempt:_ ~guard:_ ->
        if String.equal job victim && not (once_marker "sigkill-once") then
          Unix.kill (Unix.getpid ()) Sys.sigkill;
        (Serve.Complete, payload_for job))
      jobs
  in
  Alcotest.(check int) "every job accounted for" (List.length jobs)
    (List.length reports);
  List.iter (check_class "complete") reports;
  let victim_rep = List.find (fun r -> String.equal r.Serve.job victim) reports in
  Alcotest.(check int) "victim needed two attempts" 2 victim_rep.Serve.attempts;
  (match victim_rep.Serve.crashes with
  | [ { Serve.what; _ } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "crash recorded as SIGKILL (got %S)" what)
        true
        (String.length what >= 7 && String.sub what 0 7 = "SIGKILL")
  | l -> Alcotest.failf "expected exactly one crash, got %d" (List.length l));
  Alcotest.(check bool) "serve.crashes bumped" true
    (counter "serve.crashes" > base_crashes);
  Alcotest.(check bool) "serve.retries bumped" true
    (counter "serve.retries" > base_retries)

let test_watchdog_kills_hung_worker () =
  let base_kills = counter "serve.watchdog_kills" in
  let reports =
    Serve.run_batch
      ~config:{ quick_config with Serve.retries = 0; job_timeout = Some 0.25 }
      ~worker:(fun ~job ~attempt:_ ~guard:_ ->
        if String.equal job "sleeper" then Unix.sleepf 30.;
        (Serve.Complete, payload_for job))
      [ "quick"; "sleeper" ]
  in
  Alcotest.(check int) "both jobs reported" 2 (List.length reports);
  check_class "complete" (List.nth reports 0);
  let sleeper = List.nth reports 1 in
  check_class "crashed" sleeper;
  (match sleeper.Serve.outcome with
  | Serve.Crashed { what; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "classified as watchdog kill (got %S)" what)
        true
        (String.length what >= 8 && String.sub what 0 8 = "watchdog")
  | Serve.Done _ -> Alcotest.fail "hung worker reported Done");
  Alcotest.(check bool) "serve.watchdog_kills bumped" true
    (counter "serve.watchdog_kills" > base_kills)

(* a hung worker killed by the watchdog, then clean on retry: the
   ladder turns a transient hang into a completed job *)
let test_hang_then_recover () =
  let reports =
    Serve.run_batch
      ~config:{ quick_config with Serve.retries = 1; job_timeout = Some 0.25 }
      ~worker:(fun ~job:_ ~attempt:_ ~guard:_ ->
        if not (once_marker "hang-once") then Unix.sleepf 30.;
        (Serve.Complete, "recovered"))
      [ "flaky" ]
  in
  match reports with
  | [ r ] ->
      check_class "complete" r;
      Alcotest.(check int) "two attempts" 2 r.Serve.attempts;
      Alcotest.(check bool) "backoff was waited" true (r.Serve.backoff > 0.)
  | _ -> Alcotest.fail "one report expected"

(* --- guard faults surface as Partial, not crashes ------------------------ *)

let nat_src = "nat(0). nat(s(X)) :- nat(X)."

let test_injected_fault_is_partial () =
  let base_partials = counter "serve.partials" in
  let reports =
    Serve.run_batch ~config:quick_config
      ~worker:(fun ~job:_ ~attempt:_ ~guard:_ ->
        (* PR 2's harness plants the fault inside the evaluation; the
           engine degrades to a sound partial result, and the worker
           reports it as such — process isolation must not turn a
           degraded result into a crash *)
        let db = Prax_logic.Database.create () in
        ignore (Prax_logic.Database.load_string db nat_src);
        let e =
          Prax_tabling.Engine.create ~guard:(Inject.abort_at 200) db
        in
        let status =
          Prax_tabling.Engine.run_status e
            (Prax_logic.Parser.parse_term "nat(X)")
            (fun _ -> ())
        in
        match status with
        | Guard.Partial { reason; _ } ->
            ( Serve.Partial_result (Guard.reason_to_string reason),
              Prax_tabling.Engine.dump_tables e )
        | Guard.Complete -> (Serve.Complete, "unexpectedly complete"))
      [ "faulted" ]
  in
  (match reports with
  | [ r ] -> (
      check_class "partial" r;
      Alcotest.(check int) "no retries burned on a sound result" 1
        r.Serve.attempts;
      match r.Serve.outcome with
      | Serve.Done { partial = Some reason; payload; _ } ->
          Alcotest.(check bool) "fault reason propagated" true
            (String.length reason >= 5 && String.sub reason 0 5 = "fault");
          Alcotest.(check bool) "partial tables delivered" true
            (String.length payload > 0)
      | _ -> Alcotest.fail "expected a partial Done")
  | _ -> Alcotest.fail "one report expected");
  Alcotest.(check bool) "serve.partials bumped" true
    (counter "serve.partials" > base_partials)

(* a worker whose in-process budget trips returns Partial through the
   scaled budget the supervisor minted for the attempt *)
let test_budget_partial_through_ladder () =
  let reports =
    Serve.run_batch
      ~config:
        { quick_config with Serve.budget = Guard.spec ~max_steps:400 () }
      ~worker:(fun ~job:_ ~attempt:_ ~guard ->
        let db = Prax_logic.Database.create () in
        ignore (Prax_logic.Database.load_string db nat_src);
        let e = Prax_tabling.Engine.create ~guard db in
        match
          Prax_tabling.Engine.run_status e
            (Prax_logic.Parser.parse_term "nat(X)")
            (fun _ -> ())
        with
        | Guard.Partial { reason; _ } ->
            ( Serve.Partial_result (Guard.reason_to_string reason),
              Prax_tabling.Engine.dump_tables e )
        | Guard.Complete -> (Serve.Complete, "unexpectedly complete"))
      [ "diverging" ]
  in
  match reports with
  | [ r ] -> check_class "partial" r
  | _ -> Alcotest.fail "one report expected"

(* --- the ladder bottoms out cleanly -------------------------------------- *)

let test_crashed_after_all_retries () =
  let reports =
    Serve.run_batch ~config:{ quick_config with Serve.retries = 2 }
      ~worker:(fun ~job:_ ~attempt:_ ~guard:_ ->
        prerr_endline "this worker always dies";
        (* _exit: the forked child must not flush the test harness's
           inherited stdout buffer on its way out *)
        Unix._exit 70)
      [ "doomed" ]
  in
  match reports with
  | [ r ] -> (
      check_class "crashed" r;
      Alcotest.(check int) "all attempts used" 3 r.Serve.attempts;
      Alcotest.(check int) "every attempt recorded" 3
        (List.length r.Serve.crashes);
      match r.Serve.outcome with
      | Serve.Crashed { what; stderr; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "exit status captured (got %S)" what)
            true
            (String.length what >= 7 && String.sub what 0 7 = "exit 70");
          Alcotest.(check bool) "stderr captured" true
            (String.length stderr > 0
            && String.sub stderr 0 4 = "this")
      | Serve.Done _ -> Alcotest.fail "doomed worker reported Done")
  | _ -> Alcotest.fail "one report expected"

(* an uncaught worker exception is a crash with the exception on stderr *)
let test_uncaught_exception_is_crash () =
  let reports =
    Serve.run_batch ~config:{ quick_config with Serve.retries = 0 }
      ~worker:(fun ~job:_ ~attempt:_ ~guard:_ -> failwith "analyzer bug")
      [ "buggy" ]
  in
  match reports with
  | [ { Serve.outcome = Serve.Crashed { stderr; _ }; _ } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "exception text captured (got %S)" stderr)
        true
        (let needle = "analyzer bug" in
         let n = String.length stderr and m = String.length needle in
         let rec find i =
           i + m <= n
           && (String.equal (String.sub stderr i m) needle || find (i + 1))
         in
         find 0)
  | _ -> Alcotest.fail "expected a crashed report"

(* --- warm-start hooks ----------------------------------------------------- *)

let test_cache_hooks () =
  let persisted = ref [] in
  let base_cache = counter "serve.cache_answers" in
  let reports =
    Serve.run_batch ~config:quick_config
      ~cached:(fun ~job ->
        if String.equal job "warm" then Some "from the store" else None)
      ~persist:(fun ~job ~payload -> persisted := (job, payload) :: !persisted)
      ~worker:(fun ~job ~attempt:_ ~guard:_ -> (Serve.Complete, payload_for job))
      [ "warm"; "cold" ]
  in
  (match reports with
  | [ warm; cold ] ->
      check_class "cached" warm;
      Alcotest.(check int) "cached jobs never fork" 0 warm.Serve.attempts;
      (match warm.Serve.outcome with
      | Serve.Done { payload; from_cache = true; _ } ->
          Alcotest.(check string) "cache payload" "from the store" payload
      | _ -> Alcotest.fail "warm not served from cache");
      check_class "complete" cold
  | _ -> Alcotest.fail "two reports expected");
  Alcotest.(check (list (pair string string))) "complete results persisted"
    [ ("cold", payload_for "cold") ]
    !persisted;
  Alcotest.(check bool) "serve.cache_answers bumped" true
    (counter "serve.cache_answers" > base_cache)

(* --- env-planted worker faults (the CI fault-injection surface) ---------- *)

let test_env_fault_grammar () =
  let f v job attempt =
    Inject.worker_fault_of_string ~job ~attempt v
  in
  Alcotest.(check bool) "crash matches job+attempt" true
    (f "crash:kalah:1" "kalah" 1 = Some Inject.Kill_self);
  Alcotest.(check bool) "attempt mismatch" true
    (f "crash:kalah:1" "kalah" 2 = None);
  Alcotest.(check bool) "job wildcard" true
    (f "exit:*:2" "anything" 2 = Some Inject.Exit_nonzero);
  Alcotest.(check bool) "any attempt when omitted" true
    (f "hang:qsort" "qsort" 7 = Some Inject.Hang);
  Alcotest.(check bool) "first match wins across directives" true
    (f "crash:a:1,hang:b" "b" 3 = Some Inject.Hang);
  (* batch job ids contain ':' — the attempt selector is only the last
     segment, and only when it is an integer *)
  Alcotest.(check bool) "colon in job id, no attempt" true
    (f "crash:groundness:qsort" "groundness:qsort" 2 = Some Inject.Kill_self);
  Alcotest.(check bool) "colon in job id, with attempt" true
    (f "crash:groundness:qsort:1" "groundness:qsort" 1 = Some Inject.Kill_self);
  Alcotest.(check bool) "colon in job id, attempt mismatch" true
    (f "crash:groundness:qsort:1" "groundness:qsort" 2 = None);
  Alcotest.(check bool) "junk is inert" true (f "frobnicate" "x" 1 = None)

let test_env_planted_crash_retried () =
  (* plant a first-attempt SIGKILL through the same env surface the CI
     sweep uses, then confirm the ladder absorbs it *)
  Unix.putenv Inject.inject_worker_var "crash:victim:1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv Inject.inject_worker_var "")
    (fun () ->
      let reports =
        Serve.run_batch ~config:quick_config
          ~worker:(fun ~job ~attempt ~guard:_ ->
            (match Inject.worker_fault_of_env ~job ~attempt () with
            | Some fault -> Inject.apply_worker_fault fault
            | None -> ());
            (Serve.Complete, payload_for job))
          [ "victim"; "bystander" ]
      in
      Alcotest.(check int) "both jobs reported" 2 (List.length reports);
      List.iter (check_class "complete") reports;
      let victim = List.hd reports in
      Alcotest.(check int) "victim retried" 2 victim.Serve.attempts)

let () =
  Alcotest.run "serve"
    [
      ( "supervision",
        [
          Alcotest.test_case "all jobs complete, order kept" `Quick
            test_all_complete;
          Alcotest.test_case "SIGKILL mid-job is retried" `Quick
            test_sigkill_mid_job_is_retried;
          Alcotest.test_case "watchdog kills hung worker" `Quick
            test_watchdog_kills_hung_worker;
          Alcotest.test_case "hang then recover via retry" `Quick
            test_hang_then_recover;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "injected guard fault => Partial" `Quick
            test_injected_fault_is_partial;
          Alcotest.test_case "budget trip => Partial through ladder" `Quick
            test_budget_partial_through_ladder;
          Alcotest.test_case "crashed after all retries" `Quick
            test_crashed_after_all_retries;
          Alcotest.test_case "uncaught exception is a crash" `Quick
            test_uncaught_exception_is_crash;
        ] );
      ( "warm-start",
        [ Alcotest.test_case "cache and persist hooks" `Quick test_cache_hooks ]
      );
      ( "fault-injection",
        [
          Alcotest.test_case "env grammar" `Quick test_env_fault_grammar;
          Alcotest.test_case "env-planted crash retried" `Quick
            test_env_planted_crash_retried;
        ] );
    ]
