(* Tests for Prop-domain groundness analysis (Figure 1 / Table 1).
   Includes the paper's running example: the success set of gp_ap is the
   truth table of (X1 ∧ X2) ↔ X3. *)

open Prax_logic
open Prax_prop
open Prax_ground

let result_for rep p =
  List.find (fun r -> r.Analyze.pred = p) rep.Analyze.results

let analyze = Analyze.analyze

let check_definite msg rep p expected =
  let r = result_for rep p in
  let got =
    String.concat ""
      (Array.to_list (Array.map (fun b -> if b then "g" else "?") r.Analyze.definite))
  in
  Alcotest.(check string) msg expected got

(* --- the paper's Figure 2 example --------------------------------------- *)

let ap_src = "ap([], Ys, Ys). ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs)."

let test_ap_success_set () =
  let rep = analyze ap_src in
  let r = result_for rep ("ap", 3) in
  (* rows of (X1 ∧ X2) ↔ X3: ttt, tff, ftf, fff *)
  let expected =
    Bf.of_tuples 3
      [
        [ Some true; Some true; Some true ];
        [ Some true; Some false; Some false ];
        [ Some false; Some true; Some false ];
        [ Some false; Some false; Some false ];
      ]
  in
  Alcotest.(check bool) "success set = (X1&X2)<->X3" true
    (Bf.equal r.Analyze.success expected)

let test_ap_definite () =
  (* no argument of ap is ground in all answers *)
  check_definite "ap definite" (analyze ap_src) ("ap", 3) "???"

let test_ap_formula_rendering () =
  let rep = analyze ap_src in
  let r = result_for rep ("ap", 3) in
  let s = Qm.to_string ~names:(fun i -> [ "X"; "Y"; "Z" ] |> fun l -> List.nth l i) r.Analyze.success in
  (* minimal SOP of (X∧Y)↔Z; exact form depends on cover choice, but it
     must mention all three variables and contain 3 cubes *)
  Alcotest.(check bool) "formula nonempty" true (String.length s > 5)

(* --- definite groundness propagation ------------------------------------ *)

let test_facts_ground () =
  let rep = analyze "p(a, b). p(c, d)." in
  check_definite "ground facts" rep ("p", 2) "gg"

let test_mixed_facts () =
  let rep = analyze "p(a, X). p(c, d)." in
  check_definite "second arg open" rep ("p", 2) "g?"

let test_propagation_through_calls () =
  let rep =
    analyze
      "base(a). wrap(f(X)) :- base(X). pair(X, Y) :- wrap(X), wrap(Y)."
  in
  check_definite "wrap grounds" rep ("wrap", 1) "g";
  check_definite "pair grounds both" rep ("pair", 2) "gg"

let test_unification_grounds () =
  let rep = analyze "p(X, Y) :- X = f(Y), Y = a." in
  check_definite "chained =" rep ("p", 2) "gg"

let test_arithmetic_grounds () =
  let rep = analyze "inc(X, Y) :- Y is X + 1." in
  check_definite "is/2 grounds" rep ("inc", 2) "gg"

let test_comparison_grounds () =
  let rep = analyze "lt(X, Y) :- X < Y." in
  check_definite "</2 grounds" rep ("lt", 2) "gg"

let test_never_succeeds () =
  let rep = analyze "p(X) :- fail. q(X) :- a = b." in
  Alcotest.(check bool) "fail detected" true
    (result_for rep ("p", 1)).Analyze.never_succeeds;
  Alcotest.(check bool) "static clash detected" true
    (result_for rep ("q", 1)).Analyze.never_succeeds

let test_recursive_never_ground () =
  (* s(X) keeps X's groundness open through infinite data *)
  let rep = analyze "stream(X) :- stream(X)." in
  Alcotest.(check bool) "empty success set" true
    (result_for rep ("stream", 1)).Analyze.never_succeeds

let test_disjunction () =
  let rep = analyze "p(X) :- (X = a ; X = f(Y))." in
  let r = result_for rep ("p", 1) in
  (* X ground in first branch, open in second: both rows present *)
  Alcotest.(check bool) "both groundness values" true
    (Bf.equal r.Analyze.success (Bf.top 1))

let test_if_then_else_sound () =
  let rep = analyze "p(X, Y) :- (X = a -> Y = b ; Y = c)." in
  check_definite "both branches ground Y" rep ("p", 2) "?g"

let test_negation_sound () =
  let rep = analyze "p(X) :- \\+ q(X). q(a)." in
  let r = result_for rep ("p", 1) in
  Alcotest.(check bool) "naf binds nothing" true
    (Bf.equal r.Analyze.success (Bf.top 1))

let test_var_test_binds_nothing () =
  let rep = analyze "p(X) :- var(X)." in
  Alcotest.(check bool) "var/1 top" true
    (Bf.equal (result_for rep ("p", 1)).Analyze.success (Bf.top 1))

let test_type_test_grounds () =
  let rep = analyze "p(X) :- atom(X)." in
  check_definite "atom/1 grounds" rep ("p", 1) "g"

let test_cut_ignored () =
  let rep = analyze "max(X, Y, X) :- X >= Y, !. max(X, Y, Y)." in
  (* sound over-approximation: both clauses contribute *)
  let r = result_for rep ("max", 3) in
  (* clause 1 contributes (t,t,t); clause 2 shares Y across args 2,3 and
     contributes (x,y,y) for all x,y *)
  let expected =
    Bf.of_tuples 3
      [
        [ Some true; Some true; Some true ];
        [ Some true; Some false; Some false ];
        [ Some false; Some true; Some true ];
        [ Some false; Some false; Some false ];
      ]
  in
  Alcotest.(check bool) "success set" true (Bf.equal r.Analyze.success expected);
  check_definite "no definite args across both clauses" rep ("max", 3) "???"

(* --- input modes (call patterns) ---------------------------------------- *)

let test_call_patterns () =
  let rep =
    analyze "main(Y) :- helper(a, Y).\nhelper(X, f(X))."
  in
  let r = result_for rep ("helper", 2) in
  (* called from main with first arg ground: pattern g? plus the open
     pattern ?? from the driver's open query *)
  Alcotest.(check (list string)) "input modes" [ "??"; "g?" ]
    (List.sort compare r.Analyze.call_patterns)

(* --- phases and metadata ------------------------------------------------ *)

let test_phases_positive () =
  let rep = analyze ap_src in
  Alcotest.(check bool) "preproc >= 0" true (rep.Analyze.phases.Analyze.preproc >= 0.);
  Alcotest.(check bool) "total > 0" true (Analyze.total rep.Analyze.phases > 0.);
  Alcotest.(check bool) "table space > 0" true (rep.Analyze.table_bytes > 0)

let test_modes_agree () =
  let src =
    "rev([], A, A). rev([H|T], A, R) :- rev(T, [H|A], R).\n\
     top(X) :- rev([a,b,c], [], X)."
  in
  let r1 = analyze ~mode:Database.Dynamic src in
  let r2 = analyze ~mode:Database.Compiled src in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s agree" (fst a.Analyze.pred))
        true
        (Bf.equal a.Analyze.success b.Analyze.success))
    r1.Analyze.results r2.Analyze.results

(* soundness property: definite groundness claims hold on concrete runs *)
let prop_soundness_src =
  [
    ("ap([],Y,Y). ap([H|T],Y,[H|Z]) :- ap(T,Y,Z).", "ap([1,2],[3],R)", "ap");
    ( "rev([],A,A). rev([H|T],A,R) :- rev(T,[H|A],R).",
      "rev([a,b],[],R)",
      "rev" );
    ( "len([],0). len([_|T],N) :- len(T,M), N is M + 1.",
      "len([a,b,c],N)",
      "len" );
  ]

let test_soundness_on_concrete_runs () =
  List.iter
    (fun (src, query, pname) ->
      let rep = analyze src in
      let db = Database.create () in
      ignore (Database.load_string db src);
      let goal = Parser.parse_term query in
      let arity = Array.length (Term.args_of goal) in
      let r = result_for rep (pname, arity) in
      let sols = Sld.solutions db goal in
      List.iter
        (fun s ->
          Array.iteri
            (fun i arg ->
              if r.Analyze.definite.(i) then
                Alcotest.(check bool)
                  (Printf.sprintf "%s arg %d ground" pname (i + 1))
                  true
                  (Subst.is_ground_under s arg))
            (Term.args_of goal))
        sols)
    prop_soundness_src

(* --- def domain (mode=def) ---------------------------------------------- *)

module Guard = Prax_guard.Guard

(* def cannot express disjunctive groundness, so its success sets must
   contain the Prop ones — never the other way round *)
let def_over_approx_srcs =
  [
    ap_src;
    "p(X) :- (X = a ; X = f(Y)).";
    "max(X, Y, X) :- X >= Y, !. max(X, Y, Y).";
    "base(a). wrap(f(X)) :- base(X). pair(X, Y) :- wrap(X), wrap(Y).";
    "or(X, Y) :- (X = a ; Y = b).";
    "rev([], A, A). rev([H|T], A, R) :- rev(T, [H|A], R).";
  ]

let test_def_over_approximates () =
  List.iter
    (fun src ->
      let dyn = analyze src and def = Def.analyze src in
      List.iter2
        (fun d f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d: dynamic implies def" (fst d.Analyze.pred)
               (snd d.Analyze.pred))
            true
            (Bf.implies d.Analyze.success f.Analyze.success))
        dyn.Analyze.results def.Analyze.results)
    def_over_approx_srcs

(* on programs whose Prop success set is itself a definite function, the
   two modes agree exactly — ap's (X1&X2)<->X3 is the paper's example *)
let test_def_agrees_when_definite () =
  List.iter
    (fun src ->
      let dyn = analyze src and def = Def.analyze src in
      List.iter2
        (fun d f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d: modes agree" (fst d.Analyze.pred)
               (snd d.Analyze.pred))
            true
            (Bf.equal d.Analyze.success f.Analyze.success))
        dyn.Analyze.results def.Analyze.results)
    [
      ap_src;
      "p(a, b). p(c, d).";
      "p(X, Y) :- X = f(Y), Y = a.";
      "inc(X, Y) :- Y is X + 1.";
      "base(a). wrap(f(X)) :- base(X). pair(X, Y) :- wrap(X), wrap(Y).";
    ]

let test_def_definite_and_failure () =
  let rep = Def.analyze "p(a, b). p(c, d)." in
  check_definite "def ground facts" rep ("p", 2) "gg";
  let rep = Def.analyze "p(X) :- fail. q(X) :- a = b." in
  Alcotest.(check bool) "def fail detected" true
    (result_for rep ("p", 1)).Analyze.never_succeeds;
  Alcotest.(check bool) "def static clash detected" true
    (result_for rep ("q", 1)).Analyze.never_succeeds;
  Alcotest.(check bool) "def is goal-independent" true
    ((result_for rep ("p", 1)).Analyze.call_patterns = [])

(* the Genaim–Howe–Codish shape: 2^n distinct answer variants for the
   tabled Prop evaluation, a two-element implication store for def.
   Under the same step budget dynamic degrades to Partial while def
   completes — the property examples/stress/ turns into benchmarks. *)
let worst_case n =
  let args = List.init n (fun i -> Printf.sprintf "X%d" (i + 1)) in
  Printf.sprintf "gen(a).\ngen(_).\np(%s) :- %s.\n"
    (String.concat ", " args)
    (String.concat ", " (List.map (fun a -> "gen(" ^ a ^ ")") args))

let test_def_immune_to_worst_case () =
  let src = worst_case 12 in
  let dyn = analyze ~guard:(Guard.create ~max_steps:20000 ()) src in
  let def = Def.analyze ~guard:(Guard.create ~max_steps:20000 ()) src in
  Alcotest.(check bool) "dynamic trips the budget" true
    (Guard.is_partial dyn.Analyze.status);
  Alcotest.(check bool) "def completes" true
    (def.Analyze.status = Guard.Complete);
  (* and still lands the right answer: p's success set is top *)
  Alcotest.(check bool) "def success = top" true
    (Bf.equal (result_for def ("p", 12)).Analyze.success (Bf.top 12))

let test_def_partial_is_top () =
  (* a tripped def run must widen every value to top, not report the
     intermediate under-approximation *)
  let def = Def.analyze ~guard:(Guard.create ~max_steps:1 ()) ap_src in
  Alcotest.(check bool) "partial" true (Guard.is_partial def.Analyze.status);
  List.iter
    (fun r ->
      let arity = snd r.Analyze.pred in
      Alcotest.(check bool)
        (Printf.sprintf "%s widened to top" (fst r.Analyze.pred))
        true
        (Bf.equal r.Analyze.success (Bf.top arity)))
    def.Analyze.results

let () =
  Alcotest.run "prax_ground"
    [
      ( "paper example",
        [
          Alcotest.test_case "ap success set" `Quick test_ap_success_set;
          Alcotest.test_case "ap definite" `Quick test_ap_definite;
          Alcotest.test_case "ap formula" `Quick test_ap_formula_rendering;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "ground facts" `Quick test_facts_ground;
          Alcotest.test_case "mixed facts" `Quick test_mixed_facts;
          Alcotest.test_case "through calls" `Quick test_propagation_through_calls;
          Alcotest.test_case "unification" `Quick test_unification_grounds;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic_grounds;
          Alcotest.test_case "comparison" `Quick test_comparison_grounds;
          Alcotest.test_case "never succeeds" `Quick test_never_succeeds;
          Alcotest.test_case "recursive empty" `Quick test_recursive_never_ground;
          Alcotest.test_case "disjunction" `Quick test_disjunction;
          Alcotest.test_case "if-then-else" `Quick test_if_then_else_sound;
          Alcotest.test_case "negation" `Quick test_negation_sound;
          Alcotest.test_case "var test" `Quick test_var_test_binds_nothing;
          Alcotest.test_case "type test" `Quick test_type_test_grounds;
          Alcotest.test_case "cut ignored" `Quick test_cut_ignored;
        ] );
      ( "input modes",
        [ Alcotest.test_case "call patterns" `Quick test_call_patterns ] );
      ( "driver",
        [
          Alcotest.test_case "phases" `Quick test_phases_positive;
          Alcotest.test_case "modes agree" `Quick test_modes_agree;
          Alcotest.test_case "soundness on concrete runs" `Quick
            test_soundness_on_concrete_runs;
        ] );
      ( "def domain",
        [
          Alcotest.test_case "over-approximates Prop" `Quick
            test_def_over_approximates;
          Alcotest.test_case "agrees on definite programs" `Quick
            test_def_agrees_when_definite;
          Alcotest.test_case "definite args and failure" `Quick
            test_def_definite_and_failure;
          Alcotest.test_case "immune to worst case" `Quick
            test_def_immune_to_worst_case;
          Alcotest.test_case "partial widens to top" `Quick
            test_def_partial_is_top;
        ] );
    ]
