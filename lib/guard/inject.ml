(** Fault-injection harness: guards that abort or raise at the Nth
    engine event.

    The point is to make the abort-anywhere property testable: for a
    deterministic engine run, event [n] identifies a unique program
    point, so [abort_at n] tears the evaluation down exactly there.
    Sweeping [n] over a run's event span (measured with
    {!Guard.counting}) and asserting after every abort that

    - the reported answers are a sound over-approximation restricted to
      completed-or-widened table entries, and
    - the same engine instance completes a fresh query afterwards

    proves that no engine event leaves the tables in a state the
    degradation machinery cannot repair.  [test/test_guard.ml] runs this
    sweep. *)

(** [abort_at n] trips a {!Guard.Fault} exactly at event [n] (one-shot:
    the engine stays usable afterwards without swapping guards). *)
let abort_at ?timeout ?max_steps ?max_table_bytes n : Guard.t =
  Guard.create ?timeout ?max_steps ?max_table_bytes
    ~on_event:(fun k ->
      if k = n then raise (Guard.Exhausted (Guard.Fault "injected-abort")))
    ()

(** [raise_at n exn] raises an arbitrary exception at event [n] —
    modelling a crashing user builtin rather than a budget trip.  The
    engine must recover its table invariants (discarding entries whose
    producers were interrupted) rather than degrade to a partial
    result. *)
let raise_at n exn : Guard.t =
  Guard.create ~on_event:(fun k -> if k = n then raise exn) ()

(** Event span of a deterministic run: execute [f] under a counting
    guard and return how many events it saw.  The sweep range for
    {!abort_at}. *)
let events_of (f : Guard.t -> unit) : int =
  let g = Guard.counting () in
  f g;
  Guard.steps g

(** {1 Worker-process faults}

    The in-process harness above proves abort-anywhere for one engine;
    the supervisor ({!Prax_serve}) additionally promises that a worker
    {e process} dying arbitrarily — SIGKILL, OOM-kill, a hang — cannot
    take down a batch.  That promise is exercised by planting faults in
    the worker via an environment variable, because the fault must
    occur in the forked child, beyond any in-process control flow the
    supervisor could see.

    Grammar of [PRAX_INJECT_WORKER] (comma-separated directives):

    {v kind:job[:attempt]     kind ∈ {crash, exit, hang}
crash:kalah:1          SIGKILL itself on kalah's first attempt
exit:*:2               exit(70) on every job's second attempt
hang:qsort             sleep forever on every qsort attempt v}

    [job] is the job id ["*"] for any; [attempt] is 1-based, omitted
    for any.  Faults are planted before the analysis starts, so a
    crashed attempt has produced no result frame — exactly the
    worker-death shape the retry ladder must absorb. *)

type worker_fault =
  | Kill_self  (** SIGKILL own pid: the mid-job `kill -9` drill *)
  | Exit_nonzero  (** exit(70): a crashing worker that dies politely *)
  | Hang  (** sleep past any watchdog: exercises the SIGKILL path *)

let inject_worker_var = "PRAX_INJECT_WORKER"

let worker_fault_of_string ~job ~attempt (value : string) :
    worker_fault option =
  let directive d =
    let d = String.trim d in
    match String.index_opt d ':' with
    | None -> None
    | Some i -> (
        let kind = String.sub d 0 i in
        let rest = String.sub d (i + 1) (String.length d - i - 1) in
        (* job names may themselves contain ':' (batch job ids are
           "analysis:input"), so the attempt selector is only the
           *last* segment, and only when it parses as an integer *)
        let job, attempt =
          match String.rindex_opt rest ':' with
          | None -> (rest, None)
          | Some j -> (
              let tail =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              match int_of_string_opt tail with
              | Some n -> (String.sub rest 0 j, Some n)
              | None ->
                  if String.equal tail "" then (String.sub rest 0 j, None)
                  else (rest, None))
        in
        if String.equal job "" then None else Some (kind, job, attempt))
  in
  let matches (kind, j, a) =
    (String.equal j "*" || String.equal j job)
    && (match a with None -> true | Some n -> n = attempt)
    &&
    match kind with "crash" | "exit" | "hang" -> true | _ -> false
  in
  String.split_on_char ',' value
  |> List.filter_map directive
  |> List.find_opt matches
  |> Option.map (fun (kind, _, _) ->
         match kind with
         | "crash" -> Kill_self
         | "exit" -> Exit_nonzero
         | _ -> Hang)

(** The fault planted for [job]'s [attempt], read from
    [PRAX_INJECT_WORKER] (unset / no match: [None]). *)
let worker_fault_of_env ~job ~attempt () : worker_fault option =
  match Sys.getenv_opt inject_worker_var with
  | None | Some "" -> None
  | Some v -> worker_fault_of_string ~job ~attempt v

(** Execute a planted fault inside the worker process.  Does not
    return (kills, exits, or sleeps far past any sane watchdog). *)
let apply_worker_fault : worker_fault -> unit = function
  | Kill_self -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Exit_nonzero -> exit 70
  | Hang ->
      (* long enough that only the watchdog ends it; loop in case a
         stray signal interrupts the sleep *)
      while true do
        Unix.sleepf 3600.
      done
