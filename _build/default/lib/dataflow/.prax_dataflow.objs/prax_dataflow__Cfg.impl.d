lib/dataflow/cfg.ml: List Printf String
