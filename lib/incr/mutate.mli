(** Deterministic source mutations — the edit generator behind the
    incremental-vs-scratch oracle and the bench [incremental] section
    (docs/INCREMENTAL.md).

    Every mutation is a function of the seed alone (a fixed linear
    congruential generator, no global state), so a sweep is reproducible
    across machines and CI runs.  Mutations preserve parseability: a
    logic program is re-printed from its parsed form (directives kept,
    operator tables respected), a functional program gets textually
    appended definitions that the checker accepts. *)

val mutate_pl : seed:int -> string -> string option
(** One seeded single-clause edit of a Prolog source: delete a clause,
    truncate the last body literal of a clause, or swap two adjacent
    clauses.  The result is the re-printed program (normalized
    whitespace; [op] directives preserved in place).  [None] when no
    mutation applies (e.g. a one-clause program with empty bodies) or
    the source does not parse. *)

val mutate_eq : seed:int -> string -> string option
(** One seeded edit of a functional ([.eq]) source: append a fresh
    seed-named definition (identity- or recursion-shaped), which is
    always checker-valid and never captures existing names.  [None]
    only for the empty source. *)

val apply_n :
  seed:int -> n:int -> (seed:int -> string -> string option) -> string ->
  string option
(** [apply_n ~seed ~n m src] — [n] successive mutations with seeds
    [seed], [seed+1], …; [None] as soon as one step yields [None].
    The bench edit-distance sweep uses this for 1/4/16-clause edits. *)
