(** Adornment, magic sets, and supplementary magic for the bottom-up
    engine.

    Magic sets is the transformation the paper contrasts with tabling:
    Codish–Demoen obtain call patterns by a magic transformation, while
    tabled top-down evaluation records them for free in the call table.
    Supplementary magic factors common body prefixes into supplementary
    predicates — the deductive-database analogue of the "supplementary
    tabling" optimization Section 4.2 mentions for the strictness
    analyser. *)

open Prax_logic

type adornment = string  (** e.g. "bf": one char per argument *)

let adorn_of_args bound (args : Term.t array) : adornment =
  String.init (Array.length args) (fun i ->
      match args.(i) with
      | Term.Var v -> if List.mem v bound then 'b' else 'f'
      | _ -> 'b')

let adorned_name name (a : adornment) = Printf.sprintf "%s$%s" name a

let bound_args (a : adornment) (args : Term.t array) : Term.t array =
  let out = ref [] in
  String.iteri (fun i c -> if c = 'b' then out := args.(i) :: !out) a;
  Array.of_list (List.rev !out)

let magic_name name (a : adornment) = Printf.sprintf "m$%s$%s" name a

let count_bound (a : adornment) =
  String.fold_left (fun n c -> n + if c = 'b' then 1 else 0) 0 a

(* predicates defined by at least one rule with a nonempty body, plus any
   predicate with derived facts — here simply: any head predicate; base
   relations ($iff, $dom) are the rest *)
let intensional_preds (rules : Datalog.rule list) : (string * int, unit) Hashtbl.t
    =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (r : Datalog.rule) ->
      if r.Datalog.body <> [] then Hashtbl.replace t r.Datalog.head.Datalog.pred ())
    rules;
  t

let vars_of_args (args : Term.t array) =
  Array.to_list args |> List.filter_map (function Term.Var v -> Some v | _ -> None)

(** Adorn the program for the given query.  Returns the adorned rules and
    the adorned query atom.  Extensional predicates keep their names. *)
let adorn (rules : Datalog.rule list) (query : Datalog.atom) :
    Datalog.rule list * Datalog.atom =
  let intensional = intensional_preds rules in
  let by_pred = Hashtbl.create 32 in
  List.iter
    (fun (r : Datalog.rule) ->
      if r.Datalog.body <> [] then begin
        let p = r.Datalog.head.Datalog.pred in
        Hashtbl.replace by_pred p
          (r :: Option.value ~default:[] (Hashtbl.find_opt by_pred p))
      end)
    rules;
  (* facts of extensional predicates pass through unchanged; facts of
     intensional predicates are re-emitted under every adornment in use *)
  let facts =
    List.filter
      (fun (r : Datalog.rule) ->
        r.Datalog.body = []
        && not (Hashtbl.mem intensional r.Datalog.head.Datalog.pred))
      rules
  in
  let facts_by_pred = Hashtbl.create 32 in
  List.iter
    (fun (r : Datalog.rule) ->
      if r.Datalog.body = [] && Hashtbl.mem intensional r.Datalog.head.Datalog.pred
      then
        Hashtbl.replace facts_by_pred r.Datalog.head.Datalog.pred
          (r
          :: Option.value ~default:[]
               (Hashtbl.find_opt facts_by_pred r.Datalog.head.Datalog.pred)))
    rules;
  let out = ref [] in
  let done_ = Hashtbl.create 32 in
  let rec process (pred, (a : adornment)) =
    if not (Hashtbl.mem done_ (pred, a)) then begin
      Hashtbl.add done_ (pred, a) ();
      let name, k = pred in
      List.iter
        (fun (r : Datalog.rule) ->
          out :=
            {
              r with
              Datalog.head =
                { r.Datalog.head with Datalog.pred = (adorned_name name a, k) };
            }
            :: !out)
        (Option.value ~default:[] (Hashtbl.find_opt facts_by_pred pred));
      let prules =
        Option.value ~default:[] (Hashtbl.find_opt by_pred pred) |> List.rev
      in
      List.iter
        (fun (r : Datalog.rule) ->
          (* head vars at bound positions are bound *)
          let bound = ref [] in
          String.iteri
            (fun i c ->
              if c = 'b' then
                match r.Datalog.head.Datalog.args.(i) with
                | Term.Var v -> bound := v :: !bound
                | _ -> ())
            a;
          let body' =
            List.map
              (fun (b : Datalog.atom) ->
                let name, k = b.Datalog.pred in
                let atom' =
                  if Hashtbl.mem intensional b.Datalog.pred then begin
                    let ad = adorn_of_args !bound b.Datalog.args in
                    process (b.Datalog.pred, ad);
                    { b with Datalog.pred = (adorned_name name ad, k) }
                  end
                  else b
                in
                bound := vars_of_args b.Datalog.args @ !bound;
                atom')
              r.Datalog.body
          in
          let name, k = pred in
          out :=
            {
              Datalog.head =
                { r.Datalog.head with Datalog.pred = (adorned_name name a, k) };
              body = body';
            }
            :: !out)
        prules
    end
  in
  let qa = adorn_of_args [] query.Datalog.args in
  (if Hashtbl.mem intensional query.Datalog.pred then
     process (query.Datalog.pred, qa));
  let query' =
    if Hashtbl.mem intensional query.Datalog.pred then
      let name, k = query.Datalog.pred in
      { query with Datalog.pred = (adorned_name name qa, k) }
    else query
  in
  (facts @ List.rev !out, query')

(* split an adorned name back into base name and adornment *)
let split_adorned name =
  match String.rindex_opt name '$' with
  | Some i when i > 0 && String.length name > i + 1
                && String.for_all (fun c -> c = 'b' || c = 'f')
                     (String.sub name (i + 1) (String.length name - i - 1)) ->
      Some (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | _ -> None

(** Magic transformation (assumes an adorned program).  Returns the
    transformed rules (including the seed) and the query. *)
let magic (rules : Datalog.rule list) (query : Datalog.atom) :
    Datalog.rule list * Datalog.atom =
  let adorned, query' = adorn rules query in
  let intensional = intensional_preds adorned in
  let out = ref [] in
  List.iter
    (fun (r : Datalog.rule) ->
      if r.Datalog.body = [] then out := r :: !out
      else begin
        let hname, _ = r.Datalog.head.Datalog.pred in
        match split_adorned hname with
        | None -> out := r :: !out
        | Some (base, a) ->
            let magic_head_atom =
              {
                Datalog.pred = (magic_name base a, count_bound a);
                args = bound_args a r.Datalog.head.Datalog.args;
              }
            in
            (* guarded original rule *)
            out :=
              { r with Datalog.body = magic_head_atom :: r.Datalog.body }
              :: !out;
            (* magic rules for intensional body literals *)
            let rec go prefix = function
              | [] -> ()
              | (b : Datalog.atom) :: rest ->
                  let bname, _ = b.Datalog.pred in
                  (match split_adorned bname with
                  | Some (bbase, ba) when Hashtbl.mem intensional b.Datalog.pred
                    ->
                      out :=
                        {
                          Datalog.head =
                            {
                              Datalog.pred = (magic_name bbase ba, count_bound ba);
                              args = bound_args ba b.Datalog.args;
                            };
                          body = magic_head_atom :: List.rev prefix;
                        }
                        :: !out
                  | _ -> ());
                  go (b :: prefix) rest
            in
            go [] r.Datalog.body
      end)
    adorned;
  (* seed *)
  let qname, _ = query'.Datalog.pred in
  (match split_adorned qname with
  | Some (base, a) ->
      out :=
        {
          Datalog.head =
            {
              Datalog.pred = (magic_name base a, count_bound a);
              args = bound_args a query'.Datalog.args;
            };
          body = [];
        }
        :: !out
  | None -> ());
  (List.rev !out, query')

(** Supplementary magic: like {!magic}, but body prefixes are factored
    through supplementary predicates so each join prefix is computed
    once. *)
let supplementary (rules : Datalog.rule list) (query : Datalog.atom) :
    Datalog.rule list * Datalog.atom =
  let adorned, query' = adorn rules query in
  let intensional = intensional_preds adorned in
  let out = ref [] in
  let rule_no = ref 0 in
  List.iter
    (fun (r : Datalog.rule) ->
      if r.Datalog.body = [] then out := r :: !out
      else begin
        incr rule_no;
        let hname, _ = r.Datalog.head.Datalog.pred in
        match split_adorned hname with
        | None -> out := r :: !out
        | Some (base, a) ->
            let magic_head_atom =
              {
                Datalog.pred = (magic_name base a, count_bound a);
                args = bound_args a r.Datalog.head.Datalog.args;
              }
            in
            (* variables needed after body position i: head vars + later
               body vars *)
            let body_arr = Array.of_list r.Datalog.body in
            let n = Array.length body_arr in
            let head_vars = vars_of_args r.Datalog.head.Datalog.args in
            let needed_after i =
              let later = ref [] in
              for j = i to n - 1 do
                later := vars_of_args body_arr.(j).Datalog.args @ !later
              done;
              List.sort_uniq Int.compare (head_vars @ !later)
            in
            (* sup_0 = magic head; sup_i joins sup_{i-1} with literal i *)
            let sup_pred i vars =
              ( Printf.sprintf "sup$%d$%d" !rule_no i,
                List.length vars )
            in
            let avail = ref (vars_of_args magic_head_atom.Datalog.args) in
            let prev = ref magic_head_atom in
            for i = 0 to n - 1 do
              let b = body_arr.(i) in
              (* magic rule for intensional literal i *)
              let bname, _ = b.Datalog.pred in
              (match split_adorned bname with
              | Some (bbase, ba) when Hashtbl.mem intensional b.Datalog.pred ->
                  out :=
                    {
                      Datalog.head =
                        {
                          Datalog.pred = (magic_name bbase ba, count_bound ba);
                          args = bound_args ba b.Datalog.args;
                        };
                      body = [ !prev ];
                    }
                    :: !out
              | _ -> ());
              (* supplementary join *)
              let keep =
                List.filter
                  (fun v -> List.mem v (!avail @ vars_of_args b.Datalog.args))
                  (needed_after (i + 1))
              in
              let sup =
                {
                  Datalog.pred = sup_pred (i + 1) keep;
                  args = Array.of_list (List.map (fun v -> Term.var v) keep);
                }
              in
              out := { Datalog.head = sup; body = [ !prev; b ] } :: !out;
              avail := List.sort_uniq Int.compare (!avail @ vars_of_args b.Datalog.args);
              prev := sup
            done;
            out := { Datalog.head = r.Datalog.head; body = [ !prev ] } :: !out
      end)
    adorned;
  let qname, _ = query'.Datalog.pred in
  (match split_adorned qname with
  | Some (base, a) ->
      out :=
        {
          Datalog.head =
            {
              Datalog.pred = (magic_name base a, count_bound a);
              args = bound_args a query'.Datalog.args;
            };
          body = [];
        }
        :: !out
  | None -> ());
  (List.rev !out, query')
