(** Boolean functions over [arity] positions, represented enumeratively as
    truth tables (bitsets over the 2^arity assignment rows) — the
    representation the paper adopts from Codish–Demoen and defends against
    BDDs.

    Row indexing: assignment row [r] sets position [i] to [true] iff bit
    [i] of [r] is 1.  Positions are argument indices of an abstract
    predicate, or variable indices of a clause, depending on the client. *)

type t = { arity : int; rows : Bytes.t }

let nrows arity = 1 lsl arity

let nbytes arity = (nrows arity + 7) / 8

let create arity fill =
  if arity < 0 || arity > 20 then invalid_arg "Bf.create: arity out of range";
  let b = Bytes.make (nbytes arity) (if fill then '\xff' else '\x00') in
  (* mask off the unused high bits of the last byte so equal functions are
     byte-equal *)
  (if fill then
     let used = nrows arity mod 8 in
     if used <> 0 then
       Bytes.set b
         (Bytes.length b - 1)
         (Char.chr ((1 lsl used) - 1)));
  { arity; rows = b }

let bottom arity = create arity false
let top arity = create arity true

let arity f = f.arity

let mem f r =
  Char.code (Bytes.get f.rows (r lsr 3)) land (1 lsl (r land 7)) <> 0

let add f r =
  let i = r lsr 3 in
  Bytes.set f.rows i (Char.chr (Char.code (Bytes.get f.rows i) lor (1 lsl (r land 7))))

let of_rows arity rs =
  let f = bottom arity in
  List.iter (add f) rs;
  f

let rows f =
  let out = ref [] in
  for r = nrows f.arity - 1 downto 0 do
    if mem f r then out := r :: !out
  done;
  !out

let count f = List.length (rows f)

let is_empty f = Bytes.for_all (fun c -> c = '\x00') f.rows

let equal f g = f.arity = g.arity && Bytes.equal f.rows g.rows

let compare f g =
  let c = Int.compare f.arity g.arity in
  if c <> 0 then c else Bytes.compare f.rows g.rows

let hash f = Hashtbl.hash (f.arity, Bytes.to_string f.rows)

let copy f = { f with rows = Bytes.copy f.rows }

(* --- pointwise operations ---------------------------------------------- *)

let lift2 op f g =
  if f.arity <> g.arity then invalid_arg "Bf: arity mismatch";
  let rows = Bytes.create (Bytes.length f.rows) in
  for i = 0 to Bytes.length rows - 1 do
    Bytes.set rows i
      (Char.chr
         (op (Char.code (Bytes.get f.rows i)) (Char.code (Bytes.get g.rows i))
         land 0xff))
  done;
  { arity = f.arity; rows }

let conj f g = lift2 ( land ) f g
let disj f g = lift2 ( lor ) f g

let neg f =
  let full = top f.arity in
  lift2 (fun a b -> a land lnot b) full f

let implies f g = is_empty (conj f (neg g))

(* --- construction ------------------------------------------------------ *)

(** The function [pos ↔ (conj of positions in set)]; with an empty set the
    right side is [true], so this is just [pos]. *)
let iff arity pos set =
  if pos < 0 || pos >= arity then invalid_arg "Bf.iff";
  let f = bottom arity in
  for r = 0 to nrows arity - 1 do
    let lhs = r land (1 lsl pos) <> 0 in
    let rhs = List.for_all (fun p -> r land (1 lsl p) <> 0) set in
    if lhs = rhs then add f r
  done;
  f

(** The function that is just position [pos] (pos is true). *)
let var arity pos = iff arity pos []

(** Conjoin the constraint [pos = value]. *)
let restrict f pos value =
  let g = bottom f.arity in
  List.iter
    (fun r ->
      if (r land (1 lsl pos) <> 0) = value then add g r)
    (rows f);
  g

(** Existentially quantify position [pos] (schroeder elimination): the
    result no longer depends on [pos] but keeps the same arity. *)
let exists f pos =
  let g = bottom f.arity in
  List.iter
    (fun r ->
      add g (r lor (1 lsl pos));
      add g (r land lnot (1 lsl pos)))
    (rows f);
  g

(** Project [f] onto the given positions (in order): the result has arity
    [length positions]; a row is in the result iff some extension of it is
    in [f]. *)
let project f positions =
  let k = List.length positions in
  let g = bottom k in
  List.iter
    (fun r ->
      let out = ref 0 in
      List.iteri
        (fun j p -> if r land (1 lsl p) <> 0 then out := !out lor (1 lsl j))
        positions;
      add g !out)
    (rows f);
  g

(** Embed [f] (over positions [mapping]) into a function of arity
    [arity']: row r' is included iff its restriction to [mapping] is in
    [f].  Positions outside [mapping] are unconstrained. *)
let extend f mapping arity' =
  if List.length mapping <> f.arity then invalid_arg "Bf.extend";
  let g = bottom arity' in
  for r' = 0 to nrows arity' - 1 do
    let r = ref 0 in
    List.iteri
      (fun j p -> if r' land (1 lsl p) <> 0 then r := !r lor (1 lsl j))
      mapping;
    if mem f !r then add g r'
  done;
  g

(* --- analysis-facing queries ------------------------------------------- *)

(** Positions true in every satisfying row: the *definite* information.
    For groundness, [definite f] tells which arguments are ground in every
    answer.  Empty functions are flagged by {!is_empty}, not here. *)
let definite f =
  let out = Array.make f.arity true in
  List.iter
    (fun r ->
      for i = 0 to f.arity - 1 do
        if r land (1 lsl i) = 0 then out.(i) <- false
      done)
    (rows f);
  out

(** Build from answer tuples where each element is [Some b] (position
    bound to b) or [None] (unconstrained: both values). *)
let of_tuples arity (tuples : bool option list list) =
  let f = bottom arity in
  let rec expand r i = function
    | [] -> add f r
    | Some true :: rest -> expand (r lor (1 lsl i)) (i + 1) rest
    | Some false :: rest -> expand r (i + 1) rest
    | None :: rest ->
        expand (r lor (1 lsl i)) (i + 1) rest;
        expand r (i + 1) rest
  in
  List.iter
    (fun tup ->
      if List.length tup <> arity then invalid_arg "Bf.of_tuples";
      expand 0 0 tup)
    tuples;
  f

let to_tuples f : bool list list =
  rows f
  |> List.map (fun r -> List.init f.arity (fun i -> r land (1 lsl i) <> 0))
