(** Registry entry for depth-k groundness: adapts the typed {!Analyze}
    driver to the generic {!Prax_analysis.Analysis} interface (see
    docs/ANALYSES.md).  Registered by [Prax_analyses.Analyses]. *)

module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics

let counts (st : Prax_tabling.Engine.stats) : Analysis.engine_counts =
  {
    Analysis.calls = st.Prax_tabling.Engine.calls;
    table_entries = st.Prax_tabling.Engine.table_entries;
    answers = st.Prax_tabling.Engine.answers;
    duplicates = st.Prax_tabling.Engine.duplicates;
    resumptions = st.Prax_tabling.Engine.resumptions;
    forced = st.Prax_tabling.Engine.forced;
  }

let result_json (r : Analyze.pred_result) : Metrics.json =
  let name, arity = r.Analyze.pred in
  Metrics.Obj
    [
      ("name", Metrics.Str name);
      ("arity", Metrics.Int arity);
      ( "definite",
        Metrics.Str
          (if r.Analyze.never_succeeds then "-"
           else
             String.concat ""
               (List.init arity (fun i ->
                    if r.Analyze.definite.(i) then "g" else "?"))) );
      ("never_succeeds", Metrics.Bool r.Analyze.never_succeeds);
      ("patterns", Metrics.Int (List.length r.Analyze.answers));
    ]

let run ~config ~guard src : Analysis.report =
  let k = Analysis.config_int config "k" in
  if k < 0 then
    raise (Analysis.Config_error "k expects a non-negative integer");
  let rep = Analyze.analyze ~guard ~k src in
  {
    Analysis.analysis = "depthk";
    config;
    phases = rep.Analyze.phases;
    status = rep.Analyze.status;
    table_bytes = rep.Analyze.table_bytes;
    clause_count = rep.Analyze.clause_count;
    source_lines = None;
    engine = Some (counts rep.Analyze.engine_stats);
    payload_text = Analyze.report_to_string rep;
    payload_json = Metrics.Arr (List.map result_json rep.Analyze.results);
  }

let def : Analysis.t =
  {
    Analysis.name = "depthk";
    doc = "Groundness analysis with depth-k term abstraction (Section 5)";
    kind = Analysis.Logic_program;
    extensions = [ ".pl" ];
    defaults = [ ("k", "2") ];
    run;
    incremental = None;
  }
