lib/prop/iff.mli: Prax_logic Prax_tabling Subst Term
