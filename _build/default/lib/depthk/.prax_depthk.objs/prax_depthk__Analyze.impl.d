lib/depthk/analyze.ml: Array Database Domain Engine List Parser Prax_logic Prax_tabling Printf String Term Unix
