lib/gaia/backend_bdd.ml: Array Bdd Fun List Prax_bdd
